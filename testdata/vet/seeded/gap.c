// Seeded checkpoint-gap hazard: the @expires region runs a 1000-iteration
// undo-logged accumulation plus a radio send with checkpointing disabled.
// Its worst-case cycle cost far exceeds a small capacitor budget, so the
// region can never complete on one charge (analyze with -budget).
@expires_after=50 int v;
int acc;

int main() {
    v @= sense(0);
    @expires(v) {
        int i;
        for (i = 0; i < 1000; i++) {
            acc = acc + v * i;
        }
        send(acc);
    }
    return 0;
}
