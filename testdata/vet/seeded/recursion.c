// Seeded unbounded-recursion hazard: `walk` calls itself, so no static
// bound exists on the non-volatile working stack it consumes.
int depth;

int walk(int n) {
    if (n <= 0) {
        return 0;
    }
    return walk(n - 1) + 1;
}

int main() {
    depth = walk(600);
    out(0, depth);
    return 0;
}
