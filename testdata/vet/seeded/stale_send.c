// Seeded time-consistency hazard: `sample` expires after 100 ms but is
// transmitted without an @expires/@timely guard, so a power outage
// between the sense and the send lets stale data leave the device.
@expires_after=100 int sample;

int main() {
    sample @= sense(0);
    send(sample);
    return 0;
}
