// Seeded volatile-clock branch (Figure 3b): the now() comparison opens a
// transmission window that is then used long after the condition was
// evaluated. A checkpoint between the check and the send lets the reboot
// resume inside the window with data sensed before the outage.
int data;
int window_open;
int acc;

int main() {
    int i;
    data = sense(0);
    window_open = 0;
    if (now() < 5) {
        window_open = 1;
    }
    for (i = 0; i < 500; i++) {
        acc = acc + i;
    }
    if (window_open) {
        send(data);
    }
    return 0;
}
