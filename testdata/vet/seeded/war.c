// Seeded WAR hazard: `total` is read and then written in every loop
// iteration with no checkpoint between. Re-execution after a power
// failure replays the addition against the already-updated value.
int total;

int main() {
    int i;
    for (i = 0; i < 10; i++) {
        total = total + i;
    }
    out(0, total);
    return 0;
}
