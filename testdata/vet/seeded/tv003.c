// Seeded stale-timestamp hazard: `sample` is refreshed with @= (which
// stamps its shadow timestamp) and then overwritten by a plain store of
// an older cached reading. The timestamp stays fresh while the value is
// old, so the @expires guard happily transmits data past its budget.
int cache;
int acc;
@expires_after=100 int sample;

int main() {
    int i;
    cache = sense(0);
    for (i = 0; i < 300; i++) {
        acc = acc + i;
    }
    sample @= sense(0);
    sample = cache;
    @expires(sample) {
        send(sample);
    }
    return 0;
}
