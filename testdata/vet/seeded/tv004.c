// Seeded manual data/timestamp pair (Figure 3c): `data` and `data_ts`
// are updated by two separate stores. A power failure between them
// misaligns the pair — the re-executed timestamp judges a value sensed
// before the outage as fresh.
int data;
int data_ts;

int main() {
    int i;
    for (i = 0; i < 20; i++) {
        data = sense(0);
        data_ts = now();
        send(data);
    }
    return 0;
}
