// Seeded unbounded checkpoint gap: the loop inside the @expires region
// spins on a sensor value, so no static trip count exists. Checkpointing
// is disabled for the whole region; under intermittent power it can
// restart from the leading checkpoint forever.
@expires_after=50 int v;
int acc;

int main() {
    v @= sense(0);
    @expires(v) {
        while (sense(1) > 0) {
            acc = acc + v;
        }
        out(0, acc);
    }
    return 0;
}
