package tics_test

import (
	"bytes"
	"reflect"
	"testing"

	tics "repro"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/vm"
)

// cowCorpus is FuzzTICSInvariants' seed corpus: the same random programs
// and failure periods, reused here to drive whole-VM differential runs.
var cowCorpus = []struct{ seed, k int64 }{
	{0, 23_000},
	{3, 7_919},
	{11, 50_021},
}

func clampK(k int64) int64 {
	if k < 0 {
		k = -k
	}
	return 5_000 + k%95_000
}

// TestCOWMachineMatchesFlat is the tentpole's whole-VM equivalence gate:
// a machine on a copy-on-write fork of the image (the tics.NewMachine
// path) must be bit-identical — committed output, cycle count, memory
// traffic stats, checkpoint/restore counts, and the final 64 KB memory
// image — to a machine that privately loads the image into a flat
// memory, across the fuzz corpus's programs under failure injection.
func TestCOWMachineMatchesFlat(t *testing.T) {
	for _, tc := range cowCorpus {
		k := clampK(tc.k)
		var g progGen
		src := g.program(tc.seed)
		img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
		if err != nil {
			t.Fatalf("seed %d: build: %v", tc.seed, err)
		}

		// Flat path: vm.New with no Prepared loads a private memory, the
		// way every machine worked before copy-on-write forks.
		flatRT, err := core.New(img.Image, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		flat, err := vm.New(vm.Config{
			Image:          img.Image,
			Runtime:        flatRT,
			Power:          &power.FailEvery{Cycles: k, OffMs: 3},
			Sensors:        sensors.NewBank(1),
			AutoCpPeriodMs: 2,
			MaxCycles:      500_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		flatRes, err := flat.Run()
		if err != nil {
			t.Fatalf("seed %d: flat run: %v", tc.seed, err)
		}

		// COW path: the facade shares one prepared image per Image.
		cow, err := tics.NewMachine(img, tics.RunOptions{
			Power:          &power.FailEvery{Cycles: k, OffMs: 3},
			Sensors:        sensors.NewBank(1),
			AutoCpPeriodMs: 2,
			MaxCycles:      500_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		cowRes, err := cow.Run()
		if err != nil {
			t.Fatalf("seed %d: cow run: %v", tc.seed, err)
		}

		compareRuns(t, "cow vs flat", tc.seed, cowRes, flatRes)
		if !bytes.Equal(flat.Mem.Snapshot(), cow.Mem.Snapshot()) {
			t.Fatalf("seed %d: final memory images diverge", tc.seed)
		}
		if flat.Mem.Stats() != cow.Mem.Stats() {
			t.Fatalf("seed %d: final mem stats diverge: %+v vs %+v",
				tc.seed, flat.Mem.Stats(), cow.Mem.Stats())
		}

		// Pooled-reuse path: resetting the COW machine and re-running the
		// same device must reproduce the first run exactly.
		if err := tics.ResetMachine(cow, img, tics.RunOptions{
			Power:          &power.FailEvery{Cycles: k, OffMs: 3},
			Sensors:        sensors.NewBank(1),
			AutoCpPeriodMs: 2,
			MaxCycles:      500_000_000,
		}); err != nil {
			t.Fatalf("seed %d: reset: %v", tc.seed, err)
		}
		againRes, err := cow.Run()
		if err != nil {
			t.Fatalf("seed %d: rerun after reset: %v", tc.seed, err)
		}
		compareRuns(t, "reset vs first", tc.seed, againRes, cowRes)
		if !bytes.Equal(flat.Mem.Snapshot(), cow.Mem.Snapshot()) {
			t.Fatalf("seed %d: memory diverged after pooled rerun", tc.seed)
		}
	}
}

func compareRuns(t *testing.T, label string, seed int64, got, want vm.Result) {
	t.Helper()
	if !got.Completed || !want.Completed {
		t.Fatalf("seed %d: %s: incomplete runs (%v vs %v)", seed, label, got.Completed, want.Completed)
	}
	if !reflect.DeepEqual(got.OutLog, want.OutLog) {
		t.Fatalf("seed %d: %s: OutLog diverged\n got  %v\n want %v", seed, label, got.OutLog, want.OutLog)
	}
	if got.Cycles != want.Cycles || got.Failures != want.Failures {
		t.Fatalf("seed %d: %s: cycles/failures diverged: %d/%d vs %d/%d",
			seed, label, got.Cycles, got.Failures, want.Cycles, want.Failures)
	}
	if got.MemStats != want.MemStats {
		t.Fatalf("seed %d: %s: MemStats diverged: %+v vs %+v", seed, label, got.MemStats, want.MemStats)
	}
	if got.TotalCheckpoints != want.TotalCheckpoints || got.Restores != want.Restores {
		t.Fatalf("seed %d: %s: checkpoint accounting diverged", seed, label)
	}
}
