// Acceptance tests for the flight recorder: the event stream, profile and
// metrics must agree exactly with the machine's own accounting, and
// attaching a recorder must not perturb the simulation.
package tics_test

import (
	"bytes"
	"encoding/json"
	"testing"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sensors"
)

// runAR executes the AR benchmark on TICS under 48% duty-cycled power,
// matching the worked example in the README.
func runAR(t *testing.T, rec *obs.Recorder) (int64, int64) {
	t.Helper()
	img, err := tics.Build(apps.AR().Source, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:    &power.DutyCycle{Rate: 0.48, OnMs: 40},
		Sensors:  sensors.NewBank(1),
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || !res.Completed {
		t.Fatalf("run: %v %+v", err, res)
	}
	return res.Cycles, res.TotalCheckpoints
}

func TestFlightRecorderMatchesMachineAccounting(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Profile: true})
	cycles, checkpoints := runAR(t, rec)
	rec.Finish()

	// Event stream vs machine counter: every committed checkpoint left
	// exactly one commit event.
	if got := rec.Metrics().Counter("checkpoint_commits"); got != checkpoints {
		t.Fatalf("checkpoint_commits counter = %d, machine counted %d", got, checkpoints)
	}
	if got := rec.CountKind(obs.EvCheckpointCommit); got != checkpoints {
		t.Fatalf("ring has %d commit events, machine counted %d (dropped=%d)",
			got, checkpoints, rec.Dropped())
	}

	// The Chrome export is valid JSON and its checkpoint events agree too.
	var b bytes.Buffer
	if err := rec.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var commits int64
	for _, te := range doc.TraceEvents {
		if te.Name == "checkpoint" {
			commits++
		}
	}
	if commits != checkpoints {
		t.Fatalf("Chrome trace has %d checkpoint events, machine counted %d", commits, checkpoints)
	}

	// The category partition accounts for every consumed cycle exactly.
	p := rec.Profile()
	if total := p.TotalCycles(); total != cycles {
		t.Fatalf("profile categories sum to %d cycles, machine consumed %d (%v)",
			total, cycles, p.ByCategory)
	}
	// An intermittent run has both productive and dead work.
	if p.ByCategory[obs.CatApp.String()] == 0 || p.ByCategory[obs.CatDead.String()] == 0 {
		t.Fatalf("implausible partition: %v", p.ByCategory)
	}

	// Folded stacks attribute the same grand total as the categories.
	var folded int64
	for _, v := range p.Folded {
		folded += v
	}
	if folded != cycles {
		t.Fatalf("folded stacks sum to %d, want %d", folded, cycles)
	}
}

func TestRecorderDoesNotPerturbTheRun(t *testing.T) {
	bare, cpBare := runAR(t, nil)
	rec := obs.NewRecorder(obs.Options{Profile: true})
	traced, cpTraced := runAR(t, rec)
	if bare != traced || cpBare != cpTraced {
		t.Fatalf("recorder changed the simulation: %d/%d cycles, %d/%d checkpoints",
			bare, traced, cpBare, cpTraced)
	}
}

// TestStatsAreDefensiveCopies is the regression test for the live-map
// escape: Runtime.Stats() used to hand out the runtime's internal counter
// map, so callers could corrupt (or race on) live state.
func TestStatsAreDefensiveCopies(t *testing.T) {
	const src = `
int g;
int main() { g = 1; out(0, g); return 0; }
`
	for _, kind := range []tics.RuntimeKind{tics.RTPlain, tics.RTTICS, tics.RTMementos, tics.RTChinchilla} {
		img, err := tics.Build(src, tics.BuildOptions{Runtime: kind})
		if err != nil {
			t.Fatal(err)
		}
		m, err := tics.NewMachine(img, tics.RunOptions{Power: &power.FailEvery{Cycles: 300, OffMs: 5}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rt := m.Runtime()
		before := rt.Stats()
		for k := range before {
			before[k] = -777
		}
		before["poison"] = 1
		after := rt.Stats()
		if after["poison"] != 0 {
			t.Fatalf("%s: Stats() returned a live map (injected key visible)", kind)
		}
		for k, v := range after {
			if v == -777 {
				t.Fatalf("%s: mutation of the returned map reached counter %q", kind, k)
			}
		}
	}
}
