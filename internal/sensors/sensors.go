// Package sensors provides deterministic synthetic peripherals for the
// simulated device: a three-axis accelerometer that alternates between
// "moving" and "stationary" regimes (the activity-recognition workload),
// and soil-moisture/temperature channels with slow diurnal-style drift
// (the greenhouse-monitoring workload). Readings are pure functions of
// (seed, channel, time), so every experiment is reproducible.
package sensors

// Channel ids used by the benchmark applications.
const (
	AccelX int32 = iota
	AccelY
	AccelZ
	Moisture
	Temperature
)

// Bank is the default deterministic sensor bank.
type Bank struct {
	Seed uint64
	// RegimeMs is the length of each moving/stationary phase (default
	// 3000 ms).
	RegimeMs float64
}

// NewBank returns a bank with the default regime length.
func NewBank(seed uint64) *Bank { return &Bank{Seed: seed, RegimeMs: 3000} }

// hash mixes the seed, channel and a time bucket into pseudo-random bits.
func (b *Bank) hash(id int32, bucket int64) uint64 {
	x := b.Seed ^ uint64(id)*0x9E3779B97F4A7C15 ^ uint64(bucket)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Moving reports whether the simulated wearer is in a moving regime at the
// given true time.
func (b *Bank) Moving(trueMs float64) bool {
	regime := b.RegimeMs
	if regime <= 0 {
		regime = 3000
	}
	return (int64(trueMs/regime) % 2) == 1
}

// Sense implements vm.SensorBank.
func (b *Bank) Sense(id int32, trueMs float64) int32 {
	bucket := int64(trueMs) // 1 ms resolution
	h := b.hash(id, bucket)
	noise := func(amp int32) int32 { return int32(h%uint64(2*amp+1)) - amp }
	switch id {
	case AccelX, AccelY, AccelZ:
		// Accelerometer counts around gravity on Z; moving adds large
		// oscillation, stationary only sensor noise.
		base := int32(0)
		if id == AccelZ {
			base = 1000
		}
		if b.Moving(trueMs) {
			swing := int32(300)
			phase := (bucket/40 + int64(id)*7) % 2
			if phase == 0 {
				return base + swing + noise(120)
			}
			return base - swing + noise(120)
		}
		return base + noise(12)
	case Moisture:
		// Slow drying curve with irrigation spikes every ~50 s.
		cycle := bucket % 50000
		level := int32(800) - int32(cycle/100)
		return level + noise(8)
	case Temperature:
		// Tenths of a degree around 22 C with a slow ramp.
		ramp := int32((bucket / 2000) % 60)
		return 220 + ramp + noise(5)
	}
	return noise(100)
}

// Scripted replays fixed sequences per channel (tests use it for exact
// oracles). Reads past the end repeat the final value; empty channels
// return zero.
type Scripted struct {
	Values map[int32][]int32
	idx    map[int32]int
}

// NewScripted builds a scripted bank.
func NewScripted(values map[int32][]int32) *Scripted {
	return &Scripted{Values: values, idx: map[int32]int{}}
}

// Sense implements vm.SensorBank.
func (s *Scripted) Sense(id int32, trueMs float64) int32 {
	seq := s.Values[id]
	if len(seq) == 0 {
		return 0
	}
	i := s.idx[id]
	if i >= len(seq) {
		return seq[len(seq)-1]
	}
	s.idx[id] = i + 1
	return seq[i]
}

// Reset rewinds a scripted bank for a fresh run.
func (s *Scripted) Reset() { s.idx = map[int32]int{} }
