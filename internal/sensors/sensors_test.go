package sensors_test

import (
	"testing"

	"repro/internal/sensors"
)

func TestDeterministic(t *testing.T) {
	a, b := sensors.NewBank(3), sensors.NewBank(3)
	for ms := 0.0; ms < 1000; ms += 7.3 {
		for id := int32(0); id <= 4; id++ {
			if a.Sense(id, ms) != b.Sense(id, ms) {
				t.Fatalf("nondeterministic at id=%d t=%f", id, ms)
			}
		}
	}
}

func TestAccelRegimes(t *testing.T) {
	b := sensors.NewBank(5)
	spread := func(from, to float64) int32 {
		min, max := int32(1<<30), int32(-(1 << 30))
		for ms := from; ms < to; ms += 5 {
			v := b.Sense(sensors.AccelX, ms)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max - min
	}
	still := spread(0, 2900)     // first regime: stationary
	moving := spread(3100, 5900) // second regime: moving
	if !b.Moving(4000) || b.Moving(1000) {
		t.Fatal("regime schedule wrong")
	}
	if moving < 4*still {
		t.Fatalf("moving spread %d not clearly above still %d", moving, still)
	}
}

func TestGravityOnZ(t *testing.T) {
	b := sensors.NewBank(1)
	z := b.Sense(sensors.AccelZ, 100)
	x := b.Sense(sensors.AccelX, 100)
	if z < 900 || z > 1100 {
		t.Fatalf("z=%d should sit near 1000 counts when still", z)
	}
	if x < -100 || x > 100 {
		t.Fatalf("x=%d should be near zero when still", x)
	}
}

func TestEnvironmentChannels(t *testing.T) {
	b := sensors.NewBank(2)
	m := b.Sense(sensors.Moisture, 1000)
	if m < 500 || m > 900 {
		t.Fatalf("moisture %d out of plausible range", m)
	}
	temp := b.Sense(sensors.Temperature, 1000)
	if temp < 180 || temp > 320 {
		t.Fatalf("temperature %d (tenths C) out of range", temp)
	}
}

func TestScripted(t *testing.T) {
	s := sensors.NewScripted(map[int32][]int32{3: {10, 20, 30}})
	got := []int32{s.Sense(3, 0), s.Sense(3, 0), s.Sense(3, 0), s.Sense(3, 0)}
	want := []int32{10, 20, 30, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scripted: %v", got)
		}
	}
	if s.Sense(9, 0) != 0 {
		t.Fatal("empty channel should read zero")
	}
	s.Reset()
	if s.Sense(3, 0) != 10 {
		t.Fatal("reset")
	}
}
