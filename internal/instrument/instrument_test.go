package instrument_test

import (
	"reflect"
	"testing"

	"repro/internal/cc"
	"repro/internal/instrument"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/vm"
)

const src = `
int g;
int f(int x) { return x * 2; }
int main() {
    int i;
    for (i = 0; i < 5; i++) {
        g += f(i);
        mark(0);
    }
    out(0, g);
    return 0;
}
`

func compile(t *testing.T) *cc.Program {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func countOps(prog *cc.Program, op isa.Op) int {
	n := 0
	for _, f := range prog.Funcs {
		for _, in := range f.Code {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestLogStoresRewrite(t *testing.T) {
	prog := compile(t)
	plainStores := countOps(prog, isa.StoreG) + countOps(prog, isa.StoreI) +
		countOps(prog, isa.StoreGB) + countOps(prog, isa.StoreIB)
	if plainStores == 0 {
		t.Fatal("test program has no stores")
	}
	if _, err := instrument.Apply(prog, instrument.ForTICS()); err != nil {
		t.Fatal(err)
	}
	after := countOps(prog, isa.StoreG) + countOps(prog, isa.StoreI) +
		countOps(prog, isa.StoreGB) + countOps(prog, isa.StoreIB)
	logged := countOps(prog, isa.StoreGL) + countOps(prog, isa.StoreIL) +
		countOps(prog, isa.StoreGBL) + countOps(prog, isa.StoreIBL)
	if after != 0 || logged != plainStores {
		t.Fatalf("rewrite: %d plain left, %d logged (want %d)", after, logged, plainStores)
	}
}

func TestCheckpointInsertion(t *testing.T) {
	prog := compile(t)
	if countOps(prog, isa.Chkpt) != 0 {
		t.Fatal("uninstrumented program already has checkpoints")
	}
	if _, err := instrument.Apply(prog, instrument.ForMementos()); err != nil {
		t.Fatal(err)
	}
	// At least one back-edge (the loop) and one call site (f) each get one.
	if countOps(prog, isa.Chkpt) < 2 {
		t.Fatalf("too few inserted checkpoints: %d", countOps(prog, isa.Chkpt))
	}
}

func TestMarkBoundaryInsertion(t *testing.T) {
	prog := compile(t)
	if _, err := instrument.Apply(prog, instrument.ForTICSTaskBoundary()); err != nil {
		t.Fatal(err)
	}
	if countOps(prog, isa.Chkpt) < 1 {
		t.Fatal("no checkpoint inserted at the mark")
	}
}

// TestInstrumentationPreservesSemantics runs the original and every
// instrumented variant under the plain runtime (Chkpt is a no-op there,
// logged stores are raw stores) and requires identical outputs — i.e. the
// branch-offset remapping around inserted instructions is correct.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	exec := func(prog *cc.Program) map[int32][]int32 {
		img, err := link.Link(prog, link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(vm.Config{Image: img})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil || !res.Completed {
			t.Fatalf("run: %v %+v", err, res)
		}
		return res.OutLog
	}
	want := exec(compile(t))
	for _, pass := range []instrument.Pass{
		instrument.ForTICS(),
		instrument.ForMementos(),
		instrument.ForChinchilla(),
		instrument.ForTask(),
		instrument.ForTICSTaskBoundary(),
	} {
		prog := compile(t)
		if _, err := instrument.Apply(prog, pass); err != nil {
			t.Fatal(err)
		}
		if got := exec(prog); !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %+v changed semantics: %v != %v", pass, got, want)
		}
	}
}
