// Package instrument rewrites compiled programs for a target runtime,
// playing the role of the paper's LLVM LibTooling source pass plus the
// GCC back-end pass. It can redirect stores through a runtime's memory
// consistency manager (TICS undo logging, Chinchilla static logging, task
// privatization) and insert checkpoint trigger points (loop back-edges and
// call sites, the classic Mementos/Chinchilla placement), or checkpoints
// at task-boundary markers (the paper's ST configuration).
package instrument

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/isa"
)

// Pass describes one instrumentation.
type Pass struct {
	// LogStores rewrites every plain store opcode into its instrumented
	// variant so the runtime's LoggedStore hook sees it.
	LogStores bool
	// CheckpointAtBackEdges inserts a Chkpt before every backward branch
	// (loop trigger points).
	CheckpointAtBackEdges bool
	// CheckpointAtCalls inserts a Chkpt before every Call.
	CheckpointAtCalls bool
	// CheckpointAtMarks inserts a Chkpt before every Mark — the paper's ST
	// configuration (checkpoints at task boundaries).
	CheckpointAtMarks bool
}

// ForTICS returns the standard TICS pass.
func ForTICS() Pass { return Pass{LogStores: true} }

// ForTICSTaskBoundary returns the paper's ST configuration: TICS with
// additional checkpoints at the logical task boundaries.
func ForTICSTaskBoundary() Pass { return Pass{LogStores: true, CheckpointAtMarks: true} }

// ForMementos returns the naive-checkpointing pass: trigger points at loop
// back-edges and calls; stores stay raw (full-state checkpoints provide
// consistency).
func ForMementos() Pass { return Pass{CheckpointAtBackEdges: true, CheckpointAtCalls: true} }

// ForChinchilla returns the Chinchilla pass: logged stores into the static
// double buffer plus dense trigger points.
func ForChinchilla() Pass {
	return Pass{LogStores: true, CheckpointAtBackEdges: true, CheckpointAtCalls: true}
}

// ForTask returns the task-runtime pass: stores are routed through the
// runtime for privatization; no checkpoints are inserted (task transitions
// are the commit points).
func ForTask() Pass { return Pass{LogStores: true} }

// Apply rewrites prog in place and returns it. Branch immediates (already
// function-relative byte offsets) and relocation indices are remapped
// around inserted instructions.
func Apply(prog *cc.Program, pass Pass) (*cc.Program, error) {
	for _, f := range prog.Funcs {
		if err := applyFunc(f, pass); err != nil {
			return nil, fmt.Errorf("instrument: %s: %w", f.Name, err)
		}
	}
	return prog, nil
}

func isBranch(op isa.Op) bool {
	switch op {
	case isa.Jmp, isa.Jz, isa.Jnz, isa.ExpBegin, isa.ExpCatch, isa.Timely:
		return true
	}
	return false
}

func applyFunc(f *cc.Func, pass Pass) error {
	// Old byte offset of each instruction.
	oldOff := make([]int, len(f.Code)+1)
	for i, in := range f.Code {
		oldOff[i+1] = oldOff[i] + in.Size()
	}
	branchReloc := map[int]bool{}
	for _, r := range f.Relocs {
		if r.Kind == cc.RelocBranch {
			branchReloc[r.Instr] = true
		}
	}

	var out []isa.Instr
	var poss []cc.Pos
	trackPos := len(f.Poss) == len(f.Code)
	newIdx := make([]int, len(f.Code)) // old instr index → new instr index
	for i, in := range f.Code {
		insertCp := false
		switch {
		case pass.CheckpointAtMarks && in.Op == isa.Mark:
			insertCp = true
		case pass.CheckpointAtCalls && in.Op == isa.Call:
			insertCp = true
		case pass.CheckpointAtBackEdges && isBranch(in.Op) && branchReloc[i] && int(in.Imm) <= oldOff[i]:
			insertCp = true
		}
		if insertCp {
			out = append(out, isa.Instr{Op: isa.Chkpt})
			if trackPos {
				poss = append(poss, f.Poss[i]) // inserted checkpoint belongs to the trigger site
			}
		}
		if pass.LogStores {
			in.Op = isa.Logged(in.Op)
		}
		newIdx[i] = len(out)
		out = append(out, in)
		if trackPos {
			poss = append(poss, f.Poss[i])
		}
	}

	// New byte offsets and the old→new offset map for branch targets.
	newOff := make([]int, len(out)+1)
	for i, in := range out {
		newOff[i+1] = newOff[i] + in.Size()
	}
	offMap := map[int]int{}
	for i := range f.Code {
		offMap[oldOff[i]] = newOff[newIdx[i]]
	}

	// Remap relocations and branch immediates.
	var relocs []cc.Reloc
	for _, r := range f.Relocs {
		r.Instr = newIdx[r.Instr]
		relocs = append(relocs, r)
	}
	for _, r := range relocs {
		if r.Kind != cc.RelocBranch {
			continue
		}
		in := &out[r.Instr]
		mapped, ok := offMap[int(in.Imm)]
		if !ok {
			return fmt.Errorf("branch target %d is not an instruction boundary", in.Imm)
		}
		in.Imm = int32(mapped)
	}
	f.Code = out
	if trackPos {
		f.Poss = poss
	} else {
		f.Poss = nil
	}
	f.Relocs = relocs
	return nil
}
