package power_test

import (
	"math"
	"testing"

	"repro/internal/power"
)

func TestContinuous(t *testing.T) {
	c := power.Continuous{}
	w, off := c.NextWindow()
	if w != math.MaxInt64 || off != 0 {
		t.Fatalf("continuous: %d %f", w, off)
	}
}

func TestFailEvery(t *testing.T) {
	f := &power.FailEvery{Cycles: 123, OffMs: 4}
	for i := 0; i < 3; i++ {
		w, off := f.NextWindow()
		if w != 123 || off != 4 {
			t.Fatalf("fail-every: %d %f", w, off)
		}
	}
}

func TestDutyCycleMath(t *testing.T) {
	d := &power.DutyCycle{Rate: 0.25, OnMs: 10}
	w, off := d.NextWindow()
	if w != 10_000 {
		t.Fatalf("on window: %d cycles", w)
	}
	if math.Abs(off-30) > 1e-9 { // 10ms on : 30ms off = 25% duty
		t.Fatalf("off: %f", off)
	}
	full := &power.DutyCycle{Rate: 1}
	if w, _ := full.NextWindow(); w != math.MaxInt64 {
		t.Fatal("rate 1 should be continuous")
	}
}

func TestTraceLoopAndReset(t *testing.T) {
	tr := &power.Trace{Windows: []power.Window{{OnMs: 1, OffMs: 2}, {OnMs: 3, OffMs: 4}}, Loop: true}
	w1, o1 := tr.NextWindow()
	w2, o2 := tr.NextWindow()
	w3, _ := tr.NextWindow() // loops back
	if w1 != 1000 || o1 != 2 || w2 != 3000 || o2 != 4 || w3 != 1000 {
		t.Fatalf("trace: %d %f %d %f %d", w1, o1, w2, o2, w3)
	}
	tr.Reset()
	if w, _ := tr.NextWindow(); w != 1000 {
		t.Fatal("reset did not rewind")
	}
	oneShot := &power.Trace{Windows: []power.Window{{OnMs: 1}}}
	oneShot.NextWindow()
	if w, _ := oneShot.NextWindow(); w != math.MaxInt64 {
		t.Fatal("exhausted non-loop trace should go continuous")
	}
}

func TestHarvesterDeterministicAndPlausible(t *testing.T) {
	a := power.NewHarvester(10_000, 100, 0.5, 9)
	b := power.NewHarvester(10_000, 100, 0.5, 9)
	var total int64
	for i := 0; i < 50; i++ {
		wa, oa := a.NextWindow()
		wb, ob := b.NextWindow()
		if wa != wb || oa != ob {
			t.Fatalf("iteration %d: nondeterministic harvester", i)
		}
		if wa <= 0 || oa < 0 {
			t.Fatalf("implausible window %d / off %f", wa, oa)
		}
		if wa > 10_000 {
			t.Fatalf("window %d exceeds capacity", wa)
		}
		total += wa
	}
	if total == 0 {
		t.Fatal("harvester yielded no energy")
	}
	a.Reset()
	w, _ := a.NextWindow()
	wb, _ := power.NewHarvester(10_000, 100, 0.5, 9).NextWindow()
	if w != wb {
		t.Fatal("reset did not reproduce the first window")
	}
}

// TestHarvesterResetRestoresFullState is the replay-prerequisite
// regression test: Reset must restore the complete RNG and capacitor
// state — including non-default boot/brown-out thresholds — so that a
// second run draws the byte-identical window sequence.
func TestHarvesterResetRestoresFullState(t *testing.T) {
	h := power.NewHarvester(25_000, 300, 0.7, 1234)
	// Custom thresholds: Reset must not clobber these back to defaults.
	h.Cap.OnLevel = 0.8 * h.Cap.Capacity
	h.Cap.OffLevel = 0.1 * h.Cap.Capacity

	type win struct {
		c   int64
		off float64
	}
	draw := func(n int) []win {
		out := make([]win, n)
		for i := range out {
			out[i].c, out[i].off = h.NextWindow()
		}
		return out
	}
	first := draw(80)
	h.Reset()
	second := draw(80)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("window %d diverged after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
	// The custom thresholds shape the windows; if Reset had reverted them
	// the drained window size would differ from a default-threshold twin.
	d := power.NewHarvester(25_000, 300, 0.7, 1234)
	wd, _ := d.NextWindow()
	if first[0].c == wd {
		t.Fatalf("test vacuous: custom thresholds produced the default window %d", wd)
	}
}
