// Package power models the energy supply of an intermittently powered
// device as a sequence of powered windows separated by off-times. The VM
// consumes cycles from the current window; when the window is exhausted the
// device suffers a power failure (volatile state cleared), waits the
// off-time, and reboots into the next window.
//
// Sources cover the paper's experimental setups: continuous bench power
// (the Table 3/4/Figure 9 measurements), pre-programmed reset traces at a
// given intermittency rate (Table 1), and RF-harvesting with a small
// storage capacitor (Table 2 / Figure 8).
package power

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/energy"
)

// Source yields powered windows.
type Source interface {
	// Name identifies the source in experiment reports.
	Name() string
	// NextWindow returns the number of cycles available in the next powered
	// interval and the off-time in milliseconds that follows the failure
	// ending it. A window of math.MaxInt64 means effectively continuous.
	NextWindow() (cycles int64, offMs float64)
	// Reset rewinds the source to its initial state so a run can be repeated.
	Reset()
}

// Continuous is bench power: one infinite window.
type Continuous struct{}

func (Continuous) Name() string                 { return "continuous" }
func (Continuous) NextWindow() (int64, float64) { return math.MaxInt64, 0 }
func (Continuous) Reset()                       {}
func (Continuous) String() string               { return "continuous" }

var _ Source = Continuous{}

// FailEvery injects a power failure after exactly Cycles cycles, forever.
// The integration suite sweeps Cycles to hit every instruction boundary,
// including mid-checkpoint and mid-undo-log-append.
type FailEvery struct {
	Cycles int64
	OffMs  float64
}

func (f *FailEvery) Name() string { return fmt.Sprintf("fail-every-%d", f.Cycles) }
func (f *FailEvery) NextWindow() (int64, float64) {
	return f.Cycles, f.OffMs
}
func (f *FailEvery) Reset() {}

// DutyCycle models the pre-programmed reset patterns of Table 1. Rate is
// the fraction of wall-clock time the device is powered (1.0 = continuous);
// OnMs is the length of each powered burst. An "intermittency rate" of r%
// in the paper's Table 1 corresponds to Rate = r/100: at 100% the program
// never loses power, at 4% it reboots after very short bursts.
type DutyCycle struct {
	Rate float64 // fraction of time powered, (0, 1]
	OnMs float64 // powered burst length in milliseconds
}

func (d *DutyCycle) Name() string { return fmt.Sprintf("duty-%.0f%%", d.Rate*100) }
func (d *DutyCycle) NextWindow() (int64, float64) {
	if d.Rate >= 1 {
		return math.MaxInt64, 0
	}
	on := d.OnMs
	if on <= 0 {
		on = 50
	}
	off := on * (1 - d.Rate) / d.Rate
	return int64(on * energy.CyclesPerMs), off
}
func (d *DutyCycle) Reset() {}

// Window is one explicit powered interval of a trace.
type Window struct {
	OnMs  float64
	OffMs float64
}

// Trace replays an explicit on/off schedule; when the schedule runs out it
// either loops (Loop=true) or stays continuous.
type Trace struct {
	Windows []Window
	Loop    bool
	pos     int
}

func (t *Trace) Name() string { return fmt.Sprintf("trace-%d", len(t.Windows)) }
func (t *Trace) NextWindow() (int64, float64) {
	if t.pos >= len(t.Windows) {
		if !t.Loop || len(t.Windows) == 0 {
			return math.MaxInt64, 0
		}
		t.pos = 0
	}
	w := t.Windows[t.pos]
	t.pos++
	return int64(w.OnMs * energy.CyclesPerMs), w.OffMs
}
func (t *Trace) Reset() { t.pos = 0 }

// SchedWindow is one powered window of a Schedule, cycle-exact.
type SchedWindow struct {
	Cycles int64
	OffMs  float64
}

// Schedule grants an explicit sequence of cycle-exact windows and then
// continuous power. The reset-point model checker (internal/mc) uses it to
// inject reboots at precise instrumentation boundaries: a window of C
// cycles kills the first operation whose cost crosses C, the device waits
// the window's off-time, and the run then finishes unperturbed. Its Name
// round-trips through ParseSchedule, so a schedule embeds verbatim in a
// replay manifest's power spec.
type Schedule struct {
	Windows []SchedWindow
	pos     int
}

// Name renders the canonical "sched:C@OFF,..." spec string.
func (s *Schedule) Name() string {
	var b strings.Builder
	b.WriteString("sched:")
	for i, w := range s.Windows {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d@%s", w.Cycles, strconv.FormatFloat(w.OffMs, 'g', -1, 64))
	}
	return b.String()
}

func (s *Schedule) NextWindow() (int64, float64) {
	if s.pos >= len(s.Windows) {
		return math.MaxInt64, 0
	}
	w := s.Windows[s.pos]
	s.pos++
	return w.Cycles, w.OffMs
}

func (s *Schedule) Reset() { s.pos = 0 }

// ParseSchedule parses the "sched:C@OFF,..." syntax Name emits. An empty
// window list ("sched:") is continuous power.
func ParseSchedule(spec string) (*Schedule, error) {
	body, ok := strings.CutPrefix(spec, "sched:")
	if !ok {
		return nil, fmt.Errorf("power: schedule spec %q lacks the sched: prefix", spec)
	}
	s := &Schedule{}
	if body == "" {
		return s, nil
	}
	for _, part := range strings.Split(body, ",") {
		cs, os, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("power: schedule window %q wants CYCLES@OFF_MS", part)
		}
		c, err := strconv.ParseInt(cs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("power: schedule window %q: %v", part, err)
		}
		off, err := strconv.ParseFloat(os, 64)
		if err != nil {
			return nil, fmt.Errorf("power: schedule window %q: %v", part, err)
		}
		if c < 0 || off < 0 {
			return nil, fmt.Errorf("power: schedule window %q is negative", part)
		}
		s.Windows = append(s.Windows, SchedWindow{Cycles: c, OffMs: off})
	}
	return s, nil
}

// Harvester models RF/solar harvesting into a small capacitor (the paper's
// Table 2 setup: a Powercast receiver with a 10 µF capacitor). Each window
// drains the capacitor; the off-time is however long the income takes to
// recharge it to the boot threshold. An optional seeded jitter varies the
// income between windows to mimic fluctuating harvesting conditions.
type Harvester struct {
	Cap       *energy.Capacitor
	RatePerMs float64 // income in cycle-equivalents per millisecond
	Jitter    float64 // fractional income variation in [0,1)
	Seed      uint64
	rng       uint64
}

// NewHarvester builds a harvester source. capacity is in cycle-equivalents
// (one unit powers one cycle); ratePerMs is the charging income.
func NewHarvester(capacity, ratePerMs float64, jitter float64, seed uint64) *Harvester {
	return &Harvester{Cap: energy.NewCapacitor(capacity), RatePerMs: ratePerMs, Jitter: jitter, Seed: seed, rng: seed | 1}
}

func (h *Harvester) Name() string { return "harvester" }

func (h *Harvester) next() float64 { // xorshift64*, deterministic
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return float64(h.rng%1000) / 1000.0
}

func (h *Harvester) NextWindow() (int64, float64) {
	rate := h.RatePerMs
	if h.Jitter > 0 {
		rate *= 1 - h.Jitter + 2*h.Jitter*h.next()
	}
	if rate <= 0 {
		rate = 0.01
	}
	off := h.Cap.ChargeUntilOn(rate)
	cycles := h.Cap.Usable()
	h.Cap.Drain(cycles) // the window drains what it offers
	if cycles < 1 {
		cycles = 1
	}
	return cycles, off
}

// Reset restores the harvester's full initial state — capacitor level
// (keeping any custom boot/brown-out thresholds) and the complete RNG
// state — so a repeated run draws the identical window sequence. This is
// what makes harvester-powered runs recordable and replayable.
func (h *Harvester) Reset() {
	h.Cap.Reset()
	h.rng = h.Seed | 1
}
