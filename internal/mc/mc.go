// Package mc is the exhaustive reset-point model checker: where
// internal/audit judges the single execution it watched and the fuzzers
// sample a few more, mc enumerates *every* reboot point of a program
// (small-scope, cycle-exact) and checks each interrupted schedule against
// the uninterrupted oracle run.
//
// The procedure:
//
//  1. Run the program once uninterrupted (the oracle), collecting every
//     instrumentation-boundary cycle stamp — each emitted event and each
//     program store.
//  2. Enumerate candidate reboot points: for every stamp S the windows
//     S-1 and S, so a power failure lands both on the stamped operation
//     and on the instruction boundary before it.
//  3. Re-execute each schedule (one window per reboot, then continuous
//     power) on pooled COW-forked machines, with the trace auditor and a
//     data-freshness tracker attached. Depth > 1 recurses: stamps of the
//     interrupted run seed second reboots after the first.
//  4. Per schedule, assert: every auditor invariant (rollback exactness,
//     undo completeness, checkpoint atomicity, register exactness, time
//     consistency), forward progress, send exactly-once (virtualized
//     sends must commit strictly consecutive sequence numbers), committed
//     NVM equality against the oracle (time-insensitive programs only),
//     payload freshness (no value older than its @expires_after budget is
//     committed to the radio), and — scenario-gated — committed-effect
//     loss.
//
// Counterexamples are minimized to the earliest failing reboot point and
// carry a canonical "sched:CYCLES@OFF,..." power spec, so every finding
// round-trips through internal/replay as an ordinary replayable manifest.
package mc

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/fleet"
	"repro/internal/power"
	"repro/internal/replay"
)

// Config configures one sweep.
type Config struct {
	// Spec is the run being checked. Its Power field is ignored: the
	// oracle runs continuous and the sweep injects its own schedules.
	Spec replay.Spec
	// Depth is the maximum number of reboots per schedule (default 1;
	// 2 explores every pair of reboot points).
	Depth int
	// OffMs is the off-time charged per injected reboot (default 20,
	// matching the fail:N power model). Time-sensitive programs fail or
	// survive depending on it, so it is part of the verdict's identity.
	OffMs float64
	// Workers sizes the sweep pool (default GOMAXPROCS). Results are
	// independent of it.
	Workers int
	// MaxSchedules bounds the schedules executed per depth level
	// (0 = unlimited). When the bound bites, the level is downsampled
	// with a deterministic even stride and the report counts what was
	// dropped — the sweep never truncates silently.
	MaxSchedules int
	// AssumeBudgetMs imposes a freshness budget on sends of unannotated
	// globals (0 = off). Scenario knob for programs that manage
	// data/timestamp pairs manually (the TV004/TV005 shapes) and
	// therefore carry no @expires_after annotation to check against.
	AssumeBudgetMs int64
	// CheckEffectLoss flags schedules that complete but commit fewer
	// sends/outs than the oracle (the TV008 expired-region skip).
	// Scenario-gated: losing an effect is the *correct* handling of
	// expired data, so this is an expectation about the program, not a
	// universal invariant.
	CheckEffectLoss bool
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// Finding is one property violation, pinned to the schedule that
// produced it. Power is the canonical replayable power spec.
type Finding struct {
	Kind     string  `json:"kind"`
	Schedule []int64 `json:"schedule,omitempty"` // reboot windows, in cycles
	Power    string  `json:"power"`
	Detail   string  `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] power=%s: %s", f.Kind, f.Power, f.Detail)
}

// Finding kinds beyond the auditor's checks (whose kinds are the
// audit.Check strings).
const (
	KindFault         = "fault"
	KindProgress      = "progress"
	KindSendOnce      = "send-once"
	KindNVMDivergence = "nvm-divergence"
	KindStaleSend     = "stale-send"
	KindEffectLoss    = "effect-loss"
)

// Report is the deterministic outcome of one sweep: byte-identical
// across worker counts.
type Report struct {
	Spec           replay.Spec         `json:"spec"`
	Depth          int                 `json:"depth"`
	OffMs          float64             `json:"off_ms"`
	Boundaries     int                 `json:"boundaries"`
	Schedules      int                 `json:"schedules"`
	Dropped        int                 `json:"dropped,omitempty"`
	CyclesExplored int64               `json:"cycles_explored"`
	Oracle         replay.ResultDigest `json:"oracle"`
	OracleFindings []Finding           `json:"oracle_findings,omitempty"`
	Findings       []Finding           `json:"findings,omitempty"`
}

// Clean reports whether the sweep verified every schedule.
func (r *Report) Clean() bool {
	return len(r.Findings) == 0 && len(r.OracleFindings) == 0
}

// Counterexample returns the minimized counterexample: the earliest
// failing reboot point at the shallowest depth (oracle findings, which
// need no reboot at all, come first). Nil when the report is clean.
func (r *Report) Counterexample() *Finding {
	if len(r.OracleFindings) > 0 {
		return &r.OracleFindings[0]
	}
	if len(r.Findings) > 0 {
		return &r.Findings[0]
	}
	return nil
}

// Counterexample records a replayable manifest reproducing the finding:
// the finding's power schedule slots into the spec and the run is
// re-executed under replay.Record, so the result verifies with
// replay.Replay + replay.VerifyReplay like any other manifest.
func Counterexample(spec replay.Spec, f Finding) (*replay.Manifest, *replay.Run, error) {
	spec.Power = f.Power
	return replay.Record(spec, nil)
}

// Sweep runs the exhaustive reset-point exploration.
func Sweep(cfg Config) (*Report, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.OffMs <= 0 {
		cfg.OffMs = 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	spec := cfg.Spec
	spec.Power = "continuous"

	img, _, err := replay.BuildImage(spec)
	if err != nil {
		return nil, err
	}
	prov, err := buildProvenance(img)
	if err != nil {
		return nil, err
	}
	insensitive, err := timeInsensitive(img)
	if err != nil {
		return nil, err
	}

	r := &runner{img: img, spec: spec, prov: prov, budgetMs: cfg.AssumeBudgetMs}

	// Phase 1: the oracle.
	oracle, err := r.run(nil, true, true)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Spec:           cfg.Spec,
		Depth:          cfg.Depth,
		OffMs:          cfg.OffMs,
		Oracle:         oracle.digest,
		CyclesExplored: oracle.cycles,
	}
	rep.OracleFindings = judge(cfg, insensitive, true, oracle, oracle, "continuous", nil)
	if oracle.digest.Fault != "" {
		// A program that faults uninterrupted needs no reboot to fail;
		// the oracle manifest is the counterexample.
		logf("oracle run faults (%s); skipping the sweep", oracle.digest.Fault)
		return rep, nil
	}
	if oracle.digest.Completed {
		// Starvation bound for interrupted runs: one reboot redoes at
		// most one checkpoint epoch, so 4x oracle plus slack means "no
		// forward progress", not "slow".
		r.maxCycles = oracle.cycles*4 + 1_000_000
	}

	// Phase 2..Depth+1: breadth-first over reboot counts.
	level := [][]power.SchedWindow{nil} // parents (nil = the oracle)
	parents := []runOutcome{oracle}
	for depth := 1; depth <= cfg.Depth; depth++ {
		var schedules [][]power.SchedWindow
		for pi, parent := range parents {
			prefix := level[pi]
			// Later reboots must land after the earlier windows end.
			base := int64(0)
			for _, w := range prefix {
				base += w.Cycles
			}
			for _, c := range boundariesFrom(parent.stamps, base, parent.cycles) {
				sched := append(append([]power.SchedWindow{}, prefix...),
					power.SchedWindow{Cycles: c, OffMs: cfg.OffMs})
				schedules = append(schedules, sched)
			}
		}
		if depth == 1 {
			rep.Boundaries = len(schedules)
		}
		if cfg.MaxSchedules > 0 && len(schedules) > cfg.MaxSchedules {
			kept := stride(schedules, cfg.MaxSchedules)
			rep.Dropped += len(schedules) - len(kept)
			logf("depth %d: downsampled %d schedules to %d (even stride)", depth, len(schedules), len(kept))
			schedules = kept
		}
		logf("depth %d: %d schedules", depth, len(schedules))

		outcomes := make([]runOutcome, len(schedules))
		errs := make([]error, len(schedules))
		collectStamps := depth < cfg.Depth
		fleet.ParallelFor(len(schedules), cfg.Workers, func(i int) {
			outcomes[i], errs[i] = r.run(schedules[i], insensitive, collectStamps)
		})
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		for i, out := range outcomes {
			rep.Schedules++
			rep.CyclesExplored += out.cycles
			powerSpec := (&power.Schedule{Windows: schedules[i]}).Name()
			var cycles []int64
			for _, w := range schedules[i] {
				cycles = append(cycles, w.Cycles)
			}
			rep.Findings = append(rep.Findings, judge(cfg, insensitive, false, out, oracle, powerSpec, cycles)...)
		}
		level = schedules
		parents = outcomes
	}
	return rep, nil
}

// boundariesFrom turns cycle stamps into candidate window lengths
// relative to base (the cycles already consumed by earlier windows):
// for each stamp S > base the windows S-base-1 and S-base, deduplicated
// and sorted.
func boundariesFrom(stamps []int64, base, total int64) []int64 {
	seen := map[int64]bool{}
	for _, s := range stamps {
		if s <= base || s >= total {
			continue
		}
		for _, c := range []int64{s - base - 1, s - base} {
			if c >= 1 {
				seen[c] = true
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stride keeps max schedules with an even deterministic stride.
func stride[T any](in []T, max int) []T {
	out := make([]T, 0, max)
	n := len(in)
	for i := 0; i < max; i++ {
		out = append(out, in[i*n/max])
	}
	return out
}

// judge derives findings from one schedule outcome. isOracle marks the
// uninterrupted run judging itself (oracle-relative checks are skipped).
func judge(cfg Config, insensitive, isOracle bool, out, oracle runOutcome, powerSpec string, schedule []int64) []Finding {
	var fs []Finding
	add := func(kind, detail string) {
		fs = append(fs, Finding{Kind: kind, Schedule: schedule, Power: powerSpec, Detail: detail})
	}

	// Auditor invariants, one finding per check kind.
	counts := map[string]int{}
	first := map[string]string{}
	var order []string
	for _, v := range out.violations {
		k := string(v.Check)
		if counts[k] == 0 {
			order = append(order, k)
			first[k] = v.String()
		}
		counts[k]++
	}
	for _, k := range order {
		detail := first[k]
		if counts[k] > 1 {
			detail = fmt.Sprintf("%s (+%d more)", detail, counts[k]-1)
		}
		add(k, detail)
	}

	if out.digest.Fault != "" {
		add(KindFault, "machine fault: "+out.digest.Fault)
	} else if !isOracle && oracle.digest.Completed && !out.digest.Completed {
		if out.digest.TimedOut {
			add(KindProgress, fmt.Sprintf("run exceeded the %0.f ms wall budget the oracle met", cfg.Spec.WallMs))
		} else {
			add(KindProgress, fmt.Sprintf("no forward progress: starved after %d cycles (oracle completed in %d)", out.digest.Cycles, oracle.digest.Cycles))
		}
	}

	if cfg.Spec.Virtualize {
		for i, seq := range out.sendSeqs {
			if seq != int64(i) {
				add(KindSendOnce, fmt.Sprintf("committed send %d carries seq %d: sends did not commit exactly once in order", i, seq))
				break
			}
		}
	}

	if !isOracle && insensitive && oracle.digest.Completed && out.digest.Completed {
		if detail, ok := equalOutcome(out, oracle); !ok {
			add(KindNVMDivergence, detail)
		}
	}

	if len(out.stale) > 0 {
		s := out.stale[0]
		detail := fmt.Sprintf("send at pc=%#x committed %q aged %d ms (budget %d ms, seq %d)",
			s.PC, s.Global, s.AgeMs, s.BudgetMs, s.Seq)
		if len(out.stale) > 1 {
			detail = fmt.Sprintf("%s (+%d more)", detail, len(out.stale)-1)
		}
		add(KindStaleSend, detail)
	}

	if cfg.CheckEffectLoss && !isOracle && oracle.digest.Completed && out.digest.Completed {
		lost := false
		if len(out.sendVals) < len(oracle.sendVals) {
			lost = true
		}
		outTotal, oracleTotal := 0, 0
		for _, vals := range out.outs {
			outTotal += len(vals)
		}
		for _, vals := range oracle.outs {
			oracleTotal += len(vals)
		}
		if outTotal < oracleTotal {
			lost = true
		}
		if lost {
			add(KindEffectLoss, fmt.Sprintf("completed with %d sends / %d outs committed; oracle committed %d / %d",
				len(out.sendVals), outTotal, len(oracle.sendVals), oracleTotal))
		}
	}
	return fs
}
