package mc

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/replay"
)

// Scenario pairs one seeded ticsvet testdata program with the sweep
// configuration under which its diagnosed hazard manifests dynamically.
// The static diagnostic says "this program *can* go wrong"; the scenario
// pins down a runtime, an off-time and (where the program manages
// freshness manually) an assumed budget under which the checker finds a
// concrete failing schedule.
type Scenario struct {
	File     string           // file name within the seeded testdata dir
	Code     analysis.Code    // the ticsvet diagnostic being ground-truthed
	Expect   []string         // finding kinds that confirm the diagnostic
	Config   Config           // sweep configuration; Spec.Source is filled by the loader
	Analysis analysis.Options // ticsvet options (TV008 needs a capacitor budget)
}

func boolPtr(b bool) *bool { return &b }

// Scenarios is the seeded diagnostic corpus: every time-consistency and
// idempotence diagnostic ticsvet emits on the seeded testdata, with the
// dynamic configuration that turns the lint into a machine-checked
// counterexample. TV006/TV007 (stack bounds) manifest as an uninterrupted
// machine fault under a small stack, so their scenario needs no reboot at
// all; the rest require a specific reboot schedule.
func Scenarios() []Scenario {
	return []Scenario{
		{
			File:   "war.c",
			Code:   analysis.CodeWAR,
			Expect: []string{string("rollback-exactness"), "register-exactness", "checkpoint-atomicity", KindNVMDivergence},
			Config: Config{
				Spec: replay.Spec{
					Runtime:        "mementos",
					VersionGlobals: boolPtr(false),
					TimerMs:        2,
					Virtualize:     true,
				},
				OffMs: 20,
			},
		},
		{
			File:   "stale_send.c",
			Code:   analysis.CodeUnguardedSend,
			Expect: []string{KindStaleSend},
			Config: Config{
				Spec:  replay.Spec{Runtime: "tics", TimerMs: 2, Virtualize: true},
				OffMs: 250,
			},
		},
		{
			File:   "tv003.c",
			Code:   analysis.CodeStaleTimestamp,
			Expect: []string{KindStaleSend},
			Config: Config{
				Spec:  replay.Spec{Runtime: "tics", TimerMs: 2, Virtualize: true},
				OffMs: 250,
			},
		},
		{
			File:   "tv004.c",
			Code:   analysis.CodeManualPair,
			Expect: []string{KindStaleSend},
			Config: Config{
				// A 40-byte undo log forces the PreStore checkpoint to land
				// between the data and data_ts stores, splitting the pair.
				Spec:           replay.Spec{Runtime: "tics", Virtualize: true, UndoCapBytes: 40},
				OffMs:          250,
				AssumeBudgetMs: 100,
			},
		},
		{
			File:   "tv005.c",
			Code:   analysis.CodeManualTimely,
			Expect: []string{KindStaleSend},
			Config: Config{
				Spec:           replay.Spec{Runtime: "tics", TimerMs: 2, Virtualize: true},
				OffMs:          250,
				AssumeBudgetMs: 100,
			},
		},
		{
			File:   "recursion.c",
			Code:   analysis.CodeUnboundedRecursion,
			Expect: []string{KindFault},
			Config: Config{
				// Plain runtime, default 2048-byte stack: 600 recursive
				// frames overflow it without needing any reboot at all.
				Spec: replay.Spec{Runtime: "plain"},
			},
		},
		{
			File:   "gap.c",
			Code:   analysis.CodeCheckpointGap,
			Expect: []string{KindEffectLoss, KindStaleSend},
			Config: Config{
				// The region's 1000 undo-logged stores need a roomy undo
				// log: checkpointing is disabled inside @expires, so the
				// runtime cannot shed entries mid-region.
				Spec:            replay.Spec{Runtime: "tics", TimerMs: 2, Virtualize: true, UndoCapBytes: 32768},
				OffMs:           100,
				CheckEffectLoss: true,
			},
			Analysis: analysis.Options{GapBudgetCycles: 50000},
		},
		{
			File:   "gap_unbounded.c",
			Code:   analysis.CodeCheckpointGap,
			Expect: []string{KindEffectLoss, KindStaleSend},
			Config: Config{
				Spec:            replay.Spec{Runtime: "tics", TimerMs: 2, Virtualize: true},
				OffMs:           100,
				CheckEffectLoss: true,
			},
		},
	}
}

// CrossResult is the verdict for one seeded program: the static
// diagnostic, the dynamic counterexample, and whether its manifest
// re-verified under replay.
type CrossResult struct {
	File       string           `json:"file"`
	Code       analysis.Code    `json:"code"`
	Diagnosed  bool             `json:"diagnosed"`
	Finding    *Finding         `json:"finding,omitempty"`
	Manifest   *replay.Manifest `json:"manifest,omitempty"`
	ReplayOK   bool             `json:"replay_ok"`
	Schedules  int              `json:"schedules"`
	Boundaries int              `json:"boundaries"`
	Err        string           `json:"err,omitempty"`
}

// Ok reports whether the diagnostic↔counterexample correlation held:
// ticsvet diagnosed the code, the sweep produced a confirming finding,
// and the minimized counterexample replayed byte-identically.
func (c CrossResult) Ok() bool {
	return c.Err == "" && c.Diagnosed && c.Finding != nil && c.ReplayOK
}

// CrossCheck runs the diagnostic↔counterexample correlation over every
// seeded scenario in dir. Hard failures (unreadable file, compile error)
// return an error; per-scenario contract breaches are reported in the
// result's Err/flags so a caller can show all of them at once.
func CrossCheck(dir string, workers int) ([]CrossResult, error) {
	scenarios := Scenarios()
	sort.Slice(scenarios, func(i, j int) bool { return scenarios[i].File < scenarios[j].File })
	var out []CrossResult
	for _, sc := range scenarios {
		res, err := runScenario(dir, sc, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func runScenario(dir string, sc Scenario, workers int) (CrossResult, error) {
	res := CrossResult{File: sc.File, Code: sc.Code}
	src, err := os.ReadFile(filepath.Join(dir, sc.File))
	if err != nil {
		return res, err
	}

	diags, err := analysis.AnalyzeSource(string(src), sc.Analysis)
	if err != nil {
		return res, fmt.Errorf("mc: %s does not compile: %w", sc.File, err)
	}
	for _, d := range diags {
		if d.Code == sc.Code {
			res.Diagnosed = true
			break
		}
	}

	cfg := sc.Config
	cfg.Spec.Source = string(src)
	cfg.Workers = workers
	rep, err := Sweep(cfg)
	if err != nil {
		return res, fmt.Errorf("mc: %s sweep: %w", sc.File, err)
	}
	res.Schedules = rep.Schedules
	res.Boundaries = rep.Boundaries

	expect := map[string]bool{}
	for _, k := range sc.Expect {
		expect[k] = true
	}
	// Prefer the earliest confirming *schedule* (a concrete reboot);
	// fall back to an oracle finding (hazards like a stack-overflow
	// fault need no reboot at all).
	for i := range rep.Findings {
		if expect[rep.Findings[i].Kind] {
			res.Finding = &rep.Findings[i]
			break
		}
	}
	if res.Finding == nil {
		for i := range rep.OracleFindings {
			if expect[rep.OracleFindings[i].Kind] {
				res.Finding = &rep.OracleFindings[i]
				break
			}
		}
	}
	if !res.Diagnosed {
		res.Err = fmt.Sprintf("ticsvet did not report %s", sc.Code)
		return res, nil
	}
	if res.Finding == nil {
		res.Err = fmt.Sprintf("no %v finding in %d schedules (findings: %d, oracle findings: %d)",
			sc.Expect, rep.Schedules, len(rep.Findings), len(rep.OracleFindings))
		return res, nil
	}

	man, _, err := Counterexample(cfg.Spec, *res.Finding)
	if err != nil {
		res.Err = fmt.Sprintf("recording counterexample: %v", err)
		return res, nil
	}
	res.Manifest = man
	run, err := replay.Replay(man, nil)
	if err != nil {
		res.Err = fmt.Sprintf("replaying counterexample: %v", err)
		return res, nil
	}
	if err := replay.VerifyReplay(man, run); err != nil {
		res.Err = fmt.Sprintf("counterexample replay diverged: %v", err)
		return res, nil
	}
	res.ReplayOK = true
	return res, nil
}
