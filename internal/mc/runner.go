package mc

import (
	"fmt"
	"sync"

	tics "repro"
	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/sensors"
	"repro/internal/vm"
)

// runOutcome is everything one schedule execution contributes to the
// sweep verdict. Every field is a deterministic function of (spec,
// schedule), which is what makes the sweep worker-count independent.
type runOutcome struct {
	digest     replay.ResultDigest
	violations []audit.Violation
	auditTotal int64
	stale      []StaleSend
	sendSeqs   []int64
	sendVals   []int32
	globals    []byte // committed global data bytes (nil when not collected)
	outs       map[int32][]int32
	marks      []int64
	stamps     []int64 // cycle stamps of events+stores (depth>=2 only)
	cycles     int64
}

// runner executes schedules against one shared image using a pool of
// COW-forked machines: the first run on each pool slot builds a machine
// from the image's vm.Prepared snapshot, later runs rebind it with
// Machine.Reset (indistinguishable from a fresh machine, pinned by the
// pooled-reuse tests), so a 10k-schedule sweep does not pay 10k image
// loads.
type runner struct {
	img       *tics.Image
	spec      replay.Spec
	prov      *provenance
	budgetMs  int64
	maxCycles int64 // starvation bound for interrupted runs (0 = spec default)

	mu   sync.Mutex
	pool []*vm.Machine
}

func (r *runner) acquire() *vm.Machine {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pool); n > 0 {
		m := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return m
	}
	return nil
}

func (r *runner) release(m *vm.Machine) {
	r.mu.Lock()
	r.pool = append(r.pool, m)
	r.mu.Unlock()
}

func (r *runner) runOptions(src power.Source, rec *obs.Recorder) (tics.RunOptions, error) {
	clockSpec := r.spec.Clock
	if clockSpec == "" {
		clockSpec = "perfect"
	}
	clock, err := replay.ParseClock(clockSpec, r.spec.Seed)
	if err != nil {
		return tics.RunOptions{}, err
	}
	maxCycles := r.spec.MaxCycles
	if r.maxCycles > 0 {
		maxCycles = r.maxCycles
	}
	return tics.RunOptions{
		Power:           src,
		Clock:           clock,
		Sensors:         sensors.NewBank(r.spec.Seed),
		AutoCpPeriodMs:  r.spec.TimerMs,
		MaxWallMs:       r.spec.WallMs,
		MaxCycles:       maxCycles,
		VirtualizeSends: r.spec.Virtualize,
		Recorder:        rec,
	}, nil
}

// run executes one schedule (nil = uninterrupted) and gathers the
// outcome. collectGlobals snapshots the committed global data bytes;
// collectStamps gathers event+store cycle stamps for deeper enumeration.
func (r *runner) run(windows []power.SchedWindow, collectGlobals, collectStamps bool) (runOutcome, error) {
	src := &power.Schedule{Windows: windows}
	rec := obs.NewRecorder(obs.Options{RingCap: 64})
	opts, err := r.runOptions(src, rec)
	if err != nil {
		return runOutcome{}, err
	}

	m := r.acquire()
	if m == nil {
		m, err = tics.NewMachine(r.img, opts)
	} else {
		err = tics.ResetMachine(m, r.img, opts)
	}
	if err != nil {
		return runOutcome{}, err
	}
	defer r.release(m)

	aud, err := audit.Attach(m, audit.Options{})
	if err != nil {
		return runOutcome{}, err
	}
	tracker := newFreshTracker(r.prov, r.budgetMs)
	tracker.attach(m, rec)

	var stamps []int64
	if collectStamps {
		rec.AddSink(stampSink{m: m, out: &stamps})
		m.ObserveStores(func(addr uint32, size int, val uint32, deviceMs int64) {
			stamps = append(stamps, m.Cycles())
		})
	}

	res, _ := m.Run() // a fault is itself a verdict, not an executor error

	out := runOutcome{
		digest:     digestOf(res),
		violations: aud.Violations(),
		auditTotal: aud.Total(),
		stale:      tracker.stale,
		outs:       res.OutLog,
		marks:      res.MarkCounts,
		stamps:     stamps,
		cycles:     res.Cycles,
	}
	for _, s := range res.SendLog {
		out.sendSeqs = append(out.sendSeqs, s.Seq)
		out.sendVals = append(out.sendVals, s.Value)
	}
	if collectGlobals {
		out.globals = r.committedGlobals(m)
	}
	return out, nil
}

// committedGlobals concatenates the data bytes of every program global
// (not the whole [GlobalsBase, StackBase) region: shadow timestamp
// slots, mark counters and runtime bookkeeping are excluded, so the
// comparison only judges state the program owns).
func (r *runner) committedGlobals(m *vm.Machine) []byte {
	var out []byte
	for _, s := range r.prov.spans {
		out = append(out, m.Mem.ReadBytes(s.base, s.size)...)
	}
	return out
}

// digestOf mirrors replay's result digest so mc reports and manifests
// agree field-for-field.
func digestOf(res vm.Result) replay.ResultDigest {
	d := replay.ResultDigest{
		Completed: res.Completed,
		Starved:   res.Starved,
		TimedOut:  res.TimedOut,
		Cycles:    res.Cycles,
		Failures:  res.Failures,
		Restores:  res.Restores,
		Commits:   res.TotalCheckpoints,
		Sends:     len(res.SendLog),
	}
	if res.Fault != nil {
		d.Fault = res.Fault.Error()
	}
	return d
}

// stampSink collects the cycle stamp of every emitted event.
type stampSink struct {
	m   *vm.Machine
	out *[]int64
}

func (s stampSink) OnEvent(_ int64, ev obs.Event) {
	*s.out = append(*s.out, ev.Cycles)
}

// equalOutcome compares the committed observables of two runs (globals,
// out channels, mark counters, committed sends).
func equalOutcome(a, b runOutcome) (string, bool) {
	if string(a.globals) != string(b.globals) {
		return "committed global bytes diverge from the oracle", false
	}
	if len(a.marks) != len(b.marks) {
		return "mark counter count diverges", false
	}
	for i := range a.marks {
		if a.marks[i] != b.marks[i] {
			return fmt.Sprintf("mark counter %d diverges: %d vs oracle %d", i, a.marks[i], b.marks[i]), false
		}
	}
	if len(a.outs) != len(b.outs) {
		return "out channel set diverges", false
	}
	for ch, vals := range a.outs {
		ref, ok := b.outs[ch]
		if !ok || len(ref) != len(vals) {
			return fmt.Sprintf("out channel %d length diverges", ch), false
		}
		for i := range vals {
			if vals[i] != ref[i] {
				return fmt.Sprintf("out channel %d[%d] = %d, oracle %d", ch, i, vals[i], ref[i]), false
			}
		}
	}
	if len(a.sendVals) != len(b.sendVals) {
		return fmt.Sprintf("committed send count %d, oracle %d", len(a.sendVals), len(b.sendVals)), false
	}
	for i := range a.sendVals {
		if a.sendVals[i] != b.sendVals[i] || a.sendSeqs[i] != b.sendSeqs[i] {
			return fmt.Sprintf("committed send %d = (%d, seq %d), oracle (%d, seq %d)",
				i, a.sendVals[i], a.sendSeqs[i], b.sendVals[i], b.sendSeqs[i]), false
		}
	}
	return "", true
}
