package mc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/replay"
)

const seededDir = "../../testdata/vet/seeded"

// quickstartSrc mirrors examples/quickstart — the annotated sensing loop
// the repo's documentation leads with.
const quickstartSrc = `
#define ROUNDS 20

@expires_after=300 int reading;
int checksum;

int main() {
    int i;
    for (i = 0; i < ROUNDS; i++) {
        reading @= sense(4);
        @expires(reading) {
            checksum = checksum * 31 + reading;
            mark(0);
        } catch {
            mark(1);
        }
    }
    out(0, checksum);
    return 0;
}
`

// shippedSpecs enumerates every shipped program under the runtime that
// protects it: the TICS-C sources under tics, the task ports under
// alpaca/mayfly. These are the programs the checker must verify clean.
func shippedSpecs() []struct {
	label string
	spec  replay.Spec
} {
	var specs []struct {
		label string
		spec  replay.Spec
	}
	add := func(label string, spec replay.Spec) {
		specs = append(specs, struct {
			label string
			spec  replay.Spec
		}{label, spec})
	}
	for _, a := range apps.All() {
		// The health monitors sense forever; bound them by wall time.
		wall := 0.0
		if a.Name == "ghm" || a.Name == "ghm-tinyos" {
			wall = 40
		}
		add(a.Name, replay.Spec{App: a.Name, Runtime: "tics", TimerMs: 2, Virtualize: true, WallMs: wall})
		if a.ManualSource != "" {
			add(a.Name+"-manual", replay.Spec{Source: a.ManualSource, Runtime: "tics", TimerMs: 2, Virtualize: true, WallMs: wall})
		}
		if a.TaskSource != "" {
			add(a.Name+"-task", replay.Spec{App: a.Name, Runtime: "alpaca", TimerMs: 2, Virtualize: true, WallMs: wall})
		}
		if a.MayflyTaskSource != "" {
			add(a.Name+"-mayfly", replay.Spec{App: a.Name, Runtime: "mayfly", TimerMs: 2, Virtualize: true, WallMs: wall})
		}
	}
	for _, name := range []string{"swap", "bubble", "timekeeping", "bc-norec"} {
		if a, ok := apps.ByName(name); ok {
			add(a.Name, replay.Spec{Source: a.Source, Runtime: "tics", TimerMs: 2, Virtualize: true})
		}
	}
	add("quickstart", replay.Spec{Source: quickstartSrc, Runtime: "tics", TimerMs: 2, Virtualize: true})
	return specs
}

// TestSweepShippedProgramsClean is the positive half of the ground truth:
// every program the repo ships, under its protecting runtime, survives a
// depth-1 reset-point sweep with zero findings — no rollback divergence,
// no double send, no stale payload, at any enumerated reboot point.
func TestSweepShippedProgramsClean(t *testing.T) {
	maxSchedules := 200
	if testing.Short() || raceDetector {
		maxSchedules = 48
	}
	specs := shippedSpecs()
	if len(specs) != 15 {
		t.Fatalf("shipped program census drifted: got %d, want 15", len(specs))
	}
	for _, p := range specs {
		t.Run(p.label, func(t *testing.T) {
			rep, err := Sweep(Config{Spec: p.spec, Workers: runtime.GOMAXPROCS(0), MaxSchedules: maxSchedules})
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if rep.Schedules == 0 {
				t.Fatalf("sweep explored no schedules (boundaries=%d)", rep.Boundaries)
			}
			if !rep.Clean() {
				t.Fatalf("shipped program has a counterexample: %s", rep.Counterexample())
			}
		})
	}
}

// TestSweepWorkerIndependence pins the determinism contract: the report —
// findings, ordering, counters — is byte-identical whether one worker or
// four swept the schedules.
func TestSweepWorkerIndependence(t *testing.T) {
	for _, file := range []string{"stale_send.c", "war.c"} {
		t.Run(file, func(t *testing.T) {
			var reports [][]byte
			for _, workers := range []int{1, 4} {
				cfg := scenarioConfigFor(t, file)
				cfg.Workers = workers
				rep, err := Sweep(cfg)
				if err != nil {
					t.Fatalf("sweep with %d workers: %v", workers, err)
				}
				b, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				reports = append(reports, b)
			}
			if string(reports[0]) != string(reports[1]) {
				t.Errorf("report differs between 1 and 4 workers:\n--- 1 ---\n%s\n--- 4 ---\n%s", reports[0], reports[1])
			}
		})
	}
}

// scenarioConfigFor loads the seeded scenario for file with its source
// filled in.
func scenarioConfigFor(t *testing.T, file string) Config {
	t.Helper()
	for _, sc := range Scenarios() {
		if sc.File == file {
			src := readSeeded(t, file)
			cfg := sc.Config
			cfg.Spec.Source = src
			return cfg
		}
	}
	t.Fatalf("no scenario for %s", file)
	return Config{}
}

func readSeeded(t *testing.T, file string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(seededDir, file))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSweepDepthTwo explores reboot pairs: the first reboot's interrupted
// run seeds the second's boundaries. A protected program must survive
// both; the report must record the deeper exploration.
func TestSweepDepthTwo(t *testing.T) {
	if a, ok := apps.ByName("swap"); ok {
		rep, err := Sweep(Config{
			Spec:         replay.Spec{Source: a.Source, Runtime: "tics", TimerMs: 2, Virtualize: true},
			Depth:        2,
			Workers:      runtime.GOMAXPROCS(0),
			MaxSchedules: 300,
		})
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		if rep.Depth != 2 {
			t.Fatalf("depth not recorded: %d", rep.Depth)
		}
		if rep.Schedules <= rep.Boundaries {
			t.Fatalf("depth 2 explored nothing beyond depth 1: %d schedules, %d boundaries", rep.Schedules, rep.Boundaries)
		}
		if !rep.Clean() {
			t.Fatalf("swap has a depth-2 counterexample: %s", rep.Counterexample())
		}
	} else {
		t.Fatal("swap app missing")
	}
}

// TestCrossCheckSeeded is the negative half of the ground truth: every
// seeded ticsvet diagnostic corresponds to a concrete failing schedule,
// minimized into a manifest that re-verifies byte-identically under
// internal/replay.
func TestCrossCheckSeeded(t *testing.T) {
	if raceDetector {
		// ~12k schedules; the concurrency paths are already raced by
		// TestSweepWorkerIndependence, and CI's mc smoke runs this full
		// correlation without the detector.
		t.Skip("cross-check corpus is too expensive under the race detector")
	}
	results, err := CrossCheck(seededDir, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Scenarios()) {
		t.Fatalf("expected %d results, got %d", len(Scenarios()), len(results))
	}
	for _, r := range results {
		t.Run(r.File, func(t *testing.T) {
			if !r.Ok() {
				t.Fatalf("cross-check failed: diagnosed=%v finding=%v replayOK=%v err=%s",
					r.Diagnosed, r.Finding, r.ReplayOK, r.Err)
			}
			if r.Manifest == nil {
				t.Fatal("no counterexample manifest")
			}
			if r.Manifest.PowerName != r.Finding.Power {
				t.Fatalf("manifest power %q does not match finding power %q", r.Manifest.PowerName, r.Finding.Power)
			}
		})
	}
}

// TestCounterexampleRoundTrip re-records one finding's manifest and
// replays it from the manifest alone, the way a bug report would travel.
func TestCounterexampleRoundTrip(t *testing.T) {
	cfg := scenarioConfigFor(t, "stale_send.c")
	cfg.Workers = runtime.GOMAXPROCS(0)
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Counterexample()
	if f == nil {
		t.Fatal("no counterexample for seeded stale_send.c")
	}
	man, rec, err := Counterexample(cfg.Spec, *f)
	if err != nil {
		t.Fatal(err)
	}
	if man.PowerName != f.Power {
		t.Fatalf("manifest power %q, finding power %q", man.PowerName, f.Power)
	}
	if rec == nil || len(rec.Events) == 0 {
		t.Fatal("counterexample recording captured no events")
	}
	run, err := replay.Replay(man, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.VerifyReplay(man, run); err != nil {
		t.Fatalf("counterexample did not re-verify: %v", err)
	}
}

// TestBoundariesFrom pins the boundary enumeration: stamps map to the
// window lengths {S-base-1, S-base}, clipped, deduplicated, sorted.
func TestBoundariesFrom(t *testing.T) {
	got := boundariesFrom([]int64{5, 6, 100}, 0, 100)
	want := []int64{4, 5, 6}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("boundariesFrom = %v, want %v", got, want)
	}
	// With a base, stamps at or before the base are dead.
	got = boundariesFrom([]int64{5, 50}, 10, 100)
	want = []int64{39, 40}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("boundariesFrom(base=10) = %v, want %v", got, want)
	}
}
