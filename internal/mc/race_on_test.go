//go:build race

package mc

// raceDetector trims sweep sizes when the race detector multiplies the
// cost of every simulated instruction.
const raceDetector = true
