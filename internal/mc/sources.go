package mc

import (
	"sort"

	tics "repro"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// globalSpan maps an absolute data-address range onto a program global.
type globalSpan struct {
	base      uint32
	size      int
	name      string
	expiresMs int64 // -1 when not @expires_after-annotated
}

// srcSet is the resolved provenance of one stored/sent value: the globals
// it was computed from. known=false means the backward walk met an
// instruction it cannot invert (indirect load, call result, ...) and the
// checker must not draw conclusions from this site.
type srcSet struct {
	known   bool
	globals []string
}

// provenance is the static data-provenance index for one image. For every
// Send instruction and every direct global store it records which globals
// the value on the stack was computed from, by inverting the stack effect
// of the producing expression (leaves: LoadG/LoadGB name a global;
// PushI/Sense/Now/LoadL/AddrL/GetRV produce a fresh value; ALU ops union
// their operands). The walk is linear within the emitted instruction
// order; any jump target that could enter the expression mid-stream
// demotes the site to unknown, so the index never over-claims.
type provenance struct {
	spans  []globalSpan      // sorted by base
	sends  map[uint32]srcSet // Send PC -> payload sources
	stores map[uint32]srcSet // direct global-store PC -> value sources
}

func buildProvenance(img *tics.Image) (*provenance, error) {
	p := &provenance{
		sends:  map[uint32]srcSet{},
		stores: map[uint32]srcSet{},
	}
	for _, g := range img.Program.Globals {
		p.spans = append(p.spans, globalSpan{
			base:      img.GlobalsBase + g.Offset,
			size:      g.Size,
			name:      g.Name,
			expiresMs: g.ExpiresAfterMs,
		})
	}
	sort.Slice(p.spans, func(i, j int) bool { return p.spans[i].base < p.spans[j].base })

	var instrs []isa.Instr
	var addrs []uint32
	for off := 0; off < len(img.Text); {
		in, next, err := isa.Decode(img.Text, off)
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, in)
		addrs = append(addrs, img.TextBase+uint32(off))
		off = next
	}
	targets := map[uint32]bool{}
	for _, in := range instrs {
		switch in.Op {
		case isa.Jmp, isa.Jz, isa.Jnz, isa.Call, isa.ExpBegin, isa.ExpCatch, isa.Timely:
			targets[uint32(in.Imm)] = true
		}
	}
	for _, f := range img.Funcs {
		targets[f.Entry] = true
	}

	for i, in := range instrs {
		switch in.Op {
		case isa.Send:
			srcs, _, ok := p.valueAt(instrs, addrs, targets, i-1)
			p.sends[addrs[i]] = srcSet{known: ok, globals: srcs}
		case isa.StoreG, isa.StoreGL, isa.StoreGB, isa.StoreGBL:
			if p.globalAt(uint32(in.Imm)) == nil {
				continue
			}
			srcs, _, ok := p.valueAt(instrs, addrs, targets, i-1)
			p.stores[addrs[i]] = srcSet{known: ok, globals: srcs}
		}
	}
	return p, nil
}

// globalAt resolves an absolute address to the global whose data range
// covers it (nil for runtime state, shadow timestamp slots, the stack).
func (p *provenance) globalAt(addr uint32) *globalSpan {
	i := sort.Search(len(p.spans), func(i int) bool {
		return p.spans[i].base+uint32(p.spans[i].size) > addr
	})
	if i < len(p.spans) && addr >= p.spans[i].base {
		return &p.spans[i]
	}
	return nil
}

// valueAt resolves the provenance of the value left on top of the operand
// stack by instruction j, returning the source globals, the index of the
// first instruction of the producing expression, and whether the
// resolution is sound.
func (p *provenance) valueAt(instrs []isa.Instr, addrs []uint32, targets map[uint32]bool, j int) ([]string, int, bool) {
	if j < 0 {
		return nil, 0, false
	}
	in := instrs[j]
	switch in.Op {
	case isa.PushI, isa.Sense, isa.Now, isa.GetRV, isa.LoadL, isa.AddrL:
		// Fresh leaves: constants, peripherals, the clock, locals (treated
		// as freshly produced — a pessimism that can only suppress
		// findings, never invent them).
		return nil, j, true
	case isa.LoadG, isa.LoadGB:
		if g := p.globalAt(uint32(in.Imm)); g != nil {
			return []string{g.name}, j, true
		}
		return nil, j, true
	case isa.Neg, isa.Not, isa.LNot, isa.Dup:
		srcs, start, ok := p.valueAt(instrs, addrs, targets, j-1)
		if !ok || targets[addrs[j]] {
			return nil, 0, false
		}
		return srcs, start, true
	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Mod, isa.And, isa.Or, isa.Xor,
		isa.Shl, isa.Shr, isa.CmpEq, isa.CmpNe, isa.CmpLt, isa.CmpLe, isa.CmpGt,
		isa.CmpGe, isa.CmpLtU, isa.CmpLeU, isa.CmpGtU, isa.CmpGeU:
		rhs, rhsStart, ok := p.valueAt(instrs, addrs, targets, j-1)
		if !ok {
			return nil, 0, false
		}
		lhs, lhsStart, ok := p.valueAt(instrs, addrs, targets, rhsStart-1)
		if !ok {
			return nil, 0, false
		}
		// A jump into the operator or the start of the rhs subexpression
		// would execute the op against a foreign lhs.
		if targets[addrs[j]] || targets[addrs[rhsStart]] {
			return nil, 0, false
		}
		return unionStrings(lhs, rhs), lhsStart, true
	}
	return nil, 0, false
}

func unionStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := append([]string{}, a...)
	for _, s := range b {
		found := false
		for _, t := range out {
			if t == s {
				found = true
				break
			}
		}
		if !found {
			out = append(out, s)
		}
	}
	return out
}

// StaleSend is one committed transmission whose payload outlived its
// freshness budget: the value left the device AgeMs after it was last
// produced from a fresh source, against a budget of BudgetMs.
type StaleSend struct {
	PC       uint32 `json:"pc"`
	Global   string `json:"global"`
	Seq      int64  `json:"seq"`
	AgeMs    int64  `json:"age_ms"`
	BudgetMs int64  `json:"budget_ms"`
	DeviceMs int64  `json:"device_ms"` // device clock at commit
}

// freshTracker is the dynamic half of the time-consistency check. It
// maintains, per global, the device-clock time the global's current value
// was produced from a fresh source (propagated through direct
// global-to-global assignments by the static provenance index), reverts
// that map on rollback exactly as the runtime reverts NVM, and flags
// every committed send whose payload is older than its budget. Annotated
// globals use their @expires_after budget; unannotated globals use
// assumeBudgetMs when positive (a scenario knob for programs that manage
// freshness manually, the TV004/TV005 shapes).
type freshTracker struct {
	prov           *provenance
	assumeBudgetMs int64

	prod      map[string]int64 // production time of the current value
	committed map[string]int64 // prod at the last commit point
	stale     []StaleSend
}

func newFreshTracker(prov *provenance, assumeBudgetMs int64) *freshTracker {
	return &freshTracker{
		prov:           prov,
		assumeBudgetMs: assumeBudgetMs,
		prod:           map[string]int64{},
		committed:      map[string]int64{},
	}
}

// attach hooks the tracker onto a machine and its recorder. It chains
// store observation (compatible with the auditor), owns the OnSend hook,
// and snapshots/reverts on commit/restore events from the recorder
// stream. Attach after audit.Attach so event ordering stays fixed.
func (t *freshTracker) attach(m *vm.Machine, rec *obs.Recorder) {
	m.ObserveStores(func(addr uint32, size int, val uint32, deviceMs int64) {
		// The program counter still points at the store instruction while
		// its observer runs, which is what keys the provenance index.
		t.onStore(m.Regs.PC, addr, deviceMs)
	})
	m.OnSend = t.onSend
	rec.AddSink(t)
}

// OnEvent implements obs.Sink: commits snapshot the production map,
// restores revert it (the runtime just reverted the values themselves).
func (t *freshTracker) OnEvent(_ int64, ev obs.Event) {
	switch ev.Kind {
	case obs.EvCheckpointCommit, obs.EvTaskCommit:
		for k, v := range t.prod {
			t.committed[k] = v
		}
	case obs.EvRestore:
		t.prod = map[string]int64{}
		for k, v := range t.committed {
			t.prod[k] = v
		}
	}
}

func (t *freshTracker) onStore(pc uint32, addr uint32, deviceMs int64) {
	g := t.prov.globalAt(addr)
	if g == nil {
		return
	}
	set, ok := t.prov.stores[pc]
	if !ok || !set.known || len(set.globals) == 0 {
		// Unknown provenance or a fresh expression: the store produces a
		// new value now.
		t.prod[g.name] = deviceMs
		return
	}
	// The stored value is as old as its oldest global source.
	prod := deviceMs
	for _, src := range set.globals {
		if p, ok := t.prod[src]; ok {
			if p < prod {
				prod = p
			}
		} else if 0 < prod {
			prod = 0 // never-written source: the boot-time initial value
		}
	}
	t.prod[g.name] = prod
}

func (t *freshTracker) onSend(rec vm.SendRec) {
	set, ok := t.prov.sends[rec.PC]
	if !ok || !set.known {
		return
	}
	for _, src := range set.globals {
		g := t.globalByName(src)
		if g == nil {
			continue
		}
		budget := g.expiresMs
		if budget < 0 {
			if t.assumeBudgetMs <= 0 {
				continue
			}
			budget = t.assumeBudgetMs
		}
		age := rec.EstMs - t.prod[src]
		if age > budget {
			t.stale = append(t.stale, StaleSend{
				PC:       rec.PC,
				Global:   src,
				Seq:      rec.Seq,
				AgeMs:    age,
				BudgetMs: budget,
				DeviceMs: rec.EstMs,
			})
		}
	}
}

func (t *freshTracker) globalByName(name string) *globalSpan {
	for i := range t.prov.spans {
		if t.prov.spans[i].name == name {
			return &t.prov.spans[i]
		}
	}
	return nil
}

// timeInsensitive reports whether the image's output can depend on timing
// at all: a program with no sensor reads, clock reads, or time-annotation
// opcodes produces the same committed NVM no matter where reboots land,
// so the checker may assert committed-state equality against the oracle.
func timeInsensitive(img *tics.Image) (bool, error) {
	for off := 0; off < len(img.Text); {
		in, next, err := isa.Decode(img.Text, off)
		if err != nil {
			return false, err
		}
		switch in.Op {
		case isa.Sense, isa.Now, isa.SetTS, isa.ExpBegin, isa.ExpCatch, isa.ExpEnd, isa.Timely:
			return false, nil
		}
		off = next
	}
	return true, nil
}
