package bench

import (
	"fmt"
	"io"
	"sort"
)

// DefaultTolerance is the relative slack -compare allows before calling
// a delta a regression: 0.25 means new numbers may be up to 25% worse
// than the baseline. Throughput on a shared CI runner is noisy; RSS is
// not, but GC timing still moves it between runs.
const DefaultTolerance = 0.25

// Regression is one gated metric that moved past tolerance in the bad
// direction.
type Regression struct {
	Key      string  `json:"key"`    // "n=1000", "opcode/Add", ...
	Metric   string  `json:"metric"` // "devices_per_sec", "peak_rss_bytes", "ns_per_instr"
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	DeltaPct float64 `json:"delta_pct"` // signed; positive = worse
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%, worse)", r.Key, r.Metric, r.Old, r.New, r.DeltaPct)
}

// Compare gates new against old: for every fleet key both ledgers
// carry, devices/sec must not drop and peak RSS must not rise by more
// than tolerance; for every shared opcode, ns/instr must not rise.
// Keys only one side has are skipped — adding a new sweep point is not
// a regression. A zero tolerance means DefaultTolerance; hosts with
// different CPU counts are never compared (one warning Regression-free
// note is written to warnings instead).
func Compare(old, new *File, tolerance float64, warnings io.Writer) []Regression {
	if tolerance == 0 {
		tolerance = DefaultTolerance
	}
	var regs []Regression
	if old.Host.CPUs != 0 && new.Host.CPUs != 0 && old.Host.CPUs != new.Host.CPUs {
		if warnings != nil {
			fmt.Fprintf(warnings, "bench: hosts differ (%d vs %d CPUs); skipping throughput/RSS gates\n",
				old.Host.CPUs, new.Host.CPUs)
		}
		return nil
	}

	for _, key := range old.FleetKeys() {
		oe, ne := old.Fleet[key], new.Fleet[key]
		if ne == nil {
			if warnings != nil {
				fmt.Fprintf(warnings, "bench: %s only in baseline; skipped\n", key)
			}
			continue
		}
		// Lower devices/sec is worse.
		if oe.Best.DevicesPerSec > 0 && ne.Best.DevicesPerSec < oe.Best.DevicesPerSec*(1-tolerance) {
			regs = append(regs, Regression{
				Key: key, Metric: "devices_per_sec",
				Old: oe.Best.DevicesPerSec, New: ne.Best.DevicesPerSec,
				DeltaPct: 100 * (oe.Best.DevicesPerSec - ne.Best.DevicesPerSec) / oe.Best.DevicesPerSec,
			})
		}
		// Higher bytes/device is worse: per-device footprint is the wall
		// between today's fleets and 10⁶ devices, so its regressions gate
		// like throughput does. Only gated when both sides measured it.
		if oe.BytesPerDevice > 0 && ne.BytesPerDevice > 0 &&
			ne.BytesPerDevice > oe.BytesPerDevice*(1+tolerance) {
			regs = append(regs, Regression{
				Key: key, Metric: "bytes_per_device",
				Old: oe.BytesPerDevice, New: ne.BytesPerDevice,
				DeltaPct: 100 * (ne.BytesPerDevice - oe.BytesPerDevice) / oe.BytesPerDevice,
			})
		}
		// Higher peak RSS is worse. Only gate when both sides measured it
		// the same way (per-entry resets vs monotone-across-sweep are not
		// comparable).
		if oe.PeakRSSBytes > 0 && ne.PeakRSSBytes > 0 && oe.RSSResettable == ne.RSSResettable &&
			float64(ne.PeakRSSBytes) > float64(oe.PeakRSSBytes)*(1+tolerance) {
			regs = append(regs, Regression{
				Key: key, Metric: "peak_rss_bytes",
				Old: float64(oe.PeakRSSBytes), New: float64(ne.PeakRSSBytes),
				DeltaPct: 100 * (float64(ne.PeakRSSBytes) - float64(oe.PeakRSSBytes)) / float64(oe.PeakRSSBytes),
			})
		}
	}

	opNames := make([]string, 0, len(old.Opcodes))
	for name := range old.Opcodes {
		opNames = append(opNames, name)
	}
	sort.Strings(opNames)
	for _, name := range opNames {
		oe, ne := old.Opcodes[name], new.Opcodes[name]
		if ne == nil {
			continue
		}
		if oe.NsPerInstr > 0 && ne.NsPerInstr > oe.NsPerInstr*(1+tolerance) {
			regs = append(regs, Regression{
				Key: "opcode/" + name, Metric: "ns_per_instr",
				Old: oe.NsPerInstr, New: ne.NsPerInstr,
				DeltaPct: 100 * (ne.NsPerInstr - oe.NsPerInstr) / oe.NsPerInstr,
			})
		}
	}
	return regs
}
