// Package bench owns the repo's performance ledger: the versioned
// BENCH_fleet.json schema, merge-by-key persistence (so the fleet
// sweep, the legacy n=64 benchmark and the opcode microbench can each
// update their slice of the file without clobbering the others), a
// schema validator, and the regression gate `ticsbench -compare` runs
// in CI. This is the measurement harness ROADMAP item 1 gates on:
// devices/sec and peak RSS tracked across n∈{1e3, 1e4, 1e5}.
package bench

import (
	"fmt"
	"runtime"
	"sort"
)

// SchemaVersion identifies the BENCH_fleet.json layout. Bump it on any
// incompatible reshaping; Load migrates the unversioned legacy layout
// (the flat n=64 file) into version 1 automatically.
const SchemaVersion = 1

// File is the whole ledger.
type File struct {
	SchemaVersion int `json:"schema_version"`
	// Host records where the numbers came from — a 1-CPU CI runner and
	// a 16-core workstation must never be compared as equals.
	Host Host `json:"host"`
	// Fleet holds one entry per fleet configuration, keyed "n=<devices>".
	Fleet map[string]*FleetEntry `json:"fleet"`
	// Opcodes holds the per-opcode dispatch microbenchmark, keyed by
	// opcode name (ROADMAP item 2's baseline).
	Opcodes map[string]*OpcodeEntry `json:"opcodes,omitempty"`
	// MC holds the reset-point model checker's sweep throughput, keyed
	// "depth=<n>" (BenchmarkResetPointSweep).
	MC map[string]*MCEntry `json:"mc,omitempty"`
	// Gate holds the standalone gateway service's durable-ingest costs,
	// keyed "batch=<frames>" (BenchmarkGateIngest).
	Gate map[string]*GateEntry `json:"gate,omitempty"`
}

// Host describes the measuring machine.
type Host struct {
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

// CurrentHost samples the running process's host description.
func CurrentHost() Host {
	return Host{
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
}

// Point is one throughput measurement.
type Point struct {
	DevicesPerSec      float64 `json:"devices_per_sec"`
	DeviceCyclesPerSec float64 `json:"device_cycles_per_sec"`
}

// TelemetryPair prices the observability stack: the same fleet with
// collection+tracing+profiling on vs off.
type TelemetryPair struct {
	Off         Point   `json:"off"`
	On          Point   `json:"on"`
	OverheadPct float64 `json:"overhead_pct"`
}

// FleetEntry is one fleet configuration's numbers.
type FleetEntry struct {
	Devices int     `json:"devices"`
	App     string  `json:"app"`
	WallMs  float64 `json:"wall_ms,omitempty"` // per-device simulated wall budget
	Source  string  `json:"source"`            // "sweep" or "benchmark"

	// Best is the headline throughput (best worker count, telemetry off).
	Best Point `json:"best"`
	// Workers maps worker count → throughput at that count.
	Workers map[string]Point `json:"workers,omitempty"`
	// Telemetry prices the observability stack at the best worker count.
	Telemetry *TelemetryPair `json:"telemetry,omitempty"`

	// PeakRSSBytes is the host process's RSS high-water mark over this
	// entry's runs (per-entry when the kernel's clear_refs reset is
	// available, else monotone across the sweep — RSSResettable says
	// which). BytesPerDevice is host heap allocation per simulated
	// device of the best run.
	PeakRSSBytes   int64   `json:"peak_rss_bytes,omitempty"`
	RSSResettable  bool    `json:"rss_resettable,omitempty"`
	BytesPerDevice float64 `json:"bytes_per_device,omitempty"`

	// PhaseSeconds partitions the best run's round wall time: build,
	// devices, channel, gateway, telemetry.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`

	SpeedupBestOverW1 float64 `json:"speedup_best_over_w1,omitempty"`
}

// OpcodeEntry is one opcode's dispatch cost.
type OpcodeEntry struct {
	NsPerInstr float64 `json:"ns_per_instr"`
	Instrs     int64   `json:"instrs"` // dispatched instructions measured
}

// MCEntry is one model-checker sweep configuration's throughput: how
// many interrupted schedules the checker re-executes per wall second and
// how many simulated machine states (cycles) that explores.
type MCEntry struct {
	Program         string  `json:"program"` // program swept (app or label)
	Depth           int     `json:"depth"`
	Schedules       int     `json:"schedules"`       // schedules verified in the measured sweep
	CyclesExplored  int64   `json:"cycles_explored"` // simulated cycles across all schedules
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	StatesPerSec    float64 `json:"states_per_sec"` // explored cycles per wall second
}

// GateEntry is the ticsgate durable-ingest cost sheet at one batch
// size: sustained fsync-on-batch ingest rate, WAL space per frame, and
// how long reopening the store (snapshot load + WAL replay) takes.
type GateEntry struct {
	BatchFrames   int     `json:"batch_frames"`    // frames per ingested batch
	Batches       int     `json:"batches"`         // batches in the measured run
	FramesPerSec  float64 `json:"frames_per_sec"`  // durable ingest throughput
	WALBytesFrame float64 `json:"wal_bytes_frame"` // WAL bytes per ingested frame
	RecoveryMs    float64 `json:"recovery_ms"`     // Open() over the produced WAL
}

// NewFile returns an empty ledger for the current host.
func NewFile() *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Host:          CurrentHost(),
		Fleet:         map[string]*FleetEntry{},
	}
}

// FleetKey is the canonical fleet-entry key for a device count.
func FleetKey(devices int) string { return fmt.Sprintf("n=%d", devices) }

// SetFleet merges one fleet entry by key, leaving every other key
// untouched — how the sweep and the legacy benchmark coexist.
func (f *File) SetFleet(key string, e *FleetEntry) {
	if f.Fleet == nil {
		f.Fleet = map[string]*FleetEntry{}
	}
	f.Fleet[key] = e
}

// SetOpcode merges one opcode entry by name.
func (f *File) SetOpcode(name string, e *OpcodeEntry) {
	if f.Opcodes == nil {
		f.Opcodes = map[string]*OpcodeEntry{}
	}
	f.Opcodes[name] = e
}

// MCKey is the canonical model-checker entry key for a sweep depth.
func MCKey(depth int) string { return fmt.Sprintf("depth=%d", depth) }

// SetMC merges one model-checker entry by key.
func (f *File) SetMC(key string, e *MCEntry) {
	if f.MC == nil {
		f.MC = map[string]*MCEntry{}
	}
	f.MC[key] = e
}

// GateKey is the canonical gate-entry key for a batch size.
func GateKey(batchFrames int) string { return fmt.Sprintf("batch=%d", batchFrames) }

// SetGate merges one gateway-service entry by key.
func (f *File) SetGate(key string, e *GateEntry) {
	if f.Gate == nil {
		f.Gate = map[string]*GateEntry{}
	}
	f.Gate[key] = e
}

// FleetKeys returns the fleet keys sorted by device count (then
// lexically), for deterministic report order.
func (f *File) FleetKeys() []string {
	keys := make([]string, 0, len(f.Fleet))
	for k := range f.Fleet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		di, dj := f.Fleet[keys[i]].Devices, f.Fleet[keys[j]].Devices
		if di != dj {
			return di < dj
		}
		return keys[i] < keys[j]
	})
	return keys
}
