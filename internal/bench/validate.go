package bench

import (
	"fmt"
	"math"

	"repro/internal/fleet"
)

// Validate structurally checks a ledger the way claims_test.go checks
// CLAIMS.json: every violation is reported (not just the first), so a
// broken generator shows all its symptoms at once. A nil return means
// the file honors the schema contract CI and -compare rely on.
func Validate(f *File) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if f.SchemaVersion != SchemaVersion {
		bad("schema_version = %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Host.CPUs <= 0 {
		bad("host.cpus = %d, want > 0", f.Host.CPUs)
	}
	if f.Host.GoVersion == "" || f.Host.GOOS == "" || f.Host.GOARCH == "" {
		bad("host metadata incomplete: %+v", f.Host)
	}
	if len(f.Fleet) == 0 {
		bad("no fleet entries")
	}

	finite := func(key, metric string, v float64, positive bool) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad("%s: %s is not finite", key, metric)
		} else if positive && v <= 0 {
			bad("%s: %s = %g, want > 0", key, metric, v)
		} else if v < 0 {
			bad("%s: %s = %g, want >= 0", key, metric, v)
		}
	}

	phaseSet := map[string]bool{}
	for _, name := range fleet.PhaseNames {
		phaseSet[name] = true
	}

	for _, key := range f.FleetKeys() {
		e := f.Fleet[key]
		if e == nil {
			bad("%s: null entry", key)
			continue
		}
		if e.Devices <= 0 {
			bad("%s: devices = %d, want > 0", key, e.Devices)
		}
		if want := FleetKey(e.Devices); key != want {
			bad("%s: key does not match devices (want %s)", key, want)
		}
		if e.App == "" {
			bad("%s: app empty", key)
		}
		if e.Source != "sweep" && e.Source != "benchmark" {
			bad("%s: source %q, want sweep|benchmark", key, e.Source)
		}
		finite(key, "best.devices_per_sec", e.Best.DevicesPerSec, true)
		finite(key, "best.device_cycles_per_sec", e.Best.DeviceCyclesPerSec, true)
		for w, p := range e.Workers {
			finite(key+"/workers="+w, "devices_per_sec", p.DevicesPerSec, true)
			finite(key+"/workers="+w, "device_cycles_per_sec", p.DeviceCyclesPerSec, true)
		}
		if t := e.Telemetry; t != nil {
			finite(key, "telemetry.off.devices_per_sec", t.Off.DevicesPerSec, true)
			finite(key, "telemetry.on.devices_per_sec", t.On.DevicesPerSec, true)
			finite(key, "telemetry.overhead_pct", t.OverheadPct+100, false) // overhead may be slightly negative (noise)
		}
		if e.PeakRSSBytes < 0 {
			bad("%s: peak_rss_bytes = %d, want >= 0", key, e.PeakRSSBytes)
		}
		// Sweep entries must carry the per-device footprint: it is a gated
		// column (-compare) and the scaling sweep always measures it. The
		// legacy benchmark entries predate the column, so only finiteness
		// is required of them.
		finite(key, "bytes_per_device", e.BytesPerDevice, e.Source == "sweep")
		for name, sec := range e.PhaseSeconds {
			if !phaseSet[name] {
				bad("%s: unknown phase %q", key, name)
			}
			finite(key+"/phase="+name, "seconds", sec, false)
		}
		if len(e.PhaseSeconds) > 0 && len(e.PhaseSeconds) != len(fleet.PhaseNames) {
			bad("%s: %d phases recorded, want %d (all of %v)", key, len(e.PhaseSeconds), len(fleet.PhaseNames), fleet.PhaseNames)
		}
	}

	for name, e := range f.Opcodes {
		if e == nil {
			bad("opcode %s: null entry", name)
			continue
		}
		finite("opcode/"+name, "ns_per_instr", e.NsPerInstr, true)
		if e.Instrs <= 0 {
			bad("opcode %s: instrs = %d, want > 0", name, e.Instrs)
		}
	}

	for key, e := range f.MC {
		if e == nil {
			bad("mc %s: null entry", key)
			continue
		}
		if e.Program == "" {
			bad("mc %s: program empty", key)
		}
		if e.Depth <= 0 {
			bad("mc %s: depth = %d, want > 0", key, e.Depth)
		}
		if want := MCKey(e.Depth); key != want {
			bad("mc %s: key does not match depth (want %s)", key, want)
		}
		if e.Schedules <= 0 {
			bad("mc %s: schedules = %d, want > 0", key, e.Schedules)
		}
		if e.CyclesExplored <= 0 {
			bad("mc %s: cycles_explored = %d, want > 0", key, e.CyclesExplored)
		}
		finite("mc/"+key, "schedules_per_sec", e.SchedulesPerSec, true)
		finite("mc/"+key, "states_per_sec", e.StatesPerSec, true)
	}

	for key, e := range f.Gate {
		if e == nil {
			bad("gate %s: null entry", key)
			continue
		}
		if e.BatchFrames <= 0 {
			bad("gate %s: batch_frames = %d, want > 0", key, e.BatchFrames)
		}
		if want := GateKey(e.BatchFrames); key != want {
			bad("gate %s: key does not match batch_frames (want %s)", key, want)
		}
		if e.Batches <= 0 {
			bad("gate %s: batches = %d, want > 0", key, e.Batches)
		}
		finite("gate/"+key, "frames_per_sec", e.FramesPerSec, true)
		finite("gate/"+key, "wal_bytes_frame", e.WALBytesFrame, true)
		finite("gate/"+key, "recovery_ms", e.RecoveryMs, true)
	}
	return errs
}
