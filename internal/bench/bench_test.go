package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// legacyJSON is the exact shape the pre-schema BenchmarkFleetThroughput
// wrote — migration must keep old baselines comparable.
const legacyJSON = `{
  "app": "ghm",
  "cpus": 2,
  "n": 64,
  "speedup_w4_over_w1": 1.31,
  "telemetry": {
    "off": {"device_cycles_per_sec": 1310467707.4, "devices_per_sec": 5715.2},
    "on": {"device_cycles_per_sec": 1201181824.9, "devices_per_sec": 5106.4},
    "overhead_pct": 10.65
  },
  "workers_1": {"device_cycles_per_sec": 847516909.0, "devices_per_sec": 3771.8},
  "workers_2": {"device_cycles_per_sec": 972173955.1, "devices_per_sec": 4220.7},
  "workers_4": {"device_cycles_per_sec": 1150271322.7, "devices_per_sec": 4938.7}
}`

func TestMigrateLegacy(t *testing.T) {
	f, err := Parse([]byte(legacyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version %d", f.SchemaVersion)
	}
	if f.Host.CPUs != 2 {
		t.Fatalf("host.cpus %d, want legacy 2", f.Host.CPUs)
	}
	e := f.Fleet["n=64"]
	if e == nil {
		t.Fatalf("no n=64 entry: %v", f.FleetKeys())
	}
	if e.Devices != 64 || e.App != "ghm" || e.Source != "benchmark" {
		t.Fatalf("entry %+v", e)
	}
	if e.Best.DevicesPerSec != 4938.7 {
		t.Fatalf("best %.1f, want the workers_4 point", e.Best.DevicesPerSec)
	}
	if len(e.Workers) != 3 || e.Workers["2"].DeviceCyclesPerSec != 972173955.1 {
		t.Fatalf("workers %+v", e.Workers)
	}
	if e.Telemetry == nil || e.Telemetry.OverheadPct != 10.65 {
		t.Fatalf("telemetry %+v", e.Telemetry)
	}
	if e.SpeedupBestOverW1 != 1.31 {
		t.Fatalf("speedup %g", e.SpeedupBestOverW1)
	}
}

func TestParseRejectsFutureSchema(t *testing.T) {
	_, err := Parse([]byte(`{"schema_version": 99}`))
	if err == nil || !strings.Contains(err.Error(), "schema_version 99") {
		t.Fatalf("err = %v", err)
	}
}

func sampleEntry(n int) *FleetEntry {
	return &FleetEntry{
		Devices: n, App: "ghm", WallMs: 100, Source: "sweep",
		Best:    Point{DevicesPerSec: 1000, DeviceCyclesPerSec: 2e8},
		Workers: map[string]Point{"1": {DevicesPerSec: 1000, DeviceCyclesPerSec: 2e8}},
		Telemetry: &TelemetryPair{
			Off:         Point{DevicesPerSec: 1000, DeviceCyclesPerSec: 2e8},
			On:          Point{DevicesPerSec: 900, DeviceCyclesPerSec: 1.8e8},
			OverheadPct: 10,
		},
		PeakRSSBytes: 50 << 20, RSSResettable: true, BytesPerDevice: 4096,
		PhaseSeconds: map[string]float64{
			fleet.PhaseBuild: 0.01, fleet.PhaseDevices: 0.5, fleet.PhaseChannel: 0.02,
			fleet.PhaseGateway: 0.02, fleet.PhaseTelemetry: 0.001,
		},
		SpeedupBestOverW1: 1,
	}
}

// TestMergeByKey is satellite S2's contract: a sweep write and a legacy
// n=64 benchmark write land in the same file without clobbering each
// other.
func TestMergeByKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	// Seed the file with a migrated legacy baseline.
	if err := os.WriteFile(path, []byte(legacyJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	// A sweep merges its sizes in...
	err := Update(path, func(f *File) error {
		f.SetFleet(FleetKey(1000), sampleEntry(1000))
		f.SetFleet(FleetKey(10000), sampleEntry(10000))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...and an opcode run merges its table in, separately.
	err = Update(path, func(f *File) error {
		f.SetOpcode("Add", &OpcodeEntry{NsPerInstr: 12.5, Instrs: 100000})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"n=64", "n=1000", "n=10000"}
	got := f.FleetKeys()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("keys %v, want %v", got, want)
	}
	if f.Fleet["n=64"].Best.DevicesPerSec != 4938.7 {
		t.Fatalf("legacy entry clobbered: %+v", f.Fleet["n=64"])
	}
	if f.Opcodes["Add"].NsPerInstr != 12.5 {
		t.Fatalf("opcodes %+v", f.Opcodes)
	}
	if f.Host.CPUs != CurrentHost().CPUs {
		t.Fatalf("host not refreshed: %+v", f.Host)
	}
}

func twoLedgers() (*File, *File) {
	old, new := NewFile(), NewFile()
	for _, n := range []int{1000, 10000} {
		old.SetFleet(FleetKey(n), sampleEntry(n))
		new.SetFleet(FleetKey(n), sampleEntry(n))
	}
	old.SetOpcode("Add", &OpcodeEntry{NsPerInstr: 10, Instrs: 1e5})
	new.SetOpcode("Add", &OpcodeEntry{NsPerInstr: 10, Instrs: 1e5})
	return old, new
}

func TestCompareSelfIsClean(t *testing.T) {
	old, new := twoLedgers()
	if regs := Compare(old, new, 0, nil); len(regs) != 0 {
		t.Fatalf("self-compare flagged %v", regs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old, new := twoLedgers()
	// 40% throughput drop on n=1000, 50% RSS rise on n=10000, 2× opcode.
	new.Fleet["n=1000"].Best.DevicesPerSec = 600
	new.Fleet["n=10000"].PeakRSSBytes = 75 << 20
	new.Opcodes["Add"].NsPerInstr = 20

	regs := Compare(old, new, 0, nil)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions: %v", len(regs), regs)
	}
	kinds := map[string]string{}
	for _, r := range regs {
		kinds[r.Key] = r.Metric
		if r.DeltaPct <= 0 {
			t.Fatalf("delta not positive-is-worse: %v", r)
		}
	}
	if kinds["n=1000"] != "devices_per_sec" || kinds["n=10000"] != "peak_rss_bytes" || kinds["opcode/Add"] != "ns_per_instr" {
		t.Fatalf("kinds %v", kinds)
	}

	// A loose tolerance forgives all three.
	if regs := Compare(old, new, 1.5, nil); len(regs) != 0 {
		t.Fatalf("tolerance 150%% still flagged %v", regs)
	}
}

// TestCompareGatesBytesPerDevice: per-device footprint regressions are
// gated like throughput; missing measurements and improvements are not.
func TestCompareGatesBytesPerDevice(t *testing.T) {
	old, new := twoLedgers()
	new.Fleet["n=1000"].BytesPerDevice = sampleEntry(1000).BytesPerDevice * 2
	regs := Compare(old, new, 0, nil)
	if len(regs) != 1 || regs[0].Metric != "bytes_per_device" || regs[0].Key != "n=1000" {
		t.Fatalf("regs %v, want one bytes_per_device regression", regs)
	}
	if regs[0].DeltaPct <= 0 {
		t.Fatalf("delta not positive-is-worse: %v", regs[0])
	}

	new.Fleet["n=1000"].BytesPerDevice = 0 // unmeasured on one side: skipped
	if regs := Compare(old, new, 0, nil); len(regs) != 0 {
		t.Fatalf("unmeasured bytes/device flagged %v", regs)
	}
	new.Fleet["n=1000"].BytesPerDevice = 100 // improvement: never a regression
	if regs := Compare(old, new, 0, nil); len(regs) != 0 {
		t.Fatalf("improvement flagged %v", regs)
	}
}

func TestCompareSkipsMismatchedHosts(t *testing.T) {
	old, new := twoLedgers()
	new.Fleet["n=1000"].Best.DevicesPerSec = 1 // would be a huge regression
	new.Host.CPUs = old.Host.CPUs + 7
	var warn strings.Builder
	if regs := Compare(old, new, 0, &warn); len(regs) != 0 {
		t.Fatalf("cross-host compare flagged %v", regs)
	}
	if !strings.Contains(warn.String(), "hosts differ") {
		t.Fatalf("no warning: %q", warn.String())
	}
}

func TestCompareSkipsBaselineOnlyKeys(t *testing.T) {
	old, new := twoLedgers()
	delete(new.Fleet, "n=10000")
	var warn strings.Builder
	if regs := Compare(old, new, 0, &warn); len(regs) != 0 {
		t.Fatalf("missing key flagged %v", regs)
	}
	if !strings.Contains(warn.String(), "n=10000 only in baseline") {
		t.Fatalf("warning %q", warn.String())
	}
}

func TestCompareRSSModeMismatchNotGated(t *testing.T) {
	old, new := twoLedgers()
	new.Fleet["n=1000"].RSSResettable = false
	new.Fleet["n=1000"].PeakRSSBytes = 500 << 20 // monotone number, incomparable
	if regs := Compare(old, new, 0, nil); len(regs) != 0 {
		t.Fatalf("incomparable RSS flagged %v", regs)
	}
}

func TestValidate(t *testing.T) {
	f := NewFile()
	f.SetFleet(FleetKey(1000), sampleEntry(1000))
	f.SetOpcode("Add", &OpcodeEntry{NsPerInstr: 10, Instrs: 1e5})
	f.SetMC(MCKey(1), &MCEntry{
		Program: "swap", Depth: 1, Schedules: 28, CyclesExplored: 127740,
		SchedulesPerSec: 3e4, StatesPerSec: 1e8,
	})
	f.SetGate(GateKey(64), &GateEntry{
		BatchFrames: 64, Batches: 200, FramesPerSec: 3e5, WALBytesFrame: 53.4, RecoveryMs: 3.7,
	})
	if errs := Validate(f); len(errs) != 0 {
		t.Fatalf("valid file rejected: %v", errs)
	}

	// Break it several ways at once; every symptom must be reported.
	bad := NewFile()
	e := sampleEntry(500)
	e.Source = "vibes"
	e.PhaseSeconds["warp"] = 0.1
	bad.SetFleet("n=9999", e) // key/devices mismatch
	bad.SetOpcode("Sub", &OpcodeEntry{NsPerInstr: -1, Instrs: 0})
	bad.SetMC("depth=2", &MCEntry{Depth: 1, Schedules: 0, CyclesExplored: 0, SchedulesPerSec: 0, StatesPerSec: 0})
	bad.SetGate("batch=9", &GateEntry{BatchFrames: 1, Batches: 0, FramesPerSec: 0, WALBytesFrame: -1, RecoveryMs: 0})
	errs := Validate(bad)
	for _, want := range []string{"does not match devices", "source", "unknown phase", "ns_per_instr", "instrs",
		"program empty", "does not match depth", "schedules =", "cycles_explored", "schedules_per_sec", "states_per_sec",
		"does not match batch_frames", "batches =", "frames_per_sec", "wal_bytes_frame", "recovery_ms"} {
		found := false
		for _, err := range errs {
			if strings.Contains(err.Error(), want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no error mentioning %q in %v", want, errs)
		}
	}
}

// TestRunSweepSmall exercises the real sweep machinery on a fleet small
// enough for CI and checks the entry it produces honors the schema.
func TestRunSweepSmall(t *testing.T) {
	entries, err := RunSweep(SweepConfig{Ns: []int{8}, Workers: []int{1, 2}, WallMs: 20}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	e := entries["n=8"]
	if e == nil {
		t.Fatalf("entries %v", entries)
	}
	if e.Best.DevicesPerSec <= 0 || e.Best.DeviceCyclesPerSec <= 0 {
		t.Fatalf("best %+v", e.Best)
	}
	if len(e.Workers) != 2 {
		t.Fatalf("workers %+v", e.Workers)
	}
	if len(e.PhaseSeconds) != len(fleet.PhaseNames) {
		t.Fatalf("phases %+v", e.PhaseSeconds)
	}
	if e.Telemetry == nil || e.Telemetry.On.DevicesPerSec <= 0 {
		t.Fatalf("telemetry %+v", e.Telemetry)
	}
	if e.BytesPerDevice <= 0 {
		t.Fatalf("bytes/device %g", e.BytesPerDevice)
	}

	f := NewFile()
	for k, v := range entries {
		f.SetFleet(k, v)
	}
	if errs := Validate(f); len(errs) != 0 {
		t.Fatalf("sweep output fails validation: %v", errs)
	}
}
