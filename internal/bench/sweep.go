package bench

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// SweepConfig shapes a fleet scaling sweep. Zero values take the
// defaults the committed BENCH_fleet.json was generated with, so
// `ticsbench -sweep` with no extra flags reproduces the baseline.
type SweepConfig struct {
	Ns      []int   // fleet sizes; default {1000, 10000, 100000}
	Workers []int   // worker counts per size; default {1, GOMAXPROCS} deduped
	App     string  // default "ghm"
	WallMs  float64 // per-device simulated wall budget; default 100
	Seed    uint64  // default 42
}

func (sc *SweepConfig) defaults() {
	if len(sc.Ns) == 0 {
		sc.Ns = []int{1_000, 10_000, 100_000}
	}
	if len(sc.Workers) == 0 {
		sc.Workers = []int{1, runtime.GOMAXPROCS(0)}
	}
	seen := map[int]bool{}
	var ws []int
	for _, w := range sc.Workers {
		if w > 0 && !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	sc.Workers = ws
	if sc.App == "" {
		sc.App = "ghm"
	}
	if sc.WallMs == 0 {
		sc.WallMs = 100
	}
	if sc.Seed == 0 {
		sc.Seed = 42
	}
}

func (sc SweepConfig) fleetConfig(n, workers int, telemetry bool) fleet.Config {
	return fleet.Config{
		Devices: n, Workers: workers, App: sc.App,
		Power: "harvest:40000,800", Seed: sc.Seed, WallMs: sc.WallMs,
		Link:    fleet.LinkParams{Loss: 0.05, Dup: 0.02, DelayMinMs: 2, DelayMaxMs: 20},
		Collect: telemetry, Trace: telemetry, Profile: telemetry,
	}
}

// RunSweep measures the fleet at every size in sc and returns one
// entry per size, keyed FleetKey(n). Per size it runs the worker
// matrix with telemetry off, prices the full observability stack at
// the best worker count, and attributes peak RSS per size when the
// kernel lets us reset the high-water mark (obs.ResetPeakRSS);
// otherwise RSSResettable=false marks the number as monotone across
// the whole sweep. logf (may be nil) narrates progress — big sweeps
// run for many seconds.
func RunSweep(sc SweepConfig, logf func(format string, args ...any)) (map[string]*FleetEntry, error) {
	sc.defaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := map[string]*FleetEntry{}

	for _, n := range sc.Ns {
		resettable := obs.ResetPeakRSS()
		e := &FleetEntry{
			Devices: n, App: sc.App, WallMs: sc.WallMs, Source: "sweep",
			Workers: map[string]Point{}, RSSResettable: resettable,
		}

		bestWorkers := 0
		var bestRep *fleet.Report
		var bestAlloc uint64
		for _, w := range sc.Workers {
			pre := obs.SampleResources()
			rep, err := fleet.Run(sc.fleetConfig(n, w, false))
			if err != nil {
				return nil, fmt.Errorf("sweep n=%d workers=%d: %w", n, w, err)
			}
			alloc := rep.Resources.TotalAllocBytes - pre.TotalAllocBytes
			p := Point{
				DevicesPerSec:      float64(n) / rep.WallSeconds,
				DeviceCyclesPerSec: rep.Throughput,
			}
			e.Workers[fmt.Sprint(w)] = p
			logf("sweep n=%d workers=%d: %.0f devices/s, %.3gM device-cycles/s (%.0f ms round)",
				n, w, p.DevicesPerSec, p.DeviceCyclesPerSec/1e6, rep.WallSeconds*1000)
			if p.DevicesPerSec > e.Best.DevicesPerSec {
				e.Best, bestWorkers, bestRep, bestAlloc = p, w, rep, alloc
			}
		}
		if w1, ok := e.Workers["1"]; ok && w1.DevicesPerSec > 0 {
			e.SpeedupBestOverW1 = e.Best.DevicesPerSec / w1.DevicesPerSec
		}
		e.PhaseSeconds = fleet.PhaseMap(bestRep.Phases)
		e.BytesPerDevice = float64(bestAlloc) / float64(n)

		// Price the observability stack at the best worker count. The off
		// side re-runs rather than reusing bestRep so both sides see the
		// same cache/GC weather.
		offRep, err := fleet.Run(sc.fleetConfig(n, bestWorkers, false))
		if err != nil {
			return nil, fmt.Errorf("sweep n=%d telemetry-off: %w", n, err)
		}
		onRep, err := fleet.Run(sc.fleetConfig(n, bestWorkers, true))
		if err != nil {
			return nil, fmt.Errorf("sweep n=%d telemetry-on: %w", n, err)
		}
		off := Point{DevicesPerSec: float64(n) / offRep.WallSeconds, DeviceCyclesPerSec: offRep.Throughput}
		on := Point{DevicesPerSec: float64(n) / onRep.WallSeconds, DeviceCyclesPerSec: onRep.Throughput}
		e.Telemetry = &TelemetryPair{
			Off: off, On: on,
			OverheadPct: 100 * (off.DevicesPerSec - on.DevicesPerSec) / off.DevicesPerSec,
		}
		logf("sweep n=%d: telemetry overhead %.1f%%", n, e.Telemetry.OverheadPct)

		if rss := obs.SampleResources(); rss.PeakRSSBytes > 0 {
			e.PeakRSSBytes = rss.PeakRSSBytes
		}
		logf("sweep n=%d: best workers=%d, %.0f devices/s, peak RSS %.1f MB, %.0f B/device",
			n, bestWorkers, e.Best.DevicesPerSec, float64(e.PeakRSSBytes)/1e6, e.BytesPerDevice)
		out[FleetKey(n)] = e
	}
	return out, nil
}
