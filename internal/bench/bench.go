package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Load reads a ledger from path. The unversioned legacy layout (the
// flat n=64 object the old BenchmarkFleetThroughput wrote) is migrated
// into schema version 1; future versions are rejected rather than
// silently misread.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// LoadOrNew is Load, except a missing file yields a fresh empty ledger
// — the merge-by-key writers start from this.
func LoadOrNew(path string) (*File, error) {
	f, err := Load(path)
	if os.IsNotExist(err) {
		return NewFile(), nil
	}
	return f, err
}

// Parse decodes ledger bytes, migrating the legacy layout if needed.
func Parse(b []byte) (*File, error) {
	var probe struct {
		SchemaVersion *int `json:"schema_version"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if probe.SchemaVersion == nil {
		return migrateLegacy(b)
	}
	if *probe.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: schema_version %d, this build understands %d", *probe.SchemaVersion, SchemaVersion)
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if f.Fleet == nil {
		f.Fleet = map[string]*FleetEntry{}
	}
	return &f, nil
}

// migrateLegacy lifts the old flat BENCH_fleet.json (app/cpus/n/
// workers_N/telemetry/speedup_w4_over_w1) into one versioned fleet
// entry so -compare can gate against pre-schema baselines.
func migrateLegacy(b []byte) (*File, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(b, &raw); err != nil {
		return nil, fmt.Errorf("bench: legacy: %w", err)
	}
	if _, ok := raw["n"]; !ok {
		return nil, fmt.Errorf("bench: unrecognized layout (neither schema_version nor legacy n)")
	}
	e := &FleetEntry{Source: "benchmark", Workers: map[string]Point{}}
	f := NewFile()

	num := func(key string) float64 {
		var v float64
		if r, ok := raw[key]; ok {
			json.Unmarshal(r, &v)
		}
		return v
	}
	e.Devices = int(num("n"))
	if r, ok := raw["app"]; ok {
		json.Unmarshal(r, &e.App)
	}
	if c := int(num("cpus")); c > 0 {
		f.Host.CPUs = c
	}
	e.SpeedupBestOverW1 = num("speedup_w4_over_w1")

	for key, r := range raw {
		w, ok := strings.CutPrefix(key, "workers_")
		if !ok {
			continue
		}
		if _, err := strconv.Atoi(w); err != nil {
			continue
		}
		var p Point
		if err := json.Unmarshal(r, &p); err != nil {
			return nil, fmt.Errorf("bench: legacy %s: %w", key, err)
		}
		e.Workers[w] = p
		if p.DevicesPerSec > e.Best.DevicesPerSec {
			e.Best = p
		}
	}
	if r, ok := raw["telemetry"]; ok {
		var tp TelemetryPair
		if err := json.Unmarshal(r, &tp); err != nil {
			return nil, fmt.Errorf("bench: legacy telemetry: %w", err)
		}
		e.Telemetry = &tp
	}
	if e.Devices <= 0 {
		return nil, fmt.Errorf("bench: legacy n=%d", e.Devices)
	}
	f.SetFleet(FleetKey(e.Devices), e)
	return f, nil
}

// Save writes the ledger with stable formatting (indented, sorted keys
// courtesy of encoding/json's map ordering, trailing newline) so diffs
// stay readable.
func Save(path string, f *File) error {
	f.SchemaVersion = SchemaVersion
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Update loads path (or starts fresh), applies fn to merge new entries
// in, and saves — the single call sites use for merge-by-key writes.
func Update(path string, fn func(*File) error) error {
	f, err := LoadOrNew(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		return err
	}
	f.Host = CurrentHost() // the writer's host wins; stale host info lies
	return Save(path, f)
}
