// Package stats provides the statistics the evaluation needs: descriptive
// summaries, a seeded deterministic RNG with normal/log-normal variates,
// and the Wilcoxon signed-rank test the paper applies to the user-study
// bug-search times (§5.4: "Wilcoxon T Test ... rejected the hypothesis
// that TICS/InK results were the same with p-value below 0.001").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Wilcoxon holds the result of a signed-rank test.
type Wilcoxon struct {
	N     int     // pairs with non-zero difference
	W     float64 // min(W+, W-)
	WPlus float64
	Z     float64 // normal approximation with tie correction
	P     float64 // two-sided p-value
}

func (w Wilcoxon) String() string {
	return fmt.Sprintf("Wilcoxon{n=%d W=%.1f z=%.3f p=%.3g}", w.N, w.W, w.Z, w.P)
}

// WilcoxonSignedRank runs the paired two-sided test on xs vs ys. Zero
// differences are dropped; ties share average ranks; the normal
// approximation includes the tie correction (adequate for n ≥ ~10, and the
// study has 90 respondents).
func WilcoxonSignedRank(xs, ys []float64) (Wilcoxon, error) {
	if len(xs) != len(ys) {
		return Wilcoxon{}, fmt.Errorf("stats: paired test needs equal lengths, got %d and %d", len(xs), len(ys))
	}
	type diff struct {
		abs float64
		pos bool
	}
	var ds []diff
	for i := range xs {
		d := xs[i] - ys[i]
		if d == 0 {
			continue
		}
		ds = append(ds, diff{abs: math.Abs(d), pos: d > 0})
	}
	n := len(ds)
	if n == 0 {
		return Wilcoxon{P: 1}, nil
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].abs < ds[j].abs })
	// Average ranks over ties, accumulating the tie correction term.
	ranks := make([]float64, n)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && ds[j].abs == ds[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: mean of i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	wPlus := 0.0
	for i, d := range ds {
		if d.pos {
			wPlus += ranks[i]
		}
	}
	nf := float64(n)
	total := nf * (nf + 1) / 2
	wMinus := total - wPlus
	w := math.Min(wPlus, wMinus)
	meanW := total / 2
	varW := nf*(nf+1)*(2*nf+1)/24 - tieTerm/48
	if varW <= 0 {
		return Wilcoxon{N: n, W: w, WPlus: wPlus, P: 1}, nil
	}
	// Continuity-corrected z.
	z := (w - meanW + 0.5) / math.Sqrt(varW)
	p := 2 * normalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return Wilcoxon{N: n, W: w, WPlus: wPlus, Z: z, P: p}, nil
}

// normalCDF is the standard normal CDF.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// RNG is a small deterministic generator (xoshiro-style mix) with normal
// and log-normal variates, so experiments are reproducible without
// math/rand's global state.
type RNG struct {
	s     uint64
	spare float64
	has   bool
}

// NewRNG seeds a generator (seed 0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a standard normal variate (Box–Muller with caching).
func (r *RNG) Normal() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	var u, v float64
	for u = r.Float64(); u == 0; u = r.Float64() {
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.has = true
	return mag * math.Cos(2*math.Pi*v)
}

// LogNormal returns exp(mu + sigma·N(0,1)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
