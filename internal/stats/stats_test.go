package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := stats.Mean(xs); m != 5 {
		t.Fatalf("mean %f", m)
	}
	if s := stats.StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std %f", s)
	}
	if md := stats.Median(xs); md != 4.5 {
		t.Fatalf("median %f", md)
	}
	if stats.Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if stats.Mean(nil) != 0 || stats.StdDev([]float64{1}) != 0 || stats.Median(nil) != 0 {
		t.Fatal("degenerate inputs")
	}
}

// TestWilcoxonKnownExample reproduces a textbook signed-rank computation.
func TestWilcoxonKnownExample(t *testing.T) {
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	w, err := stats.WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// One zero difference drops; the classic answer is W = 18 with n = 9.
	if w.N != 9 {
		t.Fatalf("n = %d", w.N)
	}
	if math.Abs(w.W-18) > 1e-9 {
		t.Fatalf("W = %f, want 18", w.W)
	}
	if w.P < 0.05 || w.P > 1 {
		t.Fatalf("p = %f, expected not significant", w.P)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	rng := stats.NewRNG(11)
	var x, y []float64
	for i := 0; i < 80; i++ {
		base := rng.LogNormal(4, 0.3)
		x = append(x, base)
		y = append(y, base*1.6+5)
	}
	w, err := stats.WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if w.P > 1e-6 {
		t.Fatalf("large consistent shift not detected: %v", w)
	}
}

func TestWilcoxonProperties(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := stats.NewRNG(seed)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.Float64() * 100
		}
		w, err := stats.WilcoxonSignedRank(x, y)
		if err != nil {
			return false
		}
		if w.P < 0 || w.P > 1 {
			return false
		}
		// Symmetry: swapping the samples preserves W (min of W+, W-) and p.
		w2, _ := stats.WilcoxonSignedRank(y, x)
		return math.Abs(w.W-w2.W) < 1e-9 && math.Abs(w.P-w2.P) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := stats.WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	w, err := stats.WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2})
	if err != nil || w.P != 1 {
		t.Fatalf("all-ties: %v %v", w, err)
	}
}

func TestRNG(t *testing.T) {
	a, b := stats.NewRNG(5), stats.NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("nondeterministic")
		}
	}
	r := stats.NewRNG(6)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("uniform out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("uniform mean %f", mean)
	}
	var nsum, nsq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		nsum += v
		nsq += v * v
	}
	if m := nsum / float64(n); math.Abs(m) > 0.05 {
		t.Fatalf("normal mean %f", m)
	}
	if sd := math.Sqrt(nsq / float64(n)); math.Abs(sd-1) > 0.05 {
		t.Fatalf("normal sd %f", sd)
	}
	if r.Intn(0) != 0 {
		t.Fatal("Intn(0)")
	}
}
