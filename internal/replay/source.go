package replay

import (
	"math"

	"repro/internal/power"
)

// WindowRec is one powered window as actually drawn from a power source:
// the cycles granted and the off-time that followed. A recorded window
// sequence replaces the source's own randomness on replay, which is what
// makes harvester-powered runs bit-reproducible across revisions.
type WindowRec struct {
	Cycles int64   `json:"cycles"`
	OffMs  float64 `json:"off_ms"`
}

// RecordingSource wraps a power source and logs every window it grants.
type RecordingSource struct {
	Inner   power.Source
	Windows []WindowRec
}

func (r *RecordingSource) Name() string { return r.Inner.Name() }

func (r *RecordingSource) NextWindow() (int64, float64) {
	c, off := r.Inner.NextWindow()
	r.Windows = append(r.Windows, WindowRec{Cycles: c, OffMs: off})
	return c, off
}

func (r *RecordingSource) Reset() {
	r.Inner.Reset()
	r.Windows = nil
}

// PlaybackSource replays a recorded window sequence verbatim. If a replay
// outlives the recording (it should not, for a faithful re-execution of
// the same program), it degrades to continuous power rather than
// inventing windows the recorded run never saw.
type PlaybackSource struct {
	Windows []WindowRec
	pos     int
}

func (p *PlaybackSource) Name() string { return "replay" }

func (p *PlaybackSource) NextWindow() (int64, float64) {
	if p.pos >= len(p.Windows) {
		return math.MaxInt64, 0
	}
	w := p.Windows[p.pos]
	p.pos++
	return w.Cycles, w.OffMs
}

func (p *PlaybackSource) Reset() { p.pos = 0 }

// Exhausted reports whether the replay consumed the full recording.
func (p *PlaybackSource) Exhausted() bool { return p.pos >= len(p.Windows) }
