package replay_test

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/replay"
)

func TestRecordingSourceLogsEveryWindow(t *testing.T) {
	rs := &replay.RecordingSource{Inner: &power.FailEvery{Cycles: 100, OffMs: 3}}
	for i := 0; i < 5; i++ {
		rs.NextWindow()
	}
	if len(rs.Windows) != 5 {
		t.Fatalf("logged %d windows, want 5", len(rs.Windows))
	}
	for _, w := range rs.Windows {
		if w.Cycles != 100 || w.OffMs != 3 {
			t.Fatalf("window %+v, want {100 3}", w)
		}
	}
	rs.Reset()
	if len(rs.Windows) != 0 {
		t.Fatal("Reset did not clear the log")
	}
}

func TestPlaybackSourceReplaysVerbatimThenDegrades(t *testing.T) {
	ws := []replay.WindowRec{{Cycles: 7, OffMs: 1.5}, {Cycles: 9, OffMs: 0}}
	ps := &replay.PlaybackSource{Windows: ws}
	for i, want := range ws {
		c, off := ps.NextWindow()
		if c != want.Cycles || off != want.OffMs {
			t.Fatalf("window %d: got (%d,%v) want %+v", i, c, off, want)
		}
	}
	if !ps.Exhausted() {
		t.Fatal("not exhausted after draining")
	}
	if c, _ := ps.NextWindow(); c != math.MaxInt64 {
		t.Fatalf("post-exhaustion window = %d, want effectively-continuous", c)
	}
	ps.Reset()
	if c, _ := ps.NextWindow(); c != 7 {
		t.Fatalf("Reset did not rewind: first window %d", c)
	}
}

func TestFirstDivergence(t *testing.T) {
	a := []obs.Event{{Kind: obs.EvSend, Arg0: 1}, {Kind: obs.EvSend, Arg0: 2}}
	same := []obs.Event{{Kind: obs.EvSend, Arg0: 1}, {Kind: obs.EvSend, Arg0: 2}}
	if i, d := replay.FirstDivergence(a, same); d {
		t.Fatalf("identical streams diverge at %d", i)
	}
	mut := []obs.Event{{Kind: obs.EvSend, Arg0: 1}, {Kind: obs.EvSend, Arg0: 3}}
	if i, d := replay.FirstDivergence(a, mut); !d || i != 1 {
		t.Fatalf("want divergence at 1, got (%d,%v)", i, d)
	}
	prefix := a[:1]
	if i, d := replay.FirstDivergence(a, prefix); !d || i != 1 {
		t.Fatalf("strict prefix: want divergence at 1, got (%d,%v)", i, d)
	}
}

func TestManifestRoundTripAndReplayFromFile(t *testing.T) {
	spec := replay.Spec{
		Source:  "int g; int main(){ g = 2; out(1, g); return 0; }",
		Runtime: "tics",
		Power:   "fail:5000",
		Clock:   "perfect",
		Seed:    3,
	}
	man, run, err := replay.Record(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Events) == 0 || man.EventCount != int64(len(run.Events)) {
		t.Fatalf("manifest counts %d events, run has %d", man.EventCount, len(run.Events))
	}
	if len(man.Windows) == 0 {
		t.Fatal("no power windows recorded")
	}

	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := replay.WriteManifest(path, man); err != nil {
		t.Fatal(err)
	}
	back, err := replay.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man, back) {
		t.Fatalf("manifest round trip mutated it:\n%+v\n%+v", man, back)
	}

	rerun, err := replay.Replay(back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.VerifyReplay(back, rerun); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRejectsUnknownVersion(t *testing.T) {
	if _, err := replay.Replay(&replay.Manifest{Version: 99}, nil); err == nil {
		t.Fatal("version 99 accepted")
	}
}

func TestParsePowerAndClockErrors(t *testing.T) {
	for _, bad := range []string{"", "solar", "duty:x", "fail:x", "harvest:1", "harvest:a,b"} {
		if _, err := replay.ParsePower(bad, 1); err == nil {
			t.Fatalf("ParsePower(%q) accepted", bad)
		}
	}
	for _, bad := range []string{"", "sundial", "rtc:x", "remanence:1", "remanence:a,b"} {
		if _, err := replay.ParseClock(bad, 1); err == nil {
			t.Fatalf("ParseClock(%q) accepted", bad)
		}
	}
	if src, err := replay.ParsePower("harvest:25000,300", 42); err != nil || src.Name() == "" {
		t.Fatalf("harvest parse: %v", err)
	}
}
