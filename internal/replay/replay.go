// Package replay provides deterministic record/replay for machine runs.
//
// Every source of nondeterminism in a run is already seeded (harvester
// RNG, clock remanence, sensors), so a run is a pure function of its
// configuration. A Manifest pins that configuration down — program hash,
// runtime, power/clock specs, seed — plus the power windows *actually
// drawn*, so a replay does not even need the power source's RNG: it
// feeds back the recorded windows verbatim. Re-executing the manifest
// must reproduce the byte-identical event stream (verified by SHA-256
// over the JSONL encoding), and a divergence bisector replays the same
// manifest under a second runtime (or a second revision of the code) and
// reports the first event where the two streams part ways.
package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/vm"
)

// Spec is the reproducible description of one run: everything ticsrun
// would need to set the run up again, in ticsrun's own flag syntax.
type Spec struct {
	App     string `json:"app,omitempty"`    // built-in benchmark name, or
	Source  string `json:"source,omitempty"` // inline TICS-C source
	Runtime string `json:"runtime"`
	Segment int    `json:"segment,omitempty"` // TICS segment bytes (0 = minimum)

	Power string `json:"power"` // continuous | duty:RATE | fail:CYCLES | sched:... | harvest:CAP,RATE
	Clock string `json:"clock"` // perfect | rtc:RES_MS | remanence:ERR,MAX_MS
	Seed  uint64 `json:"seed"`  // sensor/power/clock seed

	// Build knobs beyond Segment that change the image (and therefore the
	// event stream a replay must reproduce). StackBytes sizes the stack
	// region / TICS segment arena (0 = runtime default); UndoCapBytes
	// sizes the TICS undo log (0 = default); VersionGlobals toggles
	// Mementos' global versioning (nil = default true; false reproduces
	// the Table 1 WAR-violation counterexamples).
	StackBytes     int   `json:"stack_bytes,omitempty"`
	UndoCapBytes   int   `json:"undo_cap_bytes,omitempty"`
	VersionGlobals *bool `json:"version_globals,omitempty"`

	TimerMs   float64 `json:"timer_ms,omitempty"`
	WallMs    float64 `json:"wall_ms,omitempty"`
	MaxCycles int64   `json:"max_cycles,omitempty"`
	// Virtualize buffers radio sends in the runtime's commit machinery
	// (vm.Config.VirtualizeSends) so committed sends transmit exactly
	// once. Part of the spec because it changes the send log a replay
	// must reproduce.
	Virtualize bool `json:"virtualize,omitempty"`
}

// ResultDigest summarizes a run result for cross-checking a replay.
type ResultDigest struct {
	Completed bool   `json:"completed"`
	Starved   bool   `json:"starved,omitempty"`
	TimedOut  bool   `json:"timed_out,omitempty"`
	Fault     string `json:"fault,omitempty"`
	Cycles    int64  `json:"cycles"`
	Failures  int    `json:"failures"`
	Restores  int64  `json:"restores"`
	Commits   int64  `json:"commits"`
	Sends     int    `json:"sends"`
}

func digestOf(res vm.Result) ResultDigest {
	d := ResultDigest{
		Completed: res.Completed,
		Starved:   res.Starved,
		TimedOut:  res.TimedOut,
		Cycles:    res.Cycles,
		Failures:  res.Failures,
		Restores:  res.Restores,
		Commits:   res.TotalCheckpoints,
		Sends:     len(res.SendLog),
	}
	if res.Fault != nil {
		d.Fault = res.Fault.Error()
	}
	return d
}

// Manifest is the serialized record of one run — the input ticsrun
// -record writes and -replay re-executes.
type Manifest struct {
	Version       int          `json:"version"`
	Spec          Spec         `json:"spec"`
	ProgramSHA256 string       `json:"program_sha256"` // hash of the program source text
	PowerName     string       `json:"power_name"`     // name of the recorded source
	Windows       []WindowRec  `json:"windows"`        // power windows actually drawn
	EventCount    int64        `json:"event_count"`
	EventsSHA256  string       `json:"events_sha256"` // SHA-256 of the full JSONL event stream
	Result        ResultDigest `json:"result"`
}

// Run is one executed (recorded or replayed) run with its full event
// stream — every event emitted, independent of ring capacity.
type Run struct {
	Events []obs.Event
	JSONL  []byte // the stream's JSONL encoding (the replay comparison unit)
	SHA256 string
	Result vm.Result
	Res    ResultDigest
}

// AttachFunc lets callers hook extra observers (the trace auditor) onto
// the machine before it runs.
type AttachFunc func(m *vm.Machine) error

// capture is the obs.Sink that retains the complete event stream.
type capture struct{ events []obs.Event }

func (c *capture) OnEvent(_ int64, ev obs.Event) { c.events = append(c.events, ev) }

// BuildImage resolves the spec's program (built-in app or inline source)
// and builds it for the spec's runtime. The returned image is immutable
// after linking, so callers running many devices (internal/fleet) build
// once and share it across machines; the source text is returned for
// program hashing.
func BuildImage(spec Spec) (*tics.Image, string, error) {
	opts := tics.BuildOptions{
		Runtime:        tics.RuntimeKind(spec.Runtime),
		SegmentBytes:   spec.Segment,
		StackBytes:     spec.StackBytes,
		UndoCapBytes:   spec.UndoCapBytes,
		VersionGlobals: spec.VersionGlobals,
	}
	src := spec.Source
	if spec.App != "" {
		app, ok := apps.ByName(spec.App)
		if !ok {
			return nil, "", fmt.Errorf("replay: unknown app %q", spec.App)
		}
		src = app.Source
		if opts.Runtime == tics.RTAlpaca || opts.Runtime == tics.RTInK || opts.Runtime == tics.RTMayFly {
			taskSrc, tasks, edges := app.TaskSource, app.Tasks, app.Edges
			if opts.Runtime == tics.RTMayFly {
				taskSrc, tasks, edges = app.ForMayfly()
			}
			if taskSrc == "" {
				return nil, "", fmt.Errorf("replay: %s has no task port", app.Name)
			}
			src, opts.Tasks, opts.Edges = taskSrc, tasks, edges
		}
	}
	if src == "" {
		return nil, "", fmt.Errorf("replay: spec names neither an app nor inline source")
	}
	img, err := tics.Build(src, opts)
	if err != nil {
		return nil, "", err
	}
	return img, src, nil
}

// execute runs the spec with the given power source and returns the full
// captured stream.
func execute(spec Spec, src power.Source, attach AttachFunc) (*Run, error) {
	img, _, err := BuildImage(spec)
	if err != nil {
		return nil, err
	}
	clockSpec := spec.Clock
	if clockSpec == "" {
		clockSpec = "perfect"
	}
	clock, err := ParseClock(clockSpec, spec.Seed)
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(obs.Options{RingCap: 1024})
	cap := &capture{}
	rec.AddSink(cap)
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:           src,
		Clock:           clock,
		Sensors:         sensors.NewBank(spec.Seed),
		AutoCpPeriodMs:  spec.TimerMs,
		MaxWallMs:       spec.WallMs,
		MaxCycles:       spec.MaxCycles,
		VirtualizeSends: spec.Virtualize,
		Recorder:        rec,
	})
	if err != nil {
		return nil, err
	}
	if attach != nil {
		if err := attach(m); err != nil {
			return nil, err
		}
	}
	res, _ := m.Run() // a fault is itself a reproducible outcome
	jsonl, err := obs.EventsJSONL(cap.events)
	if err != nil {
		return nil, err
	}
	return &Run{
		Events: cap.events,
		JSONL:  jsonl,
		SHA256: sha256Hex(jsonl),
		Result: res,
		Res:    digestOf(res),
	}, nil
}

// Record executes the spec against its live power source, logging every
// window drawn, and returns the manifest a replay needs plus the run.
func Record(spec Spec, attach AttachFunc) (*Manifest, *Run, error) {
	if spec.Power == "" {
		spec.Power = "continuous"
	}
	if spec.Clock == "" {
		spec.Clock = "perfect"
	}
	inner, err := ParsePower(spec.Power, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	recSrc := &RecordingSource{Inner: inner}
	run, err := execute(spec, recSrc, attach)
	if err != nil {
		return nil, nil, err
	}
	_, src, err := BuildImage(spec) // re-resolve for the program hash
	if err != nil {
		return nil, nil, err
	}
	man := &Manifest{
		Version:       1,
		Spec:          spec,
		ProgramSHA256: sha256Hex([]byte(src)),
		PowerName:     inner.Name(),
		Windows:       recSrc.Windows,
		EventCount:    int64(len(run.Events)),
		EventsSHA256:  run.SHA256,
		Result:        run.Res,
	}
	return man, run, nil
}

// Replay re-executes the manifest, feeding back the recorded power
// windows verbatim. Compare the returned run against the manifest with
// VerifyReplay.
func Replay(man *Manifest, attach AttachFunc) (*Run, error) {
	if man.Version != 1 {
		return nil, fmt.Errorf("replay: unsupported manifest version %d", man.Version)
	}
	return execute(man.Spec, &PlaybackSource{Windows: man.Windows}, attach)
}

// VerifyReplay checks a replayed run against the manifest's recorded
// stream: event count, byte-identical JSONL (by SHA-256), and the result
// digest. nil means the replay reproduced the run exactly.
func VerifyReplay(man *Manifest, run *Run) error {
	if int64(len(run.Events)) != man.EventCount {
		return fmt.Errorf("replay diverged: %d events, recorded run had %d", len(run.Events), man.EventCount)
	}
	if run.SHA256 != man.EventsSHA256 {
		return fmt.Errorf("replay diverged: event stream SHA-256 %s != recorded %s", run.SHA256, man.EventsSHA256)
	}
	if run.Res != man.Result {
		return fmt.Errorf("replay diverged: result %+v != recorded %+v", run.Res, man.Result)
	}
	return nil
}

// FirstDivergence returns the index of the first event where the two
// streams differ (an index equal to the shorter length means one stream
// is a strict prefix of the other), and whether they diverge at all.
func FirstDivergence(a, b []obs.Event) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, true
		}
	}
	if len(a) != len(b) {
		return n, true
	}
	return -1, false
}

// BisectReport is the outcome of replaying one manifest under two
// runtimes (or two revisions).
type BisectReport struct {
	Identical bool
	Index     int // first divergent event index (valid when !Identical)
	Baseline  *Run
	Alt       *Run
	BaseEvent *obs.Event // event at Index in the baseline (nil if past its end)
	AltEvent  *obs.Event // event at Index in the alternate (nil if past its end)
}

func (r *BisectReport) String() string {
	if r.Identical {
		return fmt.Sprintf("streams identical (%d events)", len(r.Baseline.Events))
	}
	s := fmt.Sprintf("first divergence at event %d:\n", r.Index)
	if r.BaseEvent != nil {
		s += fmt.Sprintf("  baseline:  %s cycles=%d arg0=%d arg1=%d\n",
			r.BaseEvent.Kind, r.BaseEvent.Cycles, r.BaseEvent.Arg0, r.BaseEvent.Arg1)
	} else {
		s += fmt.Sprintf("  baseline:  <stream ends at %d events>\n", len(r.Baseline.Events))
	}
	if r.AltEvent != nil {
		s += fmt.Sprintf("  alternate: %s cycles=%d arg0=%d arg1=%d\n",
			r.AltEvent.Kind, r.AltEvent.Cycles, r.AltEvent.Arg0, r.AltEvent.Arg1)
	} else {
		s += fmt.Sprintf("  alternate: <stream ends at %d events>\n", len(r.Alt.Events))
	}
	return s
}

// Bisect replays the manifest twice — once as recorded and once under
// altRuntime (same program, same windows, same seeds) — and reports the
// first event-stream divergence. An empty altRuntime re-runs the
// recorded runtime, turning the bisector into a pure determinism check
// across revisions.
func Bisect(man *Manifest, altRuntime string, attach AttachFunc) (*BisectReport, error) {
	base, err := Replay(man, attach)
	if err != nil {
		return nil, err
	}
	altMan := *man
	if altRuntime != "" {
		altMan.Spec.Runtime = altRuntime
	}
	alt, err := Replay(&altMan, attach)
	if err != nil {
		return nil, err
	}
	rep := &BisectReport{Baseline: base, Alt: alt}
	idx, diverged := FirstDivergence(base.Events, alt.Events)
	if !diverged {
		rep.Identical = true
		return rep, nil
	}
	rep.Index = idx
	if idx < len(base.Events) {
		ev := base.Events[idx]
		rep.BaseEvent = &ev
	}
	if idx < len(alt.Events) {
		ev := alt.Events[idx]
		rep.AltEvent = &ev
	}
	return rep, nil
}

// WriteManifest serializes the manifest as indented JSON to path.
func WriteManifest(path string, man *Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadManifest loads a manifest written by WriteManifest.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("replay: %s: %w", path, err)
	}
	return &man, nil
}

func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
