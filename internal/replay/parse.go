package replay

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/power"
	"repro/internal/timekeeper"
)

// ParsePower builds a power source from ticsrun's -power syntax:
// continuous | duty:RATE | fail:CYCLES | sched:C@OFF,... |
// harvest:CAP,RATE. The same string goes into a replay Spec, which is why
// it lives here.
func ParsePower(arg string, seed uint64) (power.Source, error) {
	switch {
	case arg == "continuous":
		return power.Continuous{}, nil
	case strings.HasPrefix(arg, "duty:"):
		rate, err := strconv.ParseFloat(arg[5:], 64)
		if err != nil {
			return nil, err
		}
		return &power.DutyCycle{Rate: rate, OnMs: 40}, nil
	case strings.HasPrefix(arg, "fail:"):
		n, err := strconv.ParseInt(arg[5:], 10, 64)
		if err != nil {
			return nil, err
		}
		return &power.FailEvery{Cycles: n, OffMs: 20}, nil
	case strings.HasPrefix(arg, "sched:"):
		// Explicit cycle-exact reboot schedule (internal/mc counterexamples).
		return power.ParseSchedule(arg)
	case strings.HasPrefix(arg, "harvest:"):
		parts := strings.Split(arg[8:], ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("harvest wants CAP,RATE")
		}
		cap, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, err
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		return power.NewHarvester(cap, rate, 0.8, seed), nil
	}
	return nil, fmt.Errorf("unknown power source %q", arg)
}

// ParseClock builds a persistent timekeeper from ticsrun's -clock
// syntax: perfect | rtc:RES_MS | remanence:ERR,MAX_MS.
func ParseClock(arg string, seed uint64) (timekeeper.Keeper, error) {
	switch {
	case arg == "perfect":
		return &timekeeper.Perfect{}, nil
	case strings.HasPrefix(arg, "rtc:"):
		res, err := strconv.ParseFloat(arg[4:], 64)
		if err != nil {
			return nil, err
		}
		return &timekeeper.RTC{ResolutionMs: res}, nil
	case strings.HasPrefix(arg, "remanence:"):
		parts := strings.Split(arg[10:], ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("remanence wants ERR,MAX_MS")
		}
		errFrac, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, err
		}
		max, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		return timekeeper.NewRemanence(errFrac, max, seed), nil
	}
	return nil, fmt.Errorf("unknown clock %q", arg)
}
