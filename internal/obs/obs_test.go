package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingRetainsTailAndCountsDrops(t *testing.T) {
	r := NewRecorder(Options{RingCap: 4})
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvSend, Cycles: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycles != int64(6+i) {
			t.Fatalf("event %d has cycles %d, want %d (oldest-first tail)", i, ev.Cycles, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	if r.Metrics().Counter("sends") != 10 {
		t.Fatalf("metrics must be exact despite drops: sends=%d", r.Metrics().Counter("sends"))
	}
}

func TestMaskFiltersRingNotMetrics(t *testing.T) {
	r := NewRecorder(Options{Keep: MaskOf(EvCheckpointCommit)})
	r.Emit(Event{Kind: EvUndoAppend})
	r.Emit(Event{Kind: EvCheckpointCommit, Cycles: 5})
	if n := len(r.Events()); n != 1 {
		t.Fatalf("ring kept %d events, want 1", n)
	}
	if r.Metrics().Counter("undo_appends") != 1 {
		t.Fatal("filtered kinds must still update metrics")
	}
	if r.CountKind(EvCheckpointCommit) != 1 {
		t.Fatal("kept kind missing from ring")
	}
}

func TestCounterSnapshotIsDefensive(t *testing.T) {
	g := NewRegistry()
	g.Inc("x")
	snap := g.CounterSnapshot()
	snap["x"] = 999
	snap["injected"] = 1
	if g.Counter("x") != 1 {
		t.Fatalf("mutating the snapshot corrupted the live counter: %d", g.Counter("x"))
	}
	if g.Counter("injected") != 0 {
		t.Fatal("snapshot writes leaked into the registry")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, v := range []float64{1, 10, 11, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1} // <=10, <=100, overflow
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Count != 4 || h.Min != 1 || h.Max != 1000 {
		t.Fatalf("summary stats: %+v", h)
	}
	if h.Mean() != (1+10+11+1000)/4.0 {
		t.Fatalf("mean %g", h.Mean())
	}
}

func TestRegistryDumpIsDeterministic(t *testing.T) {
	g := NewRegistry()
	g.Inc("b")
	g.Inc("a")
	g.Observe("lat", 3)
	var b1, b2 bytes.Buffer
	g.Dump(&b1)
	g.Dump(&b2)
	if b1.String() != b2.String() {
		t.Fatal("two dumps of the same registry differ")
	}
	if strings.Index(b1.String(), "counter a") > strings.Index(b1.String(), "counter b") {
		t.Fatalf("counters not sorted:\n%s", b1.String())
	}
}

func TestCategoryPartition(t *testing.T) {
	r := NewRecorder(Options{Profile: true})
	r.OnSpend(10) // app
	r.PushCategory(CatCheckpoint)
	r.OnSpend(7)
	r.PopCategory()
	r.OnSpend(3) // app again, then a power failure strikes
	r.OnPowerFail()
	r.PushCategory(CatRestore)
	r.OnSpend(5)
	r.PopCategory()
	r.OnSpend(2)
	r.Finish()
	p := r.Profile()
	if p.ByCategory[CatDead.String()] != 20 {
		t.Fatalf("dead = %d, want 20 (all pre-failure work)", p.ByCategory[CatDead.String()])
	}
	if p.ByCategory[CatRestore.String()] != 5 || p.ByCategory[CatApp.String()] != 2 {
		t.Fatalf("partition: %v", p.ByCategory)
	}
	if p.TotalCycles() != 27 {
		t.Fatalf("total %d, want 27", p.TotalCycles())
	}
	if got := p.ReexecRatio(); got != 20.0/27.0 {
		t.Fatalf("reexec ratio %g", got)
	}
}

func TestProfileIncludesPendingCycles(t *testing.T) {
	r := NewRecorder(Options{Profile: true})
	r.OnSpend(4)
	// No Finish: a mid-run snapshot must still account every cycle.
	if r.Profile().TotalCycles() != 4 {
		t.Fatalf("pending cycles missing from snapshot: %d", r.Profile().TotalCycles())
	}
}

func TestShadowStackFolding(t *testing.T) {
	r := NewRecorder(Options{Profile: true})
	r.SetFunctions([]string{"main", "leaf"})
	r.OnSpend(1)   // boot stub
	r.EnterFunc(0) // main
	r.OnSpend(2)
	r.EnterFunc(1) // leaf
	r.OnSpend(3)
	r.LeaveFunc()
	r.OnSpend(4)
	r.Finish()
	p := r.Profile()
	if p.Folded["(device)"] != 1 || p.Folded["(device);main"] != 6 || p.Folded["(device);main;leaf"] != 3 {
		t.Fatalf("folded: %v", p.Folded)
	}
	if p.ByFunction["main"] != 6 || p.ByFunction["leaf"] != 3 || p.ByFunction["(stub)"] != 1 {
		t.Fatalf("by function: %v", p.ByFunction)
	}
	// A restore re-roots the stack at the live function.
	r.ResetStack(1)
	r.OnSpend(9)
	if r.Profile().Folded["(device);leaf"] != 9 {
		t.Fatalf("re-rooted folding: %v", r.Profile().Folded)
	}
}

func TestCheckpointLatencyPairing(t *testing.T) {
	r := NewRecorder(Options{})
	r.Emit(Event{Kind: EvCheckpointBegin, Cycles: 100, Arg1: 64})
	r.Emit(Event{Kind: EvCheckpointCommit, Cycles: 140})
	evs := r.Events()
	if evs[1].Arg1 != 40 {
		t.Fatalf("commit latency %d, want 40", evs[1].Arg1)
	}
	h := r.Metrics().Histogram("checkpoint_latency_cycles")
	if h.Count != 1 || h.Sum != 40 {
		t.Fatalf("latency histogram: %+v", h)
	}
	if s := r.Metrics().Histogram("checkpoint_size_bytes"); s.Count != 1 || s.Sum != 64 {
		t.Fatalf("size histogram: %+v", s)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(Options{})
	r.Emit(Event{Kind: EvBoot, Arg0: 1})
	r.Emit(Event{Kind: EvSend, Cycles: 10, TrueMs: 0.01, Arg0: 42})
	var b bytes.Buffer
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["kind"] != "send" || obj["arg0"] != float64(42) {
		t.Fatalf("line: %v", obj)
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := NewRecorder(Options{})
	r.Emit(Event{Kind: EvCheckpointBegin, Cycles: 0, TrueMs: 1})
	r.Emit(Event{Kind: EvCheckpointCommit, Cycles: 50, TrueMs: 1.05})
	r.Emit(Event{Kind: EvISREnter, TrueMs: 2})
	r.Emit(Event{Kind: EvISRExit, TrueMs: 2.1})
	r.Emit(Event{Kind: EvPowerFail, TrueMs: 3})
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TsUs  float64 `json:"ts"`
			DurUs float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace JSON: %v", err)
	}
	byName := map[string]string{}
	for _, te := range doc.TraceEvents {
		byName[te.Name+"/"+te.Phase] = te.Name
		if te.Name == "checkpoint" && te.Phase == "X" && te.DurUs != 50 {
			t.Fatalf("checkpoint duration %g µs, want 50", te.DurUs)
		}
	}
	for _, want := range []string{"checkpoint/X", "isr/B", "isr/E", "power-failure/i", "process_name/M"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing %s in %v", want, byName)
		}
	}
}

func TestWriteFolded(t *testing.T) {
	p := Profile{Folded: map[string]int64{"(device);main": 7, "(device)": 0, "(device);a": 1}}
	var b bytes.Buffer
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "(device);a 1\n(device);main 7\n" {
		t.Fatalf("folded output:\n%s", b.String())
	}
}

// TestDroppedExportedThroughRegistry: ring overflow is visible to a
// metrics scrape, not just to callers holding the Recorder — alongside
// the ring capacity gauge, so "ring too small" is diagnosable remotely.
func TestDroppedExportedThroughRegistry(t *testing.T) {
	r := NewRecorder(Options{RingCap: 4})
	if r.RingCap() != 4 {
		t.Fatalf("RingCap = %d, want 4", r.RingCap())
	}
	if got := r.Metrics().Gauge("trace_ring_cap"); got != 4 {
		t.Fatalf("trace_ring_cap gauge = %v, want 4", got)
	}
	if got := r.Metrics().Counter("trace_events_dropped"); got != 0 {
		t.Fatalf("dropped counter before overflow = %d, want 0", got)
	}
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvSend, Cycles: int64(i)})
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", r.Dropped())
	}
	if got := r.Metrics().Counter("trace_events_dropped"); got != r.Dropped() {
		t.Fatalf("registry says %d dropped, recorder says %d", got, r.Dropped())
	}
}

func TestMergeProfiles(t *testing.T) {
	a := Profile{
		ByCategory: map[string]int64{"app": 10, "checkpoint": 2},
		ByFunction: map[string]int64{"main": 12},
		Folded:     map[string]int64{"main": 10, "main;ckpt": 2},
	}
	b := Profile{
		ByCategory: map[string]int64{"app": 5, "restore": 1},
		ByFunction: map[string]int64{"main": 5, "f": 1},
		Folded:     map[string]int64{"main": 5, "main;f": 1},
	}
	m := MergeProfiles(a, b)
	if m.ByCategory["app"] != 15 || m.ByCategory["checkpoint"] != 2 || m.ByCategory["restore"] != 1 {
		t.Fatalf("ByCategory merge wrong: %v", m.ByCategory)
	}
	if m.ByFunction["main"] != 17 || m.ByFunction["f"] != 1 {
		t.Fatalf("ByFunction merge wrong: %v", m.ByFunction)
	}
	if m.Folded["main"] != 15 || m.Folded["main;ckpt"] != 2 || m.Folded["main;f"] != 1 {
		t.Fatalf("Folded merge wrong: %v", m.Folded)
	}
	// Merging zero profiles yields an empty, usable profile.
	empty := MergeProfiles()
	if len(empty.ByCategory) != 0 || empty.ByCategory == nil {
		t.Fatalf("empty merge: %+v", empty)
	}
	// Inputs are not aliased by the merge.
	m.ByCategory["app"] = 999
	if a.ByCategory["app"] != 10 || b.ByCategory["app"] != 5 {
		t.Fatal("merge aliased an input map")
	}
}
