package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonlEvent is the JSONL wire form of an Event.
type jsonlEvent struct {
	Kind     string  `json:"kind"`
	Cycles   int64   `json:"cycles"`
	TrueMs   float64 `json:"true_ms"`
	DeviceMs int64   `json:"device_ms"`
	Arg0     int64   `json:"arg0,omitempty"`
	Arg1     int64   `json:"arg1,omitempty"`
}

// AppendJSONL appends ev's JSONL wire form (one object, trailing newline)
// to dst and returns the extended slice. The encoding is byte-identical
// to WriteJSONL's per-line output, which is what makes replayed event
// streams comparable byte-for-byte.
func AppendJSONL(dst []byte, ev Event) ([]byte, error) {
	b, err := json.Marshal(jsonlEvent{
		Kind:     ev.Kind.String(),
		Cycles:   ev.Cycles,
		TrueMs:   ev.TrueMs,
		DeviceMs: ev.DeviceMs,
		Arg0:     ev.Arg0,
		Arg1:     ev.Arg1,
	})
	if err != nil {
		return dst, err
	}
	return append(append(dst, b...), '\n'), nil
}

// EventsJSONL renders a slice of events in the JSONL wire format.
func EventsJSONL(evs []Event) ([]byte, error) {
	var out []byte
	for _, ev := range evs {
		var err error
		if out, err = AppendJSONL(out, ev); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadJSONL parses a JSONL event stream (as produced by WriteJSONL or
// EventsJSONL) back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", line, err)
		}
		k, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("jsonl line %d: unknown event kind %q", line, je.Kind)
		}
		out = append(out, Event{Kind: k, Cycles: je.Cycles, TrueMs: je.TrueMs,
			DeviceMs: je.DeviceMs, Arg0: je.Arg0, Arg1: je.Arg1})
	}
	return out, sc.Err()
}

// WriteJSONL exports the retained events as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, ev := range r.Events() {
		b, err := AppendJSONL(nil, ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceEvent is one Chrome trace_event record; see the Trace Event Format
// spec (the format Perfetto and chrome://tracing open directly). It is
// exported so other layers (the fleet's message-span telemetry) can build
// their own tracks and serialize them through WriteTraceEvents, keeping a
// single wire format for everything Perfetto-shaped.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents serializes any trace_event list as a Chrome/Perfetto
// JSON document — the shared back end of WriteChromeTrace and the fleet's
// per-message span exporter.
func WriteTraceEvents(w io.Writer, evs []TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}

// ChromeTraceEvents converts the retained events into trace_event records
// on the true wall-clock timeline (1 cycle = 1 µs of on-time; powered-off
// gaps appear as idle stretches). Checkpoint begin/commit pairs and ISR
// enter/exit pairs become duration events; everything else is an instant.
func (r *Recorder) ChromeTraceEvents() []TraceEvent {
	const pid, tid = 1, 1
	evs := []TraceEvent{
		{Name: "process_name", Phase: "M", PID: pid, TID: tid, Cat: "__metadata",
			Args: map[string]any{"name": "intermittent-machine"}},
		{Name: "thread_name", Phase: "M", PID: pid, TID: tid, Cat: "__metadata",
			Args: map[string]any{"name": "device"}},
	}
	var cpBegin *Event
	for _, ev := range r.Events() {
		ev := ev
		ts := ev.TrueMs * 1000
		switch ev.Kind {
		case EvCheckpointBegin:
			cpBegin = &ev
		case EvCheckpointCommit:
			te := TraceEvent{Name: "checkpoint", Cat: "runtime", Phase: "X", TsUs: ts, PID: pid, TID: tid,
				Args: map[string]any{"kind": ev.Arg0, "latency_cycles": ev.Arg1}}
			if cpBegin != nil {
				te.TsUs = cpBegin.TrueMs * 1000
				te.DurUs = ts - te.TsUs
				te.Args["bytes"] = cpBegin.Arg1
				cpBegin = nil
			} else {
				te.Phase, te.Scope = "i", "t"
			}
			evs = append(evs, te)
		case EvISREnter:
			evs = append(evs, TraceEvent{Name: "isr", Cat: "interrupt", Phase: "B", TsUs: ts, PID: pid, TID: tid})
		case EvISRExit:
			evs = append(evs, TraceEvent{Name: "isr", Cat: "interrupt", Phase: "E", TsUs: ts, PID: pid, TID: tid})
		default:
			name, cat, scope := ev.Kind.String(), "machine", "t"
			switch ev.Kind {
			case EvPowerFail, EvBoot:
				cat, scope = "power", "p"
			case EvUndoAppend, EvUndoRollback, EvStackGrow, EvStackShrink, EvRestore, EvTaskCommit:
				cat = "runtime"
			case EvSend, EvExpiry:
				cat = "io"
			}
			evs = append(evs, TraceEvent{Name: name, Cat: cat, Phase: "i", TsUs: ts, PID: pid, TID: tid, Scope: scope,
				Args: map[string]any{"cycles": ev.Cycles, "device_ms": ev.DeviceMs, "arg0": ev.Arg0, "arg1": ev.Arg1}})
		}
	}
	return evs
}

// WriteChromeTrace exports the retained events as Chrome/Perfetto
// trace_event JSON; the output opens directly in chrome://tracing or
// ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteTraceEvents(w, r.ChromeTraceEvents())
}

// WriteFolded writes the profile's folded stacks ("(device);main;leaf 42"
// per line, sorted) — the input format of flamegraph.pl / inferno.
func (p Profile) WriteFolded(w io.Writer) error {
	keys := make([]string, 0, len(p.Folded))
	for k := range p.Folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if p.Folded[k] == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", k, p.Folded[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSummary renders the category and top-function breakdown as text.
func (p Profile) WriteSummary(w io.Writer) {
	total := p.TotalCycles()
	fmt.Fprintf(w, "cycles by category (total %d):\n", total)
	for c := Category(0); c < catCount; c++ {
		v := p.ByCategory[c.String()]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(w, "  %-12s %12d  %5.1f%%\n", c.String(), v, pct)
	}
	fmt.Fprintf(w, "re-execution ratio: %.3f\n", p.ReexecRatio())
	type fc struct {
		name string
		c    int64
	}
	fns := make([]fc, 0, len(p.ByFunction))
	for k, v := range p.ByFunction {
		fns = append(fns, fc{k, v})
	}
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].c != fns[j].c {
			return fns[i].c > fns[j].c
		}
		return fns[i].name < fns[j].name
	})
	fmt.Fprintf(w, "cycles by function:\n")
	for i, f := range fns {
		if i >= 10 {
			break
		}
		fmt.Fprintf(w, "  %-24s %12d\n", f.name, f.c)
	}
}
