package obs

import (
	"strings"
	"testing"
)

func TestParseProcStatus(t *testing.T) {
	const status = `Name:	ticsfleet
VmPeak:	 1234568 kB
VmSize:	 1234567 kB
VmHWM:	   20480 kB
VmRSS:	   10240 kB
Threads:	9
`
	rss, peak, ok := parseProcStatus(strings.NewReader(status))
	if !ok {
		t.Fatal("parseProcStatus failed on a well-formed status file")
	}
	if rss != 10240*1024 || peak != 20480*1024 {
		t.Fatalf("rss=%d peak=%d, want %d and %d", rss, peak, 10240*1024, 20480*1024)
	}
	if _, _, ok := parseProcStatus(strings.NewReader("Name: x\n")); ok {
		t.Fatal("parseProcStatus should fail without VmRSS/VmHWM")
	}
	if _, _, ok := parseProcStatus(strings.NewReader("VmRSS: zebra kB\nVmHWM: 1 kB\n")); ok {
		t.Fatal("parseProcStatus should fail on a malformed value")
	}
}

// TestSampleResourcesMonotone pins the fields the bench sweep relies on
// being monotone: total allocations and GC pause totals only grow, and
// the peak RSS never drops below the current RSS within one sample.
func TestSampleResourcesMonotone(t *testing.T) {
	a := SampleResources()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64*1024))
	}
	_ = sink
	b := SampleResources()

	if b.TotalAllocBytes < a.TotalAllocBytes {
		t.Fatalf("TotalAlloc went backwards: %d -> %d", a.TotalAllocBytes, b.TotalAllocBytes)
	}
	if b.TotalAllocBytes-a.TotalAllocBytes < 64*64*1024 {
		t.Fatalf("TotalAlloc missed ~4MB of allocation: delta %d", b.TotalAllocBytes-a.TotalAllocBytes)
	}
	if b.GCPauseTotalNs < a.GCPauseTotalNs || b.NumGC < a.NumGC {
		t.Fatalf("GC totals went backwards: %+v -> %+v", a, b)
	}
	for _, s := range []ResourceSnapshot{a, b} {
		if s.Goroutines < 1 {
			t.Fatalf("goroutine count %d", s.Goroutines)
		}
		if s.PeakRSSBytes >= 0 && s.RSSBytes >= 0 && s.PeakRSSBytes < s.RSSBytes {
			t.Fatalf("peak RSS %d below current RSS %d", s.PeakRSSBytes, s.RSSBytes)
		}
		if s.Source != "proc" && s.Source != "runtime" {
			t.Fatalf("source %q", s.Source)
		}
	}
}

func TestResourceSnapshotExports(t *testing.T) {
	s := ResourceSnapshot{
		HeapInuseBytes: 100, HeapSysBytes: 200, TotalAllocBytes: 300,
		GCPauseTotalNs: 4, NumGC: 5, Goroutines: 6,
		RSSBytes: 700, PeakRSSBytes: 800, Source: "proc",
	}
	reg := NewRegistry()
	s.SetGauges(reg, "res_")
	if got := reg.Gauge("res_peak_rss_bytes"); got != 800 {
		t.Fatalf("res_peak_rss_bytes = %g", got)
	}
	if got := reg.Gauge("res_goroutines"); got != 6 {
		t.Fatalf("res_goroutines = %g", got)
	}

	var b strings.Builder
	if err := s.WriteProm(&b, "fleet_resource_"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE fleet_resource_peak_rss_bytes gauge",
		"fleet_resource_peak_rss_bytes 800",
		"fleet_resource_heap_inuse_bytes 100",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("prom output missing %q:\n%s", want, b.String())
		}
	}

	// Unknown RSS is absent, not zero.
	s.RSSBytes, s.PeakRSSBytes = -1, -1
	reg2 := NewRegistry()
	s.SetGauges(reg2, "res_")
	var b2 strings.Builder
	if err := reg2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "rss") {
		t.Fatalf("unknown RSS leaked into export:\n%s", b2.String())
	}

	line, err := s.JSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(line), `"heap_inuse_bytes":100`) || line[len(line)-1] != '\n' {
		t.Fatalf("JSONL line %q", line)
	}
}

func TestGaugeRefSharing(t *testing.T) {
	reg := NewRegistry()
	g := reg.GaugeRef("x")
	g.Set(2)
	g.Add(3)
	if reg.Gauge("x") != 5 {
		t.Fatalf("gauge via ref = %g, want 5", reg.Gauge("x"))
	}
	reg.SetGauge("x", 9)
	if g.Value() != 9 {
		t.Fatalf("ref missed SetGauge: %g", g.Value())
	}
	if reg.GaugeRef("x") != g {
		t.Fatal("GaugeRef not stable")
	}

	other := NewRegistry()
	other.SetGauge("x", 1)
	if err := reg.Merge(other); err != nil {
		t.Fatal(err)
	}
	if g.Value() != 10 {
		t.Fatalf("merge through refs: %g, want 10", g.Value())
	}
}
