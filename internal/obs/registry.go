package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Registry is a small, dependency-free metrics registry: named counters,
// gauges, and fixed-bucket histograms. It replaces the ad-hoc
// map[string]int64 stats plumbing: runtimes keep a Registry and expose
// the old map through CounterSnapshot, which is a defensive copy — a
// caller mutating the returned map can no longer corrupt live counters.
//
// Not safe for concurrent use; every machine/runtime owns its own.
type Registry struct {
	counters map[string]*int64
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*int64{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Gauge is a settable instantaneous value — the metric shape for things
// that go up and down (heap in use, goroutine count, phase seconds).
// Like counters, hot paths hold the *Gauge from GaugeRef and mutate it
// directly instead of re-resolving the name per sample.
type Gauge struct{ v float64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return g.v }

// GaugeRef returns a stable handle to a named gauge, creating it at zero
// first — the gauge analogue of CounterRef.
func (g *Registry) GaugeRef(name string) *Gauge {
	ga, ok := g.gauges[name]
	if !ok {
		ga = &Gauge{}
		g.gauges[name] = ga
	}
	return ga
}

// CounterRef returns a stable pointer to a counter's cell, creating it
// at zero first. Hot emission paths (the recorder bumps a counter per
// event) cache the ref once and increment through it, skipping the map
// lookup per event.
func (g *Registry) CounterRef(name string) *int64 {
	c, ok := g.counters[name]
	if !ok {
		c = new(int64)
		g.counters[name] = c
	}
	return c
}

// Inc adds 1 to a counter, creating it at zero first.
func (g *Registry) Inc(name string) { *g.CounterRef(name)++ }

// Add adds d to a counter.
func (g *Registry) Add(name string, d int64) { *g.CounterRef(name) += d }

// Counter reads a counter (0 if absent).
func (g *Registry) Counter(name string) int64 {
	if c, ok := g.counters[name]; ok {
		return *c
	}
	return 0
}

// SetGauge sets a gauge to v.
func (g *Registry) SetGauge(name string, v float64) { g.GaugeRef(name).Set(v) }

// Gauge reads a gauge (0 if absent).
func (g *Registry) Gauge(name string) float64 {
	if ga, ok := g.gauges[name]; ok {
		return ga.Value()
	}
	return 0
}

// RegisterHistogram creates a histogram with the given ascending upper
// bucket bounds (an implicit +Inf bucket is appended). Re-registering an
// existing name keeps the existing histogram.
func (g *Registry) RegisterHistogram(name string, bounds []float64) *Histogram {
	if h, ok := g.hists[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	g.hists[name] = h
	return h
}

// Observe records v into a histogram, creating it with default
// power-of-four bounds when it does not exist yet.
func (g *Registry) Observe(name string, v float64) {
	h, ok := g.hists[name]
	if !ok {
		h = g.RegisterHistogram(name, defaultBounds())
	}
	h.Observe(v)
}

// Histogram returns a registered histogram (nil if absent).
func (g *Registry) Histogram(name string) *Histogram { return g.hists[name] }

// Merge folds every metric of other into g: counters add, gauges add,
// and histograms merge bucket-wise. A histogram g does not have yet is
// deep-copied in; merging histograms with different bucket bounds is an
// error (the fleet gives every device identically-registered recorders,
// so in practice bounds always line up). other is not modified. This is
// how per-device registries fold into fleet totals.
func (g *Registry) Merge(other *Registry) error {
	for k, v := range other.counters {
		*g.CounterRef(k) += *v
	}
	for k, v := range other.gauges {
		g.GaugeRef(k).Add(v.Value())
	}
	for k, oh := range other.hists {
		h, ok := g.hists[k]
		if !ok {
			g.hists[k] = oh.Clone()
			continue
		}
		if err := h.Merge(oh); err != nil {
			return fmt.Errorf("obs: merge histogram %q: %w", k, err)
		}
	}
	return nil
}

// CounterSnapshot returns a fresh copy of all counters — the
// vm.Runtime.Stats compatibility shim.
func (g *Registry) CounterSnapshot() map[string]int64 {
	out := make(map[string]int64, len(g.counters))
	for k, v := range g.counters {
		out[k] = *v
	}
	return out
}

// Dump writes every metric in deterministic sorted order.
func (g *Registry) Dump(w io.Writer) {
	for _, k := range sortedKeys(g.counters) {
		fmt.Fprintf(w, "counter %-32s %d\n", k, *g.counters[k])
	}
	for _, k := range sortedKeys(g.gauges) {
		fmt.Fprintf(w, "gauge   %-32s %g\n", k, g.gauges[k].Value())
	}
	hk := make([]string, 0, len(g.hists))
	for k := range g.hists {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		h := g.hists[k]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "hist    %-32s %s\n", k, h.Summary())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func defaultBounds() []float64 {
	b := make([]float64, 0, 11)
	for v := 1.0; v <= 1<<20; v *= 4 {
		b = append(b, v)
	}
	return b
}

// Histogram is a fixed-bucket histogram: Counts[i] tallies observations
// v <= Bounds[i]; the last bucket catches everything above the top bound.
type Histogram struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		Bounds: b,
		Counts: make([]int64, len(b)+1),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Count:  h.Count,
		Sum:    h.Sum,
		Min:    h.Min,
		Max:    h.Max,
	}
	return c
}

// Merge adds o's observations into h. The bucket bounds must match
// exactly; merging histograms with different shapes loses information,
// so it is refused rather than approximated.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("bucket count mismatch: %d vs %d", len(h.Bounds), len(o.Bounds))
	}
	for i, b := range h.Bounds {
		if b != o.Bounds[i] {
			return fmt.Errorf("bucket bound %d mismatch: %g vs %g", i, b, o.Bounds[i])
		}
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket that contains the target rank, the
// standard fixed-bucket estimator (what promql's histogram_quantile
// does). The estimate is clamped to the observed [Min, Max], which also
// resolves the two unbounded buckets: ranks landing in the first bucket
// interpolate from Min, and ranks landing in the overflow (+Inf) bucket
// report Max. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		// Target rank falls in bucket i: [lo, hi].
		if i >= len(h.Bounds) {
			return h.Max // overflow bucket has no finite upper bound
		}
		hi := h.Bounds[i]
		lo := h.Min
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		if lo < h.Min {
			lo = h.Min
		}
		if hi > h.Max {
			hi = h.Max
		}
		if hi <= lo {
			return hi
		}
		return lo + (hi-lo)*(rank-cum)/float64(c)
	}
	return h.Max
}

// Mean returns the running mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Summary renders count/mean/min/max plus the non-empty buckets.
func (h *Histogram) Summary() string {
	if h.Count == 0 {
		return "empty"
	}
	s := fmt.Sprintf("n=%d mean=%.1f min=%g max=%g buckets[", h.Count, h.Mean(), h.Min, h.Max)
	first := true
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if !first {
			s += " "
		}
		first = false
		if i < len(h.Bounds) {
			s += fmt.Sprintf("<=%g:%d", h.Bounds[i], c)
		} else {
			s += fmt.Sprintf(">%g:%d", h.Bounds[len(h.Bounds)-1], c)
		}
	}
	return s + "]"
}
