package obs

import "testing"

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{10})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}

func TestQuantileClampsToObservedRange(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(7)
	h.Observe(42)
	if got := h.Quantile(-1); got != 7 {
		t.Fatalf("q<=0 = %g, want Min", got)
	}
	if got := h.Quantile(2); got != 42 {
		t.Fatalf("q>=1 = %g, want Max", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	// One observation: every quantile is that value.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 5 {
			t.Fatalf("Quantile(%g) = %g, want 5", q, got)
		}
	}
}

func TestQuantileLinearInterpolation(t *testing.T) {
	h := NewHistogram([]float64{0, 10})
	for v := 1.0; v <= 10; v++ {
		h.Observe(v)
	}
	// All ten samples land in the (0, 10] bucket; the interpolation range
	// is clamped to [Min, Bounds] = [1, 10], so the median estimate is
	// 1 + 9*(5/10) = 5.5.
	if got := h.Quantile(0.5); got != 5.5 {
		t.Fatalf("median = %g, want 5.5", got)
	}
	// p90 → rank 9 of 10 → 1 + 9*(9/10) = 9.1
	if got := h.Quantile(0.9); got != 9.1 {
		t.Fatalf("p90 = %g, want 9.1", got)
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p99 < p50 {
		t.Fatalf("quantiles not monotone: p50=%g p99=%g", p50, p99)
	}
}

func TestQuantileInfBucketReportsMax(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(20)
	h.Observe(30)
	// p99's rank lands in the overflow bucket, which has no finite upper
	// bound — the estimator reports the observed Max.
	if got := h.Quantile(0.99); got != 30 {
		t.Fatalf("p99 = %g, want 30 (observed max)", got)
	}
}
