package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestExportersAfterWrapEmitRetainedSuffixInOrder is the ring wrap-around
// regression test for the exporters: after emitting more events than the
// ring holds, WriteJSONL and ChromeTraceEvents must render exactly the
// retained suffix, oldest first.
func TestExportersAfterWrapEmitRetainedSuffixInOrder(t *testing.T) {
	r := NewRecorder(Options{RingCap: 4})
	r.Emit(Event{Kind: EvCheckpointBegin, Cycles: 0, TrueMs: 0})
	for i := 1; i <= 9; i++ {
		r.Emit(Event{Kind: EvSend, Cycles: int64(i), TrueMs: float64(i), Arg0: int64(100 + i)})
	}
	r.Emit(Event{Kind: EvCheckpointCommit, Cycles: 10, TrueMs: 10})
	if r.Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", r.Dropped())
	}

	// JSONL: exactly the 4 retained events (sends 7..9, then the commit),
	// and parsing the output back yields them bit-for-bit.
	var b bytes.Buffer
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 4:\n%s", len(lines), b.String())
	}
	parsed, err := ReadJSONL(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	retained := r.Events()
	if len(parsed) != len(retained) {
		t.Fatalf("round trip lost events: %d vs %d", len(parsed), len(retained))
	}
	for i := range parsed {
		if parsed[i] != retained[i] {
			t.Fatalf("event %d round trip mismatch: %+v vs %+v", i, parsed[i], retained[i])
		}
	}
	for i, ev := range retained[:3] {
		if ev.Kind != EvSend || ev.Cycles != int64(7+i) {
			t.Fatalf("retained[%d] = %+v, want send @%d (oldest-first suffix)", i, ev, 7+i)
		}
	}

	// Chrome trace: the commit's begin was overwritten, so it must degrade
	// to an instant event, and the sends appear in timestamp order.
	tes := r.ChromeTraceEvents()
	var sendTs []float64
	for _, te := range tes {
		if te.Name == "checkpoint" && te.Phase != "i" {
			t.Fatalf("checkpoint with dropped begin must be an instant, got phase %q", te.Phase)
		}
		if te.Name == "send" {
			sendTs = append(sendTs, te.TsUs)
		}
	}
	if len(sendTs) != 3 {
		t.Fatalf("chrome trace has %d sends, want 3", len(sendTs))
	}
	for i := 1; i < len(sendTs); i++ {
		if sendTs[i] < sendTs[i-1] {
			t.Fatalf("sends out of order: %v", sendTs)
		}
	}
}

type captureSink struct {
	seqs []int64
	evs  []Event
}

func (c *captureSink) OnEvent(seq int64, ev Event) {
	c.seqs = append(c.seqs, seq)
	c.evs = append(c.evs, ev)
}

// TestSinkSeesFullEnrichedStream: sinks observe every event (past ring
// capacity and through Keep filtering) with dense ordinals, and see the
// recorder's enrichment (commit latency in Arg1).
func TestSinkSeesFullEnrichedStream(t *testing.T) {
	r := NewRecorder(Options{RingCap: 2, Keep: MaskOf(EvCheckpointCommit)})
	sink := &captureSink{}
	r.AddSink(sink)
	r.Emit(Event{Kind: EvCheckpointBegin, Cycles: 100})
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: EvSend, Cycles: int64(200 + i)})
	}
	r.Emit(Event{Kind: EvCheckpointCommit, Cycles: 340})
	if len(sink.evs) != 7 {
		t.Fatalf("sink saw %d events, want all 7", len(sink.evs))
	}
	for i, s := range sink.seqs {
		if s != int64(i) {
			t.Fatalf("seq[%d] = %d, want dense ordinals", i, s)
		}
	}
	if last := sink.evs[6]; last.Kind != EvCheckpointCommit || last.Arg1 != 240 {
		t.Fatalf("sink got un-enriched commit: %+v (want latency 240)", last)
	}
	if r.Seq() != 7 {
		t.Fatalf("Seq() = %d, want 7", r.Seq())
	}
}
