// Package obs is the flight recorder for the simulated intermittent
// machine: a structured event trace, a cycle-attributed profiler, and a
// small metrics registry, all dependency-free so every layer of the stack
// (vm, core, the baselines, the experiment harnesses) can emit into it
// without import cycles.
//
// The design goal is observability that is zero-cost when disabled: a
// machine without an attached recorder pays only a nil check per
// emission site, and a recorder never charges simulated cycles — it
// observes the device, it is not part of it (like ETAP-style host-side
// timing analysis, the trace is derived from the same deterministic cycle
// accounting the machine already does).
//
// Three views of one run:
//
//   - Events: a fixed-capacity ring of typed events (boot, power failure,
//     checkpoint begin/commit, restore, undo-log append/rollback, stack
//     grow/shrink, ISR enter/exit, send, expiry trap, task commit),
//     exportable as JSONL or Chrome/Perfetto trace_event JSON.
//   - Profile: every consumed cycle attributed twice — by overhead
//     category (app / checkpoint / restore / undo-log / dead) and by
//     function (with a shadow call stack for folded-stacks flame graphs).
//     The category totals partition the machine's total consumed cycles
//     exactly; "dead" is work that a power failure rolled back.
//   - Metrics: named counters and fixed-bucket histograms (checkpoint
//     latency and size, undo-log length per epoch, cycles between
//     failures) with deterministic, sorted dumps.
package obs

// EventKind classifies a recorded event.
type EventKind uint8

const (
	EvBoot             EventKind = iota // Arg0: 1 = cold boot
	EvPowerFail                         // Arg0: cycles lost since last commit; Arg1: failure ordinal
	EvCheckpointBegin                   // Arg0: checkpoint kind; Arg1: bytes captured
	EvCheckpointCommit                  // Arg0: checkpoint kind; Arg1: latency in cycles
	EvRestore                           // post-failure (or expiry) state restore completed
	EvUndoAppend                        // Arg0: logged address; Arg1: entry bytes
	EvUndoRollback                      // Arg0: entries rolled back
	EvStackGrow                         // Arg0: new working-segment index
	EvStackShrink                       // Arg0: new working-segment index
	EvISREnter                          // Arg0: interrupt ordinal
	EvISRExit                           //
	EvSend                              // Arg0: packet value; Arg1: 1 = virtualized (held to commit)
	EvExpiry                            // Arg0: missed deadline (device ms)
	EvTaskCommit                        // Arg0: next task index (task-based runtimes)
	evKindCount
)

var kindNames = [evKindCount]string{
	"boot", "power-failure", "checkpoint-begin", "checkpoint-commit",
	"restore", "undo-append", "undo-rollback", "stack-grow", "stack-shrink",
	"isr-enter", "isr-exit", "send", "expiry", "task-commit",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindByName is the inverse of EventKind.String — used when parsing an
// exported event stream back in (replay verification).
func KindByName(name string) (EventKind, bool) {
	for i, n := range kindNames {
		if n == name {
			return EventKind(i), true
		}
	}
	return 0, false
}

// Mask selects event kinds to keep; bit i keeps EventKind(i).
type Mask uint32

// MaskAll keeps every event kind.
const MaskAll Mask = 1<<evKindCount - 1

// MaskOf builds a mask keeping exactly the given kinds.
func MaskOf(kinds ...EventKind) Mask {
	var m Mask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Event is one recorded occurrence. Cycles/TrueMs/DeviceMs snapshot the
// machine's cycle counter, true wall clock and persistent device clock at
// emission; Arg0/Arg1 are kind-specific (see the EventKind constants).
type Event struct {
	Kind     EventKind
	Cycles   int64
	TrueMs   float64
	DeviceMs int64
	Arg0     int64
	Arg1     int64
}

// Category buckets consumed cycles by what the machine was doing.
type Category uint8

const (
	// CatApp is program work (including per-store instrumentation checks).
	CatApp Category = iota
	// CatCheckpoint covers checkpoint capture/commit and stack grow/shrink.
	CatCheckpoint
	// CatRestore covers boot-time state reconstruction.
	CatRestore
	// CatUndoLog covers undo-log appends and rollbacks.
	CatUndoLog
	// CatDead is re-executed work: cycles attributed to any category that a
	// power failure struck before the next commit point. Never pushed
	// directly — the recorder reclassifies pending cycles on failure.
	CatDead
	catCount
)

var catNames = [catCount]string{"app", "checkpoint", "restore", "undo-log", "dead"}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "?"
}

// Options configures a recorder.
type Options struct {
	// RingCap bounds the event ring (default 65536). When full, the oldest
	// events are overwritten and Dropped() counts them.
	RingCap int
	// Profile enables cycle attribution (category, function, folded
	// stacks). Off, the recorder keeps only events and metrics.
	Profile bool
	// Keep selects which event kinds are recorded (zero = MaskAll).
	// Filtered kinds still update metrics; they just skip the ring.
	Keep Mask
}

// Sink observes the full event stream online, as it is emitted. A sink
// sees every event — including kinds the Keep mask filters out of the
// ring and events the ring later overwrites — in emission order, after
// the recorder has enriched it (e.g. the commit-latency Arg1). seq is the
// zero-based ordinal of the event in the run's complete stream. Sinks run
// synchronously inside Emit, so they may inspect the machine's state at
// the exact moment of the event; like the recorder itself they must never
// charge simulated cycles. The trace auditor (internal/audit) and the
// replay capture (internal/replay) are sinks.
type Sink interface {
	OnEvent(seq int64, ev Event)
}

// Recorder is one machine run's flight recorder. It is not safe for
// concurrent use; attach a fresh recorder per machine.
type Recorder struct {
	ring    []Event
	head    int // next write position
	n       int // filled entries
	dropped int64
	seq     int64
	keep    Mask
	sinks   []Sink

	reg *Registry

	profile bool
	funcs   []string // function names, index-aligned with the image

	catStack []Category
	pending  [catCount]int64 // attributed since the last commit point
	byCat    [catCount]int64 // committed attribution

	// All call-stack attribution lives in a trie of interned stack
	// signatures: curNode identifies the live signature (it IS the
	// shadow call stack — depth equals stack depth), foldCount[i]
	// accumulates self-cycles at node i, and children are linked via
	// first-child/next-sibling so descent is a short pointer walk with
	// no hashing. No string is built and no map is touched until
	// Profile() renders the report; per-function totals are recovered
	// there by summing nodes that share a function. OnSpend, the
	// hottest path in a profiled run, is a pair of slice-indexed adds.
	foldNodes []foldNode
	foldCount []int64
	curNode   int32

	cpBeginCycles int64
	cpBeginMs     float64
	cpOpen        bool
	lastFailAt    int64

	// Cached counter cells for the per-event-kind increments: Emit runs
	// once per event (undo appends fire per store instruction), so the
	// string-keyed registry lookups are hoisted to construction time.
	kindCtr     [evKindCount]*int64
	coldBoots   *int64
	undoRolled  *int64
	dropCtr     *int64
	cpLatHist   *Histogram
	cpSizeHist  *Histogram
	failGapHist *Histogram
}

// NewRecorder builds an enabled recorder.
func NewRecorder(opts Options) *Recorder {
	if opts.RingCap <= 0 {
		opts.RingCap = 1 << 16
	}
	if opts.Keep == 0 {
		opts.Keep = MaskAll
	}
	r := &Recorder{
		ring:      make([]Event, opts.RingCap),
		keep:      opts.Keep,
		reg:       NewRegistry(),
		profile:   opts.Profile,
		catStack:  []Category{CatApp},
		foldNodes: []foldNode{{parent: -1, fn: -1, firstKid: -1, nextSib: -1}}, // node 0: the "(device)" root
		foldCount: []int64{0},
	}
	r.cpLatHist = r.reg.RegisterHistogram("checkpoint_latency_cycles", []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192})
	r.cpSizeHist = r.reg.RegisterHistogram("checkpoint_size_bytes", []float64{16, 32, 64, 128, 256, 512, 1024, 2048})
	r.failGapHist = r.reg.RegisterHistogram("cycles_between_failures", []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7})
	r.reg.RegisterHistogram("undo_len_per_epoch", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256})
	r.reg.SetGauge("trace_ring_cap", float64(opts.RingCap))
	kindCounters := [evKindCount]string{
		EvBoot: "boots", EvPowerFail: "power_failures",
		EvCheckpointCommit: "checkpoint_commits", EvRestore: "restores",
		EvUndoAppend: "undo_appends", EvUndoRollback: "undo_rollbacks",
		EvStackGrow: "stack_grows", EvStackShrink: "stack_shrinks",
		EvISREnter: "isr_entries", EvSend: "sends", EvExpiry: "expiry_traps",
		EvTaskCommit: "task_commits",
	}
	for kind, name := range kindCounters {
		if name != "" {
			r.kindCtr[kind] = r.reg.CounterRef(name)
		}
	}
	r.coldBoots = r.reg.CounterRef("cold_boots")
	r.undoRolled = r.reg.CounterRef("undo_entries_rolled_back")
	// Registered at zero so the series is always scrapable: an absent
	// drop counter is indistinguishable from a missing export.
	r.dropCtr = r.reg.CounterRef("trace_events_dropped")
	return r
}

// SetFunctions installs the image's function-name table (index-aligned
// with the function indices the machine reports). The machine does this
// when the recorder is attached.
func (r *Recorder) SetFunctions(names []string) { r.funcs = names }

// AddSink subscribes a streaming observer; see Sink. Sinks are invoked in
// registration order.
func (r *Recorder) AddSink(s Sink) { r.sinks = append(r.sinks, s) }

// Seq returns the number of events emitted so far — the seq the next
// event will carry.
func (r *Recorder) Seq() int64 { return r.seq }

// Metrics returns the recorder's registry.
func (r *Recorder) Metrics() *Registry { return r.reg }

// Dropped returns how many events the ring overwrote. The same count is
// exported live as the registry counter "trace_events_dropped" so trace
// loss is visible wherever the metrics go (Prometheus, fleet merges).
func (r *Recorder) Dropped() int64 { return r.dropped }

// RingCap returns the event ring's capacity — exported next to the drop
// counter so a scrape can tell "ring too small" from "quiet run".
func (r *Recorder) RingCap() int { return len(r.ring) }

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// CountKind tallies retained events of one kind.
func (r *Recorder) CountKind(k EventKind) int64 {
	var n int64
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		if r.ring[(start+i)%len(r.ring)].Kind == k {
			n++
		}
	}
	return n
}

// Emit records one event, updating the derived metrics first (metrics are
// exact even when the ring drops the event itself).
func (r *Recorder) Emit(ev Event) {
	if c := r.kindCtr[ev.Kind]; c != nil {
		*c++
	}
	switch ev.Kind {
	case EvBoot:
		if ev.Arg0 == 1 {
			*r.coldBoots++
		}
	case EvPowerFail:
		r.failGapHist.Observe(float64(ev.Cycles - r.lastFailAt))
		r.lastFailAt = ev.Cycles
	case EvCheckpointBegin:
		r.cpBeginCycles = ev.Cycles
		r.cpBeginMs = ev.TrueMs
		r.cpOpen = true
		r.cpSizeHist.Observe(float64(ev.Arg1))
	case EvCheckpointCommit:
		if r.cpOpen {
			ev.Arg1 = ev.Cycles - r.cpBeginCycles
			r.cpLatHist.Observe(float64(ev.Arg1))
			r.cpOpen = false
		}
	case EvUndoRollback:
		*r.undoRolled += ev.Arg0
	}
	seq := r.seq
	r.seq++
	for _, s := range r.sinks {
		s.OnEvent(seq, ev)
	}
	if r.keep&(1<<ev.Kind) == 0 {
		return
	}
	if r.n == len(r.ring) {
		// Ring overflow: the oldest retained event is overwritten. Count
		// the loss in the registry too, so it surfaces in /metrics and
		// fleet rollups instead of only via Dropped().
		r.dropped++
		*r.dropCtr++
	} else {
		r.n++
	}
	r.ring[r.head] = ev
	r.head = (r.head + 1) % len(r.ring)
}

// ---- Cycle attribution ----

// PushCategory enters an overhead category (checkpoint, restore, ...);
// cycles spent until the matching PopCategory are attributed to it.
func (r *Recorder) PushCategory(c Category) {
	if r.profile {
		r.catStack = append(r.catStack, c)
	}
}

// PopCategory leaves the innermost category. A power failure may unwind
// past pushed categories; OnPowerFail resets the stack, so an unmatched
// pop is guarded here.
func (r *Recorder) PopCategory() {
	if r.profile && len(r.catStack) > 1 {
		r.catStack = r.catStack[:len(r.catStack)-1]
	}
}

// OnSpend attributes c consumed cycles to the current category and the
// current shadow-stack signature. Called by the machine for every Spend —
// the profiler's hottest path — so it is exactly two slice-indexed adds;
// everything map- or string-shaped is deferred to Profile().
func (r *Recorder) OnSpend(c int64) {
	if !r.profile {
		return
	}
	r.pending[r.catStack[len(r.catStack)-1]] += c
	r.foldCount[r.curNode] += c
}

// foldNode is one interned shadow-stack signature: its parent signature
// plus one more function. Children hang off the parent as a
// first-child/next-sibling list — call sites fan out to a handful of
// callees, so the linear walk in foldDescend beats hashing.
type foldNode struct {
	parent   int32
	fn       int32
	firstKid int32
	nextSib  int32
}

// foldDescend moves curNode to the child signature for fn, interning it
// on first visit.
func (r *Recorder) foldDescend(fn int) {
	f := int32(fn)
	for id := r.foldNodes[r.curNode].firstKid; id >= 0; id = r.foldNodes[id].nextSib {
		if r.foldNodes[id].fn == f {
			r.curNode = id
			return
		}
	}
	id := int32(len(r.foldNodes))
	r.foldNodes = append(r.foldNodes, foldNode{
		parent: r.curNode, fn: f,
		firstKid: -1, nextSib: r.foldNodes[r.curNode].firstKid,
	})
	r.foldCount = append(r.foldCount, 0)
	r.foldNodes[r.curNode].firstKid = id
	r.curNode = id
}

// OnCommit flushes cycles attributed since the last commit point into the
// committed totals. The machine calls it at every commit (checkpoint,
// task transition, end of run).
func (r *Recorder) OnCommit() {
	if !r.profile {
		return
	}
	for i := range r.pending {
		r.byCat[i] += r.pending[i]
		r.pending[i] = 0
	}
}

// OnPowerFail reclassifies every cycle attributed since the last commit
// point as dead (re-executed) work and resets the category stack for the
// next boot.
func (r *Recorder) OnPowerFail() {
	if !r.profile {
		return
	}
	for i := range r.pending {
		r.byCat[CatDead] += r.pending[i]
		r.pending[i] = 0
	}
	r.catStack = r.catStack[:1]
	r.catStack[0] = CatApp
}

// Finish commits trailing attribution; call once after the run.
func (r *Recorder) Finish() { r.OnCommit() }

// EnterFunc pushes a function onto the shadow call stack.
func (r *Recorder) EnterFunc(fn int) {
	if !r.profile {
		return
	}
	r.foldDescend(fn)
}

// LeaveFunc pops the shadow call stack. A pop at the root (a Leave with
// no matching Enter after a re-root) is ignored.
func (r *Recorder) LeaveFunc() {
	if !r.profile || r.curNode == 0 {
		return
	}
	r.curNode = r.foldNodes[r.curNode].parent
}

// ResetStack re-roots the shadow call stack after a control-flow
// discontinuity (boot, restore, task transition). fn < 0 leaves the stack
// empty (the next Enter establishes the frame); ancestry above the live
// function is unknown after a restore, so folded stacks re-root there.
func (r *Recorder) ResetStack(fn int) {
	if !r.profile {
		return
	}
	r.curNode = 0
	if fn >= 0 {
		r.foldDescend(fn)
	}
}

func (r *Recorder) funcName(fn int) string {
	if fn >= 0 && fn < len(r.funcs) {
		return r.funcs[fn]
	}
	return "(stub)"
}

// Profile is the attribution summary.
type Profile struct {
	// ByCategory partitions total consumed cycles: app, checkpoint,
	// restore, undo-log, dead. The values sum to the machine's cycle
	// counter (after Finish).
	ByCategory map[string]int64
	// ByFunction attributes cycles to the function executing when they
	// were spent ("(stub)" covers the boot stub and boot-time work).
	ByFunction map[string]int64
	// Folded maps shadow-stack signatures ("(device);main;leaf") to
	// cycles — the folded-stacks flame graph input.
	Folded map[string]int64
}

// TotalCycles sums the category partition.
func (p Profile) TotalCycles() int64 {
	var t int64
	for _, v := range p.ByCategory {
		t += v
	}
	return t
}

// ReexecRatio is dead cycles over total cycles.
func (p Profile) ReexecRatio() float64 {
	t := p.TotalCycles()
	if t == 0 {
		return 0
	}
	return float64(p.ByCategory[CatDead.String()]) / float64(t)
}

// MergeProfiles folds many profiles into one: categories, functions and
// folded stacks all add. The fleet aggregator uses it to merge every
// device's profile into a single fleet-wide flame graph — devices run the
// same image, so their stack signatures align and hot paths sum.
func MergeProfiles(ps ...Profile) Profile {
	out := Profile{
		ByCategory: map[string]int64{},
		ByFunction: map[string]int64{},
		Folded:     map[string]int64{},
	}
	for _, p := range ps {
		for k, v := range p.ByCategory {
			out.ByCategory[k] += v
		}
		for k, v := range p.ByFunction {
			out.ByFunction[k] += v
		}
		for k, v := range p.Folded {
			out.Folded[k] += v
		}
	}
	return out
}

// Profile snapshots the attribution (call Finish first for exact totals).
func (r *Recorder) Profile() Profile {
	p := Profile{
		ByCategory: make(map[string]int64, catCount),
		ByFunction: make(map[string]int64, len(r.funcs)+1),
		Folded:     make(map[string]int64, len(r.foldNodes)),
	}
	for i, v := range r.byCat {
		p.ByCategory[Category(i).String()] = v + r.pending[i]
	}
	// Render the interned signature trie back into folded-stack strings,
	// and recover per-function totals by summing each function's nodes
	// (a node's count is self time for the function on top). Children
	// always intern after their parent, so a single pass over the node
	// list can reuse each parent's already-rendered key.
	keys := make([]string, len(r.foldNodes))
	keys[0] = "(device)"
	for i := 1; i < len(r.foldNodes); i++ {
		n := r.foldNodes[i]
		keys[i] = keys[n.parent] + ";" + r.funcName(int(n.fn))
	}
	for i, v := range r.foldCount {
		if v == 0 {
			continue
		}
		p.Folded[keys[i]] += v
		p.ByFunction[r.funcName(int(r.foldNodes[i].fn))] += v
	}
	return p
}
