package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric, counters and
// gauges as single samples, histograms as cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Output is deterministic (sorted by
// metric name within each metric class) so it can be golden-file tested
// and diffed across runs.
func (g *Registry) WritePrometheus(w io.Writer) error {
	for _, k := range sortedKeys(g.counters) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, g.counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(g.gauges) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.gauges[k])); err != nil {
			return err
		}
	}
	hk := make([]string, 0, len(g.hists))
	for k := range g.hists {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		h := g.hists[k]
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry key onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing anything else with '_'.
func promName(s string) string {
	out := []byte(s)
	for i, c := range out {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
