package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric, counters and
// gauges as single samples, histograms as cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. Output is deterministic (sorted by
// metric name within each metric class) so it can be golden-file tested
// and diffed across runs.
func (g *Registry) WritePrometheus(w io.Writer) error {
	return g.WritePrometheusLabeled(w, nil)
}

// WritePrometheusLabeled is WritePrometheus with a fixed label set
// attached to every sample — the fleet exporter uses it to shard
// per-device registries (e.g. {shard="dev42"}) next to the merged
// totals. Labels are rendered in sorted key order; histogram buckets
// keep `le` as the last label. A nil or empty map degrades to the
// unlabeled format exactly.
func (g *Registry) WritePrometheusLabeled(w io.Writer, labels map[string]string) error {
	base := promLabels(labels, "", "")
	for _, k := range sortedKeys(g.counters) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, base, *g.counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(g.gauges) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", name, name, base, promFloat(g.gauges[k].Value())); err != nil {
			return err
		}
	}
	hk := make([]string, 0, len(g.hists))
	for k := range g.hists {
		hk = append(hk, k)
	}
	sort.Strings(hk)
	for _, k := range hk {
		h := g.hists[k]
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, base, promFloat(h.Sum), name, base, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders a label set as `{k1="v1",k2="v2"}` with keys sorted,
// appending the extra pair (the histogram `le`) last. Empty input renders
// as the empty string so unlabeled output stays byte-identical to the
// historical format.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range sortedKeys(labels) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", promName(k), labels[k])
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// promName maps a registry key onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing anything else with '_'.
func promName(s string) string {
	out := []byte(s)
	for i, c := range out {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			out[i] = '_'
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
