package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	g := NewRegistry()
	g.Add("checkpoint_commits", 3)
	g.Inc("power_failures")
	g.SetGauge("reexec_ratio", 0.25)
	g.RegisterHistogram("checkpoint_latency_cycles", []float64{64, 128})
	g.Observe("checkpoint_latency_cycles", 90)
	g.Observe("checkpoint_latency_cycles", 90)
	g.Observe("checkpoint_latency_cycles", 700)

	var b bytes.Buffer
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "registry.prom")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("prometheus exposition differs from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, b.String(), want)
	}
}

func TestWritePrometheusHistogramIsCumulative(t *testing.T) {
	g := NewRegistry()
	g.RegisterHistogram("lat", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 1000} {
		g.Observe("lat", v)
	}
	var b bytes.Buffer
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="100"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		`lat_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// An empty registered histogram is still exposed (with zero samples),
	// unlike Dump which elides it.
	g2 := NewRegistry()
	g2.RegisterHistogram("quiet", []float64{1})
	b.Reset()
	if err := g2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `quiet_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram not exposed:\n%s", b.String())
	}
}

func TestWritePrometheusLabeled(t *testing.T) {
	g := NewRegistry()
	g.Add("sends", 2)
	g.SetGauge("ratio", 0.5)
	g.RegisterHistogram("lat", []float64{10})
	g.Observe("lat", 3)

	var b bytes.Buffer
	if err := g.WritePrometheusLabeled(&b, map[string]string{"shard": "dev7", "app": "ghm"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sends{app="ghm",shard="dev7"} 2`, // label keys sorted
		`ratio{app="ghm",shard="dev7"} 0.5`,
		`lat_bucket{app="ghm",shard="dev7",le="10"} 1`, // le stays last
		`lat_bucket{app="ghm",shard="dev7",le="+Inf"} 1`,
		`lat_sum{app="ghm",shard="dev7"} 3`,
		`lat_count{app="ghm",shard="dev7"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// A nil label map must degrade to the unlabeled format byte-for-byte.
	var plain, labeled bytes.Buffer
	if err := g.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if err := g.WritePrometheusLabeled(&labeled, nil); err != nil {
		t.Fatal(err)
	}
	if plain.String() != labeled.String() {
		t.Fatal("nil labels do not reproduce the unlabeled format")
	}
}

func TestPromNameSanitization(t *testing.T) {
	if got := promName("undo-log.len"); got != "undo_log_len" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_lives" {
		t.Fatalf("promName must not start with a digit: %q", got)
	}
}
