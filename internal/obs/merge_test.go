package obs

import (
	"strings"
	"testing"
)

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry()
	a.Add("commits", 3)
	a.SetGauge("ratio", 0.5)
	a.RegisterHistogram("lat", []float64{10, 100})
	a.Observe("lat", 5)
	a.Observe("lat", 50)

	b := NewRegistry()
	b.Add("commits", 4)
	b.Inc("restores")
	b.SetGauge("ratio", 0.25)
	b.RegisterHistogram("lat", []float64{10, 100})
	b.Observe("lat", 500)
	b.RegisterHistogram("undo", []float64{8})
	b.Observe("undo", 2)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Counter("commits"); got != 7 {
		t.Fatalf("commits = %d, want 7", got)
	}
	if got := a.Counter("restores"); got != 1 {
		t.Fatalf("restores = %d, want 1", got)
	}
	if got := a.Gauge("ratio"); got != 0.75 {
		t.Fatalf("ratio = %g, want 0.75", got)
	}
	lat := a.Histogram("lat")
	if lat.Count != 3 || lat.Sum != 555 || lat.Min != 5 || lat.Max != 500 {
		t.Fatalf("lat after merge: %+v", lat)
	}
	if lat.Counts[0] != 1 || lat.Counts[1] != 1 || lat.Counts[2] != 1 {
		t.Fatalf("lat buckets after merge: %v", lat.Counts)
	}

	// A histogram only the source had is cloned in, not aliased.
	undo := a.Histogram("undo")
	if undo == nil || undo.Count != 1 {
		t.Fatalf("undo not merged in: %+v", undo)
	}
	if undo == b.Histogram("undo") {
		t.Fatal("merged-in histogram aliases the source registry")
	}
	undo.Observe(3)
	if b.Histogram("undo").Count != 1 {
		t.Fatal("observing the merged copy mutated the source")
	}

	// The source registry is untouched by the merge.
	if b.Counter("commits") != 4 || b.Histogram("lat").Count != 1 {
		t.Fatalf("merge mutated its source: %+v", b)
	}
}

func TestRegistryMergeBoundsMismatch(t *testing.T) {
	a := NewRegistry()
	a.RegisterHistogram("lat", []float64{10, 100})
	b := NewRegistry()
	b.RegisterHistogram("lat", []float64{10, 200})
	err := a.Merge(b)
	if err == nil || !strings.Contains(err.Error(), "lat") {
		t.Fatalf("bounds mismatch not refused: %v", err)
	}

	c := NewRegistry()
	c.RegisterHistogram("lat", []float64{10})
	if err := a.Merge(c); err == nil {
		t.Fatal("bucket-count mismatch not refused")
	}
}

func TestHistogramCloneIsDeep(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1.5)
	c := h.Clone()
	c.Observe(10)
	if h.Count != 1 || c.Count != 2 {
		t.Fatalf("clone shares state: h=%+v c=%+v", h, c)
	}
	if h.Counts[2] != 0 {
		t.Fatal("clone's overflow observation leaked into the original")
	}
}

// TestRegistryMergeEmptySource: folding an empty registry in is a no-op.
func TestRegistryMergeEmptySource(t *testing.T) {
	a := NewRegistry()
	a.Add("commits", 3)
	a.RegisterHistogram("lat", []float64{10})
	a.Observe("lat", 5)
	before := dumpString(t, a)
	if err := a.Merge(NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if after := dumpString(t, a); after != before {
		t.Fatalf("empty merge changed the registry:\n%s\nvs\n%s", before, after)
	}
}

// TestRegistryMergeSelf: merging a registry into itself exactly doubles
// every counter, gauge, and histogram count — and must not deadlock or
// corrupt bucket slices mid-iteration.
func TestRegistryMergeSelf(t *testing.T) {
	a := NewRegistry()
	a.Add("commits", 3)
	a.SetGauge("ratio", 0.5)
	a.RegisterHistogram("lat", []float64{10, 100})
	a.Observe("lat", 5)
	a.Observe("lat", 50)
	if err := a.Merge(a); err != nil {
		t.Fatal(err)
	}
	if a.Counter("commits") != 6 {
		t.Fatalf("commits = %d, want 6", a.Counter("commits"))
	}
	if a.Gauge("ratio") != 1 {
		t.Fatalf("ratio = %g, want 1", a.Gauge("ratio"))
	}
	lat := a.Histogram("lat")
	if lat.Count != 4 || lat.Sum != 110 || lat.Counts[0] != 2 || lat.Counts[1] != 2 {
		t.Fatalf("lat after self-merge: %+v counts %v", lat, lat.Counts)
	}
}

// TestRegistryMergeOrderIndependence: the fleet folds per-device
// registries in index order, but the result must not depend on that
// order — counters and histogram buckets are commutative sums.
func TestRegistryMergeOrderIndependence(t *testing.T) {
	mk := func(seed int64) *Registry {
		r := NewRegistry()
		r.Add("commits", seed)
		r.Inc("boots")
		r.RegisterHistogram("lat", []float64{10, 100})
		r.Observe("lat", float64(seed))
		return r
	}
	srcs := []*Registry{mk(3), mk(47), mk(500)}

	fold := func(order ...int) string {
		acc := NewRegistry()
		for _, i := range order {
			if err := acc.Merge(srcs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return dumpString(t, acc)
	}
	want := fold(0, 1, 2)
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := fold(order...); got != want {
			t.Fatalf("merge order %v changed the fold:\n%s\nvs\n%s", order, got, want)
		}
	}
}

func dumpString(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
