package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// ResourceSnapshot is one sample of the *host* process's resource use —
// the simulator observing itself, the way the paper's host-side cost
// attribution observes checkpoint/restore overheads. All fields are
// process-wide: a fleet run samples before and after a phase to
// attribute bytes and goroutines to it.
//
// Peak RSS comes from /proc/self/status (VmHWM) where available; on
// hosts without procfs the sampler falls back to runtime.MemStats and
// reports the Go heap's Sys bytes instead (Source says which). RSS and
// peak RSS are -1 when even the fallback has nothing meaningful to say
// about the process footprint (never on Linux or any Go port, since the
// MemStats fallback always works — the field is signed so readers of
// serialized snapshots from other tools can express "unknown").
type ResourceSnapshot struct {
	HeapInuseBytes  uint64 `json:"heap_inuse_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"` // monotone over the process
	GCPauseTotalNs  uint64 `json:"gc_pause_total_ns"` // monotone over the process
	NumGC           uint32 `json:"num_gc"`            // monotone over the process
	Goroutines      int    `json:"goroutines"`
	RSSBytes        int64  `json:"rss_bytes"`      // current VmRSS (-1 unknown)
	PeakRSSBytes    int64  `json:"peak_rss_bytes"` // VmHWM high-water mark (-1 unknown)
	Source          string `json:"source"`         // "proc" or "runtime"
}

// SampleResources reads one snapshot: runtime.MemStats plus, when the
// host has procfs, VmRSS/VmHWM from /proc/self/status.
func SampleResources() ResourceSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := ResourceSnapshot{
		HeapInuseBytes:  ms.HeapInuse,
		HeapSysBytes:    ms.HeapSys,
		TotalAllocBytes: ms.TotalAlloc,
		GCPauseTotalNs:  ms.PauseTotalNs,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
		RSSBytes:        -1,
		PeakRSSBytes:    -1,
		Source:          "runtime",
	}
	if f, err := os.Open("/proc/self/status"); err == nil {
		rss, peak, ok := parseProcStatus(f)
		f.Close()
		if ok {
			s.RSSBytes, s.PeakRSSBytes, s.Source = rss, peak, "proc"
			return s
		}
	}
	// MemStats fallback: the Go heap's footprint stands in for RSS. It
	// undercounts (no stacks, no runtime structures) but is monotone in
	// the same direction, which is all the regression gate needs.
	s.RSSBytes = int64(ms.HeapInuse)
	s.PeakRSSBytes = int64(ms.HeapSys)
	return s
}

// parseProcStatus extracts VmRSS and VmHWM (in bytes) from the
// /proc/self/status key-value format. ok is false unless both keys were
// found and parsed.
func parseProcStatus(r io.Reader) (rss, peak int64, ok bool) {
	rss, peak = -1, -1
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		var dst *int64
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &rss
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &peak
		default:
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, 0, false
		}
		*dst = kb * 1024
	}
	return rss, peak, rss >= 0 && peak >= 0
}

// ResetPeakRSS asks the kernel to reset the process's RSS high-water
// mark (write "5" to /proc/self/clear_refs), so the next snapshot's
// PeakRSSBytes covers only work done since. Returns false where the
// knob does not exist (non-Linux) — callers then attribute against the
// monotone process-wide peak and say so.
func ResetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}

// SetGauges publishes the snapshot into a registry as prefixed gauges —
// the bridge onto the existing Prometheus/Dump/Merge paths. Unknown
// (-1) RSS fields are skipped so absence is visible, not zero.
func (s ResourceSnapshot) SetGauges(reg *Registry, prefix string) {
	reg.SetGauge(prefix+"heap_inuse_bytes", float64(s.HeapInuseBytes))
	reg.SetGauge(prefix+"heap_sys_bytes", float64(s.HeapSysBytes))
	reg.SetGauge(prefix+"total_alloc_bytes", float64(s.TotalAllocBytes))
	reg.SetGauge(prefix+"gc_pause_total_ns", float64(s.GCPauseTotalNs))
	reg.SetGauge(prefix+"gc_cycles", float64(s.NumGC))
	reg.SetGauge(prefix+"goroutines", float64(s.Goroutines))
	if s.RSSBytes >= 0 {
		reg.SetGauge(prefix+"rss_bytes", float64(s.RSSBytes))
	}
	if s.PeakRSSBytes >= 0 {
		reg.SetGauge(prefix+"peak_rss_bytes", float64(s.PeakRSSBytes))
	}
}

// WriteProm renders the snapshot directly as Prometheus gauge samples
// with the given metric-name prefix — for exporters that publish a
// snapshot next to a registry rather than inside one.
func (s ResourceSnapshot) WriteProm(w io.Writer, prefix string) error {
	reg := NewRegistry()
	s.SetGauges(reg, prefix)
	return reg.WritePrometheus(w)
}

// JSONL renders the snapshot as one JSON line — the same shape the
// fleet report embeds, appendable to the structured-event streams.
func (s ResourceSnapshot) JSONL() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("obs: resource snapshot: %w", err)
	}
	return append(b, '\n'), nil
}
