package energy_test

import (
	"testing"

	"repro/internal/energy"
)

func TestCheckpointCostMonotone(t *testing.T) {
	c := energy.Default()
	prev := int64(-1)
	for _, size := range []int{0, 16, 64, 256, 1024} {
		cost := c.CheckpointCost(size)
		if cost <= prev {
			t.Fatalf("checkpoint cost not monotone at %d B: %d <= %d", size, cost, prev)
		}
		prev = cost
	}
	if c.CheckpointCost(0) != c.CheckpointBase {
		t.Fatalf("empty checkpoint cost %d != base %d", c.CheckpointCost(0), c.CheckpointBase)
	}
	if c.RestoreCost(64) <= c.RestoreBase {
		t.Fatal("restore cost ignores payload")
	}
}

func TestTable4Calibration(t *testing.T) {
	// The defaults are calibrated so that the logged-store and rollback
	// costs land on the paper's Table 4 values.
	c := energy.Default()
	if got := c.PtrCheck; got != 13 {
		t.Fatalf("unlogged pointer access %d, paper says 13", got)
	}
	if got := c.PtrCheck + c.UndoLogEntry; got != 308 {
		t.Fatalf("logged pointer store %d, paper says 308", got)
	}
	if c.UndoRollback != 234 {
		t.Fatalf("rollback %d, paper says 234", c.UndoRollback)
	}
	if c.StackGrow != 345 || c.StackShrink != 345 {
		t.Fatalf("grow/shrink %d/%d, paper says 345", c.StackGrow, c.StackShrink)
	}
}

func TestCapacitor(t *testing.T) {
	cap := energy.NewCapacitor(1000)
	if cap.Usable() != 0 {
		t.Fatal("fresh capacitor should be empty")
	}
	ms := cap.ChargeUntilOn(10) // needs 900 units at 10/ms
	if ms != 90 {
		t.Fatalf("charge time %f", ms)
	}
	usable := cap.Usable()
	if usable != int64(900-50) { // on level minus off level
		t.Fatalf("usable %d", usable)
	}
	cap.Drain(usable)
	if cap.Usable() != 0 {
		t.Fatal("drain did not reach the off level")
	}
	if again := cap.ChargeUntilOn(10); again <= 0 {
		t.Fatal("recharge should take time")
	}
}
