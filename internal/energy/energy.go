// Package energy defines the cycle/energy cost model shared by every
// runtime in the repository, and a small capacitor model used by the
// harvester power source.
//
// The machine runs at a nominal 1 MHz, so one cycle is one microsecond:
// the per-operation constants below are calibrated so that the TICS
// runtime-operation costs land near the paper's Table 4 (grow/shrink
// ~345 µs, checkpoint 264 µs + segment copy, logged pointer store ~308 µs
// versus 13 µs unlogged, rollback ~234 µs per entry). We do not claim
// cycle-exactness — the paper measured silicon, we charge a model — but
// the *ratios* that drive every comparison (logged vs raw stores, small
// vs large checkpoints, full-memory vs working-segment copies) hold.
package energy

// CyclesPerMs is the clock rate expressed as cycles per millisecond
// (1 MHz → 1000 cycles/ms).
const CyclesPerMs = 1000

// CostModel holds the per-operation cycle charges. All runtimes charge
// through the same model, which is what makes cross-runtime execution-time
// comparisons meaningful.
type CostModel struct {
	// Base instruction costs.
	Instr      int64 // ALU / stack manipulation
	InstrMem   int64 // load/store (NV access)
	InstrCtl   int64 // branch / call / return
	TrapBase   int64 // entering any runtime service or peripheral trap
	SenseExtra int64 // additional cycles for an ADC sample
	SendExtra  int64 // additional cycles for a radio send

	// NV copy costs used by checkpoint commits, undo logging, stack moves.
	NVWritePerWord int64 // per 4-byte word written to FRAM
	NVReadPerWord  int64 // per 4-byte word read from FRAM

	// TICS runtime operations (Table 4 calibration).
	CheckpointBase int64 // register file + metadata + commit flag flip
	RestoreBase    int64 // register reload + metadata on reboot
	StackGrow      int64 // working-stack switch + argument copy overhead
	StackShrink    int64 // working-stack switch back
	PtrCheck       int64 // address-range check on an instrumented store
	UndoLogEntry   int64 // write-ahead undo log append (addr+len+old+commit)
	UndoRollback   int64 // restoring one logged word on reboot
	TimestampWrite int64 // shadow-timestamp update on a @= assignment
	TimeRead       int64 // reading the persistent timekeeper
}

// Default returns the calibrated cost model used throughout the repo.
func Default() CostModel {
	return CostModel{
		Instr:          1,
		InstrMem:       4,
		InstrCtl:       3,
		TrapBase:       10,
		SenseExtra:     400,  // ADC warm-up + conversion dominate a sample
		SendExtra:      2000, // a radio packet costs milliseconds-scale energy
		NVWritePerWord: 3,
		NVReadPerWord:  2,
		CheckpointBase: 264,
		RestoreBase:    273,
		StackGrow:      345,
		StackShrink:    345,
		PtrCheck:       13,
		UndoLogEntry:   295, // + PtrCheck = 308, matching Table 4's "log 4 B"
		UndoRollback:   234,
		TimestampWrite: 40,
		TimeRead:       25,
	}
}

// CheckpointCost returns the full cost of committing a checkpoint whose
// variable payload (the working-stack segment for TICS; the whole stack and
// globals for a naive system) is payloadBytes. The payload is copied twice
// (buffer, then commit) by a two-phase commit, hence the 2×.
func (c CostModel) CheckpointCost(payloadBytes int) int64 {
	words := int64((payloadBytes + 3) / 4)
	return c.CheckpointBase + 2*words*(c.NVReadPerWord+c.NVWritePerWord)
}

// RestoreCost returns the cost of restoring a checkpoint with the given
// payload size on reboot (single copy back).
func (c CostModel) RestoreCost(payloadBytes int) int64 {
	words := int64((payloadBytes + 3) / 4)
	return c.RestoreBase + words*(c.NVReadPerWord+c.NVWritePerWord)
}

// Capacitor models the small storage capacitor of a batteryless node.
// Energy is expressed in cycle-equivalents: one unit powers one CPU cycle.
type Capacitor struct {
	Capacity float64 // maximum stored energy (cycle-equivalents)
	OnLevel  float64 // device boots when the level reaches this
	OffLevel float64 // device browns out when the level falls to this
	level    float64
}

// NewCapacitor returns a capacitor with the given capacity; the device
// boots at 90% charge and browns out at 5%.
func NewCapacitor(capacity float64) *Capacitor {
	return &Capacitor{Capacity: capacity, OnLevel: 0.9 * capacity, OffLevel: 0.05 * capacity}
}

// Level returns the current stored energy.
func (c *Capacitor) Level() float64 { return c.level }

// Reset empties the capacitor while preserving its configured capacity
// and boot/brown-out thresholds, so a re-run starts from the identical
// initial state.
func (c *Capacitor) Reset() { c.level = 0 }

// Usable returns how many cycles can run before brown-out.
func (c *Capacitor) Usable() int64 {
	u := c.level - c.OffLevel
	if u < 0 {
		return 0
	}
	return int64(u)
}

// Drain removes energy for the given number of executed cycles.
func (c *Capacitor) Drain(cycles int64) {
	c.level -= float64(cycles)
	if c.level < 0 {
		c.level = 0
	}
}

// ChargeUntilOn charges at the given income rate (cycle-equivalents per
// millisecond) and returns how many milliseconds pass before the device
// can boot. A non-positive rate never boots; callers must guard.
func (c *Capacitor) ChargeUntilOn(ratePerMs float64) float64 {
	if c.level >= c.OnLevel {
		return 0
	}
	need := c.OnLevel - c.level
	ms := need / ratePerMs
	c.level = c.OnLevel
	return ms
}
