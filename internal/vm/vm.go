// Package vm executes linked TICS-C images on a simulated intermittently
// powered MCU. The machine has a volatile register file (PC, SP, FP, RV),
// a non-volatile 64 KB main memory, a deterministic per-operation cycle
// cost model, and a power source that yields powered windows: when a
// window is exhausted mid-operation the volatile state is lost and the
// installed Runtime's Boot path decides what survives — exactly the
// paper's execution model.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/timekeeper"
)

// Registers is the volatile CPU state cleared by every power failure.
type Registers struct {
	PC uint32
	SP uint32
	FP uint32
	RV uint32
}

// CpKind classifies why a checkpoint was taken.
type CpKind int

const (
	CpManual CpKind = iota
	CpTimer
	CpStackGrow
	CpStackShrink
	CpTrigger // baseline trigger-point checkpoints (loop back-edges, calls)
	cpKindCount
)

func (k CpKind) String() string {
	switch k {
	case CpManual:
		return "manual"
	case CpTimer:
		return "timer"
	case CpStackGrow:
		return "stack-grow"
	case CpStackShrink:
		return "stack-shrink"
	case CpTrigger:
		return "trigger"
	}
	return "?"
}

// Runtime is the intermittency-protection strategy plugged into the
// machine. internal/core implements TICS; internal/baseline and
// internal/taskrt implement the systems TICS is compared against.
type Runtime interface {
	Name() string
	// Boot runs at every power-up. cold is true only for the first boot of
	// a fresh device; afterwards the runtime restores whatever state its
	// strategy preserved. Boot must set the register file.
	Boot(m *Machine, cold bool) error
	// Enter implements the Enter opcode (function prologue, stack checks,
	// TICS stack grow). fn indexes the image's function table.
	Enter(m *Machine, fn int) error
	// Leave implements the Leave opcode (epilogue + return, TICS stack
	// shrink).
	Leave(m *Machine) error
	// PreStore runs at the start of every instrumented-store instruction,
	// before its operands are popped. A runtime whose log is full takes
	// its forced checkpoint here, so the saved PC re-executes the whole
	// store instruction on restore (a checkpoint taken after the pops
	// would resume with a corrupted operand stack).
	PreStore(m *Machine) error
	// LoggedStore implements the instrumented store opcodes: the runtime
	// applies its consistency discipline (undo logging, privatization)
	// and performs the write.
	LoggedStore(m *Machine, addr uint32, size int, value uint32) error
	// Checkpoint handles a checkpoint request. Runtimes without
	// checkpoints treat it as a no-op.
	Checkpoint(m *Machine, kind CpKind) error
	// OnExpiry fires when an armed @expires/catch deadline passes.
	OnExpiry(m *Machine) error
	// Transition handles the TransTo opcode (task-based runtimes only).
	Transition(m *Machine, task int32) error
	// OnInterrupt delivers an interrupt: the runtime performs the
	// call-like transfer into the ISR and applies its discipline (TICS
	// disables automatic checkpoints for the ISR's duration, §4).
	OnInterrupt(m *Machine, isrEntry uint32) error
	// OnInterruptReturn runs right after the ISR's return-from-interrupt
	// (TICS places an implicit checkpoint here, §4).
	OnInterruptReturn(m *Machine) error
	// Stats returns runtime-specific counters for experiment reports. The
	// returned map must be a defensive copy: callers may mutate it without
	// corrupting the runtime's live counters.
	Stats() map[string]int64
}

// powerFailure is the panic sentinel unwinding the current window.
type powerFailure struct{}

// machineFault aborts execution with a program error (wild store,
// divide by zero, stack overflow).
type machineFault struct{ err error }

// ErrStarved is returned when the program cannot make progress within the
// failure/cycle watchdog — the system-starvation phenomenon the paper
// describes for oversized checkpoints.
var ErrStarved = errors.New("vm: starved: no forward progress within the watchdog budget")

// SendRec is one radio transmission. Seq is the device's send sequence
// number: it advances per executed Send but only commits at commit points
// (checkpoint, task transition, end of run), so a send re-executed after a
// rollback — or after a restart-from-main reboot under the plain runtime —
// transmits again with the *same* sequence number. That is exactly the
// identity a gateway needs to deduplicate the raw radio's replayed
// packets; with VirtualizeSends every transmitted packet carries a unique
// Seq because only committed sends ever leave the device.
type SendRec struct {
	Value  int32
	TrueMs float64 // true wall-clock time of the transmission (commit time when virtualized)
	EstMs  int64   // the device's own clock at the transmission
	Seq    int64   // committed-send sequence number (see above)
	// EmitTrueMs/EmitEstMs snapshot the Send instruction's execution —
	// the moment the payload (typically a sensor reading) was produced.
	// For raw-radio sends they equal TrueMs/EstMs; for virtualized sends
	// the packet is held until the next commit point, so
	// TrueMs - EmitTrueMs is the commit latency the telemetry layer
	// reports per message span, and EmitEstMs is the payload's sensor
	// timestamp on the device clock.
	EmitTrueMs float64
	EmitEstMs  int64
	// PC is the address of the Send instruction that produced the packet,
	// letting offline checkers attribute a committed transmission back to
	// its program point (the reset-point model checker keys data-freshness
	// provenance on it).
	PC uint32
}

// CommitLatencyMs is the time the packet waited between its Send
// instruction and the commit point that released it to the radio (0 for
// raw-radio sends, which transmit immediately).
func (r SendRec) CommitLatencyMs() float64 { return r.TrueMs - r.EmitTrueMs }

// SensorBank provides sensor readings; implementations live in
// internal/sensors.
type SensorBank interface {
	Sense(id int32, trueMs float64) int32
}

// Config assembles a machine.
type Config struct {
	Image *link.Image
	// Prepared shares one decoded program and one immutable post-link
	// memory snapshot across many machines: with it set, New forks the
	// snapshot copy-on-write instead of loading and decoding the image
	// again. Image may be left nil (it is taken from Prepared) but must
	// match Prepared.Img when both are set. Build one with Prepare.
	Prepared *Prepared
	Cost     energy.CostModel
	Power    power.Source
	Clock    timekeeper.Keeper
	Runtime  Runtime
	Sensors  SensorBank
	// AutoCpPeriodMs enables timer-driven checkpoints with the given
	// period (0 disables; the paper uses 10 ms).
	AutoCpPeriodMs float64
	// MaxCycles is the starvation watchdog (default 2e9 cycles ≈ 33
	// simulated minutes at 1 MHz).
	MaxCycles int64
	// MaxFailures bounds reboot loops (default 1e6).
	MaxFailures int
	// MaxWallMs ends the run (Result.TimedOut) once true wall-clock time —
	// on-time plus off-time — reaches this budget. Zero disables. The
	// fixed-duration experiments (Table 1) use it.
	MaxWallMs float64
	// InterruptPeriodMs fires a periodic timer interrupt every period of
	// powered time, delivered to the function named ISRName. Zero
	// disables. A pending interrupt is volatile: a power failure before
	// its ISR completes makes it vanish, exactly the paper's semantics
	// ("the system will continue as if the interrupt did not occur").
	InterruptPeriodMs float64
	// ISRName is the interrupt service routine (default "isr_timer").
	ISRName string
	// VirtualizeSends buffers radio sends in the runtime's commit
	// machinery so each committed send transmits exactly once — the
	// "virtualizing the I/O interface across power failures" the paper
	// names as future work. Off by default: the raw radio duplicates
	// replayed sends, as real hardware does.
	VirtualizeSends bool
	// Recorder attaches a flight recorder (event trace, cycle profiler,
	// metrics). Nil disables observability entirely; every emission site
	// then costs a single pointer check.
	Recorder *obs.Recorder
}

// Machine is the simulated MCU.
type Machine struct {
	Mem  *mem.Memory
	Img  *link.Image
	Cost energy.CostModel

	Regs Registers
	// CpDisable is the nesting depth of atomic time-annotation regions
	// (@=, @expires, @timely); automatic checkpoints are suppressed while
	// it is positive. It is volatile but checkpointed by the runtimes.
	CpDisable int

	// Volatile expiry arm (re-armed by re-executing ExpCatch after boot).
	ExpiryArmed    bool
	ExpiryDeadline int64
	ExpiryCatchPC  uint32

	rt       Runtime
	powerSrc power.Source
	clock    timekeeper.Keeper
	sensors  SensorBank

	remaining    int64 // cycles left in the current window
	pendingOffMs float64
	cycles       int64
	sinceCp      int64
	autoCpCycles int64
	onMs         float64
	offMs        float64
	failures     int
	maxCycles    int64
	maxFailures  int
	maxWallMs    float64
	halted       bool
	timedOut     bool

	// OnStore observes every program-order store (after the runtime's
	// consistency discipline) with the device clock reading; OnMark
	// observes Mark opcodes; OnCheckpoint/OnRestore observe commit points
	// and rollbacks so observers can keep only *committed* events. The
	// Table 2 violation detectors hook these.
	OnStore      func(addr uint32, size int, val uint32, deviceMs int64)
	OnMark       func(id int32, deviceMs int64)
	OnCheckpoint func(kind CpKind)
	OnRestore    func()
	// OnSend observes every transmission as it enters the committed
	// SendLog: immediately for raw-radio sends, at the releasing commit
	// point for virtualized ones (rec.TrueMs/EstMs are the commit stamps
	// by then). Rolled-back virtualized sends are never reported.
	OnSend func(rec SendRec)

	// Interrupt controller state (volatile).
	irqPeriodMs float64
	irqEntry    uint32
	nextIrqMs   float64
	inISR       bool
	isrRetPC    uint32
	isrRetSP    uint32

	cpCounts [cpKindCount]int64
	restores int64
	irqCount int64

	SendLog         []SendRec
	virtualizeSends bool
	sendPending     []SendRec
	// sendSeq numbers Send executions; sendSeqCommitted is its NV shadow,
	// advanced only at commit points. A power failure or rollback rewinds
	// sendSeq to the committed value, so re-executed sends reuse their
	// sequence numbers (the dedup identity fleet gateways key on).
	sendSeq          int64
	sendSeqCommitted int64
	// OutLog is the committed verification channel: Out-opcode values stay
	// pending until a commit point (checkpoint, task transition, or end of
	// run) and are dropped when a restore rolls their execution back, so
	// the log reflects exactly the committed execution. SendLog, by
	// contrast, is the raw radio: replayed sends appear twice, the real
	// phenomenon the paper defers to I/O virtualization future work.
	OutLog     map[int32][]int32
	outPending []outEntry

	decoded map[uint32]decodedInstr
	// prepared is the shared image this machine forked from (nil when the
	// machine owns a privately loaded flat memory). Reset requires it.
	prepared *Prepared

	// rec is the attached flight recorder (nil when observability is off).
	rec *obs.Recorder
}

type decodedInstr struct {
	in   isa.Instr
	next uint32
	fn   int // enclosing function index (-1 for the boot stub)
}

type outEntry struct {
	ch  int32
	val int32
}

// Prepared is the shareable, immutable part of a device: the decoded
// program and the post-link memory snapshot. One Prepared serves any
// number of machines concurrently — fleets fork thousands of devices from
// a single one instead of re-loading and re-decoding the image per device.
type Prepared struct {
	Img     *link.Image
	decoded map[uint32]decodedInstr
	base    *mem.Base
}

// Prepare loads img into a scratch memory, freezes the result as the
// copy-on-write base, and decodes the text segment once.
func Prepare(img *link.Image) (*Prepared, error) {
	if img == nil {
		return nil, errors.New("vm: prepare needs an image")
	}
	scratch := mem.New()
	if err := img.LoadInto(scratch); err != nil {
		return nil, err
	}
	decoded, err := decodeImage(img)
	if err != nil {
		return nil, err
	}
	return &Prepared{Img: img, decoded: decoded, base: scratch.Freeze()}, nil
}

// normalize resolves the Prepared/Image pair and fills config defaults.
func (cfg Config) normalize() (Config, error) {
	if cfg.Prepared != nil {
		if cfg.Image == nil {
			cfg.Image = cfg.Prepared.Img
		} else if cfg.Image != cfg.Prepared.Img {
			return cfg, errors.New("vm: config image differs from the prepared image")
		}
	}
	if cfg.Image == nil {
		return cfg, errors.New("vm: config needs an image")
	}
	if cfg.Power == nil {
		cfg.Power = power.Continuous{}
	}
	if cfg.Clock == nil {
		cfg.Clock = &timekeeper.Perfect{}
	}
	if cfg.Runtime == nil {
		cfg.Runtime = NewPlain()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 1_000_000
	}
	if (cfg.Cost == energy.CostModel{}) {
		cfg.Cost = energy.Default()
	}
	return cfg, nil
}

// apply installs a normalized config on a machine whose memory and
// decoded program are already in place. Shared by New and Reset.
func (m *Machine) apply(cfg Config) error {
	m.Img = cfg.Image
	m.Cost = cfg.Cost
	m.rt = cfg.Runtime
	m.powerSrc = cfg.Power
	m.clock = cfg.Clock
	m.sensors = cfg.Sensors
	m.maxCycles = cfg.MaxCycles
	m.maxFailures = cfg.MaxFailures
	m.maxWallMs = cfg.MaxWallMs
	m.virtualizeSends = cfg.VirtualizeSends
	m.OutLog = map[int32][]int32{}
	m.autoCpCycles = int64(cfg.AutoCpPeriodMs * energy.CyclesPerMs)
	m.irqPeriodMs, m.irqEntry, m.nextIrqMs = 0, 0, 0
	if cfg.InterruptPeriodMs > 0 {
		name := cfg.ISRName
		if name == "" {
			name = "isr_timer"
		}
		found := false
		for _, f := range cfg.Image.Funcs {
			if f.Name == name {
				if f.NArgs != 0 {
					return fmt.Errorf("vm: ISR %s must take no arguments", name)
				}
				m.irqEntry = f.Entry
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("vm: no ISR function %q in the image", name)
		}
		m.irqPeriodMs = cfg.InterruptPeriodMs
		m.nextIrqMs = m.onMs + m.irqPeriodMs
	}
	m.AttachRecorder(cfg.Recorder)
	return nil
}

// New builds a machine and leaves it ready to Run. With cfg.Prepared it
// forks the shared post-link snapshot copy-on-write and reuses the shared
// decoded program; otherwise it loads the image into a fresh flat memory
// and decodes it privately.
func New(cfg Config) (*Machine, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	m := &Machine{}
	if cfg.Prepared != nil {
		m.Mem = mem.Fork(cfg.Prepared.base)
		m.decoded = cfg.Prepared.decoded
		m.prepared = cfg.Prepared
	} else {
		m.Mem = mem.New()
		if err := cfg.Image.LoadInto(m.Mem); err != nil {
			return nil, err
		}
		if m.decoded, err = decodeImage(cfg.Image); err != nil {
			return nil, err
		}
	}
	if err := m.apply(cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset rebinds a machine built from a Prepared image for reuse: memory
// returns to the post-link snapshot, every counter, log and volatile
// register is cleared, and the (re-normalized) config is applied as New
// would. The previous run's Result keeps ownership of the old SendLog and
// OutLog; only the machine's references are dropped. cfg.Prepared must be
// the machine's own prepared image.
func (m *Machine) Reset(cfg Config) error {
	cfg, err := cfg.normalize()
	if err != nil {
		return err
	}
	if m.prepared == nil || cfg.Prepared != m.prepared {
		return errors.New("vm: Reset needs the machine's own prepared image")
	}
	m.Mem.ResetToBase(cfg.Prepared.base)
	m.Regs = Registers{}
	m.CpDisable = 0
	m.ExpiryArmed, m.ExpiryDeadline, m.ExpiryCatchPC = false, 0, 0
	m.remaining, m.pendingOffMs = 0, 0
	m.cycles, m.sinceCp = 0, 0
	m.onMs, m.offMs = 0, 0
	m.failures = 0
	m.halted, m.timedOut = false, false
	m.OnStore, m.OnMark, m.OnCheckpoint, m.OnRestore, m.OnSend = nil, nil, nil, nil, nil
	m.inISR, m.isrRetPC, m.isrRetSP = false, 0, 0
	m.cpCounts = [cpKindCount]int64{}
	m.restores, m.irqCount = 0, 0
	m.SendLog = nil
	m.sendPending = m.sendPending[:0]
	m.sendSeq, m.sendSeqCommitted = 0, 0
	m.outPending = m.outPending[:0]
	return m.apply(cfg)
}

// decodeImage decodes the image's text segment into the instruction map
// machines dispatch from.
func decodeImage(img *link.Image) (map[uint32]decodedInstr, error) {
	decoded := make(map[uint32]decodedInstr)
	code := img.Text
	for off := 0; off < len(code); {
		in, next, err := isa.Decode(code, off)
		if err != nil {
			return nil, err
		}
		addr := img.TextBase + uint32(off)
		decoded[addr] = decodedInstr{in: in, next: img.TextBase + uint32(next), fn: fnAt(img, addr)}
		off = next
	}
	return decoded, nil
}

// fnAt resolves an instruction address to its enclosing function index
// (-1 for the boot stub). Function bodies are laid out contiguously in
// image order, so the enclosing function is the last one whose entry is
// at or below addr.
func fnAt(img *link.Image, addr uint32) int {
	fn := -1
	for i, f := range img.Funcs {
		if f.Entry > addr {
			break
		}
		fn = i
	}
	return fn
}

// ---- Accessors used by runtimes ----

// Runtime returns the installed runtime.
func (m *Machine) Runtime() Runtime { return m.rt }

// AttachRecorder wires a flight recorder to the machine (nil detaches).
// Call before Run; the machine installs the image's function-name table
// so the recorder's profiler can resolve symbols.
func (m *Machine) AttachRecorder(rec *obs.Recorder) {
	m.rec = rec
	if rec == nil {
		return
	}
	names := make([]string, len(m.Img.Funcs))
	for i, f := range m.Img.Funcs {
		names[i] = f.Name
	}
	rec.SetFunctions(names)
}

// Recorder returns the attached flight recorder (nil when disabled).
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// ObserveStores adds fn as a store observer, chaining after any observer
// already installed in OnStore so multiple watchers (a violation
// detector plus the trace auditor, say) compose instead of clobbering
// each other.
func (m *Machine) ObserveStores(fn func(addr uint32, size int, val uint32, deviceMs int64)) {
	if prev := m.OnStore; prev != nil {
		m.OnStore = func(addr uint32, size int, val uint32, deviceMs int64) {
			prev(addr, size, val, deviceMs)
			fn(addr, size, val, deviceMs)
		}
		return
	}
	m.OnStore = fn
}

// EmitEvent records a flight-recorder event stamped with the machine's
// cycle counter and clocks. A no-op without an attached recorder —
// runtimes call this unconditionally.
func (m *Machine) EmitEvent(kind obs.EventKind, a0, a1 int64) {
	if m.rec == nil {
		return
	}
	m.rec.Emit(obs.Event{
		Kind:     kind,
		Cycles:   m.cycles,
		TrueMs:   m.TrueNowMs(),
		DeviceMs: m.clock.Now(),
		Arg0:     a0,
		Arg1:     a1,
	})
}

// PushCat / PopCat bracket a runtime operation so the profiler attributes
// its cycles to the given overhead category. No-ops without a recorder.
func (m *Machine) PushCat(c obs.Category) {
	if m.rec != nil {
		m.rec.PushCategory(c)
	}
}

// PopCat leaves the innermost profiler category.
func (m *Machine) PopCat() {
	if m.rec != nil {
		m.rec.PopCategory()
	}
}

// ObserveMetric records a histogram observation in the recorder's metrics
// registry (no-op without a recorder).
func (m *Machine) ObserveMetric(name string, v float64) {
	if m.rec != nil {
		m.rec.Metrics().Observe(name, v)
	}
}

// resetRecStack re-roots the profiler's shadow call stack at the current
// PC after a control-flow discontinuity (boot, restore, task switch).
// When PC sits exactly on an Enter instruction the frame is about to be
// pushed by its execution, so the seed stays empty.
func (m *Machine) resetRecStack() {
	if m.rec == nil {
		return
	}
	fn := -1
	if d, ok := m.decoded[m.Regs.PC]; ok && d.in.Op != isa.Enter {
		fn = d.fn
	}
	m.rec.ResetStack(fn)
}

// CpDisabled reports whether automatic checkpoints are currently
// suppressed by an atomic time-annotation region.
func (m *Machine) CpDisabled() bool { return m.CpDisable > 0 }

// Clock returns the persistent timekeeper.
func (m *Machine) Clock() timekeeper.Keeper { return m.clock }

// TrueNowMs returns the true wall-clock time (on + off) in milliseconds.
func (m *Machine) TrueNowMs() float64 { return m.onMs + m.offMs }

// Cycles returns total executed cycles.
func (m *Machine) Cycles() int64 { return m.cycles }

// Remaining returns the cycles left in the current powered window — the
// "voltage check" proxy used by Mementos-style trigger checkpoints.
func (m *Machine) Remaining() int64 { return m.remaining }

// SinceCheckpoint returns cycles executed since the last checkpoint.
func (m *Machine) SinceCheckpoint() int64 { return m.sinceCp }

// NoteCheckpoint records a completed checkpoint of the given kind and
// resets the timer-checkpoint clock.
func (m *Machine) NoteCheckpoint(kind CpKind) {
	m.cpCounts[kind]++
	m.sinceCp = 0
	m.CommitObservables()
	m.EmitEvent(obs.EvCheckpointCommit, int64(kind), 0)
	if m.OnCheckpoint != nil {
		m.OnCheckpoint(kind)
	}
}

// CommitObservables flushes pending Out values into the committed log and
// transmits any virtualized sends (charging the radio cost now). Runtimes
// whose commit point is not a checkpoint (task transitions) call it
// directly.
func (m *Machine) CommitObservables() {
	if m.rec != nil {
		m.rec.OnCommit()
	}
	for _, e := range m.outPending {
		m.OutLog[e.ch] = append(m.OutLog[e.ch], e.val)
	}
	m.outPending = m.outPending[:0]
	// No Spend here: the flush must be atomic with the commit (a failure
	// between them would drop already-committed packets).
	for _, rec := range m.sendPending {
		rec.TrueMs = m.TrueNowMs()
		rec.EstMs = m.clock.Now()
		m.SendLog = append(m.SendLog, rec)
		if m.OnSend != nil {
			m.OnSend(rec)
		}
	}
	m.sendPending = m.sendPending[:0]
	m.sendSeqCommitted = m.sendSeq
}

// NoteRestore records a completed post-failure restore.
func (m *Machine) NoteRestore() {
	m.restores++
	m.outPending = m.outPending[:0] // the rolled-back execution never happened
	m.sendPending = m.sendPending[:0]
	m.sendSeq = m.sendSeqCommitted // re-executed sends reuse their seq numbers
	m.EmitEvent(obs.EvRestore, 0, 0)
	if m.OnRestore != nil {
		m.OnRestore()
	}
}

// Spend charges cycles; it panics with the power-failure sentinel when the
// window is exhausted, so multi-step runtime operations (checkpoint
// copies, undo-log appends) can die halfway exactly like real FRAM writes.
func (m *Machine) Spend(c int64) {
	m.remaining -= c
	m.cycles += c
	m.sinceCp += c
	ms := float64(c) / energy.CyclesPerMs
	m.onMs += ms
	m.clock.AdvanceOn(ms)
	if m.rec != nil {
		// Attribute before the failure check: cycles charged by the dying
		// operation are consumed cycles too.
		m.rec.OnSpend(c)
	}
	if m.remaining < 0 {
		panic(powerFailure{})
	}
}

// Halt stops the machine as if the program executed Halt (used by task
// runtimes when the final task transitions to the done sentinel).
func (m *Machine) Halt() { m.halted = true }

// PowerOn grants a powered window directly, bypassing the power source.
// Micro-benchmark harnesses (Table 4) use it to drive runtime operations
// outside Run.
func (m *Machine) PowerOn(cycles int64) { m.remaining = cycles }

// Fault aborts execution with a program fault.
func (m *Machine) Fault(format string, args ...any) {
	panic(machineFault{fmt.Errorf(format, args...)})
}

// Push pushes a word onto the machine stack.
func (m *Machine) Push(v uint32) {
	sp := m.Regs.SP - 4
	if sp < m.Img.StackBase {
		m.Fault("stack overflow: SP=%#x below stack base %#x", sp, m.Img.StackBase)
	}
	m.Regs.SP = sp
	m.Mem.WriteWord(sp, v)
}

// Pop pops a word from the machine stack.
func (m *Machine) Pop() uint32 {
	if m.Regs.SP >= m.Img.StackBase+m.Img.StackLen {
		m.Fault("stack underflow: SP=%#x", m.Regs.SP)
	}
	v := m.Mem.ReadWord(m.Regs.SP)
	m.Regs.SP += 4
	return v
}

// writable reports whether the program may store to addr (globals, mark
// counters, or the stack region — never text or the runtime area).
func (m *Machine) writable(addr uint32, size int) bool {
	end := addr + uint32(size)
	return addr >= m.Img.GlobalsBase && end <= m.Img.StackBase+m.Img.StackLen
}

// RawStore performs an uninstrumented program store with bounds checking.
// All program-order stores funnel through here (the runtimes' LoggedStore
// implementations included), which is where the store observer hooks in.
func (m *Machine) RawStore(addr uint32, size int, v uint32) {
	if !m.writable(addr, size) {
		m.Fault("wild store of %d bytes at %#x", size, addr)
	}
	if size == 1 {
		m.Mem.WriteByteAt(addr, byte(v))
	} else {
		m.Mem.WriteWord(addr, v)
	}
	if m.OnStore != nil {
		m.OnStore(addr, size, v, m.clock.Now())
	}
}

// ---- Execution ----

// Result summarizes a run.
type Result struct {
	Completed bool
	Starved   bool
	TimedOut  bool // the MaxWallMs budget elapsed first
	Fault     error

	Cycles   int64
	OnMs     float64
	OffMs    float64
	Failures int
	Restores int64

	Checkpoints      map[string]int64
	TotalCheckpoints int64
	Interrupts       int64
	RuntimeStats     map[string]int64

	SendLog    []SendRec
	OutLog     map[int32][]int32
	MarkCounts []int64

	MemStats mem.Stats
}

// WallMs returns total true elapsed time.
func (r Result) WallMs() float64 { return r.OnMs + r.OffMs }

// Run executes the image to completion (Halt), starvation, or fault.
func (m *Machine) Run() (Result, error) {
	cold := true
	for !m.halted {
		if m.timedOut {
			return m.result(false, false, nil), nil
		}
		if m.failures > m.maxFailures || m.cycles > m.maxCycles {
			return m.result(false, true, nil), nil
		}
		failed, fault := m.runWindow(cold)
		cold = false
		if fault != nil {
			return m.result(false, false, fault), fault
		}
		if failed {
			m.failures++
			m.EmitEvent(obs.EvPowerFail, m.sinceCp, int64(m.failures))
			if m.rec != nil {
				m.rec.OnPowerFail()
			}
			m.offMs += m.pendingOffMs
			m.clock.AdvanceOff(m.pendingOffMs)
			m.Regs = Registers{}
			m.CpDisable = 0
			m.ExpiryArmed = false
			// The working send-sequence counter is volatile; its committed
			// shadow survives, so replayed sends reuse their numbers.
			m.sendSeq = m.sendSeqCommitted
			// Pending/in-flight interrupts are volatile: the paper's
			// semantics are that an incomplete ISR never happened.
			m.inISR = false
			if m.irqPeriodMs > 0 {
				m.nextIrqMs = m.onMs + m.irqPeriodMs
			}
		}
	}
	return m.result(true, false, nil), nil
}

// runWindow powers the device for one window and executes until Halt,
// fault, or power failure.
func (m *Machine) runWindow(cold bool) (failed bool, fault error) {
	m.remaining, m.pendingOffMs = m.powerSrc.NextWindow()
	defer func() {
		r := recover()
		switch r := r.(type) {
		case nil:
		case powerFailure:
			failed = true
		case machineFault:
			fault = r.err
		default:
			panic(r)
		}
	}()
	if cold {
		m.EmitEvent(obs.EvBoot, 1, 0)
	} else {
		m.EmitEvent(obs.EvBoot, 0, 0)
	}
	m.PushCat(obs.CatRestore)
	if err := m.rt.Boot(m, cold); err != nil {
		return false, err
	}
	m.PopCat()
	m.resetRecStack()
	for !m.halted {
		if err := m.step(); err != nil {
			return false, err
		}
		if m.cycles > m.maxCycles {
			return false, nil // watchdog; Run turns this into starvation
		}
		if m.maxWallMs > 0 && m.TrueNowMs() >= m.maxWallMs {
			m.timedOut = true
			return false, nil
		}
	}
	return false, nil
}

func (m *Machine) chargeFor(op isa.Op) {
	switch isa.Lookup(op).Class {
	case isa.ClassALU:
		m.Spend(m.Cost.Instr)
	case isa.ClassMem:
		m.Spend(m.Cost.InstrMem)
	case isa.ClassCtl:
		m.Spend(m.Cost.InstrCtl)
	case isa.ClassTrap:
		m.Spend(m.Cost.TrapBase)
	}
}

func (m *Machine) step() error {
	d, ok := m.decoded[m.Regs.PC]
	if !ok {
		m.Fault("PC=%#x is not an instruction boundary", m.Regs.PC)
	}
	in := d.in
	m.chargeFor(in.Op)
	next := d.next
	switch in.Op {
	case isa.StoreGL, isa.StoreGBL, isa.StoreIL, isa.StoreIBL, isa.Mark, isa.SetTS:
		if err := m.rt.PreStore(m); err != nil {
			return err
		}
	}
	switch in.Op {
	case isa.Nop:
	case isa.Halt:
		m.halted = true
	case isa.PushI:
		m.Push(uint32(in.Imm))
	case isa.Dup:
		v := m.Pop()
		m.Push(v)
		m.Push(v)
	case isa.Drop:
		m.Pop()
	case isa.Swap:
		a := m.Pop()
		b := m.Pop()
		m.Push(a)
		m.Push(b)
	case isa.LoadG:
		m.Push(m.Mem.ReadWord(uint32(in.Imm)))
	case isa.StoreG:
		m.RawStore(uint32(in.Imm), 4, m.Pop())
	case isa.StoreGL:
		if err := m.rt.LoggedStore(m, uint32(in.Imm), 4, m.Pop()); err != nil {
			return err
		}
	case isa.LoadGB:
		m.Push(uint32(m.Mem.ReadByteAt(uint32(in.Imm))))
	case isa.StoreGB:
		m.RawStore(uint32(in.Imm), 1, m.Pop())
	case isa.StoreGBL:
		if err := m.rt.LoggedStore(m, uint32(in.Imm), 1, m.Pop()); err != nil {
			return err
		}
	case isa.LoadL:
		m.Push(m.Mem.ReadWord(uint32(int32(m.Regs.FP) + in.Imm)))
	case isa.StoreL:
		m.RawStore(uint32(int32(m.Regs.FP)+in.Imm), 4, m.Pop())
	case isa.AddrL:
		m.Push(uint32(int32(m.Regs.FP) + in.Imm))
	case isa.LoadI:
		m.Push(m.Mem.ReadWord(m.Pop()))
	case isa.StoreI:
		v := m.Pop()
		m.RawStore(m.Pop(), 4, v)
	case isa.StoreIL:
		v := m.Pop()
		if err := m.rt.LoggedStore(m, m.Pop(), 4, v); err != nil {
			return err
		}
	case isa.LoadIB:
		m.Push(uint32(m.Mem.ReadByteAt(m.Pop())))
	case isa.StoreIB:
		v := m.Pop()
		m.RawStore(m.Pop(), 1, v)
	case isa.StoreIBL:
		v := m.Pop()
		if err := m.rt.LoggedStore(m, m.Pop(), 1, v); err != nil {
			return err
		}
	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Mod, isa.And, isa.Or, isa.Xor,
		isa.Shl, isa.Shr, isa.CmpEq, isa.CmpNe, isa.CmpLt, isa.CmpLe, isa.CmpGt,
		isa.CmpGe, isa.CmpLtU, isa.CmpLeU, isa.CmpGtU, isa.CmpGeU:
		r := m.Pop()
		l := m.Pop()
		m.Push(m.alu(in.Op, l, r))
	case isa.Neg:
		m.Push(uint32(-int32(m.Pop())))
	case isa.Not:
		m.Push(^m.Pop())
	case isa.LNot:
		if m.Pop() == 0 {
			m.Push(1)
		} else {
			m.Push(0)
		}
	case isa.Jmp:
		next = uint32(in.Imm)
	case isa.Jz:
		if m.Pop() == 0 {
			next = uint32(in.Imm)
		}
	case isa.Jnz:
		if m.Pop() != 0 {
			next = uint32(in.Imm)
		}
	case isa.Call:
		m.Push(next)
		next = uint32(in.Imm)
	case isa.Enter:
		// Advance PC first: a checkpoint taken by a stack grow must resume
		// *after* the prologue, with the new frame already set up.
		m.Regs.PC = next
		if m.rec != nil {
			// Push before the runtime prologue so grow/checkpoint cycles
			// land on the callee in the folded stacks.
			m.rec.EnterFunc(int(in.Imm))
		}
		if err := m.rt.Enter(m, int(in.Imm)); err != nil {
			return err
		}
	case isa.Leave:
		if err := m.rt.Leave(m); err != nil {
			return err
		}
		if m.rec != nil {
			m.rec.LeaveFunc()
		}
		next = m.Regs.PC // Leave sets PC to the return address
	case isa.SetRV:
		m.Regs.RV = m.Pop()
	case isa.GetRV:
		m.Push(m.Regs.RV)
	case isa.AddSP:
		m.Regs.SP += uint32(in.Imm)
	case isa.Sense:
		m.Spend(m.Cost.SenseExtra)
		var v int32
		if m.sensors != nil {
			v = m.sensors.Sense(in.Imm, m.TrueNowMs())
		}
		m.Push(uint32(v))
	case isa.Send:
		now, est := m.TrueNowMs(), m.clock.Now()
		rec := SendRec{Value: int32(m.Pop()), TrueMs: now, EstMs: est,
			EmitTrueMs: now, EmitEstMs: est, Seq: m.sendSeq, PC: m.Regs.PC}
		m.sendSeq++
		virt := int64(0)
		if m.virtualizeSends {
			virt = 1
		}
		m.EmitEvent(obs.EvSend, int64(rec.Value), virt)
		if m.virtualizeSends {
			// Virtualized I/O: pay the radio cost now, but hold the packet
			// in the commit queue — it transmits atomically with the next
			// commit point, so committed sends go out exactly once and
			// rolled-back sends never leave the device.
			m.Spend(m.Cost.SendExtra)
			m.sendPending = append(m.sendPending, rec)
		} else {
			m.Spend(m.Cost.SendExtra)
			m.SendLog = append(m.SendLog, rec)
			if m.OnSend != nil {
				m.OnSend(rec)
			}
		}
	case isa.Out:
		m.outPending = append(m.outPending, outEntry{ch: in.Imm, val: int32(m.Pop())})
	case isa.Mark:
		addr := m.Img.MarkBase + uint32(4*in.Imm)
		v := m.Mem.ReadWord(addr)
		if err := m.rt.LoggedStore(m, addr, 4, v+1); err != nil {
			return err
		}
		if m.OnMark != nil {
			m.OnMark(in.Imm, m.clock.Now())
		}
	case isa.Now:
		m.Spend(m.Cost.TimeRead)
		m.Push(uint32(int32(m.clock.Now())))
	case isa.Chkpt:
		// Advance PC first so the checkpoint resumes after this
		// instruction instead of re-taking it forever.
		m.Regs.PC = next
		if err := m.rt.Checkpoint(m, CpManual); err != nil {
			return err
		}
	case isa.CpDis:
		m.CpDisable++
	case isa.CpEn:
		if m.CpDisable > 0 {
			m.CpDisable--
		}
	case isa.SetTS:
		m.Spend(m.Cost.TimestampWrite)
		addr := m.Pop()
		if err := m.rt.LoggedStore(m, addr, 4, uint32(int32(m.clock.Now()))); err != nil {
			return err
		}
	case isa.ExpBegin, isa.ExpCatch:
		m.Spend(m.Cost.TimeRead)
		dur := int64(int32(m.Pop()))
		tsAddr := m.Pop()
		ts := int64(m.Mem.ReadInt(tsAddr))
		now := m.clock.Now()
		if now-ts > dur {
			next = uint32(in.Imm)
		} else if in.Op == isa.ExpCatch {
			m.ExpiryArmed = true
			m.ExpiryDeadline = ts + dur
			m.ExpiryCatchPC = uint32(in.Imm)
		}
	case isa.ExpEnd:
		m.ExpiryArmed = false
	case isa.Timely:
		m.Spend(m.Cost.TimeRead)
		deadline := int64(int32(m.Pop()))
		if m.clock.Now() >= deadline {
			next = uint32(in.Imm)
		}
	case isa.TransTo:
		if err := m.rt.Transition(m, in.Imm); err != nil {
			return err
		}
		m.EmitEvent(obs.EvTaskCommit, int64(in.Imm), 0)
		m.resetRecStack() // a fresh task stack replaces the old frames
		next = m.Regs.PC  // transitions jump to the next task's entry
	default:
		m.Fault("unimplemented opcode %s", in.Op)
	}
	m.Regs.PC = next
	// Timer-driven automatic checkpoints.
	if m.autoCpCycles > 0 && !m.CpDisabled() && m.sinceCp >= m.autoCpCycles && !m.halted {
		if err := m.rt.Checkpoint(m, CpTimer); err != nil {
			return err
		}
	}
	// Armed data-expiration deadline (exception-based @expires/catch).
	if m.ExpiryArmed && m.clock.Now() >= m.ExpiryDeadline {
		m.ExpiryArmed = false
		m.EmitEvent(obs.EvExpiry, m.ExpiryDeadline, 0)
		m.PushCat(obs.CatRestore)
		if err := m.rt.OnExpiry(m); err != nil {
			return err
		}
		m.PopCat()
		m.resetRecStack() // TICS restored to the block-entry checkpoint
	}
	// ISR return: the Leave above brought PC/SP back to the interrupted
	// point.
	if m.inISR && m.Regs.PC == m.isrRetPC && m.Regs.SP == m.isrRetSP {
		m.inISR = false
		m.EmitEvent(obs.EvISRExit, m.irqCount, 0)
		if err := m.rt.OnInterruptReturn(m); err != nil {
			return err
		}
	}
	// Periodic timer interrupt. Delivery waits out ISRs already running
	// and atomic time-annotation regions (the runtime masks interrupts
	// there, as real TICS must to keep the blocks' restore semantics).
	if m.irqPeriodMs > 0 && m.onMs >= m.nextIrqMs && !m.inISR && !m.CpDisabled() && !m.halted {
		m.nextIrqMs = m.onMs + m.irqPeriodMs
		m.inISR = true
		m.isrRetPC = m.Regs.PC
		m.isrRetSP = m.Regs.SP
		m.irqCount++
		m.EmitEvent(obs.EvISREnter, m.irqCount, 0)
		if err := m.rt.OnInterrupt(m, m.irqEntry); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) alu(op isa.Op, l, r uint32) uint32 {
	li, ri := int32(l), int32(r)
	b := func(v bool) uint32 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case isa.Add:
		return l + r
	case isa.Sub:
		return l - r
	case isa.Mul:
		return l * r
	case isa.Div:
		if r == 0 {
			m.Fault("division by zero")
		}
		return uint32(li / ri)
	case isa.Mod:
		if r == 0 {
			m.Fault("modulo by zero")
		}
		return uint32(li % ri)
	case isa.And:
		return l & r
	case isa.Or:
		return l | r
	case isa.Xor:
		return l ^ r
	case isa.Shl:
		return l << (r & 31)
	case isa.Shr:
		return l >> (r & 31)
	case isa.CmpEq:
		return b(l == r)
	case isa.CmpNe:
		return b(l != r)
	case isa.CmpLt:
		return b(li < ri)
	case isa.CmpLe:
		return b(li <= ri)
	case isa.CmpGt:
		return b(li > ri)
	case isa.CmpGe:
		return b(li >= ri)
	case isa.CmpLtU:
		return b(l < r)
	case isa.CmpLeU:
		return b(l <= r)
	case isa.CmpGtU:
		return b(l > r)
	case isa.CmpGeU:
		return b(l >= r)
	}
	m.Fault("not an ALU op: %s", op)
	return 0
}

func (m *Machine) result(completed, starved bool, fault error) Result {
	m.CommitObservables() // end of run: trailing output is committed
	res := Result{
		Completed:    completed,
		Starved:      starved,
		TimedOut:     m.timedOut,
		Fault:        fault,
		Cycles:       m.cycles,
		OnMs:         m.onMs,
		OffMs:        m.offMs,
		Failures:     m.failures,
		Restores:     m.restores,
		Interrupts:   m.irqCount,
		Checkpoints:  map[string]int64{},
		RuntimeStats: m.rt.Stats(),
		SendLog:      m.SendLog,
		OutLog:       m.OutLog,
		MemStats:     m.Mem.Stats(),
	}
	for k := CpKind(0); k < cpKindCount; k++ {
		if m.cpCounts[k] > 0 {
			res.Checkpoints[k.String()] = m.cpCounts[k]
		}
		res.TotalCheckpoints += m.cpCounts[k]
	}
	for i := 0; i < m.Img.MarkCount; i++ {
		res.MarkCounts = append(res.MarkCounts, int64(m.Mem.ReadInt(m.Img.MarkBase+uint32(4*i))))
	}
	return res
}

// ReadGlobal reads a named global's word value (test/experiment helper).
func (m *Machine) ReadGlobal(name string) (int32, error) {
	addr, ok := m.Img.GlobalAddr(name)
	if !ok {
		return 0, fmt.Errorf("vm: no global %q", name)
	}
	return m.Mem.ReadInt(addr), nil
}
