package vm

import "repro/internal/obs"

// Plain is the unprotected runtime: a conventional C runtime with no
// intermittency support. Under continuous power it is the correctness
// oracle every protected runtime is compared against. Under intermittent
// power it restarts main() from scratch at every reboot while non-volatile
// globals keep their last (possibly half-updated) values — the legacy-code
// failure mode that motivates the paper.
type Plain struct {
	reg *obs.Registry
}

// NewPlain returns a fresh plain runtime.
func NewPlain() *Plain { return &Plain{reg: obs.NewRegistry()} }

// Name implements Runtime.
func (p *Plain) Name() string { return "plain" }

// Boot implements Runtime: every boot — cold or not — starts over at the
// entry stub with an empty stack.
func (p *Plain) Boot(m *Machine, cold bool) error {
	if !cold {
		p.reg.Inc("restarts")
	}
	m.Regs = Registers{
		PC: m.Img.EntryPC,
		SP: m.Img.StackBase + m.Img.StackLen,
		FP: m.Img.StackBase + m.Img.StackLen,
	}
	return nil
}

// Enter implements Runtime: a conventional prologue with an overflow check.
func (p *Plain) Enter(m *Machine, fn int) error {
	meta, err := m.Img.FuncAt(fn)
	if err != nil {
		return err
	}
	if m.Regs.SP < m.Img.StackBase+uint32(meta.FrameBytes) {
		m.Fault("stack overflow entering %s", meta.Name)
	}
	m.Push(m.Regs.FP)
	m.Regs.FP = m.Regs.SP
	m.Regs.SP -= uint32(meta.LocalBytes)
	return nil
}

// Leave implements Runtime: epilogue plus return.
func (p *Plain) Leave(m *Machine) error {
	m.Regs.SP = m.Regs.FP
	m.Regs.FP = m.Pop()
	m.Regs.PC = m.Pop()
	return nil
}

// PreStore implements Runtime as a no-op: plain code has no log to fill.
func (p *Plain) PreStore(m *Machine) error { return nil }

// LoggedStore implements Runtime: no consistency discipline, just a store.
func (p *Plain) LoggedStore(m *Machine, addr uint32, size int, value uint32) error {
	m.RawStore(addr, size, value)
	return nil
}

// Checkpoint implements Runtime as a no-op: plain code has no checkpoints.
func (p *Plain) Checkpoint(m *Machine, kind CpKind) error { return nil }

// OnExpiry implements Runtime as a no-op: exception-based data expiration
// needs TICS's restore-to-block-entry machinery; a conventional runtime
// cannot unwind to the catch handler mid-call, so the expiration goes
// unhandled (the phenomenon the paper says no checkpointing system had
// addressed). The @expires entry check still routes stale data to catch.
func (p *Plain) OnExpiry(m *Machine) error { return nil }

// Transition implements Runtime: plain code has no task engine.
func (p *Plain) Transition(m *Machine, task int32) error {
	m.Fault("transition_to(%d) without a task runtime", task)
	return nil
}

// OnInterrupt implements Runtime: a plain call-like transfer into the ISR.
func (p *Plain) OnInterrupt(m *Machine, isrEntry uint32) error {
	m.Push(m.Regs.PC)
	m.Regs.PC = isrEntry
	return nil
}

// OnInterruptReturn implements Runtime as a no-op.
func (p *Plain) OnInterruptReturn(m *Machine) error { return nil }

// Stats implements Runtime. The returned map is a defensive snapshot:
// mutating it cannot corrupt the live counters.
func (p *Plain) Stats() map[string]int64 { return p.reg.CounterSnapshot() }
