package vm_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/vm"
)

func build(t *testing.T, src string) *link.Image {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestFaultDivideByZero(t *testing.T) {
	img := build(t, `int z; int main() { out(0, 5 / z); return 0; }`)
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := m.Run()
	if runErr == nil || res.Fault == nil || !strings.Contains(res.Fault.Error(), "division by zero") {
		t.Fatalf("expected divide fault, got %v / %+v", runErr, res)
	}
}

func TestFaultWildStore(t *testing.T) {
	img := build(t, `
int main() {
    int *p;
    p = 0;
    *p = 1;
    return 0;
}`)
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := m.Run()
	if runErr == nil || res.Fault == nil || !strings.Contains(res.Fault.Error(), "wild store") {
		t.Fatalf("expected wild-store fault, got %v / %+v", runErr, res)
	}
}

func TestFaultStackOverflow(t *testing.T) {
	img := build(t, `
int rec(int n) { int pad[32]; pad[0] = n; return rec(n + 1) + pad[0]; }
int main() { return rec(0); }`)
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := m.Run()
	if runErr == nil || res.Fault == nil || !strings.Contains(res.Fault.Error(), "stack overflow") {
		t.Fatalf("expected overflow fault, got %v / %+v", runErr, res)
	}
}

func TestPlainRestartsFromMain(t *testing.T) {
	// A plain program under intermittent power restarts main() but keeps
	// its non-volatile globals: the counter keeps growing across reboots
	// even though the loop index restarts.
	img := build(t, `
int count;
int main() {
    int i;
    for (i = 0; i < 1000000; i++) {
        count++;
    }
    out(0, count);
    return 0;
}`)
	m, err := vm.New(vm.Config{
		Image:       img,
		Power:       &power.FailEvery{Cycles: 20_000, OffMs: 1},
		MaxCycles:   2_000_000,
		MaxFailures: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("plain program should never finish under these windows")
	}
	count, err := m.ReadGlobal("count")
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("non-volatile counter lost across reboots")
	}
	if res.Failures == 0 {
		t.Fatal("no failures recorded")
	}
}

func TestWallClockBudget(t *testing.T) {
	img := build(t, `int main() { while (1) { } return 0; }`)
	m, err := vm.New(vm.Config{Image: img, MaxWallMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Completed {
		t.Fatalf("expected timeout, got %+v", res)
	}
	if res.WallMs() < 50 {
		t.Fatalf("wall clock %f < budget", res.WallMs())
	}
}

func TestSendAndMarkLogs(t *testing.T) {
	img := build(t, `
int main() {
    mark(0);
    mark(0);
    mark(2);
    send(7);
    out(1, 9);
    return 0;
}`)
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MarkCounts) != 3 || res.MarkCounts[0] != 2 || res.MarkCounts[1] != 0 || res.MarkCounts[2] != 1 {
		t.Fatalf("marks: %v", res.MarkCounts)
	}
	if len(res.SendLog) != 1 || res.SendLog[0].Value != 7 {
		t.Fatalf("send: %+v", res.SendLog)
	}
	if res.OutLog[1][0] != 9 {
		t.Fatalf("out: %v", res.OutLog)
	}
	if res.Cycles <= 0 || res.OnMs <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
}

func TestObserverHooks(t *testing.T) {
	img := build(t, `
int g;
int main() { g = 5; mark(0); return 0; }`)
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	var stores, marks int
	m.OnStore = func(addr uint32, size int, val uint32, ms int64) { stores++ }
	m.OnMark = func(id int32, ms int64) { marks++ }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if stores == 0 || marks != 1 {
		t.Fatalf("hooks: stores=%d marks=%d", stores, marks)
	}
}
