package vm_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/vm"
)

// sendySrc transmits one packet per loop iteration — each send sits inside
// the failure-prone region between checkpoints.
const sendySrc = `
int main() {
    int i;
    for (i = 0; i < 12; i++) {
        send(100 + i);
    }
    return 0;
}
`

func runSendy(t *testing.T, virtualize bool, cpMs float64, p power.Source) []vm.SendRec {
	t.Helper()
	prog, err := cc.Compile(sendySrc, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instrument.Apply(prog, instrument.ForTICS()); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{StackBytes: 2048}
	img, err := link.Link(prog, core.Spec(cfg, prog.MinSegmentBytes()))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{
		Image: img, Runtime: rt, Power: p,
		AutoCpPeriodMs:  cpMs,
		VirtualizeSends: virtualize,
		MaxCycles:       200_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || !res.Completed {
		t.Fatalf("run: %v %+v", err, res)
	}
	return res.SendLog
}

// TestRawRadioDuplicatesUnderFailures documents the phenomenon the paper
// defers to future work: a send replayed after a rollback leaves the
// device twice.
func TestRawRadioDuplicatesUnderFailures(t *testing.T) {
	duplicated := false
	// A 5 ms checkpoint period lets two sends leave the radio between
	// commits, so a failure in between replays one of them.
	for _, k := range []int64{6500, 7300, 8100, 9000} {
		log := runSendy(t, false, 5, &power.FailEvery{Cycles: k, OffMs: 2})
		if len(log) > 12 {
			duplicated = true
		}
		if len(log) < 12 {
			t.Fatalf("k=%d: raw radio lost packets: %d", k, len(log))
		}
	}
	if !duplicated {
		t.Fatal("no duplicate transmissions across the sweep; the raw-radio phenomenon vanished")
	}
}

// TestSendSequenceNumbers pins the sequencing contract the fleet
// gateway's dedup depends on: a send replayed after a rollback reuses
// its committed sequence number (same seq ⇒ same logical packet), so
// the raw radio's at-least-once stream still names each packet uniquely.
func TestSendSequenceNumbers(t *testing.T) {
	replayed := false
	for _, k := range []int64{6500, 7300, 8100, 9000} {
		log := runSendy(t, false, 5, &power.FailEvery{Cycles: k, OffMs: 2})
		bySeq := map[int64]int32{}
		for _, rec := range log {
			if v, dup := bySeq[rec.Seq]; dup {
				replayed = true
				if v != rec.Value {
					t.Fatalf("k=%d: seq %d names values %d and %d", k, rec.Seq, v, rec.Value)
				}
				continue
			}
			bySeq[rec.Seq] = rec.Value
		}
		if len(bySeq) != 12 {
			t.Fatalf("k=%d: %d distinct seqs, want 12", k, len(bySeq))
		}
		for seq, v := range bySeq {
			if v != int32(100+seq) {
				t.Fatalf("k=%d: seq %d carries value %d, want %d", k, seq, v, 100+seq)
			}
		}
	}
	if !replayed {
		t.Fatal("no replayed send across the sweep; the seq-reuse path went unexercised")
	}
}

// TestVirtualizedSendSequenceNumbers: virtualized sends are released
// only at commit points, so every packet leaves once with a strictly
// increasing sequence.
func TestVirtualizedSendSequenceNumbers(t *testing.T) {
	for k := int64(3300); k <= 6500; k += 457 {
		log := runSendy(t, true, 1, &power.FailEvery{Cycles: k, OffMs: 2})
		for i, rec := range log {
			if rec.Seq != int64(i) {
				t.Fatalf("k=%d: packet %d has seq %d", k, i, rec.Seq)
			}
		}
	}
}

// TestVirtualizedSendsAreExactlyOnce: with the I/O virtualization
// extension, every failure sweep yields exactly the oracle's packet
// sequence — no duplicates, no losses.
func TestVirtualizedSendsAreExactlyOnce(t *testing.T) {
	oracle := runSendy(t, true, 1, power.Continuous{})
	if len(oracle) != 12 {
		t.Fatalf("oracle: %d packets", len(oracle))
	}
	for k := int64(3300); k <= 6500; k += 157 {
		log := runSendy(t, true, 1, &power.FailEvery{Cycles: k, OffMs: 2})
		if len(log) != 12 {
			t.Fatalf("k=%d: %d packets, want 12", k, len(log))
		}
		for i, rec := range log {
			if rec.Value != int32(100+i) {
				t.Fatalf("k=%d: packet %d = %d, want %d", k, i, rec.Value, 100+i)
			}
		}
	}
}
