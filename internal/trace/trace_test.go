package trace_test

import (
	"testing"

	tics "repro"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/vm"
)

// A compact sampling program with one annotated slot: fresh on continuous
// power, stale when a long outage splits sampling from consumption.
const src = `
@expires_after=100 int data[4];
int sink;

int main() {
    int i;
    int j;
    for (j = 0; j < 5; j++) {
        for (i = 0; i < 4; i++) {
            data[i] @= sense(4);
        }
        @expires(data[0]) {
            sink = data[0] + data[1] + data[2] + data[3];
            mark(0);
        } catch {
            mark(1);
        }
    }
    out(0, sink);
    return 0;
}
`

func runWithDetector(t *testing.T, p power.Source) *trace.Detector {
	t.Helper()
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{Power: p, AutoCpPeriodMs: 5, MaxCycles: 500_000_000})
	if err != nil {
		t.Fatal(err)
	}
	det, err := trace.Attach(m, img.Image, trace.Config{
		Pairs:       []trace.Pair{{DataName: "data"}},
		ConsumeMark: 0,
		FreshnessMs: 100,
		AlignMs:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || !res.Completed {
		t.Fatalf("run: %v %+v", err, res)
	}
	det.Finish()
	return det
}

func TestCleanRunHasNoViolations(t *testing.T) {
	det := runWithDetector(t, power.Continuous{})
	if det.Misalign.Observed != 0 || det.Expired.Observed != 0 {
		t.Fatalf("violations on continuous power: %+v %+v", det.Misalign, det.Expired)
	}
	if det.Misalign.Potential != 20 || det.Expired.Potential != 20 {
		t.Fatalf("potentials: %+v %+v (want 20 committed samples)", det.Misalign, det.Expired)
	}
}

func TestTICSStaysCleanUnderFailures(t *testing.T) {
	det := runWithDetector(t, &power.FailEvery{Cycles: 4000, OffMs: 150})
	if det.Misalign.Observed != 0 || det.Expired.Observed != 0 {
		t.Fatalf("TICS produced violations: %+v %+v", det.Misalign, det.Expired)
	}
}

// TestRebootMidWindowDiscardsPending pins the detector's pending/commit/
// discard semantics by driving the machine hooks directly: tallies
// observed between a checkpoint and a power failure belong to an
// execution the runtime rolled back, so the restore must discard them —
// otherwise replayed code double-counts and aborted consumes count as
// violations that never committed.
func TestRebootMidWindowDiscardsPending(t *testing.T) {
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det, err := trace.Attach(m, img.Image, trace.Config{
		Pairs:       []trace.Pair{{DataName: "data"}},
		ConsumeMark: 0,
		FreshnessMs: 100,
		AlignMs:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := img.Image.Program.Global("data")
	if !ok {
		t.Fatal("no data global")
	}
	addr := img.Image.GlobalsBase + g.Offset

	// A committed sample: store, then the checkpoint commits it.
	m.OnStore(addr, 4, 1, 0)
	m.OnCheckpoint(vm.CpManual)
	if det.Misalign.Potential != 1 {
		t.Fatalf("committed potential = %d, want 1", det.Misalign.Potential)
	}

	// Mid-window events: a store and a consume whose stale timestamp would
	// count as both misaligned and expired — but power fails before the
	// next checkpoint, so the restore discards all of it.
	m.OnStore(addr, 4, 2, 1000)
	m.OnMark(0, 5000)
	m.OnRestore()
	det.Finish()
	if det.Misalign.Potential != 1 || det.Misalign.Observed != 0 || det.Expired.Observed != 0 {
		t.Fatalf("discarded window leaked into committed counts: %+v %+v", det.Misalign, det.Expired)
	}

	// The replayed window reaches a checkpoint this time: now it counts.
	m.OnStore(addr, 4, 2, 1000)
	m.OnMark(0, 5000)
	m.OnCheckpoint(vm.CpManual)
	if det.Misalign.Observed == 0 || det.Expired.Observed == 0 {
		t.Fatalf("committed window not counted: %+v %+v", det.Misalign, det.Expired)
	}
	if det.Misalign.Potential != 2 {
		t.Fatalf("potential = %d, want 2 (no double-count from the replay)", det.Misalign.Potential)
	}
}

func TestAttachErrors(t *testing.T) {
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Attach(m, img.Image, trace.Config{Pairs: []trace.Pair{{DataName: "nope"}}}); err == nil {
		t.Fatal("unknown global accepted")
	}
	if _, err := trace.Attach(m, img.Image, trace.Config{Pairs: []trace.Pair{{DataName: "sink"}}}); err == nil {
		t.Fatal("non-annotated global without TSName accepted")
	}
}

func TestDualBranchCounting(t *testing.T) {
	dualSrc := `
int A[4];
int B[4];
int main() {
    A[0] = 1;
    B[0] = 1; // dual evidence for decision 0
    A[1] = 1; // single evidence for decision 1
    out(0, 0);
    return 0;
}
`
	img, err := tics.Build(dualSrc, tics.BuildOptions{Runtime: tics.RTPlain})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	c, err := trace.CountDualBranches(m, img.Image, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if c.Potential != 2 || c.Observed != 1 {
		t.Fatalf("dual branches: %+v", c)
	}
}
