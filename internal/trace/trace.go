// Package trace implements the time-consistency violation detectors
// behind Table 2. It watches a machine's program-order stores and mark
// events and classifies the three violation types of Figure 3:
//
//   - Time/data misalignment (3c): at consume time, a sensor element's
//     stored timestamp differs from the device time of its actual store
//     by more than a threshold — the timestamp and the data were split by
//     a reboot.
//   - Data expiration (3d): at consume time, an element is older than the
//     application's freshness window.
//   - Timely branching (3b): both arms of a time-predicated branch left
//     committed evidence for the same decision instance (read from the
//     final memory with CountDualBranches).
//
// Detection is host-side and non-invasive: it never perturbs the device's
// cycle accounting.
package trace

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/vm"
)

// Pair binds a sensor-data global to its timestamp store.
type Pair struct {
	// DataName is the global holding sensed values.
	DataName string
	// TSName is the global holding hand-written timestamps; empty means
	// the data global is @expires_after-annotated and the compiler's
	// shadow slots are used.
	TSName string
}

// Config declares what to watch.
type Config struct {
	Pairs       []Pair
	ConsumeMark int32 // mark id emitted when the data is consumed
	FreshnessMs int64 // application freshness window (expiration)
	AlignMs     int64 // tolerated timestamp/data skew (misalignment)
}

// Counts holds one violation class's tally.
type Counts struct {
	Potential int64
	Observed  int64
}

// Detector is attached to one machine run.
type Detector struct {
	cfg Config
	m   *vm.Machine

	ranges []pairRange

	lastStore map[uint32]int64 // data element address → device ms of last store

	// Committed tallies. Events observed between checkpoints are pending:
	// a checkpoint commits them, a restore discards them (the runtime
	// rolled the corresponding execution back), so replayed code does not
	// double-count and aborted consumes do not count at all.
	Misalign Counts
	Expired  Counts

	pending struct {
		misalignPot, misalignObs int64
		expiredPot, expiredObs   int64
	}
}

type pairRange struct {
	dataBase uint32
	tsBase   uint32
	elemSize int
	count    int
}

// Attach wires a detector to a machine built from img. It must be called
// before Run.
func Attach(m *vm.Machine, img *link.Image, cfg Config) (*Detector, error) {
	d := &Detector{cfg: cfg, m: m, lastStore: map[uint32]int64{}}
	for _, p := range cfg.Pairs {
		g, ok := img.Program.Global(p.DataName)
		if !ok {
			return nil, fmt.Errorf("trace: no global %q", p.DataName)
		}
		r := pairRange{
			dataBase: img.GlobalsBase + g.Offset,
			elemSize: g.ElemSize,
			count:    g.Size / g.ElemSize,
		}
		if p.TSName == "" {
			if g.ExpiresAfterMs < 0 {
				return nil, fmt.Errorf("trace: %q has no annotation and no TSName", p.DataName)
			}
			r.tsBase = img.GlobalsBase + g.TSOffset
		} else {
			ts, ok := img.Program.Global(p.TSName)
			if !ok {
				return nil, fmt.Errorf("trace: no timestamp global %q", p.TSName)
			}
			if ts.Size/ts.ElemSize < r.count {
				return nil, fmt.Errorf("trace: %q has %d slots for %d elements", p.TSName, ts.Size/ts.ElemSize, r.count)
			}
			r.tsBase = img.GlobalsBase + ts.Offset
		}
		d.ranges = append(d.ranges, r)
	}
	m.OnStore = d.onStore
	m.OnMark = d.onMark
	m.OnCheckpoint = func(vm.CpKind) { d.commit() }
	m.OnRestore = d.discard
	return d, nil
}

// commit moves pending tallies into the committed counts.
func (d *Detector) commit() {
	d.Misalign.Potential += d.pending.misalignPot
	d.Misalign.Observed += d.pending.misalignObs
	d.Expired.Potential += d.pending.expiredPot
	d.Expired.Observed += d.pending.expiredObs
	d.pending.misalignPot, d.pending.misalignObs = 0, 0
	d.pending.expiredPot, d.pending.expiredObs = 0, 0
}

// discard drops pending tallies: the runtime rolled that execution back.
func (d *Detector) discard() {
	d.pending.misalignPot, d.pending.misalignObs = 0, 0
	d.pending.expiredPot, d.pending.expiredObs = 0, 0
}

// Finish commits trailing events (call after the run completes).
func (d *Detector) Finish() { d.commit() }

func (d *Detector) onStore(addr uint32, size int, val uint32, deviceMs int64) {
	for _, r := range d.ranges {
		end := r.dataBase + uint32(r.elemSize*r.count)
		if addr >= r.dataBase && addr < end {
			elem := (addr - r.dataBase) / uint32(r.elemSize)
			d.lastStore[r.dataBase+elem*uint32(r.elemSize)] = deviceMs
			// Every sample is a potential misalignment and a potential
			// expiration (the paper's "potential count").
			d.pending.misalignPot++
			d.pending.expiredPot++
			return
		}
	}
}

func (d *Detector) onMark(id int32, deviceMs int64) {
	if id != d.cfg.ConsumeMark {
		return
	}
	for _, r := range d.ranges {
		for e := 0; e < r.count; e++ {
			dataAddr := r.dataBase + uint32(e*r.elemSize)
			stored, ok := d.lastStore[dataAddr]
			if !ok {
				continue
			}
			ts := int64(d.m.Mem.ReadInt(r.tsBase + uint32(4*e)))
			if abs64(ts-stored) > d.cfg.AlignMs {
				d.pending.misalignObs++
			}
			if d.cfg.FreshnessMs > 0 && deviceMs-ts > d.cfg.FreshnessMs {
				d.pending.expiredObs++
			}
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// CountDualBranches scans the final memory for timely-branch evidence:
// two int arrays written at the end of the two arms of a time-predicated
// branch. A decision instance that committed evidence in both arms is a
// violation; an instance with any evidence is a potential (a decision that
// actually ran).
func CountDualBranches(m *vm.Machine, img *link.Image, aName, bName string) (Counts, error) {
	ga, ok := img.Program.Global(aName)
	if !ok {
		return Counts{}, fmt.Errorf("trace: no global %q", aName)
	}
	gb, ok := img.Program.Global(bName)
	if !ok {
		return Counts{}, fmt.Errorf("trace: no global %q", bName)
	}
	n := ga.Size / ga.ElemSize
	if bn := gb.Size / gb.ElemSize; bn < n {
		n = bn
	}
	var c Counts
	for i := 0; i < n; i++ {
		a := m.Mem.ReadInt(img.GlobalsBase + ga.Offset + uint32(4*i))
		b := m.Mem.ReadInt(img.GlobalsBase + gb.Offset + uint32(4*i))
		if a != 0 || b != 0 {
			c.Potential++
		}
		if a != 0 && b != 0 {
			c.Observed++
		}
	}
	return c, nil
}
