package link_test

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/mem"
)

const src = `
int init = 42;
int zeroed[4];
char msg[3] = {72, 73};

int main() {
    mark(0);
    mark(1);
    return init + zeroed[0] + msg[0];
}
`

func TestLayoutInvariants(t *testing.T) {
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "x", RuntimeBytes: 64, StackBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Region ordering: runtime < text < globals < stack, no overlap.
	if !(img.RuntimeBase < img.TextBase && img.TextBase < img.GlobalsBase &&
		img.GlobalsBase <= img.BSSBase && img.BSSBase <= img.MarkBase &&
		img.MarkBase < img.StackBase) {
		t.Fatalf("layout out of order: %+v", img)
	}
	if img.MarkCount != 2 {
		t.Fatalf("mark count %d", img.MarkCount)
	}
	// Every symbol lands in the globals area.
	for name, addr := range img.Symbols {
		if addr < img.GlobalsBase || addr >= img.StackBase {
			t.Fatalf("symbol %s at %#x outside globals", name, addr)
		}
	}
	// Loading registers regions without overlap and places the data image.
	m := mem.New()
	if err := img.LoadInto(m); err != nil {
		t.Fatal(err)
	}
	a, _ := img.GlobalAddr("init")
	if m.ReadInt(a) != 42 {
		t.Fatalf("init value: %d", m.ReadInt(a))
	}
	a, _ = img.GlobalAddr("msg")
	if m.ReadByteAt(a) != 72 || m.ReadByteAt(a+1) != 73 || m.ReadByteAt(a+2) != 0 {
		t.Fatal("char array image wrong")
	}
	a, _ = img.GlobalAddr("zeroed")
	if m.ReadInt(a) != 0 {
		t.Fatal("bss not zero")
	}
}

func TestFuncMetadata(t *testing.T) {
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "x", RuntimeBytes: 64, StackBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := img.FuncAt(0)
	if err != nil || meta.Name != "main" {
		t.Fatalf("FuncAt: %+v %v", meta, err)
	}
	if meta.FrameBytes < 4 || meta.EntryCopyBytes < 4 {
		t.Fatalf("frame accounting: %+v", meta)
	}
	if _, err := img.FuncAt(99); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestImageTooBig(t *testing.T) {
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.Link(prog, link.RuntimeSpec{Name: "x", RuntimeBytes: 60_000, StackBytes: 8192}); err == nil {
		t.Fatal("oversized image linked")
	}
}

func TestSectionsAccounting(t *testing.T) {
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{
		Name: "x", RuntimeBytes: 64, StackBytes: 1024,
		ExtraTextBytes: 1000, ExtraDataBytes: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if img.Sect.Text <= 1000 || img.Sect.Data < 500 || img.Sect.BSS <= 0 {
		t.Fatalf("sections: %+v", img.Sect)
	}
}
