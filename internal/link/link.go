// Package link lays out a compiled TICS-C program in the 64 KB address
// space of the simulated device and resolves relocations. The layout
// mirrors an MSP430FR59xx firmware image: a small reserved vector area, a
// runtime-private persistent area (checkpoint buffers, undo log), .text,
// .data, .bss, and the stack region (for TICS: the segment array).
package link

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/mem"
)

// RuntimeSpec tells the linker how much space the chosen runtime needs.
// ExtraTextBytes/ExtraDataBytes model the runtime library's own footprint
// for the Table 3 memory accounting (our runtimes execute host-side, so
// their code size is charged as a calibrated constant rather than
// measured).
type RuntimeSpec struct {
	Name           string
	RuntimeBytes   int // runtime-private NV area (checkpoint buffers, logs)
	StackBytes     int // stack region / segment array size
	ExtraTextBytes int // modeled runtime code footprint
	ExtraDataBytes int // modeled runtime static data footprint
}

// FuncMeta is the per-function metadata the VM and runtimes need.
type FuncMeta struct {
	Name           string
	Entry          uint32 // absolute address of the Enter instruction
	NArgs          int
	StackArgWords  int
	LocalBytes     int
	MaxEvalWords   int
	FrameBytes     int // saved FP + locals + worst-case operand stack
	EntryCopyBytes int // return PC + stack arguments moved on a grow
	Recursive      bool
}

// Sections reports section sizes for the memory-overhead experiments.
type Sections struct {
	Text int // program code + modeled runtime code
	Data int // initialized globals + modeled runtime statics
	BSS  int // zero-initialized globals, timestamp slots, mark counters
}

// Image is a linked, loadable firmware image.
type Image struct {
	Program *cc.Program
	Spec    RuntimeSpec

	Text     []byte
	TextBase uint32
	EntryPC  uint32 // boot entry (the call-main stub)

	GlobalsBase uint32 // base of .data (the globals space)
	BSSBase     uint32
	MarkBase    uint32 // base of the mark counter array
	MarkCount   int

	RuntimeBase uint32
	RuntimeLen  uint32
	StackBase   uint32
	StackLen    uint32

	Funcs   []FuncMeta
	Symbols map[string]uint32 // global name → absolute address

	Sect Sections
}

const reservedBytes = 0x100

func align4(n uint32) uint32 { return (n + 3) &^ 3 }

// Link lays out and relocates a program for the given runtime spec.
func Link(prog *cc.Program, spec RuntimeSpec) (*Image, error) {
	if spec.StackBytes <= 0 {
		spec.StackBytes = 2048
	}
	if spec.RuntimeBytes < 16 {
		spec.RuntimeBytes = 16
	}
	img := &Image{Program: prog, Spec: spec, Symbols: map[string]uint32{}}

	img.RuntimeBase = reservedBytes
	img.RuntimeLen = align4(uint32(spec.RuntimeBytes))
	img.TextBase = img.RuntimeBase + img.RuntimeLen

	// Function entry addresses.
	entries := make([]uint32, len(prog.Funcs))
	off := uint32(cc.EntryStubSize)
	for i, f := range prog.Funcs {
		entries[i] = img.TextBase + off
		for _, in := range f.Code {
			off += uint32(in.Size())
		}
	}
	textLen := off

	img.GlobalsBase = align4(img.TextBase + textLen)
	img.BSSBase = img.GlobalsBase + prog.DataBytes
	img.MarkBase = img.GlobalsBase + prog.GlobalsBytes()
	img.MarkCount = prog.MarkCount
	bssTotal := prog.BSSBytes + uint32(4*prog.MarkCount)

	img.StackBase = align4(img.GlobalsBase + prog.DataBytes + bssTotal)
	img.StackLen = align4(uint32(spec.StackBytes))
	if end := uint64(img.StackBase) + uint64(img.StackLen); end > mem.Size {
		return nil, fmt.Errorf("link: image does not fit: stack ends at %#x (>%#x)", end, mem.Size)
	}

	// Relocate and encode.
	stub := []isa.Instr{
		{Op: isa.Call, Imm: int32(entries[prog.MainIndex])},
		{Op: isa.Halt},
	}
	text := isa.EncodeAll(stub)
	if len(text) != cc.EntryStubSize {
		return nil, fmt.Errorf("link: entry stub is %d bytes, expected %d", len(text), cc.EntryStubSize)
	}
	for i, f := range prog.Funcs {
		code := make([]isa.Instr, len(f.Code))
		copy(code, f.Code)
		for _, r := range f.Relocs {
			in := &code[r.Instr]
			switch r.Kind {
			case cc.RelocGlobal:
				in.Imm += int32(img.GlobalsBase)
			case cc.RelocFuncEntry:
				in.Imm = int32(entries[in.Imm])
			case cc.RelocBranch:
				in.Imm += int32(entries[i])
			default:
				return nil, fmt.Errorf("link: unknown relocation kind %d in %s", r.Kind, f.Name)
			}
		}
		text = append(text, isa.EncodeAll(code)...)
	}
	img.Text = text
	img.EntryPC = img.TextBase

	for _, f := range prog.Funcs {
		img.Funcs = append(img.Funcs, FuncMeta{
			Name:           f.Name,
			Entry:          entries[f.Index],
			NArgs:          f.NArgs,
			StackArgWords:  f.StackArgWords,
			LocalBytes:     f.LocalBytes,
			MaxEvalWords:   f.MaxEvalWords,
			FrameBytes:     f.FrameBytes(),
			EntryCopyBytes: f.EntryCopyBytes(),
			Recursive:      f.Recursive,
		})
	}
	for _, g := range prog.Globals {
		img.Symbols[g.Name] = img.GlobalsBase + g.Offset
	}

	img.Sect = Sections{
		Text: len(text) + spec.ExtraTextBytes,
		Data: int(prog.DataBytes) + spec.ExtraDataBytes,
		BSS:  int(bssTotal),
	}
	return img, nil
}

// LoadInto registers the image's regions on a memory and writes the text
// and data images. The runtime area, .bss, mark counters and stack are
// zeroed (a fresh device).
func (img *Image) LoadInto(m *mem.Memory) error {
	regions := []mem.Region{
		{Kind: mem.RegionReserved, Name: "reserved", Base: 0, Len: reservedBytes},
		{Kind: mem.RegionRuntime, Name: "runtime", Base: img.RuntimeBase, Len: img.RuntimeLen},
		{Kind: mem.RegionText, Name: ".text", Base: img.TextBase, Len: align4(uint32(len(img.Text)))},
		{Kind: mem.RegionStack, Name: "stack", Base: img.StackBase, Len: img.StackLen},
	}
	if dataLen := img.StackBase - img.GlobalsBase; dataLen > 0 {
		regions = append(regions,
			mem.Region{Kind: mem.RegionData, Name: ".data", Base: img.GlobalsBase, Len: dataLen})
	}
	for _, r := range regions {
		if err := m.AddRegion(r); err != nil {
			return err
		}
	}
	m.WriteBytes(img.TextBase, img.Text)
	if len(img.Program.DataImage) > 0 {
		m.WriteBytes(img.GlobalsBase, img.Program.DataImage)
	}
	m.ResetStats()
	return nil
}

// FuncAt returns the metadata for the function with the given index.
func (img *Image) FuncAt(idx int) (FuncMeta, error) {
	if idx < 0 || idx >= len(img.Funcs) {
		return FuncMeta{}, fmt.Errorf("link: function index %d out of range", idx)
	}
	return img.Funcs[idx], nil
}

// GlobalAddr returns the absolute address of a named global.
func (img *Image) GlobalAddr(name string) (uint32, bool) {
	a, ok := img.Symbols[name]
	return a, ok
}

// MinSegmentBytes returns the smallest legal TICS segment size for the
// image's program.
func (img *Image) MinSegmentBytes() int { return img.Program.MinSegmentBytes() }

// Disassemble renders the image's text section.
func (img *Image) Disassemble() (string, error) {
	labels := map[uint32]string{img.EntryPC: "_start"}
	for _, f := range img.Funcs {
		labels[f.Entry] = f.Name
	}
	return isa.Disassemble(img.Text, img.TextBase, labels)
}
