package chinchilla_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/baseline/chinchilla"
	"repro/internal/cc"
	"repro/internal/instrument"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/vm"
)

const src = `
int acc[8];
int mix(int a, int b) { int t = a * 3 + 1; int u = b ^ t; return u - a; }
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 8; i++) {
        acc[i] = mix(i, s);
        s += acc[i];
    }
    out(0, s);
    return 0;
}
`

func buildChin(t *testing.T) (*link.Image, chinchilla.Config) {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2, StaticLocals: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instrument.Apply(prog, instrument.ForChinchilla()); err != nil {
		t.Fatal(err)
	}
	cfg := chinchilla.Config{}
	img, err := link.Link(prog, chinchilla.Spec(cfg, prog))
	if err != nil {
		t.Fatal(err)
	}
	return img, cfg
}

func runChin(t *testing.T, img *link.Image, cfg chinchilla.Config, p power.Source) vm.Result {
	t.Helper()
	rt, err := chinchilla.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Image: img, Runtime: rt, Power: p, AutoCpPeriodMs: 2, MaxCycles: 300_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChinchillaFailureSweep(t *testing.T) {
	img, cfg := buildChin(t)
	oracle := runChin(t, img, cfg, power.Continuous{})
	if !oracle.Completed {
		t.Fatalf("oracle: %+v", oracle)
	}
	for k := int64(7000); k >= 2500; k -= 77 {
		res := runChin(t, img, cfg, &power.FailEvery{Cycles: k, OffMs: 2})
		if !res.Completed {
			t.Fatalf("k=%d: starved=%v failures=%d", k, res.Starved, res.Failures)
		}
		if !reflect.DeepEqual(res.OutLog, oracle.OutLog) {
			t.Fatalf("k=%d: %v != %v", k, res.OutLog, oracle.OutLog)
		}
	}
}

func TestChinchillaRequiresStaticLocals(t *testing.T) {
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, chinchilla.Spec(chinchilla.Config{}, prog))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chinchilla.New(img, chinchilla.Config{}); err == nil ||
		!strings.Contains(err.Error(), "static locals") {
		t.Fatalf("accepted a stack build: %v", err)
	}
}

func TestChinchillaSkipHeuristic(t *testing.T) {
	img, cfg := buildChin(t)
	res := runChin(t, img, cfg, power.Continuous{})
	rt := res.RuntimeStats
	if rt["skipped-triggers"] == 0 {
		t.Fatalf("skip heuristic never engaged: %v", rt)
	}
}
