// Package chinchilla implements the Chinchilla-style checkpointing
// baseline (§5.3.1): every local variable and parameter is promoted to a
// statically allocated global in non-volatile memory at compile time
// (cc.Options.StaticLocals — which is why recursion does not compile),
// every store to promoted or global data is logged into a static
// double-buffer log, and the program is over-instrumented with trigger
// checkpoints that a skip heuristic dynamically disables when the last
// checkpoint is recent.
//
// The static promotion is also the source of Chinchilla's memory blow-up
// in Table 3: the globals space carries every function's frame whether or
// not it is live, and the runtime double-buffers it all.
package chinchilla

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Config tunes the runtime.
type Config struct {
	// UndoCapBytes sizes the static write log (default 4096).
	UndoCapBytes int
	// MinGapCycles is the skip heuristic: trigger checkpoints are skipped
	// while the last checkpoint is more recent than this (default 4000).
	MinGapCycles int64
	// StackBytes sizes the (small) machine stack (default 1024: with
	// promoted locals the stack only holds return PCs and temporaries).
	StackBytes int
}

func (c Config) withDefaults() Config {
	if c.UndoCapBytes == 0 {
		c.UndoCapBytes = 4096
	}
	if c.MinGapCycles == 0 {
		c.MinGapCycles = 4000
	}
	if c.StackBytes == 0 {
		c.StackBytes = 1024
	}
	return c
}

// Modeled runtime footprint: Chinchilla's instrumentation-heavy runtime is
// roughly twice the TICS library (Table 3).
const (
	runtimeTextBytes = 5600
	runtimeDataBytes = 512
)

const (
	initMagic   = 0x4348494E // "CHIN"
	slotMetaLen = 6 * 4
	undoEntry   = 12
)

// Spec returns the linker spec. The modeled .data footprint carries the
// local-to-global explosion the paper describes: the promoted globals
// space is double-buffered wholesale, a swap buffer backs the two-phase
// commit, and every promoted variable needs dirty-tracking metadata —
// roughly 3.5× the (already inflated) globals space on top of the image.
func Spec(cfg Config, prog *cc.Program) link.RuntimeSpec {
	cfg = cfg.withDefaults()
	return link.RuntimeSpec{
		Name:           "chinchilla",
		RuntimeBytes:   16 + 2*(slotMetaLen+cfg.StackBytes) + cfg.UndoCapBytes,
		StackBytes:     cfg.StackBytes,
		ExtraTextBytes: runtimeTextBytes,
		ExtraDataBytes: runtimeDataBytes + 7*int(prog.GlobalsBytes())/2,
	}
}

// Chinchilla is the runtime.
type Chinchilla struct {
	cfg Config
	img *link.Image

	undoCap  int
	stackLen int

	addrMagic   uint32
	addrActive  uint32
	addrUndoHdr uint32
	addrSlot    [2]uint32
	addrUndo    uint32

	active  int
	epoch   uint32
	undoLen int
	reg     *obs.Registry
}

// New builds the runtime for an image linked with Spec. The image must
// have been compiled with cc.Options.StaticLocals.
func New(img *link.Image, cfg Config) (*Chinchilla, error) {
	cfg = cfg.withDefaults()
	if !img.Program.StaticLocals {
		return nil, fmt.Errorf("chinchilla: image was not compiled with static locals")
	}
	c := &Chinchilla{
		cfg:      cfg,
		img:      img,
		undoCap:  cfg.UndoCapBytes / undoEntry,
		stackLen: int(img.StackLen),
		reg:      obs.NewRegistry(),
	}
	a := img.RuntimeBase
	c.addrMagic = a
	c.addrActive = a + 4
	c.addrUndoHdr = a + 8
	a += 16
	c.addrSlot[0] = a
	a += uint32(slotMetaLen + c.stackLen)
	c.addrSlot[1] = a
	a += uint32(slotMetaLen + c.stackLen)
	c.addrUndo = a
	a += uint32(c.undoCap * undoEntry)
	if a > img.RuntimeBase+img.RuntimeLen {
		return nil, fmt.Errorf("chinchilla: runtime area too small: need %d B, have %d B",
			a-img.RuntimeBase, img.RuntimeLen)
	}
	return c, nil
}

// Name implements vm.Runtime.
func (c *Chinchilla) Name() string { return "chinchilla" }

// Stats implements vm.Runtime. The returned map is a defensive snapshot:
// mutating it cannot corrupt the live counters.
func (c *Chinchilla) Stats() map[string]int64 { return c.reg.CounterSnapshot() }

// Boot implements vm.Runtime.
func (c *Chinchilla) Boot(m *vm.Machine, cold bool) error {
	if cold || m.Mem.ReadWord(c.addrMagic) != initMagic {
		m.Spend(m.Cost.RestoreBase)
		m.Mem.WriteWord(c.addrActive, 0)
		m.Mem.WriteWord(c.addrUndoHdr, 0)
		c.active, c.epoch, c.undoLen = 0, 0, 0
		m.Regs = vm.Registers{
			PC: c.img.EntryPC,
			SP: c.img.StackBase + c.img.StackLen,
			FP: c.img.StackBase + c.img.StackLen,
		}
		if err := c.Checkpoint(m, vm.CpTimer); err != nil { // bypass the gap gate
			return err
		}
		m.Spend(m.Cost.NVWritePerWord)
		m.Mem.WriteWord(c.addrMagic, initMagic)
		return nil
	}
	return c.restore(m)
}

func (c *Chinchilla) restore(m *vm.Machine) error {
	m.Spend(m.Cost.RestoreBase)
	c.active = int(m.Mem.ReadWord(c.addrActive) & 1)
	slot := c.addrSlot[c.active]
	slotEpoch := m.Mem.ReadWord(slot + 20)
	hdr := m.Mem.ReadWord(c.addrUndoHdr)
	if hdr>>16 == slotEpoch&0xFFFF {
		n := int(hdr & 0xFFFF)
		if n > 0 {
			m.EmitEvent(obs.EvUndoRollback, int64(n), 0)
		}
		m.PushCat(obs.CatUndoLog)
		for i := n - 1; i >= 0; i-- {
			m.Spend(m.Cost.UndoRollback)
			e := c.addrUndo + uint32(i*undoEntry)
			addr := m.Mem.ReadWord(e)
			size := int(m.Mem.ReadWord(e + 4))
			old := m.Mem.ReadWord(e + 8)
			if size == 1 {
				m.Mem.WriteByteAt(addr, byte(old))
			} else {
				m.Mem.WriteWord(addr, old)
			}
			c.reg.Inc("undo-rollbacks")
		}
		m.PopCat()
	}
	m.Spend(m.Cost.NVWritePerWord)
	m.Mem.WriteWord(c.addrUndoHdr, (slotEpoch&0xFFFF)<<16)
	c.epoch = slotEpoch
	c.undoLen = 0

	sp := m.Mem.ReadWord(slot + 4)
	used := int(c.img.StackBase + c.img.StackLen - sp)
	for w := 0; w < (used+3)/4; w++ {
		m.Spend(m.Cost.NVReadPerWord + m.Cost.NVWritePerWord)
		m.Mem.WriteWord(sp+uint32(4*w), m.Mem.ReadWord(slot+uint32(slotMetaLen+4*w)))
	}
	m.Regs = vm.Registers{
		PC: m.Mem.ReadWord(slot + 0),
		SP: sp,
		FP: m.Mem.ReadWord(slot + 8),
		RV: m.Mem.ReadWord(slot + 12),
	}
	m.CpDisable = int(m.Mem.ReadWord(slot + 16))
	m.NoteRestore()
	c.reg.Inc("restores")
	return nil
}

// Checkpoint implements vm.Runtime: registers plus the (small) used stack,
// double-buffered; trigger checkpoints respect the skip heuristic.
func (c *Chinchilla) Checkpoint(m *vm.Machine, kind vm.CpKind) error {
	if kind == vm.CpManual && m.SinceCheckpoint() < c.cfg.MinGapCycles {
		c.reg.Inc("skipped-triggers")
		return nil
	}
	captured := slotMetaLen + int(c.img.StackBase+c.img.StackLen-m.Regs.SP)
	m.EmitEvent(obs.EvCheckpointBegin, int64(kind), int64(captured))
	m.ObserveMetric("undo_len_per_epoch", float64(c.undoLen))
	m.PushCat(obs.CatCheckpoint)
	m.Spend(m.Cost.CheckpointBase)
	target := 1 - c.active
	slot := c.addrSlot[target]
	newEpoch := c.epoch + 1
	m.Spend(6 * m.Cost.NVWritePerWord)
	m.Mem.WriteWord(slot+0, m.Regs.PC)
	m.Mem.WriteWord(slot+4, m.Regs.SP)
	m.Mem.WriteWord(slot+8, m.Regs.FP)
	m.Mem.WriteWord(slot+12, m.Regs.RV)
	m.Mem.WriteWord(slot+16, uint32(m.CpDisable))
	m.Mem.WriteWord(slot+20, newEpoch)
	used := int(c.img.StackBase + c.img.StackLen - m.Regs.SP)
	for w := 0; w < (used+3)/4; w++ {
		m.Spend(2 * (m.Cost.NVReadPerWord + m.Cost.NVWritePerWord))
		m.Mem.WriteWord(slot+uint32(slotMetaLen+4*w), m.Mem.ReadWord(m.Regs.SP+uint32(4*w)))
	}
	// Pre-charge the flag flip and undo-header reset so no failure point
	// sits between the durable commit and its bookkeeping (same atomic
	// tail as the TICS checkpoint; see core.TICS.Checkpoint).
	m.Spend(2 * m.Cost.NVWritePerWord)
	m.Mem.WriteWord(c.addrActive, uint32(target))
	c.active = target
	m.Mem.WriteWord(c.addrUndoHdr, (newEpoch&0xFFFF)<<16)
	c.epoch = newEpoch
	c.undoLen = 0
	m.PopCat()
	m.NoteCheckpoint(kind)
	c.reg.Inc("checkpoints")
	return nil
}

// PreStore implements vm.Runtime: force a checkpoint before the store when
// the log is full.
func (c *Chinchilla) PreStore(m *vm.Machine) error {
	if c.undoLen < c.undoCap {
		return nil
	}
	c.reg.Inc("forced-checkpoints")
	return c.Checkpoint(m, vm.CpTimer) // bypass the gap gate
}

// LoggedStore implements vm.Runtime: every instrumented store is logged —
// Chinchilla has no working-stack fast path, which is why its per-store
// overhead exceeds TICS's on stack-local traffic.
func (c *Chinchilla) LoggedStore(m *vm.Machine, addr uint32, size int, value uint32) error {
	if c.undoLen >= c.undoCap {
		m.Fault("chinchilla: write log overflow")
	}
	m.EmitEvent(obs.EvUndoAppend, int64(addr), int64(size))
	m.PushCat(obs.CatUndoLog)
	m.Spend(m.Cost.UndoLogEntry)
	var old uint32
	if size == 1 {
		old = uint32(m.Mem.ReadByteAt(addr))
	} else {
		old = m.Mem.ReadWord(addr)
	}
	e := c.addrUndo + uint32(c.undoLen*undoEntry)
	m.Mem.WriteWord(e, addr)
	m.Mem.WriteWord(e+4, uint32(size))
	m.Mem.WriteWord(e+8, old)
	c.undoLen++
	m.Mem.WriteWord(c.addrUndoHdr, (c.epoch&0xFFFF)<<16|uint32(c.undoLen))
	m.PopCat()
	m.RawStore(addr, size, value)
	c.reg.Inc("stores-logged")
	return nil
}

// Enter implements vm.Runtime: with promoted locals the frame is tiny.
func (c *Chinchilla) Enter(m *vm.Machine, fn int) error {
	meta, err := m.Img.FuncAt(fn)
	if err != nil {
		return err
	}
	if m.Regs.SP < m.Img.StackBase+uint32(meta.FrameBytes) {
		m.Fault("stack overflow entering %s", meta.Name)
	}
	m.Push(m.Regs.FP)
	m.Regs.FP = m.Regs.SP
	return nil
}

// Leave implements vm.Runtime.
func (c *Chinchilla) Leave(m *vm.Machine) error {
	m.Regs.SP = m.Regs.FP
	m.Regs.FP = m.Pop()
	m.Regs.PC = m.Pop()
	return nil
}

// OnExpiry implements vm.Runtime as a no-op: Chinchilla has no time
// semantics (Table 5); mid-block expirations go unhandled.
func (c *Chinchilla) OnExpiry(m *vm.Machine) error { return nil }

// OnInterrupt implements vm.Runtime: a plain call-like transfer.
func (c *Chinchilla) OnInterrupt(m *vm.Machine, isrEntry uint32) error {
	m.Push(m.Regs.PC)
	m.Regs.PC = isrEntry
	return nil
}

// OnInterruptReturn implements vm.Runtime as a no-op: only TICS gives
// ISRs exactly-once commit semantics (paper §4).
func (c *Chinchilla) OnInterruptReturn(m *vm.Machine) error { return nil }

// Transition implements vm.Runtime.
func (c *Chinchilla) Transition(m *vm.Machine, task int32) error {
	m.Fault("transition_to(%d): chinchilla is not a task runtime", task)
	return nil
}
