// Package mementos implements the naive checkpointing baseline the paper
// compares against (§5.3: "a naïve checkpoint-based system that logs the
// complete stack and all global variables, which closely resembles what
// MementOS does"). Checkpoints fire at compiler-inserted trigger points
// (loop back-edges and call sites, via instrument.ForMementos), optionally
// gated by a voltage proxy, and copy the registers, the *entire* used
// stack and *all* globals into a double-buffered area — correct, but with
// a checkpoint cost that grows with program state, which is exactly the
// starvation risk TICS bounds away.
//
// The VersionGlobals=false configuration reproduces the write-after-read
// memory inconsistency of Figure 3(a): globals are left out of the
// checkpoint, so non-volatile writes replayed after a restore double-apply.
package mementos

import (
	"fmt"

	"repro/internal/obs"

	"repro/internal/link"
	"repro/internal/vm"
)

// Config tunes the baseline.
type Config struct {
	// VoltageThresholdCycles gates trigger-point checkpoints: a checkpoint
	// is taken only when fewer than this many cycles remain in the power
	// window (the Mementos voltage check). Zero means "always checkpoint
	// at triggers".
	VoltageThresholdCycles int64
	// VersionGlobals includes all globals in the checkpoint (the correct,
	// expensive configuration). Disabling it demonstrates WAR violations.
	VersionGlobals bool
}

// DefaultConfig returns the correct-but-naive configuration.
func DefaultConfig() Config { return Config{VersionGlobals: true} }

// Modeled runtime footprint for Table 3-style accounting.
const (
	runtimeTextBytes = 1400
	runtimeDataBytes = 64
)

// Spec returns the linker spec. The runtime area must hold two full copies
// of the stack and (if versioned) the globals, which is why the paper calls
// the memory overhead of such systems high.
func Spec(cfg Config, globalsBytes, stackBytes int) link.RuntimeSpec {
	per := 32 + stackBytes
	if cfg.VersionGlobals {
		per += globalsBytes
	}
	return link.RuntimeSpec{
		Name:           "mementos",
		RuntimeBytes:   16 + 2*per,
		StackBytes:     stackBytes,
		ExtraTextBytes: runtimeTextBytes,
		ExtraDataBytes: runtimeDataBytes + 2*per,
	}
}

const (
	initMagic   = 0x4D454D4F // "MEMO"
	slotMetaLen = 6 * 4      // pc, sp, fp, rv, cpDisabled, pad
)

// Mementos is the runtime.
type Mementos struct {
	cfg Config
	img *link.Image

	globalsBase uint32
	globalsLen  int
	stackLen    int

	addrMagic  uint32
	addrActive uint32
	addrSlot   [2]uint32

	active int
	reg    *obs.Registry
}

// New builds the runtime for an image linked with Spec.
func New(img *link.Image, cfg Config) (*Mementos, error) {
	m := &Mementos{
		cfg:         cfg,
		img:         img,
		globalsBase: img.GlobalsBase,
		globalsLen:  int(img.StackBase - img.GlobalsBase),
		stackLen:    int(img.StackLen),
		reg:         obs.NewRegistry(),
	}
	per := uint32(slotMetaLen + m.stackLen)
	if cfg.VersionGlobals {
		per += uint32(m.globalsLen)
	}
	a := img.RuntimeBase
	m.addrMagic = a
	m.addrActive = a + 4
	m.addrSlot[0] = a + 16
	m.addrSlot[1] = a + 16 + per
	if need := 16 + 2*per; need > img.RuntimeLen {
		return nil, fmt.Errorf("mementos: runtime area too small: need %d B, have %d B (link with mementos.Spec)",
			need, img.RuntimeLen)
	}
	return m, nil
}

// Name implements vm.Runtime.
func (b *Mementos) Name() string { return "mementos" }

// Stats implements vm.Runtime. The returned map is a defensive snapshot:
// mutating it cannot corrupt the live counters.
func (b *Mementos) Stats() map[string]int64 { return b.reg.CounterSnapshot() }

// Boot implements vm.Runtime.
func (b *Mementos) Boot(m *vm.Machine, cold bool) error {
	if cold || m.Mem.ReadWord(b.addrMagic) != initMagic {
		m.Spend(m.Cost.RestoreBase)
		m.Regs = vm.Registers{
			PC: b.img.EntryPC,
			SP: b.img.StackBase + b.img.StackLen,
			FP: b.img.StackBase + b.img.StackLen,
		}
		if err := b.Checkpoint(m, vm.CpManual); err != nil {
			return err
		}
		m.Spend(m.Cost.NVWritePerWord)
		m.Mem.WriteWord(b.addrMagic, initMagic)
		return nil
	}
	return b.restore(m)
}

func (b *Mementos) restore(m *vm.Machine) error {
	m.Spend(m.Cost.RestoreBase)
	b.active = int(m.Mem.ReadWord(b.addrActive) & 1)
	slot := b.addrSlot[b.active]
	sp := m.Mem.ReadWord(slot + 4)
	cur := slot + slotMetaLen
	if b.cfg.VersionGlobals {
		b.copyCharged(m, b.globalsBase, cur, b.globalsLen, 1)
		cur += uint32(b.globalsLen)
	}
	used := int(b.img.StackBase + b.img.StackLen - sp)
	b.copyCharged(m, sp, cur, used, 1)
	m.Regs = vm.Registers{
		PC: m.Mem.ReadWord(slot + 0),
		SP: sp,
		FP: m.Mem.ReadWord(slot + 8),
		RV: m.Mem.ReadWord(slot + 12),
	}
	m.CpDisable = int(m.Mem.ReadWord(slot + 16))
	m.NoteRestore()
	b.reg.Inc("restores")
	return nil
}

// copyCharged copies n bytes from src to dst word-by-word, charging
// passes×(read+write) per word so mid-copy power failures land realistically.
func (b *Mementos) copyCharged(m *vm.Machine, dst, src uint32, n int, passes int64) {
	words := (n + 3) / 4
	for w := 0; w < words; w++ {
		m.Spend(passes * (m.Cost.NVReadPerWord + m.Cost.NVWritePerWord))
		m.Mem.WriteWord(dst+uint32(4*w), m.Mem.ReadWord(src+uint32(4*w)))
	}
}

// Checkpoint implements vm.Runtime: the full-state double-buffered commit.
// Trigger checkpoints (the instrumented Chkpt opcodes) respect the voltage
// gate; timer checkpoints always run.
func (b *Mementos) Checkpoint(m *vm.Machine, kind vm.CpKind) error {
	if kind == vm.CpManual && b.cfg.VoltageThresholdCycles > 0 {
		// The Mementos voltage check, with hysteresis: checkpoint at a
		// trigger only once the supply is low, and at most once per
		// discharge slope (a fresh checkpoint means the capacitor reading
		// has not meaningfully dropped since).
		if m.Remaining() > b.cfg.VoltageThresholdCycles ||
			m.SinceCheckpoint() < b.cfg.VoltageThresholdCycles {
			b.reg.Inc("skipped-triggers")
			return nil
		}
	}
	captured := slotMetaLen + int(b.img.StackBase+b.img.StackLen-m.Regs.SP)
	if b.cfg.VersionGlobals {
		captured += b.globalsLen
	}
	m.EmitEvent(obs.EvCheckpointBegin, int64(kind), int64(captured))
	m.PushCat(obs.CatCheckpoint)
	m.Spend(m.Cost.CheckpointBase)
	target := 1 - b.active
	slot := b.addrSlot[target]
	m.Spend(6 * m.Cost.NVWritePerWord)
	m.Mem.WriteWord(slot+0, m.Regs.PC)
	m.Mem.WriteWord(slot+4, m.Regs.SP)
	m.Mem.WriteWord(slot+8, m.Regs.FP)
	m.Mem.WriteWord(slot+12, m.Regs.RV)
	m.Mem.WriteWord(slot+16, uint32(m.CpDisable))
	cur := slot + slotMetaLen
	if b.cfg.VersionGlobals {
		b.copyCharged(m, cur, b.globalsBase, b.globalsLen, 2)
		cur += uint32(b.globalsLen)
	}
	used := int(b.img.StackBase + b.img.StackLen - m.Regs.SP)
	b.copyCharged(m, cur, m.Regs.SP, used, 2)
	m.Spend(m.Cost.NVWritePerWord)
	m.Mem.WriteWord(b.addrActive, uint32(target))
	b.active = target
	m.PopCat()
	m.NoteCheckpoint(kind)
	b.reg.Inc("checkpoints")
	return nil
}

// Enter implements vm.Runtime: a conventional prologue.
func (b *Mementos) Enter(m *vm.Machine, fn int) error {
	meta, err := m.Img.FuncAt(fn)
	if err != nil {
		return err
	}
	if m.Regs.SP < m.Img.StackBase+uint32(meta.FrameBytes) {
		m.Fault("stack overflow entering %s", meta.Name)
	}
	m.Push(m.Regs.FP)
	m.Regs.FP = m.Regs.SP
	m.Regs.SP -= uint32(meta.LocalBytes)
	return nil
}

// Leave implements vm.Runtime.
func (b *Mementos) Leave(m *vm.Machine) error {
	m.Regs.SP = m.Regs.FP
	m.Regs.FP = m.Pop()
	m.Regs.PC = m.Pop()
	return nil
}

// PreStore implements vm.Runtime (no log to fill).
func (b *Mementos) PreStore(m *vm.Machine) error { return nil }

// LoggedStore implements vm.Runtime: raw stores — consistency comes from
// the full-state checkpoint (or fails to, when VersionGlobals is off).
func (b *Mementos) LoggedStore(m *vm.Machine, addr uint32, size int, value uint32) error {
	m.RawStore(addr, size, value)
	return nil
}

// OnExpiry implements vm.Runtime as a no-op: without TICS's
// restore-to-block-entry machinery a mid-block expiration cannot be
// delivered safely (Table 5: timely execution unsupported).
func (b *Mementos) OnExpiry(m *vm.Machine) error { return nil }

// OnInterrupt implements vm.Runtime: a plain call-like transfer.
func (b *Mementos) OnInterrupt(m *vm.Machine, isrEntry uint32) error {
	m.Push(m.Regs.PC)
	m.Regs.PC = isrEntry
	return nil
}

// OnInterruptReturn implements vm.Runtime as a no-op: only TICS gives
// ISRs exactly-once commit semantics (paper §4).
func (b *Mementos) OnInterruptReturn(m *vm.Machine) error { return nil }

// Transition implements vm.Runtime.
func (b *Mementos) Transition(m *vm.Machine, task int32) error {
	m.Fault("transition_to(%d): mementos is not a task runtime", task)
	return nil
}
