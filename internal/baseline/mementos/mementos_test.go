package mementos_test

import (
	"reflect"
	"testing"

	"repro/internal/baseline/mementos"
	"repro/internal/cc"
	"repro/internal/instrument"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/vm"
)

const warSrc = `
// Figure 3(a): a write-after-read update of a non-volatile global. If the
// checkpoint does not version globals, a restore replays the increment on
// the already-updated value.
int len = 10;
int main() {
    int i;
    for (i = 0; i < 40; i++) {
        len = len + 1;
    }
    out(0, len);
    return 0;
}
`

func buildMementos(t *testing.T, src string, cfg mementos.Config) (*link.Image, mementos.Config) {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instrument.Apply(prog, instrument.ForMementos()); err != nil {
		t.Fatal(err)
	}
	globals := int(prog.GlobalsBytes()) + 4*prog.MarkCount
	img, err := link.Link(prog, mementos.Spec(cfg, globals, 2048))
	if err != nil {
		t.Fatal(err)
	}
	return img, cfg
}

func runMementos(t *testing.T, img *link.Image, cfg mementos.Config, src power.Source) (vm.Result, *vm.Machine) {
	t.Helper()
	rt, err := mementos.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Image: img, Runtime: rt, Power: src, MaxCycles: 500_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

// TestFullStateCheckpointIsConsistent: the naive checkpointer that
// versions the complete stack and all globals survives a failure sweep.
func TestFullStateCheckpointIsConsistent(t *testing.T) {
	img, cfg := buildMementos(t, warSrc, mementos.DefaultConfig())
	oracle, _ := runMementos(t, img, cfg, power.Continuous{})
	if oracle.OutLog[0][0] != 50 {
		t.Fatalf("oracle: %v", oracle.OutLog)
	}
	for k := int64(9000); k >= 3500; k -= 111 {
		res, _ := runMementos(t, img, cfg, &power.FailEvery{Cycles: k, OffMs: 2})
		if !res.Completed {
			t.Fatalf("k=%d: starved=%v failures=%d", k, res.Starved, res.Failures)
		}
		if !reflect.DeepEqual(res.OutLog, oracle.OutLog) {
			t.Fatalf("k=%d: %v != %v", k, res.OutLog, oracle.OutLog)
		}
	}
}

// TestWARViolationWithoutGlobalVersioning reproduces Figure 3(a): leave
// globals out of the checkpoint and the replayed increments corrupt len.
func TestWARViolationWithoutGlobalVersioning(t *testing.T) {
	cfg := mementos.Config{VersionGlobals: false}
	img, cfg := buildMementos(t, warSrc, cfg)
	violated := false
	for k := int64(9000); k >= 3500; k -= 111 {
		res, m := runMementos(t, img, cfg, &power.FailEvery{Cycles: k, OffMs: 2})
		if !res.Completed {
			continue
		}
		v, err := m.ReadGlobal("len")
		if err != nil {
			t.Fatal(err)
		}
		if v != 50 {
			violated = true
			if v < 50 {
				t.Fatalf("k=%d: len=%d — WAR replay can only inflate", k, v)
			}
		}
	}
	if !violated {
		t.Fatal("no WAR violation observed across the sweep; the broken mode is not broken")
	}
}

// TestVoltageGateSkipsTriggers: under continuous power a voltage-gated
// configuration never checkpoints at triggers.
func TestVoltageGateSkipsTriggers(t *testing.T) {
	cfg := mementos.DefaultConfig()
	cfg.VoltageThresholdCycles = 3000
	img, cfg := buildMementos(t, warSrc, cfg)
	res, _ := runMementos(t, img, cfg, power.Continuous{})
	// Only the cold-boot checkpoint should exist.
	if res.TotalCheckpoints > 1 {
		t.Fatalf("gated run took %d checkpoints under continuous power", res.TotalCheckpoints)
	}
	img2, cfg2 := buildMementos(t, warSrc, mementos.DefaultConfig())
	res2, _ := runMementos(t, img2, cfg2, power.Continuous{})
	if res2.TotalCheckpoints < 40 {
		t.Fatalf("ungated run took only %d checkpoints", res2.TotalCheckpoints)
	}
}
