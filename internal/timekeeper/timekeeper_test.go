package timekeeper_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/timekeeper"
)

func TestPerfect(t *testing.T) {
	k := &timekeeper.Perfect{}
	k.AdvanceOn(10.5)
	k.AdvanceOff(100)
	if k.Now() != 110 {
		t.Fatalf("perfect: %d", k.Now())
	}
	k.Reset()
	if k.Now() != 0 {
		t.Fatal("reset")
	}
}

func TestRTCQuantizes(t *testing.T) {
	k := &timekeeper.RTC{ResolutionMs: 10}
	k.AdvanceOff(25) // quantized to 20
	k.AdvanceOn(5)
	if k.Now() != 25 {
		t.Fatalf("rtc: %d", k.Now())
	}
}

// TestRemanenceErrorBounded: the off-time estimate stays within the
// configured fractional error (up to the saturation horizon) and on-time
// is exact.
func TestRemanenceErrorBounded(t *testing.T) {
	check := func(seed uint64, offRaw uint16) bool {
		off := float64(offRaw%5000) + 1
		k := timekeeper.NewRemanence(0.1, 10_000, seed)
		k.AdvanceOff(off)
		est := float64(k.Now())
		return est >= off*0.9-1 && est <= off*1.1+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRemanenceSaturates(t *testing.T) {
	k := timekeeper.NewRemanence(0, 1000, 1)
	k.AdvanceOff(50_000) // far past the decay horizon
	if got := float64(k.Now()); math.Abs(got-1000) > 1 {
		t.Fatalf("saturation: estimated %f for a 50 s outage", got)
	}
}

func TestRemanenceDeterministic(t *testing.T) {
	a := timekeeper.NewRemanence(0.2, 5000, 7)
	b := timekeeper.NewRemanence(0.2, 5000, 7)
	for i := 0; i < 20; i++ {
		a.AdvanceOff(float64(10 * (i + 1)))
		b.AdvanceOff(float64(10 * (i + 1)))
	}
	if a.Now() != b.Now() {
		t.Fatal("nondeterministic remanence keeper")
	}
	a.Reset()
	if a.Now() != 0 {
		t.Fatal("reset")
	}
}
