// Package timekeeper models persistent time sources that survive power
// failures. The paper's TICS requires a remanence-based timer or a
// capacitor-backed RTC so that the runtime can update shadow timestamps
// and evaluate @expires/@timely conditions across outages; the error the
// keeper makes while the device is off is the interesting property, and
// it is pluggable here.
//
// The VM advances the keeper with the true elapsed on-time and off-time;
// the keeper answers Now() with its *estimate* of elapsed milliseconds.
package timekeeper

// Keeper is a persistent clock.
type Keeper interface {
	// Name identifies the keeper in experiment reports.
	Name() string
	// Now returns the keeper's current estimate of elapsed time in ms.
	Now() int64
	// AdvanceOn accounts for ms of powered execution (always accurate:
	// the MCU's own timer runs while powered).
	AdvanceOn(ms float64)
	// AdvanceOff accounts for a power outage of truly ms milliseconds; the
	// keeper may estimate it with error.
	AdvanceOff(ms float64)
	// Reset rewinds the keeper to time zero.
	Reset()
}

// Perfect is an ideal persistent clock (an external RTC with unlimited
// backup). It is the oracle against which error models are compared.
type Perfect struct{ est float64 }

func (p *Perfect) Name() string         { return "perfect" }
func (p *Perfect) Now() int64           { return int64(p.est) }
func (p *Perfect) AdvanceOn(ms float64) { p.est += ms }
func (p *Perfect) AdvanceOff(ms float64) {
	p.est += ms
}
func (p *Perfect) Reset() { p.est = 0 }

// RTC is a capacitor-backed real-time clock with a coarse tick: off-times
// are measured but quantized to ResolutionMs (e.g. a 1/32768 Hz prescaler
// chain read at 10 ms granularity).
type RTC struct {
	ResolutionMs float64
	est          float64
}

func (r *RTC) Name() string         { return "rtc" }
func (r *RTC) Now() int64           { return int64(r.est) }
func (r *RTC) AdvanceOn(ms float64) { r.est += ms }
func (r *RTC) AdvanceOff(ms float64) {
	res := r.ResolutionMs
	if res <= 0 {
		res = 1
	}
	ticks := float64(int64(ms / res))
	r.est += ticks * res
}
func (r *RTC) Reset() { r.est = 0 }

// Remanence models a TARDIS/CusTARD-style remanence-decay timer: the
// off-time estimate carries a bounded multiplicative error that varies
// deterministically per outage, and saturates at MaxOffMs (once the decay
// completes, longer outages are indistinguishable — the keeper can only
// report "at least MaxOffMs").
type Remanence struct {
	ErrFrac  float64 // maximum fractional error per outage, e.g. 0.1
	MaxOffMs float64 // decay horizon; longer outages saturate
	Seed     uint64
	est      float64
	rng      uint64
}

// NewRemanence builds a remanence keeper with the given error fraction and
// decay horizon.
func NewRemanence(errFrac, maxOffMs float64, seed uint64) *Remanence {
	return &Remanence{ErrFrac: errFrac, MaxOffMs: maxOffMs, Seed: seed, rng: seed | 1}
}

func (t *Remanence) Name() string         { return "remanence" }
func (t *Remanence) Now() int64           { return int64(t.est) }
func (t *Remanence) AdvanceOn(ms float64) { t.est += ms }

func (t *Remanence) AdvanceOff(ms float64) {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	u := float64(t.rng%2001)/1000.0 - 1 // [-1, 1]
	obs := ms
	if t.MaxOffMs > 0 && obs > t.MaxOffMs {
		obs = t.MaxOffMs
	}
	obs *= 1 + t.ErrFrac*u
	if obs < 0 {
		obs = 0
	}
	t.est += obs
}

func (t *Remanence) Reset() {
	t.est = 0
	t.rng = t.Seed | 1
}
