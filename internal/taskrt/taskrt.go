// Package taskrt implements the task-based intermittent runtimes the paper
// compares TICS against: Alpaca, InK and MayFly. All three share the same
// execution model — the program is decomposed by hand into atomic,
// idempotent tasks; only the active task's writes are versioned; a task
// transition is the commit point — and differ in scheduling machinery and
// time semantics:
//
//   - Alpaca (OOPSLA'17): data privatization + static task transitions.
//   - InK (SenSys'18): a reactive kernel that schedules tasks through an
//     event queue, adding per-transition kernel cost.
//   - MayFly (SenSys'17): a *static task graph* with timing constraints on
//     edges; data tokens are timestamped, expired tokens reroute the flow
//     to a recovery task, and graph loops are rejected (which is why the
//     cuckoo-filter benchmark cannot be expressed, §5.3).
//
// Versioning uses a non-volatile write-ahead log committed (cleared) by a
// single atomic word that also switches the current task, so a power
// failure at any point either replays the whole task or none of it.
package taskrt

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Kind selects the runtime flavor.
type Kind int

const (
	Alpaca Kind = iota
	InK
	MayFly
)

func (k Kind) String() string {
	switch k {
	case Alpaca:
		return "alpaca"
	case InK:
		return "ink"
	case MayFly:
		return "mayfly"
	}
	return "?"
}

// TaskDone is the transition target that ends the program.
const TaskDone = 99

// Edge is a MayFly task-graph edge with an optional freshness constraint
// on the data token flowing across it.
type Edge struct {
	From, To  int
	ExpireMs  int64 // 0 = no constraint
	OnExpired int   // task to reroute to when the token is stale
}

// Config describes the task decomposition of a program.
type Config struct {
	Kind Kind
	// Tasks maps task ids to function names, in id order.
	Tasks []string
	// StartTask is the initial task (default 0).
	StartTask int
	// Edges declares the MayFly task graph (ignored by Alpaca/InK).
	Edges []Edge
	// UndoCapBytes sizes the privatization log (default 4096).
	UndoCapBytes int
	// StackBytes sizes the machine stack (default 1024).
	StackBytes int
}

func (c Config) withDefaults() Config {
	if c.UndoCapBytes == 0 {
		c.UndoCapBytes = 4096
	}
	if c.StackBytes == 0 {
		c.StackBytes = 1024
	}
	return c
}

// Per-kind modeled costs and footprints.
type kindProfile struct {
	transitionCycles int64 // commit + scheduling
	privatizeCycles  int64 // per versioned store
	textBytes        int
	dataBytes        int
}

var profiles = map[Kind]kindProfile{
	Alpaca: {transitionCycles: 140, privatizeCycles: 60, textBytes: 1900, dataBytes: 4400},
	InK:    {transitionCycles: 300, privatizeCycles: 65, textBytes: 2500, dataBytes: 4450},
	MayFly: {transitionCycles: 340, privatizeCycles: 70, textBytes: 2300, dataBytes: 4650},
}

const (
	initMagic = 0x5441534B // "TASK"
	undoEntry = 12
)

// Spec returns the linker spec for a task-runtime build.
func Spec(cfg Config) link.RuntimeSpec {
	cfg = cfg.withDefaults()
	p := profiles[cfg.Kind]
	return link.RuntimeSpec{
		Name:           cfg.Kind.String(),
		RuntimeBytes:   24 + cfg.UndoCapBytes + 4*len(cfg.Edges),
		StackBytes:     cfg.StackBytes,
		ExtraTextBytes: p.textBytes,
		ExtraDataBytes: p.dataBytes,
	}
}

// Validate checks a task configuration against the task model's static
// constraints: MayFly graphs must be acyclic (only the activation-restart
// edge back to the start task is allowed), and no task model supports
// recursion or pointers (Table 5). The build pipeline calls this before
// linking so porting errors surface at compile time, as they would with
// the real toolchains.
func Validate(cfg Config, hasRecursion, usesPointers bool) error {
	if hasRecursion {
		return fmt.Errorf("taskrt: %s: task-based models cannot support recursion (static task memory)", cfg.Kind)
	}
	if usesPointers {
		return fmt.Errorf("taskrt: %s: task-based models cannot support pointers (static data-flow channels)", cfg.Kind)
	}
	if cfg.Kind == MayFly {
		for _, e := range cfg.Edges {
			restart := e.To == cfg.StartTask && e.From > e.To
			if e.To <= e.From && !restart {
				return fmt.Errorf(
					"taskrt: mayfly task graphs must be acyclic: edge %d→%d forms a loop (only the activation-restart edge to task %d is allowed)",
					e.From, e.To, cfg.StartTask)
			}
		}
	}
	return nil
}

// Runtime is the shared task engine.
type Runtime struct {
	cfg     Config
	profile kindProfile
	img     *link.Image
	entries []uint32 // task id → function entry address

	undoCap int

	addrMagic uint32
	addrHdr   uint32 // count(16) | cur(16): single-word atomic commit
	addrUndo  uint32
	addrToken uint32 // MayFly per-edge token timestamps

	cur     int
	undoLen int
	reg     *obs.Registry
}

// New builds a task runtime for an image linked with Spec(cfg). Every task
// name must resolve to a zero-argument function in the image. MayFly
// configurations reject cyclic graphs (backward edges other than the
// restart edge to the start task).
func New(img *link.Image, cfg Config) (*Runtime, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Tasks) == 0 {
		return nil, fmt.Errorf("taskrt: no tasks declared")
	}
	if len(cfg.Tasks) > 64 {
		return nil, fmt.Errorf("taskrt: too many tasks (%d)", len(cfg.Tasks))
	}
	if err := Validate(cfg, img.Program.HasRecursion, img.Program.UsesPointers); err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:     cfg,
		profile: profiles[cfg.Kind],
		img:     img,
		undoCap: cfg.UndoCapBytes / undoEntry,
		reg:     obs.NewRegistry(),
	}
	for _, name := range cfg.Tasks {
		found := false
		for _, f := range img.Funcs {
			if f.Name == name {
				if f.NArgs != 0 {
					return nil, fmt.Errorf("taskrt: task %s takes arguments", name)
				}
				r.entries = append(r.entries, f.Entry)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("taskrt: task function %s not found in image", name)
		}
	}
	a := img.RuntimeBase
	r.addrMagic = a
	r.addrHdr = a + 4
	a += 24
	r.addrUndo = a
	a += uint32(r.undoCap * undoEntry)
	r.addrToken = a
	a += uint32(4 * len(cfg.Edges))
	if a > img.RuntimeBase+img.RuntimeLen {
		return nil, fmt.Errorf("taskrt: runtime area too small: need %d B, have %d B", a-img.RuntimeBase, img.RuntimeLen)
	}
	return r, nil
}

// Name implements vm.Runtime.
func (r *Runtime) Name() string { return r.cfg.Kind.String() }

// Stats implements vm.Runtime. The returned map is a defensive snapshot:
// mutating it cannot corrupt the live counters.
func (r *Runtime) Stats() map[string]int64 { return r.reg.CounterSnapshot() }

// haltPC is the Halt instruction in the boot stub — the dummy return
// address for task frames, so a task that returns without transitioning
// ends the program.
func (r *Runtime) haltPC() uint32 { return r.img.EntryPC + 5 }

// setupTask points the machine at the start of the current task with a
// fresh stack.
func (r *Runtime) setupTask(m *vm.Machine) {
	m.Regs = vm.Registers{
		PC: r.entries[r.cur],
		SP: r.img.StackBase + r.img.StackLen,
		FP: r.img.StackBase + r.img.StackLen,
	}
	m.Push(r.haltPC())
}

// Boot implements vm.Runtime: roll back the active task's logged writes
// and restart it from its beginning (tasks are atomic and idempotent).
func (r *Runtime) Boot(m *vm.Machine, cold bool) error {
	if cold || m.Mem.ReadWord(r.addrMagic) != initMagic {
		m.Spend(m.Cost.RestoreBase)
		r.cur = r.cfg.StartTask
		r.undoLen = 0
		m.Mem.WriteWord(r.addrHdr, uint32(r.cur)&0xFFFF)
		m.Mem.WriteWord(r.addrMagic, initMagic)
		r.setupTask(m)
		return nil
	}
	m.Spend(m.Cost.RestoreBase)
	hdr := m.Mem.ReadWord(r.addrHdr)
	n := int(hdr >> 16)
	r.cur = int(hdr & 0xFFFF)
	if n > 0 {
		m.EmitEvent(obs.EvUndoRollback, int64(n), 0)
	}
	m.PushCat(obs.CatUndoLog)
	for i := n - 1; i >= 0; i-- {
		m.Spend(m.Cost.UndoRollback)
		e := r.addrUndo + uint32(i*undoEntry)
		addr := m.Mem.ReadWord(e)
		size := int(m.Mem.ReadWord(e + 4))
		old := m.Mem.ReadWord(e + 8)
		if size == 1 {
			m.Mem.WriteByteAt(addr, byte(old))
		} else {
			m.Mem.WriteWord(addr, old)
		}
		r.reg.Inc("undo-rollbacks")
	}
	m.PopCat()
	m.Spend(m.Cost.NVWritePerWord)
	m.Mem.WriteWord(r.addrHdr, uint32(r.cur)&0xFFFF)
	r.undoLen = 0
	r.reg.Inc("task-restarts")
	m.NoteRestore()
	if r.cfg.Kind == MayFly {
		r.checkTokens(m)
	}
	r.setupTask(m)
	return nil
}

// checkTokens enforces MayFly edge freshness on entry to the current task:
// a stale inbound token reroutes the flow to the edge's recovery task.
func (r *Runtime) checkTokens(m *vm.Machine) {
	now := m.Clock().Now()
	for i, e := range r.cfg.Edges {
		if e.To != r.cur || e.ExpireMs <= 0 {
			continue
		}
		m.Spend(m.Cost.TimeRead)
		ts := int64(m.Mem.ReadInt(r.addrToken + uint32(4*i)))
		if now-ts > e.ExpireMs {
			r.reg.Inc("expired-tokens")
			r.cur = e.OnExpired
			m.Spend(m.Cost.NVWritePerWord)
			m.Mem.WriteWord(r.addrHdr, uint32(r.cur)&0xFFFF)
			return
		}
	}
}

// Transition implements vm.Runtime: the commit point. A single word write
// clears the log and switches tasks atomically, then control jumps to the
// next task's entry with a fresh stack.
func (r *Runtime) Transition(m *vm.Machine, task int32) error {
	m.Spend(r.profile.transitionCycles)
	if task == TaskDone {
		m.Mem.WriteWord(r.addrHdr, uint32(r.cfg.StartTask)&0xFFFF)
		r.undoLen = 0
		m.Halt()
		return nil
	}
	if task < 0 || int(task) >= len(r.entries) {
		m.Fault("transition_to(%d): no such task", task)
	}
	if r.cfg.Kind == MayFly {
		// Stamp the token on the traversed edge before committing.
		for i, e := range r.cfg.Edges {
			if e.From == r.cur && e.To == int(task) {
				m.Spend(m.Cost.TimestampWrite)
				m.Mem.WriteInt(r.addrToken+uint32(4*i), int32(m.Clock().Now()))
			}
		}
	}
	m.ObserveMetric("undo_len_per_epoch", float64(r.undoLen))
	r.cur = int(task)
	r.undoLen = 0
	m.Spend(m.Cost.NVWritePerWord)
	m.Mem.WriteWord(r.addrHdr, uint32(r.cur)&0xFFFF) // atomic commit
	m.CommitObservables()
	r.reg.Inc("transitions")
	if r.cfg.Kind == MayFly {
		r.checkTokens(m)
	}
	r.setupTask(m)
	return nil
}

// PreStore implements vm.Runtime.
func (r *Runtime) PreStore(m *vm.Machine) error {
	if r.undoLen >= r.undoCap {
		m.Fault("%s: task writes exceed the privatization buffer (%d entries); split the task",
			r.cfg.Kind, r.undoCap)
	}
	return nil
}

// LoggedStore implements vm.Runtime: privatize-on-first-write, modeled as
// a write-ahead log entry cleared at the transition commit.
func (r *Runtime) LoggedStore(m *vm.Machine, addr uint32, size int, value uint32) error {
	m.EmitEvent(obs.EvUndoAppend, int64(addr), int64(size))
	m.PushCat(obs.CatUndoLog)
	m.Spend(r.profile.privatizeCycles)
	var old uint32
	if size == 1 {
		old = uint32(m.Mem.ReadByteAt(addr))
	} else {
		old = m.Mem.ReadWord(addr)
	}
	e := r.addrUndo + uint32(r.undoLen*undoEntry)
	m.Mem.WriteWord(e, addr)
	m.Mem.WriteWord(e+4, uint32(size))
	m.Mem.WriteWord(e+8, old)
	r.undoLen++
	m.Mem.WriteWord(r.addrHdr, uint32(r.undoLen)<<16|uint32(r.cur)&0xFFFF)
	m.PopCat()
	m.RawStore(addr, size, value)
	r.reg.Inc("stores-versioned")
	return nil
}

// Checkpoint implements vm.Runtime: task systems have no checkpoints; the
// transition is the only commit point.
func (r *Runtime) Checkpoint(m *vm.Machine, kind vm.CpKind) error { return nil }

// Enter implements vm.Runtime.
func (r *Runtime) Enter(m *vm.Machine, fn int) error {
	meta, err := m.Img.FuncAt(fn)
	if err != nil {
		return err
	}
	if m.Regs.SP < m.Img.StackBase+uint32(meta.FrameBytes) {
		m.Fault("stack overflow entering %s", meta.Name)
	}
	m.Push(m.Regs.FP)
	m.Regs.FP = m.Regs.SP
	m.Regs.SP -= uint32(meta.LocalBytes)
	return nil
}

// Leave implements vm.Runtime.
func (r *Runtime) Leave(m *vm.Machine) error {
	m.Regs.SP = m.Regs.FP
	m.Regs.FP = m.Pop()
	m.Regs.PC = m.Pop()
	return nil
}

// OnExpiry implements vm.Runtime as a no-op: task systems express time on
// graph edges (MayFly), not via @expires blocks; mid-task expirations go
// unhandled.
func (r *Runtime) OnExpiry(m *vm.Machine) error { return nil }

// OnInterrupt implements vm.Runtime: a plain call-like transfer (InK's
// event kernel would enqueue instead; interrupted tasks simply restart).
func (r *Runtime) OnInterrupt(m *vm.Machine, isrEntry uint32) error {
	m.Push(m.Regs.PC)
	m.Regs.PC = isrEntry
	return nil
}

// OnInterruptReturn implements vm.Runtime as a no-op.
func (r *Runtime) OnInterruptReturn(m *vm.Machine) error { return nil }
