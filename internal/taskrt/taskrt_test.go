package taskrt_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/instrument"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/taskrt"
	"repro/internal/timekeeper"
	"repro/internal/vm"
)

const taskSrc = `
int k;
int acc;

void t_produce() {
    acc += k * 3 + 1;
    k++;
    if (k < 10) { transition_to(0); }
    transition_to(1);
}

void t_report() {
    out(0, acc);
    out(1, k);
    transition_to(99);
}

int main() { return 0; }
`

func buildTask(t *testing.T, src string, cfg taskrt.Config) (*link.Image, taskrt.Config) {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := instrument.Apply(prog, instrument.ForTask()); err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, taskrt.Spec(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return img, cfg
}

func runTask(t *testing.T, img *link.Image, cfg taskrt.Config, p power.Source, clock timekeeper.Keeper) vm.Result {
	t.Helper()
	rt, err := taskrt.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Image: img, Runtime: rt, Power: p, Clock: clock, MaxCycles: 300_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTaskEngineFailureSweep(t *testing.T) {
	for _, kind := range []taskrt.Kind{taskrt.Alpaca, taskrt.InK} {
		cfg := taskrt.Config{Kind: kind, Tasks: []string{"t_produce", "t_report"}}
		img, cfg := buildTask(t, taskSrc, cfg)
		oracle := runTask(t, img, cfg, power.Continuous{}, nil)
		if !oracle.Completed || oracle.OutLog[0][0] != 145 || oracle.OutLog[1][0] != 10 {
			t.Fatalf("%v oracle: %+v", kind, oracle.OutLog)
		}
		for k := int64(5000); k >= 1200; k -= 53 {
			res := runTask(t, img, cfg, &power.FailEvery{Cycles: k, OffMs: 2}, nil)
			if !res.Completed {
				t.Fatalf("%v k=%d: starved=%v", kind, k, res.Starved)
			}
			if !reflect.DeepEqual(res.OutLog, oracle.OutLog) {
				t.Fatalf("%v k=%d: %v != %v", kind, k, res.OutLog, oracle.OutLog)
			}
		}
	}
}

func TestTaskRestartsCountAsRestores(t *testing.T) {
	cfg := taskrt.Config{Kind: taskrt.Alpaca, Tasks: []string{"t_produce", "t_report"}}
	img, cfg := buildTask(t, taskSrc, cfg)
	res := runTask(t, img, cfg, &power.FailEvery{Cycles: 2500, OffMs: 2}, nil)
	if !res.Completed || res.RuntimeStats["task-restarts"] == 0 {
		t.Fatalf("restarts: %+v %v", res.Completed, res.RuntimeStats)
	}
}

func TestMayflyGraphValidation(t *testing.T) {
	cfg := taskrt.Config{
		Kind:  taskrt.MayFly,
		Tasks: []string{"t_produce", "t_report"},
		Edges: []taskrt.Edge{{From: 0, To: 0}},
	}
	if err := taskrt.Validate(cfg, false, false); err == nil ||
		!strings.Contains(err.Error(), "acyclic") {
		t.Fatalf("self-edge accepted: %v", err)
	}
	cfg.Edges = []taskrt.Edge{{From: 0, To: 1}, {From: 1, To: 0}}
	if err := taskrt.Validate(cfg, false, false); err != nil {
		t.Fatalf("restart edge rejected: %v", err)
	}
	if err := taskrt.Validate(cfg, true, false); err == nil {
		t.Fatal("recursion accepted")
	}
	if err := taskrt.Validate(cfg, false, true); err == nil {
		t.Fatal("pointers accepted")
	}
}

const mayflySrc = `
int token;
int consumed;
int refreshes;

void t_sense() {
    token = token + 1;
    transition_to(1);
}

void t_use() {
    consumed++;
    if (consumed < 3) { transition_to(0); }
    out(0, consumed);
    out(1, token);
    transition_to(99);
}

int main() { return 0; }
`

// TestMayflyTokenExpiry: a long outage between producer and consumer makes
// the inbound token stale; the runtime must reroute to the producer
// instead of consuming.
func TestMayflyTokenExpiry(t *testing.T) {
	cfg := taskrt.Config{
		Kind:  taskrt.MayFly,
		Tasks: []string{"t_sense", "t_use"},
		Edges: []taskrt.Edge{
			{From: 0, To: 1, ExpireMs: 50, OnExpired: 0},
			{From: 1, To: 0},
		},
	}
	img, cfg := buildTask(t, mayflySrc, cfg)

	// Continuous power: no expirations.
	res := runTask(t, img, cfg, power.Continuous{}, nil)
	if !res.Completed || res.RuntimeStats["expired-tokens"] != 0 {
		t.Fatalf("continuous run expired tokens: %v", res.RuntimeStats)
	}

	// Long off-times between tiny windows: tokens expire and the flow is
	// rerouted to the producer, so the producer runs more often than the
	// consumer commits.
	res = runTask(t, img, cfg, &power.FailEvery{Cycles: 2000, OffMs: 200}, nil)
	if !res.Completed {
		t.Fatalf("expiry run: %+v", res)
	}
	if res.RuntimeStats["expired-tokens"] == 0 {
		t.Fatalf("no tokens expired under 200 ms outages: %v", res.RuntimeStats)
	}
	token, consumed := res.OutLog[1][0], res.OutLog[0][0]
	if token <= consumed {
		t.Fatalf("expected reruns of the producer: token=%d consumed=%d", token, consumed)
	}
}

func TestTaskConfigErrors(t *testing.T) {
	prog, err := cc.Compile(taskSrc, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, taskrt.Spec(taskrt.Config{Tasks: []string{"t_produce"}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := taskrt.New(img, taskrt.Config{}); err == nil {
		t.Fatal("no tasks accepted")
	}
	if _, err := taskrt.New(img, taskrt.Config{Tasks: []string{"nope"}}); err == nil {
		t.Fatal("unknown task accepted")
	}
}
