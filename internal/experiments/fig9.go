package experiments

import (
	"fmt"
	"strings"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/sensors"
)

// Fig9Point is one (app, configuration) performance measurement under
// continuous bench power, as in the paper's Figure 9.
type Fig9Point struct {
	App         string
	Config      string
	Cycles      int64
	Checkpoints int64
	Err         string
}

// OverheadVsPlain returns execution time normalized to the plain build.
func overhead(cycles, plain int64) string {
	if plain == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(cycles)/float64(plain))
}

func fig9Run(src string, build tics.BuildOptions, autoCpMs float64) (int64, int64, error) {
	img, err := tics.Build(src, build)
	if err != nil {
		return 0, 0, err
	}
	// The flight recorder rides along (metrics only, tiny ring) so every
	// figure point is cross-checked against the recorded event stream.
	rec := obs.NewRecorder(obs.Options{RingCap: 16, Keep: obs.MaskOf(obs.EvPowerFail)})
	m, err := tics.NewMachine(img, tics.RunOptions{
		Sensors:        sensors.NewBank(3),
		AutoCpPeriodMs: autoCpMs,
		MaxCycles:      3_000_000_000,
		Recorder:       rec,
	})
	if err != nil {
		return 0, 0, err
	}
	// The trace auditor rides along too: every figure point comes from a
	// run that provably kept rollback exactness, undo-log completeness and
	// checkpoint atomicity. Time consistency is only enforced for the
	// runtimes that claim it — Mementos and Chinchilla genuinely send
	// expired data on AR (the paper's Table 1), and this figure measures
	// their cycles anyway.
	claimsTime := build.Runtime == tics.RTTICS || build.Runtime == tics.RTTICSTask ||
		build.Runtime == tics.RTMayFly
	aud, err := audit.Attach(m, audit.Options{CheckTime: &claimsTime})
	if err != nil {
		return 0, 0, err
	}
	res, err := m.Run()
	if err != nil {
		return 0, 0, err
	}
	if !res.Completed {
		return 0, 0, fmt.Errorf("did not complete (starved=%v)", res.Starved)
	}
	if got := rec.Metrics().Counter("checkpoint_commits"); got != res.TotalCheckpoints {
		return 0, 0, fmt.Errorf("flight recorder disagrees: %d commit events vs %d checkpoints counted", got, res.TotalCheckpoints)
	}
	if err := aud.Err(); err != nil {
		return 0, 0, err
	}
	return res.Cycles, res.TotalCheckpoints, nil
}

// Fig9 regenerates the three panels of Figure 9 on the AR, BC and CF
// benchmarks: (left) TICS vs Chinchilla across optimization levels;
// (center) the working-stack-size micro-benchmark (S1 = program-minimum
// segments, S2 = 512 B segments; the * variants add the 10 ms timer
// checkpoints); (right) TICS configurations against the naive
// checkpointer and the task-based systems, normalized to plain C.
func Fig9() (Report, error) {
	benches := []apps.App{apps.AR(), apps.BC(), apps.CF()}
	var points []Fig9Point
	record := func(app, config string, cycles, cps int64, err error) {
		p := Fig9Point{App: app, Config: config, Cycles: cycles, Checkpoints: cps}
		if err != nil {
			p.Err = err.Error()
		}
		points = append(points, p)
	}

	var b strings.Builder
	b.WriteString("Figure 9 — benchmark performance under continuous power (cycles; lower is better).\n")

	// Panel: TICS vs Chinchilla, O0 vs O2.
	b.WriteString("\n[left] TICS vs Chinchilla across optimization levels\n")
	tblL := &table{header: []string{"app", "TICS -O0", "TICS -O2", "Chinchilla -O0", "Chinchilla -O2"}}
	for _, app := range benches {
		row := []string{app.Name}
		for _, cfg := range []struct {
			kind tics.RuntimeKind
			o0   bool
		}{
			{tics.RTTICS, true}, {tics.RTTICS, false},
			{tics.RTChinchilla, true}, {tics.RTChinchilla, false},
		} {
			opts := tics.BuildOptions{Runtime: cfg.kind}
			if cfg.o0 {
				opts = opts.WithO0()
			}
			label := fmt.Sprintf("%s-O%d", cfg.kind, map[bool]int{true: 0, false: 2}[cfg.o0])
			cycles, cps, err := fig9Run(app.Source, opts, 10)
			record(app.Name, label, cycles, cps, err)
			if err != nil {
				row = append(row, "✗") // Chinchilla cannot run recursion (BC)
			} else {
				row = append(row, fmt.Sprintf("%d", cycles))
			}
		}
		tblL.add(row...)
	}
	b.WriteString(tblL.String())
	b.WriteString("(✗ = does not compile: Chinchilla rejects BC's recursion, §5.3.1)\n")

	// Panel: micro-benchmark over working-stack sizes.
	b.WriteString("\n[center] TICS working-stack size micro-benchmark\n")
	tblC := &table{header: []string{"app", "config", "segment (B)", "cycles", "checkpoints"}}
	for _, app := range benches {
		prog, err := tics.Compile(app.Source, 2)
		if err != nil {
			return Report{}, err
		}
		s1 := prog.MinSegmentBytes()
		s2 := 512
		if s2 < s1 {
			s2 = s1 * 2
		}
		for _, cfg := range []struct {
			label string
			seg   int
			timer float64
		}{
			{"S1", s1, 0}, {"S2", s2, 0}, {"S1*", s1, 10}, {"S2*", s2, 10},
		} {
			cycles, cps, err := fig9Run(app.Source, tics.BuildOptions{
				Runtime: tics.RTTICS, SegmentBytes: cfg.seg, StackBytes: 2048,
			}, cfg.timer)
			record(app.Name, "micro-"+cfg.label, cycles, cps, err)
			if err != nil {
				return Report{}, fmt.Errorf("%s %s: %w", app.Name, cfg.label, err)
			}
			tblC.add(app.Name, cfg.label, fmt.Sprintf("%d", cfg.seg),
				fmt.Sprintf("%d", cycles), fmt.Sprintf("%d", cps))
		}
	}
	b.WriteString(tblC.String())
	b.WriteString("(bigger segments -> fewer stack-change checkpoints, each more expensive)\n")

	// Panel: TICS vs task-based systems and the naive checkpointer.
	b.WriteString("\n[right] TICS vs task-based systems (normalized to plain C)\n")
	tblR := &table{header: []string{"app", "plain", "TICS S2*", "TICS ST", "naive", "Alpaca", "InK", "MayFly"}}
	for _, app := range benches {
		// The plain baseline runs the *legacy* program (the manual-time AR
		// variant), matching what the task ports implement.
		plainSrc := app.Source
		if app.ManualSource != "" {
			plainSrc = app.ManualSource
		}
		plainCycles, _, err := fig9Run(plainSrc, tics.BuildOptions{Runtime: tics.RTPlain}, 0)
		if err != nil {
			return Report{}, err
		}
		record(app.Name, "plain", plainCycles, 0, nil)
		row := []string{app.Name, fmt.Sprintf("%d", plainCycles)}

		cell := func(config string, cycles int64, err error) {
			record(app.Name, config, cycles, 0, err)
			if err != nil {
				row = append(row, "✗")
			} else {
				row = append(row, overhead(cycles, plainCycles))
			}
		}
		c, _, err := fig9Run(app.Source, tics.BuildOptions{Runtime: tics.RTTICS, SegmentBytes: 512, StackBytes: 4096}, 10)
		cell("TICS-S2*", c, err)
		c, _, err = fig9Run(app.Source, tics.BuildOptions{Runtime: tics.RTTICSTask, SegmentBytes: 512, StackBytes: 4096}, 10)
		cell("TICS-ST", c, err)
		c, _, err = fig9Run(app.Source, tics.BuildOptions{Runtime: tics.RTMementos}, 0)
		cell("naive", c, err)
		for _, kind := range []tics.RuntimeKind{tics.RTAlpaca, tics.RTInK, tics.RTMayFly} {
			src, tasks, edges := app.TaskSource, app.Tasks, app.Edges
			if kind == tics.RTMayFly {
				src, tasks, edges = app.ForMayfly()
			}
			c, _, err = fig9Run(src, tics.BuildOptions{Runtime: kind, Tasks: tasks, Edges: edges}, 0)
			cell(string(kind), c, err)
		}
		tblR.add(row...)
	}
	b.WriteString(tblR.String())
	b.WriteString("(✗ = cannot be expressed: MayFly rejects CF's cyclic task graph, §5.3)\n")

	return Report{
		ID:    "fig9",
		Title: "Benchmark performance",
		Text:  b.String(),
		Data:  map[string]any{"points": points},
	}, nil
}
