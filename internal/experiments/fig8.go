package experiments

import (
	"fmt"
	"sort"
	"strings"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/sensors"
)

// Fig8Event is one entry of the AR execution trace.
type Fig8Event struct {
	TrueMs   float64
	DeviceMs int64
	What     string
}

// Fig8 regenerates the Figure 8 timeline: the annotated AR application on
// harvested power, showing sampled windows, fresh windows classified,
// stale windows discarded by @expires/catch, and @timely alerts.
func Fig8() (Report, error) {
	app := apps.AR()
	img, err := tics.Build(app.Source, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		return Report{}, err
	}
	// Milder harvesting than the Table 2 stress run: recharge times
	// straddle the 200 ms freshness window, so the trace shows both fresh
	// windows classified and stale windows discarded.
	fig8Power := power.NewHarvester(40_000, 450, 0.8, 8)
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          fig8Power,
		Sensors:        sensors.NewBank(8),
		AutoCpPeriodMs: 10,
		MaxCycles:      3_000_000_000,
	})
	if err != nil {
		return Report{}, err
	}
	var events []Fig8Event
	m.OnMark = func(id int32, deviceMs int64) {
		what := map[int32]string{
			0: "window sampled",
			3: "fresh data -> featurize/classify",
			4: "EXPIRED window discarded (catch)",
		}[id]
		if what != "" {
			events = append(events, Fig8Event{TrueMs: m.TrueNowMs(), DeviceMs: deviceMs, What: what})
		}
	}
	res, err := m.Run()
	if err != nil {
		return Report{}, err
	}
	for _, s := range res.SendLog {
		what := fmt.Sprintf("send activity=%d", s.Value)
		switch {
		case s.Value >= 2000:
			what = fmt.Sprintf("LATE alert suppressed path (activity=%d)", s.Value-2000)
		case s.Value >= 1000:
			what = fmt.Sprintf("TIMELY ALERT (activity=%d, within 200 ms)", s.Value-1000)
		}
		events = append(events, Fig8Event{TrueMs: s.TrueMs, DeviceMs: s.EstMs, What: what})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].TrueMs < events[j].TrueMs })

	// Committed round outcomes come from the mark counters in non-volatile
	// memory (the raw event stream above includes replays around failures).
	fresh := int(at(res.MarkCounts, 3))
	stale := int(at(res.MarkCounts, 4))
	alerts := 0
	var b strings.Builder
	b.WriteString("Figure 8 — timely execution trace of the AR application on harvested power.\n")
	b.WriteString(fmt.Sprintf("(power failures: %d, checkpoints: %d)\n\n", res.Failures, res.TotalCheckpoints))
	b.WriteString(fmt.Sprintf("%10s  %s\n", "t (ms)", "event"))
	for _, e := range events {
		b.WriteString(fmt.Sprintf("%10.0f  %s\n", e.TrueMs, e.What))
		if strings.HasPrefix(e.What, "TIMELY") {
			alerts++
		}
	}
	b.WriteString(fmt.Sprintf("\nSummary: %d fresh windows processed, %d stale windows discarded, %d timely alerts.\n",
		fresh, stale, alerts))
	return Report{
		ID:    "fig8",
		Title: "Timely execution of the AR application",
		Text:  b.String(),
		Data:  map[string]any{"events": events, "fresh": fresh, "stale": stale, "alerts": alerts},
	}, nil
}
