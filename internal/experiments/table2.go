package experiments

import (
	"fmt"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/trace"
)

// Table2Result bundles one AR run's violation tallies.
type Table2Result struct {
	TimelyBranch trace.Counts
	Misalignment trace.Counts
	Expiration   trace.Counts
	Completed    bool
	Failures     int
}

// add accumulates a second run's tallies.
func (t Table2Result) add(o Table2Result) Table2Result {
	t.TimelyBranch.Potential += o.TimelyBranch.Potential
	t.TimelyBranch.Observed += o.TimelyBranch.Observed
	t.Misalignment.Potential += o.Misalignment.Potential
	t.Misalignment.Observed += o.Misalignment.Observed
	t.Expiration.Potential += o.Expiration.Potential
	t.Expiration.Observed += o.Expiration.Observed
	t.Failures += o.Failures
	t.Completed = o.Completed
	return t
}

// arPower models the paper's RF-harvesting setup (Powercast transmitter,
// 10 µF storage capacitor): short powered bursts separated by recharge
// times that regularly exceed the 200 ms freshness window.
func arPower(seed uint64) power.Source {
	return power.NewHarvester(20_000, 90, 0.8, seed)
}

// runAR executes one AR variant with the violation detectors attached.
func runAR(src string, build tics.BuildOptions, tsName string, seed uint64) (Table2Result, error) {
	img, err := tics.Build(src, build)
	if err != nil {
		return Table2Result{}, err
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          arPower(seed),
		Sensors:        sensors.NewBank(seed),
		AutoCpPeriodMs: 10,
		MaxCycles:      3_000_000_000,
	})
	if err != nil {
		return Table2Result{}, err
	}
	det, err := trace.Attach(m, img.Image, trace.Config{
		Pairs:       []trace.Pair{{DataName: "accel", TSName: tsName}},
		ConsumeMark: 3,
		FreshnessMs: 200,
		AlignMs:     50,
	})
	if err != nil {
		return Table2Result{}, err
	}
	res, err := m.Run()
	if err != nil {
		return Table2Result{}, err
	}
	det.Finish()
	timely, err := trace.CountDualBranches(m, img.Image, "timelyA", "timelyB")
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{
		TimelyBranch: timely,
		Misalignment: det.Misalign,
		Expiration:   det.Expired,
		Completed:    res.Completed,
		Failures:     res.Failures,
	}, nil
}

// Table2 reproduces the Table 2 experiment: the activity-recognition
// application run on harvested power, once with manual time management
// under MementOS-like checkpoints (the broken-consistency configuration a
// stack-and-registers checkpointer exhibits on FRAM globals) and once with
// TICS time annotations. The detectors of internal/trace count the three
// time-consistency violation classes of Figure 3(b)-(d).
func Table2() (Report, error) {
	// Aggregate several harvesting traces — the paper's numbers come from
	// a long wireless-powered deployment, not a single 30-round pass.
	seeds := []uint64{42, 43, 44, 45, 46, 47, 48, 49}
	noVersion := false
	var manual, withTICS Table2Result
	for _, seed := range seeds {
		man, err := runAR(apps.AR().ManualSource,
			tics.BuildOptions{
				Runtime:                tics.RTMementos,
				VersionGlobals:         &noVersion,
				VoltageThresholdCycles: 3000, // voltage-gated triggers, as Mementos does
			}, "ats", seed)
		if err != nil {
			return Report{}, fmt.Errorf("manual AR: %w", err)
		}
		manual = manual.add(man)
		tic, err := runAR(apps.AR().Source,
			tics.BuildOptions{Runtime: tics.RTTICS}, "", seed)
		if err != nil {
			return Report{}, fmt.Errorf("annotated AR: %w", err)
		}
		withTICS = withTICS.add(tic)
	}

	tbl := &table{header: []string{"violation", "potential", "w/o TICS", "w/ TICS"}}
	tbl.add("Timely Branch",
		fmt.Sprintf("%d", manual.TimelyBranch.Potential),
		fmt.Sprintf("%d", manual.TimelyBranch.Observed),
		fmt.Sprintf("%d", withTICS.TimelyBranch.Observed))
	tbl.add("Time Misalignment",
		fmt.Sprintf("%d", manual.Misalignment.Potential),
		fmt.Sprintf("%d", manual.Misalignment.Observed),
		fmt.Sprintf("%d", withTICS.Misalignment.Observed))
	tbl.add("Data Expiration",
		fmt.Sprintf("%d", manual.Expiration.Potential),
		fmt.Sprintf("%d", manual.Expiration.Observed),
		fmt.Sprintf("%d", withTICS.Expiration.Observed))

	text := "Table 2 — time-consistency violations in AR under RF-harvested power.\n" +
		fmt.Sprintf("Manual-time run: %d power failures; TICS run: %d power failures.\n",
			manual.Failures, withTICS.Failures) +
		"Paper shape: the manual version violates all three classes; TICS eliminates every one.\n\n" +
		tbl.String()
	return Report{
		ID:    "table2",
		Title: "Time-consistency violations in AR",
		Text:  text,
		Data:  map[string]any{"manual": manual, "tics": withTICS},
	}, nil
}
