package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/survey"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5", "fig8", "fig9", "fig10", "ablations"}
	reg := experiments.Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries", len(reg))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if _, ok := experiments.Find(id); !ok {
			t.Fatalf("Find(%s) failed", id)
		}
	}
	if _, ok := experiments.Find("nope"); ok {
		t.Fatal("Find accepted an unknown id")
	}
}

// TestTable1Shape: the paper's central Table 1 claim — only the TICS
// variants execute the GHM routines in lock step below 100% intermittency;
// at 100% everything is consistent.
func TestTable1Shape(t *testing.T) {
	rep, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Data["rows"].([]experiments.Table1Row)
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		isTICS := strings.Contains(r.Variant, "TICS")
		switch {
		case r.Rate >= 1:
			if !r.Consistent {
				t.Fatalf("continuous power inconsistent: %+v", r)
			}
		case isTICS:
			if !r.Consistent {
				t.Fatalf("TICS inconsistent at %.0f%%: %+v", r.Rate*100, r)
			}
		default:
			if r.Consistent {
				t.Fatalf("unprotected legacy code consistent at %.0f%%: %+v", r.Rate*100, r)
			}
		}
		if at := r.Counts; len(at) != 4 || at[0] == 0 {
			t.Fatalf("no progress: %+v", r)
		}
	}
}

// TestTable2Shape: TICS eliminates every violation class; the manual
// baseline exhibits all three.
func TestTable2Shape(t *testing.T) {
	rep, err := experiments.Table2()
	if err != nil {
		t.Fatal(err)
	}
	manual := rep.Data["manual"].(experiments.Table2Result)
	withTICS := rep.Data["tics"].(experiments.Table2Result)
	if withTICS.TimelyBranch.Observed != 0 ||
		withTICS.Misalignment.Observed != 0 ||
		withTICS.Expiration.Observed != 0 {
		t.Fatalf("TICS produced violations: %+v", withTICS)
	}
	if manual.TimelyBranch.Observed == 0 ||
		manual.Misalignment.Observed == 0 ||
		manual.Expiration.Observed == 0 {
		t.Fatalf("manual baseline clean — nothing to eliminate: %+v", manual)
	}
	if manual.Failures == 0 || withTICS.Failures == 0 {
		t.Fatal("the harvested-power runs saw no failures")
	}
}

// TestTable3Shape: Chinchilla dominates both sections; TICS has the
// smallest RAM footprint.
func TestTable3Shape(t *testing.T) {
	rep, err := experiments.Table3()
	if err != nil {
		t.Fatal(err)
	}
	cells := rep.Data["cells"].([]experiments.Table3Cell)
	byApp := map[string]map[string]experiments.Table3Cell{}
	for _, c := range cells {
		app := strings.TrimSuffix(c.App, "*")
		if byApp[app] == nil {
			byApp[app] = map[string]experiments.Table3Cell{}
		}
		byApp[app][c.Runtime] = c
	}
	for app, m := range byApp {
		tics, chin, ink := m["TICS"], m["Chinchilla"], m["InK"]
		if tics.Err != "" || chin.Err != "" || ink.Err != "" {
			t.Fatalf("%s: build errors: %+v", app, m)
		}
		if !(chin.Text > tics.Text) {
			t.Fatalf("%s: Chinchilla .text %d not above TICS %d", app, chin.Text, tics.Text)
		}
		// Core ordering: both competitors carry far more RAM than TICS.
		// (Chinchilla-vs-InK absolute ordering is not asserted: the paper's
		// Chinchilla blow-up is driven by per-callsite inline duplication,
		// which our non-inlining compiler cannot reproduce — see
		// EXPERIMENTS.md.)
		if ink.Data <= tics.Data {
			t.Fatalf("%s: InK .data %d not above TICS %d", app, ink.Data, tics.Data)
		}
		if chin.Data < 3*tics.Data {
			t.Fatalf("%s: Chinchilla .data %d not ≫ TICS %d (paper: ~6x; ours ~4x, see EXPERIMENTS.md)", app, chin.Data, tics.Data)
		}
	}
}

// TestTable4Calibration: the measured runtime-operation costs must land in
// the paper's ballpark.
func TestTable4Calibration(t *testing.T) {
	rep, err := experiments.Table4()
	if err != nil {
		t.Fatal(err)
	}
	ms := rep.Data["measurements"].([]experiments.Table4Measurement)
	get := func(op, cfg string) int64 {
		for _, m := range ms {
			if m.Operation == op && m.Config == cfg {
				return m.Cycles
			}
		}
		t.Fatalf("no measurement %s/%s", op, cfg)
		return 0
	}
	if v := get("Pointer access", "no log (4 B)"); v != 13 {
		t.Fatalf("unlogged store %d, paper 13", v)
	}
	if v := get("Pointer access", "log 4 B"); v != 308 {
		t.Fatalf("logged store %d, paper 308", v)
	}
	if v := get("Roll back from undo log", "4 B"); v != 234 {
		t.Fatalf("rollback %d, paper 234", v)
	}
	if v := get("Stack grow", "excl. checkpoint"); v < 300 || v > 420 {
		t.Fatalf("grow %d, paper ~345", v)
	}
	// Checkpoint cost grows with segment size.
	var prev int64
	for _, m := range ms {
		if m.Operation == "Checkpoint logic" {
			if m.Cycles <= prev {
				t.Fatalf("checkpoint cost not monotone: %+v", ms)
			}
			prev = m.Cycles
		}
	}
}

// TestTable5Shape: only TICS supports everything; every probe column is
// genuine (derived from compiling real programs).
func TestTable5Shape(t *testing.T) {
	rep, err := experiments.Table5()
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Data["rows"].([]experiments.Table5Row)
	byName := map[string]experiments.Table5Row{}
	for _, r := range rows {
		byName[r.Runtime] = r
	}
	tics := byName["TICS (this work)"]
	if !tics.Pointers || !tics.Recursion || !tics.Scalable || !tics.Timely || tics.Porting != "none" {
		t.Fatalf("TICS row: %+v", tics)
	}
	for _, name := range []string{"MayFly", "Alpaca", "InK"} {
		r := byName[name]
		if r.Pointers || r.Recursion || r.Porting != "high" {
			t.Fatalf("%s row: %+v", name, r)
		}
	}
	chin := byName["Chinchilla"]
	if !chin.Pointers || chin.Recursion {
		t.Fatalf("Chinchilla row: %+v", chin)
	}
}

func TestFig8Shape(t *testing.T) {
	rep, err := experiments.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	fresh := rep.Data["fresh"].(int)
	stale := rep.Data["stale"].(int)
	if fresh == 0 || stale == 0 {
		t.Fatalf("fig8 should show both outcomes: fresh=%d stale=%d", fresh, stale)
	}
	if fresh+stale != 30 {
		t.Fatalf("rounds: %d+%d != 30", fresh, stale)
	}
}

// TestFig9Shape: the qualitative performance ordering of the paper.
func TestFig9Shape(t *testing.T) {
	rep, err := experiments.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	points := rep.Data["points"].([]experiments.Fig9Point)
	get := func(app, config string) experiments.Fig9Point {
		for _, p := range points {
			if p.App == app && p.Config == config {
				return p
			}
		}
		t.Fatalf("no point %s/%s", app, config)
		return experiments.Fig9Point{}
	}
	// Chinchilla cannot run BC; MayFly cannot run CF.
	if get("bc", "chinchilla-O2").Err == "" {
		t.Fatal("Chinchilla compiled recursive BC")
	}
	if get("cf", "mayfly").Err == "" {
		t.Fatal("MayFly accepted CF")
	}
	for _, app := range []string{"ar", "bc", "cf"} {
		plain := get(app, "plain").Cycles
		naive := get(app, "naive").Cycles
		ticsS2 := get(app, "TICS-S2*").Cycles
		alpaca := get(app, "alpaca").Cycles
		if naive <= ticsS2 {
			t.Fatalf("%s: naive (%d) not above TICS (%d)", app, naive, ticsS2)
		}
		if ticsS2 <= plain/2 {
			t.Fatalf("%s: TICS (%d) implausibly below plain (%d)", app, ticsS2, plain)
		}
		if alpaca >= naive {
			t.Fatalf("%s: alpaca (%d) not below naive (%d)", app, alpaca, naive)
		}
	}
	// O2 never slower than O0 for TICS.
	for _, app := range []string{"ar", "bc", "cf"} {
		if o2, o0 := get(app, "tics-O2").Cycles, get(app, "tics-O0").Cycles; o2 > o0 {
			t.Fatalf("%s: O2 (%d) slower than O0 (%d)", app, o2, o0)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rep, err := experiments.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Data["result"].(survey.Result)
	if res.Wilcoxon.P >= 0.001 {
		t.Fatalf("p = %g", res.Wilcoxon.P)
	}
}

// TestAblationsShape pins the direction of each ablation's effect.
func TestAblationsShape(t *testing.T) {
	rep, err := experiments.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	points := rep.Data["points"].([]experiments.AblationPoint)
	get := func(study, config string) experiments.AblationPoint {
		for _, p := range points {
			if p.Study == study && p.Config == config {
				return p
			}
		}
		t.Fatalf("no point %s/%s", study, config)
		return experiments.AblationPoint{}
	}
	// Minimum segments checkpoint far more often than 512 B ones.
	small := get("segment-size", "40B")
	if small.Config == "" { // the program minimum may shift with app edits
		small = points[0]
	}
	big := get("segment-size", "512B")
	if small.Checkpoints <= 2*big.Checkpoints {
		t.Fatalf("segment sweep lost its effect: %d vs %d checkpoints", small.Checkpoints, big.Checkpoints)
	}
	// Block-granularity logging reduces both entries and cycles on CF.
	word := get("undo-granularity", "4B")
	block := get("undo-granularity", "32B")
	if block.Extra["dedup"] == 0 || block.Cycles >= word.Cycles {
		t.Fatalf("block logging ineffective: %+v vs %+v", block, word)
	}
	// Differential checkpoints are cheaper on this workload.
	fixed := get("differential", "fixed (whole segment)")
	diff := get("differential", "differential (used tail)")
	if diff.Cycles >= fixed.Cycles {
		t.Fatalf("differential not cheaper: %d vs %d", diff.Cycles, fixed.Cycles)
	}
	// A ±50% remanence clock flips freshness verdicts vs the perfect clock.
	perfect := get("timekeeper", "perfect")
	sloppy := get("timekeeper", "remanence ±50%")
	if perfect.Extra["fresh"] == sloppy.Extra["fresh"] && perfect.Extra["stale"] == sloppy.Extra["stale"] {
		t.Fatal("clock error had no observable effect")
	}
}
