package experiments

import (
	"fmt"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/sensors"
)

// Table1Row is one (program, intermittency, runtime) measurement.
type Table1Row struct {
	Rate       float64
	Variant    string // "plain C", "plain C + TICS", "TinyOS", "TinyOS + TICS"
	Counts     []int64
	Consistent bool
}

// Table1 reproduces the Table 1 experiment: the greenhouse-monitoring
// application (plain-C and TinyOS-event styles), with and without TICS,
// driven by pre-programmed reset patterns at 4%, 48% and 100%
// intermittency rate, for a fixed wall-clock budget. A run is correct when
// every routine executed the same number of times (lock-step counts).
func Table1() (Report, error) {
	const wallBudgetMs = 30_000
	rates := []float64{0.04, 0.48, 1.00}
	variants := []struct {
		label   string
		app     apps.App
		runtime tics.RuntimeKind
	}{
		{"plain C", apps.GHMPlain(), tics.RTPlain},
		{"plain C + TICS", apps.GHMPlain(), tics.RTTICS},
		{"TinyOS", apps.GHMTinyOS(), tics.RTPlain},
		{"TinyOS + TICS", apps.GHMTinyOS(), tics.RTTICS},
	}

	tbl := &table{header: []string{"intermittency", "program", "moisture", "temp", "compute", "send", "consistent"}}
	var rows []Table1Row
	for _, rate := range rates {
		for _, v := range variants {
			img, err := tics.Build(v.app.Source, tics.BuildOptions{Runtime: v.runtime})
			if err != nil {
				return Report{}, err
			}
			m, err := tics.NewMachine(img, tics.RunOptions{
				Power:          intermittencyTrace(rate),
				Sensors:        sensors.NewBank(7),
				AutoCpPeriodMs: 10,
				MaxWallMs:      wallBudgetMs,
				MaxCycles:      1_000_000_000,
			})
			if err != nil {
				return Report{}, err
			}
			res, err := m.Run()
			if err != nil {
				return Report{}, err
			}
			row := Table1Row{
				Rate:       rate,
				Variant:    v.label,
				Counts:     res.MarkCounts,
				Consistent: len(res.MarkCounts) == 4 && spread(res.MarkCounts) <= 1,
			}
			rows = append(rows, row)
			tbl.add(
				fmt.Sprintf("%.0f%%", rate*100),
				v.label,
				fmt.Sprintf("%d", at(row.Counts, 0)),
				fmt.Sprintf("%d", at(row.Counts, 1)),
				fmt.Sprintf("%d", at(row.Counts, 2)),
				fmt.Sprintf("%d", at(row.Counts, 3)),
				checkmark(row.Consistent),
			)
		}
	}

	text := "Table 1 — GHM routine executions over a fixed " +
		fmt.Sprintf("%ds wall budget under pre-programmed reset patterns.\n", wallBudgetMs/1000) +
		"Paper shape: only the TICS variants stay consistent below 100% intermittency.\n\n" + tbl.String()
	return Report{
		ID:    "table1",
		Title: "GHM legacy code under intermittent power",
		Text:  text,
		Data:  map[string]any{"rows": rows},
	}, nil
}

func at(xs []int64, i int) int64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
