package experiments

import (
	"fmt"
	"strings"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/timekeeper"
)

// AblationPoint is one configuration's outcome in an ablation sweep.
type AblationPoint struct {
	Study       string
	Config      string
	Cycles      int64
	Checkpoints int64
	Extra       map[string]int64
}

// Ablations renders the design-choice studies DESIGN.md calls out, as
// tables (the benchmark forms live in bench_test.go):
//
//   - working-stack segment size (the S1/S2 trade-off) on BC,
//   - checkpoint placement policy on CF,
//   - undo-log granularity (word vs block+dedup) on CF,
//   - fixed vs differential checkpoints on BC,
//   - persistent-clock error model vs AR freshness decisions.
func Ablations() (Report, error) {
	var points []AblationPoint
	var b strings.Builder
	b.WriteString("Ablations — the design choices behind TICS, isolated.\n")

	record := func(study, config string, cycles, cps int64, extra map[string]int64) {
		points = append(points, AblationPoint{Study: study, Config: config, Cycles: cycles, Checkpoints: cps, Extra: extra})
	}

	runIntermittent := func(src string, opts tics.BuildOptions, cpMs float64, failK int64) (int64, int64, map[string]int64, error) {
		img, err := tics.Build(src, opts)
		if err != nil {
			return 0, 0, nil, err
		}
		m, err := tics.NewMachine(img, tics.RunOptions{
			Power:          &power.FailEvery{Cycles: failK, OffMs: 10},
			Sensors:        sensors.NewBank(3),
			AutoCpPeriodMs: cpMs,
			MaxCycles:      500_000_000,
		})
		if err != nil {
			return 0, 0, nil, err
		}
		res, err := m.Run()
		if err != nil {
			return 0, 0, nil, err
		}
		if !res.Completed {
			return res.Cycles, res.TotalCheckpoints, res.RuntimeStats, fmt.Errorf("did not complete (starved=%v)", res.Starved)
		}
		return res.Cycles, res.TotalCheckpoints, res.RuntimeStats, nil
	}

	// --- Segment size (BC, intermittent) ---
	b.WriteString("\n[segment size] BC under fail-every-30k cycles (+10 ms timer)\n")
	tbl := &table{header: []string{"segment (B)", "cycles", "checkpoints"}}
	prog, err := tics.Compile(apps.BC().Source, 2)
	if err != nil {
		return Report{}, err
	}
	for _, seg := range []int{prog.MinSegmentBytes(), 128, 256, 512} {
		cycles, cps, _, err := runIntermittent(apps.BC().Source,
			tics.BuildOptions{Runtime: tics.RTTICS, SegmentBytes: seg, StackBytes: 2048}, 10, 30_000)
		if err != nil {
			return Report{}, fmt.Errorf("segment %d: %w", seg, err)
		}
		record("segment-size", fmt.Sprintf("%dB", seg), cycles, cps, nil)
		tbl.add(fmt.Sprintf("%d", seg), fmt.Sprintf("%d", cycles), fmt.Sprintf("%d", cps))
	}
	b.WriteString(tbl.String())

	// --- Checkpoint placement policy (CF) ---
	b.WriteString("\n[checkpoint policy] CF under fail-every-25k cycles\n")
	tbl = &table{header: []string{"policy", "cycles", "checkpoints"}}
	for _, c := range []struct {
		name    string
		kind    tics.RuntimeKind
		segment int
		timerMs float64
	}{
		{"stack-change only", tics.RTTICS, 0, 0},
		{"timer only (512B seg)", tics.RTTICS, 512, 10},
		{"stack-change + timer", tics.RTTICS, 0, 10},
		{"task-boundary (ST)", tics.RTTICSTask, 512, 10},
	} {
		cycles, cps, _, err := runIntermittent(apps.CF().Source,
			tics.BuildOptions{Runtime: c.kind, SegmentBytes: c.segment, StackBytes: 2048}, c.timerMs, 25_000)
		if err != nil {
			return Report{}, fmt.Errorf("policy %s: %w", c.name, err)
		}
		record("checkpoint-policy", c.name, cycles, cps, nil)
		tbl.add(c.name, fmt.Sprintf("%d", cycles), fmt.Sprintf("%d", cps))
	}
	b.WriteString(tbl.String())

	// --- Undo-log granularity (CF, continuous: isolates logging cost) ---
	b.WriteString("\n[undo granularity] CF, continuous power (+10 ms timer)\n")
	tbl = &table{header: []string{"block", "cycles", "logged stores", "dedup hits"}}
	for _, block := range []int{4, 16, 32} {
		img, err := tics.Build(apps.CF().Source, tics.BuildOptions{
			Runtime: tics.RTTICS, SegmentBytes: 512, StackBytes: 2048, UndoBlockBytes: block,
		})
		if err != nil {
			return Report{}, err
		}
		m, err := tics.NewMachine(img, tics.RunOptions{AutoCpPeriodMs: 10})
		if err != nil {
			return Report{}, err
		}
		res, err := m.Run()
		if err != nil || !res.Completed {
			return Report{}, fmt.Errorf("block %d: %v %+v", block, err, res.Completed)
		}
		extra := map[string]int64{
			"logged": res.RuntimeStats["stores-logged"],
			"dedup":  res.RuntimeStats["stores-block-hit"],
		}
		record("undo-granularity", fmt.Sprintf("%dB", block), res.Cycles, res.TotalCheckpoints, extra)
		tbl.add(fmt.Sprintf("%d B", block), fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", extra["logged"]), fmt.Sprintf("%d", extra["dedup"]))
	}
	b.WriteString(tbl.String())
	b.WriteString("(bigger blocks: a hot global pays the 308-cycle logging cost once per epoch)\n")

	// --- Fixed vs differential checkpoints (BC, intermittent) ---
	b.WriteString("\n[differential checkpoints] BC, 512B segments, fail-every-30k (+5 ms timer)\n")
	tbl = &table{header: []string{"mode", "cycles", "checkpoints"}}
	for _, diff := range []bool{false, true} {
		name := "fixed (whole segment)"
		if diff {
			name = "differential (used tail)"
		}
		cycles, cps, _, err := runIntermittent(apps.BC().Source, tics.BuildOptions{
			Runtime: tics.RTTICS, SegmentBytes: 512, StackBytes: 2048, DifferentialCheckpoints: diff,
		}, 5, 30_000)
		if err != nil {
			return Report{}, fmt.Errorf("differential=%v: %w", diff, err)
		}
		record("differential", name, cycles, cps, nil)
		tbl.add(name, fmt.Sprintf("%d", cycles), fmt.Sprintf("%d", cps))
	}
	b.WriteString(tbl.String())
	b.WriteString("(differential is cheaper on shallow stacks but forfeits the fixed worst-case bound)\n")

	// --- Timekeeper error model (AR freshness decisions) ---
	b.WriteString("\n[timekeeper] AR on harvested power: committed freshness decisions per clock\n")
	tbl = &table{header: []string{"clock", "fresh windows", "stale discarded"}}
	img, err := tics.Build(apps.AR().Source, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		return Report{}, err
	}
	for _, c := range []struct {
		name string
		mk   func() timekeeper.Keeper
	}{
		{"perfect", func() timekeeper.Keeper { return &timekeeper.Perfect{} }},
		{"rtc 10 ms", func() timekeeper.Keeper { return &timekeeper.RTC{ResolutionMs: 10} }},
		{"remanence ±10%", func() timekeeper.Keeper { return timekeeper.NewRemanence(0.1, 5000, 3) }},
		{"remanence ±50%", func() timekeeper.Keeper { return timekeeper.NewRemanence(0.5, 5000, 3) }},
	} {
		m, err := tics.NewMachine(img, tics.RunOptions{
			Power:          power.NewHarvester(40_000, 450, 0.8, 8),
			Clock:          c.mk(),
			Sensors:        sensors.NewBank(8),
			AutoCpPeriodMs: 10,
		})
		if err != nil {
			return Report{}, err
		}
		res, err := m.Run()
		if err != nil || !res.Completed {
			return Report{}, fmt.Errorf("clock %s: %v", c.name, err)
		}
		fresh, stale := at(res.MarkCounts, 3), at(res.MarkCounts, 4)
		record("timekeeper", c.name, res.Cycles, res.TotalCheckpoints,
			map[string]int64{"fresh": fresh, "stale": stale})
		tbl.add(c.name, fmt.Sprintf("%d", fresh), fmt.Sprintf("%d", stale))
	}
	b.WriteString(tbl.String())
	b.WriteString("(a sloppy remanence timer misjudges outages, flipping freshness verdicts)\n")

	return Report{
		ID:    "ablations",
		Title: "Design-choice ablation studies",
		Text:  b.String(),
		Data:  map[string]any{"points": points},
	}, nil
}
