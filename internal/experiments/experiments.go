// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each experiment returns a Report with the rendered
// rows/series in the paper's format plus structured data for tests and
// EXPERIMENTS.md. The cmd/ticsbench binary is a thin driver over this
// package.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	tics "repro"
	"repro/internal/power"
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Text  string
	// Data carries experiment-specific structured results keyed by a
	// stable name, for tests and benchmarks.
	Data map[string]any
}

// Runner regenerates one experiment.
type Runner func() (Report, error)

// Entry describes one registered experiment.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// Registry lists every experiment in paper order.
func Registry() []Entry {
	return []Entry{
		{"table1", "GHM legacy code under intermittent power", Table1},
		{"table2", "Time-consistency violations in AR", Table2},
		{"table3", "Memory consumption (InK / Chinchilla / TICS)", Table3},
		{"table4", "TICS runtime-operation overheads", Table4},
		{"table5", "Programming-model feature matrix", Table5},
		{"fig8", "Timely execution of the AR application", Fig8},
		{"fig9", "Benchmark performance", Fig9},
		{"fig10", "User study", Fig10},
		{"ablations", "Design-choice ablation studies", Ablations},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// RunAll executes every experiment.
func RunAll() ([]Report, error) {
	var out []Report
	for _, e := range Registry() {
		r, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// intermittencyTrace builds the pre-programmed reset pattern used by the
// Table 1 runs: a repeating mix of short and long powered bursts whose
// duty cycle is rate. rate ≥ 1 returns continuous power.
func intermittencyTrace(rate float64) power.Source {
	if rate >= 1 {
		return power.Continuous{}
	}
	pattern := []float64{12, 35, 8, 50, 20, 6, 28, 90} // on-times, ms
	var ws []power.Window
	for _, on := range pattern {
		ws = append(ws, power.Window{OnMs: on, OffMs: on * (1 - rate) / rate})
	}
	return &power.Trace{Windows: ws, Loop: true}
}

// runtimeLabel renders a runtime kind the way the paper's tables do.
func runtimeLabel(k tics.RuntimeKind) string {
	switch k {
	case tics.RTPlain:
		return "plain C"
	case tics.RTTICS:
		return "TICS"
	case tics.RTMementos:
		return "naive (MementOS-like)"
	case tics.RTChinchilla:
		return "Chinchilla"
	case tics.RTAlpaca:
		return "Alpaca"
	case tics.RTInK:
		return "InK"
	case tics.RTMayFly:
		return "MayFly"
	}
	return string(k)
}

// spread returns max-min over counts.
func spread(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

func checkmark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// sortedKeys returns map keys in order (stable rendering).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// table is a tiny fixed-width text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
