package experiments

import "repro/internal/survey"

// Fig10 regenerates the user study from the documented synthetic
// respondent model (see internal/survey and DESIGN.md): 90 respondents,
// three programs, TICS vs InK presentation, accuracy and search-time
// panels plus the Wilcoxon signed-rank verdict.
func Fig10() (Report, error) {
	res, err := survey.Run(survey.Config{N: 90, Seed: 2020})
	if err != nil {
		return Report{}, err
	}
	text := "Figure 10 — user study (synthetic respondent model; the analysis\n" +
		"pipeline — records → accuracy → time distributions → Wilcoxon — is real).\n\n" +
		res.Render()
	return Report{
		ID:    "fig10",
		Title: "User study",
		Text:  text,
		Data:  map[string]any{"result": res},
	}, nil
}
