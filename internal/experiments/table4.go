package experiments

import (
	"fmt"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/vm"
)

// Table4Measurement is one runtime-operation cost in cycles (1 cycle =
// 1 µs at the 1 MHz clock, matching the paper's units).
type Table4Measurement struct {
	Operation string
	Config    string
	Cycles    int64
}

// table4Rig builds a minimal TICS machine with the given segment size and
// powers it manually so runtime operations can be driven directly.
func table4Rig(segBytes int) (*vm.Machine, *core.TICS, error) {
	const src = `
int g;
void leaf() { g = g + 1; }
int main() { leaf(); return 0; }
`
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		return nil, nil, err
	}
	cfg := core.Config{SegmentBytes: segBytes, StackBytes: 2048, UndoCapBytes: 2048}
	img, err := link.Link(prog, core.Spec(cfg, prog.MinSegmentBytes()))
	if err != nil {
		return nil, nil, err
	}
	rt, err := core.New(img, cfg)
	if err != nil {
		return nil, nil, err
	}
	m, err := vm.New(vm.Config{Image: img, Runtime: rt,
		Recorder: obs.NewRecorder(obs.Options{RingCap: 256})})
	if err != nil {
		return nil, nil, err
	}
	m.PowerOn(1 << 40)
	if err := rt.Boot(m, true); err != nil {
		return nil, nil, err
	}
	return m, rt, nil
}

// Table4 reproduces the point-to-point runtime overhead table: checkpoint
// and restore cost per segment size, stack grow/shrink, instrumented
// pointer stores (working-stack hit vs undo-logged miss), and undo-log
// rollback, all measured by driving the real runtime operations and
// reading the machine's cycle counter.
func Table4() (Report, error) {
	var ms []Table4Measurement
	add := func(op, cfg string, cycles int64) {
		ms = append(ms, Table4Measurement{Operation: op, Config: cfg, Cycles: cycles})
	}

	// Checkpoint / restore across segment sizes.
	for _, seg := range []int{0, 64, 128, 256} {
		m, rt, err := table4Rig(seg)
		if err != nil {
			return Report{}, err
		}
		label := fmt.Sprintf("%d B seg.", rt.SegmentBytes())
		c0 := m.Cycles()
		if err := rt.Checkpoint(m, vm.CpManual); err != nil {
			return Report{}, err
		}
		measured := m.Cycles() - c0
		// Cross-check the measurement against the recorded checkpoint
		// begin/commit pair: the event-derived latency must agree.
		if lat, ok := lastCommitLatency(m.Recorder()); !ok || lat != measured {
			return Report{}, fmt.Errorf("table4 %s: recorded checkpoint latency %d != measured %d cycles",
				label, lat, measured)
		}
		add("Checkpoint logic", label, measured)
		c0 = m.Cycles()
		if err := rt.Boot(m, false); err != nil {
			return Report{}, err
		}
		add("Restore logic", label, m.Cycles()-c0)
	}

	// Pointer-store fast path (working stack) vs undo-logged path, and
	// rollback cost per entry.
	m, rt, err := table4Rig(128)
	if err != nil {
		return Report{}, err
	}
	inStack := m.Regs.SP - 8 // inside the working segment
	c0 := m.Cycles()
	if err := rt.LoggedStore(m, inStack, 4, 7); err != nil {
		return Report{}, err
	}
	add("Pointer access", "no log (4 B)", m.Cycles()-c0)

	gAddr, _ := m.Img.GlobalAddr("g")
	c0 = m.Cycles()
	if err := rt.LoggedStore(m, gAddr, 4, 7); err != nil {
		return Report{}, err
	}
	add("Pointer access", "log 4 B", m.Cycles()-c0)

	// Roll back from the undo log: measure a restore with one pending
	// entry against an empty-log restore.
	c0 = m.Cycles()
	if err := rt.Boot(m, false); err != nil {
		return Report{}, err
	}
	withEntry := m.Cycles() - c0
	c0 = m.Cycles()
	if err := rt.Boot(m, false); err != nil {
		return Report{}, err
	}
	empty := m.Cycles() - c0
	add("Roll back from undo log", "4 B", withEntry-empty)

	// Stack grow and shrink: pin SP near the segment floor so entering a
	// function forces the working stack onto the next segment.
	m, rt, err = table4Rig(128)
	if err != nil {
		return Report{}, err
	}
	segBase := m.Img.StackBase + m.Img.StackLen - uint32(rt.SegmentBytes())
	m.Regs.SP = segBase + 12
	m.Push(0xBEEF) // a fake return PC for the grow to move
	cpCost := measureCp(m, rt)
	c0 = m.Cycles()
	if err := rt.Enter(m, 0); err != nil { // function index 0 = leaf
		return Report{}, err
	}
	growTotal := m.Cycles() - c0
	add("Stack grow", "incl. forced checkpoint", growTotal)
	add("Stack grow", "excl. checkpoint", growTotal-cpCost)
	c0 = m.Cycles()
	if err := rt.Leave(m); err != nil {
		return Report{}, err
	}
	shrinkTotal := m.Cycles() - c0
	add("Stack shrink", "incl. enforced checkpoint", shrinkTotal)
	add("Stack shrink", "excl. checkpoint", shrinkTotal-cpCost)

	// Checkpoint-latency distribution over a whole benchmark run: the
	// per-commit latencies land in the checkpoint_latency_cycles histogram,
	// and the paper's "typical vs worst case" story is the p50/p99 spread
	// (stack-change checkpoints copy only the working segment; timer
	// checkpoints may catch a deeper stack).
	p50, p99, err := checkpointLatencyQuantiles()
	if err != nil {
		return Report{}, err
	}
	add("Checkpoint latency (AR run)", "p50", p50)
	add("Checkpoint latency (AR run)", "p99", p99)

	tbl := &table{header: []string{"operation", "configuration", "duration (µs @ 1 MHz)"}}
	for _, r := range ms {
		tbl.add(r.Operation, r.Config, fmt.Sprintf("%d", r.Cycles))
	}
	text := "Table 4 — TICS runtime-operation overheads (simulated cycles; the\n" +
		"paper measured 264/464/656 µs checkpoints at 0/64/256 B segments,\n" +
		"345 µs grow/shrink, 13 vs 308 µs pointer stores, 234 µs rollback).\n\n" +
		tbl.String()
	return Report{
		ID:    "table4",
		Title: "TICS runtime-operation overheads",
		Text:  text,
		Data:  map[string]any{"measurements": ms},
	}, nil
}

// checkpointLatencyQuantiles runs the AR benchmark on TICS under
// duty-cycled power (timer checkpoints on) with an attached auditor and
// returns the p50/p99 of the committed-checkpoint latency histogram.
func checkpointLatencyQuantiles() (int64, int64, error) {
	img, err := tics.Build(apps.AR().Source, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		return 0, 0, err
	}
	rec := obs.NewRecorder(obs.Options{RingCap: 64})
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          &power.DutyCycle{Rate: 0.48, OnMs: 40},
		Sensors:        sensors.NewBank(3),
		AutoCpPeriodMs: 10,
		Recorder:       rec,
	})
	if err != nil {
		return 0, 0, err
	}
	aud, err := audit.Attach(m, audit.Options{})
	if err != nil {
		return 0, 0, err
	}
	res, err := m.Run()
	if err != nil {
		return 0, 0, err
	}
	if !res.Completed {
		return 0, 0, fmt.Errorf("table4 latency run did not complete (starved=%v)", res.Starved)
	}
	if err := aud.Err(); err != nil {
		return 0, 0, err
	}
	h := rec.Metrics().Histogram("checkpoint_latency_cycles")
	if h == nil || h.Count == 0 {
		return 0, 0, fmt.Errorf("table4: no checkpoint latencies recorded")
	}
	return int64(h.Quantile(0.50)), int64(h.Quantile(0.99)), nil
}

// lastCommitLatency returns the event-derived latency (Arg1) of the most
// recent checkpoint-commit event in the machine's flight recorder.
func lastCommitLatency(rec *obs.Recorder) (int64, bool) {
	evs := rec.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == obs.EvCheckpointCommit {
			return evs[i].Arg1, true
		}
	}
	return 0, false
}

// measureCp samples the current checkpoint cost on a scratch basis.
func measureCp(m *vm.Machine, rt *core.TICS) int64 {
	c0 := m.Cycles()
	if err := rt.Checkpoint(m, vm.CpManual); err != nil {
		return 0
	}
	return m.Cycles() - c0
}
