package experiments

import (
	"strings"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/taskrt"
)

// Table5Row is one runtime's feature set. Pointer and recursion support
// are *probed* (the build pipeline genuinely accepts or rejects the
// programs); scalability reflects whether the checkpoint payload is
// bounded independent of program state; timely execution and porting
// effort are properties of the programming model.
type Table5Row struct {
	Runtime   string
	Pointers  bool
	Recursion bool
	Scalable  bool
	Timely    bool
	Porting   string // "none" or "high"
}

// Table5 regenerates the state-of-the-art programming-model comparison.
func Table5() (Report, error) {
	swap := apps.Swap().Source // pointers, no recursion
	bc := apps.BC().Source     // recursion (and arrays)

	probe := func(src string, opts tics.BuildOptions) bool {
		_, err := tics.Build(src, opts)
		return err == nil
	}
	taskOpts := func(k tics.RuntimeKind) tics.BuildOptions {
		// A trivially acyclic graph, so the probe verdict reflects the
		// language feature, not the graph shape.
		return tics.BuildOptions{Runtime: k, Tasks: apps.BC().Tasks, Edges: []taskrt.Edge{{From: 0, To: 1}}}
	}

	rows := []Table5Row{
		{
			Runtime:   "MayFly",
			Pointers:  probe(swap, taskOpts(tics.RTMayFly)),
			Recursion: probe(bc, taskOpts(tics.RTMayFly)),
			Scalable:  false, // per-edge data channels grow with the graph
			Timely:    true,
			Porting:   "high",
		},
		{
			Runtime:   "Alpaca",
			Pointers:  probe(swap, taskOpts(tics.RTAlpaca)),
			Recursion: probe(bc, taskOpts(tics.RTAlpaca)),
			Scalable:  false,
			Timely:    false,
			Porting:   "high",
		},
		{
			Runtime:   "Chinchilla",
			Pointers:  probe(swap, tics.BuildOptions{Runtime: tics.RTChinchilla}),
			Recursion: probe(bc, tics.BuildOptions{Runtime: tics.RTChinchilla}),
			Scalable:  false, // promoted statics double-buffered wholesale
			Timely:    false,
			Porting:   "none",
		},
		{
			Runtime:   "InK",
			Pointers:  probe(swap, taskOpts(tics.RTInK)),
			Recursion: probe(bc, taskOpts(tics.RTInK)),
			Scalable:  false,
			Timely:    true,
			Porting:   "high",
		},
		{
			Runtime:   "naive (MementOS-like)",
			Pointers:  probe(swap, tics.BuildOptions{Runtime: tics.RTMementos}),
			Recursion: probe(bc, tics.BuildOptions{Runtime: tics.RTMementos}),
			Scalable:  false, // checkpoints the whole stack and all globals
			Timely:    false,
			Porting:   "none",
		},
		{
			Runtime:   "TICS (this work)",
			Pointers:  probe(swap, tics.BuildOptions{Runtime: tics.RTTICS}),
			Recursion: probe(bc, tics.BuildOptions{Runtime: tics.RTTICS}),
			Scalable:  true, // bounded working-segment checkpoints
			Timely:    true,
			Porting:   "none",
		},
	}

	tbl := &table{header: []string{"runtime", "pointers", "recursion", "scalability", "timely exec", "porting effort"}}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		scal := "poor"
		if r.Scalable {
			scal = "high"
		}
		tbl.add(r.Runtime, yn(r.Pointers), yn(r.Recursion), scal, yn(r.Timely), r.Porting)
	}

	var b strings.Builder
	b.WriteString("Table 5 — programming-model feature matrix. Pointer and recursion\n")
	b.WriteString("columns are probed by compiling the swap (pointers) and bitcount\n")
	b.WriteString("(recursion) programs against each build pipeline.\n\n")
	b.WriteString(tbl.String())
	return Report{
		ID:    "table5",
		Title: "Programming-model feature matrix",
		Text:  b.String(),
		Data:  map[string]any{"rows": rows},
	}, nil
}
