package experiments

import (
	"fmt"

	tics "repro"
	"repro/internal/apps"
)

// Table3Cell is one (app, runtime) memory measurement in bytes.
type Table3Cell struct {
	App     string
	Runtime string
	Text    int
	Data    int // initialized + zero-initialized (RAM image) + runtime buffers
	Err     string
}

// Table3 reproduces the memory-consumption comparison: .text and .data
// footprints of AR, BC and CF under InK (task port), Chinchilla
// (static-promotion build; BC needs its hand-derecursed variant, exactly
// as the paper notes) and TICS. The expected shape: Chinchilla's
// local-to-global promotion and double buffering dominate both sections;
// TICS's .data stays small because only the working segment and touched
// globals are double-buffered.
func Table3() (Report, error) {
	benches := []apps.App{apps.AR(), apps.BC(), apps.CF()}
	tbl := &table{header: []string{"app", "runtime", ".text (B)", ".data (B)"}}
	var cells []Table3Cell

	measure := func(appName, label, src string, opts tics.BuildOptions) {
		img, err := tics.Build(src, opts)
		cell := Table3Cell{App: appName, Runtime: label}
		if err != nil {
			cell.Err = err.Error()
			tbl.add(appName, label, "✗", "✗")
		} else {
			cell.Text = img.Sect.Text
			cell.Data = img.Sect.Data + img.Sect.BSS
			tbl.add(appName, label, fmt.Sprintf("%d", cell.Text), fmt.Sprintf("%d", cell.Data))
		}
		cells = append(cells, cell)
	}

	for _, app := range benches {
		measure(app.Name, "InK", app.TaskSource,
			tics.BuildOptions{Runtime: tics.RTInK, Tasks: app.Tasks, Edges: app.Edges})
		chinSrc := app.Source
		chinName := app.Name
		if app.Name == "bc" {
			chinSrc = apps.BCNoRecursion().Source // the paper's hand-modified BC
			chinName = "bc*"
		}
		measure(chinName, "Chinchilla", chinSrc, tics.BuildOptions{Runtime: tics.RTChinchilla})
		measure(app.Name, "TICS", app.Source, tics.BuildOptions{Runtime: tics.RTTICS})
	}

	text := "Table 3 — memory consumption per application and runtime.\n" +
		"(.data column = initialized + zero-initialized globals + the runtime's\n" +
		"static buffers; bc* is the hand-derecursed BC Chinchilla requires.)\n" +
		"Paper shape: Chinchilla ≫ TICS on both sections; TICS .data well under InK's.\n\n" +
		tbl.String()
	return Report{
		ID:    "table3",
		Title: "Memory consumption (InK / Chinchilla / TICS)",
		Text:  text,
		Data:  map[string]any{"cells": cells},
	}, nil
}
