package mem_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestRegionOverlapRejected(t *testing.T) {
	m := mem.New()
	if err := m.AddRegion(mem.Region{Kind: mem.RegionText, Name: "a", Base: 0x100, Len: 0x100}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(mem.Region{Kind: mem.RegionData, Name: "b", Base: 0x180, Len: 0x100}); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := m.AddRegion(mem.Region{Kind: mem.RegionData, Name: "c", Base: 0x200, Len: 0x100}); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
	if err := m.AddRegion(mem.Region{Kind: mem.RegionData, Name: "d", Base: 0xFFFF, Len: 2}); err == nil {
		t.Fatal("out-of-space region accepted")
	}
	if err := m.AddRegion(mem.Region{Kind: mem.RegionData, Name: "e", Base: 0x400, Len: 0}); err == nil {
		t.Fatal("empty region accepted")
	}
}

func TestRegionLookup(t *testing.T) {
	m := mem.New()
	if err := m.AddRegion(mem.Region{Kind: mem.RegionStack, Name: "stack", Base: 0x8000, Len: 0x800}); err != nil {
		t.Fatal(err)
	}
	r, ok := m.RegionFor(0x8100)
	if !ok || r.Name != "stack" {
		t.Fatalf("RegionFor: %v %v", r, ok)
	}
	if _, ok := m.RegionFor(0x7FFF); ok {
		t.Fatal("found a region outside any")
	}
	r, ok = m.Region(mem.RegionStack)
	if !ok || r.Base != 0x8000 {
		t.Fatalf("Region(kind): %v %v", r, ok)
	}
}

// TestWordRoundTrip is a property test: any word written at any aligned
// address reads back identically and byte-decomposes little-endian.
func TestWordRoundTrip(t *testing.T) {
	m := mem.New()
	check := func(addr uint16, v uint32) bool {
		a := uint32(addr) &^ 3
		if a+4 > mem.Size {
			a = mem.Size - 4
		}
		m.WriteWord(a, v)
		if m.ReadWord(a) != v {
			return false
		}
		return uint32(m.ReadByteAt(a)) == v&0xFF &&
			uint32(m.ReadByteAt(a+3)) == v>>24
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyWithinAndZero(t *testing.T) {
	m := mem.New()
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.WriteBytes(0x100, src)
	m.CopyWithin(0x200, 0x100, len(src))
	if got := m.ReadBytes(0x200, len(src)); !bytes.Equal(got, src) {
		t.Fatalf("copy: %v", got)
	}
	m.Zero(0x200, 4)
	if got := m.ReadBytes(0x200, len(src)); !bytes.Equal(got, []byte{0, 0, 0, 0, 5, 6, 7, 8}) {
		t.Fatalf("zero: %v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := mem.New()
	m.WriteWord(0x40, 0xCAFEBABE)
	snap := m.Snapshot()
	m.WriteWord(0x40, 1)
	m.Restore(snap)
	if m.ReadWord(0x40) != 0xCAFEBABE {
		t.Fatal("restore lost data")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := mem.New()
	m.WriteWord(0, 1)
	m.ReadWord(0)
	m.WriteByteAt(8, 7)
	s := m.Stats()
	if s.Writes != 2 || s.Reads != 1 || s.WriteBytes != 5 || s.ReadBytes != 4 {
		t.Fatalf("stats: %+v", s)
	}
	m.ResetStats()
	if m.Stats() != (mem.Stats{}) {
		t.Fatal("reset failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range write")
		}
	}()
	mem.New().WriteWord(mem.Size-2, 1)
}
