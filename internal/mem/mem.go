// Package mem models the byte-addressable memory of an MSP430FR5969-class
// intermittent computing platform: a 64 KB address space whose main memory
// is non-volatile FRAM. Because main memory is non-volatile, a power
// failure preserves everything written to it — including stores that a
// checkpointing runtime has not yet committed, which is exactly the hazard
// model TICS is built around. Only the CPU register file (held by the VM,
// not by this package) is volatile.
//
// The package also provides the region table used by the linker to lay out
// the runtime area, .text, .data, .bss and stack, and gathers access
// statistics used by the experiment harnesses.
//
// # Copy-on-write forks
//
// A fleet simulates many devices running one image; their memories differ
// only where runtime state diverges. Memory is therefore paged: the 64 KB
// space is 64 pages of 1 KB, and a Memory is a page table. A flat memory
// (New) owns all of its pages. A forked memory (Fork) starts with every
// page-table entry pointing into one immutable Base snapshot shared by all
// forks, and materializes a private copy of a page on first write. Reads
// and writes go through the same page-table indexing in both modes, so
// flat and forked memories have identical semantics — bounds checks,
// panics, and access statistics included.
package mem

import (
	"bytes"
	"fmt"
	"math/bits"
	"sort"
)

// Size is the size of the simulated address space in bytes (64 KB, matching
// the FRAM capacity of the MSP430FR5969).
const Size = 64 * 1024

// WordBytes is the machine word size. The paper's MCU is a 16-bit part; we
// widen the word to 32 bits so that millisecond timestamps fit in a plain
// int (see DESIGN.md), while keeping the 64 KB address space.
const WordBytes = 4

// PageShift selects 1 KB pages: small enough that a device touching a few
// hundred bytes of globals plus a stack segment materializes only a
// handful of pages, large enough that the whole space is NumPages = 64
// pages and the dirty set fits one uint64.
const (
	PageShift = 10
	PageSize  = 1 << PageShift
	pageMask  = PageSize - 1
	NumPages  = Size / PageSize
)

// The dirty set is a single uint64 bitmask; a page-size change that breaks
// that invariant must not compile.
const _ uint64 = 1 << (NumPages - 1)

// RegionKind classifies a layout region.
type RegionKind int

const (
	// RegionReserved is the low-address reserved area (vector-table analog).
	RegionReserved RegionKind = iota
	// RegionRuntime holds runtime-private persistent state: checkpoint
	// buffers, the undo log, segment control blocks.
	RegionRuntime
	// RegionText holds program code.
	RegionText
	// RegionData holds initialized globals.
	RegionData
	// RegionBSS holds zero-initialized globals, timestamp shadow slots and
	// mark counters.
	RegionBSS
	// RegionStack holds the call stack (for TICS: the segment array).
	RegionStack
)

func (k RegionKind) String() string {
	switch k {
	case RegionReserved:
		return "reserved"
	case RegionRuntime:
		return "runtime"
	case RegionText:
		return ".text"
	case RegionData:
		return ".data"
	case RegionBSS:
		return ".bss"
	case RegionStack:
		return "stack"
	}
	return fmt.Sprintf("region(%d)", int(k))
}

// Region is a half-open address interval [Base, Base+Len).
type Region struct {
	Kind RegionKind
	Name string
	Base uint32
	Len  uint32
}

// End returns one past the last address of the region.
func (r Region) End() uint32 { return r.Base + r.Len }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool { return addr >= r.Base && addr < r.End() }

// Stats counts memory traffic. The experiment harnesses use these to report
// how much NV traffic each runtime generates.
type Stats struct {
	Reads      uint64 // read operations
	Writes     uint64 // write operations
	ReadBytes  uint64
	WriteBytes uint64
}

// Base is an immutable full-memory snapshot that forked memories share.
// Once created it must never be written; every Memory that forks from it
// reads shared pages directly out of its data.
type Base struct {
	data    []byte // len Size
	regions []Region
}

func (b *Base) page(i int) []byte {
	return b.data[i*PageSize : (i+1)*PageSize : (i+1)*PageSize]
}

// Memory is the simulated non-volatile main memory: a page table over
// 64 × 1 KB pages. Every entry is always non-nil — it points either into
// the shared base snapshot (bit clear in dirty) or at a private, writable
// page (bit set). A flat memory owns all pages from the start.
type Memory struct {
	pages   [NumPages][]byte
	dirty   uint64 // bit i set: pages[i] is private and writable
	base    *Base  // nil for flat memories
	regions []Region
	stats   Stats
}

// New returns a zeroed flat memory with no layout regions. All pages are
// private slices of one contiguous allocation.
func New() *Memory {
	m := &Memory{dirty: ^uint64(0)}
	buf := make([]byte, Size)
	for i := range m.pages {
		m.pages[i] = buf[i*PageSize : (i+1)*PageSize : (i+1)*PageSize]
	}
	return m
}

// Freeze captures the current contents and region table as an immutable
// Base for Fork. The linker calls this once per image, after loading.
func (m *Memory) Freeze() *Base {
	return &Base{data: m.Snapshot(), regions: m.Regions()}
}

// Fork returns a copy-on-write view of base: every page-table entry
// references the shared snapshot, and a private page is materialized only
// on the first write to it. The fork inherits base's region table.
func Fork(b *Base) *Memory {
	m := &Memory{base: b}
	for i := range m.pages {
		m.pages[i] = b.page(i)
	}
	m.regions = append([]Region(nil), b.regions...)
	return m
}

// ResetToBase rebinds the memory to b's contents, regions, and zeroed
// stats, as if freshly forked. When the memory already forks from b, its
// private pages are refilled from the snapshot rather than released: a
// pooled device re-running the same image dirties the same pages, so
// keeping them avoids reallocating on every reuse.
func (m *Memory) ResetToBase(b *Base) {
	if m.base == b && b != nil {
		for d := m.dirty; d != 0; d &= d - 1 {
			i := bits.TrailingZeros64(d)
			copy(m.pages[i], b.page(i))
		}
	} else {
		m.base = b
		for i := range m.pages {
			m.pages[i] = b.page(i)
		}
		m.dirty = 0
	}
	m.regions = append(m.regions[:0], b.regions...)
	m.stats = Stats{}
}

// PrivatePages returns how many pages the memory owns rather than shares
// with a base (always NumPages for a flat memory).
func (m *Memory) PrivatePages() int { return bits.OnesCount64(m.dirty) }

// wpage returns page pg as a writable slice, materializing a private copy
// of a shared page first.
func (m *Memory) wpage(pg uint32) []byte {
	p := m.pages[pg]
	if m.dirty&(1<<pg) == 0 {
		np := make([]byte, PageSize)
		copy(np, p)
		m.pages[pg] = np
		m.dirty |= 1 << pg
		p = np
	}
	return p
}

// Stats returns a copy of the accumulated access statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the access statistics.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// AddRegion registers a layout region. Regions must not overlap; the linker
// relies on this check to catch layout bugs.
func (m *Memory) AddRegion(r Region) error {
	if r.Len == 0 {
		return fmt.Errorf("mem: region %q is empty", r.Name)
	}
	if uint64(r.Base)+uint64(r.Len) > Size {
		return fmt.Errorf("mem: region %q [%#x,%#x) exceeds the %d-byte address space",
			r.Name, r.Base, uint64(r.Base)+uint64(r.Len), Size)
	}
	for _, o := range m.regions {
		if r.Base < o.End() && o.Base < r.End() {
			return fmt.Errorf("mem: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				r.Name, r.Base, r.End(), o.Name, o.Base, o.End())
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return nil
}

// Regions returns the registered regions in address order.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// RegionFor returns the region containing addr, if any.
func (m *Memory) RegionFor(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Region returns the first region of the given kind, if any.
func (m *Memory) Region(kind RegionKind) (Region, bool) {
	for _, r := range m.regions {
		if r.Kind == kind {
			return r, true
		}
	}
	return Region{}, false
}

func (m *Memory) check(addr uint32, n int, what string) {
	if uint64(addr)+uint64(n) > Size {
		panic(fmt.Sprintf("mem: %s of %d bytes at %#x out of range", what, n, addr))
	}
}

// peekRange copies len(b) bytes starting at addr into b, page by page,
// without stats. Callers bounds-check first.
func (m *Memory) peekRange(addr uint32, b []byte) {
	for len(b) > 0 {
		c := copy(b, m.pages[addr>>PageShift][addr&pageMask:])
		addr += uint32(c)
		b = b[c:]
	}
}

// pokeRange stores b starting at addr, page by page, without stats,
// materializing pages as needed. A shared page that is overwritten in
// full skips the materializing copy. Callers bounds-check first.
func (m *Memory) pokeRange(addr uint32, b []byte) {
	for len(b) > 0 {
		pg, off := addr>>PageShift, addr&pageMask
		var p []byte
		if off == 0 && len(b) >= PageSize && m.dirty&(1<<pg) == 0 {
			p = make([]byte, PageSize)
			m.pages[pg] = p
			m.dirty |= 1 << pg
		} else {
			p = m.wpage(pg)
		}
		c := copy(p[off:], b)
		addr += uint32(c)
		b = b[c:]
	}
}

// ReadByte reads one byte.
func (m *Memory) ReadByteAt(addr uint32) byte {
	m.check(addr, 1, "read")
	m.stats.Reads++
	m.stats.ReadBytes++
	return m.pages[addr>>PageShift][addr&pageMask]
}

// WriteByte writes one byte.
func (m *Memory) WriteByteAt(addr uint32, v byte) {
	m.check(addr, 1, "write")
	m.stats.Writes++
	m.stats.WriteBytes++
	m.wpage(addr >> PageShift)[addr&pageMask] = v
}

// ReadWord reads a 32-bit little-endian word.
func (m *Memory) ReadWord(addr uint32) uint32 {
	m.check(addr, WordBytes, "read")
	m.stats.Reads++
	m.stats.ReadBytes += WordBytes
	return m.peekWord(addr)
}

func (m *Memory) peekWord(addr uint32) uint32 {
	if off := addr & pageMask; off <= PageSize-WordBytes {
		p := m.pages[addr>>PageShift]
		return uint32(p[off]) | uint32(p[off+1])<<8 |
			uint32(p[off+2])<<16 | uint32(p[off+3])<<24
	}
	var b [WordBytes]byte
	m.peekRange(addr, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// WriteWord writes a 32-bit little-endian word.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	m.check(addr, WordBytes, "write")
	m.stats.Writes++
	m.stats.WriteBytes += WordBytes
	if off := addr & pageMask; off <= PageSize-WordBytes {
		p := m.wpage(addr >> PageShift)
		p[off] = byte(v)
		p[off+1] = byte(v >> 8)
		p[off+2] = byte(v >> 16)
		p[off+3] = byte(v >> 24)
		return
	}
	var b [WordBytes]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	m.pokeRange(addr, b[:])
}

// ReadInt reads a word as a signed 32-bit integer.
func (m *Memory) ReadInt(addr uint32) int32 { return int32(m.ReadWord(addr)) }

// WriteInt writes a signed 32-bit integer.
func (m *Memory) WriteInt(addr uint32, v int32) { m.WriteWord(addr, uint32(v)) }

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	m.check(addr, n, "read")
	m.stats.Reads++
	m.stats.ReadBytes += uint64(n)
	out := make([]byte, n)
	m.peekRange(addr, out)
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	m.check(addr, len(b), "write")
	m.stats.Writes++
	m.stats.WriteBytes += uint64(len(b))
	m.pokeRange(addr, b)
}

// CopyWithin copies n bytes from src to dst inside the address space,
// counting both the read and the write traffic. Used by checkpoint commits
// and stack-segment moves. Overlapping ranges behave like memmove.
func (m *Memory) CopyWithin(dst, src uint32, n int) {
	m.check(src, n, "read")
	m.check(dst, n, "write")
	m.stats.Reads++
	m.stats.Writes++
	m.stats.ReadBytes += uint64(n)
	m.stats.WriteBytes += uint64(n)
	if n <= 0 || dst == src {
		return
	}
	if dst < src {
		for n > 0 {
			doff, soff := dst&pageMask, src&pageMask
			c := n
			if r := int(PageSize - doff); r < c {
				c = r
			}
			if r := int(PageSize - soff); r < c {
				c = r
			}
			copy(m.wpage(dst >> PageShift)[doff:doff+uint32(c)],
				m.pages[src>>PageShift][soff:soff+uint32(c)])
			dst += uint32(c)
			src += uint32(c)
			n -= c
		}
		return
	}
	// Copy backward so an overlapping forward-shifted range is not
	// clobbered before it is read.
	de, se := dst+uint32(n), src+uint32(n)
	for n > 0 {
		dstart := (de - 1) &^ pageMask
		sstart := (se - 1) &^ pageMask
		c := n
		if r := int(de - dstart); r < c {
			c = r
		}
		if r := int(se - sstart); r < c {
			c = r
		}
		copy(m.wpage(dstart >> PageShift)[de-uint32(c)-dstart:de-dstart],
			m.pages[sstart>>PageShift][se-uint32(c)-sstart:se-sstart])
		de -= uint32(c)
		se -= uint32(c)
		n -= c
	}
}

// Zero clears n bytes starting at addr. A shared page zeroed in full is
// replaced by a fresh private page without copying the old contents.
func (m *Memory) Zero(addr uint32, n int) {
	m.check(addr, n, "write")
	m.stats.Writes++
	m.stats.WriteBytes += uint64(n)
	for n > 0 {
		pg, off := addr>>PageShift, addr&pageMask
		c := int(PageSize - off)
		if c > n {
			c = n
		}
		if off == 0 && c == PageSize && m.dirty&(1<<pg) == 0 {
			m.pages[pg] = make([]byte, PageSize)
			m.dirty |= 1 << pg
		} else {
			clear(m.wpage(pg)[off : off+uint32(c)])
		}
		addr += uint32(c)
		n -= c
	}
}

// Peek copies len(b) bytes starting at addr into b without touching the
// access statistics. Observers (the trace auditor) use it so that
// watching a run cannot perturb the run's own traffic accounting.
func (m *Memory) Peek(addr uint32, b []byte) {
	m.check(addr, len(b), "peek")
	m.peekRange(addr, b)
}

// PeekWord reads a 32-bit little-endian word without touching the access
// statistics.
func (m *Memory) PeekWord(addr uint32) uint32 {
	m.check(addr, WordBytes, "peek")
	return m.peekWord(addr)
}

// Snapshot returns a copy of the full memory contents. Tests use snapshots
// to compare intermittent executions against the continuous-power oracle.
func (m *Memory) Snapshot() []byte {
	out := make([]byte, Size)
	for i, p := range m.pages {
		copy(out[i*PageSize:], p)
	}
	return out
}

// Restore overwrites the full memory contents from a snapshot. On a forked
// memory, a shared page whose snapshot bytes already match stays shared —
// restoring a snapshot taken before the fork diverged keeps the fork cheap.
func (m *Memory) Restore(snap []byte) {
	if len(snap) != Size {
		panic(fmt.Sprintf("mem: restore snapshot of %d bytes", len(snap)))
	}
	for i := range m.pages {
		sp := snap[i*PageSize : (i+1)*PageSize]
		if m.dirty&(1<<i) == 0 && bytes.Equal(m.pages[i], sp) {
			continue
		}
		copy(m.wpage(uint32(i)), sp)
	}
}
