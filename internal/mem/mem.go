// Package mem models the byte-addressable memory of an MSP430FR5969-class
// intermittent computing platform: a 64 KB address space whose main memory
// is non-volatile FRAM. Because main memory is non-volatile, a power
// failure preserves everything written to it — including stores that a
// checkpointing runtime has not yet committed, which is exactly the hazard
// model TICS is built around. Only the CPU register file (held by the VM,
// not by this package) is volatile.
//
// The package also provides the region table used by the linker to lay out
// the runtime area, .text, .data, .bss and stack, and gathers access
// statistics used by the experiment harnesses.
package mem

import (
	"fmt"
	"sort"
)

// Size is the size of the simulated address space in bytes (64 KB, matching
// the FRAM capacity of the MSP430FR5969).
const Size = 64 * 1024

// WordBytes is the machine word size. The paper's MCU is a 16-bit part; we
// widen the word to 32 bits so that millisecond timestamps fit in a plain
// int (see DESIGN.md), while keeping the 64 KB address space.
const WordBytes = 4

// RegionKind classifies a layout region.
type RegionKind int

const (
	// RegionReserved is the low-address reserved area (vector-table analog).
	RegionReserved RegionKind = iota
	// RegionRuntime holds runtime-private persistent state: checkpoint
	// buffers, the undo log, segment control blocks.
	RegionRuntime
	// RegionText holds program code.
	RegionText
	// RegionData holds initialized globals.
	RegionData
	// RegionBSS holds zero-initialized globals, timestamp shadow slots and
	// mark counters.
	RegionBSS
	// RegionStack holds the call stack (for TICS: the segment array).
	RegionStack
)

func (k RegionKind) String() string {
	switch k {
	case RegionReserved:
		return "reserved"
	case RegionRuntime:
		return "runtime"
	case RegionText:
		return ".text"
	case RegionData:
		return ".data"
	case RegionBSS:
		return ".bss"
	case RegionStack:
		return "stack"
	}
	return fmt.Sprintf("region(%d)", int(k))
}

// Region is a half-open address interval [Base, Base+Len).
type Region struct {
	Kind RegionKind
	Name string
	Base uint32
	Len  uint32
}

// End returns one past the last address of the region.
func (r Region) End() uint32 { return r.Base + r.Len }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint32) bool { return addr >= r.Base && addr < r.End() }

// Stats counts memory traffic. The experiment harnesses use these to report
// how much NV traffic each runtime generates.
type Stats struct {
	Reads      uint64 // read operations
	Writes     uint64 // write operations
	ReadBytes  uint64
	WriteBytes uint64
}

// Memory is the simulated non-volatile main memory.
type Memory struct {
	data    [Size]byte
	regions []Region
	stats   Stats
}

// New returns a zeroed memory with no layout regions.
func New() *Memory { return &Memory{} }

// Stats returns a copy of the accumulated access statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the access statistics.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// AddRegion registers a layout region. Regions must not overlap; the linker
// relies on this check to catch layout bugs.
func (m *Memory) AddRegion(r Region) error {
	if r.Len == 0 {
		return fmt.Errorf("mem: region %q is empty", r.Name)
	}
	if uint64(r.Base)+uint64(r.Len) > Size {
		return fmt.Errorf("mem: region %q [%#x,%#x) exceeds the %d-byte address space",
			r.Name, r.Base, uint64(r.Base)+uint64(r.Len), Size)
	}
	for _, o := range m.regions {
		if r.Base < o.End() && o.Base < r.End() {
			return fmt.Errorf("mem: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				r.Name, r.Base, r.End(), o.Name, o.Base, o.End())
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return nil
}

// Regions returns the registered regions in address order.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// RegionFor returns the region containing addr, if any.
func (m *Memory) RegionFor(addr uint32) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Region returns the first region of the given kind, if any.
func (m *Memory) Region(kind RegionKind) (Region, bool) {
	for _, r := range m.regions {
		if r.Kind == kind {
			return r, true
		}
	}
	return Region{}, false
}

func (m *Memory) check(addr uint32, n int, what string) {
	if uint64(addr)+uint64(n) > Size {
		panic(fmt.Sprintf("mem: %s of %d bytes at %#x out of range", what, n, addr))
	}
}

// ReadByte reads one byte.
func (m *Memory) ReadByteAt(addr uint32) byte {
	m.check(addr, 1, "read")
	m.stats.Reads++
	m.stats.ReadBytes++
	return m.data[addr]
}

// WriteByte writes one byte.
func (m *Memory) WriteByteAt(addr uint32, v byte) {
	m.check(addr, 1, "write")
	m.stats.Writes++
	m.stats.WriteBytes++
	m.data[addr] = v
}

// ReadWord reads a 32-bit little-endian word.
func (m *Memory) ReadWord(addr uint32) uint32 {
	m.check(addr, WordBytes, "read")
	m.stats.Reads++
	m.stats.ReadBytes += WordBytes
	return uint32(m.data[addr]) | uint32(m.data[addr+1])<<8 |
		uint32(m.data[addr+2])<<16 | uint32(m.data[addr+3])<<24
}

// WriteWord writes a 32-bit little-endian word.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	m.check(addr, WordBytes, "write")
	m.stats.Writes++
	m.stats.WriteBytes += WordBytes
	m.data[addr] = byte(v)
	m.data[addr+1] = byte(v >> 8)
	m.data[addr+2] = byte(v >> 16)
	m.data[addr+3] = byte(v >> 24)
}

// ReadInt reads a word as a signed 32-bit integer.
func (m *Memory) ReadInt(addr uint32) int32 { return int32(m.ReadWord(addr)) }

// WriteInt writes a signed 32-bit integer.
func (m *Memory) WriteInt(addr uint32, v int32) { m.WriteWord(addr, uint32(v)) }

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	m.check(addr, n, "read")
	m.stats.Reads++
	m.stats.ReadBytes += uint64(n)
	out := make([]byte, n)
	copy(out, m.data[addr:int(addr)+n])
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	m.check(addr, len(b), "write")
	m.stats.Writes++
	m.stats.WriteBytes += uint64(len(b))
	copy(m.data[addr:int(addr)+len(b)], b)
}

// CopyWithin copies n bytes from src to dst inside the address space,
// counting both the read and the write traffic. Used by checkpoint commits
// and stack-segment moves.
func (m *Memory) CopyWithin(dst, src uint32, n int) {
	m.check(src, n, "read")
	m.check(dst, n, "write")
	m.stats.Reads++
	m.stats.Writes++
	m.stats.ReadBytes += uint64(n)
	m.stats.WriteBytes += uint64(n)
	copy(m.data[dst:int(dst)+n], m.data[src:int(src)+n])
}

// Zero clears n bytes starting at addr.
func (m *Memory) Zero(addr uint32, n int) {
	m.check(addr, n, "write")
	m.stats.Writes++
	m.stats.WriteBytes += uint64(n)
	for i := 0; i < n; i++ {
		m.data[int(addr)+i] = 0
	}
}

// Peek copies len(b) bytes starting at addr into b without touching the
// access statistics. Observers (the trace auditor) use it so that
// watching a run cannot perturb the run's own traffic accounting.
func (m *Memory) Peek(addr uint32, b []byte) {
	m.check(addr, len(b), "peek")
	copy(b, m.data[addr:int(addr)+len(b)])
}

// PeekWord reads a 32-bit little-endian word without touching the access
// statistics.
func (m *Memory) PeekWord(addr uint32) uint32 {
	m.check(addr, WordBytes, "peek")
	return uint32(m.data[addr]) | uint32(m.data[addr+1])<<8 |
		uint32(m.data[addr+2])<<16 | uint32(m.data[addr+3])<<24
}

// Snapshot returns a copy of the full memory contents. Tests use snapshots
// to compare intermittent executions against the continuous-power oracle.
func (m *Memory) Snapshot() []byte {
	out := make([]byte, Size)
	copy(out[:], m.data[:])
	return out
}

// Restore overwrites the full memory contents from a snapshot.
func (m *Memory) Restore(snap []byte) {
	if len(snap) != Size {
		panic(fmt.Sprintf("mem: restore snapshot of %d bytes", len(snap)))
	}
	copy(m.data[:], snap)
}
