package mem_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// seededBase builds a base snapshot with a pseudo-random fill and a
// region table, mimicking a post-link image.
func seededBase(t *testing.T, seed int64) *mem.Base {
	t.Helper()
	m := mem.New()
	rng := rand.New(rand.NewSource(seed))
	fill := make([]byte, mem.Size)
	rng.Read(fill)
	m.WriteBytes(0, fill)
	for _, r := range []mem.Region{
		{Kind: mem.RegionRuntime, Name: "runtime", Base: 0x40, Len: 0x1000},
		{Kind: mem.RegionText, Name: ".text", Base: 0x2000, Len: 0x2000},
		{Kind: mem.RegionStack, Name: "stack", Base: 0x8000, Len: 0x800},
	} {
		if err := m.AddRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	return m.Freeze()
}

// flatFromBase replays a base into a flat memory so flat and fork start
// byte- and region-identical.
func flatFromBase(t *testing.T, b *mem.Base) *mem.Memory {
	t.Helper()
	fork := mem.Fork(b)
	m := mem.New()
	m.Restore(fork.Snapshot())
	for _, r := range fork.Regions() {
		if err := m.AddRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	m.ResetStats()
	return m
}

// op applies the same randomly chosen operation to both memories and
// reports a description for failure messages. Ops that return values are
// compared; ops that can panic are run under matching recover on both.
func applyRandomOp(t *testing.T, rng *rand.Rand, a, b *mem.Memory) string {
	t.Helper()
	addr := uint32(rng.Intn(mem.Size + 16)) // occasionally out of range
	n := rng.Intn(3 * mem.PageSize)
	switch k := rng.Intn(10); k {
	case 0:
		desc := fmt.Sprintf("ReadByteAt(%#x)", addr)
		va, pa := tryByte(func() byte { return a.ReadByteAt(addr) })
		vb, pb := tryByte(func() byte { return b.ReadByteAt(addr) })
		if pa != pb || va != vb {
			t.Fatalf("%s: flat (%v,%v) vs fork (%v,%v)", desc, va, pa, vb, pb)
		}
		return desc
	case 1:
		v := byte(rng.Intn(256))
		desc := fmt.Sprintf("WriteByteAt(%#x,%d)", addr, v)
		pa := try(func() { a.WriteByteAt(addr, v) })
		pb := try(func() { b.WriteByteAt(addr, v) })
		if pa != pb {
			t.Fatalf("%s: panic flat=%v fork=%v", desc, pa, pb)
		}
		return desc
	case 2:
		desc := fmt.Sprintf("ReadWord(%#x)", addr)
		va, pa := tryWord(func() uint32 { return a.ReadWord(addr) })
		vb, pb := tryWord(func() uint32 { return b.ReadWord(addr) })
		if pa != pb || va != vb {
			t.Fatalf("%s: flat (%v,%v) vs fork (%v,%v)", desc, va, pa, vb, pb)
		}
		return desc
	case 3:
		v := rng.Uint32()
		desc := fmt.Sprintf("WriteWord(%#x,%#x)", addr, v)
		pa := try(func() { a.WriteWord(addr, v) })
		pb := try(func() { b.WriteWord(addr, v) })
		if pa != pb {
			t.Fatalf("%s: panic flat=%v fork=%v", desc, pa, pb)
		}
		return desc
	case 4:
		desc := fmt.Sprintf("ReadBytes(%#x,%d)", addr, n)
		var va, vb []byte
		pa := try(func() { va = a.ReadBytes(addr, n) })
		pb := try(func() { vb = b.ReadBytes(addr, n) })
		if pa != pb || !bytes.Equal(va, vb) {
			t.Fatalf("%s: mismatch (panic flat=%v fork=%v)", desc, pa, pb)
		}
		return desc
	case 5:
		buf := make([]byte, n)
		rng.Read(buf)
		desc := fmt.Sprintf("WriteBytes(%#x,len %d)", addr, n)
		pa := try(func() { a.WriteBytes(addr, buf) })
		pb := try(func() { b.WriteBytes(addr, buf) })
		if pa != pb {
			t.Fatalf("%s: panic flat=%v fork=%v", desc, pa, pb)
		}
		return desc
	case 6:
		src := uint32(rng.Intn(mem.Size + 16))
		if rng.Intn(2) == 0 && src < mem.Size {
			// Bias toward overlapping moves to exercise memmove paths.
			addr = src + uint32(rng.Intn(2*mem.PageSize)) - mem.PageSize
			if addr >= mem.Size {
				addr = 0
			}
		}
		desc := fmt.Sprintf("CopyWithin(%#x,%#x,%d)", addr, src, n)
		pa := try(func() { a.CopyWithin(addr, src, n) })
		pb := try(func() { b.CopyWithin(addr, src, n) })
		if pa != pb {
			t.Fatalf("%s: panic flat=%v fork=%v", desc, pa, pb)
		}
		return desc
	case 7:
		desc := fmt.Sprintf("Zero(%#x,%d)", addr, n)
		pa := try(func() { a.Zero(addr, n) })
		pb := try(func() { b.Zero(addr, n) })
		if pa != pb {
			t.Fatalf("%s: panic flat=%v fork=%v", desc, pa, pb)
		}
		return desc
	case 8:
		buf1 := make([]byte, n)
		buf2 := make([]byte, n)
		desc := fmt.Sprintf("Peek(%#x,%d)", addr, n)
		pa := try(func() { a.Peek(addr, buf1) })
		pb := try(func() { b.Peek(addr, buf2) })
		if pa != pb || !bytes.Equal(buf1, buf2) {
			t.Fatalf("%s: mismatch (panic flat=%v fork=%v)", desc, pa, pb)
		}
		return desc
	default:
		desc := fmt.Sprintf("PeekWord(%#x)", addr)
		va, pa := tryWord(func() uint32 { return a.PeekWord(addr) })
		vb, pb := tryWord(func() uint32 { return b.PeekWord(addr) })
		if pa != pb || va != vb {
			t.Fatalf("%s: flat (%v,%v) vs fork (%v,%v)", desc, va, pa, vb, pb)
		}
		return desc
	}
}

func try(f func()) (panicked bool) {
	defer func() { panicked = recover() != nil }()
	f()
	return
}

func tryByte(f func() byte) (v byte, panicked bool) {
	defer func() { panicked = recover() != nil }()
	v = f()
	return
}

func tryWord(f func() uint32) (v uint32, panicked bool) {
	defer func() { panicked = recover() != nil }()
	v = f()
	return
}

// TestForkMatchesFlat drives a flat memory and a COW fork through the same
// random operation sequences and demands identical values, panics, stats,
// and final snapshots.
func TestForkMatchesFlat(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 101} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := seededBase(t, seed)
			fork := mem.Fork(base)
			flat := flatFromBase(t, base)
			rng := rand.New(rand.NewSource(seed * 31))
			var last string
			for i := 0; i < 4000; i++ {
				last = applyRandomOp(t, rng, flat, fork)
			}
			if flat.Stats() != fork.Stats() {
				t.Fatalf("stats diverged after %q: flat %+v fork %+v", last, flat.Stats(), fork.Stats())
			}
			if !bytes.Equal(flat.Snapshot(), fork.Snapshot()) {
				t.Fatalf("snapshots diverged after %q", last)
			}
			if fork.PrivatePages() == 0 || fork.PrivatePages() == mem.NumPages {
				t.Logf("fork materialized %d/%d pages", fork.PrivatePages(), mem.NumPages)
			}
		})
	}
}

// TestForkSharesUntouchedPages pins the whole point of the fork: reads
// alone materialize nothing, and a write materializes exactly one page.
func TestForkSharesUntouchedPages(t *testing.T) {
	base := seededBase(t, 5)
	f := mem.Fork(base)
	for a := uint32(0); a < mem.Size; a += 64 {
		f.ReadWord(a)
	}
	if got := f.PrivatePages(); got != 0 {
		t.Fatalf("reads materialized %d pages", got)
	}
	const probe = 3*mem.PageSize + 5
	orig := f.ReadByteAt(probe)
	f.WriteByteAt(probe, orig+1)
	if got := f.PrivatePages(); got != 1 {
		t.Fatalf("one write materialized %d pages", got)
	}
	// A second fork of the same base must not see the first fork's write.
	if got := mem.Fork(base).ReadByteAt(probe); got != orig {
		t.Fatalf("forks share written pages: %d != %d", got, orig)
	}
}

// TestForkRestorePreservesSharing pins that restoring a pre-divergence
// snapshot does not materialize untouched pages.
func TestForkRestorePreservesSharing(t *testing.T) {
	base := seededBase(t, 9)
	f := mem.Fork(base)
	snap := f.Snapshot()
	f.WriteWord(0x100, 0xDEAD)
	f.WriteWord(0x9000, 0xBEEF)
	if got := f.PrivatePages(); got != 2 {
		t.Fatalf("expected 2 private pages, got %d", got)
	}
	f.Restore(snap)
	if got := f.PrivatePages(); got != 2 {
		t.Fatalf("restore changed private set: %d", got)
	}
	if !bytes.Equal(f.Snapshot(), snap) {
		t.Fatal("restore did not reproduce the snapshot")
	}
}

// TestResetToBase pins pooled-reuse semantics: contents, regions and stats
// all return to the freshly forked state.
func TestResetToBase(t *testing.T) {
	base := seededBase(t, 13)
	want := mem.Fork(base).Snapshot()

	f := mem.Fork(base)
	f.WriteBytes(0x400, bytes.Repeat([]byte{0xEE}, 3000))
	f.Zero(0xF000, 512)
	f.ResetToBase(base)
	if !bytes.Equal(f.Snapshot(), want) {
		t.Fatal("reset did not restore base contents")
	}
	if f.Stats() != (mem.Stats{}) {
		t.Fatalf("reset kept stats: %+v", f.Stats())
	}
	if len(f.Regions()) != 3 {
		t.Fatalf("reset lost regions: %v", f.Regions())
	}

	// Rebinding a flat memory to a base works too.
	flat := mem.New()
	flat.WriteWord(0, 42)
	flat.ResetToBase(base)
	if !bytes.Equal(flat.Snapshot(), want) {
		t.Fatal("flat rebind did not adopt base contents")
	}
	if got := flat.PrivatePages(); got != 0 {
		t.Fatalf("flat rebind kept %d private pages", got)
	}
}
