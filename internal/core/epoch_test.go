package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/vm"
)

// TestEpochWraparound drives more than 2^16 checkpoints through the
// runtime so the 16-bit undo-log epoch wraps several times, with periodic
// power failures exercising the restore path across the wrap. The epoch
// only ever distinguishes "log written before vs after the active
// checkpoint", so wrapping must be harmless.
func TestEpochWraparound(t *testing.T) {
	const src = `
int g;
int main() {
    int i;
    for (i = 0; i < 400000; i++) {
        g += i & 15;
    }
    out(0, g);
    return 0;
}
`
	img, cfg := buildTICS(t, src, core.Config{StackBytes: 2048})

	run := func(p power.Source) vm.Result {
		rt, err := core.New(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(vm.Config{
			Image: img, Runtime: rt, Power: p,
			AutoCpPeriodMs: 0.25, // a checkpoint every 250 cycles
			MaxCycles:      3_000_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil || !res.Completed {
			t.Fatalf("%v %+v", err, res)
		}
		return res
	}

	oracle := run(power.Continuous{})
	if oracle.TotalCheckpoints < 1<<16 {
		t.Fatalf("only %d checkpoints — the epoch never wrapped", oracle.TotalCheckpoints)
	}
	res := run(&power.FailEvery{Cycles: 1_000_003, OffMs: 2})
	if res.TotalCheckpoints < 1<<16 || res.Failures == 0 {
		t.Fatalf("wrap run: %d checkpoints, %d failures", res.TotalCheckpoints, res.Failures)
	}
	if res.OutLog[0][0] != oracle.OutLog[0][0] {
		t.Fatalf("epoch wrap corrupted state: %d != %d", res.OutLog[0][0], oracle.OutLog[0][0])
	}
}

// TestDoubleBufferAlternates: consecutive checkpoints must land in
// alternating slots, and a failure killing an in-flight checkpoint must
// leave the previous slot active.
func TestDoubleBufferAlternates(t *testing.T) {
	img, cfg := buildTICS(t, `int g; int main() { g = 1; return 0; }`, core.Config{StackBytes: 2048})
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Image: img, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	m.PowerOn(1 << 40)
	if err := rt.Boot(m, true); err != nil {
		t.Fatal(err)
	}
	activeAddr := img.RuntimeBase + 4
	first := m.Mem.ReadWord(activeAddr)
	if err := rt.Checkpoint(m, vm.CpManual); err != nil {
		t.Fatal(err)
	}
	second := m.Mem.ReadWord(activeAddr)
	if first == second {
		t.Fatalf("active slot did not flip: %d -> %d", first, second)
	}
	if err := rt.Checkpoint(m, vm.CpManual); err != nil {
		t.Fatal(err)
	}
	if third := m.Mem.ReadWord(activeAddr); third != first {
		t.Fatalf("active slot did not alternate: %d %d %d", first, second, third)
	}

	// Kill a checkpoint mid-copy: the active slot must be unchanged.
	before := m.Mem.ReadWord(activeAddr)
	m.PowerOn(50) // not enough for a full checkpoint
	func() {
		defer func() { recover() }() // the power-failure sentinel
		_ = rt.Checkpoint(m, vm.CpManual)
	}()
	m.PowerOn(1 << 40)
	if after := m.Mem.ReadWord(activeAddr); after != before {
		t.Fatalf("a torn checkpoint flipped the active slot: %d -> %d", before, after)
	}
	if err := rt.Boot(m, false); err != nil {
		t.Fatal(err)
	}
}
