package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/vm"
)

// isrSrc: a timer ISR maintains a non-volatile tick counter while main
// does foreground work. Under TICS the ISR's effects commit exactly once
// (the implicit checkpoint after return-from-interrupt), and an ISR cut
// short by a power failure never happened (paper §4).
const isrSrc = `
int ticks;
int work;

void isr_timer() {
    ticks++;
}

int main() {
    int i;
    for (i = 0; i < 1500; i++) {
        work += i & 7;
    }
    out(0, work);
    return 0;
}
`

func TestInterruptsUnderTICS(t *testing.T) {
	img, cfg := buildTICS(t, isrSrc, core.Config{StackBytes: 2048})

	run := func(p power.Source) (vm.Result, *vm.Machine) {
		rt, err := core.New(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(vm.Config{
			Image: img, Runtime: rt, Power: p,
			AutoCpPeriodMs:    1,
			InterruptPeriodMs: 2,
			MaxCycles:         500_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}

	oracle, om := run(power.Continuous{})
	if !oracle.Completed {
		t.Fatalf("oracle: %+v", oracle)
	}
	wantWork := oracle.OutLog[0][0]
	oTicks, _ := om.ReadGlobal("ticks")
	if oracle.Interrupts == 0 || oTicks == 0 {
		t.Fatalf("oracle saw no interrupts: %d / %d", oracle.Interrupts, oTicks)
	}

	// Fixed-size windows phase-lock with the interrupt period (the timer
	// rearms 2 ms after every reboot), so the window must leave room after
	// the interrupt phase for the whole ISR path — grow, store, shrink,
	// implicit checkpoint (~1.6 ms) — or no tick can ever commit. That
	// resonance floor is itself the paper's starvation phenomenon.
	for _, k := range []int64{9000, 5501, 3803} {
		res, m := run(&power.FailEvery{Cycles: k, OffMs: 5})
		if !res.Completed {
			t.Fatalf("k=%d: %+v", k, res)
		}
		if got := res.OutLog[0][0]; got != wantWork {
			t.Fatalf("k=%d: foreground work corrupted by ISRs: %d != %d", k, got, wantWork)
		}
		ticks, _ := m.ReadGlobal("ticks")
		if ticks <= 0 {
			t.Fatalf("k=%d: no committed ticks", k)
		}
		// Exactly-once accounting: every committed tick corresponds to a
		// completed ISR, and no more ISRs were delivered than ticks+losses.
		if int64(ticks) > res.Interrupts {
			t.Fatalf("k=%d: %d ticks committed but only %d interrupts delivered", k, ticks, res.Interrupts)
		}
		if res.Failures == 0 {
			t.Fatalf("k=%d: no failures injected", k)
		}
	}
}

func TestISRKilledByFailureNeverHappened(t *testing.T) {
	// Windows so small that many ISRs are cut short: committed ticks must
	// still only ever reflect *completed* ISRs (monotone, no corruption),
	// and the foreground result must stay exact.
	img, cfg := buildTICS(t, isrSrc, core.Config{StackBytes: 2048})
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{
		Image: img, Runtime: rt,
		Power:             &power.FailEvery{Cycles: 2500, OffMs: 3},
		AutoCpPeriodMs:    1,
		InterruptPeriodMs: 1, // an ISR storm
		MaxCycles:         500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	if got := res.OutLog[0][0]; got != 5242 { // sum of i&7 over 1500 iterations
		t.Fatalf("foreground work: %d", got)
	}
	stats := rt.Stats()
	if stats["interrupts"] <= stats["isr-checkpoints"] {
		// With failures injected mid-ISR, some deliveries must vanish.
		t.Logf("note: every ISR completed (interrupts=%d, commits=%d)", stats["interrupts"], stats["isr-checkpoints"])
	}
}

func TestMissingISRRejected(t *testing.T) {
	img, cfg := buildTICS(t, tortureSrc, core.Config{StackBytes: 2048})
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(vm.Config{Image: img, Runtime: rt, InterruptPeriodMs: 5}); err == nil {
		t.Fatal("machine accepted an interrupt period without an ISR")
	}
}
