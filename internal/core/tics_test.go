package core_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/vm"
)

// tortureSrc concentrates every consistency hazard the runtime must
// survive: write-after-read updates to non-volatile globals, byte stores,
// recursion deep enough to span several stack segments, and pointer writes
// from a deep callee into the caller's segment (cross-segment undo
// logging).
const tortureSrc = `
int g1;
int g2 = 100;
char bytes[8];
int arr[6];

int rec(int n, int *acc) {
    int local[2];
    local[0] = n;
    *acc += local[0];
    if (n > 0) { return rec(n - 1, acc); }
    return *acc;
}

int main() {
    int i;
    int acc = 0;
    for (i = 0; i < 6; i++) {
        g1 = g1 + i + 1;
        arr[i] = g1 * 2;
        bytes[i] = g1;
    }
    rec(8, &acc);
    g2 += acc;
    out(0, g1);
    out(1, g2);
    out(2, acc);
    for (i = 0; i < 6; i++) {
        out(3, arr[i]);
        out(4, bytes[i]);
    }
    return 0;
}
`

func buildTICS(t *testing.T, src string, cfg core.Config) (*link.Image, core.Config) {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Instrument stores the way the facade does.
	if _, err := instrument.Apply(prog, instrument.ForTICS()); err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, core.Spec(cfg, prog.MinSegmentBytes()))
	if err != nil {
		t.Fatal(err)
	}
	return img, cfg
}

func runTICS(t *testing.T, img *link.Image, cfg core.Config, src power.Source, autoCpMs float64) vm.Result {
	t.Helper()
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{
		Image: img, Runtime: rt, Power: src,
		AutoCpPeriodMs: autoCpMs, MaxCycles: 500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTortureFailureSweep is the two-phase-commit torture test: a power
// failure is injected every k cycles for a dense sweep of k, so failures
// land inside checkpoint commits, undo-log appends, stack grows and
// restores. The committed output must equal the continuous-power oracle
// every single time.
func TestTortureFailureSweep(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
		minK int64 // smallest window that still fits restore + checkpoint + one logged store
	}{
		{"min-segment", core.Config{}, 1600},
		{"256B-segment", core.Config{SegmentBytes: 256}, 3000},
		{"differential", core.Config{SegmentBytes: 256, DifferentialCheckpoints: true}, 3000},
		{"block-undo-16B", core.Config{UndoBlockBytes: 16}, 1600},
		{"block-undo-32B", core.Config{UndoBlockBytes: 32}, 1700},
	}
	for _, tc := range cases {
		segment := tc.name
		cfg := tc.cfg
		cfg.StackBytes = 2048
		cfg.UndoCapBytes = 2048
		img, cfg := buildTICS(t, tortureSrc, cfg)
		oracle := runTICS(t, img, cfg, power.Continuous{}, 0)
		if !oracle.Completed {
			t.Fatalf("oracle did not complete: %+v", oracle)
		}
		step := int64(7)
		for k := int64(6000); k >= tc.minK; k -= step {
			res := runTICS(t, img, cfg, &power.FailEvery{Cycles: k, OffMs: 3}, 1)
			if !res.Completed {
				t.Fatalf("seg=%s k=%d: did not complete (starved=%v failures=%d)",
					segment, k, res.Starved, res.Failures)
			}
			if !reflect.DeepEqual(res.OutLog, oracle.OutLog) {
				t.Fatalf("seg=%s k=%d: output diverged\n got  %v\n want %v",
					segment, k, res.OutLog, oracle.OutLog)
			}
			if res.Failures == 0 {
				t.Fatalf("seg=%s k=%d: no failures injected", segment, k)
			}
		}
	}
}

// TestUndoLogRollbackProperty drives random instrumented stores against
// the runtime and then forces a reboot WITHOUT a checkpoint: every store
// must be rolled back exactly.
func TestUndoLogRollbackProperty(t *testing.T) {
	cfg := core.Config{StackBytes: 2048, UndoCapBytes: 2048}
	img, cfg := buildTICS(t, `int g[32]; int main() { return 0; }`, cfg)
	base, ok := img.GlobalAddr("g")
	if !ok {
		t.Fatal("no global g")
	}
	check := func(writes []uint16) bool {
		rt, err := core.New(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(vm.Config{Image: img, Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		m.PowerOn(1 << 40)
		if err := rt.Boot(m, true); err != nil {
			t.Fatal(err)
		}
		before := m.Mem.Snapshot()
		for i, w := range writes {
			if i >= 100 {
				break // stay under the log capacity
			}
			addr := base + uint32(w%32)*4
			if err := rt.LoggedStore(m, addr, 4, uint32(w)^0xDEAD); err != nil {
				t.Fatal(err)
			}
		}
		// Power failure without checkpoint: reboot must roll back.
		m.Regs = vm.Registers{}
		if err := rt.Boot(m, false); err != nil {
			t.Fatal(err)
		}
		after := m.Mem.Snapshot()
		// Compare only the globals area (runtime bookkeeping may differ).
		lo, hi := int(img.GlobalsBase), int(img.StackBase)
		return reflect.DeepEqual(before[lo:hi], after[lo:hi])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentTooSmall verifies the compile-time floor on segment size.
func TestSegmentTooSmall(t *testing.T) {
	prog, err := cc.Compile(tortureSrc, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{SegmentBytes: 8, StackBytes: 2048}
	img, err := link.Link(prog, core.Spec(cfg, prog.MinSegmentBytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.New(img, cfg); err == nil {
		t.Fatal("accepted a segment smaller than the largest frame")
	}
}

// TestSegmentArrayExhaustion: recursion deeper than the segment array
// faults deterministically instead of corrupting memory.
func TestSegmentArrayExhaustion(t *testing.T) {
	src := `
int rec(int n) { int pad[8]; pad[0] = n; if (n > 0) { return rec(n - 1) + pad[0]; } return 0; }
int main() { out(0, rec(60)); return 0; }
`
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{StackBytes: 256} // tiny segment array
	img, err := link.Link(prog, core.Spec(cfg, prog.MinSegmentBytes()))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		_ = f
	}
	m, err := vm.New(vm.Config{Image: img, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := m.Run()
	if runErr == nil && res.Fault == nil {
		t.Fatalf("deep recursion in a tiny segment array did not fault: %+v", res)
	}
}

// TestCheckpointCounting checks that stack-change checkpoints appear with
// minimum segments and disappear with large ones.
func TestCheckpointCounting(t *testing.T) {
	small, cfgS := buildTICS(t, tortureSrc, core.Config{StackBytes: 2048})
	resS := runTICS(t, small, cfgS, power.Continuous{}, 0)
	if resS.Checkpoints["stack-grow"] == 0 || resS.Checkpoints["stack-shrink"] == 0 {
		t.Fatalf("minimum segments produced no stack-change checkpoints: %v", resS.Checkpoints)
	}
	big, cfgB := buildTICS(t, tortureSrc, core.Config{SegmentBytes: 512, StackBytes: 2048})
	resB := runTICS(t, big, cfgB, power.Continuous{}, 0)
	if resB.Checkpoints["stack-grow"] != 0 {
		t.Fatalf("512 B segments still grew the stack: %v", resB.Checkpoints)
	}
	if resB.TotalCheckpoints >= resS.TotalCheckpoints {
		t.Fatalf("bigger segments should checkpoint less: %d vs %d",
			resB.TotalCheckpoints, resS.TotalCheckpoints)
	}
}
