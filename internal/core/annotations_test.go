package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/timekeeper"
	"repro/internal/vm"
)

// annotSrc exercises every annotation form: scalar @=, the if-form
// @expires (no catch), the catch form, and @timely with an else arm.
const annotSrc = `
@expires_after=150 int reading;
@expires_after=400 int slow;
int consumed;
int skipped;
int caught;
int onTime;
int late;

int main() {
    int i;
    for (i = 0; i < 12; i++) {
        reading @= sense(4);
        slow @= sense(3);
        @expires(reading) {
            consumed += 1;
        }
        @expires(slow) {
            consumed += 1;
        } catch {
            caught += 1;
        }
        @timely(now() + 50) {
            onTime += 1;
        } else {
            late += 1;
        }
    }
    out(0, consumed);
    out(1, caught);
    out(2, onTime);
    out(3, late);
    return 0;
}
`

func runAnnot(t *testing.T, p power.Source) vm.Result {
	t.Helper()
	img, cfg := buildTICS(t, annotSrc, core.Config{StackBytes: 2048})
	rt, err := core.New(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{
		Image: img, Runtime: rt, Power: p,
		Clock:          &timekeeper.Perfect{},
		Sensors:        sensors.NewBank(4),
		AutoCpPeriodMs: 2,
		MaxCycles:      500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnnotationsContinuous(t *testing.T) {
	res := runAnnot(t, power.Continuous{})
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	// Continuous power: everything fresh and timely.
	if res.OutLog[0][0] != 24 || res.OutLog[1][0] != 0 {
		t.Fatalf("freshness under continuous power: %v", res.OutLog)
	}
	if res.OutLog[2][0] != 12 || res.OutLog[3][0] != 0 {
		t.Fatalf("timeliness under continuous power: %v", res.OutLog)
	}
}

// TestAnnotationsIntermittent: outages past both freshness windows force
// the if-form to skip, the catch form to handle, and @timely to take the
// else arm — and every counter must add up (nothing double-counted across
// the restores).
func TestAnnotationsIntermittent(t *testing.T) {
	res := runAnnot(t, &power.FailEvery{Cycles: 12_000, OffMs: 500})
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	consumed := res.OutLog[0][0]
	caught := res.OutLog[1][0]
	onTime := res.OutLog[2][0]
	late := res.OutLog[3][0]
	// Each round contributes exactly one outcome per block.
	if consumed+caught > 24 || onTime+late != 12 {
		t.Fatalf("counters inconsistent: consumed=%d caught=%d onTime=%d late=%d",
			consumed, caught, onTime, late)
	}
	if caught == 0 {
		t.Fatalf("500 ms outages never expired the 400 ms data: %v", res.OutLog)
	}
	if res.Failures == 0 {
		t.Fatal("no failures")
	}
}

// TestExpiresIfFormSkips: the no-catch @expires form is the paper's
// Figure 6 "catch data expiration" if-statement — stale data must skip the
// block entirely, with no handler to run.
func TestExpiresIfFormSkips(t *testing.T) {
	res := runAnnot(t, &power.FailEvery{Cycles: 12_000, OffMs: 200})
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	// 200 ms outages expire `reading` (150 ms) but usually not `slow`
	// (400 ms): the if-form must skip at least once while the catch form
	// keeps consuming.
	consumed := res.OutLog[0][0]
	if consumed >= 24 {
		t.Fatalf("nothing ever skipped: %v", res.OutLog)
	}
	if consumed == 0 {
		t.Fatalf("everything skipped: %v", res.OutLog)
	}
}
