// Package core implements the TICS runtime — the paper's primary
// contribution. It combines:
//
//   - Stack segmentation: the call stack lives in non-volatile memory as a
//     fixed array of fixed-size segments; the program only ever touches the
//     top ("working") segment, and only that segment is checkpointed,
//     bounding checkpoint/restore time (paper §3.1.1).
//   - Data versioning: instrumented stores whose target lies outside the
//     working segment (globals, pointer writes into deeper segments) are
//     write-ahead undo-logged; the log is cleared by a successful
//     checkpoint and rolled back on reboot (paper §3.1.2).
//   - Double-buffered checkpoints with an atomic commit: registers plus
//     the working segment are written to the inactive slot, then a single
//     word flip makes it the restore point (paper §4).
//   - The time-annotation runtime: shadow timestamps, atomic @= blocks,
//     and the restore-to-block-entry machinery behind @expires/catch
//     (paper §3.2).
//
// All persistent runtime state lives inside the simulated non-volatile
// memory, so a power failure at *any* cycle — including mid-checkpoint or
// mid-log-append — exercises the real recovery protocol.
package core

import (
	"fmt"

	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Config sizes the TICS runtime.
type Config struct {
	// SegmentBytes is the working-stack segment size (the paper's S1/S2
	// axis). It must be at least Image.MinSegmentBytes() and a multiple of
	// 4. Zero selects the minimum.
	SegmentBytes int
	// StackBytes is the total segment-array size (default 2048, the
	// paper's configuration).
	StackBytes int
	// UndoCapBytes is the undo-log capacity (default 2048, as in the
	// paper; a full log forces a checkpoint).
	UndoCapBytes int
	// DifferentialCheckpoints copies only the *used* part of the working
	// segment (from SP to the segment top) instead of the whole segment.
	// This is the differential-checkpoint idea the paper contrasts with
	// ([3] in the paper): cheaper on shallow stacks, but the checkpoint
	// time is no longer a fixed worst-case bound. Off by default — the
	// fixed bound is TICS's design point. See the ablation benchmark.
	DifferentialCheckpoints bool
	// UndoBlockBytes selects the undo-log granularity: 0 or 4 logs the
	// written word (the paper's design); a larger power of two logs the
	// containing block once per checkpoint epoch, so repeated writes to a
	// hot global skip the logging cost after the first. Trades bigger
	// entries for fewer of them — see the ablation benchmark.
	UndoBlockBytes int
}

func (c Config) withDefaults() Config {
	if c.StackBytes == 0 {
		c.StackBytes = 2048
	}
	if c.UndoCapBytes == 0 {
		c.UndoCapBytes = 2048
	}
	if c.UndoBlockBytes == 0 {
		c.UndoBlockBytes = 4
	}
	return c
}

// Modeled footprint of the runtime library itself, used only for the
// Table 3 memory accounting (the runtime executes host-side here).
const (
	runtimeTextBytes = 2800
	runtimeDataBytes = 96
)

const (
	initMagic   = 0x54494353 // "TICS"
	slotMetaLen = 8 * 4      // pc, sp, fp, rv, cpDisabled, workingSeg, epoch, usedBytes
	segCtlLen   = 8          // growFrameFP, returnSP
)

// Spec returns the linker spec for a TICS build: the runtime-private area
// holds the two checkpoint slots, the undo log, and the per-segment
// control blocks.
func Spec(cfg Config, minSegment int) link.RuntimeSpec {
	cfg = cfg.withDefaults()
	seg := cfg.SegmentBytes
	if seg < minSegment {
		seg = minSegment
	}
	seg = (seg + 3) &^ 3
	nseg := cfg.StackBytes / seg
	if nseg < 1 {
		nseg = 1
	}
	rtBytes := 16 + 2*(slotMetaLen+seg) + cfg.UndoCapBytes + segCtlLen*nseg
	return link.RuntimeSpec{
		Name:           "tics",
		RuntimeBytes:   rtBytes,
		StackBytes:     nseg * seg,
		ExtraTextBytes: runtimeTextBytes,
		ExtraDataBytes: runtimeDataBytes + 2*(slotMetaLen+seg),
	}
}

// TICS is the runtime. Volatile fields mirror non-volatile state for
// speed; Boot re-derives every one of them from memory, so they are lost
// safely at power failures.
type TICS struct {
	cfg Config
	img *link.Image

	segBytes int
	segWords int
	numSegs  int
	undoCap  int // max entries

	// Non-volatile layout (absolute addresses).
	addrMagic   uint32
	addrActive  uint32
	addrUndoHdr uint32
	addrSlot    [2]uint32 // meta, followed by the segment copy
	addrUndo    uint32
	addrSegCtl  uint32

	undoEntrySize int // 8 bytes of header + the logged payload
	blockBytes    int

	// Volatile mirrors (re-read by Boot).
	working int
	active  int
	epoch   uint32
	undoLen int
	// loggedBlocks dedups block-granularity log entries within one
	// checkpoint epoch. Volatile: a failure empties the log (rollback), a
	// checkpoint clears it, and Boot starts it fresh — all in sync.
	loggedBlocks map[uint32]bool

	// skipUndoAt, when positive, is a countdown to an injected fault: the
	// N-th upcoming undo append is silently skipped (the program's store
	// still executes, but unlogged and without an undo-append event). Only
	// set by InjectUndoSkip in tests; see audit fault-detection coverage.
	skipUndoAt int

	reg *obs.Registry
}

// InjectUndoSkip arms a fault-injection hook for tests: the n-th
// subsequent store that would append an undo-log entry executes without
// logging it, silently breaking undo-log completeness (and, after the
// next rollback, restore exactness). The trace auditor must catch this.
func (t *TICS) InjectUndoSkip(n int) { t.skipUndoAt = n }

// New builds a TICS runtime for an image linked with Spec(cfg, ...).
func New(img *link.Image, cfg Config) (*TICS, error) {
	cfg = cfg.withDefaults()
	minSeg := img.MinSegmentBytes()
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = minSeg
	}
	cfg.SegmentBytes = (cfg.SegmentBytes + 3) &^ 3
	if cfg.SegmentBytes < minSeg {
		return nil, fmt.Errorf("core: segment size %d B is below the program minimum %d B (largest function frame)",
			cfg.SegmentBytes, minSeg)
	}
	switch cfg.UndoBlockBytes {
	case 4, 8, 16, 32, 64:
	default:
		return nil, fmt.Errorf("core: undo block size %d B must be a power of two in [4,64]", cfg.UndoBlockBytes)
	}
	entrySize := 8 + cfg.UndoBlockBytes
	t := &TICS{
		cfg:           cfg,
		img:           img,
		segBytes:      cfg.SegmentBytes,
		segWords:      cfg.SegmentBytes / 4,
		numSegs:       int(img.StackLen) / cfg.SegmentBytes,
		undoCap:       cfg.UndoCapBytes / entrySize,
		undoEntrySize: entrySize,
		blockBytes:    cfg.UndoBlockBytes,
		loggedBlocks:  map[uint32]bool{},
		reg:           obs.NewRegistry(),
	}
	if t.numSegs < 1 {
		return nil, fmt.Errorf("core: stack region of %d B holds no %d B segment", img.StackLen, cfg.SegmentBytes)
	}
	// Lay out the runtime area.
	a := img.RuntimeBase
	t.addrMagic = a
	t.addrActive = a + 4
	t.addrUndoHdr = a + 8
	a += 16
	t.addrSlot[0] = a
	a += uint32(slotMetaLen + t.segBytes)
	t.addrSlot[1] = a
	a += uint32(slotMetaLen + t.segBytes)
	t.addrUndo = a
	a += uint32(t.undoCap * t.undoEntrySize)
	t.addrSegCtl = a
	a += uint32(segCtlLen * t.numSegs)
	if a > img.RuntimeBase+img.RuntimeLen {
		return nil, fmt.Errorf("core: runtime area too small: need %d B, have %d B (link with core.Spec)",
			a-img.RuntimeBase, img.RuntimeLen)
	}
	return t, nil
}

// SegmentBytes returns the configured working-stack segment size.
func (t *TICS) SegmentBytes() int { return t.segBytes }

// NumSegments returns the segment-array length.
func (t *TICS) NumSegments() int { return t.numSegs }

// Name implements vm.Runtime.
func (t *TICS) Name() string { return "tics" }

// Stats implements vm.Runtime. The returned map is a defensive snapshot:
// mutating it cannot corrupt the live counters.
func (t *TICS) Stats() map[string]int64 { return t.reg.CounterSnapshot() }

// segTop returns one past the highest address of segment i (the stack
// grows downward through the segment).
func (t *TICS) segTop(i int) uint32 {
	return t.img.StackBase + t.img.StackLen - uint32(i*t.segBytes)
}

// segBase returns the lowest address of segment i.
func (t *TICS) segBase(i int) uint32 { return t.segTop(i) - uint32(t.segBytes) }

func (t *TICS) inWorking(addr uint32, size int) bool {
	return addr >= t.segBase(t.working) && addr+uint32(size) <= t.segTop(t.working)
}

// ---- Boot / restore ----

// Boot implements vm.Runtime. On a cold boot (or if a failure killed the
// very first checkpoint) it initializes the runtime area and takes the
// initial checkpoint; otherwise it rolls back the undo log, restores the
// checkpointed working segment and reloads the registers.
func (t *TICS) Boot(m *vm.Machine, cold bool) error {
	if cold || m.Mem.ReadWord(t.addrMagic) != initMagic {
		return t.coldBoot(m)
	}
	return t.restore(m)
}

func (t *TICS) coldBoot(m *vm.Machine) error {
	m.Spend(m.Cost.RestoreBase)
	m.Mem.WriteWord(t.addrActive, 0)
	m.Mem.WriteWord(t.addrUndoHdr, 0)
	t.active = 0
	t.epoch = 0
	t.undoLen = 0
	t.working = 0
	m.Regs = vm.Registers{PC: t.img.EntryPC, SP: t.segTop(0), FP: t.segTop(0)}
	m.CpDisable = 0
	if err := t.Checkpoint(m, vm.CpManual); err != nil {
		return err
	}
	m.Spend(m.Cost.NVWritePerWord)
	m.Mem.WriteWord(t.addrMagic, initMagic)
	return nil
}

func (t *TICS) restore(m *vm.Machine) error {
	m.Spend(m.Cost.RestoreBase)
	t.active = int(m.Mem.ReadWord(t.addrActive) & 1)
	slot := t.addrSlot[t.active]
	slotEpoch := m.Mem.ReadWord(slot + 24)
	hdr := m.Mem.ReadWord(t.addrUndoHdr)
	logEpoch, logLen := hdr>>16, int(hdr&0xFFFF)
	if logEpoch == slotEpoch&0xFFFF {
		// Entries were appended after the active checkpoint: roll back.
		t.rollback(m, logLen)
	}
	// Either way the log is now logically empty for the slot's epoch.
	m.Spend(m.Cost.NVWritePerWord)
	m.Mem.WriteWord(t.addrUndoHdr, (slotEpoch&0xFFFF)<<16)
	t.epoch = slotEpoch
	t.undoLen = 0

	// Restore the checkpointed working segment (only the part the
	// checkpoint captured; a differential checkpoint saved just the used
	// tail, and nothing below the saved SP is live).
	t.working = int(m.Mem.ReadWord(slot + 20))
	used := int(m.Mem.ReadWord(slot + 28))
	if used <= 0 || used > t.segBytes {
		used = t.segBytes
	}
	startWord := (t.segBytes - used) / 4
	for w := startWord; w < t.segWords; w++ {
		m.Spend(m.Cost.NVReadPerWord + m.Cost.NVWritePerWord)
		v := m.Mem.ReadWord(slot + uint32(slotMetaLen+4*w))
		m.Mem.WriteWord(t.segBase(t.working)+uint32(4*w), v)
	}
	t.resetLogged()
	m.Regs = vm.Registers{
		PC: m.Mem.ReadWord(slot + 0),
		SP: m.Mem.ReadWord(slot + 4),
		FP: m.Mem.ReadWord(slot + 8),
		RV: m.Mem.ReadWord(slot + 12),
	}
	m.CpDisable = int(m.Mem.ReadWord(slot + 16))
	m.NoteRestore()
	t.reg.Inc("restores")
	return nil
}

// rollback undoes logged stores newest-first. It is idempotent: a failure
// mid-rollback re-runs it from the same log on the next boot.
func (t *TICS) rollback(m *vm.Machine, n int) {
	if n > 0 {
		m.EmitEvent(obs.EvUndoRollback, int64(n), 0)
	}
	m.PushCat(obs.CatUndoLog)
	defer m.PopCat()
	for i := n - 1; i >= 0; i-- {
		m.Spend(m.Cost.UndoRollback)
		e := t.addrUndo + uint32(i*t.undoEntrySize)
		addr := m.Mem.ReadWord(e)
		size := int(m.Mem.ReadWord(e + 4))
		switch {
		case size == 1:
			m.Mem.WriteByteAt(addr, byte(m.Mem.ReadWord(e+8)))
		case size <= 4:
			m.Mem.WriteWord(addr, m.Mem.ReadWord(e+8))
		default: // block entry
			for off := 0; off < size; off += 4 {
				if off > 0 {
					m.Spend(m.Cost.NVReadPerWord + m.Cost.NVWritePerWord)
				}
				m.Mem.WriteWord(addr+uint32(off), m.Mem.ReadWord(e+8+uint32(off)))
			}
		}
		t.reg.Inc("undo-rollbacks")
	}
}

// resetLogged clears the volatile block-dedup set (in lockstep with the
// undo log itself).
func (t *TICS) resetLogged() {
	if len(t.loggedBlocks) > 0 {
		t.loggedBlocks = map[uint32]bool{}
	}
}

// ---- Checkpoint ----

// Checkpoint implements vm.Runtime: a two-phase commit of the register
// file and the working segment into the inactive slot, finished by an
// atomic flip of the active-slot word, after which the undo log is reset
// under the new epoch.
func (t *TICS) Checkpoint(m *vm.Machine, kind vm.CpKind) error {
	if kind == vm.CpTimer && m.CpDisabled() {
		return nil
	}
	// How much of the segment to capture: everything (fixed worst-case
	// bound, the paper's design) or just the used tail above SP
	// (differential checkpoints — cheaper, but variable).
	used := t.segBytes
	if t.cfg.DifferentialCheckpoints {
		top := t.segTop(t.working)
		if m.Regs.SP <= top && m.Regs.SP >= t.segBase(t.working) {
			used = int(top - m.Regs.SP)
		}
		if used == 0 {
			used = 4
		}
	}
	m.EmitEvent(obs.EvCheckpointBegin, int64(kind), int64(slotMetaLen+used))
	m.ObserveMetric("undo_len_per_epoch", float64(t.undoLen))
	m.PushCat(obs.CatCheckpoint)
	m.Spend(m.Cost.CheckpointBase)
	target := 1 - t.active
	slot := t.addrSlot[target]
	newEpoch := t.epoch + 1
	m.Spend(7 * m.Cost.NVWritePerWord)
	m.Mem.WriteWord(slot+0, m.Regs.PC)
	m.Mem.WriteWord(slot+4, m.Regs.SP)
	m.Mem.WriteWord(slot+8, m.Regs.FP)
	m.Mem.WriteWord(slot+12, m.Regs.RV)
	m.Mem.WriteWord(slot+16, uint32(m.CpDisable))
	m.Mem.WriteWord(slot+20, uint32(t.working))
	m.Mem.WriteWord(slot+24, newEpoch)
	m.Mem.WriteWord(slot+28, uint32(used))
	// Copy the captured part (charged as the two-phase copy).
	base := t.segBase(t.working)
	for w := (t.segBytes - used) / 4; w < t.segWords; w++ {
		m.Spend(2 * (m.Cost.NVReadPerWord + m.Cost.NVWritePerWord))
		m.Mem.WriteWord(slot+uint32(slotMetaLen+4*w), m.Mem.ReadWord(base+uint32(4*w)))
	}
	// Atomic commit. Pre-charge the flag flip and the undo-header reset:
	// Spend can die with the window (power failure), and a failure after
	// the flip but before the commit bookkeeping would leave a durably
	// committed checkpoint whose observables were never flushed and whose
	// commit event was never emitted (found by the trace auditor under
	// fuzzed failure timing). Charging first keeps every failure point
	// strictly before the flip, so a torn checkpoint is always restored
	// from the *old* slot.
	m.Spend(2 * m.Cost.NVWritePerWord)
	m.Mem.WriteWord(t.addrActive, uint32(target))
	t.active = target
	// Reset the undo log under the new epoch (single-word write).
	m.Mem.WriteWord(t.addrUndoHdr, (newEpoch&0xFFFF)<<16)
	t.epoch = newEpoch
	t.undoLen = 0
	t.resetLogged()
	m.PopCat()
	m.NoteCheckpoint(kind)
	t.reg.Inc("checkpoints")
	return nil
}

// ---- Memory consistency management ----

// PreStore implements vm.Runtime: a full undo log forces a checkpoint
// *before* the store instruction executes, so the checkpoint's PC
// re-executes the whole store on restore and the cleared log has room for
// its entry (paper §3.1.2: "TICS forces a checkpoint when the undo log is
// full to eliminate the overflow and ensure forward progress").
func (t *TICS) PreStore(m *vm.Machine) error {
	if t.undoLen < t.undoCap {
		return nil
	}
	if m.CpDisabled() {
		m.Fault("undo log exhausted inside an atomic time-annotation block")
	}
	t.reg.Inc("forced-checkpoints")
	return t.Checkpoint(m, vm.CpManual)
}

// LoggedStore implements vm.Runtime: the paper's instrumented store. A
// store inside the working segment needs no versioning (the segment
// checkpoint covers it); anything else is write-ahead undo-logged.
func (t *TICS) LoggedStore(m *vm.Machine, addr uint32, size int, value uint32) error {
	m.Spend(m.Cost.PtrCheck)
	if t.inWorking(addr, size) {
		m.RawStore(addr, size, value)
		t.reg.Inc("stores-direct")
		return nil
	}
	if t.blockBytes > 4 {
		// Block granularity: log the containing block once per epoch;
		// later writes to the same block skip straight to the store.
		block := addr &^ uint32(t.blockBytes-1)
		if t.loggedBlocks[block] {
			m.RawStore(addr, size, value)
			t.reg.Inc("stores-block-hit")
			return nil
		}
		if t.undoLen >= t.undoCap {
			m.Fault("undo log overflow") // PreStore should have checkpointed
		}
		if t.skipUndoAt > 0 {
			if t.skipUndoAt--; t.skipUndoAt == 0 {
				m.RawStore(addr, size, value)
				return nil
			}
		}
		m.EmitEvent(obs.EvUndoAppend, int64(block), int64(t.blockBytes))
		m.PushCat(obs.CatUndoLog)
		m.Spend(m.Cost.UndoLogEntry)
		e := t.addrUndo + uint32(t.undoLen*t.undoEntrySize)
		m.Mem.WriteWord(e, block)
		m.Mem.WriteWord(e+4, uint32(t.blockBytes))
		for off := 0; off < t.blockBytes; off += 4 {
			if off > 0 {
				m.Spend(m.Cost.NVReadPerWord + m.Cost.NVWritePerWord)
			}
			m.Mem.WriteWord(e+8+uint32(off), m.Mem.ReadWord(block+uint32(off)))
		}
		t.undoLen++
		m.Mem.WriteWord(t.addrUndoHdr, (t.epoch&0xFFFF)<<16|uint32(t.undoLen))
		m.PopCat()
		t.loggedBlocks[block] = true
		m.RawStore(addr, size, value)
		t.reg.Inc("stores-logged")
		return nil
	}
	if t.undoLen >= t.undoCap {
		m.Fault("undo log overflow") // PreStore should have checkpointed
	}
	if t.skipUndoAt > 0 {
		if t.skipUndoAt--; t.skipUndoAt == 0 {
			m.RawStore(addr, size, value)
			return nil
		}
	}
	m.EmitEvent(obs.EvUndoAppend, int64(addr), int64(size))
	m.PushCat(obs.CatUndoLog)
	m.Spend(m.Cost.UndoLogEntry)
	var old uint32
	if size == 1 {
		old = uint32(m.Mem.ReadByteAt(addr))
	} else {
		old = m.Mem.ReadWord(addr)
	}
	e := t.addrUndo + uint32(t.undoLen*t.undoEntrySize)
	m.Mem.WriteWord(e, addr)
	m.Mem.WriteWord(e+4, uint32(size))
	m.Mem.WriteWord(e+8, old)
	// Commit the entry by bumping the count (atomic single-word write),
	// then perform the program's store.
	t.undoLen++
	m.Mem.WriteWord(t.addrUndoHdr, (t.epoch&0xFFFF)<<16|uint32(t.undoLen))
	m.PopCat()
	m.RawStore(addr, size, value)
	t.reg.Inc("stores-logged")
	return nil
}

// ---- Stack segmentation ----

// Enter implements vm.Runtime. The machine has already advanced PC past
// the Enter instruction, so a checkpoint taken here resumes with the frame
// set up.
func (t *TICS) Enter(m *vm.Machine, fn int) error {
	meta, err := t.img.FuncAt(fn)
	if err != nil {
		return err
	}
	if m.Regs.SP < uint32(meta.FrameBytes) || m.Regs.SP-uint32(meta.FrameBytes) < t.segBase(t.working) {
		// Stack grow: switch the working stack to the next segment,
		// moving the return PC and the on-stack arguments with it.
		if t.working+1 >= t.numSegs {
			m.Fault("segment array exhausted entering %s (%d segments of %d B)", meta.Name, t.numSegs, t.segBytes)
		}
		m.EmitEvent(obs.EvStackGrow, int64(t.working+1), int64(meta.EntryCopyBytes))
		m.PushCat(obs.CatCheckpoint)
		m.Spend(m.Cost.StackGrow)
		copyBytes := meta.EntryCopyBytes
		oldSP := m.Regs.SP
		newSP := t.segTop(t.working+1) - uint32(copyBytes)
		for off := 0; off < copyBytes; off += 4 {
			m.Spend(m.Cost.NVReadPerWord + m.Cost.NVWritePerWord)
			m.Mem.WriteWord(newSP+uint32(off), m.Mem.ReadWord(oldSP+uint32(off)))
		}
		t.working++
		ctl := t.addrSegCtl + uint32(t.working*segCtlLen)
		m.Spend(2 * m.Cost.NVWritePerWord)
		m.Mem.WriteWord(ctl+4, oldSP) // caller SP at the call site
		m.Regs.SP = newSP
		m.Push(m.Regs.FP)
		m.Mem.WriteWord(ctl, m.Regs.SP) // grow-frame FP marker
		m.Regs.FP = m.Regs.SP
		m.Regs.SP -= uint32(meta.LocalBytes)
		m.PopCat()
		t.reg.Inc("stack-grows")
		// Inside an atomic time-annotation block the restore point must
		// stay at the block entry (paper §3.2.3: "computation starts from
		// the if statement after each power failure"), so the stack-change
		// checkpoint is suppressed; the block-entry checkpoint's segment
		// copy plus the undo log still cover every write for rollback.
		if m.CpDisabled() {
			t.reg.Inc("suppressed-grow-cps")
			return nil
		}
		return t.Checkpoint(m, vm.CpStackGrow)
	}
	m.Push(m.Regs.FP)
	m.Regs.FP = m.Regs.SP
	m.Regs.SP -= uint32(meta.LocalBytes)
	return nil
}

// Leave implements vm.Runtime: the epilogue, plus the stack shrink and the
// enforced checkpoint when the returning frame is the one that grew the
// working stack (paper Figure 7, steps 3–4).
func (t *TICS) Leave(m *vm.Machine) error {
	growFP := uint32(0)
	if t.working > 0 {
		growFP = m.Mem.ReadWord(t.addrSegCtl + uint32(t.working*segCtlLen))
	}
	isGrowFrame := t.working > 0 && growFP == m.Regs.FP
	m.Regs.SP = m.Regs.FP
	m.Regs.FP = m.Pop()
	ret := m.Pop()
	if isGrowFrame {
		m.EmitEvent(obs.EvStackShrink, int64(t.working-1), 0)
		m.PushCat(obs.CatCheckpoint)
		m.Spend(m.Cost.StackShrink)
		callerSP := m.Mem.ReadWord(t.addrSegCtl + uint32(t.working*segCtlLen) + 4)
		t.working--
		m.Regs.SP = callerSP + 4 // the caller's stack with the return PC popped
		m.Regs.PC = ret
		m.PopCat()
		t.reg.Inc("stack-shrinks")
		if m.CpDisabled() {
			t.reg.Inc("suppressed-shrink-cps")
			return nil
		}
		return t.Checkpoint(m, vm.CpStackShrink)
	}
	m.Regs.PC = ret
	return nil
}

// ---- Timely execution ----

// OnExpiry implements vm.Runtime: the exception-based @expires/catch.
// Expiration restores the block-entry checkpoint (undo rollback + segment
// + registers); re-executing the ExpCatch check then branches into the
// catch handler because the data is now stale (paper §3.2.3).
func (t *TICS) OnExpiry(m *vm.Machine) error {
	t.reg.Inc("expiry-restores")
	return t.restore(m)
}

// Transition implements vm.Runtime: TICS is not a task-based system.
func (t *TICS) Transition(m *vm.Machine, task int32) error {
	m.Fault("transition_to(%d): TICS runs legacy code, not task graphs", task)
	return nil
}

// OnInterrupt implements vm.Runtime (paper §4): "TICS disables (automatic)
// checkpoints before interrupt service routines". The transfer itself is
// call-like; a power failure before the ISR completes restores the
// pre-interrupt checkpoint, so the interrupt simply never happened.
func (t *TICS) OnInterrupt(m *vm.Machine, isrEntry uint32) error {
	m.CpDisable++
	m.Push(m.Regs.PC)
	m.Regs.PC = isrEntry
	t.reg.Inc("interrupts")
	return nil
}

// OnInterruptReturn implements vm.Runtime (paper §4): "places an implicit
// checkpoint right after the return-from-interrupt instruction", which
// commits the ISR's effects exactly once.
func (t *TICS) OnInterruptReturn(m *vm.Machine) error {
	if m.CpDisable > 0 {
		m.CpDisable--
	}
	t.reg.Inc("isr-checkpoints")
	return t.Checkpoint(m, vm.CpManual)
}
