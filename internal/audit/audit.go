// Package audit is the online trace auditor: an obs.Sink that watches a
// machine's event stream as it is emitted and mechanically checks the
// consistency guarantees the runtimes claim, the properties "Towards a
// Formal Foundation of Intermittent Computing" identifies as the ones
// intermittent systems silently violate.
//
// The auditor maintains a shadow model of committed non-volatile state:
// at every commit point (checkpoint commit, task-transition commit) it
// snapshots the data region — globals, BSS, mark counters, timestamp
// shadow slots; everything outside the volatile-by-convention stack —
// plus the register file, without charging simulated cycles (mem.Peek)
// and without perturbing the run. Against that shadow it checks:
//
//   - rollback exactness: after every restore, the data region and the
//     register file equal the state at the last commit. Divergence is
//     reported per address range with the store that caused it (the
//     auditor tracks the last writer of every audited byte).
//   - undo-log completeness: under an undo-logging runtime, every
//     program store outside the working segment must be covered by an
//     undo-append in the same epoch before it executes.
//   - checkpoint atomicity: a power failure between checkpoint-begin and
//     checkpoint-commit leaves a torn buffer; the next restore must come
//     from the last *committed* checkpoint, never the torn one.
//   - time consistency: once an @expires deadline passes (the expiry
//     event fires), no send may happen until the runtime has restored to
//     the handler — consuming expired data is the violation TICS's
//     restore-to-block-entry exists to prevent.
//
// A correct runtime (TICS) passes every check under every power model; a
// runtime with a weaker discipline (Mementos without versioned globals,
// a runtime with an injected log-skip fault) is flagged with the
// offending address and event index. That is the paper's Table 1 story,
// machine-checked on every run.
package audit

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Check names a property the auditor verifies.
type Check string

const (
	CheckRollback   Check = "rollback-exactness"
	CheckUndoLog    Check = "undo-completeness"
	CheckAtomicity  Check = "checkpoint-atomicity"
	CheckTime       Check = "time-consistency"
	CheckRegisters  Check = "register-exactness"
	CheckEventOrder Check = "event-grammar"
)

// Violation is one detected invariant breach, anchored to the event
// stream by EventSeq (the ordinal of the event being processed when the
// breach was found — for an injected undo-log fault this is the index of
// the first event proving the miss).
type Violation struct {
	Check     Check
	EventSeq  int64 // ordinal in the run's full event stream
	Cycles    int64 // machine cycle counter at detection
	Addr      uint32
	Want, Got uint32
	WriterSeq int64 // seq of the last event before the offending store (-1: unknown)
	Detail    string
}

func (v Violation) String() string {
	s := fmt.Sprintf("%s at event %d (cycle %d)", v.Check, v.EventSeq, v.Cycles)
	if v.Addr != 0 || v.Check == CheckRollback || v.Check == CheckUndoLog {
		s += fmt.Sprintf(" addr=%#06x", v.Addr)
	}
	if v.Want != v.Got {
		s += fmt.Sprintf(" want=%#x got=%#x", v.Want, v.Got)
	}
	if v.WriterSeq >= 0 {
		s += fmt.Sprintf(" last-writer-after-event=%d", v.WriterSeq)
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// Options configures an Auditor.
type Options struct {
	// FailFast halts the machine on the first violation, so the run stops
	// at the earliest evidence instead of accumulating follow-on noise.
	FailFast bool
	// MaxViolations bounds the recorded list (default 64); further
	// violations are counted but not stored.
	MaxViolations int
	// CheckUndoLog forces the undo-completeness check on or off. Nil
	// auto-enables it for runtimes whose discipline is undo/redo logging
	// (tics, chinchilla, alpaca, ink, mayfly) and disables it for
	// full-state checkpointers (plain, mementos), whose stores are
	// legitimately unlogged.
	CheckUndoLog *bool
	// CheckTime forces the time-consistency check on or off. Nil enables
	// it (the default): any runtime that sends data whose @expires
	// deadline passed without handling the expiry is flagged. Harnesses
	// comparing against baselines that make no timeliness claim at all
	// (Mementos, Chinchilla — the paper's Table 1) set this false to
	// measure their performance without tripping on the known violation.
	CheckTime *bool
}

type writeRec struct {
	val byte
	seq int64 // events emitted before the store executed
}

type regFile struct{ pc, sp, fp, rv uint32 }

// Auditor watches one machine's run. Attach it before Run; afterwards,
// Violations/Err/Summary report what it saw.
type Auditor struct {
	m   *vm.Machine
	opt Options

	base, end uint32 // audited data region [base, end)

	shadow     []byte // data region at the last commit
	cur        []byte // scratch for the comparison
	shadowRegs regFile
	haveShadow bool
	// regsValid: the last commit captured registers (a checkpoint). Task
	// commits recover control by re-entering the task, not by a register
	// file restore, so the register-exactness check does not apply.
	regsValid bool
	commitSeq int64

	undoCheck  bool
	timeCheck  bool
	covered    map[uint32]bool     // bytes covered by undo appends this epoch
	lastWriter map[uint32]writeRec // last store into each audited byte this epoch

	cpOpen      bool
	cpBeginSeq  int64
	cpBeginRegs regFile
	torn        *regFile // begin-state of a checkpoint a failure tore
	tornSeq     int64

	expiryPending  bool
	expirySeq      int64
	expiryDeadline int64

	seq        int64 // events seen so far (== seq of the next event)
	total      int64 // violations detected (including unrecorded ones)
	violations []Violation
	tripped    bool // FailFast fired; stop checking
}

// Attach builds an auditor for m and subscribes it to the machine's
// recorder and store stream. The machine must have a recorder attached.
func Attach(m *vm.Machine, opt Options) (*Auditor, error) {
	rec := m.Recorder()
	if rec == nil {
		return nil, errors.New("audit: machine has no recorder attached (the auditor is an event-stream sink)")
	}
	if rec.Seq() != 0 {
		return nil, errors.New("audit: recorder already carries events; attach the auditor before Run")
	}
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 64
	}
	a := &Auditor{
		m:          m,
		opt:        opt,
		base:       m.Img.GlobalsBase,
		end:        m.Img.StackBase,
		covered:    map[uint32]bool{},
		lastWriter: map[uint32]writeRec{},
		commitSeq:  -1,
	}
	a.timeCheck = opt.CheckTime == nil || *opt.CheckTime
	if opt.CheckUndoLog != nil {
		a.undoCheck = *opt.CheckUndoLog
	} else {
		switch m.Runtime().Name() {
		case "tics", "chinchilla", "alpaca", "ink", "mayfly":
			a.undoCheck = true
		}
	}
	a.shadow = make([]byte, a.end-a.base)
	a.cur = make([]byte, a.end-a.base)
	rec.AddSink(a)
	m.ObserveStores(a.onStore)
	return a, nil
}

// Region returns the audited address interval [base, end).
func (a *Auditor) Region() (uint32, uint32) { return a.base, a.end }

func (a *Auditor) report(v Violation) {
	if a.tripped {
		return
	}
	a.total++
	if len(a.violations) < a.opt.MaxViolations {
		a.violations = append(a.violations, v)
	}
	if a.opt.FailFast {
		a.tripped = true
		a.m.Halt()
	}
}

// onStore observes every program-order store (vm.Machine.OnStore).
func (a *Auditor) onStore(addr uint32, size int, val uint32, _ int64) {
	if a.tripped {
		return
	}
	o, n := overlap(addr, uint32(size), a.base, a.end)
	if n == 0 {
		return
	}
	if a.undoCheck {
		for i := uint32(0); i < n; i++ {
			if !a.covered[o+i] {
				a.report(Violation{
					Check:     CheckUndoLog,
					EventSeq:  a.seq,
					Cycles:    a.m.Cycles(),
					Addr:      addr,
					WriterSeq: a.seq - 1,
					Detail: fmt.Sprintf("store of %d B (value %#x) has no undo-log entry covering %#06x this epoch",
						size, val, o+i),
				})
				break
			}
		}
	}
	for i := uint32(0); i < n; i++ {
		a.lastWriter[o+i] = writeRec{val: byte(val >> (8 * (o + i - addr))), seq: a.seq - 1}
	}
}

// OnEvent implements obs.Sink.
func (a *Auditor) OnEvent(seq int64, ev obs.Event) {
	a.seq = seq + 1
	if a.tripped {
		return
	}
	switch ev.Kind {
	case obs.EvCheckpointBegin:
		a.cpOpen = true
		a.cpBeginSeq = seq
		a.cpBeginRegs = a.regs()
	case obs.EvCheckpointCommit:
		a.snapshot(seq, true)
		a.cpOpen = false
		a.torn = nil
	case obs.EvTaskCommit:
		a.snapshot(seq, false)
		a.cpOpen = false
		a.torn = nil
	case obs.EvPowerFail:
		if a.cpOpen {
			r := a.cpBeginRegs
			a.torn = &r
			a.tornSeq = a.cpBeginSeq
			a.cpOpen = false
		}
	case obs.EvRestore:
		a.checkRestore(seq)
	case obs.EvUndoAppend:
		lo, n := overlap(uint32(ev.Arg0), uint32(ev.Arg1), a.base, a.end)
		for i := uint32(0); i < n; i++ {
			a.covered[lo+i] = true
		}
	case obs.EvExpiry:
		a.expiryPending = true
		a.expirySeq = seq
		a.expiryDeadline = ev.Arg0
	case obs.EvSend:
		if !a.timeCheck {
			return
		}
		if a.expiryPending {
			a.report(Violation{
				Check:    CheckTime,
				EventSeq: seq,
				Cycles:   ev.Cycles,
				Detail: fmt.Sprintf("send of value %d after the @expires deadline (device ms %d) passed at event %d without a restore — expired data consumed",
					ev.Arg0, a.expiryDeadline, a.expirySeq),
			})
		} else if a.m.ExpiryArmed && ev.DeviceMs > a.m.ExpiryDeadline {
			a.report(Violation{
				Check:    CheckTime,
				EventSeq: seq,
				Cycles:   ev.Cycles,
				Detail: fmt.Sprintf("send at device ms %d with an armed @expires deadline %d already passed and no expiry event",
					ev.DeviceMs, a.m.ExpiryDeadline),
			})
		}
	}
}

// snapshot records the committed state the next restore must reproduce.
// regsKnown marks commits that capture the register file (checkpoints);
// task commits pass false.
func (a *Auditor) snapshot(seq int64, regsKnown bool) {
	a.m.Mem.Peek(a.base, a.shadow)
	a.shadowRegs = a.regs()
	a.haveShadow = true
	a.regsValid = regsKnown
	a.commitSeq = seq
	// A commit closes the epoch: the undo log resets, and stores before
	// this point can no longer explain post-restore divergence.
	clear(a.covered)
	clear(a.lastWriter)
}

// checkRestore verifies rollback exactness, register exactness and
// checkpoint atomicity at an EvRestore (the runtime reports the restore
// complete: registers and memory are rebuilt).
func (a *Auditor) checkRestore(seq int64) {
	defer func() {
		clear(a.covered)
		clear(a.lastWriter)
		a.torn = nil
		a.cpOpen = false
		a.expiryPending = false
	}()
	if !a.haveShadow {
		return
	}
	if got := a.regs(); a.regsValid && got != a.shadowRegs {
		if a.torn != nil && got == *a.torn {
			a.report(Violation{
				Check:    CheckAtomicity,
				EventSeq: seq,
				Cycles:   a.m.Cycles(),
				Detail: fmt.Sprintf("restore resumed from the torn checkpoint begun at event %d (pc=%#x) instead of the commit at event %d (pc=%#x)",
					a.tornSeq, a.torn.pc, a.commitSeq, a.shadowRegs.pc),
			})
		} else {
			a.report(Violation{
				Check:    CheckRegisters,
				EventSeq: seq,
				Cycles:   a.m.Cycles(),
				Want:     a.shadowRegs.pc,
				Got:      got.pc,
				Detail: fmt.Sprintf("registers after restore {pc:%#x sp:%#x fp:%#x rv:%#x} != committed {pc:%#x sp:%#x fp:%#x rv:%#x} (commit at event %d)",
					got.pc, got.sp, got.fp, got.rv,
					a.shadowRegs.pc, a.shadowRegs.sp, a.shadowRegs.fp, a.shadowRegs.rv, a.commitSeq),
			})
		}
	}
	a.m.Mem.Peek(a.base, a.cur)
	reported := 0
	for i := 0; i < len(a.cur); {
		if a.cur[i] == a.shadow[i] {
			i++
			continue
		}
		// Group the divergence into a maximal contiguous range.
		j := i
		for j < len(a.cur) && a.cur[j] != a.shadow[j] {
			j++
		}
		if reported < 8 {
			addr := a.base + uint32(i)
			w, haveW := a.lastWriter[addr]
			writerSeq := int64(-1)
			detail := fmt.Sprintf("%d byte(s) differ from the commit at event %d", j-i, a.commitSeq)
			if haveW {
				writerSeq = w.seq
				detail += fmt.Sprintf("; last store to %#06x (value byte %#02x) happened after event %d and was not rolled back",
					addr, w.val, w.seq)
			}
			a.report(Violation{
				Check:     CheckRollback,
				EventSeq:  seq,
				Cycles:    a.m.Cycles(),
				Addr:      addr,
				Want:      uint32(a.shadow[i]),
				Got:       uint32(a.cur[i]),
				WriterSeq: writerSeq,
				Detail:    detail,
			})
		}
		reported++
		i = j
	}
	if reported > 8 {
		a.report(Violation{
			Check:    CheckRollback,
			EventSeq: seq,
			Cycles:   a.m.Cycles(),
			Detail:   fmt.Sprintf("%d further divergent ranges suppressed", reported-8),
		})
	}
}

func (a *Auditor) regs() regFile {
	r := a.m.Regs
	return regFile{pc: r.PC, sp: r.SP, fp: r.FP, rv: r.RV}
}

// Violations returns the recorded violations (bounded by MaxViolations).
func (a *Auditor) Violations() []Violation {
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Total returns the number of violations detected, including any beyond
// the recording bound.
func (a *Auditor) Total() int64 { return a.total }

// Err returns nil when the run satisfied every audited invariant, and an
// error naming the first violation otherwise.
func (a *Auditor) Err() error {
	if a.total == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s); first: %s", a.total, a.violations[0])
}

// Summary renders a human-readable per-check tally plus the recorded
// violations.
func (a *Auditor) Summary() string {
	var b strings.Builder
	if a.total == 0 {
		fmt.Fprintf(&b, "audit: ok (%d events, region [%#06x,%#06x), undo-log check %s)\n",
			a.seq, a.base, a.end, onOff(a.undoCheck))
		return b.String()
	}
	counts := map[Check]int{}
	for _, v := range a.violations {
		counts[v.Check]++
	}
	fmt.Fprintf(&b, "audit: %d violation(s) in %d events\n", a.total, a.seq)
	for _, c := range []Check{CheckRollback, CheckUndoLog, CheckAtomicity, CheckTime, CheckRegisters, CheckEventOrder} {
		if counts[c] > 0 {
			fmt.Fprintf(&b, "  %-22s %d\n", c, counts[c])
		}
	}
	for i, v := range a.violations {
		if i >= 16 {
			fmt.Fprintf(&b, "  ... (%d more recorded)\n", len(a.violations)-16)
			break
		}
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// overlap clips [addr, addr+n) to [base, end) and returns the clipped
// start and length.
func overlap(addr, n, base, end uint32) (uint32, uint32) {
	lo, hi := addr, addr+n
	if lo < base {
		lo = base
	}
	if hi > end {
		hi = end
	}
	if hi <= lo {
		return 0, 0
	}
	return lo, hi - lo
}
