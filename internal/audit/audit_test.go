package audit_test

import (
	"strings"
	"testing"

	tics "repro"
	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/vm"
)

const tinySrc = `
int g0; int g1; int g2; int g3; int g4; int g5; int g6; int g7;
int main() { g0 = 1; out(0, g0); return 0; }
`

// rig builds a tiny TICS machine with a recorder and an attached auditor,
// powered on so tests can drive events synthetically (emulating a buggy
// runtime) without running the program.
func rig(t *testing.T, opt audit.Options) (*vm.Machine, *audit.Auditor) {
	t.Helper()
	img, err := tics.Build(tinySrc, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:    power.Continuous{},
		Recorder: obs.NewRecorder(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := audit.Attach(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	m.PowerOn(1 << 40)
	return m, a
}

func TestAttachRequiresRecorder(t *testing.T) {
	img, err := tics.Build(tinySrc, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{Power: power.Continuous{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := audit.Attach(m, audit.Options{}); err == nil {
		t.Fatal("Attach without a recorder must fail")
	}
}

func TestCleanRunHasNoViolations(t *testing.T) {
	img, err := tics.Build(tinySrc, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:    &power.FailEvery{Cycles: 700, OffMs: 5},
		Recorder: obs.NewRecorder(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := audit.Attach(m, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || !res.Completed {
		t.Fatalf("run: %v %+v", err, res)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("clean TICS run flagged: %v", err)
	}
	if !strings.Contains(a.Summary(), "audit: ok") {
		t.Fatalf("summary: %s", a.Summary())
	}
}

func TestRollbackExactnessViolationCarriesAddressAndWriter(t *testing.T) {
	m, a := rig(t, audit.Options{})
	base, _ := a.Region()

	// A commit snapshots the shadow; an unlogged store then dirties the
	// data region; a restore that does NOT roll it back must be flagged.
	m.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m.EmitEvent(obs.EvCheckpointCommit, 0, 0) // seq 1: shadow taken here
	m.Mem.WriteByteAt(base+2, 0xAB)
	m.OnStore(base+2, 1, 0xAB, 0) // program-order store, no undo-append
	m.EmitEvent(obs.EvRestore, 0, 0)

	vs := a.Violations()
	var rollback *audit.Violation
	for i := range vs {
		if vs[i].Check == audit.CheckRollback {
			rollback = &vs[i]
		}
	}
	if rollback == nil {
		t.Fatalf("no rollback violation in %v", vs)
	}
	if rollback.Addr != base+2 || rollback.Got != 0xAB {
		t.Fatalf("violation anchor wrong: %+v", rollback)
	}
	if rollback.WriterSeq < 0 || !strings.Contains(rollback.Detail, "last store") {
		t.Fatalf("missing causative-write attribution: %+v", rollback)
	}
	// The unlogged store itself also breaks undo completeness (TICS is an
	// undo-logging runtime).
	if vs[0].Check != audit.CheckUndoLog {
		t.Fatalf("first violation should be the uncovered store, got %+v", vs[0])
	}
}

func TestUndoAppendCoversStore(t *testing.T) {
	m, a := rig(t, audit.Options{})
	base, _ := a.Region()
	m.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m.EmitEvent(obs.EvCheckpointCommit, 0, 0)
	m.EmitEvent(obs.EvUndoAppend, int64(base+8), 4)
	m.OnStore(base+8, 4, 42, 0)
	if err := a.Err(); err != nil {
		t.Fatalf("covered store flagged: %v", err)
	}
	// A second store to a *different* word in the same epoch is uncovered.
	m.OnStore(base+16, 4, 42, 0)
	if a.Total() != 1 || a.Violations()[0].Check != audit.CheckUndoLog {
		t.Fatalf("uncovered store not flagged: %v", a.Violations())
	}
}

func TestCheckpointAtomicityViolation(t *testing.T) {
	m, a := rig(t, audit.Options{})

	committed := vm.Registers{PC: 0x100, SP: 0x8000, FP: 0x8000}
	m.Regs = committed
	m.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m.EmitEvent(obs.EvCheckpointCommit, 0, 0)

	// Later, a checkpoint begins at different registers and a power
	// failure tears it.
	torn := vm.Registers{PC: 0x200, SP: 0x7ff0, FP: 0x8000}
	m.Regs = torn
	m.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m.EmitEvent(obs.EvPowerFail, 0, 1)

	// A buggy runtime restores from the torn buffer: the registers come
	// back as they were at the torn begin, not the last commit.
	m.Regs = torn
	m.EmitEvent(obs.EvRestore, 0, 0)

	vs := a.Violations()
	if len(vs) != 1 || vs[0].Check != audit.CheckAtomicity {
		t.Fatalf("want one atomicity violation, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "torn checkpoint") {
		t.Fatalf("detail: %s", vs[0].Detail)
	}

	// Control: the correct recovery (registers from the last commit) after
	// a torn checkpoint is clean.
	m2, a2 := rig(t, audit.Options{})
	m2.Regs = committed
	m2.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m2.EmitEvent(obs.EvCheckpointCommit, 0, 0)
	m2.Regs = torn
	m2.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m2.EmitEvent(obs.EvPowerFail, 0, 1)
	m2.Regs = committed
	m2.EmitEvent(obs.EvRestore, 0, 0)
	if err := a2.Err(); err != nil {
		t.Fatalf("correct torn-checkpoint recovery flagged: %v", err)
	}
}

func TestTimeConsistencyViolation(t *testing.T) {
	m, a := rig(t, audit.Options{})
	m.EmitEvent(obs.EvExpiry, 250, 0)
	m.EmitEvent(obs.EvSend, 99, 0)
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Check != audit.CheckTime {
		t.Fatalf("want one time-consistency violation, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "expired data") {
		t.Fatalf("detail: %s", vs[0].Detail)
	}

	// Control: expiry followed by the runtime's restore, then a send, is
	// the correct TICS behavior.
	m2, a2 := rig(t, audit.Options{})
	m2.EmitEvent(obs.EvCheckpointBegin, 0, 0)
	m2.EmitEvent(obs.EvCheckpointCommit, 0, 0)
	m2.EmitEvent(obs.EvExpiry, 250, 0)
	m2.EmitEvent(obs.EvRestore, 0, 0)
	m2.EmitEvent(obs.EvSend, 99, 0)
	if err := a2.Err(); err != nil {
		t.Fatalf("handled expiry flagged: %v", err)
	}
}

func TestCheckTimeKnobDisablesTimeConsistency(t *testing.T) {
	off := false
	m, a := rig(t, audit.Options{CheckTime: &off})
	m.EmitEvent(obs.EvExpiry, 250, 0)
	m.EmitEvent(obs.EvSend, 99, 0)
	if err := a.Err(); err != nil {
		t.Fatalf("time check disabled but flagged: %v", err)
	}
}

func TestFailFastHaltsAndStopsChecking(t *testing.T) {
	m, a := rig(t, audit.Options{FailFast: true})
	m.EmitEvent(obs.EvExpiry, 1, 0)
	m.EmitEvent(obs.EvSend, 1, 0) // violation: halts the machine, trips the auditor
	m.EmitEvent(obs.EvSend, 2, 0) // would be a second violation; must be ignored
	if a.Total() != 1 || len(a.Violations()) != 1 {
		t.Fatalf("fail-fast recorded %d violations", a.Total())
	}
}
