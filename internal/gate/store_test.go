package gate

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
)

// synthArrivals builds a deterministic arrival stream with duplicates
// (retransmits and echoes) and a spread of latencies, some past the
// freshness deadline used by the tests.
func synthArrivals(seed int64, n int) []fleet.Arrival {
	rng := rand.New(rand.NewSource(seed))
	var out []fleet.Arrival
	for i := 0; i < n; i++ {
		dev := rng.Intn(7)
		seq := int64(rng.Intn(40))
		sent := float64(i) * 3.5
		copies := 1 + rng.Intn(3)
		for c := 0; c < copies; c++ {
			out = append(out, fleet.Arrival{
				Dev:      dev,
				Seq:      seq,
				Value:    int32(seq * 10),
				SentMs:   sent,
				DeviceMs: int64(sent),
				ArriveMs: sent + 2 + rng.Float64()*150, // some blow a 100ms budget
				Attempt:  c,
				Echo:     c > 0 && rng.Intn(4) == 0,
			})
		}
	}
	return out
}

// asBatches slices arrivals into batches of the given size, converted to
// wire frames.
func asBatches(arrivals []fleet.Arrival, freshMs float64, size int) [][]Frame {
	var batches [][]Frame
	for i := 0; i < len(arrivals); i += size {
		end := i + size
		if end > len(arrivals) {
			end = len(arrivals)
		}
		var b []Frame
		for _, a := range arrivals[i:end] {
			b = append(b, FrameFromArrival(a, freshMs))
		}
		batches = append(batches, b)
	}
	return batches
}

// refGateway runs the in-process gateway over the globally sorted
// stream — the ground truth every store result must match.
func refGateway(arrivals []fleet.Arrival, freshMs float64) *fleet.Gateway {
	sorted := append([]fleet.Arrival(nil), arrivals...)
	fleet.SortArrivals(sorted)
	gw := fleet.NewGateway(freshMs)
	for _, a := range sorted {
		gw.Accept(a)
	}
	return gw
}

func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

func mustIngest(t *testing.T, st *Store, source string, batch uint64, frames []Frame) bool {
	t.Helper()
	applied, err := st.Ingest(source, batch, frames)
	if err != nil {
		t.Fatalf("Ingest(%s, %d): %v", source, batch, err)
	}
	return applied
}

// assertMatchesRef checks that the store's durable accounting is
// byte/bit-identical to the in-process gateway's.
func assertMatchesRef(t *testing.T, st *Store, gw *fleet.Gateway) {
	t.Helper()
	if got, want := st.Digest(), gw.Digest(); got != want {
		t.Fatalf("digest mismatch: store %s, gateway %s", got, want)
	}
	if got, want := st.Stats(), gw.Stats(); got != want {
		t.Fatalf("stats mismatch: store %+v, gateway %+v", got, want)
	}
	if got, want := st.Unique(), gw.Unique(); got != want {
		t.Fatalf("unique mismatch: store %d, gateway %d", got, want)
	}
	sum := st.Summary()
	if got, want := sum.P50Ms, gw.LatencyQuantile(0.50); got != want {
		t.Fatalf("p50 mismatch: store %g, gateway %g", got, want)
	}
	if got, want := sum.P99Ms, gw.LatencyQuantile(0.99); got != want {
		t.Fatalf("p99 mismatch: store %g, gateway %g", got, want)
	}
}

// TestStoreMatchesInProcessGateway is the order-independence theorem in
// test form: the same arrival set, batched in stream order or fully
// shuffled, produces accounting identical to the in-process gateway's
// globally sorted adjudication.
func TestStoreMatchesInProcessGateway(t *testing.T) {
	const fresh = 100.0
	arrivals := synthArrivals(7, 300)
	gw := refGateway(arrivals, fresh)

	for name, order := range map[string][]fleet.Arrival{
		"stream-order": arrivals,
		"shuffled": func() []fleet.Arrival {
			s := append([]fleet.Arrival(nil), arrivals...)
			rand.New(rand.NewSource(99)).Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
			return s
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			st := openStore(t, t.TempDir(), Options{})
			defer st.Close()
			for i, b := range asBatches(order, fresh, 37) {
				if !mustIngest(t, st, "src", uint64(i+1), b) {
					t.Fatalf("batch %d unexpectedly deduplicated", i+1)
				}
			}
			assertMatchesRef(t, st, gw)
		})
	}
}

// TestIngestIdempotenceAndGap pins the exactly-once contract: replays at
// or below the high-water mark are silent no-ops, gaps are loud errors.
func TestIngestIdempotenceAndGap(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	frames := asBatches(synthArrivals(1, 30), 0, 10)

	for i, b := range frames {
		if !mustIngest(t, st, "src", uint64(i+1), b) {
			t.Fatalf("batch %d not applied", i+1)
		}
	}
	want := st.Digest()
	arrivalsBefore := st.Stats().Arrivals

	// Replays: every already-applied batch, in any order, changes nothing.
	for _, i := range []int{2, 0, 1, 2} {
		if mustIngest(t, st, "src", uint64(i+1), frames[i]) {
			t.Fatalf("replay of batch %d reported applied", i+1)
		}
	}
	if st.Digest() != want || st.Stats().Arrivals != arrivalsBefore {
		t.Fatal("replays mutated state")
	}

	// A gap is refused and leaves no trace.
	if _, err := st.Ingest("src", uint64(len(frames)+2), frames[0]); err == nil {
		t.Fatal("batch gap accepted")
	} else if got := st.SourceHWM("src"); got != uint64(len(frames)) {
		t.Fatalf("gap moved hwm to %d", got)
	}

	// Batch 0 and empty sources are rejected up front.
	if _, err := st.Ingest("src", 0, nil); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := st.Ingest("", 1, nil); err == nil {
		t.Fatal("empty source accepted")
	}

	// A second source numbers independently.
	if !mustIngest(t, st, "other", 1, frames[0]) {
		t.Fatal("fresh source batch 1 not applied")
	}
	if st.Sources() != 2 {
		t.Fatalf("sources = %d, want 2", st.Sources())
	}
}

// TestKillAndReplayTorture kills the store (abandons it without Close —
// the in-memory state dies, the fsynced bytes survive) after every
// single batch, reopens from disk, replays the "unacknowledged" batch
// the way a retrying client would, and demands the final accounting be
// identical to a crash-free in-process run.
func TestKillAndReplayTorture(t *testing.T) {
	const fresh = 100.0
	arrivals := synthArrivals(13, 200)
	gw := refGateway(arrivals, fresh)
	batches := asBatches(arrivals, fresh, 23)
	dir := t.TempDir()

	st := openStore(t, dir, Options{})
	for i, b := range batches {
		mustIngest(t, st, "src", uint64(i+1), b)
		// SIGKILL: drop the handle on the floor. Reopen from bytes only.
		st = openStore(t, dir, Options{})
		if got := st.SourceHWM("src"); got != uint64(i+1) {
			t.Fatalf("after kill at batch %d: hwm %d", i+1, got)
		}
		// The client never saw the ack, so it retries the batch.
		if mustIngest(t, st, "src", uint64(i+1), b) {
			t.Fatalf("retry of durable batch %d applied twice", i+1)
		}
	}
	defer st.Close()
	assertMatchesRef(t, st, gw)
	if rec := st.Recovery(); rec.Batches == 0 {
		t.Fatalf("final recovery replayed no batches: %+v", rec)
	}
}

// TestCompactionPreservesState forces snapshot compactions mid-stream
// and checks the reopened store still matches the reference.
func TestCompactionPreservesState(t *testing.T) {
	const fresh = 100.0
	arrivals := synthArrivals(21, 250)
	gw := refGateway(arrivals, fresh)
	dir := t.TempDir()

	st := openStore(t, dir, Options{CompactLimit: 2048}) // tiny: compacts every few batches
	for i, b := range asBatches(arrivals, fresh, 31) {
		mustIngest(t, st, "src", uint64(i+1), b)
	}
	if st.Snapshots() == 0 {
		t.Fatal("compact limit never tripped")
	}
	assertMatchesRef(t, st, gw)
	st.Close()

	st = openStore(t, dir, Options{CompactLimit: 2048})
	defer st.Close()
	if !st.Recovery().Snapshot {
		t.Fatal("reopen did not load the snapshot")
	}
	assertMatchesRef(t, st, gw)
}

// TestCrashBetweenSnapshotAndWALReset recreates Compact's one dangerous
// window — new snapshot durable, old WAL still in place — and checks the
// idempotent replay makes it invisible.
func TestCrashBetweenSnapshotAndWALReset(t *testing.T) {
	const fresh = 100.0
	arrivals := synthArrivals(31, 150)
	gw := refGateway(arrivals, fresh)
	dir := t.TempDir()

	st := openStore(t, dir, Options{CompactLimit: -1})
	for i, b := range asBatches(arrivals, fresh, 19) {
		mustIngest(t, st, "src", uint64(i+1), b)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, "gate.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Crash simulation: the snapshot rename happened, the WAL reset is
	// undone by restoring the full pre-compaction log.
	if err := os.WriteFile(filepath.Join(dir, "gate.wal"), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, Options{CompactLimit: -1})
	defer st2.Close()
	if !st2.Recovery().Snapshot {
		t.Fatal("snapshot not loaded")
	}
	if st2.Recovery().Batches != 0 {
		t.Fatalf("snapshot-covered WAL batches re-applied: %+v", st2.Recovery())
	}
	assertMatchesRef(t, st2, gw)
}

// TestFreshnessPerFrame checks the expiry predicate matches the gateway
// and is honored per frame.
func TestFreshnessPerFrame(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	mustIngest(t, st, "src", 1, []Frame{
		{Dev: 1, Seq: 1, SentMs: 0, ArriveMs: 50, FreshMs: 100},  // fresh
		{Dev: 1, Seq: 2, SentMs: 0, ArriveMs: 150, FreshMs: 100}, // expired
		{Dev: 1, Seq: 3, SentMs: 0, ArriveMs: 9999, FreshMs: 0},  // no budget: never expires
	})
	stats := st.Stats()
	if stats.Delivered != 2 || stats.Expired != 1 {
		t.Fatalf("stats = %+v, want 2 delivered / 1 expired", stats)
	}
	if n := len(st.Deliveries()); n != 2 {
		t.Fatalf("deliveries = %d, want 2", n)
	}
}
