package gate

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
)

func postIngest(t *testing.T, h http.Handler, req IngestRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body)))
	return w
}

func TestServerIngestContract(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	h := NewServer(st).Handler()
	frames := []Frame{{Dev: 1, Seq: 1, ArriveMs: 5}, {Dev: 1, Seq: 2, ArriveMs: 6}}

	// First batch applies.
	w := postIngest(t, h, IngestRequest{Source: "s", Batch: 1, Frames: frames})
	if w.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", w.Code, w.Body)
	}
	var resp IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.HWM != 1 {
		t.Fatalf("resp = %+v", resp)
	}

	// Replay is 200 with applied=false — the retry contract.
	w = postIngest(t, h, IngestRequest{Source: "s", Batch: 1, Frames: frames})
	json.Unmarshal(w.Body.Bytes(), &resp)
	if w.Code != http.StatusOK || resp.Applied || resp.HWM != 1 {
		t.Fatalf("replay: %d %+v", w.Code, resp)
	}

	// A gap is 409.
	if w = postIngest(t, h, IngestRequest{Source: "s", Batch: 5, Frames: frames}); w.Code != http.StatusConflict {
		t.Fatalf("gap: %d, want 409", w.Code)
	}

	// Garbage is 400.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader("{nope")))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", w.Code)
	}
}

func TestServerDigestHealthzMetrics(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	h := NewServer(st).Handler()
	postIngest(t, h, IngestRequest{Source: "s", Batch: 1, Frames: []Frame{
		{Dev: 1, Seq: 1, ArriveMs: 5},
		{Dev: 1, Seq: 1, ArriveMs: 9, Attempt: 1}, // duplicate
	}})

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/digest", nil))
	var sum fleet.RemoteSummary
	if err := json.Unmarshal(w.Body.Bytes(), &sum); err != nil {
		t.Fatalf("digest decode: %v (%s)", err, w.Body)
	}
	if sum.Unique != 1 || sum.Stats.Arrivals != 2 || sum.Stats.Duplicates != 1 || sum.Digest != st.Digest() {
		t.Fatalf("summary = %+v", sum)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, name := range []string{
		"gate_ingest_batches", "gate_ingest_frames", "gate_wal_bytes",
		"gate_wal_fsyncs", "gate_unique_packets", "gate_duplicates", "gate_arrivals",
	} {
		if !strings.Contains(w.Body.String(), name) {
			t.Fatalf("/metrics missing %s:\n%s", name, w.Body)
		}
	}
}

// TestClientRetriesTransientFailures pins the client's backoff loop:
// refused-connection-style 503s and torn responses are retried, 4xx is
// surfaced immediately.
func TestClientRetriesTransientFailures(t *testing.T) {
	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	real := NewServer(st).Handler()
	var fails int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, 0)
	fails = 2
	if err := c.IngestWave([]fleet.Arrival{{Dev: 1, Seq: 1, ArriveMs: 3}}); err != nil {
		t.Fatalf("ingest through 503s: %v", err)
	}
	if st.Unique() != 1 {
		t.Fatalf("unique = %d", st.Unique())
	}
	fails = 1
	sum, err := c.Finalize()
	if err != nil {
		t.Fatalf("finalize through 503: %v", err)
	}
	if sum.Digest != st.Digest() {
		t.Fatal("finalize digest mismatch")
	}

	// A client that skips ahead gets the 409 back as a hard error.
	bad := NewClient(ts.URL, 0)
	bad.batch = 7 // pretend 7 batches were sent on a different connection
	if err := bad.IngestWave(nil); err == nil {
		t.Fatal("batch gap did not surface")
	}
}
