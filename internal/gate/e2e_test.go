package gate

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
)

// e2eCfg is a small but non-trivial fleet: lossy duplicating channel,
// retransmits, and a freshness deadline, so the gateway exercises every
// verdict.
func e2eCfg(workers int) fleet.Config {
	return fleet.Config{
		Devices: 8,
		Workers: workers,
		App:     "ghm",
		Runtime: "tics",
		Power:   "harvest:40000,800",
		Seed:    42,
		WallMs:  300,
		Link: fleet.LinkParams{
			Loss: 0.1, Dup: 0.05, DelayMinMs: 2, DelayMaxMs: 20,
			Retransmits: 2, BackoffMs: 5,
		},
		FreshnessMs: 500,
		Wave:        2, // 8 devices / wave 2 = four ingest batches per run
	}
}

// assertRemoteMatches checks the remote-attached report against the
// in-process reference on every gateway-derived field.
func assertRemoteMatches(t *testing.T, rep, ref *fleet.Report) {
	t.Helper()
	if rep.Digest != ref.Digest {
		t.Fatalf("digest: remote %s, in-process %s", rep.Digest, ref.Digest)
	}
	if rep.Gateway != ref.Gateway {
		t.Fatalf("gateway stats: remote %+v, in-process %+v", rep.Gateway, ref.Gateway)
	}
	if rep.Lost != ref.Lost {
		t.Fatalf("lost: remote %d, in-process %d", rep.Lost, ref.Lost)
	}
	if rep.LatencyP50 != ref.LatencyP50 || rep.LatencyP99 != ref.LatencyP99 {
		t.Fatalf("latency: remote %g/%g, in-process %g/%g",
			rep.LatencyP50, rep.LatencyP99, ref.LatencyP50, ref.LatencyP99)
	}
}

// TestFleetRemoteDigestEquality is the tentpole acceptance check at the
// package level: the same manifest run against a live HTTP gateway
// produces a report byte-identical to the in-process gateway's.
func TestFleetRemoteDigestEquality(t *testing.T) {
	ref, err := fleet.Run(e2eCfg(1))
	if err != nil {
		t.Fatal(err)
	}

	st := openStore(t, t.TempDir(), Options{})
	defer st.Close()
	ts := httptest.NewServer(NewServer(st).Handler())
	defer ts.Close()

	cfg := e2eCfg(4) // different worker count on top: still identical
	cfg.Remote = NewClient(ts.URL, cfg.FreshnessMs)
	cfg.Trace = true // spans close via the remote path: wire-reached or lost
	rep, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRemoteMatches(t, rep, ref)
	if st.Digest() != ref.Digest {
		t.Fatal("durable store digest diverged from report")
	}

	// Remote-mode telemetry: verdicts live in the service, so every
	// chain resolves to remote (frames reached the wire) or lost.
	var remote, lost int64
	for _, tr := range rep.Telemetry.Traces() {
		switch tr.Verdict.Outcome {
		case fleet.OutcomeRemote:
			remote++
		case fleet.OutcomeLost:
			lost++
		default:
			t.Fatalf("dev %d seq %d: outcome %q in remote mode", tr.Dev, tr.Seq, tr.Verdict.Outcome)
		}
	}
	if remote == 0 {
		t.Fatal("no spans marked remote")
	}
	if lost != ref.Lost {
		t.Fatalf("telemetry lost = %d, report lost = %d", lost, ref.Lost)
	}
}

// crashingGateway is the HTTP-level kill-and-restart harness: on the
// crashAt-th ingest it lets the real server make the batch durable, then
// severs the connection without a response (the client sees a torn
// reply) and replaces the server with one recovered from the same
// directory — all in-memory state discarded, exactly like a SIGKILL +
// restart.
type crashingGateway struct {
	t       *testing.T
	dir     string
	crashAt int

	mu      sync.Mutex
	srv     *Server
	batches int
	crashed bool
}

func (g *crashingGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	if r.Method == http.MethodPost && !g.crashed {
		g.batches++
		if g.batches == g.crashAt {
			g.crashed = true
			// Apply + fsync for real, discard the response.
			g.srv.Handler().ServeHTTP(httptest.NewRecorder(), r)
			// "Restart": recover a fresh server from disk alone.
			st, err := Open(g.dir, Options{})
			if err != nil {
				g.mu.Unlock()
				g.t.Errorf("recovery open: %v", err)
				return
			}
			if st.Recovery().Batches == 0 {
				g.t.Error("recovery replayed no batches")
			}
			g.srv = NewServer(st)
			g.mu.Unlock()
			// Tear the connection mid-response.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
	}
	srv := g.srv
	g.mu.Unlock()
	srv.Handler().ServeHTTP(w, r)
}

// TestFleetRemoteCrashRestart is the acceptance criterion with the kill
// in the worst window: the gateway dies after fsyncing a batch but
// before acknowledging it, restarts from disk, and the fleet's retried
// batch dedups — final digest still byte-identical to in-process.
func TestFleetRemoteCrashRestart(t *testing.T) {
	ref, err := fleet.Run(e2eCfg(1))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st := openStore(t, dir, Options{})
	gw := &crashingGateway{t: t, dir: dir, crashAt: 3, srv: NewServer(st)}
	ts := httptest.NewServer(gw)
	defer ts.Close()

	cfg := e2eCfg(2)
	client := NewClient(ts.URL, cfg.FreshnessMs)
	client.RetryBudget = 30 * time.Second
	cfg.Remote = client
	rep, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !gw.crashed {
		t.Fatalf("fleet produced %d batches, crash at %d never fired", gw.batches, gw.crashAt)
	}
	assertRemoteMatches(t, rep, ref)
}
