package gate

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"

	"repro/internal/obs"
)

// Server fronts a Store with the ticsgate HTTP surface:
//
//	POST /v1/ingest   one batch of frames; 200 with {"applied":...}
//	                  after the WAL fsync, 409 on a batch-sequence gap
//	GET  /v1/digest   durable accounting: digest, stats, quantiles
//	GET  /healthz     liveness plus recovery info
//	GET  /metrics     Prometheus text format (obs registry + gauges)
//
// The store is single-writer; one mutex serializes every handler. That
// is deliberate: ingest durability is fsync-bound, not lock-bound, and
// a total order over batch applications keeps the exactly-once
// reasoning one-dimensional.
type Server struct {
	// CrashAfter, when positive, SIGKILLs the process immediately after
	// the Nth *applied* batch is made durable but before its HTTP
	// response is written — the nastiest crash window there is (client
	// must retry; gateway must dedup the retry). Fault injection for
	// the CI gate-smoke and the torture tests; never set in production.
	CrashAfter int64

	mu sync.Mutex
	st *Store

	reg     *obs.Registry
	applied int64
}

// NewServer wraps an opened store.
func NewServer(st *Store) *Server {
	reg := obs.NewRegistry()
	return &Server{st: st, reg: reg}
}

// IngestRequest is the POST /v1/ingest body.
type IngestRequest struct {
	// Source names the producer; Batch is its 1-based, strictly
	// sequential batch number. Together they make retries idempotent.
	Source string  `json:"source"`
	Batch  uint64  `json:"batch"`
	Frames []Frame `json:"frames"`
}

// IngestResponse acknowledges a durable batch.
type IngestResponse struct {
	Applied bool   `json:"applied"` // false = idempotent replay of an already-applied batch
	HWM     uint64 `json:"hwm"`     // the source's applied-batch high-water mark
}

// Handler returns the ticsgate mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/digest", s.handleDigest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError()
		http.Error(w, "bad ingest body: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	applied, err := s.st.Ingest(req.Source, req.Batch, req.Frames)
	var hwm uint64
	if err == nil {
		hwm = s.st.SourceHWM(req.Source)
		s.reg.Inc("gate_ingest_batches")
		if applied {
			s.applied++
			s.reg.Add("gate_ingest_frames", int64(len(req.Frames)))
		} else {
			s.reg.Inc("gate_ingest_replayed_batches")
		}
	}
	crash := err == nil && applied && s.CrashAfter > 0 && s.applied >= s.CrashAfter
	s.mu.Unlock()

	if err != nil {
		s.countError()
		code := http.StatusBadRequest
		if errors.Is(err, ErrBatchGap) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	if crash {
		// The batch is fsynced and applied; the ack is about to be lost.
		// A real power failure does exactly this.
		fmt.Fprintln(os.Stderr, "ticsgate: -crash-after fault injection: dying after applied batch", s.applied)
		proc, _ := os.FindProcess(os.Getpid())
		proc.Kill() // SIGKILL: no deferred cleanup, no graceful close
		select {}   // unreachable; Kill is asynchronous in theory
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(IngestResponse{Applied: applied, HWM: hwm})
}

// countError bumps the error counter under the store mutex — the obs
// registry is not itself concurrency-safe, so every registry touch in
// this file happens while holding s.mu.
func (s *Server) countError() {
	s.mu.Lock()
	s.reg.Inc("gate_ingest_errors")
	s.mu.Unlock()
}

func (s *Server) handleDigest(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	sum := s.st.Summary()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	rec := s.st.Recovery()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"status": "ok", "recovery": rec})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.st.Stats()
	s.reg.SetGauge("gate_wal_bytes", float64(s.st.WALBytes()))
	s.reg.SetGauge("gate_wal_fsyncs", float64(s.st.Fsyncs()))
	s.reg.SetGauge("gate_snapshots", float64(s.st.Snapshots()))
	s.reg.SetGauge("gate_sources", float64(s.st.Sources()))
	s.reg.SetGauge("gate_unique_packets", float64(s.st.Unique()))
	s.reg.SetGauge("gate_delivered", float64(st.Delivered))
	s.reg.SetGauge("gate_duplicates", float64(st.Duplicates))
	s.reg.SetGauge("gate_expired", float64(st.Expired))
	s.reg.SetGauge("gate_arrivals", float64(st.Arrivals))
	s.reg.SetGauge("gate_recovery_ms", s.st.Recovery().DurationMs)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
