package gate

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/fleet"
)

// Client streams a fleet's channel arrivals to a ticsgate service and
// implements fleet.RemoteGateway. Exactly-once is split across the two
// ends: the client numbers batches 1, 2, 3, … and retries transient
// failures (connection refused while the gateway restarts, a 5xx, a
// response lost to a mid-ingest kill) with exponential backoff; the
// gateway's WAL-backed high-water mark makes every retry idempotent. A
// batch is therefore applied exactly once no matter how many times the
// wire delivered it.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:9190".
	Base string
	// Source identifies this producer for batch dedup. NewClient draws
	// a random one; a deliberate reuse would interleave two producers'
	// batch numbering and trip ErrBatchGap by design.
	Source string
	// FreshMs is the freshness budget stamped on every frame — the
	// fleet's Config.FreshnessMs, enforced gateway-side.
	FreshMs float64
	// RetryBudget bounds how long one request keeps retrying transient
	// failures (0 = DefaultRetryBudget). It must comfortably cover a
	// gateway kill + restart.
	RetryBudget time.Duration
	// HTTP is the transport (nil = a client with DefaultRequestTimeout).
	HTTP *http.Client

	batch uint64
}

// DefaultRetryBudget is how long a request retries before giving up.
const DefaultRetryBudget = 60 * time.Second

// DefaultRequestTimeout bounds one HTTP attempt.
const DefaultRequestTimeout = 10 * time.Second

// NewClient builds a client for a ticsgate base URL with a fresh random
// source identity and the given per-frame freshness budget.
func NewClient(base string, freshMs float64) *Client {
	var b [8]byte
	rand.Read(b[:])
	return &Client{
		Base:    strings.TrimRight(base, "/"),
		Source:  "fleet-" + hex.EncodeToString(b[:]),
		FreshMs: freshMs,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: DefaultRequestTimeout}
}

// IngestWave ships one wave of arrivals as the next batch. Called from
// the fleet's deterministic channel pass, in wave order.
func (c *Client) IngestWave(arrivals []fleet.Arrival) error {
	c.batch++
	frames := make([]Frame, len(arrivals))
	for i, a := range arrivals {
		frames[i] = FrameFromArrival(a, c.FreshMs)
	}
	body, err := json.Marshal(IngestRequest{Source: c.source(), Batch: c.batch, Frames: frames})
	if err != nil {
		return err
	}
	var resp IngestResponse
	return c.retry(func() error {
		return c.once(http.MethodPost, "/v1/ingest", body, &resp)
	})
}

// Finalize fetches the service's durable accounting.
func (c *Client) Finalize() (fleet.RemoteSummary, error) {
	var sum fleet.RemoteSummary
	err := c.retry(func() error {
		return c.once(http.MethodGet, "/v1/digest", nil, &sum)
	})
	return sum, err
}

func (c *Client) source() string {
	if c.Source == "" {
		c.Source = NewClient("", 0).Source
	}
	return c.Source
}

// transientError marks failures worth retrying: transport errors and
// 5xx server states. 4xx responses are protocol bugs and surface
// immediately.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

func (c *Client) once(method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return transientError{fmt.Errorf("gate: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("gate: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A response torn by a dying gateway: the batch may or may not
		// be durable, which is exactly what the retry + idempotent
		// replay path resolves.
		return transientError{fmt.Errorf("gate: %s %s: decoding response: %w", method, path, err)}
	}
	return nil
}

// retry runs fn until it succeeds, fails non-transiently, or the retry
// budget runs out; backoff doubles from 100ms to a 2s ceiling.
func (c *Client) retry(fn func() error) error {
	budget := c.RetryBudget
	if budget <= 0 {
		budget = DefaultRetryBudget
	}
	deadline := time.Now().Add(budget)
	backoff := 100 * time.Millisecond
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if _, ok := err.(transientError); !ok {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gate: retry budget (%s) exhausted: %w", budget, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}
