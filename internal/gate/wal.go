// Package gate is the standalone gateway service: the fleet's
// exactly-once dedup/freshness sink promoted from an in-process pass to
// a long-running HTTP server (cmd/ticsgate) that survives its own power
// failures the way the paper's devices survive theirs. Devices prove
// exactly-once across reboots with an NV send-sequence shadow; the
// gateway proves it across process kills with a durable write-ahead log:
// every ingested batch is CRC-framed, appended and fsynced before it is
// acknowledged, so a SIGKILL at any byte boundary loses nothing that was
// acked and re-delivers nothing that was applied.
//
// The store's dedup state is deliberately order-independent: for every
// (device, seq) it retains the fleet.ArrivalBefore-minimal arrival, so
// the delivery log, stats, latency quantiles and SHA-256 digest it
// reports are a pure function of the *set* of ingested frames — equal to
// what the in-process fleet.Gateway computes from the globally sorted
// arrival stream, no matter how HTTP batches interleave, retry, or
// replay across crashes.
package gate

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// WAL file framing. Both the log (gate.wal) and the snapshot
// (gate.snap) use the same container: an 8-byte header (magic +
// version), then records of
//
//	[type u8][payload len u32 LE][payload][CRC32-C u32 LE]
//
// with the CRC covering type+len+payload. A record is only meaningful
// if it is whole and its CRC matches; recovery stops at the first
// violation and truncates the log there (the torn tail is, by the fsync
// ordering, bytes that were never acknowledged).
const (
	walMagic   = "TGWL"
	walVersion = 1
	walHdrLen  = 8 // magic(4) + version u32

	recBatch    = byte(1) // one acknowledged ingest batch
	recSnapshot = byte(2) // full store state (snapshot file only)

	recOverhead = 1 + 4 + 4 // type + len + crc
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fileHeader renders the 8-byte container header.
func fileHeader() []byte {
	h := make([]byte, walHdrLen)
	copy(h, walMagic)
	binary.LittleEndian.PutUint32(h[4:], walVersion)
	return h
}

// checkHeader validates a container header.
func checkHeader(b []byte) error {
	if len(b) < walHdrLen {
		return fmt.Errorf("gate: file shorter than header (%d bytes)", len(b))
	}
	if string(b[:4]) != walMagic {
		return fmt.Errorf("gate: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != walVersion {
		return fmt.Errorf("gate: wal version %d, this build understands %d", v, walVersion)
	}
	return nil
}

// frameRecord wraps a payload in the record framing.
func frameRecord(typ byte, payload []byte) []byte {
	rec := make([]byte, 0, recOverhead+len(payload))
	rec = append(rec, typ)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	crc := crc32.Checksum(rec[:5+len(payload)], crcTable)
	return binary.LittleEndian.AppendUint32(rec, crc)
}

// record is one decoded WAL record.
type record struct {
	typ     byte
	payload []byte
}

// scanRecords walks the byte stream after the header and returns every
// whole, CRC-valid record plus the offset (from the start of b) where
// the clean prefix ends. Anything past that offset — a short header, a
// truncated length, a half-written payload, a CRC mismatch — is the
// torn tail of a crash and must be truncated away, never skipped over:
// record boundaries downstream of a tear cannot be trusted.
func scanRecords(b []byte) (recs []record, good int64) {
	off := int64(walHdrLen)
	if int64(len(b)) < off {
		return nil, int64(len(b))
	}
	for {
		rest := b[off:]
		if len(rest) < 5 { // type + len don't fit
			return recs, off
		}
		plen := int64(binary.LittleEndian.Uint32(rest[1:5]))
		total := 5 + plen + 4
		if int64(len(rest)) < total {
			return recs, off
		}
		want := binary.LittleEndian.Uint32(rest[5+plen : total])
		if crc32.Checksum(rest[:5+plen], crcTable) != want {
			return recs, off
		}
		recs = append(recs, record{typ: rest[0], payload: rest[5 : 5+plen]})
		off += total
	}
}

// Binary scalar helpers (little endian throughout).

func appendU64(b []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(b, v) }
func appendU32(b []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(b, v) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("gate: record payload truncated at offset %d (want %d more bytes of %d)", r.off, n, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *binReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *binReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *binReader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *binReader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *binReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *binReader) str16() string { return string(r.take(int(r.u16()))) }

// done errors unless the payload was consumed exactly.
func (r *binReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("gate: record payload has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// Frame encoding: the fixed 53-byte wire form of one arrival inside a
// batch or snapshot payload.

const frameLen = 4 + 8 + 4 + 8 + 8 + 8 + 4 + 1 + 8

func appendFrame(b []byte, f Frame) []byte {
	b = appendU32(b, uint32(f.Dev))
	b = appendU64(b, uint64(f.Seq))
	b = appendU32(b, uint32(f.Value))
	b = appendF64(b, f.SentMs)
	b = appendU64(b, uint64(f.DeviceMs))
	b = appendF64(b, f.ArriveMs)
	b = appendU32(b, uint32(f.Attempt))
	echo := byte(0)
	if f.Echo {
		echo = 1
	}
	b = append(b, echo)
	return appendF64(b, f.FreshMs)
}

func (r *binReader) frame() Frame {
	return Frame{
		Dev:      int(int32(r.u32())),
		Seq:      int64(r.u64()),
		Value:    int32(r.u32()),
		SentMs:   r.f64(),
		DeviceMs: int64(r.u64()),
		ArriveMs: r.f64(),
		Attempt:  int(int32(r.u32())),
		Echo:     r.u8() != 0,
		FreshMs:  r.f64(),
	}
}

// Batch payload: [source str16][batch u64][count u32][count × frame].

func encodeBatch(source string, batch uint64, frames []Frame) []byte {
	b := make([]byte, 0, 2+len(source)+8+4+len(frames)*frameLen)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(source)))
	b = append(b, source...)
	b = appendU64(b, batch)
	b = appendU32(b, uint32(len(frames)))
	for _, f := range frames {
		b = appendFrame(b, f)
	}
	return b
}

func decodeBatch(payload []byte) (source string, batch uint64, frames []Frame, err error) {
	r := &binReader{b: payload}
	source = r.str16()
	batch = r.u64()
	n := int(r.u32())
	if r.err == nil && n > (len(payload)-r.off)/frameLen+1 {
		return "", 0, nil, fmt.Errorf("gate: batch claims %d frames in %d payload bytes", n, len(payload))
	}
	frames = make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		frames = append(frames, r.frame())
	}
	if err = r.done(); err != nil {
		return "", 0, nil, err
	}
	return source, batch, frames, nil
}

// Snapshot payload: [arrivals u64][nsources u32][nsources × (source
// str16, hwm u64)][nbest u32][nbest × frame]. The (device, seq) key of
// each retained frame rides inside the frame itself.

func encodeSnapshot(arrivals int64, sources map[string]uint64, best []Frame) []byte {
	b := make([]byte, 0, 8+4+len(sources)*16+4+len(best)*frameLen)
	b = appendU64(b, uint64(arrivals))
	b = appendU32(b, uint32(len(sources)))
	for _, src := range sortedSourceKeys(sources) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(src)))
		b = append(b, src...)
		b = appendU64(b, sources[src])
	}
	b = appendU32(b, uint32(len(best)))
	for _, f := range best {
		b = appendFrame(b, f)
	}
	return b
}

func decodeSnapshot(payload []byte) (arrivals int64, sources map[string]uint64, best []Frame, err error) {
	r := &binReader{b: payload}
	arrivals = int64(r.u64())
	ns := int(r.u32())
	sources = make(map[string]uint64, ns)
	for i := 0; i < ns && r.err == nil; i++ {
		src := r.str16()
		sources[src] = r.u64()
	}
	nb := int(r.u32())
	if r.err == nil && nb > (len(payload)-r.off)/frameLen+1 {
		return 0, nil, nil, fmt.Errorf("gate: snapshot claims %d frames in %d payload bytes", nb, len(payload))
	}
	best = make([]Frame, 0, nb)
	for i := 0; i < nb; i++ {
		best = append(best, r.frame())
	}
	if err = r.done(); err != nil {
		return 0, nil, nil, err
	}
	return arrivals, sources, best, nil
}
