package gate

import (
	"os"
	"path/filepath"
	"testing"
)

// walCorpus writes nBatches batches into a never-compacting store and
// returns the directory, the raw WAL bytes, and the digest after each
// prefix of batches (digests[k] = state with the first k batches).
func walCorpus(t *testing.T, nBatches, perBatch int) (dir string, wal []byte, digests []string) {
	t.Helper()
	const fresh = 100.0
	arrivals := synthArrivals(77, nBatches*perBatch/2)
	batches := asBatches(arrivals, fresh, len(arrivals)/nBatches)
	if len(batches) < nBatches {
		t.Fatalf("corpus too small: %d batches", len(batches))
	}
	batches = batches[:nBatches]

	dir = t.TempDir()
	st := openStore(t, dir, Options{CompactLimit: -1})
	digests = []string{st.Digest()}
	for i, b := range batches {
		mustIngest(t, st, "src", uint64(i+1), b)
		digests = append(digests, st.Digest())
	}
	st.Close()

	wal, err := os.ReadFile(filepath.Join(dir, "gate.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, wal, digests
}

// recordOffsets parses the record boundaries out of a clean WAL image.
func recordOffsets(t *testing.T, wal []byte) []int64 {
	t.Helper()
	recs, good := scanRecords(wal)
	if good != int64(len(wal)) {
		t.Fatalf("corpus WAL not clean: %d/%d bytes", good, len(wal))
	}
	offs := []int64{walHdrLen}
	off := int64(walHdrLen)
	for _, r := range recs {
		off += int64(recOverhead + len(r.payload))
		offs = append(offs, off)
	}
	return offs
}

// reopenChopped writes a WAL image into a fresh directory and opens it.
func reopenChopped(t *testing.T, img []byte) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "gate.wal"), img, 0o644); err != nil {
		t.Fatal(err)
	}
	return openStore(t, dir, Options{CompactLimit: -1})
}

// TestWALTruncatedTailEveryOffset is the exhaustive torn-tail corpus:
// the WAL chopped at EVERY byte offset inside the last record must
// recover cleanly to exactly the state before that record, digest
// included, with the torn bytes reported truncated.
func TestWALTruncatedTailEveryOffset(t *testing.T) {
	_, wal, digests := walCorpus(t, 5, 40)
	offs := recordOffsets(t, wal)
	n := len(offs) - 1 // batches in the corpus
	lastStart := offs[n-1]

	for cut := lastStart; cut < int64(len(wal)); cut++ {
		st := reopenChopped(t, wal[:cut])
		if got := st.SourceHWM("src"); got != uint64(n-1) {
			t.Fatalf("cut=%d: hwm %d, want %d", cut, got, n-1)
		}
		if got := st.Digest(); got != digests[n-1] {
			t.Fatalf("cut=%d: digest %s, want %s", cut, got, digests[n-1])
		}
		if got, want := st.Recovery().TruncatedBytes, cut-lastStart; got != want {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, got, want)
		}
		// The truncation is physical: the store keeps appending from the
		// clean prefix, so the retried batch lands durably.
		if st.WALBytes() != lastStart {
			t.Fatalf("cut=%d: wal not truncated to %d (got %d)", cut, lastStart, st.WALBytes())
		}
		st.Close()
	}
}

// TestWALTornRecordEveryOffset flips one byte at every offset of the
// last record: whether the damage hits the type, the length, the payload
// or the CRC, recovery must stop at the previous record. (Flips inside
// the 4-byte length field can also legally read as "record extends past
// EOF" — same verdict: the tail is torn.)
func TestWALTornRecordEveryOffset(t *testing.T) {
	_, wal, digests := walCorpus(t, 5, 40)
	offs := recordOffsets(t, wal)
	n := len(offs) - 1
	lastStart := offs[n-1]

	for pos := lastStart; pos < int64(len(wal)); pos++ {
		img := append([]byte(nil), wal...)
		img[pos] ^= 0x40
		st := reopenChopped(t, img)
		if got := st.SourceHWM("src"); got != uint64(n-1) {
			t.Fatalf("flip@%d: hwm %d, want %d", pos, got, n-1)
		}
		if got := st.Digest(); got != digests[n-1] {
			t.Fatalf("flip@%d: digest diverged", pos)
		}
		st.Close()
	}
}

// TestWALMidLogCorruption flips a byte inside an interior record:
// recovery keeps the clean prefix and refuses to skip past the tear
// (record boundaries after a corrupt record cannot be trusted).
func TestWALMidLogCorruption(t *testing.T) {
	_, wal, digests := walCorpus(t, 5, 40)
	offs := recordOffsets(t, wal)

	for rec := 0; rec < len(offs)-1; rec++ {
		mid := (offs[rec] + offs[rec+1]) / 2
		img := append([]byte(nil), wal...)
		img[mid] ^= 0xFF
		st := reopenChopped(t, img)
		if got := st.SourceHWM("src"); got != uint64(rec) {
			t.Fatalf("corrupt record %d: hwm %d, want %d", rec, got, rec)
		}
		if got := st.Digest(); got != digests[rec] {
			t.Fatalf("corrupt record %d: digest diverged", rec)
		}
		st.Close()
	}
}

// TestWALTornHeader covers the degenerate tears: an empty file, a
// partial header, and a header-only log all recover to an empty store.
func TestWALTornHeader(t *testing.T) {
	hdr := fileHeader()
	for _, cut := range []int{0, 1, walHdrLen - 1, walHdrLen} {
		st := reopenChopped(t, hdr[:cut])
		if st.Unique() != 0 || st.Sources() != 0 {
			t.Fatalf("cut=%d: non-empty recovery", cut)
		}
		// And the rebuilt log is usable.
		mustIngest(t, st, "src", 1, []Frame{{Dev: 1, Seq: 1}})
		st.Close()
	}
}

// TestWALBadMagic rejects a log that is whole but not ours.
func TestWALBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "gate.wal"), []byte("NOPE\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

// TestSnapshotRoundTrip pins the snapshot codec.
func TestSnapshotRoundTrip(t *testing.T) {
	frames := []Frame{
		{Dev: 3, Seq: 9, Value: 90, SentMs: 1.5, DeviceMs: 1, ArriveMs: 7.25, Attempt: 1, Echo: true, FreshMs: 100},
		{Dev: 0, Seq: 0, Value: 0, SentMs: 0, ArriveMs: 0.125},
	}
	sources := map[string]uint64{"a": 4, "b": 17}
	arr, src, best, err := decodeSnapshot(encodeSnapshot(42, sources, frames))
	if err != nil {
		t.Fatal(err)
	}
	if arr != 42 || len(src) != 2 || src["a"] != 4 || src["b"] != 17 {
		t.Fatalf("decoded arrivals=%d sources=%v", arr, src)
	}
	if len(best) != 2 || best[0] != frames[0] || best[1] != frames[1] {
		t.Fatalf("frames round-trip: %+v", best)
	}
	// Trailing garbage must be rejected, not ignored.
	if _, _, _, err := decodeSnapshot(append(encodeSnapshot(1, nil, nil), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
