package gate

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Frame is one channel arrival on the wire: what a fleet wave POSTs to
// /v1/ingest and what the WAL persists. It carries everything the
// in-process gateway reads off a fleet.Arrival, plus the freshness
// budget the sender wants enforced — per frame, so one gateway can
// serve fleets with different @expires_after deadlines.
type Frame struct {
	Dev      int     `json:"dev"`
	Seq      int64   `json:"seq"`
	Value    int32   `json:"value"`
	SentMs   float64 `json:"sent_ms"`
	DeviceMs int64   `json:"device_ms"`
	ArriveMs float64 `json:"arrive_ms"`
	Attempt  int     `json:"attempt"`
	Echo     bool    `json:"echo,omitempty"`
	FreshMs  float64 `json:"fresh_ms,omitempty"` // freshness budget (0 = none)
}

// arrival converts the wire frame back to the fleet's arrival shape for
// ordering comparisons.
func (f Frame) arrival() fleet.Arrival {
	return fleet.Arrival{
		Dev: f.Dev, Seq: f.Seq, Value: f.Value,
		SentMs: f.SentMs, DeviceMs: f.DeviceMs, ArriveMs: f.ArriveMs,
		Attempt: f.Attempt, Echo: f.Echo,
	}
}

// expired reports whether the frame's own freshness budget was blown.
// Identical predicate to fleet.Gateway.Accept's deadline check.
func (f Frame) expired() bool {
	return f.FreshMs > 0 && f.ArriveMs-f.SentMs > f.FreshMs
}

// FrameFromArrival wraps a fleet arrival for the wire.
func FrameFromArrival(a fleet.Arrival, freshMs float64) Frame {
	return Frame{
		Dev: a.Dev, Seq: a.Seq, Value: a.Value,
		SentMs: a.SentMs, DeviceMs: a.DeviceMs, ArriveMs: a.ArriveMs,
		Attempt: a.Attempt, Echo: a.Echo, FreshMs: freshMs,
	}
}

// ErrBatchGap is returned when a source skips ahead in its batch
// numbering: batch b landed while the high-water mark was h < b-1. The
// fleet client sends batches serially, so a gap means frames were lost
// upstream of the WAL — refusing loudly beats silently under-counting.
var ErrBatchGap = errors.New("gate: batch sequence gap")

// DefaultCompactLimit is the WAL size that triggers snapshot
// compaction when Options.CompactLimit is zero.
const DefaultCompactLimit = 4 << 20

// Options configures a store.
type Options struct {
	// CompactLimit is the WAL byte size past which Ingest folds the
	// whole state into gate.snap and resets the log (0 = the 4 MiB
	// DefaultCompactLimit; negative = never compact, the setting the
	// byte-chop recovery corpus uses to keep the log inspectable).
	CompactLimit int64
}

type packetKey struct {
	dev int
	seq int64
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	Snapshot       bool    `json:"snapshot"`        // a gate.snap was loaded
	Batches        int     `json:"batches"`         // WAL batch records replayed
	ReplayedFrames int     `json:"replayed_frames"` // frames inside them
	TruncatedBytes int64   `json:"truncated_bytes"` // torn tail removed from the WAL
	DurationMs     float64 `json:"duration_ms"`
}

// Store is the gateway's durable state: exactly-once batch ingest over
// an fsync-on-batch WAL, order-independent (device, seq) dedup, and
// freshness accounting — everything reconstructible from disk at any
// kill point. Not safe for concurrent use; the HTTP server serializes.
type Store struct {
	dir string
	wal *os.File

	walBytes     int64
	compactLimit int64
	fsyncs       int64
	snapshots    int64
	recovery     RecoveryInfo

	// best holds, per (device, seq), the fleet.ArrivalBefore-minimal
	// frame seen so far — exactly the arrival the in-process gateway
	// would have adjudicated as "first", whatever order batches land in.
	best     map[packetKey]Frame
	arrivals int64             // frames across all applied batches
	sources  map[string]uint64 // per-source applied-batch high-water mark
}

func (s *Store) walPath() string  { return filepath.Join(s.dir, "gate.wal") }
func (s *Store) snapPath() string { return filepath.Join(s.dir, "gate.snap") }

// Open loads (or initializes) a store rooted at dir, recovering state
// from gate.snap + gate.wal: the snapshot is authoritative for
// everything compacted away, and the WAL replays on top of it through
// the same idempotent batch path Ingest uses — so a WAL that overlaps
// the snapshot (the crash window between snapshot rename and log reset)
// re-applies nothing. A torn tail is truncated to the last whole,
// CRC-valid record; by the fsync-before-ack ordering those bytes were
// never acknowledged, so dropping them cannot lose an acked batch.
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:          dir,
		compactLimit: opts.CompactLimit,
		best:         make(map[packetKey]Frame),
		sources:      make(map[string]uint64),
	}
	if s.compactLimit == 0 {
		s.compactLimit = DefaultCompactLimit
	}

	if snap, err := os.ReadFile(s.snapPath()); err == nil {
		if err := s.loadSnapshot(snap); err != nil {
			return nil, err
		}
		s.recovery.Snapshot = true
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.recovery.DurationMs = float64(time.Since(start).Nanoseconds()) / 1e6
	return s, nil
}

// loadSnapshot applies a gate.snap image. Snapshots are written to a
// temp file and renamed into place, so a readable gate.snap is either
// whole or absent; any framing damage here is real corruption and
// fails the open rather than guessing.
func (s *Store) loadSnapshot(b []byte) error {
	if err := checkHeader(b); err != nil {
		return fmt.Errorf("gate: snapshot: %w", err)
	}
	recs, good := scanRecords(b)
	if len(recs) != 1 || good != int64(len(b)) || recs[0].typ != recSnapshot {
		return fmt.Errorf("gate: snapshot corrupt (%d records, %d/%d clean bytes)", len(recs), good, len(b))
	}
	arrivals, sources, best, err := decodeSnapshot(recs[0].payload)
	if err != nil {
		return fmt.Errorf("gate: snapshot: %w", err)
	}
	s.arrivals = arrivals
	s.sources = sources
	for _, f := range best {
		s.best[packetKey{f.Dev, f.Seq}] = f
	}
	return nil
}

// openWAL scans gate.wal, truncates any torn tail, replays the clean
// records, and leaves the file open for append.
func (s *Store) openWAL() error {
	path := s.walPath()
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s.resetWAL()
	}
	if err != nil {
		return err
	}
	if len(b) >= walHdrLen {
		if err := checkHeader(b); err != nil {
			return err
		}
	}
	recs, good := scanRecords(b)
	if good < walHdrLen {
		// The header itself is torn: the only acknowledged state a WAL
		// this short can represent is "empty", so rebuild it.
		s.recovery.TruncatedBytes = int64(len(b))
		return s.resetWAL()
	}
	for _, rec := range recs {
		if rec.typ != recBatch {
			return fmt.Errorf("gate: unexpected record type %d in WAL", rec.typ)
		}
		source, batch, frames, err := decodeBatch(rec.payload)
		if err != nil {
			return err
		}
		// Same idempotent path as live ingest: a batch the snapshot
		// already covers replays as a no-op.
		if batch <= s.sources[source] {
			continue
		}
		if batch != s.sources[source]+1 {
			return fmt.Errorf("%w: source %q batch %d after high-water mark %d (WAL replay)",
				ErrBatchGap, source, batch, s.sources[source])
		}
		s.apply(source, batch, frames)
		s.recovery.Batches++
		s.recovery.ReplayedFrames += len(frames)
	}
	s.recovery.TruncatedBytes = int64(len(b)) - good

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if good < int64(len(b)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walBytes = good
	return nil
}

// resetWAL replaces gate.wal with a fresh header-only log, atomically
// (write temp, fsync, rename, fsync dir) so a crash mid-reset leaves
// either the old log or a whole new one.
func (s *Store) resetWAL() error {
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	path := s.walPath()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(fileHeader()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.wal = f
	s.walBytes = walHdrLen
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// apply folds one batch into memory. Callers have already deduplicated
// by batch sequence and made the record durable.
func (s *Store) apply(source string, batch uint64, frames []Frame) {
	s.arrivals += int64(len(frames))
	for _, f := range frames {
		k := packetKey{f.Dev, f.Seq}
		cur, ok := s.best[k]
		if !ok || fleet.ArrivalBefore(f.arrival(), cur.arrival()) {
			s.best[k] = f
		}
	}
	s.sources[source] = batch
}

// Ingest applies one batch exactly once. Batches from a source must be
// numbered 1, 2, 3, … in order; a batch at or below the source's
// high-water mark is an idempotent replay (applied=false, nil error) —
// the retry path after a lost HTTP response or a crash-recovered WAL —
// and a gap returns ErrBatchGap. The record is appended and fsynced
// BEFORE it is applied or acknowledged: a kill after the fsync
// re-applies it on recovery, a kill before it leaves no trace, and
// either way the client's retry resolves to exactly one application.
func (s *Store) Ingest(source string, batch uint64, frames []Frame) (applied bool, err error) {
	if source == "" || len(source) > 0xFFFF {
		return false, fmt.Errorf("gate: bad source %q", source)
	}
	if batch == 0 {
		return false, fmt.Errorf("gate: batch numbering starts at 1")
	}
	hwm := s.sources[source]
	if batch <= hwm {
		return false, nil
	}
	if batch != hwm+1 {
		return false, fmt.Errorf("%w: source %q batch %d after high-water mark %d", ErrBatchGap, source, batch, hwm)
	}

	rec := frameRecord(recBatch, encodeBatch(source, batch, frames))
	if _, err := s.wal.Write(rec); err != nil {
		return false, fmt.Errorf("gate: wal append: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return false, fmt.Errorf("gate: wal fsync: %w", err)
	}
	s.fsyncs++
	s.walBytes += int64(len(rec))
	s.apply(source, batch, frames)

	if s.compactLimit > 0 && s.walBytes > s.compactLimit {
		if err := s.Compact(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Compact folds the entire store state into gate.snap and resets the
// WAL. Ordering is the crash-safety argument: (1) snapshot to temp,
// fsync, rename over gate.snap, fsync dir — atomic replace; (2) reset
// gate.wal the same way. A kill between (1) and (2) leaves the new
// snapshot plus the old WAL, whose every batch is at or below the
// snapshot's high-water marks and therefore replays as a no-op.
func (s *Store) Compact() error {
	payload := encodeSnapshot(s.arrivals, s.sources, s.bestFrames())
	tmp := s.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(fileHeader()); err == nil {
		_, err = f.Write(frameRecord(recSnapshot, payload))
		if err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("gate: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.resetWAL(); err != nil {
		return err
	}
	s.snapshots++
	return nil
}

// Close fsyncs and closes the WAL. The store must not be used after.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// bestFrames returns the retained first-arrivals in the canonical
// fleet.ArrivalBefore order — deterministic, so snapshots and digests
// of equal state are byte-equal.
func (s *Store) bestFrames() []Frame {
	out := make([]Frame, 0, len(s.best))
	for _, f := range s.best {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return fleet.ArrivalBefore(out[i].arrival(), out[j].arrival()) })
	return out
}

func sortedSourceKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Deliveries returns the accepted (fresh first-arrival) packets in the
// order the in-process gateway would have logged them: the global
// ArrivalBefore sort of the retained first-arrivals.
func (s *Store) Deliveries() []fleet.Delivery {
	var out []fleet.Delivery
	for _, f := range s.bestFrames() {
		if f.expired() {
			continue
		}
		out = append(out, fleet.Delivery{Dev: f.Dev, Seq: f.Seq, Value: f.Value, SentMs: f.SentMs, ArriveMs: f.ArriveMs})
	}
	return out
}

// Digest is the SHA-256 over the delivery log, rendered through the
// same fleet.DigestOf as the in-process gateway — the byte-comparable
// exactly-once witness across process boundaries and crashes.
func (s *Store) Digest() string { return fleet.DigestOf(s.Deliveries()) }

// Stats mirrors fleet.Gateway.Stats over the durable state.
func (s *Store) Stats() fleet.GatewayStats {
	st := fleet.GatewayStats{Arrivals: s.arrivals}
	for _, f := range s.best {
		if f.expired() {
			st.Expired++
		} else {
			st.Delivered++
		}
	}
	st.Duplicates = s.arrivals - int64(len(s.best))
	return st
}

// Unique returns how many distinct (device, seq) packets arrived.
func (s *Store) Unique() int { return len(s.best) }

// latencyHistogram rebuilds the delivered-latency histogram over the
// same fleet.LatencyBounds the in-process gateway observes into, so
// quantiles agree with a local run to the bit.
func (s *Store) latencyHistogram() *obs.Histogram {
	h := obs.NewHistogram(fleet.LatencyBounds)
	for _, f := range s.best {
		if !f.expired() {
			h.Observe(f.ArriveMs - f.SentMs)
		}
	}
	return h
}

// Summary bundles the remote-gateway accounting a finalizing fleet
// needs — the exact fields fleet.Run fills from its in-process gateway.
func (s *Store) Summary() fleet.RemoteSummary {
	h := s.latencyHistogram()
	return fleet.RemoteSummary{
		Stats:  s.Stats(),
		Unique: int64(s.Unique()),
		P50Ms:  h.Quantile(0.50),
		P99Ms:  h.Quantile(0.99),
		Digest: s.Digest(),
	}
}

// WALBytes is the current log size (header included).
func (s *Store) WALBytes() int64 { return s.walBytes }

// Fsyncs counts batch fsyncs since open.
func (s *Store) Fsyncs() int64 { return s.fsyncs }

// Snapshots counts compactions since open.
func (s *Store) Snapshots() int64 { return s.snapshots }

// Sources returns the number of distinct ingest sources seen.
func (s *Store) Sources() int { return len(s.sources) }

// SourceHWM returns a source's applied-batch high-water mark.
func (s *Store) SourceHWM(source string) uint64 { return s.sources[source] }

// Recovery describes what Open reconstructed from disk.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }
