package fleet

import "testing"

// geCfg is fleetCfg with the channel switched to the Gilbert–Elliott
// burst-loss model: near-lossless Good state, heavily lossy Bad state.
func geCfg(workers int) Config {
	cfg := fleetCfg(workers)
	cfg.Link.GE = true
	cfg.Link.GELossGood = 0.01
	cfg.Link.GELossBad = 0.6
	cfg.Link.GEGoodToBad = 0.08
	cfg.Link.GEBadToGood = 0.25
	return cfg
}

// TestGEDeterminismAcrossWorkers: the burst-loss chain is seeded from
// the same per-device splitmix64 derivation as every other channel draw,
// so the digest and all counters must be worker-count independent.
func TestGEDeterminismAcrossWorkers(t *testing.T) {
	serial, err := Run(geCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := Run(geCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		if par.Digest != serial.Digest {
			t.Fatalf("workers=%d: digest %s, serial %s", workers, par.Digest, serial.Digest)
		}
		if par.Link != serial.Link {
			t.Fatalf("workers=%d: link stats %+v, serial %+v", workers, par.Link, serial.Link)
		}
		if par.Gateway != serial.Gateway {
			t.Fatalf("workers=%d: gateway stats %+v, serial %+v", workers, par.Gateway, serial.Gateway)
		}
	}
}

// TestGEBurstiness sanity-checks the model: the chain actually visits
// the Bad state, loses frames there, and — run with the same Good-state
// loss but no transitions — a never-Bad chain loses far fewer frames.
func TestGEBurstiness(t *testing.T) {
	bursty, err := Run(geCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if bursty.Link.BadFrames == 0 {
		t.Fatal("GE chain never entered the Bad state")
	}
	if bursty.Link.FramesLost == 0 {
		t.Fatal("GE channel lost nothing despite a 60% Bad-state loss rate")
	}

	calm := geCfg(1)
	calm.Link.GEGoodToBad = 0 // pinned to Good: loss is the 1% floor
	calmRep, err := Run(calm)
	if err != nil {
		t.Fatal(err)
	}
	if calmRep.Link.BadFrames != 0 {
		t.Fatalf("pinned-Good chain counted %d bad frames", calmRep.Link.BadFrames)
	}
	if calmRep.Link.FramesLost >= bursty.Link.FramesLost {
		t.Fatalf("burst loss (%d) not worse than pinned-Good loss (%d)",
			bursty.Link.FramesLost, calmRep.Link.FramesLost)
	}
}

// TestGEOffPreservesUniformChannel: with GE disabled the channel must
// consume the exact RNG draw sequence it always did — same config, same
// digest as a run that never heard of the GE fields.
func TestGEOffPreservesUniformChannel(t *testing.T) {
	plain, err := Run(fleetCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(1)
	cfg.Link.GELossGood = 0.9 // set but inert while GE is false
	cfg.Link.GELossBad = 0.9
	cfg.Link.GEGoodToBad = 0.9
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest != plain.Digest {
		t.Fatal("inert GE fields changed the uniform channel's digest")
	}
}
