package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// Server wraps a fleet behind an HTTP interface — the embryo of the
// long-running gateway service the ROADMAP calls ticsgate. It runs the
// fleet once (or loops it, re-deriving the seed per round so every round
// stays individually reproducible) and serves the latest completed
// report:
//
//	GET /            tiny live dashboard (polls /fleet, tails /events)
//	GET /healthz     liveness: "ok"
//	GET /fleet       JSON progress: devices done, deliveries, latency
//	                 quantiles, digest, anomalies
//	GET /metrics     Prometheus text format: merged fleet registry plus
//	                 per-anomaly labeled gauges and server counters
//	GET /trace/{device}/{seq}  one message's span chain as JSON
//	GET /events      SSE stream: one event per completed fleet round
//
// Handlers only ever read a published *Report, which is immutable after
// Run returns, so the server needs no locks beyond the publish swap.
type Server struct {
	cfg  Config
	loop bool

	// Pprof mounts net/http/pprof under /debug/pprof/ on Handler's mux.
	// Off by default: profiling endpoints expose host internals, so the
	// operator opts in per server (ticsfleet -pprof). Set before
	// Handler() is called.
	Pprof bool

	mu      sync.RWMutex
	rep     *Report
	runs    int64
	lastErr error

	subMu    sync.Mutex
	subs     map[int]chan []byte
	nextSub  int
	done     chan struct{}
	shutOnce sync.Once
}

// NewServer builds a server over the given fleet config. Collect and
// Trace are forced on: a telemetry server without metrics or spans would
// answer 404 to its own reason for existing.
func NewServer(cfg Config, loop bool) *Server {
	cfg.Collect = true
	cfg.Trace = true
	return &Server{cfg: cfg, loop: loop, subs: map[int]chan []byte{}, done: make(chan struct{})}
}

// Shutdown ends the server's streaming side: the fleet loop stops after
// the current round, and every SSE subscriber is unregistered and its
// channel closed so the handler goroutines drain out instead of parking
// on a channel nobody will ever send on again. Idempotent and safe to
// call concurrently with publish — both sides hold subMu, so a closed
// channel is never sent on.
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() {
		close(s.done)
		s.subMu.Lock()
		defer s.subMu.Unlock()
		for id, ch := range s.subs {
			close(ch)
			delete(s.subs, id)
		}
	})
}

// Report returns the latest published report (nil before the first round
// completes).
func (s *Server) Report() *Report {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rep
}

// Runs returns how many fleet rounds have completed.
func (s *Server) Runs() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.runs
}

// RunFleet executes fleet rounds until ctx is cancelled (one round only
// when the server is not looping), publishing each completed report and
// notifying SSE subscribers. Round r runs with Seed+r, so any round can
// be reproduced standalone by running the same config with that seed.
func (s *Server) RunFleet(ctx context.Context) error {
	for round := uint64(0); ; round++ {
		cfg := s.cfg
		cfg.Seed = s.cfg.Seed + round
		rep, err := Run(cfg)
		s.mu.Lock()
		if err != nil {
			s.lastErr = err
		} else {
			s.rep = rep
			s.runs++
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
		s.publish(rep)
		if !s.loop {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.done:
			return nil
		default:
		}
	}
}

// publish fans a round summary out to every SSE subscriber.
func (s *Server) publish(rep *Report) {
	b, err := json.Marshal(s.summary(rep))
	if err != nil {
		return
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- b:
		default: // slow consumer: drop rather than stall the fleet loop
		}
	}
}

// summary is the compact per-round record /events streams and /fleet
// embeds next to the full report.
func (s *Server) summary(rep *Report) map[string]any {
	s.mu.RLock()
	runs := s.runs
	s.mu.RUnlock()
	return map[string]any{
		"run":        runs,
		"seed":       rep.Seed,
		"devices":    rep.Devices,
		"completed":  rep.Completed,
		"delivered":  rep.Gateway.Delivered,
		"duplicates": rep.Gateway.Duplicates,
		"expired":    rep.Gateway.Expired,
		"lost":       rep.Lost,
		"p50_ms":     rep.LatencyP50,
		"p99_ms":     rep.LatencyP99,
		"anomalies":  len(rep.Anomalies),
		"digest":     rep.Digest,
		"wall_ms":    rep.WallSeconds * 1000,
		"phases":     PhaseMap(rep.Phases),
	}
}

// Handler returns the server's HTTP mux. When Pprof is set it also
// mounts net/http/pprof under /debug/pprof/ — heap, goroutine, CPU
// profiles and execution traces of the *simulator host process*, the
// drill-down path when fleet_phase_seconds or fleet_resource_* point at
// a hot phase. Without the flag the prefix 404s like any unknown path.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace/{device}/{seq}", s.handleTrace)
	mux.HandleFunc("GET /events", s.handleEvents)
	if s.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	rep := s.Report()
	if rep == nil {
		s.mu.RLock()
		err := s.lastErr
		s.mu.RUnlock()
		msg := "no completed fleet round yet"
		if err != nil {
			msg = err.Error()
		}
		http.Error(w, msg, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"summary": s.summary(rep),
		"report":  rep,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mu.RLock()
	runs := s.runs
	s.mu.RUnlock()
	fmt.Fprintf(w, "# TYPE fleet_serve_runs counter\nfleet_serve_runs %d\n", runs)
	rep := s.Report()
	if rep == nil {
		return
	}
	if rep.Metrics != nil {
		rep.Metrics.WritePrometheus(w)
	}
	WriteAnomaliesProm(w, rep.Anomalies)
	WritePhasesProm(w, rep.Phases)
	rep.Resources.WriteProm(w, "fleet_resource_")
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rep := s.Report()
	if rep == nil || rep.Telemetry == nil {
		http.Error(w, "no completed fleet round yet", http.StatusServiceUnavailable)
		return
	}
	dev, err := strconv.Atoi(r.PathValue("device"))
	if err != nil {
		http.Error(w, "bad device index", http.StatusBadRequest)
		return
	}
	seq, err := strconv.ParseInt(r.PathValue("seq"), 10, 64)
	if err != nil {
		http.Error(w, "bad sequence number", http.StatusBadRequest)
		return
	}
	tr := rep.Telemetry.Trace(dev, seq)
	if tr == nil {
		http.Error(w, fmt.Sprintf("no trace for device %d seq %d", dev, seq), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(tr)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	ch := make(chan []byte, 8)
	s.subMu.Lock()
	select {
	case <-s.done:
		// Shutdown already ran: registering now would leak this handler
		// (nobody will ever close the channel again).
		s.subMu.Unlock()
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	default:
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()
	defer func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}()

	// Replay the latest round on connect so a fresh dashboard is not
	// blank until the next round completes.
	if rep := s.Report(); rep != nil {
		if b, err := json.Marshal(s.summary(rep)); err == nil {
			fmt.Fprintf(w, "data: %s\n\n", b)
			fl.Flush()
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case b, ok := <-ch:
			if !ok {
				return // Shutdown closed the subscription
			}
			fmt.Fprintf(w, "data: %s\n\n", b)
			fl.Flush()
		}
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// ServeOptions selects Serve's optional behaviors.
type ServeOptions struct {
	Loop  bool // re-run the fleet continuously (round r uses seed+r)
	Pprof bool // mount net/http/pprof under /debug/pprof/
}

// Serve binds addr, starts the fleet (looping when opts.Loop is set) in
// the background, and serves HTTP until the listener fails. The fleet's
// first round runs after the listener is up, so /healthz answers
// immediately — the CI smoke depends on that ordering.
func Serve(addr string, cfg Config, opts ServeOptions) error {
	s := NewServer(cfg, opts.Loop)
	s.Pprof = opts.Pprof
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("ticsfleet: serving on http://%s (fleet of %d × %s, loop=%v, pprof=%v)\n",
		ln.Addr(), cfg.Devices, cfg.App, opts.Loop, opts.Pprof)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Shutdown on exit so the fleet loop and any parked SSE handlers
	// drain instead of outliving the listener.
	defer s.Shutdown()
	go s.RunFleet(ctx)
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(ln)
}

// dashboardHTML is the zero-dependency live view: stat tiles fed by
// /fleet polling, a round log tailing /events, and per-device anomaly
// rows. Deliberately tiny — the real dashboards live in Grafana on top
// of /metrics; this one exists so `ticsfleet -serve` is self-contained.
const dashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>ticsfleet</title>
<style>
body{font-family:ui-monospace,monospace;background:#111;color:#ddd;margin:2em}
h1{font-size:1.2em} .tiles{display:flex;flex-wrap:wrap;gap:12px}
.tile{background:#1c1c1c;border:1px solid #333;border-radius:6px;padding:10px 16px;min-width:110px}
.tile .v{font-size:1.5em} .tile .k{color:#888;font-size:.8em}
#anoms li{color:#e08} #log{margin-top:1em;color:#9a9;white-space:pre-wrap;font-size:.85em}
a{color:#8ac}
</style></head><body>
<h1>ticsfleet — live fleet telemetry</h1>
<div class="tiles" id="tiles"></div>
<h3>round phases</h3><div id="phases" style="color:#9ab"></div>
<h3>anomalies</h3><ul id="anoms"><li style="color:#888">none</li></ul>
<div id="log"></div>
<p><a href="/fleet">/fleet</a> · <a href="/metrics">/metrics</a> · /trace/{device}/{seq}</p>
<script>
function tile(k,v){return '<div class="tile"><div class="v">'+v+'</div><div class="k">'+k+'</div></div>'}
async function refresh(){
  try{
    const r = await fetch('/fleet'); if(!r.ok){return}
    const d = await r.json(); const s = d.summary;
    document.getElementById('tiles').innerHTML =
      tile('run', s.run)+tile('devices', s.devices)+tile('delivered', s.delivered)+
      tile('expired', s.expired)+tile('lost', s.lost)+
      tile('p50 ms', s.p50_ms.toFixed(1))+tile('p99 ms', s.p99_ms.toFixed(1))+
      tile('anomalies', s.anomalies);
    const ph = (d.report.phases)||[];
    const wall = d.report.wall_seconds||0;
    document.getElementById('phases').textContent = ph.map(p =>
      p.phase+' '+(p.seconds*1000).toFixed(1)+'ms').join('  ·  ')+
      (wall ? '  ·  wall '+(wall*1000).toFixed(1)+'ms' : '');
    const as = (d.report.anomalies)||[];
    document.getElementById('anoms').innerHTML = as.length
      ? as.map(a=>'<li>dev'+a.dev+' '+a.kind+': '+a.detail+'</li>').join('')
      : '<li style="color:#888">none</li>';
  }catch(e){}
}
refresh(); setInterval(refresh, 2000);
new EventSource('/events').onmessage = ev => {
  const s = JSON.parse(ev.data);
  const log = document.getElementById('log');
  log.textContent = 'run '+s.run+' seed '+s.seed+' delivered '+s.delivered+
    ' p99 '+s.p99_ms.toFixed(1)+'ms digest '+s.digest.slice(0,16)+'\n' + log.textContent;
  refresh();
};
</script></body></html>`
