package fleet

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/vm"
)

// sendySrc mirrors internal/vm's virtio tests: one send per loop
// iteration, each inside the failure-prone region between checkpoints,
// so a raw radio replays sends after rollbacks.
const sendySrc = `
int main() {
    int i;
    for (i = 0; i < 12; i++) {
        send(100 + i);
    }
    return 0;
}
`

// sendyCfg reproduces the vm package's raw-radio duplication scenario
// (FailEvery k=7300, 5 ms checkpoint period) inside a fleet.
func sendyCfg(virtualize bool) Config {
	cfg := Config{
		Devices:    3,
		Workers:    2,
		Source:     sendySrc,
		Runtime:    "tics",
		Power:      "fail:7300",
		Seed:       7,
		TimerMs:    5,
		Virtualize: virtualize,
		Link:       LinkParams{DelayMinMs: 1, DelayMaxMs: 5},
	}
	if virtualize {
		cfg.Power = "fail:4100"
		cfg.TimerMs = 1
	}
	return cfg
}

// assertExactlyOnce checks the gateway's core guarantee: every device's
// 12 packets were delivered exactly once each, values 100..111 in order.
func assertExactlyOnce(t *testing.T, rep *Report, devices int) {
	t.Helper()
	if got := int(rep.Gateway.Delivered); got != 12*devices {
		t.Fatalf("delivered %d packets, want %d", got, 12*devices)
	}
	for dev := 0; dev < devices; dev++ {
		log := rep.DeviceLog(dev)
		if len(log) != 12 {
			t.Fatalf("device %d: %d deliveries, want 12", dev, len(log))
		}
		seen := map[int32]bool{}
		for _, d := range log {
			if seen[d.Value] {
				t.Fatalf("device %d: value %d delivered twice", dev, d.Value)
			}
			seen[d.Value] = true
			if d.Value < 100 || d.Value > 111 {
				t.Fatalf("device %d: unexpected value %d", dev, d.Value)
			}
		}
	}
}

// TestGatewayAbsorbsRawRadioReplays: with VirtualizeSends off the raw
// radio re-transmits sends replayed after power failures (the phenomenon
// pinned in internal/vm/virtio_test.go). Those replays carry the same
// committed sequence numbers, so gateway dedup absorbs every one of
// them: delivery is exactly-once end-to-end even though the device-side
// radio is at-least-once.
func TestGatewayAbsorbsRawRadioReplays(t *testing.T) {
	rep, err := Run(sendyCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sends <= rep.UniqueSends {
		t.Fatalf("raw radio produced no replays (%d sends, %d unique); scenario lost its teeth",
			rep.Sends, rep.UniqueSends)
	}
	if rep.Gateway.Duplicates == 0 {
		t.Fatal("gateway saw no duplicates to absorb")
	}
	assertExactlyOnce(t, rep, 3)
}

// TestGatewayAbsorbsChannelDuplication: with virtualized sends the
// device is exactly-once, but the channel itself still echoes frames;
// the gateway's dedup absorbs those too.
func TestGatewayAbsorbsChannelDuplication(t *testing.T) {
	cfg := sendyCfg(true)
	cfg.Link.Dup = 0.4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sends != rep.UniqueSends {
		t.Fatalf("virtualized device emitted replays: %d sends, %d unique", rep.Sends, rep.UniqueSends)
	}
	if rep.Link.Echoes == 0 {
		t.Fatal("channel produced no echoes; raise Dup")
	}
	if rep.Gateway.Duplicates != rep.Link.Echoes {
		t.Fatalf("gateway dropped %d duplicates, channel made %d echoes",
			rep.Gateway.Duplicates, rep.Link.Echoes)
	}
	assertExactlyOnce(t, rep, 3)
}

// TestGatewayLossyLinkRetransmits: on a lossy link with ARQ, lost ACKs
// make devices retransmit frames the gateway already holds — the
// classic duplicate-manufacturing path. Dedup absorbs them, and the
// delivered + lost accounting stays exact.
func TestGatewayLossyLinkRetransmits(t *testing.T) {
	cfg := sendyCfg(true)
	cfg.Link.Loss = 0.3
	cfg.Link.Retransmits = 3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Link.FramesLost == 0 {
		t.Fatal("lossy link lost nothing; raise Loss")
	}
	if rep.Link.AcksLost == 0 {
		t.Fatal("no ACKs lost; the retransmit-duplicate path went unexercised")
	}
	if rep.Gateway.Duplicates == 0 {
		t.Fatal("gateway saw no retransmit duplicates")
	}
	// Not all packets survive 4 attempts at 30% loss, so assert the
	// accounting identity instead of full delivery: every unique packet
	// is delivered, expired, or lost — never double-counted.
	unique := int64(rep.Gateway.Delivered) + rep.Gateway.Expired
	if unique+rep.Lost != rep.UniqueSends {
		t.Fatalf("accounting leak: delivered %d + expired %d + lost %d != unique %d",
			rep.Gateway.Delivered, rep.Gateway.Expired, rep.Lost, rep.UniqueSends)
	}
	if rep.Lost != rep.Link.Undelivered {
		t.Fatalf("lost %d packets but link reports %d undelivered", rep.Lost, rep.Link.Undelivered)
	}
	for dev := 0; dev < 3; dev++ {
		seen := map[int64]bool{}
		for _, d := range rep.DeviceLog(dev) {
			if seen[d.Seq] {
				t.Fatalf("device %d: seq %d delivered twice", dev, d.Seq)
			}
			seen[d.Seq] = true
		}
	}
}

// TestGatewayFreshness: a unique packet that arrives past the deadline
// is expired — counted, not delivered, and still deduplicated.
func TestGatewayFreshness(t *testing.T) {
	gw := NewGateway(50)
	fresh := Arrival{Dev: 0, Seq: 0, Value: 1, SentMs: 0, ArriveMs: 10}
	stale := Arrival{Dev: 0, Seq: 1, Value: 2, SentMs: 0, ArriveMs: 120}
	gw.Accept(fresh)
	gw.Accept(stale)
	gw.Accept(stale) // duplicate of an expired packet
	st := gw.Stats()
	if st.Delivered != 1 || st.Expired != 1 || st.Duplicates != 1 {
		t.Fatalf("stats %+v, want 1 delivered / 1 expired / 1 duplicate", st)
	}
	if gw.Unique() != 2 {
		t.Fatalf("unique %d, want 2", gw.Unique())
	}
}

func TestTransmitDeterministic(t *testing.T) {
	log := []vm.SendRec{
		{Value: 1, TrueMs: 10, EstMs: 9, Seq: 0},
		{Value: 2, TrueMs: 20, EstMs: 19, Seq: 1},
		{Value: 3, TrueMs: 30, EstMs: 29, Seq: 2},
	}
	p := LinkParams{Loss: 0.3, Dup: 0.3, DelayMinMs: 1, DelayMaxMs: 10, Retransmits: 2}
	a1, s1 := Transmit(5, 99, p, log)
	a2, s2 := Transmit(5, 99, p, log)
	if !reflect.DeepEqual(a1, a2) || s1 != s2 {
		t.Fatal("Transmit is not deterministic for identical inputs")
	}
	a3, _ := Transmit(5, 100, p, log)
	if reflect.DeepEqual(a1, a3) {
		t.Fatal("different seeds produced identical channel behaviour")
	}
}

// TestLatencyQuantileUnified pins the gateway's quantile estimate to the
// shared obs.Histogram estimator on a known sample. The gateway used to
// keep its own sorted-slice quantile; both paths now answer through
// obs.Histogram.Quantile, so the same question asked of the fleet report
// and of a scraped histogram gets the same number.
func TestLatencyQuantileUnified(t *testing.T) {
	gw := NewGateway(0)
	ref := obs.NewHistogram(LatencyBounds)
	for i := 1; i <= 100; i++ {
		lat := float64(i)
		if v := gw.Accept(Arrival{Dev: 0, Seq: int64(i), SentMs: 0, ArriveMs: lat}); v != VerdictDelivered {
			t.Fatalf("arrival %d: verdict %v", i, v)
		}
		ref.Observe(lat)
	}
	// Uniform 1..100 ms lands exactly on the interpolation grid of
	// LatencyBounds, so the expected values are exact, not approximate.
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	} {
		if got := gw.LatencyQuantile(c.q); got != c.want {
			t.Errorf("gateway q%.2f = %v, want %v", c.q, got, c.want)
		}
		if got, want := gw.LatencyQuantile(c.q), ref.Quantile(c.q); got != want {
			t.Errorf("q%.2f: gateway %v != histogram %v", c.q, got, want)
		}
	}
	if gw.LatencyHistogram().Count != 100 || gw.LatencyHistogram().Sum != 5050 {
		t.Fatalf("latency histogram miscounted: %+v", gw.LatencyHistogram())
	}
}

// TestVerdictString keeps the verdict labels stable — they name
// Prometheus series and span outcomes.
func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictDelivered: "delivered",
		VerdictDuplicate: "duplicate",
		VerdictExpired:   "expired",
		Verdict(99):      "?",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
}
