package fleet

import (
	"sort"

	"repro/internal/vm"
)

// LinkParams models one device's lossy radio link to the gateway. The
// paper's deployments report over exactly this kind of channel, and its
// two failure modes are the ones the gateway must absorb: frames vanish
// (loss) and frames arrive more than once (radio duplication, and ARQ
// retransmits triggered by lost acknowledgements).
type LinkParams struct {
	// Loss is the per-frame loss probability in [0, 1); it applies to
	// data frames and, when Retransmits > 0, to the gateway's ACKs too —
	// a lost ACK makes the device retransmit a frame the gateway already
	// has, which is how real links manufacture duplicates.
	Loss float64
	// Dup is the probability the channel itself duplicates a delivered
	// frame (multipath / repeater echo).
	Dup float64
	// DelayMinMs/DelayMaxMs bound the one-way propagation + queueing
	// delay, drawn uniformly per frame.
	DelayMinMs float64
	DelayMaxMs float64
	// Retransmits is how many extra attempts the device's link layer
	// makes per frame (0 = fire and forget).
	Retransmits int
	// BackoffMs separates retransmit attempts (default 5 ms).
	BackoffMs float64

	// GE switches per-frame loss from the uniform Loss probability to a
	// Gilbert–Elliott two-state burst model: the link sits in a Good or
	// Bad state with its own loss probability, and after every loss draw
	// the state transitions with the given probabilities. Bursty loss is
	// how real lossy-RF deployments behave — long clean stretches
	// punctuated by fade-outs where nearly everything drops — and it
	// stresses the gateway's dedup/ARQ path very differently from
	// uniform loss at the same average rate. State transitions draw from
	// the same per-device splitmix64 stream as everything else, so GE
	// fleets stay worker-count independent.
	GE bool
	// GELossGood/GELossBad are the per-frame loss probabilities in the
	// Good and Bad states (data frames and ACKs alike).
	GELossGood float64
	GELossBad  float64
	// GEGoodToBad/GEBadToGood are the per-draw state transition
	// probabilities. The chain starts in Good; its stationary bad-state
	// share is GEGoodToBad/(GEGoodToBad+GEBadToGood).
	GEGoodToBad float64
	GEBadToGood float64
}

// Arrival is one frame reaching the gateway.
type Arrival struct {
	Dev      int     // source device index
	Seq      int64   // device send-sequence number (vm.SendRec.Seq)
	Value    int32   // payload
	SentMs   float64 // true wall-clock time of the original send
	DeviceMs int64   // the device's own clock at the send
	ArriveMs float64 // true wall-clock arrival time at the gateway
	Attempt  int     // 0 = first transmission, >0 = link-layer retransmit
	Echo     bool    // true for a channel-duplicated copy
}

// LinkStats counts what one device's link did to its traffic.
type LinkStats struct {
	Packets     int64 // sends offered to the link
	Frames      int64 // frames actually transmitted (incl. retransmits)
	FramesLost  int64 // data frames the channel dropped
	AcksLost    int64 // ACKs the channel dropped (each forces a retransmit)
	Echoes      int64 // channel-duplicated copies delivered
	Undelivered int64 // packets whose every attempt was lost
	BadFrames   int64 // data frames transmitted while a GE link sat in Bad state
}

func (s *LinkStats) add(o LinkStats) {
	s.Packets += o.Packets
	s.Frames += o.Frames
	s.FramesLost += o.FramesLost
	s.AcksLost += o.AcksLost
	s.Echoes += o.Echoes
	s.Undelivered += o.Undelivered
	s.BadFrames += o.BadFrames
}

// linkRNG is a private splitmix64 stream. Each device's link owns one,
// seeded from the device seed, so the channel's draws are a pure
// function of (fleet seed, device index, send order) — independent of
// worker count and host scheduling.
type linkRNG struct{ s uint64 }

func (r *linkRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *linkRNG) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// linkSalt decorrelates the link RNG stream from the power/sensor/clock
// streams that share the device seed.
const linkSalt = 0xC2B2AE3D27D4EB4F

// Transmit pushes one device's send log through its link and returns the
// frames that reach the gateway, in transmission order. Deterministic:
// the same (seed, log) always yields the same arrivals.
func Transmit(dev int, seed uint64, p LinkParams, log []vm.SendRec) ([]Arrival, LinkStats) {
	return transmit(dev, seed, p, log, nil)
}

// transmit is Transmit with an optional span collector. The tracer only
// observes — it draws nothing from the RNG — so a traced run's channel
// behaviour (and therefore the gateway digest) is byte-identical to an
// untraced one.
func transmit(dev int, seed uint64, p LinkParams, log []vm.SendRec, tel *Telemetry) ([]Arrival, LinkStats) {
	rng := linkRNG{s: seed ^ linkSalt}
	backoff := p.BackoffMs
	if backoff <= 0 {
		backoff = 5
	}
	spread := p.DelayMaxMs - p.DelayMinMs
	if spread < 0 {
		spread = 0
	}
	delay := func() float64 { return p.DelayMinMs + spread*rng.float() }

	// lose decides one loss draw. The uniform model consumes exactly one
	// RNG draw per decision — the historical stream, so existing fleet
	// digests are untouched. The Gilbert–Elliott model consumes two (the
	// loss draw in the current state, then the state transition draw),
	// which is still a pure function of (seed, draw order) and therefore
	// just as worker-count independent.
	geBad := false
	lose := func() bool {
		if !p.GE {
			return rng.float() < p.Loss
		}
		pLoss := p.GELossGood
		if geBad {
			pLoss = p.GELossBad
		}
		drop := rng.float() < pLoss
		if geBad {
			if rng.float() < p.GEBadToGood {
				geBad = false
			}
		} else if rng.float() < p.GEGoodToBad {
			geBad = true
		}
		return drop
	}

	var out []Arrival
	var st LinkStats
	for _, rec := range log {
		st.Packets++
		emit := tel.onEmit(dev, rec)
		delivered := false
		for attempt := 0; attempt <= p.Retransmits; attempt++ {
			st.Frames++
			if p.GE && geBad {
				st.BadFrames++
			}
			txMs := rec.TrueMs + float64(attempt)*backoff
			if lose() {
				st.FramesLost++
				tel.onAttempt(dev, rec.Seq, AttemptSpan{Emit: emit, Attempt: attempt, TxMs: txMs, Lost: true})
				continue // next attempt, if the link layer has one
			}
			a := Arrival{
				Dev: dev, Seq: rec.Seq, Value: rec.Value,
				SentMs: rec.TrueMs, DeviceMs: rec.EstMs,
				ArriveMs: txMs + delay(), Attempt: attempt,
			}
			out = append(out, a)
			delivered = true
			idx := tel.onAttempt(dev, rec.Seq, AttemptSpan{Emit: emit, Attempt: attempt, TxMs: txMs, ArriveMs: a.ArriveMs})
			if p.Dup > 0 && rng.float() < p.Dup {
				echo := a
				echo.ArriveMs += delay()
				echo.Echo = true
				out = append(out, echo)
				st.Echoes++
				tel.onAttempt(dev, rec.Seq, AttemptSpan{Emit: emit, Attempt: attempt, TxMs: txMs, ArriveMs: echo.ArriveMs, Echo: true})
			}
			// The gateway ACKs the frame; if the ACK is lost the device
			// cannot tell its frame arrived and retransmits it — the
			// classic duplicate-manufacturing path of ARQ links.
			if attempt < p.Retransmits && lose() {
				st.AcksLost++
				tel.markAckLost(dev, rec.Seq, idx)
				continue
			}
			break
		}
		if !delivered {
			st.Undelivered++
		}
	}
	return out, st
}

// ArrivalBefore is the gateway observation order: by arrival time,
// tie-broken by (device, sequence, attempt, echo) so the global order is
// total and therefore identical on every run. Exported because the
// standalone gateway service (internal/gate) must pick the same "first
// arrival" per (device, seq) — and sort its deliveries the same way —
// regardless of the order HTTP batches land in, or its digest could not
// match an in-process run.
func ArrivalBefore(a, b Arrival) bool {
	if a.ArriveMs != b.ArriveMs {
		return a.ArriveMs < b.ArriveMs
	}
	if a.Dev != b.Dev {
		return a.Dev < b.Dev
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	if a.Attempt != b.Attempt {
		return a.Attempt < b.Attempt
	}
	return !a.Echo && b.Echo
}

// SortArrivals orders frames the way the gateway observes them (see
// ArrivalBefore).
func SortArrivals(arrivals []Arrival) {
	sort.Slice(arrivals, func(i, j int) bool { return ArrivalBefore(arrivals[i], arrivals[j]) })
}
