package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Telemetry is the fleet's end-to-end message tracer. Every send gets a
// trace context keyed by (device, committed send sequence) and a span per
// hop: the VM emit (with commit latency and the payload's sensor
// timestamp), each channel transmission attempt (loss, duplication,
// delay, ARQ retransmit — observed from the channel's deterministic RNG
// draws, never perturbing them), and the gateway verdict (delivered /
// expired / lost, with end-to-end latency and the freshness budget left).
//
// Collection happens entirely in the fleet's single-threaded post-pass,
// in device-index order, so traces inherit the fleet's worker-count
// independence: the rendered trace of any message is byte-identical
// whether the fleet ran on 1 worker or 16.
type Telemetry struct {
	freshnessMs float64
	byDev       []map[int64]*MessageTrace
}

// EmitSpan is the device-side hop: one radio transmission of the packet.
// Raw radios can emit the same (device, seq) more than once — a rollback
// replays the send — so a trace holds a list of emits, each of which
// fans out into link-layer attempts.
type EmitSpan struct {
	TrueMs          float64 `json:"true_ms"`           // transmission time (commit time when virtualized)
	DeviceMs        int64   `json:"device_ms"`         // device clock at transmission
	EmitTrueMs      float64 `json:"emit_true_ms"`      // Send-instruction execution (payload creation)
	SensorMs        int64   `json:"sensor_ms"`         // device clock when the payload was produced
	CommitLatencyMs float64 `json:"commit_latency_ms"` // virtualized hold time (0 for raw radio)
}

// AttemptSpan is one link-layer transmission attempt of one emit.
type AttemptSpan struct {
	Emit     int     `json:"emit"`                // index into MessageTrace.Emits
	Attempt  int     `json:"attempt"`             // 0 = first transmission, >0 = ARQ retransmit
	TxMs     float64 `json:"tx_ms"`               // when the frame left the device
	Lost     bool    `json:"lost,omitempty"`      // the channel dropped the frame
	ArriveMs float64 `json:"arrive_ms,omitempty"` // gateway arrival (delivered frames)
	Echo     bool    `json:"echo,omitempty"`      // channel-duplicated copy
	AckLost  bool    `json:"ack_lost,omitempty"`  // delivered, but the ACK vanished → retransmit follows
}

// VerdictSpan is the gateway-side conclusion of the message's journey.
type VerdictSpan struct {
	Outcome string `json:"outcome"` // "delivered", "expired", or "lost"
	// ArriveMs/LatencyMs describe the first arrival (absent for lost).
	ArriveMs  float64 `json:"arrive_ms,omitempty"`
	LatencyMs float64 `json:"latency_ms,omitempty"`
	// FreshnessLeftMs is the budget remaining when the packet landed
	// (negative for expired packets); only set when the gateway has a
	// freshness deadline.
	FreshnessLeftMs float64 `json:"freshness_left_ms,omitempty"`
	// Duplicates counts the extra arrivals of this (device, seq) the
	// gateway dropped — replays, retransmits, and echoes combined.
	Duplicates int `json:"duplicates,omitempty"`
}

// Outcome values of VerdictSpan.
const (
	OutcomeDelivered = "delivered"
	OutcomeExpired   = "expired"
	OutcomeLost      = "lost"
	// OutcomeRemote marks a message whose frames reached a remote
	// gateway (Config.Remote): dedup and freshness were adjudicated in
	// the service, so the fleet-side trace ends at the channel. Messages
	// whose every attempt died in the channel are still OutcomeLost —
	// that much the fleet knows without the gateway.
	OutcomeRemote = "remote"
)

// MessageTrace is the full span chain of one logical message.
type MessageTrace struct {
	Dev      int           `json:"dev"`
	Seq      int64         `json:"seq"`
	Value    int32         `json:"value"`
	Emits    []EmitSpan    `json:"emits"`
	Attempts []AttemptSpan `json:"attempts"`
	Verdict  VerdictSpan   `json:"verdict"`
}

// NewTelemetry builds a tracer for an n-device fleet with the given
// gateway freshness deadline (0 = none).
func NewTelemetry(n int, freshnessMs float64) *Telemetry {
	return &Telemetry{freshnessMs: freshnessMs, byDev: make([]map[int64]*MessageTrace, n)}
}

// trace returns (allocating if needed) the trace for (dev, seq).
func (t *Telemetry) trace(dev int, seq int64) *MessageTrace {
	m := t.byDev[dev]
	if m == nil {
		m = make(map[int64]*MessageTrace)
		t.byDev[dev] = m
	}
	tr := m[seq]
	if tr == nil {
		tr = &MessageTrace{Dev: dev, Seq: seq}
		m[seq] = tr
	}
	return tr
}

// onEmit opens (or extends, for raw-radio replays of the same committed
// seq) the trace for one SendRec and returns the emit index attempts
// attach to. Nil-safe: an untraced fleet pays one nil check per packet.
func (t *Telemetry) onEmit(dev int, rec vm.SendRec) int {
	if t == nil {
		return 0
	}
	tr := t.trace(dev, rec.Seq)
	tr.Value = rec.Value
	tr.Emits = append(tr.Emits, EmitSpan{
		TrueMs:          rec.TrueMs,
		DeviceMs:        rec.EstMs,
		EmitTrueMs:      rec.EmitTrueMs,
		SensorMs:        rec.EmitEstMs,
		CommitLatencyMs: rec.CommitLatencyMs(),
	})
	return len(tr.Emits) - 1
}

// onAttempt appends one link-layer attempt span and returns its index.
func (t *Telemetry) onAttempt(dev int, seq int64, a AttemptSpan) int {
	if t == nil {
		return 0
	}
	tr := t.trace(dev, seq)
	tr.Attempts = append(tr.Attempts, a)
	return len(tr.Attempts) - 1
}

// markAckLost flags a delivered attempt whose ACK the channel dropped.
func (t *Telemetry) markAckLost(dev int, seq int64, idx int) {
	if t == nil {
		return
	}
	t.trace(dev, seq).Attempts[idx].AckLost = true
}

// onVerdict records what the gateway did with one arrival. The first
// non-duplicate arrival fixes the message outcome; duplicates only bump
// the drop counter.
func (t *Telemetry) onVerdict(a Arrival, v Verdict) {
	if t == nil {
		return
	}
	tr := t.trace(a.Dev, a.Seq)
	if v == VerdictDuplicate {
		tr.Verdict.Duplicates++
		return
	}
	lat := a.ArriveMs - a.SentMs
	tr.Verdict.ArriveMs = a.ArriveMs
	tr.Verdict.LatencyMs = lat
	if t.freshnessMs > 0 {
		tr.Verdict.FreshnessLeftMs = t.freshnessMs - lat
	}
	if v == VerdictExpired {
		tr.Verdict.Outcome = OutcomeExpired
	} else {
		tr.Verdict.Outcome = OutcomeDelivered
	}
}

// finalize closes every chain: a message with no gateway verdict lost
// every attempt in the channel.
func (t *Telemetry) finalize() {
	if t == nil {
		return
	}
	for _, m := range t.byDev {
		for _, tr := range m {
			if tr.Verdict.Outcome == "" {
				tr.Verdict.Outcome = OutcomeLost
			}
		}
	}
}

// finalizeRemote closes every chain for a fleet attached to a remote
// gateway: a message none of whose attempts arrived is lost; anything
// that reached the wire is adjudicated in the service (OutcomeRemote).
func (t *Telemetry) finalizeRemote() {
	if t == nil {
		return
	}
	for _, m := range t.byDev {
		for _, tr := range m {
			if tr.Verdict.Outcome != "" {
				continue
			}
			tr.Verdict.Outcome = OutcomeLost
			for _, at := range tr.Attempts {
				if !at.Lost {
					tr.Verdict.Outcome = OutcomeRemote
					break
				}
			}
		}
	}
}

// Trace returns the span chain for (dev, seq), or nil if that message
// was never sent (or the fleet ran without tracing).
func (t *Telemetry) Trace(dev int, seq int64) *MessageTrace {
	if t == nil || dev < 0 || dev >= len(t.byDev) {
		return nil
	}
	return t.byDev[dev][seq]
}

// Devices returns the fleet size the tracer was built for.
func (t *Telemetry) Devices() int {
	if t == nil {
		return 0
	}
	return len(t.byDev)
}

// DeviceTraces returns one device's traces in ascending seq order.
func (t *Telemetry) DeviceTraces(dev int) []*MessageTrace {
	if t == nil || dev < 0 || dev >= len(t.byDev) {
		return nil
	}
	m := t.byDev[dev]
	seqs := make([]int64, 0, len(m))
	for s := range m {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	out := make([]*MessageTrace, len(seqs))
	for i, s := range seqs {
		out[i] = m[s]
	}
	return out
}

// Traces returns every trace, ordered by (device, seq) — the canonical
// deterministic enumeration the exporters and tests rely on.
func (t *Telemetry) Traces() []*MessageTrace {
	if t == nil {
		return nil
	}
	var out []*MessageTrace
	for dev := range t.byDev {
		out = append(out, t.DeviceTraces(dev)...)
	}
	return out
}

// WriteJSON renders every trace as one JSON object per line in (device,
// seq) order — greppable, diffable, and byte-stable across worker counts.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	for _, tr := range t.Traces() {
		b, err := json.Marshal(tr)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ChromeTraceEvents renders the message spans as Perfetto tracks: one
// process per device, whose track carries an X-slice per transmission
// attempt (tx → arrival), instants for lost frames and verdicts, and the
// emit→commit hold of virtualized sends as a leading slice. Opens
// directly in ui.perfetto.dev next to a device's own machine trace.
func (t *Telemetry) ChromeTraceEvents() []obs.TraceEvent {
	var evs []obs.TraceEvent
	if t == nil {
		return evs
	}
	for dev := range t.byDev {
		traces := t.DeviceTraces(dev)
		if len(traces) == 0 {
			continue
		}
		pid := dev + 1 // pid 0 renders oddly in Perfetto
		evs = append(evs, obs.TraceEvent{Name: "process_name", Phase: "M", PID: pid, TID: 1,
			Cat: "__metadata", Args: map[string]any{"name": fmt.Sprintf("dev%d", dev)}})
		for _, tr := range traces {
			for ei, em := range tr.Emits {
				if em.CommitLatencyMs > 0 {
					evs = append(evs, obs.TraceEvent{
						Name: fmt.Sprintf("hold seq=%d", tr.Seq), Cat: "commit", Phase: "X",
						TsUs: em.EmitTrueMs * 1000, DurUs: em.CommitLatencyMs * 1000, PID: pid, TID: 1,
						Args: map[string]any{"seq": tr.Seq, "emit": ei, "sensor_ms": em.SensorMs}})
				} else {
					evs = append(evs, obs.TraceEvent{
						Name: fmt.Sprintf("emit seq=%d", tr.Seq), Cat: "emit", Phase: "i",
						TsUs: em.TrueMs * 1000, PID: pid, TID: 1, Scope: "t",
						Args: map[string]any{"seq": tr.Seq, "emit": ei, "sensor_ms": em.SensorMs}})
				}
			}
			for _, at := range tr.Attempts {
				name := fmt.Sprintf("seq=%d a%d", tr.Seq, at.Attempt)
				args := map[string]any{"seq": tr.Seq, "emit": at.Emit, "attempt": at.Attempt,
					"echo": at.Echo, "ack_lost": at.AckLost}
				if at.Lost {
					evs = append(evs, obs.TraceEvent{Name: name + " lost", Cat: "channel", Phase: "i",
						TsUs: at.TxMs * 1000, PID: pid, TID: 1, Scope: "t", Args: args})
					continue
				}
				evs = append(evs, obs.TraceEvent{Name: name, Cat: "channel", Phase: "X",
					TsUs: at.TxMs * 1000, DurUs: (at.ArriveMs - at.TxMs) * 1000, PID: pid, TID: 1, Args: args})
			}
			v := tr.Verdict
			vArgs := map[string]any{"seq": tr.Seq, "outcome": v.Outcome,
				"latency_ms": v.LatencyMs, "duplicates": v.Duplicates}
			if t.freshnessMs > 0 {
				vArgs["freshness_left_ms"] = v.FreshnessLeftMs
			}
			ts := v.ArriveMs
			if v.Outcome == OutcomeLost && len(tr.Attempts) > 0 {
				ts = tr.Attempts[len(tr.Attempts)-1].TxMs
			}
			evs = append(evs, obs.TraceEvent{Name: "verdict " + v.Outcome, Cat: "gateway", Phase: "i",
				TsUs: ts * 1000, PID: pid, TID: 1, Scope: "t", Args: vArgs})
		}
	}
	return evs
}

// WriteChromeTrace exports the message spans as Chrome/Perfetto JSON via
// the shared obs trace_event serializer.
func (t *Telemetry) WriteChromeTrace(w io.Writer) error {
	return obs.WriteTraceEvents(w, t.ChromeTraceEvents())
}
