package fleet

import "testing"

// capCfg generates comfortably more than 1e4 channel arrivals so the
// 1e4 admission cap actually sheds.
func capCfg(workers int) Config {
	cfg := fleetCfg(workers)
	cfg.Devices = 64
	cfg.WallMs = 3500
	cfg.MaxArrivals = 10_000
	return cfg
}

// TestMaxArrivalsBoundsGatewayBuffer is the ROADMAP item 1 residual at
// n=1e4: with a fleet offering more arrivals than the cap, the gateway
// admits exactly the cap, counts the shed frames, exports them as a
// metric, and stays worker-count deterministic.
func TestMaxArrivalsBoundsGatewayBuffer(t *testing.T) {
	uncapped := capCfg(1)
	uncapped.MaxArrivals = 0
	full, err := Run(uncapped)
	if err != nil {
		t.Fatal(err)
	}
	if full.Gateway.Arrivals <= 10_000 {
		t.Fatalf("fixture too small: only %d arrivals offered", full.Gateway.Arrivals)
	}

	rep, err := Run(capCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gateway.Arrivals != 10_000 {
		t.Fatalf("admitted %d arrivals, want exactly the 10000 cap", rep.Gateway.Arrivals)
	}
	if rep.ArrivalsDropped == 0 {
		t.Fatal("cap shed nothing")
	}
	if got, want := rep.ArrivalsDropped, full.Gateway.Arrivals-10_000; got != want {
		t.Fatalf("dropped %d, want %d (offered %d - cap)", got, want, full.Gateway.Arrivals)
	}
	if v := rep.Metrics.Counter("fleet_gateway_arrivals_dropped"); v != rep.ArrivalsDropped {
		t.Fatalf("metric fleet_gateway_arrivals_dropped = %d, want %d", v, rep.ArrivalsDropped)
	}

	par, err := Run(capCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if par.Digest != rep.Digest || par.ArrivalsDropped != rep.ArrivalsDropped {
		t.Fatalf("cap not deterministic across workers: digest %q vs %q, dropped %d vs %d",
			par.Digest, rep.Digest, par.ArrivalsDropped, rep.ArrivalsDropped)
	}
}
