package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/vm"
)

func TestMedianAndMAD(t *testing.T) {
	cases := []struct {
		xs       []float64
		med, mad float64
	}{
		{nil, 0, 0},
		{[]float64{7}, 7, 0},
		{[]float64{1, 2, 3, 4}, 2.5, 1},
		{[]float64{1, 1, 1, 1, 100}, 1, 0},
		{[]float64{2, 4, 6, 8, 10}, 6, 2},
	}
	for _, c := range cases {
		if got := median(c.xs); got != c.med {
			t.Errorf("median(%v) = %v, want %v", c.xs, got, c.med)
		}
		if got := mad(c.xs, median(c.xs)); got != c.mad {
			t.Errorf("mad(%v) = %v, want %v", c.xs, got, c.mad)
		}
	}
}

func TestMADOutliers(t *testing.T) {
	// MAD > 0: classical cut at median + k·MAD.
	cut, idx := madOutliers([]float64{2, 4, 6, 8, 10, 100}, 3.5)
	if want := 7.0 + 3.5*3; cut != want {
		t.Fatalf("cut = %v, want %v", cut, want)
	}
	if !reflect.DeepEqual(idx, []int{5}) {
		t.Fatalf("outliers = %v, want [5]", idx)
	}

	// MAD == 0 with a positive median: fall back to 2× the median, so a
	// uniform fleet with one runaway still flags it…
	cut, idx = madOutliers([]float64{5, 5, 5, 5, 11}, 3.5)
	if cut != 10 || !reflect.DeepEqual(idx, []int{4}) {
		t.Fatalf("uniform fleet: cut %v idx %v, want 10 [4]", cut, idx)
	}
	// …but mild jitter under 2× stays quiet.
	if _, idx = madOutliers([]float64{5, 5, 5, 5, 9}, 3.5); idx != nil {
		t.Fatalf("jitter flagged: %v", idx)
	}
	// MAD == 0 and median == 0: nothing to compare against, never flag.
	if _, idx = madOutliers([]float64{0, 0, 0, 42}, 3.5); idx != nil {
		t.Fatalf("zero-median fleet flagged: %v", idx)
	}
}

// syntheticReport builds a report whose outcomes are hand-authored, so
// each detector can be exercised in isolation.
func syntheticReport(results ...vm.Result) *Report {
	rep := &Report{Devices: len(results)}
	for i, r := range results {
		rep.Outcomes = append(rep.Outcomes, DeviceOutcome{ID: i, Res: r})
	}
	return rep
}

func normal(cycles int64, wall float64) vm.Result {
	return vm.Result{Completed: true, Cycles: cycles, OnMs: wall, TotalCheckpoints: 3}
}

func TestDetectStragglers(t *testing.T) {
	rs := make([]vm.Result, 9)
	for i := range rs {
		rs[i] = normal(1000+int64(i), 50+float64(i))
	}
	rs = append(rs, normal(50000, 51)) // cycle straggler only
	rep := syntheticReport(rs...)
	as := DetectAnomalies(rep, 0)
	if len(as) != 1 || as[0].Dev != 9 || as[0].Kind != AnomalyStragglerCycles {
		t.Fatalf("anomalies = %+v, want one straggler-cycles on dev 9", as)
	}
	if as[0].Value != 50000 || as[0].Threshold >= 50000 {
		t.Fatalf("straggler value/threshold wrong: %+v", as[0])
	}

	// A device can be flagged on both axes at once; the list stays
	// ordered by (device, kind).
	rs[9] = normal(50000, 5000)
	as = DetectAnomalies(syntheticReport(rs...), 0)
	if len(as) != 2 || as[0].Kind != AnomalyStragglerCycles || as[1].Kind != AnomalyStragglerWall {
		t.Fatalf("anomalies = %+v, want both straggler kinds on dev 9", as)
	}
}

func TestDetectLivelock(t *testing.T) {
	rs := make([]vm.Result, 6)
	for i := range rs {
		rs[i] = normal(1000+int64(i), 50)
	}
	// Burned cycles, zero commits, never completed: the livelock shape.
	rs[2] = vm.Result{Cycles: 900, OnMs: 50, Failures: 40}
	// Incomplete but progressing (has checkpoints): not livelock.
	rs[4] = vm.Result{Cycles: 950, OnMs: 50, TotalCheckpoints: 5}
	as := DetectAnomalies(syntheticReport(rs...), 0)
	var live []int
	for _, a := range as {
		if a.Kind == AnomalyLivelock {
			live = append(live, a.Dev)
		}
	}
	if !reflect.DeepEqual(live, []int{2}) {
		t.Fatalf("livelock devices = %v, want [2]", live)
	}
}

func TestDetectFreshnessHotspot(t *testing.T) {
	rs := make([]vm.Result, 8)
	for i := range rs {
		rs[i] = normal(1000, 50)
	}
	rep := syntheticReport(rs...)
	// Every device loses its first packet to staleness (10% baseline);
	// device 6 loses seven of ten. The detector must single out 6.
	gw := NewGateway(10)
	for dev := 0; dev < 8; dev++ {
		for seq := int64(0); seq < 10; seq++ {
			lat := 5.0
			if seq == 0 || (dev == 6 && seq < 7) {
				lat = 50 // past the 10 ms freshness deadline
			}
			gw.Accept(Arrival{Dev: dev, Seq: seq, SentMs: 100, ArriveMs: 100 + lat})
		}
	}
	rep.gw, rep.Gateway = gw, gw.Stats()
	as := DetectAnomalies(rep, 0)
	var hot []int
	for _, a := range as {
		if a.Kind == AnomalyFreshness {
			hot = append(hot, a.Dev)
		}
	}
	if !reflect.DeepEqual(hot, []int{6}) {
		t.Fatalf("freshness hotspots = %v, want [6]", hot)
	}

	// Without a gateway (or with zero expiries) the detector stays out.
	rep.gw = nil
	for _, a := range DetectAnomalies(rep, 0) {
		if a.Kind == AnomalyFreshness {
			t.Fatalf("freshness anomaly without gateway data: %+v", a)
		}
	}
}

func TestDetectAnomaliesDeterministic(t *testing.T) {
	rep, err := Run(lossyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	a := DetectAnomalies(rep, 0)
	b := DetectAnomalies(rep, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("anomaly pass is not deterministic over the same report")
	}
	if !reflect.DeepEqual(a, rep.Anomalies) {
		t.Fatal("Report.Anomalies diverges from a fresh DetectAnomalies pass")
	}
}

func TestWriteAnomaliesProm(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAnomaliesProm(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("empty anomaly list wrote %q, err %v", buf.String(), err)
	}
	as := []Anomaly{
		{Dev: 3, Kind: AnomalyLivelock, Value: 900},
		{Dev: 7, Kind: AnomalyStragglerWall, Value: 123.5},
	}
	if err := WriteAnomaliesProm(&buf, as); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fleet_anomaly_device gauge",
		`fleet_anomaly_device{device="3",kind="livelock"} 900`,
		`fleet_anomaly_device{device="7",kind="straggler-wall"} 123.5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	if got := anomalyCounts(as); got[AnomalyLivelock] != 1 || got[AnomalyStragglerWall] != 1 {
		t.Fatalf("anomalyCounts = %v", got)
	}
}
