// Package fleet scales the single-device simulation out to a deployment:
// N devices — each its own vm.Machine, runtime instance, seeded power
// source, sensors and persistent clock — run concurrently on a
// work-stealing worker pool, report over a simulated lossy RF channel
// (per-link loss, duplication, delay, ARQ retransmits), and land on a
// gateway that deduplicates by (device, send-sequence) and accounts
// freshness against an @expires_after-style deadline.
//
// Determinism is load-bearing. Per-device seeds derive from the fleet
// seed through a splitmix64 mixer, every device owns all of its mutable
// state (no shared RNGs anywhere), and the channel + gateway post-pass
// runs single-threaded over results collected by device index — so a
// fleet's gateway log digest and merged metrics are byte-identical
// whether it ran on 1 worker or GOMAXPROCS workers. Any single device of
// a fleet can be exported as an internal/replay manifest and re-executed
// bit-identically for debugging.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	tics "repro"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sensors"
	"repro/internal/vm"
)

// Config describes a fleet run. The per-device fields mirror
// replay.Spec on purpose: device i of a fleet *is* the single-device
// run DeviceSpec(i) describes, which is what makes fleet anomalies
// exportable to the single-device record/replay tooling.
type Config struct {
	Devices int // fleet size (default 1)
	Workers int // worker pool size (0 = GOMAXPROCS)

	App     string // built-in benchmark name, or
	Source  string // inline TICS-C source
	Runtime string // runtime kind (default "tics")
	Segment int    // TICS segment bytes (0 = minimum)

	Power string // power spec, replay.ParsePower syntax (default "harvest:40000,800")
	Clock string // clock spec, replay.ParseClock syntax (default "perfect")
	Seed  uint64 // fleet seed; device seeds derive from it via DeviceSeed

	TimerMs   float64 // timer-checkpoint period (0 = off)
	WallMs    float64 // per-device wall budget (0 = run to completion)
	MaxCycles int64   // per-device cycle watchdog (0 = vm default)

	// Virtualize turns on exactly-once sends at the device (the paper's
	// I/O virtualization); off, the raw radio duplicates replayed sends
	// and only the gateway's dedup absorbs them.
	Virtualize bool

	Link        LinkParams // RF channel model, identical per link
	FreshnessMs float64    // gateway end-to-end freshness deadline (0 = off)

	// Remote streams each wave's arrivals to an out-of-process gateway
	// (ticsgate over HTTP via internal/gate.Client) instead of running
	// the in-process gateway pass; the report's gateway fields come from
	// Remote.Finalize. Nil = in-process gateway, the default.
	Remote RemoteGateway

	// MaxArrivals bounds the gateway arrival buffer (0 = unbounded):
	// once that many frames have been admitted, later frames are shed at
	// the channel exit and counted in Report.ArrivalsDropped (exported
	// as fleet_gateway_arrivals_dropped). The cap is applied in the
	// deterministic channel-pass order, so a capped fleet is still
	// byte-identical across worker counts — and it applies identically
	// to in-process and remote gateways, preserving digest parity
	// between the two attach modes at equal caps.
	MaxArrivals int

	// Collect attaches a flight recorder to every device and folds the
	// per-device metric registries into Report.Metrics via
	// obs.Registry.Merge.
	Collect bool

	// Trace enables end-to-end message telemetry: a span chain per
	// (device, committed send seq) — emit, every channel attempt, gateway
	// verdict — collected in the deterministic post-pass and exposed as
	// Report.Telemetry. Independent of Collect; costs nothing per device.
	Trace bool

	// Profile turns on each device's cycle profiler and merges the
	// per-device folded stacks into one fleet-wide flame graph
	// (Report.Profile). Implies attaching recorders like Collect does.
	Profile bool

	// AnomalyK is the MAD multiplier of the outlier pass (0 = the
	// DefaultAnomalyK modified-z-score cut).
	AnomalyK float64

	// Wave is the number of devices simulated between streaming channel
	// handoffs (0 = automatic). Each wave's send logs are transmitted and
	// released before the next wave runs, and pooled machines are reset
	// and reused across waves, so live per-device state is bounded by one
	// wave regardless of fleet size. Every externally visible result is
	// byte-identical for any Wave value.
	Wave int
	// DisablePool builds a fresh machine for every device instead of
	// resetting pooled ones — the escape hatch the pooled-reuse
	// equivalence test compares against.
	DisablePool bool
}

// DeviceSeed derives device i's seed from the fleet seed with a
// splitmix64-style mixer. The derivation is position-based and
// stateless, so it does not depend on the order devices are simulated
// in — the root of the fleet's worker-count independence.
func DeviceSeed(fleetSeed uint64, dev int) uint64 {
	z := fleetSeed + 0x9E3779B97F4A7C15*uint64(dev+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15 // seed 0 collapses some seeded sources
	}
	return z
}

// DeviceSpec returns the replay spec describing device dev of this
// fleet — the handle for exporting a fleet member to the single-device
// tooling (ticsrun -replay, the auditor, the bisector).
func (c Config) DeviceSpec(dev int) replay.Spec {
	return replay.Spec{
		App:        c.App,
		Source:     c.Source,
		Runtime:    c.runtime(),
		Segment:    c.Segment,
		Power:      c.power(),
		Clock:      c.clock(),
		Seed:       DeviceSeed(c.Seed, dev),
		TimerMs:    c.TimerMs,
		WallMs:     c.WallMs,
		MaxCycles:  c.MaxCycles,
		Virtualize: c.Virtualize,
	}
}

func (c Config) runtime() string {
	if c.Runtime == "" {
		return "tics"
	}
	return c.Runtime
}

func (c Config) power() string {
	if c.Power == "" {
		return "harvest:40000,800"
	}
	return c.Power
}

func (c Config) clock() string {
	if c.Clock == "" {
		return "perfect"
	}
	return c.Clock
}

// DeviceOutcome is one device's run, collected by index. Res.SendLog is
// consumed by the streaming channel pass and freed as the device's wave
// completes; Sends keeps the raw-radio packet count it had.
type DeviceOutcome struct {
	ID    int
	Seed  uint64
	Sends int // packets the device offered to the radio (len of the consumed SendLog)
	// UniqueSends is the count of distinct committed sequence numbers
	// among them; seqs are contiguous from 0, so the device's packets
	// carried exactly seqs [0, UniqueSends).
	UniqueSends int
	Res         vm.Result
	Err         error
}

// Report is a fleet run's aggregate result.
type Report struct {
	Devices int     `json:"devices"`
	Workers int     `json:"workers"`
	Seed    uint64  `json:"seed"`
	Elapsed float64 `json:"elapsed_sec"` // host wall time of the device phase

	// Phases partitions the round's host wall time: image build, device
	// execution, channel pass, gateway pass, telemetry render — always
	// all five, always in that order (worker-count independent
	// structure; only the durations vary). WallSeconds is the round
	// total the partition reconciles against.
	Phases      []PhaseTime `json:"phases"`
	WallSeconds float64     `json:"wall_seconds"`

	// Resources samples the host process (heap, GC, goroutines, RSS)
	// at the end of the round — the fleet_resource_* series.
	Resources obs.ResourceSnapshot `json:"resources"`

	TotalCycles int64   `json:"total_cycles"`          // simulated cycles across all devices
	Throughput  float64 `json:"device_cycles_per_sec"` // TotalCycles / Elapsed

	Completed int `json:"completed"`
	Starved   int `json:"starved"`
	TimedOut  int `json:"timed_out"`
	Faulted   int `json:"faulted"`

	Sends       int64 `json:"sends"`        // packets offered to the radios (incl. device-side replays)
	UniqueSends int64 `json:"unique_sends"` // distinct (device, seq) packets
	Link        LinkStats
	Gateway     GatewayStats
	// ArrivalsDropped counts frames shed at the channel exit because the
	// arrival buffer hit Config.MaxArrivals — load shedding, distinct
	// from channel loss (the frame survived the radio but the gateway
	// buffer was full).
	ArrivalsDropped int64   `json:"arrivals_dropped,omitempty"`
	Lost            int64   `json:"lost"` // unique packets that never reached the gateway
	LatencyP50      float64 `json:"latency_p50_ms"`
	LatencyP99      float64 `json:"latency_p99_ms"`
	Digest          string  `json:"digest"` // gateway log digest (determinism witness)

	// Anomalies is the deterministic outlier pass over per-device
	// outcomes: stragglers, livelock suspects, freshness hotspots.
	Anomalies []Anomaly `json:"anomalies,omitempty"`

	// Metrics is the fold of every device's registry (Collect only),
	// plus fleet_* rollup counters.
	Metrics *obs.Registry `json:"-"`

	// Telemetry holds the per-message span chains (Trace only).
	Telemetry *Telemetry `json:"-"`

	// Profile is the fleet-wide merge of every device's cycle profile
	// (Profile only) — one flame graph over the whole deployment.
	Profile *obs.Profile `json:"-"`

	Outcomes   []DeviceOutcome `json:"-"`
	gw         *Gateway
	registries []*obs.Registry
}

// GatewayLog returns the accepted deliveries in observation order (nil
// for a Report without a live gateway, e.g. one decoded from JSON).
func (r *Report) GatewayLog() []Delivery {
	if r.gw == nil {
		return nil
	}
	return r.gw.Log()
}

// DeviceLog returns the deliveries the gateway attributed to device dev
// (nil for a Report without a live gateway).
func (r *Report) DeviceLog(dev int) []Delivery {
	if r.gw == nil {
		return nil
	}
	return r.gw.DeviceLog(dev)
}

// DeviceRegistry returns device dev's own metrics registry (nil unless
// the fleet ran with Collect).
func (r *Report) DeviceRegistry(dev int) *obs.Registry {
	if r.registries == nil {
		return nil
	}
	return r.registries[dev]
}

// waveSize returns the number of devices simulated between streaming
// channel handoffs: small enough to bound the live send logs, large
// enough that the per-wave pool barrier is noise against device runtime.
func (c Config) waveSize(workers int) int {
	if c.Wave > 0 {
		return c.Wave
	}
	w := 256 * workers
	if w < 1024 {
		w = 1024
	}
	return w
}

// uniqueSends counts the distinct sequence numbers in a device's send
// log without allocating: committed seqs are contiguous from 0 and a
// rollback can only rewind the counter, so the distinct count is the
// running frontier max(seq)+1. Pinned against the map-based count by
// TestUniqueSendsMatchesSet.
func uniqueSends(log []vm.SendRec) int64 {
	var u int64
	for i := range log {
		if log[i].Seq >= u {
			u = log[i].Seq + 1
		}
	}
	return u
}

// Run simulates the fleet wave by wave: each wave's devices execute in
// parallel on the worker pool — machines drawn from a small reuse pool
// and reset between devices — and the wave's send logs stream straight
// into the deterministic single-threaded channel pass (and are released)
// before the next wave starts. The gateway, telemetry and merge passes
// then run once over all collected arrivals, so every externally visible
// result stays byte-identical across worker counts, wave sizes, and
// pooled-versus-fresh machines.
func Run(cfg Config) (*Report, error) {
	n := cfg.Devices
	if n <= 0 {
		n = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pc := newPhaseClock()
	// Build once, share everywhere: the linked image is immutable after
	// Build (machines fork its post-link snapshot copy-on-write), and it
	// is by far the most expensive per-device setup cost.
	pc.enter(PhaseBuild)
	img, _, err := replay.BuildImage(cfg.DeviceSpec(0))
	if err != nil {
		return nil, err
	}

	outcomes := make([]DeviceOutcome, n)
	var registries []*obs.Registry
	if cfg.Collect || cfg.Profile {
		registries = make([]*obs.Registry, n)
	}
	var profiles []obs.Profile
	if cfg.Profile {
		profiles = make([]obs.Profile, n)
	}

	// The machine pool holds one slot per worker; nil slots materialize
	// lazily into machines on first claim and are reset between devices.
	var pool chan *vm.Machine
	if !cfg.DisablePool {
		pool = make(chan *vm.Machine, workers)
		for i := 0; i < workers; i++ {
			pool <- nil
		}
	}

	rep := &Report{
		Devices:    n,
		Workers:    workers,
		Seed:       cfg.Seed,
		Outcomes:   outcomes,
		registries: registries,
	}
	var tel *Telemetry
	if cfg.Trace {
		tel = NewTelemetry(n, cfg.FreshnessMs)
	}
	var arrivals []Arrival
	var admitted int64 // arrivals admitted against cfg.MaxArrivals (both attach modes)
	var elapsed float64
	wave := cfg.waveSize(workers)
	for lo := 0; lo < n; lo += wave {
		hi := lo + wave
		if hi > n {
			hi = n
		}
		pc.enter(PhaseDevices)
		start := time.Now()
		ParallelFor(hi-lo, workers, func(k int) {
			i := lo + k
			var m *vm.Machine
			if pool != nil {
				m = <-pool
			}
			outcomes[i], m = runDevice(img, cfg, i, m, registries, profiles)
			if pool != nil {
				pool <- m
			}
		})
		elapsed += time.Since(start).Seconds()
		for i := lo; i < hi; i++ {
			if outcomes[i].Err != nil {
				return nil, fmt.Errorf("fleet: device %d: %w", i, outcomes[i].Err)
			}
		}

		// Streaming handoff: this wave's send logs feed the channel pass
		// in device order — the same total order as one big post-pass —
		// and are dropped before the next wave materializes its own. The
		// channel phase accumulates across re-entries. With a remote
		// gateway the wave's arrivals ship out (and are released) here
		// too, so the in-flight arrival buffer is one wave deep.
		pc.enter(PhaseChannel)
		var waveArr []Arrival
		for i := lo; i < hi; i++ {
			log := outcomes[i].Res.SendLog
			outcomes[i].Sends = len(log)
			outcomes[i].UniqueSends = int(uniqueSends(log))
			rep.Sends += int64(len(log))
			rep.UniqueSends += int64(outcomes[i].UniqueSends)
			devArr, st := transmit(i, DeviceSeed(cfg.Seed, i), cfg.Link, log, tel)
			rep.Link.add(st)
			// Arrival-buffer bound: admit frames in channel-pass order up
			// to the cap, shed (and count) the rest. PR8 bounded the send
			// logs; this bounds the only other buffer that scales with
			// total fleet traffic.
			if cfg.MaxArrivals > 0 && admitted+int64(len(devArr)) > int64(cfg.MaxArrivals) {
				keep := int64(cfg.MaxArrivals) - admitted
				if keep < 0 {
					keep = 0
				}
				rep.ArrivalsDropped += int64(len(devArr)) - keep
				devArr = devArr[:keep]
			}
			admitted += int64(len(devArr))
			if cfg.Remote != nil {
				waveArr = append(waveArr, devArr...)
			} else {
				arrivals = append(arrivals, devArr...)
			}
			outcomes[i].Res.SendLog = nil
		}
		if cfg.Remote != nil {
			// The gateway phase accumulates the wire time of each wave's
			// ingest alongside the final Finalize call below.
			pc.enter(PhaseGateway)
			if err := cfg.Remote.IngestWave(waveArr); err != nil {
				return nil, fmt.Errorf("fleet: remote gateway ingest: %w", err)
			}
		}
	}
	rep.Elapsed = elapsed
	for i := range outcomes {
		res := &outcomes[i].Res
		rep.TotalCycles += res.Cycles
		switch {
		case res.Fault != nil:
			rep.Faulted++
		case res.Starved:
			rep.Starved++
		case res.TimedOut:
			rep.TimedOut++
		case res.Completed:
			rep.Completed++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.TotalCycles) / elapsed
	}

	// Deterministic post-pass. In-process: the gateway consumes the
	// globally sorted arrival order, so neither the digest nor any span
	// chain can depend on how the pool scheduled the device waves.
	// Remote: the waves already streamed out; Finalize fetches the
	// service's accounting, which is order-independent by construction
	// (internal/gate retains the ArrivalBefore-minimal arrival per
	// (device, seq)) and therefore equal to the in-process result.
	var gw *Gateway
	pc.enter(PhaseGateway)
	if cfg.Remote != nil {
		sum, err := cfg.Remote.Finalize()
		if err != nil {
			return nil, fmt.Errorf("fleet: remote gateway finalize: %w", err)
		}
		pc.enter(PhaseTelemetry)
		tel.finalizeRemote()
		rep.Gateway = sum.Stats
		rep.Lost = rep.UniqueSends - sum.Unique
		rep.LatencyP50 = sum.P50Ms
		rep.LatencyP99 = sum.P99Ms
		rep.Digest = sum.Digest
	} else {
		gw = NewGateway(cfg.FreshnessMs)
		SortArrivals(arrivals)
		for _, a := range arrivals {
			tel.onVerdict(a, gw.Accept(a))
		}
		pc.enter(PhaseTelemetry)
		tel.finalize()
		rep.gw = gw
		rep.Gateway = gw.Stats()
		rep.Lost = rep.UniqueSends - int64(gw.Unique())
		rep.LatencyP50 = gw.LatencyQuantile(0.50)
		rep.LatencyP99 = gw.LatencyQuantile(0.99)
		rep.Digest = gw.Digest()
	}
	rep.Telemetry = tel
	rep.Anomalies = DetectAnomalies(rep, cfg.AnomalyK)

	if cfg.Collect || cfg.Profile {
		merged := obs.NewRegistry()
		for i, reg := range registries {
			if reg == nil {
				continue
			}
			if err := merged.Merge(reg); err != nil {
				return nil, fmt.Errorf("fleet: device %d: %w", i, err)
			}
		}
		merged.Add("fleet_devices", int64(n))
		merged.Add("fleet_total_cycles", rep.TotalCycles)
		merged.Add("fleet_sends_unique", rep.UniqueSends)
		merged.Add("fleet_gateway_delivered", rep.Gateway.Delivered)
		merged.Add("fleet_gateway_duplicates", rep.Gateway.Duplicates)
		merged.Add("fleet_gateway_expired", rep.Gateway.Expired)
		merged.Add("fleet_packets_lost", rep.Lost)
		// Always-present (like trace_events_dropped): a zero sample is
		// the evidence load shedding did NOT happen.
		merged.Add("fleet_gateway_arrivals_dropped", rep.ArrivalsDropped)
		// The gateway's latency histogram lands in the rollup under the
		// same bounds it was observed with, so a Prometheus
		// histogram_quantile over the exported buckets agrees with
		// Report.LatencyP50/P99 (both are obs.Histogram.Quantile). A
		// remote-attached fleet has no local histogram — its latency
		// surface is the service's own /metrics.
		if gw != nil {
			if err := merged.RegisterHistogram("fleet_gateway_latency_ms", LatencyBounds).
				Merge(gw.LatencyHistogram()); err != nil {
				return nil, fmt.Errorf("fleet: latency rollup: %w", err)
			}
		}
		for kind, c := range anomalyCounts(rep.Anomalies) {
			merged.Add("fleet_anomaly_"+kind, c)
		}
		merged.Add("fleet_anomalies", int64(len(rep.Anomalies)))
		rep.Metrics = merged
	}
	if cfg.Profile {
		p := obs.MergeProfiles(profiles...)
		rep.Profile = &p
	}
	rep.Phases, rep.WallSeconds = pc.finish()
	rep.Resources = obs.SampleResources()
	return rep, nil
}

// runDevice executes one device with fully private run state: its own
// seeded power source, sensor bank, clock, and (when collecting) its own
// recorder. The machine itself may be a pooled one handed in from a
// previous device — it is reset to a fresh fork of the shared image
// before running, which is indistinguishable from a new machine. The
// (possibly newly created) machine is returned for the pool. Nothing
// here may touch state shared with another in-flight device — the -race
// fleet test enforces it.
func runDevice(img *tics.Image, cfg Config, dev int, m *vm.Machine, registries []*obs.Registry, profiles []obs.Profile) (DeviceOutcome, *vm.Machine) {
	seed := DeviceSeed(cfg.Seed, dev)
	out := DeviceOutcome{ID: dev, Seed: seed}
	src, err := replay.ParsePower(cfg.power(), seed)
	if err != nil {
		out.Err = err
		return out, m
	}
	clock, err := replay.ParseClock(cfg.clock(), seed)
	if err != nil {
		out.Err = err
		return out, m
	}
	var rec *obs.Recorder
	if registries != nil {
		// A small ring: fleet aggregation wants the metrics (and, with
		// Profile, the folded stacks), not the event history (export a
		// device to replay for that). Recorders are not pooled: the
		// per-device registries outlive the run in Report.DeviceRegistry.
		rec = obs.NewRecorder(obs.Options{RingCap: 64, Profile: profiles != nil})
		registries[dev] = rec.Metrics()
	}
	opts := tics.RunOptions{
		Power:           src,
		Clock:           clock,
		Sensors:         sensors.NewBank(seed),
		AutoCpPeriodMs:  cfg.TimerMs,
		MaxWallMs:       cfg.WallMs,
		MaxCycles:       cfg.MaxCycles,
		VirtualizeSends: cfg.Virtualize,
		Recorder:        rec,
	}
	if m == nil {
		if m, err = tics.NewMachine(img, opts); err != nil {
			out.Err = err
			return out, nil
		}
	} else if err = tics.ResetMachine(m, img, opts); err != nil {
		out.Err = err
		return out, nil
	}
	res, runErr := m.Run()
	out.Res = res
	if profiles != nil {
		// Run's trailing CommitObservables flushed pending attribution,
		// so the snapshot partitions the device's cycles exactly. Each
		// device writes only its own slot — pool convention.
		profiles[dev] = rec.Profile()
	}
	// A program fault is a device outcome, not a fleet error; it is
	// already folded into Res.Fault. Only setup errors abort the fleet.
	_ = runErr
	return out, m
}

// ExportDevice records device dev of the fleet as a replay manifest —
// the bridge from "device 371 looks wrong in the fleet" to the
// single-device auditor/replay/bisect tooling. The recorded run executes
// the same spec with the same derived seed, so its result digest matches
// the fleet outcome and the manifest re-verifies via replay.VerifyReplay.
func ExportDevice(cfg Config, dev int) (*replay.Manifest, *replay.Run, error) {
	n := cfg.Devices
	if n <= 0 {
		n = 1
	}
	if dev < 0 || dev >= n {
		return nil, nil, errors.New("fleet: device index out of range")
	}
	return replay.Record(cfg.DeviceSpec(dev), nil)
}
