package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/obs"
)

// Gateway is the fleet's sink: it deduplicates arrivals by (device,
// sequence) and accounts freshness against an @expires_after-style
// deadline. Dedup by the device's committed send sequence absorbs every
// duplication mode at once — device-side replays after a rollback (the
// raw radio re-sending with the same Seq), link-layer retransmits after
// a lost ACK, and channel echoes — which is what makes the end-to-end
// pipeline exactly-once even when no single hop is.
type Gateway struct {
	// FreshnessMs is the end-to-end deadline: a packet whose first
	// arrival lands more than FreshnessMs after its send is expired —
	// delivered data that is too stale to act on, the paper's central
	// time-consistency hazard pushed out to the network. Zero disables.
	FreshnessMs float64

	seen   map[gwKey]struct{}
	log    []Delivery
	lat    *obs.Histogram
	stats  GatewayStats
	perDev map[int]*GatewayStats
}

// Verdict is what the gateway decided about one arrival.
type Verdict uint8

const (
	VerdictDelivered Verdict = iota // first arrival, within the freshness deadline
	VerdictDuplicate                // repeat (device, seq); dropped
	VerdictExpired                  // first arrival, but past the freshness deadline
)

var verdictNames = [...]string{"delivered", "duplicate", "expired"}

func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "?"
}

// LatencyBounds are the fixed bucket bounds (ms) of the gateway's
// end-to-end latency histogram. Shared with the fleet metrics rollup so
// per-run and fleet-level latency estimates come from the same
// obs.Histogram.Quantile math and cannot drift.
var LatencyBounds = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

type gwKey struct {
	dev int
	seq int64
}

// Delivery is one accepted (fresh, first-arrival) packet.
type Delivery struct {
	Dev      int     `json:"dev"`
	Seq      int64   `json:"seq"`
	Value    int32   `json:"value"`
	SentMs   float64 `json:"sent_ms"`
	ArriveMs float64 `json:"arrive_ms"`
}

// GatewayStats counts what the gateway did with the arrival stream.
type GatewayStats struct {
	Arrivals   int64 `json:"arrivals"`   // frames observed
	Delivered  int64 `json:"delivered"`  // unique fresh packets accepted
	Duplicates int64 `json:"duplicates"` // repeat (device, seq) arrivals dropped
	Expired    int64 `json:"expired"`    // unique packets past the freshness deadline
}

// NewGateway builds an empty gateway with the given freshness deadline
// (0 = no deadline).
func NewGateway(freshnessMs float64) *Gateway {
	return &Gateway{
		FreshnessMs: freshnessMs,
		seen:        make(map[gwKey]struct{}),
		lat:         obs.NewHistogram(LatencyBounds),
		perDev:      make(map[int]*GatewayStats),
	}
}

// Accept processes one arrival and returns the verdict — the last hop of
// the message's span chain. Call in gateway observation order (see
// SortArrivals) for deterministic logs.
func (g *Gateway) Accept(a Arrival) Verdict {
	g.stats.Arrivals++
	dst := g.perDev[a.Dev]
	if dst == nil {
		dst = &GatewayStats{}
		g.perDev[a.Dev] = dst
	}
	dst.Arrivals++
	k := gwKey{a.Dev, a.Seq}
	if _, dup := g.seen[k]; dup {
		g.stats.Duplicates++
		dst.Duplicates++
		return VerdictDuplicate
	}
	g.seen[k] = struct{}{}
	if g.FreshnessMs > 0 && a.ArriveMs-a.SentMs > g.FreshnessMs {
		g.stats.Expired++
		dst.Expired++
		return VerdictExpired
	}
	g.stats.Delivered++
	dst.Delivered++
	g.log = append(g.log, Delivery{Dev: a.Dev, Seq: a.Seq, Value: a.Value, SentMs: a.SentMs, ArriveMs: a.ArriveMs})
	g.lat.Observe(a.ArriveMs - a.SentMs)
	return VerdictDelivered
}

// Stats returns the gateway counters.
func (g *Gateway) Stats() GatewayStats { return g.stats }

// DeviceStats returns the gateway counters attributed to one device —
// the per-device view the anomaly pass (freshness-loss hotspots) reads.
func (g *Gateway) DeviceStats(dev int) GatewayStats {
	if st := g.perDev[dev]; st != nil {
		return *st
	}
	return GatewayStats{}
}

// Log returns the accepted deliveries in observation order.
func (g *Gateway) Log() []Delivery { return g.log }

// Unique returns how many distinct (device, sequence) packets arrived,
// fresh or expired.
func (g *Gateway) Unique() int { return len(g.seen) }

// DeviceLog returns the deliveries attributed to one device, in
// observation order — the view `ticsrun -seq` output diffs against.
func (g *Gateway) DeviceLog(dev int) []Delivery {
	var out []Delivery
	for _, d := range g.log {
		if d.Dev == dev {
			out = append(out, d)
		}
	}
	return out
}

// Digest is a SHA-256 over the delivery log's canonical rendering — the
// fleet's one-line determinism witness: identical digests mean identical
// deliveries in identical order.
func (g *Gateway) Digest() string { return DigestOf(g.log) }

// DigestOf renders a delivery log into the canonical SHA-256 digest.
// Shared with internal/gate: the standalone gateway service hashes its
// durable delivery state through this exact function, which is what
// makes an HTTP-attached fleet's digest byte-comparable to an
// in-process run of the same manifest.
func DigestOf(log []Delivery) string {
	h := sha256.New()
	for _, d := range log {
		fmt.Fprintf(h, "%d %d %d %.6f %.6f\n", d.Dev, d.Seq, d.Value, d.SentMs, d.ArriveMs)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LatencyQuantile returns the q-quantile (0..1) of end-to-end delivery
// latency in ms (0 when none). It delegates to obs.Histogram.Quantile
// over LatencyBounds, the same estimator every other latency surface in
// the repo uses — so a fleet report, a merged metrics dump, and a
// Prometheus histogram_quantile over the exported buckets all agree.
func (g *Gateway) LatencyQuantile(q float64) float64 { return g.lat.Quantile(q) }

// LatencyHistogram exposes the underlying latency histogram so the fleet
// rollup can merge it into the fleet-wide registry (bounds always match:
// both sides use LatencyBounds).
func (g *Gateway) LatencyHistogram() *obs.Histogram { return g.lat }
