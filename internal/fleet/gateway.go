package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// Gateway is the fleet's sink: it deduplicates arrivals by (device,
// sequence) and accounts freshness against an @expires_after-style
// deadline. Dedup by the device's committed send sequence absorbs every
// duplication mode at once — device-side replays after a rollback (the
// raw radio re-sending with the same Seq), link-layer retransmits after
// a lost ACK, and channel echoes — which is what makes the end-to-end
// pipeline exactly-once even when no single hop is.
type Gateway struct {
	// FreshnessMs is the end-to-end deadline: a packet whose first
	// arrival lands more than FreshnessMs after its send is expired —
	// delivered data that is too stale to act on, the paper's central
	// time-consistency hazard pushed out to the network. Zero disables.
	FreshnessMs float64

	seen  map[gwKey]struct{}
	log   []Delivery
	lat   []float64
	stats GatewayStats
}

type gwKey struct {
	dev int
	seq int64
}

// Delivery is one accepted (fresh, first-arrival) packet.
type Delivery struct {
	Dev      int     `json:"dev"`
	Seq      int64   `json:"seq"`
	Value    int32   `json:"value"`
	SentMs   float64 `json:"sent_ms"`
	ArriveMs float64 `json:"arrive_ms"`
}

// GatewayStats counts what the gateway did with the arrival stream.
type GatewayStats struct {
	Arrivals   int64 `json:"arrivals"`   // frames observed
	Delivered  int64 `json:"delivered"`  // unique fresh packets accepted
	Duplicates int64 `json:"duplicates"` // repeat (device, seq) arrivals dropped
	Expired    int64 `json:"expired"`    // unique packets past the freshness deadline
}

// NewGateway builds an empty gateway with the given freshness deadline
// (0 = no deadline).
func NewGateway(freshnessMs float64) *Gateway {
	return &Gateway{FreshnessMs: freshnessMs, seen: make(map[gwKey]struct{})}
}

// Accept processes one arrival. Call in gateway observation order (see
// SortArrivals) for deterministic logs.
func (g *Gateway) Accept(a Arrival) {
	g.stats.Arrivals++
	k := gwKey{a.Dev, a.Seq}
	if _, dup := g.seen[k]; dup {
		g.stats.Duplicates++
		return
	}
	g.seen[k] = struct{}{}
	if g.FreshnessMs > 0 && a.ArriveMs-a.SentMs > g.FreshnessMs {
		g.stats.Expired++
		return
	}
	g.stats.Delivered++
	g.log = append(g.log, Delivery{Dev: a.Dev, Seq: a.Seq, Value: a.Value, SentMs: a.SentMs, ArriveMs: a.ArriveMs})
	g.lat = append(g.lat, a.ArriveMs-a.SentMs)
}

// Stats returns the gateway counters.
func (g *Gateway) Stats() GatewayStats { return g.stats }

// Log returns the accepted deliveries in observation order.
func (g *Gateway) Log() []Delivery { return g.log }

// Unique returns how many distinct (device, sequence) packets arrived,
// fresh or expired.
func (g *Gateway) Unique() int { return len(g.seen) }

// DeviceLog returns the deliveries attributed to one device, in
// observation order — the view `ticsrun -seq` output diffs against.
func (g *Gateway) DeviceLog(dev int) []Delivery {
	var out []Delivery
	for _, d := range g.log {
		if d.Dev == dev {
			out = append(out, d)
		}
	}
	return out
}

// Digest is a SHA-256 over the delivery log's canonical rendering — the
// fleet's one-line determinism witness: identical digests mean identical
// deliveries in identical order.
func (g *Gateway) Digest() string {
	h := sha256.New()
	for _, d := range g.log {
		fmt.Fprintf(h, "%d %d %d %.6f %.6f\n", d.Dev, d.Seq, d.Value, d.SentMs, d.ArriveMs)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LatencyQuantile returns the q-quantile (0..1) of end-to-end delivery
// latency in ms, exact over the accepted deliveries (0 when none).
func (g *Gateway) LatencyQuantile(q float64) float64 {
	if len(g.lat) == 0 {
		return 0
	}
	s := append([]float64(nil), g.lat...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
