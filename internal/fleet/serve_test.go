package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serveTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := lossyCfg(2)
	cfg.Trace = false // NewServer must force it back on
	s := NewServer(cfg, false)
	if err := s.RunFleet(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServerEndpoints(t *testing.T) {
	s, ts := serveTestServer(t)
	rep := s.Report()
	if rep == nil || rep.Telemetry == nil || rep.Metrics == nil {
		t.Fatal("server round did not publish telemetry + metrics")
	}

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body := get(t, ts.URL+"/fleet")
	if code != 200 {
		t.Fatalf("/fleet: %d", code)
	}
	var fleetDoc struct {
		Summary struct {
			Run       int64  `json:"run"`
			Devices   int    `json:"devices"`
			Digest    string `json:"digest"`
			Anomalies int    `json:"anomalies"`
		} `json:"summary"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal([]byte(body), &fleetDoc); err != nil {
		t.Fatalf("/fleet is not JSON: %v", err)
	}
	if fleetDoc.Summary.Run != 1 || fleetDoc.Summary.Devices != rep.Devices ||
		fleetDoc.Summary.Digest != rep.Digest || len(fleetDoc.Report) == 0 {
		t.Fatalf("/fleet summary wrong: %+v", fleetDoc.Summary)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"fleet_serve_runs 1",
		"fleet_gateway_latency_ms_bucket",
		"trace_events_dropped",
		"fleet_devices",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// A known trace round-trips through /trace/{device}/{seq}.
	want := rep.Telemetry.Traces()[0]
	code, body = get(t, fmt.Sprintf("%s/trace/%d/%d", ts.URL, want.Dev, want.Seq))
	if code != 200 {
		t.Fatalf("/trace: %d %s", code, body)
	}
	var got MessageTrace
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Dev != want.Dev || got.Seq != want.Seq ||
		len(got.Attempts) != len(want.Attempts) || got.Verdict.Outcome != want.Verdict.Outcome {
		t.Fatalf("trace round-trip mangled: got %+v want %+v", got, want)
	}

	if code, _ := get(t, ts.URL+"/trace/0/999999"); code != 404 {
		t.Fatalf("unknown seq: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/trace/zebra/0"); code != 400 {
		t.Fatalf("bad device: %d, want 400", code)
	}
	if code, body := get(t, ts.URL+"/"); code != 200 || !strings.Contains(body, "ticsfleet") {
		t.Fatalf("dashboard: %d", code)
	}
}

func TestServerBeforeFirstRound(t *testing.T) {
	s := NewServer(lossyCfg(1), false)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("/healthz before first round: %d", code)
	}
	if code, _ := get(t, ts.URL+"/fleet"); code != 503 {
		t.Fatalf("/fleet before first round: %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/trace/0/0"); code != 503 {
		t.Fatalf("/trace before first round: %d, want 503", code)
	}
	// /metrics stays scrapable — it just has nothing fleet-shaped yet.
	if code, body := get(t, ts.URL+"/metrics"); code != 200 || !strings.Contains(body, "fleet_serve_runs 0") {
		t.Fatalf("/metrics before first round: %d %q", code, body)
	}
}

func TestServerEventsSSE(t *testing.T) {
	_, ts := serveTestServer(t)

	// On connect the stream replays the latest round summary.
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("first SSE line %q", line)
	}
	var sum struct {
		Run    int64  `json:"run"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Run != 1 || sum.Digest == "" {
		t.Fatalf("SSE summary %+v", sum)
	}
}
