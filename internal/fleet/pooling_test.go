package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	tics "repro"
	"repro/internal/replay"
	"repro/internal/sensors"
)

// assertReportsMatch compares every externally visible fleet result two
// runs produced — the pooled-reuse and wave-size equivalence gates.
func assertReportsMatch(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if a.Digest != b.Digest {
		t.Fatalf("%s: digests diverge:\n %s\n %s", label, a.Digest, b.Digest)
	}
	if a.Gateway != b.Gateway {
		t.Fatalf("%s: gateway stats diverge: %+v vs %+v", label, a.Gateway, b.Gateway)
	}
	if a.Link != b.Link {
		t.Fatalf("%s: link stats diverge: %+v vs %+v", label, a.Link, b.Link)
	}
	if a.Sends != b.Sends || a.UniqueSends != b.UniqueSends ||
		a.Lost != b.Lost || a.TotalCycles != b.TotalCycles {
		t.Fatalf("%s: aggregates diverge", label)
	}
	if a.Completed != b.Completed || a.Starved != b.Starved ||
		a.TimedOut != b.TimedOut || a.Faulted != b.Faulted {
		t.Fatalf("%s: outcome counts diverge", label)
	}
	for i := range a.Outcomes {
		x, y := a.Outcomes[i], b.Outcomes[i]
		if x.Seed != y.Seed || x.Res.Cycles != y.Res.Cycles ||
			x.Sends != y.Sends || x.UniqueSends != y.UniqueSends ||
			x.Res.TotalCheckpoints != y.Res.TotalCheckpoints ||
			x.Res.Restores != y.Res.Restores ||
			x.Res.MemStats != y.Res.MemStats {
			t.Fatalf("%s: device %d outcomes diverge:\n%+v\n%+v", label, i, x, y)
		}
	}
	if a.Metrics != nil || b.Metrics != nil {
		var sa, sb strings.Builder
		a.Metrics.Dump(&sa)
		b.Metrics.Dump(&sb)
		if sa.String() != sb.String() {
			t.Fatalf("%s: merged metrics diverge:\n%s\nvs\n%s", label, sa.String(), sb.String())
		}
	}
}

// TestPooledReuseMatchesFresh is the pooled-machine acceptance gate: a
// fleet whose machines are reset and reused across waves must be
// indistinguishable — digest, counters, per-device results, merged
// metrics — from one that builds a fresh machine per device. A tiny Wave
// forces every pooled machine through many reuse cycles, and the -race
// runs in CI make it double as the pool's sharing regression.
func TestPooledReuseMatchesFresh(t *testing.T) {
	mk := func(disable bool) Config {
		cfg := fleetCfg(3)
		cfg.Devices = 13
		cfg.WallMs = 150
		cfg.Wave = 4
		cfg.DisablePool = disable
		return cfg
	}
	pooled, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	assertReportsMatch(t, "pooled vs fresh", pooled, fresh)

	// Raw-radio replays stress the send-seq reset path specifically.
	raw := sendyCfg(false)
	raw.Wave = 2
	rawPooled, err := Run(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw.DisablePool = true
	rawFresh, err := Run(raw)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsMatch(t, "raw-radio pooled vs fresh", rawPooled, rawFresh)
}

// TestWaveSizeIndependence: the streaming handoff must not leak into any
// result — one wave per device, tiny waves, and one big wave all match.
func TestWaveSizeIndependence(t *testing.T) {
	run := func(wave int) *Report {
		cfg := fleetCfg(2)
		cfg.Devices = 9
		cfg.WallMs = 150
		cfg.Wave = wave
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one := run(1)
	three := run(3)
	big := run(4096)
	assertReportsMatch(t, "wave 1 vs 3", one, three)
	assertReportsMatch(t, "wave 3 vs big", three, big)
}

// TestUniqueSendsMatchesSet pins the frontier-counting optimization
// against the map it replaced, on a raw radio whose rollbacks actually
// replay sequence numbers (seqs like 0,1,2,1,2,3 — nondecreasing only
// between rollbacks).
func TestUniqueSendsMatchesSet(t *testing.T) {
	spec := replay.Spec{
		Source:  sendySrc,
		Runtime: "tics",
		Power:   "fail:7300",
		Seed:    7,
		TimerMs: 5,
	}
	img, _, err := replay.BuildImage(spec)
	if err != nil {
		t.Fatal(err)
	}
	src, err := replay.ParsePower(spec.Power, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          src,
		Sensors:        sensors.NewBank(spec.Seed),
		AutoCpPeriodMs: spec.TimerMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	log := res.SendLog
	if len(log) == 0 {
		t.Fatal("scenario produced no sends")
	}
	set := map[int64]struct{}{}
	replayed := false
	for i, rec := range log {
		if _, dup := set[rec.Seq]; dup {
			replayed = true
		}
		set[rec.Seq] = struct{}{}
		if i > 0 && rec.Seq < log[i-1].Seq {
			replayed = true
		}
	}
	if !replayed {
		t.Fatal("scenario did not replay any seq; the regression test is vacuous")
	}
	if got, want := uniqueSends(log), int64(len(set)); got != want {
		t.Fatalf("uniqueSends = %d, map count = %d", got, want)
	}
}

// TestReportNilGateway: a Report decoded from JSON (or zero-constructed
// in tests) has no live gateway; its log accessors must return nil, not
// panic — the same contract DeviceRegistry already had.
func TestReportNilGateway(t *testing.T) {
	var rep Report
	if rep.GatewayLog() != nil {
		t.Fatal("GatewayLog on a zero Report is non-nil")
	}
	if rep.DeviceLog(0) != nil {
		t.Fatal("DeviceLog on a zero Report is non-nil")
	}
	if rep.DeviceRegistry(0) != nil {
		t.Fatal("DeviceRegistry on a zero Report is non-nil")
	}

	live, err := Run(Config{Devices: 1, Workers: 1, App: "ghm", WallMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.GatewayLog() != nil || decoded.DeviceLog(0) != nil {
		t.Fatal("decoded Report resurrected a gateway")
	}
}
