package fleet

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// The phases of one fleet round, in execution order. Every Report
// carries exactly these phases in exactly this order regardless of
// fleet size or worker count — the *structure* is deterministic even
// though the durations are host wall time. That invariant is what lets
// a dashboard diff rounds and a bench sweep diff hosts.
const (
	PhaseBuild     = "build"     // shared image compile+link
	PhaseDevices   = "devices"   // parallel device execution
	PhaseChannel   = "channel"   // per-device lossy-channel pass
	PhaseGateway   = "gateway"   // arrival sort + dedup/freshness pass
	PhaseTelemetry = "telemetry" // span finalize, anomalies, metric merges
)

// PhaseNames lists the round phases in order.
var PhaseNames = []string{PhaseBuild, PhaseDevices, PhaseChannel, PhaseGateway, PhaseTelemetry}

// PhaseTime is one phase's host wall time within a round.
type PhaseTime struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// phaseClock attributes a round's wall time to phases on the host's
// monotonic clock (time.Since reads the monotonic reading both samples
// carry). Exactly one phase is open at a time; enter closes the
// previous one, so the phase list partitions the instrumented stretch
// of Run with no gaps between phases.
type phaseClock struct {
	times   []PhaseTime
	current int // index into times, -1 when nothing is open
	started time.Time
	began   time.Time // first enter, for the whole-round wall clock
}

func newPhaseClock() *phaseClock {
	pc := &phaseClock{times: make([]PhaseTime, len(PhaseNames)), current: -1}
	for i, name := range PhaseNames {
		pc.times[i] = PhaseTime{Phase: name}
	}
	return pc
}

// enter closes the open phase (if any) and starts the named one.
// Re-entering a phase accumulates, so a phase interleaved with another
// still reports its total.
func (pc *phaseClock) enter(name string) {
	now := time.Now()
	pc.closeAt(now)
	if pc.began.IsZero() {
		pc.began = now
	}
	for i, t := range pc.times {
		if t.Phase == name {
			pc.current = i
			pc.started = now
			return
		}
	}
	panic("fleet: unknown phase " + name) // programming error: not data-dependent
}

// finish closes the open phase and returns the phase partition plus the
// whole-round wall seconds it sits inside.
func (pc *phaseClock) finish() (phases []PhaseTime, wallSeconds float64) {
	now := time.Now()
	pc.closeAt(now)
	if !pc.began.IsZero() {
		wallSeconds = now.Sub(pc.began).Seconds()
	}
	return pc.times, wallSeconds
}

func (pc *phaseClock) closeAt(now time.Time) {
	if pc.current >= 0 {
		pc.times[pc.current].Seconds += now.Sub(pc.started).Seconds()
		pc.current = -1
	}
}

// PhaseSeconds resolves one phase's seconds from a phase list (0 when
// absent — callers treat a missing phase as "instant", never an error).
func PhaseSeconds(phases []PhaseTime, name string) float64 {
	for _, p := range phases {
		if p.Phase == name {
			return p.Seconds
		}
	}
	return 0
}

// PhaseMap converts the ordered phase list to a name→seconds map (the
// shape the dashboard summary and the bench schema serialize).
func PhaseMap(phases []PhaseTime) map[string]float64 {
	m := make(map[string]float64, len(phases))
	for _, p := range phases {
		m[p.Phase] = p.Seconds
	}
	return m
}

// WritePhasesProm renders the round's phase partition as the labeled
// gauge series `fleet_phase_seconds{phase="..."}` — the per-phase
// sibling of WriteAnomaliesProm, emitted next to the merged registry on
// /metrics and -prom exports.
func WritePhasesProm(w io.Writer, phases []PhaseTime) error {
	if len(phases) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE fleet_phase_seconds gauge\n"); err != nil {
		return err
	}
	for _, p := range phases {
		if _, err := fmt.Fprintf(w, "fleet_phase_seconds{phase=%q} %s\n",
			p.Phase, strconv.FormatFloat(p.Seconds, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
