package fleet

// RemoteGateway is the fleet's hook for streaming its channel arrivals
// to a gateway that lives outside the process — the standalone ticsgate
// service (internal/gate) in production, a fake in tests. The contract
// mirrors the in-process pipeline exactly:
//
//   - IngestWave receives each wave's post-channel arrivals, in the
//     deterministic device-index/transmission order the channel pass
//     produces them. The implementation owns delivery semantics — it
//     must absorb retries idempotently, because the fleet will re-send
//     a wave after any transient transport failure.
//   - Finalize is called once, after the last wave, and returns the
//     gateway-side accounting for the report. For a gateway whose state
//     holds exactly this fleet's traffic, the summary (digest included)
//     must be byte-identical to what the in-process Gateway would have
//     produced from the same arrivals — internal/gate's store is built
//     around that equivalence and TestRemoteDigestMatchesInProcess
//     holds it to the letter.
//
// With a RemoteGateway attached, Report.GatewayLog/DeviceLog return nil
// (the delivery log lives in the service) and message-trace verdicts
// are accounted remotely (OutcomeRemote) — the fleet cannot know which
// arrival won dedup without re-implementing the gateway it delegated.
type RemoteGateway interface {
	IngestWave(arrivals []Arrival) error
	Finalize() (RemoteSummary, error)
}

// RemoteSummary is what a remote gateway reports back at the end of a
// run — the fields fleet.Run needs to fill the same Report slots the
// in-process gateway fills.
type RemoteSummary struct {
	Stats  GatewayStats `json:"stats"`
	Unique int64        `json:"unique"` // distinct (device, seq) packets seen, fresh or expired
	P50Ms  float64      `json:"p50_ms"`
	P99Ms  float64      `json:"p99_ms"`
	Digest string       `json:"digest"`
}
