package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// span is one worker's initial share of the index range. next is claimed
// atomically, so any worker — the owner or a thief — can take indices
// from it without locks.
type span struct {
	next  atomic.Int64
	limit int64
	// Pad spans apart so adjacent atomics do not share a cache line; the
	// claim counter is the only contended word in the pool's hot path.
	_ [48]byte
}

// ParallelFor runs job(0) … job(n-1) on a work-stealing pool of workers
// goroutines (workers <= 0 means GOMAXPROCS). The range is split into
// per-worker spans; a worker drains its own span first and then steals
// from the other spans, so skewed per-index costs still load-balance.
// Every index runs exactly once. ParallelFor returns when all jobs have
// finished.
//
// Jobs run concurrently, so they must not share mutable state; the
// convention throughout this package is that job(i) writes only to the
// i-th slot of pre-sized result slices, which also makes the overall
// outcome independent of scheduling order.
func ParallelFor(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	spans := make([]span, workers)
	per, rem := n/workers, n%workers
	lo := 0
	for w := range spans {
		sz := per
		if w < rem {
			sz++
		}
		spans[w].next.Store(int64(lo))
		spans[w].limit = int64(lo + sz)
		lo += sz
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Own span first, then sweep the others as a thief.
			for off := 0; off < workers; off++ {
				s := &spans[(w+off)%workers]
				for {
					i := s.next.Add(1) - 1
					if i >= s.limit {
						break
					}
					job(int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}
