package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// lossyCfg is a fleet whose channel exercises every span shape: losses,
// echoes, ARQ retransmits with lost ACKs, raw-radio replays (Virtualize
// off), and a freshness deadline tight enough to expire some packets.
func lossyCfg(workers int) Config {
	return Config{
		Devices: 6,
		Workers: workers,
		Source:  sendySrc,
		Runtime: "tics",
		Power:   "fail:7300",
		Seed:    11,
		TimerMs: 5,
		Link: LinkParams{
			Loss: 0.25, Dup: 0.1, DelayMinMs: 2, DelayMaxMs: 30,
			Retransmits: 2, BackoffMs: 5,
		},
		FreshnessMs: 25,
		Trace:       true,
	}
}

// TestTelemetrySpanChainComplete is the tentpole's acceptance test: a
// lossy-channel fleet run must reconstruct the full chain — emit → N
// transmit attempts → gateway verdict — for every message, and the
// per-outcome counts must reconcile exactly with the gateway and link
// accounting.
func TestTelemetrySpanChainComplete(t *testing.T) {
	rep, err := Run(lossyCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	tel := rep.Telemetry
	if tel == nil {
		t.Fatal("Trace config produced no telemetry")
	}

	// Every send in every device's log has a trace with at least one
	// emit and one attempt. Send logs are consumed by the streaming
	// channel pass, but committed seqs are contiguous from 0, so the
	// device's packets carried exactly seqs [0, UniqueSends).
	for dev, out := range rep.Outcomes {
		if out.Sends > 0 && out.UniqueSends == 0 {
			t.Fatalf("device %d: %d sends but no unique seqs", dev, out.Sends)
		}
		for seq := int64(0); seq < int64(out.UniqueSends); seq++ {
			tr := tel.Trace(dev, seq)
			if tr == nil {
				t.Fatalf("device %d seq %d: no trace", dev, seq)
			}
			if len(tr.Emits) == 0 || len(tr.Attempts) == 0 {
				t.Fatalf("device %d seq %d: incomplete chain: %+v", dev, seq, tr)
			}
		}
	}

	var delivered, expired, lost, dups int64
	var attempts, attemptsLost, echoes, acksLost int64
	for _, tr := range tel.Traces() {
		attempts += int64(len(tr.Attempts))
		for _, a := range tr.Attempts {
			if a.Lost {
				attemptsLost++
				if a.ArriveMs != 0 {
					t.Fatalf("lost attempt has an arrival: %+v", a)
				}
			}
			if a.Echo {
				echoes++
			}
			if a.AckLost {
				acksLost++
			}
			if a.Emit < 0 || a.Emit >= len(tr.Emits) {
				t.Fatalf("attempt points at emit %d of %d", a.Emit, len(tr.Emits))
			}
		}
		switch tr.Verdict.Outcome {
		case OutcomeDelivered:
			delivered++
			if tr.Verdict.LatencyMs <= 0 || tr.Verdict.FreshnessLeftMs < 0 {
				t.Fatalf("delivered verdict inconsistent: %+v", tr.Verdict)
			}
		case OutcomeExpired:
			expired++
			if tr.Verdict.FreshnessLeftMs >= 0 {
				t.Fatalf("expired verdict has budget left: %+v", tr.Verdict)
			}
		case OutcomeLost:
			lost++
			for _, a := range tr.Attempts {
				if !a.Lost {
					t.Fatalf("lost message has a delivered attempt: %+v", tr)
				}
			}
		default:
			t.Fatalf("unfinalized verdict: %+v", tr.Verdict)
		}
		dups += int64(tr.Verdict.Duplicates)
	}

	if delivered != rep.Gateway.Delivered || expired != rep.Gateway.Expired ||
		lost != rep.Lost || dups != rep.Gateway.Duplicates {
		t.Fatalf("span accounting diverges from gateway: got %d/%d/%d/%d, want %d/%d/%d/%d",
			delivered, expired, lost, dups,
			rep.Gateway.Delivered, rep.Gateway.Expired, rep.Lost, rep.Gateway.Duplicates)
	}
	// Every frame the device transmitted and every channel echo got a
	// span; echoes are deliveries the device never sent, so LinkStats
	// counts them separately.
	if attempts != rep.Link.Frames+rep.Link.Echoes {
		t.Fatalf("attempt spans %d != frames %d + echoes %d", attempts, rep.Link.Frames, rep.Link.Echoes)
	}
	if attemptsLost != rep.Link.FramesLost || echoes != rep.Link.Echoes || acksLost != rep.Link.AcksLost {
		t.Fatalf("attempt detail diverges from link stats: %d/%d/%d vs %+v",
			attemptsLost, echoes, acksLost, rep.Link)
	}
	if expired == 0 || lost == 0 || dups == 0 {
		t.Fatalf("scenario lost its teeth: expired=%d lost=%d dups=%d", expired, lost, dups)
	}
}

// TestTelemetryDeterministicAcrossWorkers extends the fleet's
// determinism contract to the span layer: the rendered trace stream is
// byte-identical across worker counts, and turning tracing on does not
// perturb the channel (same gateway digest with and without it).
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Run(lossyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(lossyCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	var sb, pb bytes.Buffer
	if err := serial.Telemetry.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Telemetry.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Fatal("no spans rendered")
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatal("span streams diverge across worker counts")
	}

	untraced := lossyCfg(2)
	untraced.Trace = false
	plain, err := Run(untraced)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest != serial.Digest {
		t.Fatal("tracing perturbed the channel: gateway digests diverge")
	}
	if plain.Telemetry != nil {
		t.Fatal("untraced run still built telemetry")
	}
}

// TestTelemetryCommitLatency: virtualized sends are held until the next
// commit point, so their emit spans carry a positive commit latency and
// a sensor timestamp earlier than the transmission.
func TestTelemetryCommitLatency(t *testing.T) {
	cfg := sendyCfg(true)
	cfg.Trace = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var held int
	for _, tr := range rep.Telemetry.Traces() {
		for _, em := range tr.Emits {
			if em.CommitLatencyMs < 0 {
				t.Fatalf("negative commit latency: %+v", em)
			}
			if em.CommitLatencyMs > 0 {
				held++
				if em.EmitTrueMs >= em.TrueMs {
					t.Fatalf("held packet's emit is not before its commit: %+v", em)
				}
			}
		}
	}
	if held == 0 {
		t.Fatal("no virtualized send was held to a commit point; commit latency untested")
	}

	// Raw-radio sends transmit at emission: latency is identically zero.
	cfg = sendyCfg(false)
	cfg.Trace = true
	rep, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Telemetry.Traces() {
		for _, em := range tr.Emits {
			if em.CommitLatencyMs != 0 {
				t.Fatalf("raw-radio send has commit latency: %+v", em)
			}
		}
	}
}

// TestTelemetryChromeExport: the Perfetto export is valid trace_event
// JSON with one process per sending device and a verdict per message.
func TestTelemetryChromeExport(t *testing.T) {
	rep, err := Run(lossyCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Telemetry.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Cat   string `json:"cat"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	procs := map[int]bool{}
	var verdicts int
	for _, ev := range doc.TraceEvents {
		if ev.Name == "process_name" {
			procs[ev.PID] = true
		}
		if ev.Cat == "gateway" {
			verdicts++
		}
	}
	if len(procs) != rep.Devices {
		t.Fatalf("export names %d device processes, fleet has %d", len(procs), rep.Devices)
	}
	if verdicts != len(rep.Telemetry.Traces()) {
		t.Fatalf("%d verdict instants for %d traces", verdicts, len(rep.Telemetry.Traces()))
	}
}

// TestTelemetryQueries covers the lookup API edges the serving layer
// leans on: out-of-range devices, unknown seqs, and nil receivers.
func TestTelemetryQueries(t *testing.T) {
	rep, err := Run(lossyCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	tel := rep.Telemetry
	if tel.Trace(-1, 0) != nil || tel.Trace(tel.Devices(), 0) != nil || tel.Trace(0, 1<<40) != nil {
		t.Fatal("bogus lookups returned traces")
	}
	dts := tel.DeviceTraces(0)
	for i := 1; i < len(dts); i++ {
		if dts[i-1].Seq >= dts[i].Seq {
			t.Fatal("device traces not in ascending seq order")
		}
	}
	var nilTel *Telemetry
	if nilTel.Trace(0, 0) != nil || nilTel.Traces() != nil || nilTel.Devices() != 0 {
		t.Fatal("nil telemetry not inert")
	}
	nilTel.onVerdict(Arrival{}, VerdictDelivered) // must not panic
	nilTel.finalize()
}
