package fleet

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Anomaly detection: a deterministic outlier pass over per-device
// outcomes, run after the gateway post-pass. Three detectors, each aimed
// at a failure mode the paper (or its evaluation) names:
//
//   - Stragglers: devices whose consumed cycles or wall time sit k MADs
//     above the fleet median — the long tail that dominates fleet wall
//     time once N reaches 10⁵.
//   - Livelock / non-progress suspects: devices that spent energy but
//     committed nothing (commit rate ≈ 0 with spend > 0) — the Figure-9
//     re-execution collapse, where checkpoint cost exceeds the power
//     window and the device re-executes the same region forever.
//   - Freshness-loss hotspots: devices whose expired-send ratio at the
//     gateway is an outlier — their data arrives, but too stale to act
//     on, the paper's central time-consistency hazard.
//
// Everything is computed from index-ordered per-device data with exact
// arithmetic on sorted copies, so the anomaly list is identical for any
// worker count.

// Anomaly flags one device for one reason.
type Anomaly struct {
	Dev  int    `json:"dev"`
	Kind string `json:"kind"` // AnomalyStraggler*, AnomalyLivelock, AnomalyFreshness
	// Value is the device's measurement, Threshold the cut it exceeded.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail"`
}

// Anomaly kinds.
const (
	AnomalyStragglerCycles = "straggler-cycles"
	AnomalyStragglerWall   = "straggler-wall"
	AnomalyLivelock        = "livelock"
	AnomalyFreshness       = "freshness-hotspot"
)

// DefaultAnomalyK is the default MAD multiplier; 3.5 is the classical
// modified-z-score cut (Iglewicz & Hoaglin).
const DefaultAnomalyK = 3.5

// median returns the middle of a sorted copy of xs (0 when empty).
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mad returns the median absolute deviation of xs around med.
func mad(xs []float64, med float64) float64 {
	d := make([]float64, len(xs))
	for i, x := range xs {
		if x >= med {
			d[i] = x - med
		} else {
			d[i] = med - x
		}
	}
	return median(d)
}

// madOutliers flags indices whose value exceeds median + k·MAD. When the
// MAD is zero (at least half the fleet is identical) a device is only
// flagged if it exceeds twice the median — pure jitter around a uniform
// fleet must not page anyone.
func madOutliers(xs []float64, k float64) (cut float64, idx []int) {
	med := median(xs)
	m := mad(xs, med)
	if m > 0 {
		cut = med + k*m
	} else {
		if med <= 0 {
			return 0, nil
		}
		cut = 2 * med
	}
	for i, x := range xs {
		if x > cut {
			idx = append(idx, i)
		}
	}
	return cut, idx
}

// DetectAnomalies runs the outlier pass over a completed fleet report.
// k <= 0 uses DefaultAnomalyK. The result is ordered by (device, kind).
func DetectAnomalies(rep *Report, k float64) []Anomaly {
	if k <= 0 {
		k = DefaultAnomalyK
	}
	n := len(rep.Outcomes)
	if n == 0 {
		return nil
	}
	var out []Anomaly

	cycles := make([]float64, n)
	wall := make([]float64, n)
	for i := range rep.Outcomes {
		cycles[i] = float64(rep.Outcomes[i].Res.Cycles)
		wall[i] = rep.Outcomes[i].Res.WallMs()
	}
	cut, idx := madOutliers(cycles, k)
	for _, i := range idx {
		out = append(out, Anomaly{Dev: i, Kind: AnomalyStragglerCycles, Value: cycles[i], Threshold: cut,
			Detail: fmt.Sprintf("%.0f cycles vs fleet cut %.0f", cycles[i], cut)})
	}
	cut, idx = madOutliers(wall, k)
	for _, i := range idx {
		out = append(out, Anomaly{Dev: i, Kind: AnomalyStragglerWall, Value: wall[i], Threshold: cut,
			Detail: fmt.Sprintf("%.1f ms wall vs fleet cut %.1f", wall[i], cut)})
	}

	// Livelock: energy went in, nothing came out. A device that completed
	// made progress by definition; one that never reached a commit point
	// while burning cycles is stuck re-executing (Figure 9's collapse) —
	// its commit rate is exactly zero with spend > 0.
	for i := range rep.Outcomes {
		res := &rep.Outcomes[i].Res
		if res.Completed || res.Cycles == 0 {
			continue
		}
		if res.TotalCheckpoints == 0 && rep.Outcomes[i].Sends == 0 {
			out = append(out, Anomaly{Dev: i, Kind: AnomalyLivelock,
				Value: float64(res.Cycles), Threshold: 0,
				Detail: fmt.Sprintf("%d cycles, %d failures, 0 commits", res.Cycles, res.Failures)})
		}
	}

	// Freshness hotspots: expired ratio per device, outliers by the same
	// MAD rule. Only devices the gateway actually heard from participate.
	if rep.gw != nil && rep.Gateway.Expired > 0 {
		ratios := make([]float64, n)
		uniques := make([]float64, n)
		for i := 0; i < n; i++ {
			st := rep.gw.DeviceStats(i)
			u := st.Delivered + st.Expired
			uniques[i] = float64(u)
			if u > 0 {
				ratios[i] = float64(st.Expired) / float64(u)
			}
		}
		cut, idx = madOutliers(ratios, k)
		for _, i := range idx {
			if uniques[i] == 0 {
				continue
			}
			out = append(out, Anomaly{Dev: i, Kind: AnomalyFreshness, Value: ratios[i], Threshold: cut,
				Detail: fmt.Sprintf("%.0f%% of %d unique packets expired vs fleet cut %.0f%%",
					100*ratios[i], int(uniques[i]), 100*cut)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Dev != out[j].Dev {
			return out[i].Dev < out[j].Dev
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// WriteAnomaliesProm renders every anomaly as a labeled Prometheus gauge
// sample, `fleet_anomaly_device{device="N",kind="..."} value`, next to
// the merged registry's fleet_anomaly_* totals — so an alert can fire on
// the count and the dashboard can name the device.
func WriteAnomaliesProm(w io.Writer, as []Anomaly) error {
	if len(as) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE fleet_anomaly_device gauge\n"); err != nil {
		return err
	}
	for _, a := range as {
		if _, err := fmt.Fprintf(w, "fleet_anomaly_device{device=%q,kind=%q} %s\n",
			strconv.Itoa(a.Dev), a.Kind, strconv.FormatFloat(a.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// anomalyCounts tallies anomalies by kind (for the metrics rollup).
func anomalyCounts(as []Anomaly) map[string]int64 {
	m := map[string]int64{}
	for _, a := range as {
		m[a.Kind]++
	}
	return m
}
