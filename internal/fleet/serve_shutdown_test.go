package fleet

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestShutdownDrainsSubscribers is the goroutine-leak regression test
// for the SSE path: handlers parked on their subscriber channel must
// drain when the server shuts down, and late subscribers must be turned
// away instead of registering a channel nobody will ever close.
func TestShutdownDrainsSubscribers(t *testing.T) {
	s, ts := serveTestServer(t)

	before := runtime.NumGoroutine()
	const clients = 4
	done := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			resp, err := http.Get(ts.URL + "/events")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			// Drain the replayed round, then block until the server ends
			// the stream.
			r := bufio.NewReader(resp.Body)
			for {
				if _, err := r.ReadString('\n'); err != nil {
					return
				}
			}
		}()
	}

	// Wait until all clients are registered and parked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.subMu.Lock()
		n := len(s.subs)
		s.subMu.Unlock()
		if n == clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d subscribers registered", n, clients)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.Shutdown()
	for i := 0; i < clients; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("SSE client still blocked after Shutdown")
		}
	}
	s.subMu.Lock()
	if len(s.subs) != 0 {
		t.Fatalf("%d subscribers survived Shutdown", len(s.subs))
	}
	s.subMu.Unlock()

	// A subscriber arriving after Shutdown is refused, not leaked.
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown subscribe: %d, want 503", resp.StatusCode)
	}

	// Shutdown is idempotent.
	s.Shutdown()

	// The handler goroutines (and their net plumbing) wind down to the
	// pre-subscription level. Idle client-side keep-alive connections
	// hold goroutines too, so they are evicted while polling.
	deadline = time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPprofMountedOnlyWhenEnabled(t *testing.T) {
	cfg := lossyCfg(1)

	plain := NewServer(cfg, false)
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	if code, _ := get(t, tsPlain.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof: %d, want 404", code)
	}

	prof := NewServer(cfg, false)
	prof.Pprof = true
	tsProf := httptest.NewServer(prof.Handler())
	defer tsProf.Close()
	code, body := get(t, tsProf.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ with -pprof: %d", code)
	}
	if code, _ := get(t, tsProf.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	// The other endpoints still work with pprof mounted.
	if code, _ := get(t, tsProf.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz with pprof: %d", code)
	}
}

func TestMetricsIncludePhasesAndResources(t *testing.T) {
	_, ts := serveTestServer(t)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE fleet_phase_seconds gauge",
		`fleet_phase_seconds{phase="build"}`,
		`fleet_phase_seconds{phase="devices"}`,
		`fleet_phase_seconds{phase="channel"}`,
		`fleet_phase_seconds{phase="gateway"}`,
		`fleet_phase_seconds{phase="telemetry"}`,
		"fleet_resource_heap_inuse_bytes",
		"fleet_resource_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%.2000s", want, body)
		}
	}
}
