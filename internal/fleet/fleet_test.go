package fleet

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replay"
)

func TestDeviceSeedDistinctAndStable(t *testing.T) {
	seen := map[uint64]int{}
	for dev := 0; dev < 1000; dev++ {
		s := DeviceSeed(1, dev)
		if s == 0 {
			t.Fatalf("device %d: zero seed", dev)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("devices %d and %d share seed %#x", prev, dev, s)
		}
		seen[s] = dev
		if s != DeviceSeed(1, dev) {
			t.Fatalf("device %d: seed not stable", dev)
		}
	}
	if DeviceSeed(1, 0) == DeviceSeed(2, 0) {
		t.Fatal("different fleet seeds produced the same device seed")
	}
}

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {100, 8}, {5, 16}, {64, 0},
	} {
		counts := make([]int32, tc.n)
		ParallelFor(tc.n, tc.workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d ran %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

// TestParallelForBalancesSkew gives the first span one huge job and the
// rest tiny ones; the pool must still finish every index (thieves drain
// the slow owner's span) well before a serial schedule would.
func TestParallelForBalancesSkew(t *testing.T) {
	const n = 64
	var ran atomic.Int32
	ParallelFor(n, 4, func(i int) {
		if i == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		ran.Add(1)
	})
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d jobs", got, n)
	}
}

func fleetCfg(workers int) Config {
	return Config{
		Devices: 8,
		Workers: workers,
		App:     "ghm",
		Runtime: "tics",
		Power:   "harvest:40000,800",
		Seed:    42,
		WallMs:  300,
		Link: LinkParams{
			Loss: 0.1, Dup: 0.05, DelayMinMs: 2, DelayMaxMs: 20,
			Retransmits: 2, BackoffMs: 5,
		},
		FreshnessMs: 500,
		Collect:     true,
	}
}

// TestFleetDeterminismAcrossWorkers is the acceptance gate for the whole
// design: a fleet's externally visible result — gateway log digest,
// gateway/link counters, per-device outcomes, merged metrics — must be
// byte-identical no matter how many workers simulated it.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	serial, err := Run(fleetCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(fleetCfg(4))
	if err != nil {
		t.Fatal(err)
	}

	if serial.Digest != parallel.Digest {
		t.Fatalf("gateway digests diverge:\n workers=1: %s\n workers=4: %s", serial.Digest, parallel.Digest)
	}
	if serial.Gateway != parallel.Gateway {
		t.Fatalf("gateway stats diverge: %+v vs %+v", serial.Gateway, parallel.Gateway)
	}
	if serial.Link != parallel.Link {
		t.Fatalf("link stats diverge: %+v vs %+v", serial.Link, parallel.Link)
	}
	if serial.Sends != parallel.Sends || serial.UniqueSends != parallel.UniqueSends ||
		serial.Lost != parallel.Lost || serial.TotalCycles != parallel.TotalCycles {
		t.Fatalf("aggregates diverge: %+v vs %+v", serial, parallel)
	}
	if serial.LatencyP50 != parallel.LatencyP50 || serial.LatencyP99 != parallel.LatencyP99 {
		t.Fatal("latency quantiles diverge")
	}
	for i := range serial.Outcomes {
		a, b := serial.Outcomes[i], parallel.Outcomes[i]
		if a.Seed != b.Seed || a.Res.Cycles != b.Res.Cycles || a.Sends != b.Sends {
			t.Fatalf("device %d outcomes diverge: %+v vs %+v", i, a, b)
		}
	}

	var sb, pb strings.Builder
	serial.Metrics.Dump(&sb)
	parallel.Metrics.Dump(&pb)
	if sb.String() != pb.String() {
		t.Fatalf("merged metrics diverge:\n workers=1:\n%s\n workers=4:\n%s", sb.String(), pb.String())
	}
	if sb.Len() == 0 {
		t.Fatal("merged metrics are empty; Collect plumbed nowhere")
	}
}

// TestFleetDeviceExportReplays: any fleet member is exportable as a
// replay manifest, the recorded run matches the in-fleet outcome, and
// the manifest re-verifies bit-identically.
func TestFleetDeviceExportReplays(t *testing.T) {
	cfg := fleetCfg(2)
	cfg.Devices = 4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const dev = 2
	man, recorded, err := ExportDevice(cfg, dev)
	if err != nil {
		t.Fatal(err)
	}
	inFleet := rep.Outcomes[dev].Res
	if recorded.Result.Cycles != inFleet.Cycles {
		t.Fatalf("exported run diverges from fleet outcome: %d vs %d cycles",
			recorded.Result.Cycles, inFleet.Cycles)
	}
	if len(recorded.Result.SendLog) != rep.Outcomes[dev].Sends {
		t.Fatalf("exported run sent %d packets, fleet device sent %d",
			len(recorded.Result.SendLog), rep.Outcomes[dev].Sends)
	}

	replayed, err := replay.Replay(man, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.VerifyReplay(man, replayed); err != nil {
		t.Fatalf("exported manifest does not re-verify: %v", err)
	}

	if _, _, err := ExportDevice(cfg, cfg.Devices); err == nil {
		t.Fatal("out-of-range export did not error")
	}
}

// TestFleetRace is the shared-state regression for the RNG/state audit:
// run a fleet with maximum sharing opportunity (one image, parallel
// workers, recorders attached) under the race detector. Any
// package-level or cross-device mutable state shows up here.
func TestFleetRace(t *testing.T) {
	cfg := fleetCfg(4)
	cfg.Devices = 12
	cfg.WallMs = 100
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFleetThroughputReported(t *testing.T) {
	rep, err := Run(Config{Devices: 2, Workers: 1, App: "ghm", WallMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles <= 0 || rep.Throughput <= 0 {
		t.Fatalf("throughput not accounted: %+v", rep)
	}
	if rep.Devices != 2 || rep.Workers != 1 {
		t.Fatalf("report misdescribes the fleet: %+v", rep)
	}
}
