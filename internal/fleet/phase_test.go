package fleet

import (
	"context"
	"strings"
	"testing"
)

// requirePhaseStructure asserts the deterministic part of phase timing:
// every report carries exactly the PhaseNames phases, in order, each
// non-negative — independent of fleet size and worker count.
func requirePhaseStructure(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Phases) != len(PhaseNames) {
		t.Fatalf("got %d phases, want %d: %+v", len(rep.Phases), len(PhaseNames), rep.Phases)
	}
	for i, p := range rep.Phases {
		if p.Phase != PhaseNames[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.Phase, PhaseNames[i])
		}
		if p.Seconds < 0 {
			t.Fatalf("phase %s negative: %g", p.Phase, p.Seconds)
		}
	}
}

func TestPhaseTimersReconcile(t *testing.T) {
	cfg := lossyCfg(2)
	cfg.Collect = true
	cfg.Trace = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requirePhaseStructure(t, rep)

	var sum float64
	for _, p := range rep.Phases {
		sum += p.Seconds
	}
	if rep.WallSeconds <= 0 {
		t.Fatalf("wall seconds %g", rep.WallSeconds)
	}
	// The phases partition the instrumented stretch of Run with no gaps
	// between enter calls, so the only slack is the work between the
	// last phase close and the wall read (a resource sample). Allow 20%
	// plus a small absolute floor for scheduler noise on tiny rounds.
	if sum > rep.WallSeconds+1e-9 {
		t.Fatalf("phase sum %g exceeds wall %g", sum, rep.WallSeconds)
	}
	if slack := rep.WallSeconds - sum; slack > 0.2*rep.WallSeconds+0.005 {
		t.Fatalf("phase sum %g reconciles poorly with wall %g (slack %g)", sum, rep.WallSeconds, slack)
	}
	// The device phase is the report's Elapsed by construction.
	if dev := PhaseSeconds(rep.Phases, PhaseDevices); dev < rep.Elapsed*0.5 || dev > rep.Elapsed*2+0.005 {
		t.Fatalf("devices phase %g vs elapsed %g", dev, rep.Elapsed)
	}
	if rep.Resources.TotalAllocBytes == 0 || rep.Resources.Goroutines < 1 {
		t.Fatalf("resource snapshot empty: %+v", rep.Resources)
	}
}

func TestPhaseStructureWorkerIndependent(t *testing.T) {
	var phaseNames [][]string
	for _, workers := range []int{1, 4} {
		rep, err := Run(lossyCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		requirePhaseStructure(t, rep)
		names := make([]string, len(rep.Phases))
		for i, p := range rep.Phases {
			names[i] = p.Phase
		}
		phaseNames = append(phaseNames, names)
	}
	if strings.Join(phaseNames[0], ",") != strings.Join(phaseNames[1], ",") {
		t.Fatalf("phase structure depends on worker count: %v vs %v", phaseNames[0], phaseNames[1])
	}
}

// TestLoopModePhasesEveryRound subscribes to the server's round stream
// and checks that every round of a -loop run publishes a full phase
// partition, not just the first.
func TestLoopModePhasesEveryRound(t *testing.T) {
	s := NewServer(lossyCfg(2), true)
	ch := make(chan []byte, 16)
	s.subMu.Lock()
	s.subs[999] = ch
	s.subMu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.RunFleet(ctx) }()

	rounds := 0
	for rounds < 3 {
		b := <-ch
		sum := string(b)
		for _, name := range PhaseNames {
			if !strings.Contains(sum, `"`+name+`"`) {
				t.Fatalf("round %d summary missing phase %q: %s", rounds, name, sum)
			}
		}
		if !strings.Contains(sum, `"wall_ms"`) {
			t.Fatalf("round %d summary missing wall_ms: %s", rounds, sum)
		}
		rounds++
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunFleet: %v", err)
	}
	if s.Runs() < 3 {
		t.Fatalf("runs %d", s.Runs())
	}
	// Each published report re-measured its phases.
	requirePhaseStructure(t, s.Report())
}

func TestWritePhasesProm(t *testing.T) {
	var b strings.Builder
	err := WritePhasesProm(&b, []PhaseTime{{Phase: "build", Seconds: 0.25}, {Phase: "devices", Seconds: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := "# TYPE fleet_phase_seconds gauge\n" +
		"fleet_phase_seconds{phase=\"build\"} 0.25\n" +
		"fleet_phase_seconds{phase=\"devices\"} 1.5\n"
	if b.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", b.String(), want)
	}
}
