package survey_test

import (
	"strings"
	"testing"

	"repro/internal/survey"
)

func TestDeterministic(t *testing.T) {
	a, err := survey.Run(survey.Config{N: 90, Seed: 2020})
	if err != nil {
		t.Fatal(err)
	}
	b, err := survey.Run(survey.Config{N: 90, Seed: 2020})
	if err != nil {
		t.Fatal(err)
	}
	if a.Wilcoxon != b.Wilcoxon || len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic study")
	}
}

func TestPaperShape(t *testing.T) {
	res, err := survey.Run(survey.Config{N: 90, Seed: 2020})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 90 || len(res.Records) != 90*3*2 {
		t.Fatalf("size: %d respondents, %d records", res.N, len(res.Records))
	}
	// 78% of 90 with experience, within sampling noise.
	if res.Experienced < 55 || res.Experienced > 85 {
		t.Fatalf("experienced: %d", res.Experienced)
	}
	byKey := map[string]survey.Cell{}
	for _, c := range res.Cells {
		byKey[c.Program+"/"+string(c.Lang)] = c
	}
	for _, p := range survey.Programs() {
		tics := byKey[p.Name+"/tics"]
		ink := byKey[p.Name+"/ink"]
		if tics.Accuracy() <= ink.Accuracy() {
			t.Fatalf("%s: TICS accuracy %.2f not above InK %.2f", p.Name, tics.Accuracy(), ink.Accuracy())
		}
		if tics.MeanSec >= ink.MeanSec {
			t.Fatalf("%s: TICS time %.1f not below InK %.1f", p.Name, tics.MeanSec, ink.MeanSec)
		}
	}
	// Bubble under InK: "in half of the cases users were wrong".
	if acc := byKey["bubble/ink"].Accuracy(); acc > 0.75 {
		t.Fatalf("bubble/ink accuracy %.2f too high for the paper's finding", acc)
	}
	// The headline result: p < 0.001.
	if res.Wilcoxon.P >= 0.001 {
		t.Fatalf("Wilcoxon p = %g, paper reports < 0.001", res.Wilcoxon.P)
	}
}

func TestRender(t *testing.T) {
	res, err := survey.Run(survey.Config{N: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"swap", "bubble", "timekeeping", "Wilcoxon", "Verdict"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}
