// Package survey regenerates the Figure 10 user study as a simulation.
// The paper ran 90 human respondents, each hunting a single seeded bug in
// three programs (swap, bubble sort, timekeeping), presented in a TICS
// version and an InK task-graph version, measuring bug-finding accuracy
// and search time; a Wilcoxon signed-rank test on the paired times gave
// p < 0.001 in TICS's favour.
//
// We obviously cannot run humans. The respondent model below is the
// documented synthetic substitution (see DESIGN.md): per-respondent skill,
// per-program complexity, and a language effect calibrated to the paper's
// qualitative findings — task-graph code is harder to debug, the gap
// widening with complexity (for bubble sort "in half of the cases users
// were wrong" under InK). The full analysis pipeline — per-respondent
// records → accuracy bars → time distributions → Wilcoxon — is real and
// runs on the generated records.
package survey

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// Lang is the presentation language of a program.
type Lang string

const (
	LangTICS Lang = "tics"
	LangInK  Lang = "ink"
)

// Program descriptors: the three study programs in ascending complexity.
type Program struct {
	Name       string
	Complexity float64 // 1 = trivial .. 3 = subtle timing logic
}

// Programs returns the study programs in presentation order.
func Programs() []Program {
	return []Program{
		{Name: "swap", Complexity: 1},
		{Name: "bubble", Complexity: 2},
		{Name: "timekeeping", Complexity: 3},
	}
}

// Record is one respondent × program × language measurement.
type Record struct {
	Respondent int
	Program    string
	Lang       Lang
	Correct    bool
	TimeSec    float64
}

// Cell aggregates one program × language.
type Cell struct {
	Program   string
	Lang      Lang
	N         int
	Correct   int
	MeanSec   float64
	StdSec    float64
	MedianSec float64
}

// Accuracy returns the fraction of correct answers.
func (c Cell) Accuracy() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.N)
}

// Result is the regenerated study.
type Result struct {
	N           int
	Experienced int // respondents with ≥2 years programming experience
	Records     []Record
	Cells       []Cell
	// Wilcoxon compares per-respondent total search time TICS vs InK.
	Wilcoxon stats.Wilcoxon
}

// Config tunes the simulation.
type Config struct {
	N    int    // respondents (paper: 90)
	Seed uint64 // deterministic
}

// Model constants, calibrated to the paper's reported aggregates.
const (
	// Accuracy: TICS stays high across complexity; InK decays steeply
	// (bubble under InK ≈ 50% correct in the paper).
	ticsAccBase  = 0.94
	ticsAccSlope = 0.05
	inkAccBase   = 0.88
	inkAccSlope  = 0.17
	// Search time medians (seconds): InK larger and growing faster.
	ticsTimeBase  = 40.0
	ticsTimeSlope = 25.0
	inkTimeBase   = 65.0
	inkTimeSlope  = 55.0
	timeSigma     = 0.45 // log-normal spread
	skillSigma    = 0.30 // per-respondent skill (shifts both axes)
)

// Run generates the study.
func Run(cfg Config) (Result, error) {
	if cfg.N <= 0 {
		cfg.N = 90
	}
	rng := stats.NewRNG(cfg.Seed)
	res := Result{N: cfg.N}
	ticsTotals := make([]float64, cfg.N)
	inkTotals := make([]float64, cfg.N)
	for r := 0; r < cfg.N; r++ {
		skill := rng.Normal() * skillSigma
		if rng.Bool(0.78) { // "78% had at least two years of programming experience"
			res.Experienced++
		} else {
			skill -= 0.2
		}
		for _, p := range Programs() {
			for _, lang := range []Lang{LangTICS, LangInK} {
				var acc, med float64
				if lang == LangTICS {
					acc = ticsAccBase - ticsAccSlope*(p.Complexity-1)
					med = ticsTimeBase + ticsTimeSlope*(p.Complexity-1)
				} else {
					acc = inkAccBase - inkAccSlope*(p.Complexity-1)
					med = inkTimeBase + inkTimeSlope*(p.Complexity-1)
				}
				acc = clamp01(acc + 0.1*skill)
				t := rng.LogNormal(math.Log(med)-0.1*skill, timeSigma)
				rec := Record{
					Respondent: r,
					Program:    p.Name,
					Lang:       lang,
					Correct:    rng.Bool(acc),
					TimeSec:    t,
				}
				res.Records = append(res.Records, rec)
				if lang == LangTICS {
					ticsTotals[r] += t
				} else {
					inkTotals[r] += t
				}
			}
		}
	}
	res.Cells = aggregate(res.Records)
	w, err := stats.WilcoxonSignedRank(ticsTotals, inkTotals)
	if err != nil {
		return Result{}, err
	}
	res.Wilcoxon = w
	return res, nil
}

func clamp01(x float64) float64 {
	if x < 0.02 {
		return 0.02
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}

func aggregate(records []Record) []Cell {
	type key struct {
		prog string
		lang Lang
	}
	times := map[key][]float64{}
	correct := map[key]int{}
	n := map[key]int{}
	for _, r := range records {
		k := key{r.Program, r.Lang}
		times[k] = append(times[k], r.TimeSec)
		n[k]++
		if r.Correct {
			correct[k]++
		}
	}
	var cells []Cell
	for _, p := range Programs() {
		for _, lang := range []Lang{LangTICS, LangInK} {
			k := key{p.Name, lang}
			cells = append(cells, Cell{
				Program:   p.Name,
				Lang:      lang,
				N:         n[k],
				Correct:   correct[k],
				MeanSec:   stats.Mean(times[k]),
				StdSec:    stats.StdDev(times[k]),
				MedianSec: stats.Median(times[k]),
			})
		}
	}
	return cells
}

// Render formats the study like the Figure 10 panels: accuracy per
// program×language, time mean±std, and the Wilcoxon verdict.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "User study (%d respondents, %d%% with ≥2y experience)\n",
		r.N, int(math.Round(100*float64(r.Experienced)/float64(r.N))))
	fmt.Fprintf(&b, "%-12s %-5s %9s %14s %11s\n", "program", "lang", "correct", "time mean±std", "median")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-12s %-5s %8.1f%% %8.1fs±%-5.1f %9.1fs\n",
			c.Program, c.Lang, 100*c.Accuracy(), c.MeanSec, c.StdSec, c.MedianSec)
	}
	fmt.Fprintf(&b, "Wilcoxon signed-rank on paired search times: %s\n", r.Wilcoxon)
	verdict := "TICS and InK indistinguishable"
	if r.Wilcoxon.P < 0.001 {
		verdict = "TICS ≠ InK at p < 0.001 (paper: same verdict)"
	}
	fmt.Fprintf(&b, "Verdict: %s\n", verdict)
	return b.String()
}
