package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a text section as human-readable assembly, one
// instruction per line, prefixed with the absolute address (the section's
// base plus the instruction offset). labels maps absolute addresses to
// symbolic names (function entries) that are printed before their line.
func Disassemble(code []byte, base uint32, labels map[uint32]string) (string, error) {
	instrs, offs, err := DecodeAll(code)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, in := range instrs {
		addr := base + uint32(offs[i])
		if name, ok := labels[addr]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %#06x  %s\n", addr, in)
	}
	return b.String(), nil
}
