// Package isa defines the bytecode instruction set executed by the
// simulated MCU. It is a stack machine over 32-bit words with a 64 KB
// byte-addressed non-volatile memory; the call stack lives in memory (so
// that TICS can segment it) and only PC/SP/FP/RV are registers.
//
// Instructions are one opcode byte optionally followed by one 32-bit
// little-endian immediate. The "L"-suffixed store variants are the
// *instrumented* forms inserted by the per-runtime instrumentation pass:
// they route through the runtime's memory-consistency manager (TICS: the
// working-stack address check plus undo logging).
package isa

import "fmt"

// Op is a bytecode opcode.
type Op byte

// Opcodes. The groupings mirror the cost classes in energy.CostModel.
const (
	Nop Op = iota
	Halt

	// Stack manipulation (ALU cost class).
	PushI // imm: push constant
	Dup
	Drop
	Swap

	// Memory (mem cost class).
	LoadG    // imm: push word at absolute address
	StoreG   // imm: pop word to absolute address
	StoreGL  // imm: instrumented StoreG (undo-logged)
	LoadGB   // imm: push zero-extended byte at absolute address
	StoreGB  // imm: pop, store low byte at absolute address
	StoreGBL // imm: instrumented StoreGB
	LoadL    // imm: push word at FP+imm (signed offset)
	StoreL   // imm: pop word to FP+imm
	AddrL    // imm: push FP+imm
	LoadI    // pop addr, push word
	StoreI   // pop value, pop addr, store word
	StoreIL  // instrumented StoreI (range check + undo log)
	LoadIB   // pop addr, push zero-extended byte
	StoreIB  // pop value, pop addr, store byte
	StoreIBL // instrumented StoreIB

	// ALU (ALU cost class). Binary ops pop rhs then lhs, push result.
	Add
	Sub
	Mul
	Div // signed; divide by zero halts the machine with a fault
	Mod
	And
	Or
	Xor
	Shl
	Shr // logical shift right
	Neg
	Not  // bitwise complement
	LNot // logical not: push(pop == 0)
	CmpEq
	CmpNe
	CmpLt // signed comparisons push 0/1
	CmpLe
	CmpGt
	CmpGe
	CmpLtU // unsigned comparisons
	CmpLeU
	CmpGtU
	CmpGeU

	// Control (control cost class).
	Jmp   // imm: absolute text address
	Jz    // imm: pop, jump if zero
	Jnz   // imm: pop, jump if nonzero
	Call  // imm: push return PC, jump
	Enter // imm: function index; runtime prologue (stack check / grow)
	Leave // runtime epilogue + return (pops saved FP and return PC)
	SetRV // pop into RV
	GetRV // push RV
	AddSP // imm: SP += imm (caller pops arguments)

	// Peripherals and runtime services (trap cost class).
	Sense    // imm: sensor id; push reading
	Send     // pop value to the radio log
	Out      // imm: channel id; pop value to the output log
	Mark     // imm: counter id; increment NV mark counter (logged store)
	Now      // push persistent-timekeeper milliseconds
	Chkpt    // manual checkpoint request
	CpDis    // disable automatic checkpoints (atomic-region begin)
	CpEn     // enable automatic checkpoints
	SetTS    // pop shadow-timestamp slot address; write Now() to it
	ExpBegin // imm: skip target; pop duration, pop ts slot addr; jump if expired
	ExpCatch // imm: catch target; pop duration, pop ts slot addr; arm expiry
	ExpEnd   // disarm expiry
	Timely   // imm: else target; pop absolute deadline; jump if now >= deadline
	TransTo  // imm: task id; task-based runtimes' transition trap

	opCount
)

// NumOps is the number of defined opcodes.
const NumOps = int(opCount)

// Class is the cost class of an opcode.
type Class int

const (
	ClassALU Class = iota
	ClassMem
	ClassCtl
	ClassTrap
)

// Info describes an opcode's static properties.
type Info struct {
	Name   string
	HasImm bool
	Class  Class
}

var infos = [opCount]Info{
	Nop:      {"nop", false, ClassALU},
	Halt:     {"halt", false, ClassCtl},
	PushI:    {"pushi", true, ClassALU},
	Dup:      {"dup", false, ClassALU},
	Drop:     {"drop", false, ClassALU},
	Swap:     {"swap", false, ClassALU},
	LoadG:    {"loadg", true, ClassMem},
	StoreG:   {"storeg", true, ClassMem},
	StoreGL:  {"storeg.l", true, ClassMem},
	LoadGB:   {"loadgb", true, ClassMem},
	StoreGB:  {"storegb", true, ClassMem},
	StoreGBL: {"storegb.l", true, ClassMem},
	LoadL:    {"loadl", true, ClassMem},
	StoreL:   {"storel", true, ClassMem},
	AddrL:    {"addrl", true, ClassALU},
	LoadI:    {"loadi", false, ClassMem},
	StoreI:   {"storei", false, ClassMem},
	StoreIL:  {"storei.l", false, ClassMem},
	LoadIB:   {"loadib", false, ClassMem},
	StoreIB:  {"storeib", false, ClassMem},
	StoreIBL: {"storeib.l", false, ClassMem},
	Add:      {"add", false, ClassALU},
	Sub:      {"sub", false, ClassALU},
	Mul:      {"mul", false, ClassALU},
	Div:      {"div", false, ClassALU},
	Mod:      {"mod", false, ClassALU},
	And:      {"and", false, ClassALU},
	Or:       {"or", false, ClassALU},
	Xor:      {"xor", false, ClassALU},
	Shl:      {"shl", false, ClassALU},
	Shr:      {"shr", false, ClassALU},
	Neg:      {"neg", false, ClassALU},
	Not:      {"not", false, ClassALU},
	LNot:     {"lnot", false, ClassALU},
	CmpEq:    {"cmpeq", false, ClassALU},
	CmpNe:    {"cmpne", false, ClassALU},
	CmpLt:    {"cmplt", false, ClassALU},
	CmpLe:    {"cmple", false, ClassALU},
	CmpGt:    {"cmpgt", false, ClassALU},
	CmpGe:    {"cmpge", false, ClassALU},
	CmpLtU:   {"cmpltu", false, ClassALU},
	CmpLeU:   {"cmpleu", false, ClassALU},
	CmpGtU:   {"cmpgtu", false, ClassALU},
	CmpGeU:   {"cmpgeu", false, ClassALU},
	Jmp:      {"jmp", true, ClassCtl},
	Jz:       {"jz", true, ClassCtl},
	Jnz:      {"jnz", true, ClassCtl},
	Call:     {"call", true, ClassCtl},
	Enter:    {"enter", true, ClassCtl},
	Leave:    {"leave", false, ClassCtl},
	SetRV:    {"setrv", false, ClassALU},
	GetRV:    {"getrv", false, ClassALU},
	AddSP:    {"addsp", true, ClassALU},
	Sense:    {"sense", true, ClassTrap},
	Send:     {"send", false, ClassTrap},
	Out:      {"out", true, ClassTrap},
	Mark:     {"mark", true, ClassTrap},
	Now:      {"now", false, ClassTrap},
	Chkpt:    {"chkpt", false, ClassTrap},
	CpDis:    {"cpdis", false, ClassTrap},
	CpEn:     {"cpen", false, ClassTrap},
	SetTS:    {"setts", false, ClassTrap},
	ExpBegin: {"expbegin", true, ClassTrap},
	ExpCatch: {"expcatch", true, ClassTrap},
	ExpEnd:   {"expend", false, ClassTrap},
	Timely:   {"timely", true, ClassTrap},
	TransTo:  {"transto", true, ClassTrap},
}

// Lookup returns the Info for op. It panics on an undefined opcode, which
// indicates a corrupted text image.
func Lookup(op Op) Info {
	if int(op) >= NumOps {
		panic(fmt.Sprintf("isa: undefined opcode %d", op))
	}
	return infos[op]
}

// Valid reports whether op is a defined opcode.
func Valid(op Op) bool { return int(op) < NumOps }

func (op Op) String() string {
	if !Valid(op) {
		return fmt.Sprintf("op(%d)", byte(op))
	}
	return infos[op].Name
}

// Size returns the encoded size of an instruction with opcode op.
func Size(op Op) int {
	if Lookup(op).HasImm {
		return 5
	}
	return 1
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Imm int32
}

// Size returns the encoded size of the instruction.
func (i Instr) Size() int { return Size(i.Op) }

func (i Instr) String() string {
	if Lookup(i.Op).HasImm {
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	}
	return i.Op.String()
}

// Encode appends the instruction's encoding to buf.
func (i Instr) Encode(buf []byte) []byte {
	buf = append(buf, byte(i.Op))
	if Lookup(i.Op).HasImm {
		v := uint32(i.Imm)
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// Decode reads one instruction from code at offset off. It returns the
// instruction and the offset of the next one.
func Decode(code []byte, off int) (Instr, int, error) {
	if off >= len(code) {
		return Instr{}, off, fmt.Errorf("isa: decode past end of text at %#x", off)
	}
	op := Op(code[off])
	if !Valid(op) {
		return Instr{}, off, fmt.Errorf("isa: undefined opcode %d at %#x", byte(op), off)
	}
	if !infos[op].HasImm {
		return Instr{Op: op}, off + 1, nil
	}
	if off+5 > len(code) {
		return Instr{}, off, fmt.Errorf("isa: truncated immediate for %s at %#x", op, off)
	}
	v := uint32(code[off+1]) | uint32(code[off+2])<<8 | uint32(code[off+3])<<16 | uint32(code[off+4])<<24
	return Instr{Op: op, Imm: int32(v)}, off + 5, nil
}

// EncodeAll encodes a sequence of instructions.
func EncodeAll(instrs []Instr) []byte {
	var buf []byte
	for _, in := range instrs {
		buf = in.Encode(buf)
	}
	return buf
}

// DecodeAll decodes an entire text section into instructions, returning
// also the byte offset of each decoded instruction.
func DecodeAll(code []byte) ([]Instr, []int, error) {
	var instrs []Instr
	var offs []int
	for off := 0; off < len(code); {
		in, next, err := Decode(code, off)
		if err != nil {
			return nil, nil, err
		}
		offs = append(offs, off)
		instrs = append(instrs, in)
		off = next
	}
	return instrs, offs, nil
}

// IsStore reports whether op writes memory through a program-visible store
// (the instrumentation pass rewrites these).
func IsStore(op Op) bool {
	switch op {
	case StoreG, StoreGB, StoreI, StoreIB, StoreGL, StoreGBL, StoreIL, StoreIBL:
		return true
	}
	return false
}

// Logged returns the instrumented variant of a plain store opcode, or the
// opcode unchanged if it is not a plain store.
func Logged(op Op) Op {
	switch op {
	case StoreG:
		return StoreGL
	case StoreGB:
		return StoreGBL
	case StoreI:
		return StoreIL
	case StoreIB:
		return StoreIBL
	}
	return op
}

// Unlogged returns the plain variant of an instrumented store opcode.
func Unlogged(op Op) Op {
	switch op {
	case StoreGL:
		return StoreG
	case StoreGBL:
		return StoreGB
	case StoreIL:
		return StoreI
	case StoreIBL:
		return StoreIB
	}
	return op
}
