package isa_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// TestEncodeDecodeRoundTrip is a property test over random instructions.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(opRaw byte, imm int32) bool {
		op := isa.Op(int(opRaw) % isa.NumOps)
		in := isa.Instr{Op: op}
		if isa.Lookup(op).HasImm {
			in.Imm = imm
		}
		buf := in.Encode(nil)
		if len(buf) != in.Size() {
			return false
		}
		got, next, err := isa.Decode(buf, 0)
		return err == nil && next == len(buf) && got == in
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := isa.Decode([]byte{255}, 0); err == nil {
		t.Fatal("undefined opcode accepted")
	}
	if _, _, err := isa.Decode([]byte{byte(isa.PushI), 1, 2}, 0); err == nil {
		t.Fatal("truncated immediate accepted")
	}
	if _, _, err := isa.Decode(nil, 0); err == nil {
		t.Fatal("empty decode accepted")
	}
}

func TestLoggedUnloggedInverse(t *testing.T) {
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		logged := isa.Logged(op)
		if logged != op {
			if isa.Unlogged(logged) != op {
				t.Fatalf("Unlogged(Logged(%s)) != %s", op, op)
			}
			if !isa.IsStore(op) || !isa.IsStore(logged) {
				t.Fatalf("%s should be a store", op)
			}
		}
	}
	if isa.Logged(isa.Add) != isa.Add {
		t.Fatal("Logged changed a non-store")
	}
}

func TestEncodeDecodeAll(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.PushI, Imm: -42},
		{Op: isa.Dup},
		{Op: isa.Add},
		{Op: isa.Jz, Imm: 0x1234},
		{Op: isa.Halt},
	}
	buf := isa.EncodeAll(prog)
	got, offs, err := isa.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) || offs[0] != 0 {
		t.Fatalf("decode all: %v %v", got, offs)
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("instr %d: %v != %v", i, got[i], prog[i])
		}
	}
}

func TestDisassembleLabels(t *testing.T) {
	buf := isa.EncodeAll([]isa.Instr{{Op: isa.Nop}, {Op: isa.Halt}})
	out, err := isa.Disassemble(buf, 0x1000, map[uint32]string{0x1001: "f"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "f:") || !strings.Contains(out, "nop") || !strings.Contains(out, "halt") {
		t.Fatalf("disassembly:\n%s", out)
	}
}
