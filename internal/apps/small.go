package apps

// The three user-study programs (Figure 10): variable swap, bubble sort,
// and a timekeeping loop. The study showed each program to respondents in
// a TICS version (plain C, possibly time-annotated) and an InK task
// version, each seeded with one bug; internal/survey models the respondent
// behaviour, and these sources anchor the program complexity the study
// varied.

const swapSource = `
// Swap without a temporary (user-study program 1).
int a = 3;
int b = 40;

void swap(int *x, int *y) {
    *x = *x ^ *y;
    *y = *x ^ *y;
    *x = *x ^ *y;
}

int main() {
    swap(&a, &b);
    out(0, a);
    out(1, b);
    return 0;
}
`

const bubbleSource = `
// Bubble sort (user-study program 2).
#define N 16

int arr[16];
uint bseed = 7;

uint brand() {
    bseed = bseed * 1103515245 + 12345;
    return (bseed >> 16) & 1023;
}

void bubble(int *a, int n) {
    int i;
    int j;
    int t;
    for (i = 0; i < n - 1; i++) {
        for (j = 0; j < n - 1 - i; j++) {
            if (a[j] > a[j + 1]) {
                t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
}

int main() {
    int i;
    int ok = 1;
    for (i = 0; i < N; i++) { arr[i] = brand(); }
    bubble(arr, N);
    for (i = 1; i < N; i++) {
        if (arr[i - 1] > arr[i]) { ok = 0; }
    }
    out(0, ok);
    for (i = 0; i < N; i++) { out(1, arr[i]); }
    return 0;
}
`

const timekeepingSource = `
// Timekeeping loop (user-study program 3): consume only fresh readings.
#define ROUNDS 10

@expires_after=500 int reading;

int main() {
    int i;
    int fresh = 0;
    int stale = 0;
    for (i = 0; i < ROUNDS; i++) {
        reading @= sense(4);
        @expires(reading) {
            send(reading);
            fresh++;
        } catch {
            stale++;
        }
    }
    out(0, fresh);
    out(1, stale);
    return 0;
}
`

// Swap returns the pointer-swap user-study program.
func Swap() App { return App{Name: "swap", Source: swapSource} }

// Bubble returns the bubble-sort user-study program.
func Bubble() App { return App{Name: "bubble", Source: bubbleSource} }

// Timekeeping returns the freshness-loop user-study program.
func Timekeeping() App { return App{Name: "timekeeping", Source: timekeepingSource} }
