package apps_test

import (
	"reflect"
	"testing"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
)

// oracle runs an app's legacy source under the plain runtime on continuous
// power and returns its out-channel map.
func oracle(t *testing.T, src string) map[int32][]int32 {
	t.Helper()
	res, err := tics.Run(src, tics.BuildOptions{Runtime: tics.RTPlain}, tics.RunOptions{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !res.Completed {
		t.Fatalf("oracle did not complete: %+v", res)
	}
	return res.OutLog
}

func sameOut(t *testing.T, label string, got, want map[int32][]int32) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: outputs diverge:\n got  %v\n want %v", label, got, want)
	}
}

func TestBCAcrossRuntimes(t *testing.T) {
	app := apps.BC()
	want := oracle(t, app.Source)
	if len(want[0]) != 1 || want[0][0] <= 0 {
		t.Fatalf("bc oracle bitcount sum looks wrong: %v", want[0])
	}
	if want[1][0] != 1 {
		t.Fatalf("bc methods disagree in the oracle: %v", want)
	}

	for _, rt := range []tics.RuntimeKind{tics.RTTICS, tics.RTTICSTask, tics.RTMementos} {
		res, err := tics.Run(app.Source, tics.BuildOptions{Runtime: rt}, tics.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete: %+v", rt, res)
		}
		sameOut(t, string(rt), res.OutLog, want)
	}

	// Chinchilla cannot compile the recursive method (§5.3.1).
	if _, err := tics.Build(app.Source, tics.BuildOptions{Runtime: tics.RTChinchilla}); err == nil {
		t.Fatal("chinchilla accepted a recursive program")
	}

	// Task ports reproduce the same results.
	for _, rt := range []tics.RuntimeKind{tics.RTAlpaca, tics.RTInK} {
		res, err := tics.Run(app.TaskSource, tics.BuildOptions{Runtime: rt, Tasks: app.Tasks, Edges: app.Edges}, tics.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete: %+v", rt, res)
		}
		sameOut(t, string(rt), res.OutLog, want)
	}

	// MayFly needs the loop-free decomposition; the natural port's graph
	// is cyclic and must be rejected.
	if _, err := tics.Build(app.TaskSource, tics.BuildOptions{Runtime: tics.RTMayFly, Tasks: app.Tasks, Edges: app.Edges}); err == nil {
		t.Fatal("mayfly accepted a cyclic task graph")
	}
	mfSrc, mfTasks, mfEdges := app.ForMayfly()
	res, err := tics.Run(mfSrc, tics.BuildOptions{Runtime: tics.RTMayFly, Tasks: mfTasks, Edges: mfEdges}, tics.RunOptions{})
	if err != nil {
		t.Fatalf("mayfly: %v", err)
	}
	sameOut(t, "mayfly", res.OutLog, want)
}

func TestBCIntermittentAcrossRuntimes(t *testing.T) {
	app := apps.BC()
	want := oracle(t, app.Source)
	cases := []struct {
		label string
		src   string
		opts  tics.BuildOptions
	}{
		{"tics", app.Source, tics.BuildOptions{Runtime: tics.RTTICS}},
		{"mementos", app.Source, tics.BuildOptions{Runtime: tics.RTMementos}},
		{"alpaca", app.TaskSource, tics.BuildOptions{Runtime: tics.RTAlpaca, Tasks: app.Tasks, Edges: app.Edges}},
	}
	for _, c := range cases {
		img, err := tics.Build(c.src, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		for _, every := range []int64{40_000, 12_345} {
			m, err := tics.NewMachine(img, tics.RunOptions{
				Power:          &power.FailEvery{Cycles: every, OffMs: 10},
				AutoCpPeriodMs: 5,
				MaxCycles:      3_000_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("%s fail-every-%d: %v", c.label, every, err)
			}
			if !res.Completed {
				t.Fatalf("%s fail-every-%d: did not complete: starved=%v failures=%d",
					c.label, every, res.Starved, res.Failures)
			}
			sameOut(t, c.label, res.OutLog, want)
		}
	}
}

func TestCFAcrossRuntimes(t *testing.T) {
	app := apps.CF()
	want := oracle(t, app.Source)
	if got := want[0][0]; got < 70 {
		t.Fatalf("cuckoo filter inserted only %d of 80 keys", got)
	}
	if want[1][0] != want[0][0] {
		t.Fatalf("cuckoo filter lost keys: inserted %d, found %d", want[0][0], want[1][0])
	}

	for _, rt := range []tics.RuntimeKind{tics.RTTICS, tics.RTMementos, tics.RTChinchilla} {
		res, err := tics.Run(app.Source, tics.BuildOptions{Runtime: rt}, tics.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete: %+v", rt, res)
		}
		sameOut(t, string(rt), res.OutLog, want)
	}
	for _, rt := range []tics.RuntimeKind{tics.RTAlpaca, tics.RTInK} {
		res, err := tics.Run(app.TaskSource, tics.BuildOptions{Runtime: rt, Tasks: app.Tasks, Edges: app.Edges}, tics.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		sameOut(t, string(rt), res.OutLog, want)
	}
	// The paper: "Cuckoo cannot be implemented in MayFly since loops are
	// not allowed in a MayFly task graph."
	if _, err := tics.Build(app.TaskSource, tics.BuildOptions{Runtime: tics.RTMayFly, Tasks: app.Tasks, Edges: app.Edges}); err == nil {
		t.Fatal("mayfly accepted the cuckoo filter's cyclic task graph")
	}
}

func TestARVariantsRun(t *testing.T) {
	app := apps.AR()
	res, err := tics.Run(app.Source, tics.BuildOptions{Runtime: tics.RTTICS}, tics.RunOptions{AutoCpPeriodMs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.OutLog[0]) != 1 || res.OutLog[0][0] != 30 {
		t.Fatalf("annotated AR: %+v", res)
	}
	vg := false
	res, err = tics.Run(app.ManualSource, tics.BuildOptions{Runtime: tics.RTMementos, VersionGlobals: &vg}, tics.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("manual AR under mementos: %+v", res)
	}
	res, err = tics.Run(app.TaskSource, tics.BuildOptions{Runtime: tics.RTMayFly, Tasks: app.Tasks, Edges: app.Edges}, tics.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("AR mayfly port: %+v", res)
	}
}

func TestGHMRunsForBudget(t *testing.T) {
	for _, app := range []apps.App{apps.GHMPlain(), apps.GHMTinyOS()} {
		res, err := tics.Run(app.Source, tics.BuildOptions{Runtime: tics.RTTICS},
			tics.RunOptions{AutoCpPeriodMs: 10, MaxWallMs: 3000})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if !res.TimedOut {
			t.Fatalf("%s: expected a timed-out infinite loop, got %+v", app.Name, res)
		}
		for i, c := range res.MarkCounts {
			if c == 0 {
				t.Fatalf("%s: routine %d never ran: %v", app.Name, i, res.MarkCounts)
			}
		}
	}
}

func TestSmallProgramsUnderTICS(t *testing.T) {
	for _, app := range []apps.App{apps.Swap(), apps.Bubble(), apps.Timekeeping()} {
		want := oracle(t, app.Source)
		res, err := tics.Run(app.Source, tics.BuildOptions{Runtime: tics.RTTICS}, tics.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: did not complete", app.Name)
		}
		sameOut(t, app.Name, res.OutLog, want)
	}
}

// TestARMayflyTokenExpiry: under harvesting with outages beyond the 200 ms
// edge constraint, the MayFly port reroutes stale windows back to the
// sampling task instead of classifying them.
func TestARMayflyTokenExpiry(t *testing.T) {
	app := apps.AR()
	src, tasks, edges := app.ForMayfly()
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTMayFly, Tasks: tasks, Edges: edges})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:     power.NewHarvester(20_000, 60, 0.8, 5), // outages ≫ 200 ms
		MaxCycles: 2_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("mayfly AR under harsh power: %+v", res)
	}
	if res.RuntimeStats["expired-tokens"] == 0 {
		t.Fatalf("no MayFly tokens expired under long outages: %v", res.RuntimeStats)
	}
	// Rerouting means more sampling runs than classified windows.
	if res.MarkCounts[0] <= res.MarkCounts[2] {
		t.Fatalf("sampling (%d) not above classification (%d)", res.MarkCounts[0], res.MarkCounts[2])
	}
}
