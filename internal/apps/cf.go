package apps

import "repro/internal/taskrt"

// cfSource is the cuckoo-filter benchmark: insert a stream of pseudo-
// random keys (with the eviction "kick" loop), then recover the sequence
// via lookups, probe for false positives, delete half and recheck.
const cfSource = `
// Cuckoo filter (CF): insert / recover / probe / delete.
#define NB 64
#define NKEYS 80
#define MAXKICK 64

char buckets[256];
uint cseed = 2654435761;

uint crand() {
    cseed = cseed * 1103515245 + 12345;
    return (cseed >> 16) & 32767;
}

uint hash32(uint x) {
    x = x ^ (x >> 16);
    x = x * 73244219;
    x = x ^ (x >> 16);
    return x;
}

uint key_of(int k) { return hash32(k + 1000003); }

int fp_of(uint x) {
    int f = hash32(x) & 255;
    if (f == 0) { f = 1; }
    return f;
}

int b1_of(uint x) { return (hash32(x) >> 8) & 63; }

int alt_of(int b, int f) { return (b ^ (hash32(f) & 63)) & 63; }

int slot_insert(int b, int f) {
    int s;
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == 0) {
            buckets[b * 4 + s] = f;
            return 1;
        }
    }
    return 0;
}

int cf_insert(uint x) {
    int f = fp_of(x);
    int b = b1_of(x);
    int i;
    int s;
    int tmp;
    if (slot_insert(b, f)) { return 1; }
    if (slot_insert(alt_of(b, f), f)) { return 1; }
    b = alt_of(b, f);
    for (i = 0; i < MAXKICK; i++) {
        s = crand() & 3;
        tmp = buckets[b * 4 + s];
        buckets[b * 4 + s] = f;
        f = tmp;
        b = alt_of(b, f);
        if (slot_insert(b, f)) { return 1; }
    }
    return 0;
}

int bucket_has(int b, int f) {
    int s;
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == f) { return 1; }
    }
    return 0;
}

int cf_lookup(uint x) {
    int f = fp_of(x);
    int b = b1_of(x);
    if (bucket_has(b, f)) { return 1; }
    return bucket_has(alt_of(b, f), f);
}

int cf_delete(uint x) {
    int f = fp_of(x);
    int b = b1_of(x);
    int s;
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == f) { buckets[b * 4 + s] = 0; return 1; }
    }
    b = alt_of(b, f);
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == f) { buckets[b * 4 + s] = 0; return 1; }
    }
    return 0;
}

int main() {
    int k;
    int inserted = 0;
    int found = 0;
    int fpos = 0;
    int deleted = 0;
    int found2 = 0;
    for (k = 0; k < NKEYS; k++) {
        inserted += cf_insert(key_of(k));
        mark(0);
    }
    for (k = 0; k < NKEYS; k++) {
        found += cf_lookup(key_of(k));
        mark(1);
    }
    for (k = NKEYS; k < NKEYS * 2; k++) {
        fpos += cf_lookup(key_of(k));
    }
    for (k = 0; k < NKEYS; k += 2) {
        deleted += cf_delete(key_of(k));
        mark(2);
    }
    for (k = 0; k < NKEYS; k++) {
        found2 += cf_lookup(key_of(k));
    }
    out(0, inserted);
    out(1, found);
    out(2, fpos);
    out(3, deleted);
    out(4, found2);
    return 0;
}
`

// cfTaskSource is the task port. The eviction kick loop spans task
// transitions (insert → insert), which makes the task graph cyclic — the
// reason the paper notes "Cuckoo cannot be implemented in MayFly since
// loops are not allowed in a MayFly task graph".
const cfTaskSource = `
// Cuckoo filter task port: insert* -> lookup -> probe -> delete -> recheck.
#define NB 64
#define NKEYS 80
#define MAXKICK 64

char buckets[256];
uint cseed = 2654435761;
int k;
int inserted;
int found;
int fpos;
int deleted;
int found2;

uint crand() {
    cseed = cseed * 1103515245 + 12345;
    return (cseed >> 16) & 32767;
}

uint hash32(uint x) {
    x = x ^ (x >> 16);
    x = x * 73244219;
    x = x ^ (x >> 16);
    return x;
}

uint key_of(int n) { return hash32(n + 1000003); }

int fp_of(uint x) {
    int f = hash32(x) & 255;
    if (f == 0) { f = 1; }
    return f;
}

int b1_of(uint x) { return (hash32(x) >> 8) & 63; }

int alt_of(int b, int f) { return (b ^ (hash32(f) & 63)) & 63; }

int slot_insert(int b, int f) {
    int s;
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == 0) {
            buckets[b * 4 + s] = f;
            return 1;
        }
    }
    return 0;
}

int cf_insert(uint x) {
    int f = fp_of(x);
    int b = b1_of(x);
    int i;
    int s;
    int tmp;
    if (slot_insert(b, f)) { return 1; }
    if (slot_insert(alt_of(b, f), f)) { return 1; }
    b = alt_of(b, f);
    for (i = 0; i < MAXKICK; i++) {
        s = crand() & 3;
        tmp = buckets[b * 4 + s];
        buckets[b * 4 + s] = f;
        f = tmp;
        b = alt_of(b, f);
        if (slot_insert(b, f)) { return 1; }
    }
    return 0;
}

int bucket_has(int b, int f) {
    int s;
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == f) { return 1; }
    }
    return 0;
}

int cf_lookup(uint x) {
    int f = fp_of(x);
    int b = b1_of(x);
    if (bucket_has(b, f)) { return 1; }
    return bucket_has(alt_of(b, f), f);
}

int cf_delete(uint x) {
    int f = fp_of(x);
    int b = b1_of(x);
    int s;
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == f) { buckets[b * 4 + s] = 0; return 1; }
    }
    b = alt_of(b, f);
    for (s = 0; s < 4; s++) {
        if (buckets[b * 4 + s] == f) { buckets[b * 4 + s] = 0; return 1; }
    }
    return 0;
}

void t_insert() {
    inserted += cf_insert(key_of(k));
    mark(0);
    k++;
    if (k < NKEYS) { transition_to(0); }
    k = 0;
    transition_to(1);
}

void t_lookup() {
    found += cf_lookup(key_of(k));
    mark(1);
    k++;
    if (k < NKEYS) { transition_to(1); }
    k = NKEYS;
    transition_to(2);
}

void t_probe() {
    fpos += cf_lookup(key_of(k));
    k++;
    if (k < NKEYS * 2) { transition_to(2); }
    k = 0;
    transition_to(3);
}

void t_delete() {
    deleted += cf_delete(key_of(k));
    mark(2);
    k += 2;
    if (k < NKEYS) { transition_to(3); }
    k = 0;
    transition_to(4);
}

void t_recheck() {
    found2 += cf_lookup(key_of(k));
    k++;
    if (k < NKEYS) { transition_to(4); }
    out(0, inserted);
    out(1, found);
    out(2, fpos);
    out(3, deleted);
    out(4, found2);
    transition_to(99);
}

int main() { return 0; }
`

// CF returns the cuckoo-filter benchmark.
func CF() App {
	return App{
		Name:       "cf",
		Source:     cfSource,
		TaskSource: cfTaskSource,
		Tasks:      []string{"t_insert", "t_lookup", "t_probe", "t_delete", "t_recheck"},
		Edges: []taskrt.Edge{
			{From: 0, To: 0}, // insert self-loop (the kick stream) — cyclic
			{From: 0, To: 1},
			{From: 1, To: 1},
			{From: 1, To: 2},
			{From: 2, To: 2},
			{From: 2, To: 3},
			{From: 3, To: 3},
			{From: 3, To: 4},
			{From: 4, To: 4},
		},
		Marks: map[int]string{0: "insert", 1: "lookup", 2: "delete"},
	}
}
