package apps

// ghmPlainSource is the greenhouse-monitoring application of Table 1 in
// plain C: an infinite loop of sense-moisture, sense-temperature, compute
// averages, send. The mark counters (one per routine) are the paper's
// "how many times each GHM routine executed" measurement; a run is
// consistent when the four counts stay in lock step.
const ghmPlainSource = `
// Greenhouse monitoring (GHM), plain C.
#define NSAMP 8

int moist[8];
int temp[8];
int avg_m;
int avg_t;

void sense_moist() {
    int i;
    for (i = 0; i < NSAMP; i++) { moist[i] = sense(3); }
    mark(0);
}

void sense_temp() {
    int i;
    for (i = 0; i < NSAMP; i++) { temp[i] = sense(4); }
    mark(1);
}

void compute() {
    int i;
    int sm = 0;
    int st = 0;
    for (i = 0; i < NSAMP; i++) { sm += moist[i]; st += temp[i]; }
    avg_m = sm / NSAMP;
    avg_t = st / NSAMP;
    mark(2);
}

void send_data() {
    send(avg_m);
    send(avg_t);
    mark(3);
}

int main() {
    while (1) {
        sense_moist();
        sense_temp();
        compute();
        send_data();
    }
    return 0;
}
`

// ghmTinyOSSource is the same application written the way two decades of
// TinyOS/Contiki code is structured: a software event queue with posted
// events driving split-phase handlers. TICS runs it unmodified; on plain
// intermittent power the persistent queue indices and half-updated state
// wedge the dispatch rhythm — the legacy-port failure the paper targets.
const ghmTinyOSSource = `
// Greenhouse monitoring (GHM), TinyOS-event style.
#define NSAMP 8
#define QMASK 15

int q[16];
int qh;
int qt;
int moist[8];
int temp[8];
int avg_m;
int avg_t;

void post(int e) {
    q[qt & QMASK] = e;
    qt++;
}

int pending() { return qt - qh; }

int next_event() {
    int e = q[qh & QMASK];
    qh++;
    return e;
}

void sense_moist() {
    int i;
    for (i = 0; i < NSAMP; i++) { moist[i] = sense(3); }
    mark(0);
}

void sense_temp() {
    int i;
    for (i = 0; i < NSAMP; i++) { temp[i] = sense(4); }
    mark(1);
}

void compute() {
    int i;
    int sm = 0;
    int st = 0;
    for (i = 0; i < NSAMP; i++) { sm += moist[i]; st += temp[i]; }
    avg_m = sm / NSAMP;
    avg_t = st / NSAMP;
    mark(2);
}

void send_data() {
    send(avg_m);
    send(avg_t);
    mark(3);
}

void dispatch(int e) {
    switch (e) {
    case 0:
        sense_moist();
        post(1);
        break;
    case 1:
        sense_temp();
        post(2);
        break;
    case 2:
        compute();
        post(3);
        break;
    default:
        send_data();
        post(0);
        break;
    }
}

int main() {
    qh = 0;
    qt = 0;
    post(0);
    while (1) {
        if (pending() == 0) { post(0); }
        dispatch(next_event());
    }
    return 0;
}
`

// GHMPlain returns the plain-C greenhouse monitor.
func GHMPlain() App {
	return App{
		Name:   "ghm",
		Source: ghmPlainSource,
		Marks:  ghmMarks(),
	}
}

// GHMTinyOS returns the TinyOS-style greenhouse monitor.
func GHMTinyOS() App {
	return App{
		Name:   "ghm-tinyos",
		Source: ghmTinyOSSource,
		Marks:  ghmMarks(),
	}
}

func ghmMarks() map[int]string {
	return map[int]string{0: "sense-moisture", 1: "sense-temperature", 2: "compute", 3: "send"}
}
