// Package apps holds the benchmark applications of the paper's evaluation,
// written in TICS-C:
//
//   - BC: MiBench-style bitcount with seven methods including a recursive
//     one, cross-verified (§5.3).
//   - CF: a cuckoo filter over pseudo-random keys with insert/lookup/
//     delete and sequence recovery (§5.3).
//   - AR: activity recognition — windowed three-axis accelerometer, mean/
//     stddev features, nearest-centroid classification — in a TICS
//     time-annotated version and a legacy manual-time version (§5.2).
//   - GHM: greenhouse monitoring in plain-C and TinyOS-event styles
//     (Table 1).
//   - Swap/Bubble/Timekeeping: the user-study programs (Figure 10).
//
// Each entry carries the legacy source, optional variants, and the hand
// task decomposition (with MayFly graph) used by the task-based baselines —
// the same porting work the paper describes as the cost of task models.
package apps

import "repro/internal/taskrt"

// App is one benchmark application.
type App struct {
	Name string
	// Source is the legacy/annotated TICS-C program (runs unmodified
	// under plain, TICS, Mementos and — if recursion-free — Chinchilla).
	Source string
	// ManualSource is the manual-time variant (AR only): the same logic
	// with hand-rolled timestamps instead of TICS annotations.
	ManualSource string
	// TaskSource is the hand-ported task decomposition, if one exists.
	TaskSource string
	// Tasks maps task ids to function names in TaskSource.
	Tasks []string
	// Edges is the task graph for TaskSource (used as the MayFly graph
	// unless a MayFly-specific port exists below).
	Edges []taskrt.Edge
	// MayflyTaskSource/MayflyTasks/MayflyEdges give an alternative,
	// loop-free decomposition for MayFly when the natural port's graph is
	// cyclic. Apps that are genuinely inexpressible in MayFly (CF) leave
	// these empty so the cyclic graph is rejected.
	MayflyTaskSource string
	MayflyTasks      []string
	MayflyEdges      []taskrt.Edge
	// Marks documents the mark-counter ids the app uses.
	Marks map[int]string
}

// ForMayfly returns the task port to use with MayFly: the dedicated
// loop-free decomposition if one exists, else the natural port.
func (a App) ForMayfly() (source string, tasks []string, edges []taskrt.Edge) {
	if a.MayflyTaskSource != "" {
		return a.MayflyTaskSource, a.MayflyTasks, a.MayflyEdges
	}
	return a.TaskSource, a.Tasks, a.Edges
}

// All returns the benchmark registry in the paper's order.
func All() []App { return []App{BC(), CF(), AR(), GHMPlain(), GHMTinyOS()} }

// ByName looks an app up.
func ByName(name string) (App, bool) {
	for _, a := range append(All(), Swap(), Bubble(), Timekeeping(), BCNoRecursion()) {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
