package apps

import "repro/internal/taskrt"

// arSource is the TICS-annotated activity-recognition application (§5.2,
// Figure 8): a window of three-axis accelerometer samples is collected
// with atomic data+timestamp assignment (@=), consumed only while fresh
// (@expires/catch, 200 ms), classified against trained centroids, and
// activity-change alerts are sent only before their deadline (@timely).
// The timelyA/timelyB arrays record which @timely branch committed per
// round — the Table 2 detector reads them to count timely-branch
// violations (both set for one round = violation).
const arSource = `
// Activity recognition (AR), TICS-annotated.
#define WINDOW 8
#define ROUNDS 30
#define FRESH_MS 200

@expires_after=200 int accel[24];
int fmean[3];
int fstd[3];
int activity;
int lastact;
int tchange;
int rounds_done;
int alertsum;
int timelyA[30];
int timelyB[30];

int cm_still[3] = {0, 0, 1000};
int cs_still[3] = {10, 10, 10};
int cm_move[3]  = {0, 0, 1000};
int cs_move[3]  = {230, 230, 230};

int isqrt(int x) {
    int r = 0;
    int b = 1073741824;
    while (b > x) { b = b >> 2; }
    while (b != 0) {
        if (x >= r + b) { x = x - (r + b); r = (r >> 1) + b; }
        else { r = r >> 1; }
        b = b >> 2;
    }
    return r;
}

int read_axis(int j) {
    int a = j % 3;
    if (a == 0) { return sense(0); }
    if (a == 1) { return sense(1); }
    return sense(2);
}

void sample_window() {
    int j;
    for (j = 0; j < 24; j++) {
        accel[j] @= read_axis(j);
    }
    mark(0);
}

void featurize() {
    int a;
    int i;
    int sum;
    int v;
    int d;
    for (a = 0; a < 3; a++) {
        sum = 0;
        for (i = 0; i < WINDOW; i++) { sum += accel[i * 3 + a]; }
        fmean[a] = sum / WINDOW;
        v = 0;
        for (i = 0; i < WINDOW; i++) {
            d = accel[i * 3 + a] - fmean[a];
            v += d * d;
        }
        fstd[a] = isqrt(v / WINDOW);
    }
    mark(1);
}

int dist(int *cm, int *cs) {
    int a;
    int s = 0;
    int d;
    for (a = 0; a < 3; a++) {
        d = fmean[a] - cm[a];
        s += d * d;
        d = fstd[a] - cs[a];
        s += d * d;
    }
    return s;
}

void classify() {
    int dstill = dist(cm_still, cs_still);
    int dmove = dist(cm_move, cs_move);
    if (dmove < dstill) { activity = 1; } else { activity = 0; }
    mark(2);
}

// prepare_alert assembles the alert payload between the deadline stamp and
// the timely branch — the window where a badly placed checkpoint makes a
// legacy program take both branches (Figure 3b).
void prepare_alert() {
    int i;
    int s = 0;
    for (i = 0; i < 96; i++) { s += accel[i % 24] ^ (i << 2); }
    alertsum = s;
}

int main() {
    int r;
    lastact = -1;
    for (r = 0; r < ROUNDS; r++) {
        sample_window();
        @expires(accel[0]) {
            featurize();
            classify();
            mark(3);
            send(activity);
            tchange = now();
            prepare_alert();
            @timely(tchange + 200) {
                send(1000 + activity);
                timelyA[r] = 1;
            } else {
                send(2000 + activity);
                timelyB[r] = 1;
            }
            lastact = activity;
        } catch {
            mark(4);
        }
        rounds_done = r + 1;
    }
    out(0, rounds_done);
    return 0;
}
`

// arManualSource is the legacy version: the same application with manual
// timestamps (paper §5.2: "manual management of time and using
// MementOS-like checkpoints"). Run under the broken-consistency Mementos
// configuration it exhibits all three time-consistency violations of
// Figure 3(b)-(d): trigger checkpoints land between timestamp and data
// writes (misalignment), between the freshness check and consumption
// (expiration), and between the timestamp gather and the branch (timely
// branch, leaving evidence in both timelyA and timelyB).
const arManualSource = `
// Activity recognition (AR), legacy manual-time version.
#define WINDOW 8
#define ROUNDS 30
#define FRESH_MS 200

int accel[24];
int ats[24];
int fmean[3];
int fstd[3];
int activity;
int lastact;
int tchange;
int rounds_done;
int alertsum;
int timelyA[30];
int timelyB[30];

int cm_still[3] = {0, 0, 1000};
int cs_still[3] = {10, 10, 10};
int cm_move[3]  = {0, 0, 1000};
int cs_move[3]  = {230, 230, 230};

int isqrt(int x) {
    int r = 0;
    int b = 1073741824;
    while (b > x) { b = b >> 2; }
    while (b != 0) {
        if (x >= r + b) { x = x - (r + b); r = (r >> 1) + b; }
        else { r = r >> 1; }
        b = b >> 2;
    }
    return r;
}

int read_axis(int j) {
    int a = j % 3;
    if (a == 0) { return sense(0); }
    if (a == 1) { return sense(1); }
    return sense(2);
}

void sample_window() {
    int j;
    for (j = 0; j < 24; j++) {
        ats[j] = now();
        accel[j] = read_axis(j);
    }
    mark(0);
}

void featurize() {
    int a;
    int i;
    int sum;
    int v;
    int d;
    for (a = 0; a < 3; a++) {
        sum = 0;
        for (i = 0; i < WINDOW; i++) { sum += accel[i * 3 + a]; }
        fmean[a] = sum / WINDOW;
        v = 0;
        for (i = 0; i < WINDOW; i++) {
            d = accel[i * 3 + a] - fmean[a];
            v += d * d;
        }
        fstd[a] = isqrt(v / WINDOW);
    }
    mark(1);
}

int dist(int *cm, int *cs) {
    int a;
    int s = 0;
    int d;
    for (a = 0; a < 3; a++) {
        d = fmean[a] - cm[a];
        s += d * d;
        d = fstd[a] - cs[a];
        s += d * d;
    }
    return s;
}

void classify() {
    int dstill = dist(cm_still, cs_still);
    int dmove = dist(cm_move, cs_move);
    if (dmove < dstill) { activity = 1; } else { activity = 0; }
    mark(2);
}

void prepare_alert() {
    int i;
    int s = 0;
    for (i = 0; i < 96; i++) { s += accel[i % 24] ^ (i << 2); }
    alertsum = s;
}

int main() {
    int r;
    lastact = -1;
    for (r = 0; r < ROUNDS; r++) {
        sample_window();
        if (now() - ats[0] <= FRESH_MS) {
            featurize();
            classify();
            mark(3);
            send(activity);
            tchange = now();
            prepare_alert();
            if (now() < tchange + 200) {
                send(1000 + activity);
                timelyA[r] = 1;
            } else {
                send(2000 + activity);
                timelyB[r] = 1;
            }
            lastact = activity;
        } else {
            mark(4);
        }
        rounds_done = r + 1;
    }
    out(0, rounds_done);
    return 0;
}
`

// arTaskSource is the hand port to the task model: the chain the paper's
// Figure 2 caricatures. Pointers had to go (dist is duplicated per
// centroid), and the window flows between tasks through globals. The
// sample→featurize edge carries the 200 ms freshness constraint in the
// MayFly configuration.
const arTaskSource = `
// Activity recognition task port: sample -> featurize -> classify -> send.
#define WINDOW 8
#define ROUNDS 30

int accel[24];
int fmean[3];
int fstd[3];
int activity;
int lastact;
int rounds_done;
int r;

int cm_still[3] = {0, 0, 1000};
int cs_still[3] = {10, 10, 10};
int cm_move[3]  = {0, 0, 1000};
int cs_move[3]  = {230, 230, 230};

int isqrt(int x) {
    int rr = 0;
    int b = 1073741824;
    while (b > x) { b = b >> 2; }
    while (b != 0) {
        if (x >= rr + b) { x = x - (rr + b); rr = (rr >> 1) + b; }
        else { rr = rr >> 1; }
        b = b >> 2;
    }
    return rr;
}

int read_axis(int j) {
    int a = j % 3;
    if (a == 0) { return sense(0); }
    if (a == 1) { return sense(1); }
    return sense(2);
}

void t_sample() {
    int j;
    for (j = 0; j < 24; j++) {
        accel[j] = read_axis(j);
    }
    mark(0);
    transition_to(1);
}

void t_featurize() {
    int a;
    int i;
    int sum;
    int v;
    int d;
    for (a = 0; a < 3; a++) {
        sum = 0;
        for (i = 0; i < WINDOW; i++) { sum += accel[i * 3 + a]; }
        fmean[a] = sum / WINDOW;
        v = 0;
        for (i = 0; i < WINDOW; i++) {
            d = accel[i * 3 + a] - fmean[a];
            v += d * d;
        }
        fstd[a] = isqrt(v / WINDOW);
    }
    mark(1);
    transition_to(2);
}

int dist_still() {
    int a;
    int s = 0;
    int d;
    for (a = 0; a < 3; a++) {
        d = fmean[a] - cm_still[a];
        s += d * d;
        d = fstd[a] - cs_still[a];
        s += d * d;
    }
    return s;
}

int dist_move() {
    int a;
    int s = 0;
    int d;
    for (a = 0; a < 3; a++) {
        d = fmean[a] - cm_move[a];
        s += d * d;
        d = fstd[a] - cs_move[a];
        s += d * d;
    }
    return s;
}

void t_classify() {
    if (dist_move() < dist_still()) { activity = 1; } else { activity = 0; }
    mark(2);
    transition_to(3);
}

void t_send() {
    mark(3);
    send(activity);
    if (activity != lastact) {
        lastact = activity;
        send(1000 + activity);
    }
    r++;
    rounds_done = r;
    if (r < ROUNDS) { transition_to(0); }
    out(0, rounds_done);
    transition_to(99);
}

int main() { return 0; }
`

// AR returns the activity-recognition benchmark.
func AR() App {
	return App{
		Name:         "ar",
		Source:       arSource,
		ManualSource: arManualSource,
		TaskSource:   arTaskSource,
		Tasks:        []string{"t_sample", "t_featurize", "t_classify", "t_send"},
		Edges: []taskrt.Edge{
			{From: 0, To: 1, ExpireMs: 200, OnExpired: 0}, // fresh window required
			{From: 1, To: 2},
			{From: 2, To: 3},
			{From: 3, To: 0}, // activation restart
		},
		Marks: map[int]string{
			0: "sample", 1: "featurize", 2: "classify", 3: "consume-fresh", 4: "discard-stale",
		},
	}
}
