package apps

import (
	"strings"

	"repro/internal/taskrt"
)

// bcRecursiveBody is the legacy recursive method inside bcSource; the
// no-recursion variant swaps it for bcNoRecRewrite.
const bcRecursiveBody = `int bc_rec(uint n) {
    if (n == 0) { return 0; }
    return (n & 1) + bc_rec(n >> 1);
}`

var bcNoRecSource = strings.Replace(bcSource, bcRecursiveBody, bcNoRecRewrite, 1)

// bcSource is the legacy bitcount benchmark: seven counting methods —
// iterated shift, Kernighan clears, nibble table, byte table, *recursion*,
// SWAR, and a dense per-bit loop — over a pseudo-random input stream,
// cross-verified against each other. The recursive method is the one that
// Chinchilla-style static promotion cannot compile (§5.3.1).
const bcSource = `
// Bitcount (BC) - MiBench-style, seven methods, cross-verified.
#define N 40

uint seed = 12345;
int counts[7];
char nib[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};
char bytetab[256];

uint next_rand() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

uint rand32() {
    uint hi = next_rand();
    uint mid = next_rand();
    uint lo = next_rand();
    return (hi << 17) ^ (mid << 8) ^ lo;
}

int bc_iter(uint n) {
    int c = 0;
    while (n) { c = c + (n & 1); n = n >> 1; }
    return c;
}

int bc_kern(uint n) {
    int c = 0;
    while (n) { n = n & (n - 1); c++; }
    return c;
}

int bc_nib(uint n) {
    int c = 0;
    while (n) { c += nib[n & 15]; n = n >> 4; }
    return c;
}

int bc_byte(uint n) {
    return bytetab[n & 255] + bytetab[(n >> 8) & 255]
         + bytetab[(n >> 16) & 255] + bytetab[(n >> 24) & 255];
}

int bc_rec(uint n) {
    if (n == 0) { return 0; }
    return (n & 1) + bc_rec(n >> 1);
}

int bc_swar(uint n) {
    n = n - ((n >> 1) & 0x55555555);
    n = (n & 0x33333333) + ((n >> 2) & 0x33333333);
    n = (n + (n >> 4)) & 0x0F0F0F0F;
    return (n * 0x01010101) >> 24;
}

int bc_dense(uint n) {
    int c = 0;
    int i;
    for (i = 0; i < 32; i++) {
        if ((n >> i) & 1) { c++; }
    }
    return c;
}

int main() {
    int i;
    int k;
    int ok;
    for (i = 1; i < 256; i++) { bytetab[i] = bytetab[i >> 1] + (i & 1); }
    for (k = 0; k < N; k++) {
        uint r = rand32();
        counts[0] += bc_iter(r);  mark(0);
        counts[1] += bc_kern(r);  mark(1);
        counts[2] += bc_nib(r);   mark(2);
        counts[3] += bc_byte(r);  mark(3);
        counts[4] += bc_rec(r);   mark(4);
        counts[5] += bc_swar(r);  mark(5);
        counts[6] += bc_dense(r); mark(6);
    }
    ok = 1;
    for (i = 1; i < 7; i++) {
        if (counts[i] != counts[0]) { ok = 0; }
    }
    out(0, counts[0]);
    out(1, ok);
    return 0;
}
`

// bcTaskSource is the hand port to the task model. Exactly as the paper
// describes, porting costs expressiveness: the recursive method had to be
// rewritten iteratively (task models reject recursion) and the work is
// spread over restartable tasks communicating through globals.
const bcTaskSource = `
// Bitcount task port: init -> (sample -> count)*N -> verify.
#define N 40

uint seed = 12345;
int counts[7];
char nib[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};
char bytetab[256];
int k;
int initk;
uint cur;

uint next_rand() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

uint rand32() {
    uint hi = next_rand();
    uint mid = next_rand();
    uint lo = next_rand();
    return (hi << 17) ^ (mid << 8) ^ lo;
}

int bc_iter(uint n) {
    int c = 0;
    while (n) { c = c + (n & 1); n = n >> 1; }
    return c;
}

int bc_kern(uint n) {
    int c = 0;
    while (n) { n = n & (n - 1); c++; }
    return c;
}

int bc_nib(uint n) {
    int c = 0;
    while (n) { c += nib[n & 15]; n = n >> 4; }
    return c;
}

int bc_byte(uint n) {
    return bytetab[n & 255] + bytetab[(n >> 8) & 255]
         + bytetab[(n >> 16) & 255] + bytetab[(n >> 24) & 255];
}

// The recursive method of the legacy program, rewritten iteratively: task
// runtimes reject recursion (static task memory).
int bc_rec_ported(uint n) {
    int c = 0;
    while (n) { c = c + (n & 1); n = n >> 1; }
    return c;
}

int bc_swar(uint n) {
    n = n - ((n >> 1) & 0x55555555);
    n = (n & 0x33333333) + ((n >> 2) & 0x33333333);
    n = (n + (n >> 4)) & 0x0F0F0F0F;
    return (n * 0x01010101) >> 24;
}

int bc_dense(uint n) {
    int c = 0;
    int i;
    for (i = 0; i < 32; i++) {
        if ((n >> i) & 1) { c++; }
    }
    return c;
}

// Building the byte table is too much work for one atomic task under
// aggressive intermittency (its privatized writes would not fit a short
// power window), so the port chunks it across self-transitions — the kind
// of energy-driven re-decomposition the paper's Figure 2 complains about.
void t_init() {
    int i;
    int end = initk + 64;
    for (i = initk; i < end; i++) {
        if (i > 0) { bytetab[i] = bytetab[i >> 1] + (i & 1); }
    }
    initk = end;
    if (initk < 256) { transition_to(0); }
    k = 0;
    transition_to(1);
}

void t_sample() {
    cur = rand32();
    transition_to(2);
}

void t_count() {
    counts[0] += bc_iter(cur);       mark(0);
    counts[1] += bc_kern(cur);       mark(1);
    counts[2] += bc_nib(cur);        mark(2);
    counts[3] += bc_byte(cur);       mark(3);
    counts[4] += bc_rec_ported(cur); mark(4);
    counts[5] += bc_swar(cur);       mark(5);
    counts[6] += bc_dense(cur);      mark(6);
    k++;
    if (k < N) { transition_to(1); }
    transition_to(3);
}

void t_verify() {
    int i;
    int ok = 1;
    for (i = 1; i < 7; i++) {
        if (counts[i] != counts[0]) { ok = 0; }
    }
    out(0, counts[0]);
    out(1, ok);
    transition_to(99);
}

int main() { return 0; }
`

// bcMayflySource is the loop-free MayFly decomposition: the per-input loop
// must move inside a single task because the MayFly task graph is a DAG.
const bcMayflySource = `
// Bitcount MayFly port: init -> work (whole loop inside) -> verify.
#define N 40

uint seed = 12345;
int counts[7];
char nib[16] = {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4};
char bytetab[256];

uint next_rand() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

uint rand32() {
    uint hi = next_rand();
    uint mid = next_rand();
    uint lo = next_rand();
    return (hi << 17) ^ (mid << 8) ^ lo;
}

int bc_iter(uint n) {
    int c = 0;
    while (n) { c = c + (n & 1); n = n >> 1; }
    return c;
}

int bc_kern(uint n) {
    int c = 0;
    while (n) { n = n & (n - 1); c++; }
    return c;
}

int bc_nib(uint n) {
    int c = 0;
    while (n) { c += nib[n & 15]; n = n >> 4; }
    return c;
}

int bc_byte(uint n) {
    return bytetab[n & 255] + bytetab[(n >> 8) & 255]
         + bytetab[(n >> 16) & 255] + bytetab[(n >> 24) & 255];
}

int bc_rec_ported(uint n) {
    int c = 0;
    while (n) { c = c + (n & 1); n = n >> 1; }
    return c;
}

int bc_swar(uint n) {
    n = n - ((n >> 1) & 0x55555555);
    n = (n & 0x33333333) + ((n >> 2) & 0x33333333);
    n = (n + (n >> 4)) & 0x0F0F0F0F;
    return (n * 0x01010101) >> 24;
}

int bc_dense(uint n) {
    int c = 0;
    int i;
    for (i = 0; i < 32; i++) {
        if ((n >> i) & 1) { c++; }
    }
    return c;
}

void t_init() {
    int i;
    for (i = 1; i < 256; i++) { bytetab[i] = bytetab[i >> 1] + (i & 1); }
    transition_to(1);
}

// The whole input loop lives in one task (the MayFly graph is a DAG), so
// the port must accumulate in locals — including a local copy of the RNG
// state — and commit the task-shared counters once: per-iteration
// privatized writes would overflow the task's versioning buffer.
void t_work() {
    int k;
    uint s = seed;
    uint hi;
    uint mid;
    uint lo;
    int c0 = 0;
    int c1 = 0;
    int c2 = 0;
    int c3 = 0;
    int c4 = 0;
    int c5 = 0;
    int c6 = 0;
    for (k = 0; k < N; k++) {
        uint r;
        s = s * 1103515245 + 12345;
        hi = (s >> 16) & 32767;
        s = s * 1103515245 + 12345;
        mid = (s >> 16) & 32767;
        s = s * 1103515245 + 12345;
        lo = (s >> 16) & 32767;
        r = (hi << 17) ^ (mid << 8) ^ lo;
        c0 += bc_iter(r);       mark(0);
        c1 += bc_kern(r);       mark(1);
        c2 += bc_nib(r);        mark(2);
        c3 += bc_byte(r);       mark(3);
        c4 += bc_rec_ported(r); mark(4);
        c5 += bc_swar(r);       mark(5);
        c6 += bc_dense(r);      mark(6);
    }
    counts[0] = c0;
    counts[1] = c1;
    counts[2] = c2;
    counts[3] = c3;
    counts[4] = c4;
    counts[5] = c5;
    counts[6] = c6;
    transition_to(2);
}

void t_verify() {
    int i;
    int ok = 1;
    for (i = 1; i < 7; i++) {
        if (counts[i] != counts[0]) { ok = 0; }
    }
    out(0, counts[0]);
    out(1, ok);
    transition_to(99);
}

int main() { return 0; }
`

// BCNoRecursion returns the bitcount benchmark with the recursive method
// rewritten iteratively — the modification the paper notes Chinchilla's
// authors had to make by hand ("BC used for the evaluation of Chinchilla
// was not the original, as the authors have manually removed the
// recursion"). Results are identical; only expressibility differs.
func BCNoRecursion() App {
	app := BC()
	app.Name = "bc-norec"
	app.Source = bcNoRecSource
	return app
}

const bcNoRecRewrite = `
// Recursion manually removed for static-promotion runtimes.
int bc_rec(uint n) {
    int c = 0;
    while (n) { c = c + (n & 1); n = n >> 1; }
    return c;
}
`

// BC returns the bitcount benchmark.
func BC() App {
	return App{
		Name:       "bc",
		Source:     bcSource,
		TaskSource: bcTaskSource,
		Tasks:      []string{"t_init", "t_sample", "t_count", "t_verify"},
		Edges: []taskrt.Edge{
			{From: 0, To: 1},
			{From: 1, To: 2},
			{From: 2, To: 1}, // per-input loop: a cycle MayFly rejects
			{From: 2, To: 3},
		},
		MayflyTaskSource: bcMayflySource,
		MayflyTasks:      []string{"t_init", "t_work", "t_verify"},
		MayflyEdges: []taskrt.Edge{
			{From: 0, To: 1},
			{From: 1, To: 2},
		},
		Marks: map[int]string{
			0: "iter", 1: "kernighan", 2: "nibble", 3: "bytetable",
			4: "recursive", 5: "swar", 6: "dense",
		},
	}
}
