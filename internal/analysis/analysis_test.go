package analysis

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/isa"
)

// asmIns is a hand-assembled instruction: target >= 0 marks a branch whose
// immediate should resolve to the byte offset of that instruction index.
type asmIns struct {
	op     isa.Op
	imm    int32
	target int
}

func ins(op isa.Op) asmIns            { return asmIns{op: op, target: -1} }
func br(op isa.Op, target int) asmIns { return asmIns{op: op, target: target} }

// buildFunc assembles a cc.Func with branch relocations, mirroring the
// pre-link encoding BuildCFG expects.
func buildFunc(t *testing.T, name string, code []asmIns) *cc.Func {
	t.Helper()
	offs := make([]int32, len(code)+1)
	for i, in := range code {
		offs[i+1] = offs[i] + int32(isa.Size(in.op))
	}
	fn := &cc.Func{Name: name}
	for i, in := range code {
		imm := in.imm
		if in.target >= 0 {
			if in.target > len(code) {
				t.Fatalf("instr %d: branch target %d out of range", i, in.target)
			}
			imm = offs[in.target]
			fn.Relocs = append(fn.Relocs, cc.Reloc{Instr: i, Kind: cc.RelocBranch})
		}
		fn.Code = append(fn.Code, isa.Instr{Op: in.op, Imm: imm})
	}
	return fn
}

// blockOfInstr finds the block containing an instruction index.
func blockOfInstr(t *testing.T, cfg *CFG, instr int) *Block {
	t.Helper()
	for _, b := range cfg.Blocks {
		if instr >= b.Start && instr < b.End {
			return b
		}
	}
	t.Fatalf("no block contains instruction %d", instr)
	return nil
}

// Diamond: entry branches to then/else, both join at exit.
//
//	0: Jz → 3      entry (B0)
//	1: Nop         then  (B1)
//	2: Jmp → 4
//	3: Nop         else  (B2)
//	4: Leave       join  (B3)
func diamondCFG(t *testing.T) *CFG {
	fn := buildFunc(t, "diamond", []asmIns{
		br(isa.Jz, 3),
		ins(isa.Nop),
		br(isa.Jmp, 4),
		ins(isa.Nop),
		ins(isa.Leave),
	})
	return BuildCFG(fn)
}

func TestCFGDiamondStructure(t *testing.T) {
	cfg := diamondCFG(t)
	if len(cfg.Blocks) != 4 {
		t.Fatalf("diamond has %d blocks, want 4", len(cfg.Blocks))
	}
	entry := blockOfInstr(t, cfg, 0)
	then := blockOfInstr(t, cfg, 1)
	els := blockOfInstr(t, cfg, 3)
	join := blockOfInstr(t, cfg, 4)
	if len(entry.Succs) != 2 {
		t.Fatalf("entry has %d successors, want 2 (fallthrough + target)", len(entry.Succs))
	}
	if len(join.Preds) != 2 || len(join.Succs) != 0 {
		t.Fatalf("join preds=%d succs=%d, want 2 and 0", len(join.Preds), len(join.Succs))
	}
	for _, b := range []*Block{then, els, join} {
		if !cfg.Dominates(entry.ID, b.ID) {
			t.Errorf("entry should dominate block %d", b.ID)
		}
	}
	if cfg.Dominates(then.ID, join.ID) || cfg.Dominates(els.ID, join.ID) {
		t.Error("neither branch arm may dominate the join")
	}
	if cfg.Idom[join.ID] != entry.ID {
		t.Errorf("idom(join)=%d, want entry %d", cfg.Idom[join.ID], entry.ID)
	}
	if !cfg.IsReducible() {
		t.Error("diamond misclassified as irreducible")
	}
}

// Natural loop: header dominates the body that branches back to it.
//
//	0: Nop         entry  (B0)
//	1: Jz → 4      header (B1)
//	2: Nop         body   (B2)
//	3: Jmp → 1
//	4: Leave       exit   (B3)
func loopCFG(t *testing.T) *CFG {
	fn := buildFunc(t, "loop", []asmIns{
		ins(isa.Nop),
		br(isa.Jz, 4),
		ins(isa.Nop),
		br(isa.Jmp, 1),
		ins(isa.Leave),
	})
	return BuildCFG(fn)
}

func TestDominatorsNaturalLoop(t *testing.T) {
	cfg := loopCFG(t)
	entry := blockOfInstr(t, cfg, 0)
	header := blockOfInstr(t, cfg, 1)
	body := blockOfInstr(t, cfg, 2)
	exit := blockOfInstr(t, cfg, 4)
	if cfg.Idom[header.ID] != entry.ID || cfg.Idom[body.ID] != header.ID || cfg.Idom[exit.ID] != header.ID {
		t.Fatalf("idoms wrong: header←%d body←%d exit←%d", cfg.Idom[header.ID], cfg.Idom[body.ID], cfg.Idom[exit.ID])
	}
	backs := cfg.BackEdges()
	if len(backs) != 1 || backs[0][0] != body.ID || backs[0][1] != header.ID {
		t.Fatalf("back edges %v, want exactly body→header", backs)
	}
	if !cfg.IsReducible() {
		t.Error("natural loop misclassified as irreducible")
	}
}

// Irreducible loop, the shape a switch-fallthrough dispatcher lowers to
// when control can enter a cycle at two distinct labels: the entry
// branches to either A or B, and A and B branch to each other. Neither
// cycle node dominates the other, so the A↔B retreating edge is not a
// back edge.
//
//	0: Jz → 4      entry (B0): fallthrough A, target B
//	1: Nop         A (B1)
//	2: Jz → 6      A: exit or fall through toward B
//	3: Jmp → 4
//	4: Nop         B (B3)
//	5: Jmp → 1     B → A
//	6: Leave       exit
func irreducibleCFG(t *testing.T) *CFG {
	fn := buildFunc(t, "irreducible", []asmIns{
		br(isa.Jz, 4),
		ins(isa.Nop),
		br(isa.Jz, 6),
		br(isa.Jmp, 4),
		ins(isa.Nop),
		br(isa.Jmp, 1),
		ins(isa.Leave),
	})
	return BuildCFG(fn)
}

func TestDominatorsIrreducibleLoop(t *testing.T) {
	cfg := irreducibleCFG(t)
	entry := blockOfInstr(t, cfg, 0)
	a := blockOfInstr(t, cfg, 1)
	b := blockOfInstr(t, cfg, 4)
	// Both cycle entries are reached straight from the entry block, so the
	// entry is the immediate dominator of each and neither dominates the
	// other.
	if cfg.Idom[a.ID] != entry.ID || cfg.Idom[b.ID] != entry.ID {
		t.Fatalf("idom(A)=%d idom(B)=%d, want both %d", cfg.Idom[a.ID], cfg.Idom[b.ID], entry.ID)
	}
	if cfg.Dominates(a.ID, b.ID) || cfg.Dominates(b.ID, a.ID) {
		t.Fatal("cycle nodes of an irreducible loop must not dominate each other")
	}
	if len(cfg.BackEdges()) != 0 {
		t.Fatalf("irreducible cycle has no true back edges, got %v", cfg.BackEdges())
	}
	if cfg.IsReducible() {
		t.Fatal("two-entry cycle misclassified as reducible")
	}
}

func TestReachingDefinitions(t *testing.T) {
	cfg := diamondCFG(t)
	entry := blockOfInstr(t, cfg, 0)
	then := blockOfInstr(t, cfg, 1)
	els := blockOfInstr(t, cfg, 3)
	join := blockOfInstr(t, cfg, 4)
	// d0: entry writes [0,4). d1: then-arm rewrites [0,4) (covers d0).
	// d2: else-arm writes [2,6) — partial overlap, must NOT kill d0.
	defs := []Def{
		{ID: 0, Block: entry.ID, Instr: 0, Loc: Loc{0, 4}},
		{ID: 1, Block: then.ID, Instr: 1, Loc: Loc{0, 4}},
		{ID: 2, Block: els.ID, Instr: 3, Loc: Loc{2, 6}},
	}
	res := SolveReaching(cfg, defs)
	if !res.Out[entry.ID].Has(0) {
		t.Fatal("d0 must reach the entry block's exit")
	}
	if res.Out[then.ID].Has(0) || !res.Out[then.ID].Has(1) {
		t.Fatal("then-arm must kill d0 (full cover) and generate d1")
	}
	if !res.Out[els.ID].Has(0) || !res.Out[els.ID].Has(2) {
		t.Fatal("else-arm partially overlaps d0 and must leave it reaching")
	}
	in := res.In[join.ID]
	for _, want := range []int{0, 1, 2} {
		if !in.Has(want) {
			t.Errorf("join entry must see d%d (got d0=%v d1=%v d2=%v)",
				want, in.Has(0), in.Has(1), in.Has(2))
		}
	}
}

func TestReachingDefinitionsThroughLoop(t *testing.T) {
	cfg := loopCFG(t)
	entry := blockOfInstr(t, cfg, 0)
	header := blockOfInstr(t, cfg, 1)
	body := blockOfInstr(t, cfg, 2)
	defs := []Def{
		{ID: 0, Block: entry.ID, Instr: 0, Loc: Loc{0, 4}},
		{ID: 1, Block: body.ID, Instr: 2, Loc: Loc{0, 4}},
	}
	res := SolveReaching(cfg, defs)
	in := res.In[header.ID]
	if !in.Has(0) || !in.Has(1) {
		t.Fatalf("loop header must merge the entry def and the loop-carried def, got d0=%v d1=%v",
			in.Has(0), in.Has(1))
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	cfg := loopCFG(t)
	entry := blockOfInstr(t, cfg, 0)
	header := blockOfInstr(t, cfg, 1)
	body := blockOfInstr(t, cfg, 2)
	exit := blockOfInstr(t, cfg, 4)
	nb := len(cfg.Blocks)
	use := make([]BitSet, nb)
	def := make([]BitSet, nb)
	for i := 0; i < nb; i++ {
		use[i], def[i] = NewBitSet(2), NewBitSet(2)
	}
	// Fact 0: defined at entry, used in the body → live around the loop,
	// dead after exit. Fact 1: used at exit only.
	def[entry.ID].Set(0)
	use[body.ID].Set(0)
	use[exit.ID].Set(1)
	res := SolveLive(cfg, use, def, 2)
	if res.In[entry.ID].Has(0) {
		t.Error("fact 0 is defined at entry and must not be live-in there")
	}
	if !res.Out[entry.ID].Has(0) || !res.In[header.ID].Has(0) || !res.Out[body.ID].Has(0) {
		t.Error("fact 0 must be live around the loop (used by the body each iteration)")
	}
	if res.In[exit.ID].Has(0) {
		t.Error("fact 0 is not used at or after exit and must be dead there")
	}
	if !res.In[entry.ID].Has(1) || !res.In[exit.ID].Has(1) {
		t.Error("fact 1 is used at exit and never defined, so it is live everywhere on the path")
	}
}

// TestAnalyzeSourceDeterministic guards golden stability: two runs over
// the same program must produce identical, sorted diagnostics.
func TestAnalyzeSourceDeterministic(t *testing.T) {
	src := `
int a; int b;
int main() {
    a = a + 1;
    b = b + a;
    return 0;
}
`
	d1, err := AnalyzeSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := AnalyzeSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("non-deterministic: %d vs %d findings", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].String() != d2[i].String() {
			t.Fatalf("finding %d differs across runs:\n%s\n%s", i, d1[i], d2[i])
		}
		if i > 0 && (d1[i-1].Pos.Line > d1[i].Pos.Line ||
			(d1[i-1].Pos.Line == d1[i].Pos.Line && d1[i-1].Pos.Col > d1[i].Pos.Col)) {
			t.Fatalf("diagnostics not sorted by position: %s before %s", d1[i-1], d1[i])
		}
	}
}
