package analysis

import (
	"fmt"

	"repro/internal/cc"
)

// Time-consistency lints (TV002–TV005) over the TICS-C AST. These target
// Figure 3's time-misalignment hazards: data outliving its deadline
// across a power outage (expiration), data and timestamp updated by
// separate stores (misalignment), and ordinary branches on the volatile
// clock (timely-branch violations). Each lint recognises the legacy
// manual idiom and points at the TICS annotation that makes it safe.

// guardCtx is the set of time guards lexically enclosing a point in a
// function body.
type guardCtx struct {
	expires map[string]bool // globals guarded by an enclosing @expires
	timely  bool            // inside a @timely body
}

func (g guardCtx) withExpires(name string) guardCtx {
	m := map[string]bool{}
	for k := range g.expires {
		m[k] = true
	}
	m[name] = true
	return guardCtx{expires: m, timely: g.timely}
}

func (g guardCtx) withTimely() guardCtx {
	return guardCtx{expires: g.expires, timely: true}
}

func (g guardCtx) covers(name string) bool { return g.expires[name] || g.timely }

// lintCall is a call site recorded for the interprocedural exposure
// analysis of TV002.
type lintCall struct {
	caller, callee string
	ctx            guardCtx
}

// lintCandidate is a potential TV002 finding, confirmed only if the
// containing function is reachable with the global unguarded.
type lintCandidate struct {
	fn     string
	global string
	pos    cc.Pos
	sink   string // "send" or "out"
}

type linter struct {
	unit      *cc.Unit
	annotated map[string]bool
	diags     []Diagnostic
	calls     []lintCall
	sends     []lintCandidate
	fn        *cc.FuncDecl
}

// runLints walks every function and emits TV002–TV005.
func runLints(unit *cc.Unit) []Diagnostic {
	l := &linter{unit: unit, annotated: map[string]bool{}}
	for _, g := range unit.Globals {
		if g.ExpiresAfterMs >= 0 {
			l.annotated[g.Name] = true
		}
	}
	for _, fn := range unit.Funcs {
		l.fn = fn
		l.stmt(fn.Body, guardCtx{expires: map[string]bool{}})
	}
	l.resolveSends()
	sortDiags(l.diags)
	return l.diags
}

func (l *linter) report(code Code, sev Severity, pos cc.Pos, global, msg string) {
	l.diags = append(l.diags, Diagnostic{
		Code: code, Severity: sev, Pos: pos, Func: l.fn.Name, Global: global, Msg: msg,
	})
}

// annotatedTarget returns the annotated global an lvalue designates, if
// any ("" otherwise).
func (l *linter) annotatedTarget(e cc.Expr) string {
	switch x := e.(type) {
	case *cc.VarRef:
		if x.Sym != nil && x.Sym.Kind == cc.SymGlobal && l.annotated[x.Name] {
			return x.Name
		}
	case *cc.Index:
		if b, ok := x.Base.(*cc.VarRef); ok {
			return l.annotatedTarget(b)
		}
	}
	return ""
}

// globalTarget returns the global an lvalue stores to ("" for locals,
// pointer dereferences and parameters).
func globalTarget(e cc.Expr) string {
	switch x := e.(type) {
	case *cc.VarRef:
		if x.Sym != nil && x.Sym.Kind == cc.SymGlobal {
			return x.Name
		}
	case *cc.Index:
		if b, ok := x.Base.(*cc.VarRef); ok {
			return globalTarget(b)
		}
	}
	return ""
}

// isNowCall reports whether e is a direct call to the now() builtin.
func isNowCall(e cc.Expr) bool {
	c, ok := e.(*cc.Call)
	return ok && c.Builtin == cc.BNow
}

// containsNow reports whether any subexpression calls now().
func containsNow(e cc.Expr) bool {
	found := false
	walkExpr(e, func(sub cc.Expr) {
		if isNowCall(sub) {
			found = true
		}
	})
	return found
}

// walkExpr visits e and every subexpression.
func walkExpr(e cc.Expr, visit func(cc.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *cc.Unary:
		walkExpr(x.X, visit)
	case *cc.Binary:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *cc.Index:
		walkExpr(x.Base, visit)
		walkExpr(x.Idx, visit)
	case *cc.Call:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *cc.AssignExpr:
		walkExpr(x.L, visit)
		walkExpr(x.R, visit)
	case *cc.IncDec:
		walkExpr(x.X, visit)
	case *cc.Cond:
		walkExpr(x.C, visit)
		walkExpr(x.T, visit)
		walkExpr(x.F, visit)
	}
}

// annotatedReads collects the annotated globals an expression reads.
func (l *linter) annotatedReads(e cc.Expr) []string {
	seen := map[string]bool{}
	var out []string
	walkExpr(e, func(sub cc.Expr) {
		if v, ok := sub.(*cc.VarRef); ok && v.Sym != nil && v.Sym.Kind == cc.SymGlobal &&
			l.annotated[v.Name] && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	})
	return out
}

func (l *linter) stmt(s cc.Stmt, ctx guardCtx) {
	switch st := s.(type) {
	case *cc.Block:
		l.stmtList(st.Stmts, ctx)
	case *cc.ExprStmt:
		l.expr(st.X, ctx)
	case *cc.LocalDecl:
		if st.Init != nil {
			l.expr(st.Init, ctx)
		}
	case *cc.If:
		l.checkClockCond(st.Cond, "if")
		l.expr(st.Cond, ctx)
		l.stmt(st.Then, ctx)
		if st.Else != nil {
			l.stmt(st.Else, ctx)
		}
	case *cc.While:
		l.checkClockCond(st.Cond, "while")
		l.expr(st.Cond, ctx)
		l.stmt(st.Body, ctx)
	case *cc.DoWhile:
		l.stmt(st.Body, ctx)
		l.checkClockCond(st.Cond, "do-while")
		l.expr(st.Cond, ctx)
	case *cc.For:
		if st.Init != nil {
			l.expr(st.Init, ctx)
		}
		if st.Cond != nil {
			l.checkClockCond(st.Cond, "for")
			l.expr(st.Cond, ctx)
		}
		if st.Post != nil {
			l.expr(st.Post, ctx)
		}
		l.stmt(st.Body, ctx)
	case *cc.Switch:
		l.expr(st.Cond, ctx)
		for gi := range st.Groups {
			l.stmtList(st.Groups[gi].Stmts, ctx)
		}
	case *cc.Return:
		if st.X != nil {
			l.expr(st.X, ctx)
		}
	case *cc.ExpiresStmt:
		inner := ctx
		if name := globalTarget(st.LV); name != "" {
			inner = ctx.withExpires(name)
		}
		l.stmt(st.Body, inner)
		if st.Catch != nil {
			l.stmt(st.Catch, ctx)
		}
	case *cc.TimelyStmt:
		l.expr(st.Deadline, ctx)
		l.stmt(st.Body, ctx.withTimely())
		if st.Else != nil {
			l.stmt(st.Else, ctx)
		}
	}
}

// stmtList runs per-statement checks plus the adjacency pattern of TV004:
// a now() stored into one global right next to a store into another is the
// manual data/timestamp pair of Figure 3(c) — one power failure between
// the two stores misaligns them forever.
func (l *linter) stmtList(stmts []cc.Stmt, ctx guardCtx) {
	for _, s := range stmts {
		l.stmt(s, ctx)
	}
	for i := 0; i+1 < len(stmts); i++ {
		tsName, tsPos, ok1 := nowStore(stmts[i])
		dataName, ok2 := plainGlobalStore(stmts[i+1])
		if !(ok1 && ok2) {
			// Data-then-timestamp order.
			dataName, ok2 = plainGlobalStore(stmts[i])
			tsName, tsPos, ok1 = nowStore(stmts[i+1])
		}
		if ok1 && ok2 && tsName != dataName &&
			!l.annotated[tsName] && !l.annotated[dataName] {
			l.report(CodeManualPair, Warn, tsPos, dataName,
				fmt.Sprintf("manual data/timestamp pair: '%s' holds now() while '%s' holds the data, updated by separate stores; a power failure between them misaligns value and timestamp — declare '%s' @expires_after and assign with @=", tsName, dataName, dataName))
		}
	}
}

// nowStore matches `g = now();` (or `g[i] = now();`).
func nowStore(s cc.Stmt) (global string, pos cc.Pos, ok bool) {
	es, isExpr := s.(*cc.ExprStmt)
	if !isExpr {
		return "", cc.Pos{}, false
	}
	as, isAssign := es.X.(*cc.AssignExpr)
	if !isAssign || as.Op != cc.Assign || !isNowCall(as.R) {
		return "", cc.Pos{}, false
	}
	g := globalTarget(as.L)
	return g, as.Pos(), g != ""
}

// plainGlobalStore matches any store (including compound and ++/--) whose
// target is a global and whose value is not now().
func plainGlobalStore(s cc.Stmt) (global string, ok bool) {
	es, isExpr := s.(*cc.ExprStmt)
	if !isExpr {
		return "", false
	}
	switch x := es.X.(type) {
	case *cc.AssignExpr:
		if isNowCall(x.R) {
			return "", false
		}
		g := globalTarget(x.L)
		return g, g != ""
	case *cc.IncDec:
		g := globalTarget(x.X)
		return g, g != ""
	}
	return "", false
}

// checkClockCond emits TV005 when a branch condition reads the volatile
// clock directly (Figure 3(b): a checkpoint between the now() read and
// the guarded effect lets re-execution take both arms).
func (l *linter) checkClockCond(cond cc.Expr, kind string) {
	if containsNow(cond) {
		l.report(CodeManualTimely, Warn, cond.Pos(), "",
			fmt.Sprintf("%s condition reads the volatile clock with now(); after a reboot the re-executed test can disagree with the committed branch — guard the deadline with @timely instead", kind))
	}
}

func (l *linter) expr(e cc.Expr, ctx guardCtx) {
	walkExpr(e, func(sub cc.Expr) {
		switch x := sub.(type) {
		case *cc.AssignExpr:
			if x.Op == cc.AtAssign {
				return
			}
			if name := l.annotatedTarget(x.L); name != "" {
				l.report(CodeStaleTimestamp, Warn, x.Pos(), name,
					fmt.Sprintf("plain store to @expires_after global '%s' leaves its shadow timestamp stale; freshness checks will judge the new value by the old value's age — assign with @= instead", name))
			}
		case *cc.IncDec:
			if name := l.annotatedTarget(x.X); name != "" {
				l.report(CodeStaleTimestamp, Warn, x.Pos(), name,
					fmt.Sprintf("plain store to @expires_after global '%s' leaves its shadow timestamp stale; freshness checks will judge the new value by the old value's age — assign with @= instead", name))
			}
		case *cc.Call:
			switch x.Builtin {
			case cc.BSend, cc.BOut:
				sink := "send"
				if x.Builtin == cc.BOut {
					sink = "out"
				}
				for _, arg := range x.Args {
					for _, g := range l.annotatedReads(arg) {
						if !ctx.covers(g) {
							l.sends = append(l.sends, lintCandidate{
								fn: l.fn.Name, global: g, pos: x.Pos(), sink: sink,
							})
						}
					}
				}
			case cc.NotBuiltin:
				l.calls = append(l.calls, lintCall{caller: l.fn.Name, callee: x.Name, ctx: ctx})
			}
		}
	})
}

// resolveSends finishes TV002: a send of @expires_after data is only a
// hazard on paths where no caller holds an @expires/@timely guard either.
// mayReachUnguarded[f][g] means some call chain from main reaches f with
// global g unguarded the whole way.
func (l *linter) resolveSends() {
	if len(l.sends) == 0 {
		return
	}
	reach := map[string]map[string]bool{}
	get := func(fn string) map[string]bool {
		if reach[fn] == nil {
			reach[fn] = map[string]bool{}
		}
		return reach[fn]
	}
	if l.unit.Main != nil {
		m := get(l.unit.Main.Name)
		for g := range l.annotated {
			m[g] = true
		}
	}
	// Task entry points (functions named t_*) are also roots: task
	// runtimes dispatch them directly.
	for _, fn := range l.unit.Funcs {
		if len(fn.Name) > 2 && fn.Name[:2] == "t_" {
			m := get(fn.Name)
			for g := range l.annotated {
				m[g] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range l.calls {
			src := get(c.caller)
			dst := get(c.callee)
			for g := range src {
				if !c.ctx.covers(g) && !dst[g] {
					dst[g] = true
					changed = true
				}
			}
		}
	}
	for _, cand := range l.sends {
		if !get(cand.fn)[cand.global] {
			continue
		}
		durMs := int64(-1)
		for _, g := range l.unit.Globals {
			if g.Name == cand.global {
				durMs = g.ExpiresAfterMs
			}
		}
		l.fn = &cc.FuncDecl{Name: cand.fn}
		l.report(CodeUnguardedSend, Warn, cand.pos, cand.global,
			fmt.Sprintf("%s() transmits '%s' (@expires_after=%d ms) outside any @expires/@timely guard; across a power outage the deadline can lapse unnoticed and stale data leaves the device", cand.sink, cand.global, durMs))
	}
}
