package analysis

import (
	"fmt"

	"repro/internal/cc"
)

// WAR-hazard detection (TV001).
//
// A WAR (write-after-read) idempotency hazard is a non-volatile global
// that is read and then written with no guaranteed checkpoint boundary in
// between. After a power failure the runtime re-executes from the last
// checkpoint: the replayed read now sees the already-updated value and
// the recomputed write commits a second time — `seed = seed * a + c`
// advances twice for one logical step. This is exactly the hazard class
// the TICS undo log exists to cover (paper §3.2.1); runtimes that
// checkpoint without versioning globals (Mementos with VersionGlobals
// disabled — Table 1's "naive checkpointing") silently corrupt the
// location instead.
//
// The analysis is a forward may-dataflow over the bytecode CFG at global-
// variable granularity, with bottom-up interprocedural summaries so a
// read in a caller followed by a write in a callee (or vice versa) is
// still caught. Only checkpoints that are guaranteed to execute (explicit
// Chkpt instructions: checkpoint() calls and atomic-region boundaries)
// clear pending reads — timer-driven checkpoints may or may not fire, so
// they cannot be relied on to break a hazard.
//
// Precision: reads and writes whose address is widened (an array access
// with a statically unknown index) set pending reads but never *trigger*
// a hazard — the analysis cannot prove the write hits the read location,
// and zero false positives is the contract.

// warSummary is the interprocedural behaviour of one function.
type warSummary struct {
	// mayWriteNoCp: globals possibly written on some path from the
	// function's entry before any checkpoint (precise, non-widened writes).
	mayWriteNoCp BitSet
	// pendingAtExit: globals possibly carrying an un-checkpointed read
	// when the function returns.
	pendingAtExit BitSet
	// sureCp: every entry→exit path passes a checkpoint.
	sureCp bool
}

type warAnalysis struct {
	prog      *cc.Program
	events    []*funcEvents
	summaries []warSummary
	nvars     int
}

// varsOf maps a globals-space interval to the indices of the variables it
// overlaps.
func (w *warAnalysis) varsOf(loc Loc) []int {
	var out []int
	for i, g := range w.prog.Globals {
		if (Loc{g.Offset, g.Offset + uint32(g.Size)}).Overlaps(loc) {
			out = append(out, i)
		}
	}
	return out
}

// runWAR extracts events for every function (with one round of
// monomorphic parameter-address propagation, so swap(&a, &b)-style
// pointer hazards resolve), computes function summaries to a fixpoint,
// and reports hazards.
func runWAR(prog *cc.Program) []Diagnostic {
	nf := len(prog.Funcs)
	w := &warAnalysis{prog: prog, nvars: len(prog.Globals)}

	cfgs := make([]*CFG, nf)
	for i, fn := range prog.Funcs {
		cfgs[i] = BuildCFG(fn)
	}

	// Pass 1: observe call-site argument values with parameters unknown.
	type pjoin struct {
		v   aval
		set bool
	}
	pvals := make([][]pjoin, nf)
	for i, fn := range prog.Funcs {
		pvals[i] = make([]pjoin, fn.NArgs)
	}
	for i, fn := range prog.Funcs {
		extractEvents(prog, fn, cfgs[i], nil, func(_, callee int, args []aval) {
			for j, a := range args {
				if j >= len(pvals[callee]) {
					break
				}
				p := &pvals[callee][j]
				if !p.set {
					p.v, p.set = a, true
				} else {
					p.v = joinVals(prog, p.v, a)
				}
			}
		})
	}

	// Pass 2: final event streams with propagated parameter values.
	w.events = make([]*funcEvents, nf)
	for i, fn := range prog.Funcs {
		params := make([]aval, fn.NArgs)
		for j, p := range pvals[i] {
			if p.set {
				params[j] = p.v
			} else {
				params[j] = unknown()
			}
		}
		w.events[i] = extractEvents(prog, fn, cfgs[i], params, nil)
	}

	// Summaries to a fixpoint: optimistic start, monotone refinement
	// (sets only grow, sureCp only falls), bottom-up over the call DAG so
	// acyclic programs converge in one sweep.
	w.summaries = make([]warSummary, nf)
	for i := range w.summaries {
		w.summaries[i] = warSummary{
			mayWriteNoCp:  NewBitSet(w.nvars),
			pendingAtExit: NewBitSet(w.nvars),
			sureCp:        true,
		}
	}
	cg := BuildCallGraph(prog)
	var order []int
	for _, comp := range cg.Components {
		order = append(order, comp...)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range order {
			if w.summarize(fi, nil) {
				changed = true
			}
		}
	}

	// Reporting pass with stable summaries.
	var diags []Diagnostic
	seen := map[string]bool{}
	for fi := range prog.Funcs {
		w.summarize(fi, func(instr int, vars []int, viaCallee int) {
			fn := prog.Funcs[fi]
			var pos cc.Pos
			if instr < len(fn.Poss) {
				pos = fn.Poss[instr]
			}
			for _, v := range vars {
				key := fmt.Sprintf("%d.%d.%d", fi, instr, v)
				if seen[key] {
					continue
				}
				seen[key] = true
				g := prog.Globals[v]
				msg := fmt.Sprintf("WAR hazard: non-volatile global '%s' is read and then written with no checkpoint between", g.Name)
				if viaCallee >= 0 {
					msg = fmt.Sprintf("WAR hazard: non-volatile global '%s' is read here and written by '%s' with no checkpoint between", g.Name, prog.Funcs[viaCallee].Name)
				}
				msg += "; TICS undo logging replays it safely, but checkpointing without versioned globals (mementos, VersionGlobals=false) corrupts it on re-execution"
				diags = append(diags, Diagnostic{
					Code: CodeWAR, Severity: Info, Pos: pos,
					Func: fn.Name, Global: g.Name, Msg: msg,
				})
			}
		})
	}
	sortDiags(diags)
	return diags
}

// summarize recomputes the summary of function fi from its events and the
// current summaries of its callees, reporting hazards through report when
// non-nil. It returns whether the summary changed.
func (w *warAnalysis) summarize(fi int, report func(instr int, vars []int, viaCallee int)) bool {
	fe := w.events[fi]
	nb := len(fe.cfg.Blocks)
	if nb == 0 {
		return false
	}

	// Fused forward analysis per block: pending reads (may, union),
	// reachable-without-checkpoint (may, or), checkpointed-on-every-path
	// (must, and).
	type state struct {
		pending BitSet
		noCp    bool
		mustCp  bool
	}
	in := make([]state, nb)
	out := make([]state, nb)
	for i := 0; i < nb; i++ {
		in[i] = state{pending: NewBitSet(w.nvars)}
		out[i] = state{pending: NewBitSet(w.nvars)}
	}

	transfer := func(b int, s state, report func(instr int, vars []int, viaCallee int)) state {
		pend := NewBitSet(w.nvars)
		pend.Copy(s.pending)
		noCp, mustCp := s.noCp, s.mustCp
		mayWrite := func(instr int, loc Loc, wide bool, via int) {
			if wide {
				return // cannot prove the write hits the read location
			}
			vars := w.varsOf(loc)
			var hit []int
			for _, v := range vars {
				if pend.Has(v) {
					hit = append(hit, v)
				}
			}
			if len(hit) > 0 && report != nil {
				report(instr, hit, via)
			}
		}
		for _, ev := range fe.blocks[b] {
			switch ev.kind {
			case evRead:
				for _, v := range w.varsOf(ev.loc) {
					pend.Set(v)
				}
			case evWrite:
				mayWrite(ev.instr, ev.loc, ev.wide, -1)
			case evChkpt:
				pend = NewBitSet(w.nvars)
				noCp = false
				mustCp = true
			case evCall:
				cs := w.summaries[ev.callee]
				if report != nil {
					var hit []int
					for v := 0; v < w.nvars; v++ {
						if pend.Has(v) && cs.mayWriteNoCp.Has(v) {
							hit = append(hit, v)
						}
					}
					if len(hit) > 0 {
						report(ev.instr, hit, ev.callee)
					}
				}
				if cs.sureCp {
					pend = NewBitSet(w.nvars)
					noCp = false
					mustCp = true
				}
				pend.OrInto(cs.pendingAtExit)
			}
		}
		return state{pending: pend, noCp: noCp, mustCp: mustCp}
	}

	rpo := fe.cfg.RPO()
	// Entry state.
	entry := rpo[0]
	for iter := true; iter; {
		iter = false
		for _, b := range rpo {
			var s state
			if b == entry {
				// Function entry is reachable with no checkpoint; a loop
				// back to the entry block additionally joins below.
				s = state{pending: NewBitSet(w.nvars), noCp: true, mustCp: false}
			} else {
				s = state{pending: NewBitSet(w.nvars), noCp: false, mustCp: true}
			}
			for _, p := range b.Preds {
				s.pending.OrInto(out[p.ID].pending)
				s.noCp = s.noCp || out[p.ID].noCp
				s.mustCp = s.mustCp && out[p.ID].mustCp && b != entry
			}
			in[b.ID] = s
			ns := transfer(b.ID, s, nil)
			if !ns.pending.Eq(out[b.ID].pending) || ns.noCp != out[b.ID].noCp || ns.mustCp != out[b.ID].mustCp {
				out[b.ID] = ns
				iter = true
			}
		}
	}

	// Report with the converged block-entry states.
	if report != nil {
		for _, b := range rpo {
			transfer(b.ID, in[b.ID], report)
		}
	}

	// Assemble the new summary.
	newSum := warSummary{
		mayWriteNoCp:  NewBitSet(w.nvars),
		pendingAtExit: NewBitSet(w.nvars),
		sureCp:        true,
	}
	// mayWriteNoCp: walk blocks whose entry is reachable without a sure
	// checkpoint; record precise writes (and callee mayWriteNoCp) seen
	// before the in-block state loses noCp.
	for _, b := range rpo {
		s := in[b.ID]
		if !s.noCp {
			continue
		}
		noCp := true
		for _, ev := range fe.blocks[b.ID] {
			if !noCp {
				break
			}
			switch ev.kind {
			case evWrite:
				if !ev.wide {
					for _, v := range w.varsOf(ev.loc) {
						newSum.mayWriteNoCp.Set(v)
					}
				}
			case evChkpt:
				noCp = false
			case evCall:
				cs := w.summaries[ev.callee]
				newSum.mayWriteNoCp.OrInto(cs.mayWriteNoCp)
				if cs.sureCp {
					noCp = false
				}
			}
		}
	}
	hasExit := false
	for _, b := range rpo {
		if len(b.Succs) == 0 {
			hasExit = true
			newSum.pendingAtExit.OrInto(out[b.ID].pending)
			newSum.sureCp = newSum.sureCp && out[b.ID].mustCp
		}
	}
	if !hasExit {
		// The function never returns; nothing escapes to callers.
		newSum.sureCp = true
	}

	old := w.summaries[fi]
	changed := !old.mayWriteNoCp.Eq(newSum.mayWriteNoCp) ||
		!old.pendingAtExit.Eq(newSum.pendingAtExit) ||
		old.sureCp != newSum.sureCp
	w.summaries[fi] = newSum
	return changed
}
