package analysis

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/energy"
)

// Checkpoint-gap analysis (TV008), in the style of ETAP-like static
// energy bounding: an atomic region (@expires / @timely body, or a @=
// assignment) disables checkpointing for its whole extent, so the device
// must execute the entire region on the charge it holds at region entry.
// A region whose worst-case cycle cost has no static bound — a loop with
// no inferable trip count, a call into a recursion cycle — may never
// complete under intermittent power: every reboot restarts it from the
// leading checkpoint and the capacitor drains before the trailing one.
// With a capacitor budget configured, a bounded region whose worst case
// exceeds the budget is reported as an error with the numbers.
//
// Costs are worst-case over-approximations from the AST using the
// calibrated energy.CostModel; loop bounds are inferred for counted
// for-loops (constant init/limit/step) and shift-descent while-loops
// (`b = b >> k` converges in at most 32/k steps on 32-bit values).

// cost is a possibly-unbounded cycle count.
type cost struct {
	cycles  int64
	bounded bool
	why     string // for unbounded: the innermost reason
}

func bounded(c int64) cost          { return cost{cycles: c, bounded: true} }
func unboundedCost(why string) cost { return cost{why: why} }
func (c cost) plus(d cost) cost {
	if !c.bounded {
		return c
	}
	if !d.bounded {
		return d
	}
	return bounded(c.cycles + d.cycles)
}
func (c cost) times(n int64) cost {
	if !c.bounded {
		return c
	}
	return bounded(c.cycles * n)
}
func maxCost(c, d cost) cost {
	if !c.bounded {
		return c
	}
	if !d.bounded {
		return d
	}
	if d.cycles > c.cycles {
		return d
	}
	return c
}

type gapAnalyzer struct {
	model  energy.CostModel
	budget int64
	funcs  map[string]*cc.FuncDecl
	// memoized whole-function worst-case costs; inProgress marks functions
	// on the current walk so recursion cycles resolve to unbounded.
	fnCost     map[string]cost
	inProgress map[string]bool
	diags      []Diagnostic
	curFn      string
}

// runGap analyzes every atomic region in the program. budget <= 0 means
// structural checking only (unbounded regions are still reported).
func runGap(unit *cc.Unit, budget int64, model energy.CostModel) []Diagnostic {
	g := &gapAnalyzer{
		model: model, budget: budget,
		funcs:      map[string]*cc.FuncDecl{},
		fnCost:     map[string]cost{},
		inProgress: map[string]bool{},
	}
	for _, fn := range unit.Funcs {
		g.funcs[fn.Name] = fn
	}
	for _, fn := range unit.Funcs {
		g.curFn = fn.Name
		g.findRegions(fn.Body)
	}
	sortDiags(g.diags)
	return g.diags
}

// findRegions walks a function body looking for atomic regions; nested
// regions are reported independently (the outer region's cost includes
// the inner body).
func (g *gapAnalyzer) findRegions(s cc.Stmt) {
	switch st := s.(type) {
	case *cc.Block:
		for _, sub := range st.Stmts {
			g.findRegions(sub)
		}
	case *cc.ExprStmt:
		if as, ok := st.X.(*cc.AssignExpr); ok && as.Op == cc.AtAssign {
			// @= lowers to CpDis …store+SetTS… Chkpt CpEn.
			c := g.exprCost(as.R).
				plus(bounded(g.model.TimestampWrite)).
				plus(bounded(g.model.CheckpointCost(0)))
			g.checkRegion("@= atomic assignment", as.Pos(), c)
		}
	case *cc.If:
		g.findRegions(st.Then)
		if st.Else != nil {
			g.findRegions(st.Else)
		}
	case *cc.While:
		g.findRegions(st.Body)
	case *cc.DoWhile:
		g.findRegions(st.Body)
	case *cc.For:
		g.findRegions(st.Body)
	case *cc.Switch:
		for gi := range st.Groups {
			for _, sub := range st.Groups[gi].Stmts {
				g.findRegions(sub)
			}
		}
	case *cc.ExpiresStmt:
		// @expires lowers to CpDis Chkpt …body… Chkpt CpEn: the region spans
		// the leading and trailing checkpoints plus the whole body.
		c := bounded(2 * g.model.CheckpointCost(0)).plus(g.stmtCost(st.Body))
		name := "@expires region"
		if gname := globalTarget(st.LV); gname != "" {
			name = fmt.Sprintf("@expires(%s) region", gname)
		}
		g.checkRegion(name, st.Pos(), c)
		g.findRegions(st.Body)
		if st.Catch != nil {
			g.findRegions(st.Catch)
		}
	case *cc.TimelyStmt:
		c := bounded(2 * g.model.CheckpointCost(0)).plus(g.stmtCost(st.Body))
		g.checkRegion("@timely region", st.Pos(), c)
		g.findRegions(st.Body)
		if st.Else != nil {
			g.findRegions(st.Else)
		}
	}
}

func (g *gapAnalyzer) checkRegion(name string, pos cc.Pos, c cost) {
	if !c.bounded {
		g.diags = append(g.diags, Diagnostic{
			Code: CodeCheckpointGap, Severity: Warn, Pos: pos, Func: g.curFn,
			Msg: fmt.Sprintf("%s has no static cycle bound (%s); checkpointing is disabled inside it, so it must complete on a single charge — under intermittent power it may restart forever", name, c.why),
		})
		return
	}
	if g.budget > 0 && c.cycles > g.budget {
		g.diags = append(g.diags, Diagnostic{
			Code: CodeCheckpointGap, Severity: Error, Pos: pos, Func: g.curFn,
			Msg: fmt.Sprintf("%s needs up to %d cycles but the capacitor budget is %d; the region can never complete on one charge and the program livelocks at this checkpoint gap", name, c.cycles, g.budget),
		})
	}
}

// ---- Worst-case statement and expression costs ----

func (g *gapAnalyzer) stmtCost(s cc.Stmt) cost {
	switch st := s.(type) {
	case nil:
		return bounded(0)
	case *cc.Block:
		c := bounded(0)
		for _, sub := range st.Stmts {
			c = c.plus(g.stmtCost(sub))
		}
		return c
	case *cc.ExprStmt:
		return g.exprCost(st.X)
	case *cc.LocalDecl:
		if st.Init != nil {
			return g.exprCost(st.Init).plus(bounded(g.model.InstrMem))
		}
		return bounded(0)
	case *cc.If:
		c := g.exprCost(st.Cond).plus(bounded(g.model.InstrCtl))
		return c.plus(maxCost(g.stmtCost(st.Then), g.stmtCost(st.Else)))
	case *cc.While:
		iter := g.exprCost(st.Cond).plus(bounded(g.model.InstrCtl)).plus(g.stmtCost(st.Body))
		n, ok := g.whileBound(st)
		if !ok {
			return unboundedCost("while loop with no inferable trip count")
		}
		return iter.times(n).plus(g.exprCost(st.Cond))
	case *cc.DoWhile:
		iter := g.stmtCost(st.Body).plus(g.exprCost(st.Cond)).plus(bounded(g.model.InstrCtl))
		n, ok := shiftDescentBound(st.Cond, st.Body)
		if !ok {
			return unboundedCost("do-while loop with no inferable trip count")
		}
		return iter.times(n)
	case *cc.For:
		c := bounded(0)
		if st.Init != nil {
			c = c.plus(g.exprCost(st.Init))
		}
		iter := g.stmtCost(st.Body).plus(bounded(g.model.InstrCtl))
		if st.Cond != nil {
			iter = iter.plus(g.exprCost(st.Cond))
		}
		if st.Post != nil {
			iter = iter.plus(g.exprCost(st.Post))
		}
		n, ok := forBound(st)
		if !ok {
			return unboundedCost("for loop with no inferable trip count")
		}
		return c.plus(iter.times(n))
	case *cc.Switch:
		// Worst case over fallthrough chains is bounded by the sum of all
		// groups; an over-approximation is fine for a worst-case bound.
		c := g.exprCost(st.Cond).plus(bounded(g.model.InstrCtl * int64(len(st.Groups))))
		for gi := range st.Groups {
			for _, sub := range st.Groups[gi].Stmts {
				c = c.plus(g.stmtCost(sub))
			}
		}
		return c
	case *cc.Return:
		c := bounded(g.model.InstrCtl)
		if st.X != nil {
			c = c.plus(g.exprCost(st.X))
		}
		return c
	case *cc.Break, *cc.Continue:
		return bounded(g.model.InstrCtl)
	case *cc.ExpiresStmt:
		c := bounded(2 * g.model.CheckpointCost(0)).plus(g.stmtCost(st.Body))
		if st.Catch != nil {
			c = maxCost(c, g.stmtCost(st.Catch))
		}
		return c
	case *cc.TimelyStmt:
		c := g.exprCost(st.Deadline).
			plus(bounded(2 * g.model.CheckpointCost(0))).
			plus(g.stmtCost(st.Body))
		if st.Else != nil {
			c = maxCost(c, g.stmtCost(st.Else))
		}
		return c
	}
	return bounded(0)
}

func (g *gapAnalyzer) exprCost(e cc.Expr) cost {
	switch x := e.(type) {
	case nil:
		return bounded(0)
	case *cc.NumLit:
		return bounded(g.model.Instr)
	case *cc.VarRef:
		if x.Sym != nil && x.Sym.Kind == cc.SymGlobal {
			return bounded(g.model.InstrMem + g.model.NVReadPerWord)
		}
		return bounded(g.model.InstrMem)
	case *cc.Unary:
		return g.exprCost(x.X).plus(bounded(g.model.Instr))
	case *cc.Binary:
		return g.exprCost(x.L).plus(g.exprCost(x.R)).plus(bounded(g.model.Instr))
	case *cc.Index:
		c := g.exprCost(x.Base).plus(g.exprCost(x.Idx)).plus(bounded(g.model.Instr))
		return c.plus(bounded(g.model.InstrMem + g.model.NVReadPerWord))
	case *cc.Cond:
		c := g.exprCost(x.C).plus(bounded(g.model.InstrCtl))
		return c.plus(maxCost(g.exprCost(x.T), g.exprCost(x.F)))
	case *cc.IncDec:
		return g.exprCost(x.X).plus(bounded(g.model.Instr + g.model.InstrMem + g.model.NVWritePerWord + g.model.UndoLogEntry))
	case *cc.AssignExpr:
		c := g.exprCost(x.R)
		if x.Op != cc.Assign && x.Op != cc.AtAssign {
			c = c.plus(g.exprCost(x.L)).plus(bounded(g.model.Instr))
		}
		// Inside an atomic region every NV store is undo-logged; charge the
		// worst case unconditionally.
		c = c.plus(bounded(g.model.InstrMem + g.model.NVWritePerWord + g.model.PtrCheck + g.model.UndoLogEntry))
		if x.Op == cc.AtAssign {
			c = c.plus(bounded(g.model.TimestampWrite))
		}
		return c
	case *cc.Call:
		c := bounded(0)
		for _, a := range x.Args {
			c = c.plus(g.exprCost(a))
		}
		switch x.Builtin {
		case cc.BSense:
			return c.plus(bounded(g.model.TrapBase + g.model.SenseExtra))
		case cc.BSend:
			return c.plus(bounded(g.model.TrapBase + g.model.SendExtra))
		case cc.BOut, cc.BMark:
			return c.plus(bounded(g.model.TrapBase))
		case cc.BNow:
			return c.plus(bounded(g.model.TrapBase + g.model.TimeRead))
		case cc.BCheckpoint:
			return c.plus(bounded(g.model.TrapBase + g.model.CheckpointCost(0)))
		case cc.BTransitionTo:
			return c.plus(bounded(g.model.TrapBase))
		}
		return c.plus(bounded(g.model.InstrCtl + g.model.StackGrow + g.model.StackShrink)).
			plus(g.funcCost(x.Name))
	}
	return bounded(0)
}

// funcCost is the memoized worst-case cost of one whole function call.
func (g *gapAnalyzer) funcCost(name string) cost {
	if c, ok := g.fnCost[name]; ok {
		return c
	}
	fn, ok := g.funcs[name]
	if !ok {
		return bounded(0)
	}
	if g.inProgress[name] {
		return unboundedCost(fmt.Sprintf("calls into recursion cycle through '%s'", name))
	}
	g.inProgress[name] = true
	c := g.stmtCost(fn.Body)
	g.inProgress[name] = false
	g.fnCost[name] = c
	return c
}

// ---- Loop-bound inference ----

// evalConst folds an expression made of literals and arithmetic.
func evalConst(e cc.Expr) (int64, bool) {
	switch x := e.(type) {
	case *cc.NumLit:
		return x.Val, true
	case *cc.Unary:
		v, ok := evalConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case cc.Minus:
			return -v, true
		case cc.Tilde:
			return ^v, true
		case cc.Bang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *cc.Binary:
		l, ok1 := evalConst(x.L)
		r, ok2 := evalConst(x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case cc.Plus:
			return l + r, true
		case cc.Minus:
			return l - r, true
		case cc.Star:
			return l * r, true
		case cc.Slash:
			if r != 0 {
				return l / r, true
			}
		case cc.Shl:
			if r >= 0 && r < 63 {
				return l << uint(r), true
			}
		case cc.Shr:
			if r >= 0 && r < 63 {
				return l >> uint(r), true
			}
		}
	}
	return 0, false
}

// sameVar reports whether e is a reference to the named variable.
func sameVar(e cc.Expr, name string) bool {
	v, ok := e.(*cc.VarRef)
	return ok && v.Name == name
}

// forBound infers the trip count of a counted for-loop:
// `for (v = c0; v < c1; v++/v += k)` and the <=, >, >=, != variants.
func forBound(st *cc.For) (int64, bool) {
	as, ok := st.Init.(*cc.AssignExpr)
	if !ok || as.Op != cc.Assign {
		return 0, false
	}
	v, ok := as.L.(*cc.VarRef)
	if !ok {
		return 0, false
	}
	c0, ok := evalConst(as.R)
	if !ok {
		return 0, false
	}
	cond, ok := st.Cond.(*cc.Binary)
	if !ok || !sameVar(cond.L, v.Name) {
		return 0, false
	}
	c1, ok := evalConst(cond.R)
	if !ok {
		return 0, false
	}
	step, ok := stepOf(st.Post, v.Name)
	if !ok || step == 0 {
		return 0, false
	}
	var span int64
	switch cond.Op {
	case cc.Lt:
		span = c1 - c0
	case cc.Le:
		span = c1 - c0 + 1
	case cc.Gt:
		span = c0 - c1
	case cc.Ge:
		span = c0 - c1 + 1
	case cc.NotEq:
		span = c1 - c0
		if span < 0 {
			span = -span
		}
	default:
		return 0, false
	}
	if step < 0 {
		step = -step
	}
	if span <= 0 {
		return 0, true
	}
	return (span + step - 1) / step, true
}

// stepOf extracts the per-iteration step from a loop post expression:
// v++, v--, v += k, v -= k, v = v + k, v = v - k.
func stepOf(post cc.Expr, name string) (int64, bool) {
	switch x := post.(type) {
	case *cc.IncDec:
		if !sameVar(x.X, name) {
			return 0, false
		}
		if x.Op == cc.PlusPlus {
			return 1, true
		}
		return -1, true
	case *cc.AssignExpr:
		if !sameVar(x.L, name) {
			return 0, false
		}
		switch x.Op {
		case cc.PlusAssign:
			return evalConst(x.R)
		case cc.MinusAssign:
			k, ok := evalConst(x.R)
			return -k, ok
		case cc.Assign:
			b, ok := x.R.(*cc.Binary)
			if !ok || !sameVar(b.L, name) {
				return 0, false
			}
			k, okc := evalConst(b.R)
			if !okc {
				return 0, false
			}
			switch b.Op {
			case cc.Plus:
				return k, true
			case cc.Minus:
				return -k, true
			}
		}
	}
	return 0, false
}

// whileBound infers a trip count for a while loop: either the loop is a
// shift-descent (`while (b …) { … b = b >> k; … }` — at most 32/k
// iterations can change a 32-bit value before it sticks at 0 or -1), or
// nothing is known.
func (g *gapAnalyzer) whileBound(st *cc.While) (int64, bool) {
	return shiftDescentBound(st.Cond, st.Body)
}

// shiftDescentBound recognizes loops controlled by a variable that the
// body right-shifts by a constant each iteration.
func shiftDescentBound(cond cc.Expr, body cc.Stmt) (int64, bool) {
	var ctrl []string
	walkExpr(cond, func(sub cc.Expr) {
		if v, ok := sub.(*cc.VarRef); ok {
			ctrl = append(ctrl, v.Name)
		}
	})
	for _, name := range ctrl {
		if k, ok := findShiftStep(body, name); ok && k > 0 {
			return 32/k + 2, true
		}
	}
	return 0, false
}

// findShiftStep looks for `name = name >> k` or `name >>= k` anywhere in
// the loop body.
func findShiftStep(s cc.Stmt, name string) (int64, bool) {
	var step int64
	found := false
	var walkStmt func(cc.Stmt)
	check := func(e cc.Expr) {
		walkExpr(e, func(sub cc.Expr) {
			as, ok := sub.(*cc.AssignExpr)
			if !ok || !sameVar(as.L, name) {
				return
			}
			switch as.Op {
			case cc.ShrAssign:
				if k, okc := evalConst(as.R); okc {
					step, found = k, true
				}
			case cc.Assign:
				if b, okb := as.R.(*cc.Binary); okb && b.Op == cc.Shr && sameVar(b.L, name) {
					if k, okc := evalConst(b.R); okc {
						step, found = k, true
					}
				}
			}
		})
	}
	walkStmt = func(s cc.Stmt) {
		switch st := s.(type) {
		case *cc.Block:
			for _, sub := range st.Stmts {
				walkStmt(sub)
			}
		case *cc.ExprStmt:
			check(st.X)
		case *cc.If:
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *cc.While:
			walkStmt(st.Body)
		case *cc.DoWhile:
			walkStmt(st.Body)
		case *cc.For:
			walkStmt(st.Body)
		case *cc.Switch:
			for gi := range st.Groups {
				for _, sub := range st.Groups[gi].Stmts {
					walkStmt(sub)
				}
			}
		}
	}
	walkStmt(s)
	return step, found
}
