package analysis

// BitSet is a dense bit vector used as the dataflow fact domain.
type BitSet []uint64

// NewBitSet returns a set able to hold n facts.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds fact i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes fact i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether fact i is present.
func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// OrInto unions other into s and reports whether s changed.
func (s BitSet) OrInto(other BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] | other[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with other.
func (s BitSet) Copy(other BitSet) { copy(s, other) }

// AndNot removes other's facts from s.
func (s BitSet) AndNot(other BitSet) {
	for i := range s {
		s[i] &^= other[i]
	}
}

// Eq reports whether two sets hold the same facts.
func (s BitSet) Eq(other BitSet) bool {
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Loc is a byte interval [Lo, Hi) in the globals space — the granularity
// at which the analyses track non-volatile state.
type Loc struct {
	Lo, Hi uint32
}

// Overlaps reports whether two locations share at least one byte.
func (l Loc) Overlaps(m Loc) bool { return l.Lo < m.Hi && m.Lo < l.Hi }

// Covers reports whether l contains all of m.
func (l Loc) Covers(m Loc) bool { return l.Lo <= m.Lo && m.Hi <= l.Hi }

// Def is one definition (store) of a non-volatile location.
type Def struct {
	ID    int // dense index, position in the defs slice
	Block int // block ID containing the store
	Instr int // instruction index of the store
	Loc   Loc
}

// ReachingResult holds the fixpoint of a reaching-definitions problem:
// In[b]/Out[b] are the definitions reaching block b's entry/exit.
type ReachingResult struct {
	Defs []Def
	In   []BitSet
	Out  []BitSet
}

// SolveReaching computes reaching definitions (forward, may) over the CFG
// for the given definitions. A definition kills another only when its
// location fully covers the other's — partial overwrites leave the old
// definition live, which is conservative in the right direction for
// hazard detection.
func SolveReaching(cfg *CFG, defs []Def) *ReachingResult {
	nb := len(cfg.Blocks)
	nd := len(defs)
	gen := make([]BitSet, nb)
	kill := make([]BitSet, nb)
	for i := 0; i < nb; i++ {
		gen[i] = NewBitSet(nd)
		kill[i] = NewBitSet(nd)
	}
	// Within a block, later stores kill earlier ones; Gen keeps the last
	// covering definition of each location.
	byBlock := make([][]Def, nb)
	for _, d := range defs {
		byBlock[d.Block] = append(byBlock[d.Block], d)
	}
	for b := 0; b < nb; b++ {
		ds := byBlock[b]
		for i, d := range ds {
			survives := true
			for _, later := range ds[i+1:] {
				if later.Loc.Covers(d.Loc) {
					survives = false
					break
				}
			}
			if survives {
				gen[b].Set(d.ID)
			}
			for _, other := range defs {
				if other.ID != d.ID && d.Loc.Covers(other.Loc) {
					kill[b].Set(other.ID)
				}
			}
		}
	}

	res := &ReachingResult{Defs: defs, In: make([]BitSet, nb), Out: make([]BitSet, nb)}
	for i := 0; i < nb; i++ {
		res.In[i] = NewBitSet(nd)
		res.Out[i] = NewBitSet(nd)
		res.Out[i].Copy(gen[i])
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.RPO() {
			in := NewBitSet(nd)
			for _, p := range b.Preds {
				in.OrInto(res.Out[p.ID])
			}
			if !in.Eq(res.In[b.ID]) {
				res.In[b.ID].Copy(in)
			}
			out := NewBitSet(nd)
			out.Copy(in)
			out.AndNot(kill[b.ID])
			out.OrInto(gen[b.ID])
			if !out.Eq(res.Out[b.ID]) {
				res.Out[b.ID].Copy(out)
				changed = true
			}
		}
	}
	return res
}

// LiveResult holds the fixpoint of a liveness problem over a caller-chosen
// fact universe (typically one fact per tracked location).
type LiveResult struct {
	In  []BitSet // live at block entry
	Out []BitSet // live at block exit
}

// SolveLive computes liveness (backward, may) given per-block Use (read
// before any overwrite in the block) and Def (overwritten) sets over a
// universe of n facts.
func SolveLive(cfg *CFG, use, def []BitSet, n int) *LiveResult {
	nb := len(cfg.Blocks)
	res := &LiveResult{In: make([]BitSet, nb), Out: make([]BitSet, nb)}
	for i := 0; i < nb; i++ {
		res.In[i] = NewBitSet(n)
		res.Out[i] = NewBitSet(n)
	}
	rpo := cfg.RPO()
	for changed := true; changed; {
		changed = false
		// Postorder (reverse of RPO) converges fastest for backward problems.
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := NewBitSet(n)
			for _, s := range b.Succs {
				out.OrInto(res.In[s.ID])
			}
			res.Out[b.ID].Copy(out)
			in := NewBitSet(n)
			in.Copy(out)
			in.AndNot(def[b.ID])
			in.OrInto(use[b.ID])
			if !in.Eq(res.In[b.ID]) {
				res.In[b.ID].Copy(in)
				changed = true
			}
		}
	}
	return res
}
