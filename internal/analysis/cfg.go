package analysis

import (
	"repro/internal/cc"
	"repro/internal/isa"
)

// Block is a basic block of a function's bytecode: a maximal straight-line
// run of instructions with one entry (the leader) and one exit.
type Block struct {
	ID    int
	Start int // first instruction index (inclusive)
	End   int // last instruction index (exclusive)
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one compiled function. Blocks[0] is the
// entry block. Branch targets are resolved from the pre-link encoding,
// where every branch immediate is a function-relative byte offset.
type CFG struct {
	Fn     *cc.Func
	Blocks []*Block
	// Idom[b] is the immediate dominator's block ID (Idom[0] == 0).
	// Unreachable blocks have Idom -1.
	Idom []int
	// rpo is a reverse-postorder sequence of reachable blocks.
	rpo []*Block
}

func isBranchOp(op isa.Op) bool {
	switch op {
	case isa.Jmp, isa.Jz, isa.Jnz, isa.ExpBegin, isa.ExpCatch, isa.Timely:
		return true
	}
	return false
}

func isTerminator(op isa.Op) bool {
	return isBranchOp(op) || op == isa.Leave || op == isa.Halt
}

// BuildCFG partitions fn's code into basic blocks and computes dominators.
// It works on pre-link code: branch immediates must still be
// function-relative byte offsets (compile with plain/uninstrumented output,
// or any pre-Link stage).
func BuildCFG(fn *cc.Func) *CFG {
	n := len(fn.Code)
	// Instruction byte offsets, and the offset→index map for branch targets.
	off := make([]int, n+1)
	idxAt := make(map[int]int, n)
	for i, in := range fn.Code {
		idxAt[off[i]] = i
		off[i+1] = off[i] + in.Size()
	}
	branchReloc := make(map[int]bool)
	for _, r := range fn.Relocs {
		if r.Kind == cc.RelocBranch {
			branchReloc[r.Instr] = true
		}
	}
	target := func(i int) (int, bool) {
		if !branchReloc[i] {
			return 0, false
		}
		t, ok := idxAt[int(fn.Code[i].Imm)]
		return t, ok
	}

	// Leaders: entry, every branch target, every instruction after a
	// terminator.
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range fn.Code {
		if isBranchOp(in.Op) {
			if t, ok := target(i); ok {
				leader[t] = true
			}
		}
		if isTerminator(in.Op) && i+1 < n {
			leader[i+1] = true
		}
	}

	cfg := &CFG{Fn: fn}
	blockAt := make([]*Block, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := &Block{ID: len(cfg.Blocks), Start: i, End: j}
		cfg.Blocks = append(cfg.Blocks, b)
		for k := i; k < j; k++ {
			blockAt[k] = b
		}
		i = j
	}

	addEdge := func(from, to *Block) {
		for _, s := range from.Succs {
			if s == to {
				return
			}
		}
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	for _, b := range cfg.Blocks {
		last := fn.Code[b.End-1]
		switch {
		case last.Op == isa.Jmp:
			if t, ok := target(b.End - 1); ok {
				addEdge(b, blockAt[t])
			}
		case isBranchOp(last.Op):
			// Conditional branches (including ExpBegin's catch edge and
			// Timely's else edge) fall through and may jump.
			if b.End < n {
				addEdge(b, blockAt[b.End])
			}
			if t, ok := target(b.End - 1); ok {
				addEdge(b, blockAt[t])
			}
		case last.Op == isa.Leave || last.Op == isa.Halt:
			// Function exit: no successors.
		default:
			if b.End < n {
				addEdge(b, blockAt[b.End])
			}
		}
	}

	cfg.computeRPO()
	cfg.computeDominators()
	return cfg
}

// computeRPO fills cfg.rpo with reachable blocks in reverse postorder.
func (c *CFG) computeRPO() {
	if len(c.Blocks) == 0 {
		return
	}
	seen := make([]bool, len(c.Blocks))
	var post []*Block
	// Iterative DFS to keep the fuzzer happy on pathological inputs.
	type frame struct {
		b *Block
		i int
	}
	stack := []frame{{c.Blocks[0], 0}}
	seen[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.b.Succs) {
			s := f.b.Succs[f.i]
			f.i++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	c.rpo = make([]*Block, len(post))
	for i, b := range post {
		c.rpo[len(post)-1-i] = b
	}
}

// RPO returns the reachable blocks in reverse postorder (entry first).
func (c *CFG) RPO() []*Block { return c.rpo }

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm
// over the reverse postorder. It handles irreducible graphs (e.g. loops
// entered through a switch fallthrough).
func (c *CFG) computeDominators() {
	c.Idom = make([]int, len(c.Blocks))
	for i := range c.Idom {
		c.Idom[i] = -1
	}
	if len(c.rpo) == 0 {
		return
	}
	rpoNum := make([]int, len(c.Blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range c.rpo {
		rpoNum[b.ID] = i
	}
	entry := c.rpo[0]
	c.Idom[entry.ID] = entry.ID
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = c.Idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = c.Idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.rpo[1:] {
			newIdom := -1
			for _, p := range b.Preds {
				if rpoNum[p.ID] < 0 || c.Idom[p.ID] < 0 {
					continue // unreachable or unprocessed predecessor
				}
				if newIdom < 0 {
					newIdom = p.ID
				} else {
					newIdom = intersect(newIdom, p.ID)
				}
			}
			if newIdom >= 0 && c.Idom[b.ID] != newIdom {
				c.Idom[b.ID] = newIdom
				changed = true
			}
		}
	}
}

// Dominates reports whether block a dominates block b (both reachable).
func (c *CFG) Dominates(a, b int) bool {
	if c.Idom[b] < 0 || c.Idom[a] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == c.Idom[b] { // entry
			return false
		}
		b = c.Idom[b]
	}
}

// BackEdges returns the (tail, head) block-ID pairs where head dominates
// tail — the natural-loop back edges. Edges into a loop entered some other
// way (irreducible) are not returned; IsReducible exposes that.
func (c *CFG) BackEdges() [][2]int {
	var out [][2]int
	for _, b := range c.rpo {
		for _, s := range b.Succs {
			if c.Dominates(s.ID, b.ID) {
				out = append(out, [2]int{b.ID, s.ID})
			}
		}
	}
	return out
}

// IsReducible reports whether every retreating edge is a back edge (head
// dominates tail). A switch whose cases fall through into a loop body can
// produce an irreducible region; the dataflow solvers still converge, but
// natural-loop-based reasoning must not be trusted there.
func (c *CFG) IsReducible() bool {
	rpoNum := make([]int, len(c.Blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range c.rpo {
		rpoNum[b.ID] = i
	}
	for _, b := range c.rpo {
		for _, s := range b.Succs {
			if rpoNum[s.ID] >= 0 && rpoNum[s.ID] <= rpoNum[b.ID] && !c.Dominates(s.ID, b.ID) {
				return false
			}
		}
	}
	return true
}
