package analysis

import (
	"repro/internal/cc"
	"repro/internal/energy"
)

// Options configures an analysis run.
type Options struct {
	// StackBytes is the working-stack capacity used by the stack-bound
	// pass (TV007). Zero selects the runtime default of 2048 bytes.
	StackBytes int
	// GapBudgetCycles is the capacitor budget, in cycle-equivalents, that
	// an atomic region must fit within (TV008). Zero disables the budget
	// comparison; structural (unbounded-region) checking always runs.
	GapBudgetCycles int64
	// Model is the cost model for the checkpoint-gap pass; nil selects
	// the calibrated default.
	Model *energy.CostModel
}

// DefaultStackBytes mirrors the runtime's default working-stack arena.
const DefaultStackBytes = 2048

// AnalyzeSource parses, type-checks, compiles, and analyzes a TICS-C
// program, returning all diagnostics sorted by source position. A non-nil
// error means the program did not compile (use FormatError to render it);
// diagnostics are only produced for valid programs.
func AnalyzeSource(src string, opts Options) ([]Diagnostic, error) {
	if opts.StackBytes <= 0 {
		opts.StackBytes = DefaultStackBytes
	}
	model := energy.Default()
	if opts.Model != nil {
		model = *opts.Model
	}

	f, err := cc.Parse(src)
	if err != nil {
		return nil, err
	}
	unit, err := cc.Analyze(f)
	if err != nil {
		return nil, err
	}
	// Compile without optimization so every instruction keeps a faithful
	// source position, and without instrumentation so checkpoint placement
	// reflects the program text, not a runtime policy.
	prog, err := cc.Compile(src, cc.Options{OptLevel: 0})
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	diags = append(diags, runWAR(prog)...)
	diags = append(diags, runLints(unit)...)
	diags = append(diags, runStack(unit, prog, opts.StackBytes)...)
	diags = append(diags, runGap(unit, opts.GapBudgetCycles, model)...)
	sortDiags(diags)
	return diags, nil
}
