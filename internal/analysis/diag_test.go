package analysis

import (
	"strings"
	"testing"

	"repro/internal/cc"
)

// fixtureDiags is a deliberately shuffled multi-unit diagnostic set:
// two labels, interleaved lines, two codes on one line.
func fixtureDiags() []Labeled {
	mk := func(label string, code Code, sev Severity, line, col int, fn, global, msg string) Labeled {
		return Labeled{Label: label, Diagnostic: Diagnostic{
			Code: code, Severity: sev, Pos: cc.Pos{Line: line, Col: col},
			Line: line, Col: col, Func: fn, Global: global, Msg: msg,
		}}
	}
	return []Labeled{
		mk("b.c", CodeManualPair, Warn, 12, 9, "main", "data_ts", "pair store"),
		mk("a.c", CodeWAR, Info, 9, 9, "main", "total", "war hazard"),
		mk("b.c", CodeUnguardedSend, Warn, 8, 5, "main", "sample", "unguarded send"),
		mk("a.c", CodeStaleTimestamp, Warn, 9, 9, "main", "total", "plain store"),
		mk("a.c", CodeCheckpointGap, Error, 3, 1, "", "", "region unbounded"),
	}
}

// TestWriteTextGolden pins the one shared text formatter ticsvet, ticsc
// and ticsmc print diagnostics through. Any drift here changes every
// tool's output at once and must be deliberate.
func TestWriteTextGolden(t *testing.T) {
	var sb strings.Builder
	for _, d := range fixtureDiags()[:2] {
		WriteText(&sb, d.Label, []Diagnostic{d.Diagnostic})
	}
	got := sb.String()
	want := "b.c:12:9: warn [TV004] main: pair store\n" +
		"a.c:9:9: info [TV001] main: war hazard\n"
	if got != want {
		t.Errorf("WriteText drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSONLabeledGolden pins the machine-readable format and its
// stable (label, line, col, code) order: the fixture arrives shuffled
// and must serialize sorted, byte-identically.
func TestWriteJSONLabeledGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSONLabeled(&sb, fixtureDiags()); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "label": "a.c",
    "code": "TV008",
    "severity": "error",
    "line": 3,
    "col": 1,
    "msg": "region unbounded"
  },
  {
    "label": "a.c",
    "code": "TV001",
    "severity": "info",
    "line": 9,
    "col": 9,
    "func": "main",
    "global": "total",
    "msg": "war hazard"
  },
  {
    "label": "a.c",
    "code": "TV003",
    "severity": "warn",
    "line": 9,
    "col": 9,
    "func": "main",
    "global": "total",
    "msg": "plain store"
  },
  {
    "label": "b.c",
    "code": "TV002",
    "severity": "warn",
    "line": 8,
    "col": 5,
    "func": "main",
    "global": "sample",
    "msg": "unguarded send"
  },
  {
    "label": "b.c",
    "code": "TV004",
    "severity": "warn",
    "line": 12,
    "col": 9,
    "func": "main",
    "global": "data_ts",
    "msg": "pair store"
  }
]
`
	if sb.String() != want {
		t.Errorf("WriteJSONLabeled drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestWriteJSONEmpty: an empty diagnostic list must still be a valid
// (empty) JSON array, not "null" — consumers parse it unconditionally.
func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSONLabeled(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("empty list serialized as %q, want []", sb.String())
	}
}

// TestSortLabeledStable: diagnostics identical under the sort key keep
// their input order (SliceStable), so repeated runs cannot flip them.
func TestSortLabeledStable(t *testing.T) {
	ds := []Labeled{
		{Label: "x.c", Diagnostic: Diagnostic{Code: CodeWAR, Line: 1, Col: 1, Msg: "first"}},
		{Label: "x.c", Diagnostic: Diagnostic{Code: CodeWAR, Line: 1, Col: 1, Msg: "first"}},
	}
	ds[0].Global = "a"
	ds[1].Global = "b"
	SortLabeled(ds)
	if ds[0].Global != "a" || ds[1].Global != "b" {
		t.Errorf("equal-key diagnostics reordered: %q, %q", ds[0].Global, ds[1].Global)
	}
}
