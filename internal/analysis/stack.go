package analysis

import (
	"fmt"
	"strings"

	"repro/internal/cc"
)

// Stack-segment bound analysis (TV006/TV007).
//
// The TICS working stack lives in a fixed non-volatile arena; a call
// chain that outgrows it cannot be made safe by checkpointing — the
// segmented-stack runtime simply has nowhere to put the next frame.
// TV006 flags recursion cycles, where no static depth bound exists at
// all. TV007 computes the deepest acyclic call chain's frame demand
// (an optimistic lower bound: 4 bytes of return PC plus each frame's
// locals and worst-case operand stack) and errors when even that lower
// bound exceeds the configured stack capacity.

// runStack emits TV006 for every recursion cycle and, when the call
// graph is acyclic, TV007 if the worst-case chain cannot fit.
func runStack(unit *cc.Unit, prog *cc.Program, stackBytes int) []Diagnostic {
	var diags []Diagnostic
	cg := BuildCallGraph(prog)

	declPos := map[string]cc.Pos{}
	for _, fd := range unit.Funcs {
		declPos[fd.Name] = fd.P
	}

	cycles := cg.RecursiveComponents()
	for _, names := range cycles {
		cycle := strings.Join(names, " → ")
		if len(names) == 1 {
			cycle = names[0] + " → " + names[0]
		}
		diags = append(diags, Diagnostic{
			Code: CodeUnboundedRecursion, Severity: Warn,
			Pos:  declPos[names[0]],
			Func: names[0],
			Msg:  fmt.Sprintf("recursion cycle %s has no static depth bound; the working stack (%d bytes, non-volatile) can overflow regardless of checkpoint placement — convert to iteration or an explicit bounded worklist", cycle, stackBytes),
		})
	}

	// TV007 only when depth is statically bounded.
	if len(cycles) == 0 && prog.MainIndex >= 0 {
		need := make([]int, len(prog.Funcs))  // worst chain bytes from f down
		via := make([]int, len(prog.Funcs))   // callee achieving the worst chain
		done := make([]bool, len(prog.Funcs)) // memoized
		// Components are in reverse topological order: callees come first,
		// so a single sweep resolves every chain.
		for _, comp := range cg.Components {
			for _, f := range comp {
				best, bestVia := 0, -1
				for _, c := range cg.Callees[f] {
					if done[c] && need[c] > best {
						best, bestVia = need[c], c
					}
				}
				need[f] = 4 + prog.Funcs[f].FrameBytes() + best
				via[f] = bestVia
				done[f] = true
			}
		}
		if worst := need[prog.MainIndex]; worst > stackBytes {
			var chain []string
			for f := prog.MainIndex; f >= 0; f = via[f] {
				chain = append(chain, prog.Funcs[f].Name)
			}
			diags = append(diags, Diagnostic{
				Code: CodeStackOverflow, Severity: Error,
				Pos:  declPos[prog.Funcs[prog.MainIndex].Name],
				Func: prog.Funcs[prog.MainIndex].Name,
				Msg:  fmt.Sprintf("worst-case call chain %s needs at least %d bytes of working stack but only %d are provisioned; the non-volatile stack arena will overflow", strings.Join(chain, " → "), worst, stackBytes),
			})
		}
	}

	sortDiags(diags)
	return diags
}
