package analysis

import (
	"repro/internal/cc"
	"repro/internal/isa"
)

// This file recovers memory events (non-volatile reads and writes with
// their target intervals) from compiled bytecode by abstract
// interpretation of the operand stack. It runs on pre-link code, where a
// global address is a PushI carrying a RelocGlobal relocation.

type avKind uint8

const (
	avUnknown avKind = iota
	avConst          // compile-time constant
	avGlobal         // pointer into the globals space, value in [lo, hi]
	avStack          // pointer into the working stack (AddrL) — never a global
)

// aval is an abstract operand-stack value.
type aval struct {
	kind   avKind
	c      int32
	lo, hi uint32
	// wide marks a global pointer widened to its whole variable because an
	// index was not statically known.
	wide bool
}

func unknown() aval         { return aval{kind: avUnknown} }
func constVal(c int32) aval { return aval{kind: avConst, c: c} }

// widen expands a global pointer to the full extent of the variable
// containing it; a pointer outside every variable degrades to unknown.
func widen(prog *cc.Program, v aval) aval {
	g, ok := prog.GlobalAt(v.lo)
	if !ok {
		return unknown()
	}
	return aval{kind: avGlobal, lo: g.Offset, hi: g.Offset + uint32(g.Size) - 1, wide: true}
}

func addVals(prog *cc.Program, a, b aval) aval {
	switch {
	case a.kind == avConst && b.kind == avConst:
		return constVal(a.c + b.c)
	case a.kind == avGlobal && b.kind == avConst:
		return aval{kind: avGlobal, lo: a.lo + uint32(b.c), hi: a.hi + uint32(b.c), wide: a.wide}
	case b.kind == avGlobal && a.kind == avConst:
		return aval{kind: avGlobal, lo: b.lo + uint32(a.c), hi: b.hi + uint32(a.c), wide: b.wide}
	case a.kind == avGlobal:
		return widen(prog, a)
	case b.kind == avGlobal:
		return widen(prog, b)
	case a.kind == avStack || b.kind == avStack:
		return aval{kind: avStack}
	}
	return unknown()
}

func subVals(prog *cc.Program, a, b aval) aval {
	switch {
	case a.kind == avConst && b.kind == avConst:
		return constVal(a.c - b.c)
	case a.kind == avGlobal && b.kind == avConst:
		return aval{kind: avGlobal, lo: a.lo - uint32(b.c), hi: a.hi - uint32(b.c), wide: a.wide}
	case a.kind == avGlobal:
		return widen(prog, a)
	case a.kind == avStack:
		return aval{kind: avStack}
	}
	return unknown()
}

// joinVals merges the abstract values a parameter receives from two call
// sites (bottom is represented by callers passing ok=false separately).
func joinVals(prog *cc.Program, a, b aval) aval {
	if a == b {
		return a
	}
	if a.kind == avGlobal && b.kind == avGlobal {
		lo, hi := a.lo, a.hi
		if b.lo < lo {
			lo = b.lo
		}
		if b.hi > hi {
			hi = b.hi
		}
		ga, oka := prog.GlobalAt(lo)
		gb, okb := prog.GlobalAt(hi)
		if oka && okb && ga.Name == gb.Name {
			return aval{kind: avGlobal, lo: lo, hi: hi, wide: true}
		}
	}
	return unknown()
}

type evKind uint8

const (
	evRead evKind = iota
	evWrite
	evChkpt
	evCall
)

// memEvent is one analysis-relevant action of an instruction.
type memEvent struct {
	kind   evKind
	instr  int  // instruction index within the function
	loc    Loc  // globals-space interval, valid when known
	wide   bool // interval widened to the whole variable (index unknown)
	callee int  // for evCall
}

// funcEvents holds the per-block event streams of one function.
type funcEvents struct {
	cfg    *CFG
	blocks [][]memEvent
}

// extractEvents abstractly interprets every block of fn (operand stack
// only, starting empty at each block boundary — pops beyond that yield
// unknown) and emits the block's memory events. paramVals, when non-nil,
// supplies abstract values for fn's parameters (monomorphic call-site
// propagation). argsAt, when non-nil, receives the abstract argument
// values observed at each Call instruction.
func extractEvents(prog *cc.Program, fn *cc.Func, cfg *CFG,
	paramVals []aval, argsAt func(instr, callee int, args []aval)) *funcEvents {

	entryReloc := map[int]bool{}
	globalReloc := map[int]bool{}
	for _, r := range fn.Relocs {
		switch r.Kind {
		case cc.RelocFuncEntry:
			entryReloc[r.Instr] = true
		case cc.RelocGlobal:
			globalReloc[r.Instr] = true
		}
	}

	fe := &funcEvents{cfg: cfg, blocks: make([][]memEvent, len(cfg.Blocks))}
	for _, b := range cfg.Blocks {
		var stack []aval
		pop := func() aval {
			if len(stack) == 0 {
				return unknown()
			}
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return v
		}
		push := func(v aval) { stack = append(stack, v) }
		emit := func(e memEvent) { fe.blocks[b.ID] = append(fe.blocks[b.ID], e) }

		for i := b.Start; i < b.End; i++ {
			in := fn.Code[i]
			op := isa.Unlogged(in.Op) // accept instrumented code too
			switch op {
			case isa.PushI:
				if globalReloc[i] {
					push(aval{kind: avGlobal, lo: uint32(in.Imm), hi: uint32(in.Imm)})
				} else {
					push(constVal(in.Imm))
				}
			case isa.Dup:
				if len(stack) > 0 {
					push(stack[len(stack)-1])
				} else {
					push(unknown())
				}
			case isa.Drop:
				pop()
			case isa.Swap:
				if len(stack) >= 2 {
					stack[len(stack)-1], stack[len(stack)-2] = stack[len(stack)-2], stack[len(stack)-1]
				}
			case isa.LoadG, isa.LoadGB:
				size := uint32(4)
				if op == isa.LoadGB {
					size = 1
				}
				if globalReloc[i] {
					emit(memEvent{kind: evRead, instr: i,
						loc: Loc{uint32(in.Imm), uint32(in.Imm) + size}})
				}
				push(unknown())
			case isa.StoreG, isa.StoreGB:
				size := uint32(4)
				if op == isa.StoreGB {
					size = 1
				}
				pop()
				if globalReloc[i] {
					emit(memEvent{kind: evWrite, instr: i,
						loc: Loc{uint32(in.Imm), uint32(in.Imm) + size}})
				}
			case isa.LoadL:
				v := unknown()
				if paramVals != nil && in.Imm >= 8 && (in.Imm-8)%4 == 0 {
					if j := int(in.Imm-8) / 4; j < len(paramVals) {
						v = paramVals[j]
					}
				}
				push(v)
			case isa.StoreL:
				pop()
			case isa.AddrL:
				push(aval{kind: avStack})
			case isa.LoadI, isa.LoadIB:
				size := uint32(4)
				if op == isa.LoadIB {
					size = 1
				}
				a := pop()
				if a.kind == avGlobal {
					emit(memEvent{kind: evRead, instr: i, wide: a.wide,
						loc: Loc{a.lo, a.hi + size}})
				}
				push(unknown())
			case isa.StoreI, isa.StoreIB:
				size := uint32(4)
				if op == isa.StoreIB {
					size = 1
				}
				pop() // value
				a := pop()
				if a.kind == avGlobal {
					emit(memEvent{kind: evWrite, instr: i, wide: a.wide,
						loc: Loc{a.lo, a.hi + size}})
				}
			case isa.Add:
				b2 := pop()
				a2 := pop()
				push(addVals(prog, a2, b2))
			case isa.Sub:
				b2 := pop()
				a2 := pop()
				push(subVals(prog, a2, b2))
			case isa.Mul, isa.Div, isa.Mod, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr,
				isa.CmpEq, isa.CmpNe, isa.CmpLt, isa.CmpLe, isa.CmpGt, isa.CmpGe,
				isa.CmpLtU, isa.CmpLeU, isa.CmpGtU, isa.CmpGeU:
				b2 := pop()
				a2 := pop()
				if a2.kind == avConst && b2.kind == avConst {
					if v, ok := foldALU(op, a2.c, b2.c); ok {
						push(constVal(v))
						continue
					}
				}
				if a2.kind == avStack || b2.kind == avStack {
					push(aval{kind: avStack})
				} else {
					push(unknown())
				}
			case isa.Neg, isa.Not, isa.LNot:
				v := pop()
				if v.kind == avConst {
					switch op {
					case isa.Neg:
						push(constVal(-v.c))
					case isa.Not:
						push(constVal(^v.c))
					default:
						if v.c == 0 {
							push(constVal(1))
						} else {
							push(constVal(0))
						}
					}
				} else {
					push(unknown())
				}
			case isa.Jz, isa.Jnz, isa.Timely, isa.SetRV, isa.Send, isa.SetTS:
				pop()
			case isa.Out:
				pop()
			case isa.ExpBegin, isa.ExpCatch:
				pop()
				pop()
			case isa.GetRV, isa.Sense, isa.Now:
				push(unknown())
			case isa.AddSP:
				for n := in.Imm / 4; n > 0; n-- {
					pop()
				}
			case isa.Call:
				if entryReloc[i] {
					callee := int(in.Imm)
					if callee >= 0 && callee < len(prog.Funcs) {
						if argsAt != nil {
							nargs := prog.Funcs[callee].NArgs
							args := make([]aval, nargs)
							for j := 0; j < nargs; j++ {
								// Arguments are pushed right-to-left: arg j is
								// j slots below the top.
								if idx := len(stack) - 1 - j; idx >= 0 {
									args[j] = stack[idx]
								} else {
									args[j] = unknown()
								}
							}
							argsAt(i, callee, args)
						}
						emit(memEvent{kind: evCall, instr: i, callee: callee})
					}
				}
			case isa.Chkpt:
				emit(memEvent{kind: evChkpt, instr: i})
			}
			// Jmp, Enter, Leave, Halt, Nop, Mark, CpDis, CpEn, ExpEnd,
			// TransTo: no operand-stack or event effect we track.
		}
	}
	return fe
}

// foldALU evaluates a binary ALU opcode over constants, mirroring the VM.
func foldALU(op isa.Op, a, b int32) (int32, bool) {
	bool2i := func(v bool) int32 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case isa.Mul:
		return a * b, true
	case isa.Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.Mod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.And:
		return a & b, true
	case isa.Or:
		return a | b, true
	case isa.Xor:
		return a ^ b, true
	case isa.Shl:
		return a << (uint32(b) & 31), true
	case isa.Shr:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case isa.CmpEq:
		return bool2i(a == b), true
	case isa.CmpNe:
		return bool2i(a != b), true
	case isa.CmpLt:
		return bool2i(a < b), true
	case isa.CmpLe:
		return bool2i(a <= b), true
	case isa.CmpGt:
		return bool2i(a > b), true
	case isa.CmpGe:
		return bool2i(a >= b), true
	case isa.CmpLtU:
		return bool2i(uint32(a) < uint32(b)), true
	case isa.CmpLeU:
		return bool2i(uint32(a) <= uint32(b)), true
	case isa.CmpGtU:
		return bool2i(uint32(a) > uint32(b)), true
	case isa.CmpGeU:
		return bool2i(uint32(a) >= uint32(b)), true
	}
	return 0, false
}
