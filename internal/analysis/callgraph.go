package analysis

import (
	"repro/internal/cc"
	"repro/internal/isa"
)

// CallSite is one static call: instruction at Instr in Caller's code,
// targeting function index Callee.
type CallSite struct {
	Caller int
	Instr  int
	Callee int
	Pos    cc.Pos
}

// CallGraph is the interprocedural call structure of a compiled program,
// built from the pre-link encoding where every Call immediate carries a
// RelocFuncEntry relocation whose value is the callee's function index.
type CallGraph struct {
	Prog  *cc.Program
	Sites []CallSite
	// Callees[f] lists the distinct function indices f calls.
	Callees [][]int
	// Callers[f] lists the distinct function indices calling f.
	Callers [][]int
	// SCC[f] is the strongly connected component ID of function f.
	// Components are numbered in reverse topological order: every callee's
	// component ID is <= its caller's, so iterating components 0..N-1
	// processes callees before callers.
	SCC []int
	// Components[c] lists the function indices in component c.
	Components [][]int
}

// BuildCallGraph extracts call edges and computes SCCs.
func BuildCallGraph(prog *cc.Program) *CallGraph {
	nf := len(prog.Funcs)
	g := &CallGraph{
		Prog:    prog,
		Callees: make([][]int, nf),
		Callers: make([][]int, nf),
		SCC:     make([]int, nf),
	}
	seen := make([]map[int]bool, nf)
	for fi, fn := range prog.Funcs {
		seen[fi] = map[int]bool{}
		entryReloc := map[int]bool{}
		for _, r := range fn.Relocs {
			if r.Kind == cc.RelocFuncEntry {
				entryReloc[r.Instr] = true
			}
		}
		for i, in := range fn.Code {
			if in.Op != isa.Call || !entryReloc[i] {
				continue
			}
			callee := int(in.Imm)
			if callee < 0 || callee >= nf {
				continue
			}
			var pos cc.Pos
			if i < len(fn.Poss) {
				pos = fn.Poss[i]
			}
			g.Sites = append(g.Sites, CallSite{Caller: fi, Instr: i, Callee: callee, Pos: pos})
			if !seen[fi][callee] {
				seen[fi][callee] = true
				g.Callees[fi] = append(g.Callees[fi], callee)
				g.Callers[callee] = append(g.Callers[callee], fi)
			}
		}
	}
	g.computeSCC()
	return g
}

// computeSCC runs Tarjan's algorithm iteratively. Tarjan emits components
// in reverse topological order of the condensation (callees first), which
// is exactly the order bottom-up summary computation wants.
func (g *CallGraph) computeSCC() {
	nf := len(g.Prog.Funcs)
	index := make([]int, nf)
	lowlink := make([]int, nf)
	onStack := make([]bool, nf)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type frame struct {
		v, i int
	}
	for root := 0; root < nf; root++ {
		if index[root] >= 0 {
			continue
		}
		work := []frame{{root, 0}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.i < len(g.Callees[v]) {
				w := g.Callees[v][f.i]
				f.i++
				if index[w] < 0 {
					index[w], lowlink[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.SCC[w] = len(g.Components)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				g.Components = append(g.Components, comp)
			}
		}
	}
}

// RecursiveComponents returns the components forming recursion cycles:
// those with more than one function, or a single function that calls
// itself. Each is returned as a list of function names tracing the cycle.
func (g *CallGraph) RecursiveComponents() [][]string {
	var out [][]string
	for _, comp := range g.Components {
		recursive := len(comp) > 1
		if !recursive {
			f := comp[0]
			for _, c := range g.Callees[f] {
				if c == f {
					recursive = true
					break
				}
			}
		}
		if !recursive {
			continue
		}
		names := make([]string, len(comp))
		for i, f := range comp {
			names[i] = g.Prog.Funcs[f].Name
		}
		out = append(out, names)
	}
	return out
}

// InRecursiveComponent reports whether function f participates in a
// recursion cycle.
func (g *CallGraph) InRecursiveComponent(f int) bool {
	comp := g.Components[g.SCC[f]]
	if len(comp) > 1 {
		return true
	}
	for _, c := range g.Callees[f] {
		if c == f {
			return true
		}
	}
	return false
}

// ReachableFromMain returns the set of function indices reachable from the
// program entry.
func (g *CallGraph) ReachableFromMain() []bool {
	reach := make([]bool, len(g.Prog.Funcs))
	if g.Prog.MainIndex < 0 || g.Prog.MainIndex >= len(reach) {
		return reach
	}
	reach[g.Prog.MainIndex] = true
	stack := []int{g.Prog.MainIndex}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Callees[v] {
			if !reach[w] {
				reach[w] = true
				stack = append(stack, w)
			}
		}
	}
	return reach
}
