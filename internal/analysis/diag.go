// Package analysis is the static analyzer behind ticsvet: a dataflow
// framework over the TICS-C AST and the compiled internal/isa bytecode
// (control-flow graphs with dominators, reaching definitions, liveness,
// and an interprocedural call graph), plus a suite of intermittence
// hazard passes. Where internal/audit proves a *run* violated the
// intermittent-computing consistency conditions, this package proves the
// *program* can violate them — at compile time, before any trace exists.
//
// Every finding carries a stable diagnostic code (TV001…); LANGUAGE.md's
// Diagnostics section lists each code with a minimal trigger example.
package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/cc"
)

// Code identifies a diagnostic class. Codes are stable across releases:
// tools and golden files key on them.
type Code string

const (
	// CodeWAR: a non-volatile global is read and then written between two
	// guaranteed checkpoint boundaries. Re-execution after a power failure
	// replays the write against the already-updated value — the classic
	// idempotency (WAR) violation. Under TICS the undo log must cover the
	// store; under Mementos with VersionGlobals=false the location is
	// silently corrupted (Table 1).
	CodeWAR Code = "TV001"
	// CodeUnguardedSend: send()/out() transmits data read from an
	// @expires_after-annotated global on a path with no enclosing
	// @expires/@timely guard, so the deadline can lapse (across a power
	// outage) and stale data leaves the device.
	CodeUnguardedSend Code = "TV002"
	// CodeStaleTimestamp: an @expires_after-annotated global is written
	// with a plain store instead of @=, leaving its shadow timestamp
	// stale — freshness checks then judge the new value by the old
	// value's age.
	CodeStaleTimestamp Code = "TV003"
	// CodeManualPair: a data/timestamp pair is updated by two separate
	// stores (a now() store adjacent to a data store). A power failure
	// between the two misaligns them (Figure 3c); @expires_after plus @=
	// makes the pair atomic.
	CodeManualPair Code = "TV004"
	// CodeManualTimely: an ordinary branch condition reads the volatile
	// clock (now()). A checkpoint between condition evaluation and the
	// guarded effect lets re-execution take both arms (Figure 3b); @timely
	// re-evaluates the deadline after every restore.
	CodeManualTimely Code = "TV005"
	// CodeUnboundedRecursion: the call graph has a cycle, so the
	// worst-case working-stack depth is unbounded and no segment array
	// size can be proven sufficient.
	CodeUnboundedRecursion Code = "TV006"
	// CodeStackOverflow: even the optimistic (fragmentation-free) stack
	// bound of the deepest call chain exceeds the stack region, so the
	// program cannot run with the configured segment array.
	CodeStackOverflow Code = "TV007"
	// CodeCheckpointGap: the worst-case cycle cost between two adjacent
	// checkpoint opportunities (for TICS: through an atomic region, where
	// automatic checkpoints are disabled) exceeds the energy budget, or is
	// unbounded — the region can never complete on one charge, so the
	// program stops making forward progress (the ETAP non-termination
	// condition).
	CodeCheckpointGap Code = "TV008"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// Info marks a fact worth surfacing that a correctly configured
	// runtime handles (e.g. a WAR hazard covered by the TICS undo log).
	Info Severity = iota
	// Warn marks a hazard that fires under at least one supported
	// configuration.
	Warn
	// Error marks a program that cannot run correctly as configured.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	Pos      cc.Pos   `json:"-"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	// Func is the function the finding anchors to ("" for whole-program
	// findings).
	Func string `json:"func,omitempty"`
	// Global names the affected variable, when one is identifiable.
	Global string `json:"global,omitempty"`
	Msg    string `json:"msg"`
}

func (d Diagnostic) String() string {
	loc := fmt.Sprintf("%d:%d", d.Pos.Line, d.Pos.Col)
	if d.Func != "" {
		return fmt.Sprintf("%s: %s [%s] %s: %s", loc, d.Severity, d.Code, d.Func, d.Msg)
	}
	return fmt.Sprintf("%s: %s [%s] %s", loc, d.Severity, d.Code, d.Msg)
}

// sortDiags orders diagnostics by position, then code, for deterministic
// output (golden files depend on this).
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// MaxSeverity returns the highest severity among the diagnostics, or
// Info-1 when the list is empty.
func MaxSeverity(ds []Diagnostic) Severity {
	max := Severity(-1)
	for _, d := range ds {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// WriteText renders diagnostics one per line, prefixed with label (a file
// name or program name) when non-empty. This is the one diagnostic
// formatting path shared by ticsvet and ticsc.
func WriteText(w io.Writer, label string, ds []Diagnostic) {
	for _, d := range ds {
		if label != "" {
			fmt.Fprintf(w, "%s:%s\n", label, d.String())
		} else {
			fmt.Fprintln(w, d.String())
		}
	}
}

// Labeled pairs a diagnostic with the compilation unit (file or program
// name) it came from, for multi-unit output.
type Labeled struct {
	Label string `json:"label,omitempty"`
	Diagnostic
}

// LabelAll attaches one label to a unit's diagnostics and materializes
// the JSON-visible Line/Col fields from the parser position.
func LabelAll(label string, ds []Diagnostic) []Labeled {
	out := make([]Labeled, len(ds))
	for i, d := range ds {
		d.Line, d.Col = d.Pos.Line, d.Pos.Col
		out[i] = Labeled{Label: label, Diagnostic: d}
	}
	return out
}

// SortLabeled orders multi-unit diagnostics by (label, line, col, code,
// msg) — the stable order ticsvet -json and ticsmc emit, so output is
// diffable run to run regardless of unit order or map iteration inside
// the passes.
func SortLabeled(ds []Labeled) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}

// WriteJSONLabeled renders already-labeled diagnostics (possibly from
// several units) as one sorted JSON array. An empty list still emits a
// valid empty array.
func WriteJSONLabeled(w io.Writer, ds []Labeled) error {
	SortLabeled(ds)
	if ds == nil {
		ds = []Labeled{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// WriteJSON renders one unit's diagnostics as a JSON array
// (machine-readable mode). Multi-unit callers should collect LabelAll
// results and emit a single WriteJSONLabeled array instead.
func WriteJSON(w io.Writer, label string, ds []Diagnostic) error {
	return WriteJSONLabeled(w, LabelAll(label, ds))
}

// FormatError renders any error — cc compile errors keep their position —
// in the same label:line:col shape as diagnostics, so ticsc and ticsvet
// report compile failures identically.
func FormatError(label string, err error) string {
	var ce *cc.Error
	if errors.As(err, &ce) && label != "" {
		return fmt.Sprintf("%s:%s: error: %s", label, ce.Pos, ce.Msg)
	}
	if label != "" {
		return fmt.Sprintf("%s: error: %v", label, err)
	}
	return fmt.Sprintf("error: %v", err)
}
