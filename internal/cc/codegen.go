package cc

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// generate lowers an analyzed unit to relocatable bytecode.
func generate(unit *Unit, opts Options) (*Program, error) {
	if opts.StaticLocals && unit.HasRecursion {
		var names []string
		for _, fn := range unit.Funcs {
			if fn.Recursive {
				names = append(names, fn.Name)
			}
		}
		sort.Strings(names)
		return nil, fmt.Errorf("cc: static-locals mode (Chinchilla) cannot compile recursive functions: %v", names)
	}
	cg := &codegen{
		unit: unit,
		opts: opts,
		prog: &Program{
			FuncByName:   map[string]*Func{},
			OptLevel:     opts.OptLevel,
			StaticLocals: opts.StaticLocals,
			HasRecursion: unit.HasRecursion,
			UsesPointers: unit.UsesPointers,
			MainIndex:    unit.Main.Index,
		},
		globalInfo:  map[*GlobalDecl]int{},
		staticFrame: map[*Symbol]uint32{},
		staticSpan:  map[string][2]uint32{},
	}
	if err := cg.layoutGlobals(); err != nil {
		return nil, err
	}
	for _, fn := range unit.Funcs {
		f, err := cg.genFunc(fn)
		if err != nil {
			return nil, err
		}
		cg.prog.Funcs = append(cg.prog.Funcs, f)
		cg.prog.FuncByName[f.Name] = f
	}
	return cg.prog, nil
}

type codegen struct {
	unit *Unit
	opts Options
	prog *Program

	globalInfo  map[*GlobalDecl]int  // decl → index into prog.Globals
	staticFrame map[*Symbol]uint32   // static-locals mode: symbol → globals offset
	staticSpan  map[string][2]uint32 // static-locals mode: function → [base, end) in globals space

	// Per-function emission state.
	fn       *FuncDecl
	out      []isa.Instr
	poss     []Pos // source position of each emitted instruction
	curPos   Pos
	relocs   []Reloc
	labels   []int // label id → instruction index (-1 unbound)
	labelDep []int // label id → expected operand-stack depth (-1 unknown)
	boundAt  map[int]bool
	depth    int
	maxDepth int
	dead     bool
	epilogue int
	breakLbl []int
	contLbl  []int
}

// ---- Globals layout ----

func align4(n uint32) uint32 { return (n + 3) &^ 3 }

func (cg *codegen) layoutGlobals() error {
	var off uint32
	// Initialized globals first (.data).
	var image []byte
	add := func(g *GlobalDecl, init bool) {
		size := g.Type.Size()
		gi := GlobalInfo{
			Name:           g.Name,
			Offset:         off,
			Size:           size,
			ExpiresAfterMs: g.ExpiresAfterMs,
			ElemSize:       g.Type.Size(),
		}
		if g.Type.Kind == TArray {
			gi.ElemSize = g.Type.Elem.Size()
		}
		if init {
			buf := make([]byte, align4(uint32(size)))
			elem := g.Type
			if g.Type.Kind == TArray {
				elem = g.Type.Elem
			}
			for i, v := range g.Init {
				switch elem.Size() {
				case 1:
					buf[i] = byte(v)
				default:
					u := uint32(v)
					buf[4*i] = byte(u)
					buf[4*i+1] = byte(u >> 8)
					buf[4*i+2] = byte(u >> 16)
					buf[4*i+3] = byte(u >> 24)
				}
			}
			image = append(image, buf...)
		}
		off += align4(uint32(size))
		cg.globalInfo[g] = len(cg.prog.Globals)
		cg.prog.Globals = append(cg.prog.Globals, gi)
	}
	for _, g := range cg.unit.Globals {
		if len(g.Init) > 0 {
			add(g, true)
		}
	}
	cg.prog.DataBytes = off
	cg.prog.DataImage = image
	for _, g := range cg.unit.Globals {
		if len(g.Init) == 0 {
			add(g, false)
		}
	}
	// Shadow timestamp slots for annotated globals (.bss).
	for i := range cg.prog.Globals {
		gi := &cg.prog.Globals[i]
		if gi.ExpiresAfterMs < 0 {
			continue
		}
		n := 1
		if gi.ElemSize != gi.Size {
			n = gi.Size / gi.ElemSize
		}
		gi.TSOffset = off
		gi.TSCount = n
		off += uint32(4 * n)
	}
	// Static frames (Chinchilla mode).
	if cg.opts.StaticLocals {
		for _, fn := range cg.unit.Funcs {
			f := cg.prog.FuncByName[fn.Name] // not yet present; record on decl
			_ = f
			base := off
			for i := range fn.Params {
				sym := fn.Params[i].Sym
				cg.staticFrame[sym] = off
				off += align4(uint32(sym.Type.Size()))
			}
			collectLocals(fn.Body, func(d *LocalDecl) {
				cg.staticFrame[d.Sym] = off
				off += align4(uint32(d.Sym.Type.Size()))
			})
			cg.staticSpan[fn.Name] = [2]uint32{base, off}
		}
	}
	cg.prog.BSSBytes = off - cg.prog.DataBytes
	return nil
}

// collectLocals walks a statement tree calling fn for every declaration.
func collectLocals(s Stmt, fn func(*LocalDecl)) {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			collectLocals(sub, fn)
		}
	case *LocalDecl:
		fn(st)
	case *If:
		collectLocals(st.Then, fn)
		if st.Else != nil {
			collectLocals(st.Else, fn)
		}
	case *While:
		collectLocals(st.Body, fn)
	case *For:
		collectLocals(st.Body, fn)
	case *ExpiresStmt:
		collectLocals(st.Body, fn)
		if st.Catch != nil {
			collectLocals(st.Catch, fn)
		}
	case *TimelyStmt:
		collectLocals(st.Body, fn)
		if st.Else != nil {
			collectLocals(st.Else, fn)
		}
	case *DoWhile:
		collectLocals(st.Body, fn)
	case *Switch:
		for gi := range st.Groups {
			for _, sub := range st.Groups[gi].Stmts {
				collectLocals(sub, fn)
			}
		}
	}
}

// ---- Emission helpers ----

// stackPops/stackPushes give the static operand-stack effect of an opcode.
func stackEffect(op isa.Op) (pops, pushes int) {
	switch op {
	case isa.PushI, isa.AddrL, isa.GetRV, isa.Now, isa.LoadG, isa.LoadGB, isa.LoadL:
		return 0, 1
	case isa.Sense:
		return 0, 1
	case isa.Dup:
		return 1, 2
	case isa.Swap:
		return 2, 2
	case isa.Drop, isa.StoreG, isa.StoreGL, isa.StoreGB, isa.StoreGBL, isa.StoreL,
		isa.Jz, isa.Jnz, isa.SetRV, isa.Send, isa.SetTS, isa.Timely:
		return 1, 0
	case isa.Out:
		return 1, 0
	case isa.LoadI, isa.LoadIB, isa.Neg, isa.Not, isa.LNot:
		return 1, 1
	case isa.StoreI, isa.StoreIL, isa.StoreIB, isa.StoreIBL, isa.ExpBegin, isa.ExpCatch:
		return 2, 0
	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Mod, isa.And, isa.Or, isa.Xor,
		isa.Shl, isa.Shr, isa.CmpEq, isa.CmpNe, isa.CmpLt, isa.CmpLe, isa.CmpGt,
		isa.CmpGe, isa.CmpLtU, isa.CmpLeU, isa.CmpGtU, isa.CmpGeU:
		return 2, 1
	}
	return 0, 0
}

func (cg *codegen) emit(op isa.Op, imm int32) int {
	idx := len(cg.out)
	cg.out = append(cg.out, isa.Instr{Op: op, Imm: imm})
	cg.poss = append(cg.poss, cg.curPos)
	if cg.dead {
		return idx
	}
	pops, pushes := stackEffect(op)
	if op == isa.AddSP {
		pops, pushes = int(imm/4), 0
	}
	cg.depth -= pops
	if cg.depth < 0 {
		panic(fmt.Sprintf("cc: operand stack underflow in %s at instr %d (%s)", cg.fn.Name, idx, op))
	}
	cg.depth += pushes
	if cg.depth > cg.maxDepth {
		cg.maxDepth = cg.depth
	}
	if op == isa.Call && cg.depth+1 > cg.maxDepth {
		cg.maxDepth = cg.depth + 1 // transient return-PC push
	}
	return idx
}

func (cg *codegen) emitReloc(op isa.Op, imm int32, kind RelocKind) {
	idx := cg.emit(op, imm)
	cg.relocs = append(cg.relocs, Reloc{Instr: idx, Kind: kind})
}

func (cg *codegen) newLabel() int {
	cg.labels = append(cg.labels, -1)
	cg.labelDep = append(cg.labelDep, -1)
	return len(cg.labels) - 1
}

// jumpTo emits a branch instruction whose immediate is a label id,
// recording the operand-stack depth expected at the target.
func (cg *codegen) jumpTo(op isa.Op, lbl int) {
	cg.emit(op, int32(lbl))
	if cg.dead {
		return
	}
	if cg.labelDep[lbl] == -1 {
		cg.labelDep[lbl] = cg.depth
	} else if cg.labelDep[lbl] != cg.depth {
		panic(fmt.Sprintf("cc: inconsistent stack depth at label %d in %s: %d vs %d",
			lbl, cg.fn.Name, cg.labelDep[lbl], cg.depth))
	}
	if op == isa.Jmp {
		cg.dead = true
	}
}

func (cg *codegen) bind(lbl int) {
	cg.labels[lbl] = len(cg.out)
	cg.boundAt[len(cg.out)] = true
	if cg.labelDep[lbl] != -1 {
		cg.depth = cg.labelDep[lbl]
	} else if cg.dead {
		cg.depth = 0
		cg.labelDep[lbl] = 0
	} else {
		cg.labelDep[lbl] = cg.depth
	}
	cg.dead = false
}

// ---- Function generation ----

func (cg *codegen) genFunc(fn *FuncDecl) (f *Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if msg, ok := r.(string); ok {
				err = fmt.Errorf("%s", msg)
				return
			}
			panic(r)
		}
	}()
	cg.fn = fn
	cg.out = nil
	cg.poss = nil
	cg.curPos = fn.P
	cg.relocs = nil
	cg.labels = nil
	cg.labelDep = nil
	cg.boundAt = map[int]bool{}
	cg.depth, cg.maxDepth = 0, 0
	cg.dead = false
	cg.breakLbl, cg.contLbl = nil, nil
	cg.epilogue = cg.newLabel()

	cg.emit(isa.Enter, int32(fn.Index))
	if err := cg.stmt(fn.Body); err != nil {
		return nil, err
	}
	cg.bind(cg.epilogue)
	cg.emit(isa.Leave, 0)

	if cg.opts.OptLevel >= 2 {
		cg.peephole()
	}
	f = &Func{
		Name:          fn.Name,
		Index:         fn.Index,
		NArgs:         len(fn.Params),
		StackArgWords: len(fn.Params),
		LocalBytes:    fn.LocalBytes,
		MaxEvalWords:  cg.maxDepth,
		Recursive:     fn.Recursive,
	}
	if cg.opts.StaticLocals {
		f.StackArgWords = 0
		f.LocalBytes = 0
		span := cg.staticSpan[fn.Name]
		f.StaticBase = span[0]
		f.StaticBytes = int(span[1] - span[0])
	}
	cg.resolve(f)
	return f, nil
}

// resolve converts label-id branch immediates to function-relative byte
// offsets and records branch relocations.
func (cg *codegen) resolve(f *Func) {
	offs := make([]int, len(cg.out)+1)
	for i, in := range cg.out {
		offs[i+1] = offs[i] + in.Size()
	}
	for i := range cg.out {
		in := &cg.out[i]
		switch in.Op {
		case isa.Jmp, isa.Jz, isa.Jnz, isa.ExpBegin, isa.ExpCatch, isa.Timely:
			target := cg.labels[in.Imm]
			if target < 0 {
				panic(fmt.Sprintf("cc: unbound label %d in %s", in.Imm, f.Name))
			}
			in.Imm = int32(offs[target])
			cg.relocs = append(cg.relocs, Reloc{Instr: i, Kind: RelocBranch})
		}
	}
	f.Code = cg.out
	f.Poss = cg.poss
	f.Relocs = cg.relocs
}

// ---- Statements ----

func (cg *codegen) stmt(s Stmt) error {
	cg.curPos = s.Pos()
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			if err := cg.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *ExprStmt:
		return cg.expr(st.X, false)
	case *LocalDecl:
		if st.Init == nil {
			return nil
		}
		if err := cg.expr(st.Init, true); err != nil {
			return err
		}
		cg.storeSym(st.Sym)
		return nil
	case *If:
		elseLbl := cg.newLabel()
		if err := cg.expr(st.Cond, true); err != nil {
			return err
		}
		cg.jumpTo(isa.Jz, elseLbl)
		if err := cg.stmt(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			cg.bind(elseLbl)
			return nil
		}
		endLbl := cg.newLabel()
		cg.jumpTo(isa.Jmp, endLbl)
		cg.bind(elseLbl)
		if err := cg.stmt(st.Else); err != nil {
			return err
		}
		cg.bind(endLbl)
		return nil
	case *While:
		start := cg.newLabel()
		end := cg.newLabel()
		cg.bind(start)
		if err := cg.expr(st.Cond, true); err != nil {
			return err
		}
		cg.jumpTo(isa.Jz, end)
		cg.breakLbl = append(cg.breakLbl, end)
		cg.contLbl = append(cg.contLbl, start)
		if err := cg.stmt(st.Body); err != nil {
			return err
		}
		cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
		cg.contLbl = cg.contLbl[:len(cg.contLbl)-1]
		cg.jumpTo(isa.Jmp, start)
		cg.bind(end)
		return nil
	case *For:
		if st.Init != nil {
			if err := cg.expr(st.Init, false); err != nil {
				return err
			}
		}
		cond := cg.newLabel()
		post := cg.newLabel()
		end := cg.newLabel()
		cg.bind(cond)
		if st.Cond != nil {
			if err := cg.expr(st.Cond, true); err != nil {
				return err
			}
			cg.jumpTo(isa.Jz, end)
		}
		cg.breakLbl = append(cg.breakLbl, end)
		cg.contLbl = append(cg.contLbl, post)
		if err := cg.stmt(st.Body); err != nil {
			return err
		}
		cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
		cg.contLbl = cg.contLbl[:len(cg.contLbl)-1]
		cg.bind(post)
		if st.Post != nil {
			if err := cg.expr(st.Post, false); err != nil {
				return err
			}
		}
		cg.jumpTo(isa.Jmp, cond)
		cg.bind(end)
		return nil
	case *Return:
		if st.X != nil {
			if err := cg.expr(st.X, true); err != nil {
				return err
			}
			cg.emit(isa.SetRV, 0)
		}
		cg.jumpTo(isa.Jmp, cg.epilogue)
		return nil
	case *Break:
		cg.jumpTo(isa.Jmp, cg.breakLbl[len(cg.breakLbl)-1])
		return nil
	case *Continue:
		cg.jumpTo(isa.Jmp, cg.contLbl[len(cg.contLbl)-1])
		return nil
	case *DoWhile:
		start := cg.newLabel()
		cont := cg.newLabel()
		end := cg.newLabel()
		cg.bind(start)
		cg.breakLbl = append(cg.breakLbl, end)
		cg.contLbl = append(cg.contLbl, cont)
		if err := cg.stmt(st.Body); err != nil {
			return err
		}
		cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
		cg.contLbl = cg.contLbl[:len(cg.contLbl)-1]
		cg.bind(cont)
		if err := cg.expr(st.Cond, true); err != nil {
			return err
		}
		cg.jumpTo(isa.Jnz, start)
		cg.bind(end)
		return nil
	case *Switch:
		return cg.switchStmt(st)
	case *ExpiresStmt:
		return cg.expiresStmt(st)
	case *TimelyStmt:
		return cg.timelyStmt(st)
	}
	return fmt.Errorf("cc: unhandled statement %T", s)
}

// switchStmt lowers a C switch: the value is spilled to a hidden frame
// slot, a compare chain dispatches to the matching group, and groups fall
// through in source order (break jumps past the end).
func (cg *codegen) switchStmt(st *Switch) error {
	if err := cg.expr(st.Cond, true); err != nil {
		return err
	}
	spill := st.TempOff
	if cg.opts.StaticLocals {
		// Promoted-locals builds have no frame; keep the value on the
		// operand stack via repeated Dup instead.
		return cg.switchOnStack(st)
	}
	cg.emit(isa.StoreL, spill)
	end := cg.newLabel()
	bodyLbl := make([]int, len(st.Groups))
	defaultLbl := end
	for gi := range st.Groups {
		bodyLbl[gi] = cg.newLabel()
		if st.Groups[gi].IsDefault {
			defaultLbl = bodyLbl[gi]
		}
		for _, v := range st.Groups[gi].Vals {
			cg.emit(isa.LoadL, spill)
			cg.emit(isa.PushI, int32(v))
			cg.emit(isa.CmpEq, 0)
			cg.jumpTo(isa.Jnz, bodyLbl[gi])
		}
	}
	cg.jumpTo(isa.Jmp, defaultLbl)
	cg.breakLbl = append(cg.breakLbl, end)
	for gi := range st.Groups {
		cg.bind(bodyLbl[gi])
		for _, sub := range st.Groups[gi].Stmts {
			if err := cg.stmt(sub); err != nil {
				return err
			}
		}
	}
	cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
	cg.bind(end)
	return nil
}

// switchOnStack is the static-locals lowering: the switch value is not
// spillable to a frame slot, so the dispatch chain re-evaluates against a
// Dup'd copy and each body label drops it on entry.
func (cg *codegen) switchOnStack(st *Switch) error {
	end := cg.newLabel()
	bodyLbl := make([]int, len(st.Groups))
	dropLbl := make([]int, len(st.Groups))
	defaultDrop := -1
	for gi := range st.Groups {
		bodyLbl[gi] = cg.newLabel()
		dropLbl[gi] = cg.newLabel()
		if st.Groups[gi].IsDefault {
			defaultDrop = gi
		}
		for _, v := range st.Groups[gi].Vals {
			cg.emit(isa.Dup, 0)
			cg.emit(isa.PushI, int32(v))
			cg.emit(isa.CmpEq, 0)
			cg.jumpTo(isa.Jnz, dropLbl[gi])
		}
	}
	if defaultDrop >= 0 {
		cg.jumpTo(isa.Jmp, dropLbl[defaultDrop])
	} else {
		cg.emit(isa.Drop, 0)
		cg.jumpTo(isa.Jmp, end)
	}
	cg.breakLbl = append(cg.breakLbl, end)
	for gi := range st.Groups {
		cg.bind(dropLbl[gi])
		cg.emit(isa.Drop, 0)
		cg.bind(bodyLbl[gi])
		for _, sub := range st.Groups[gi].Stmts {
			if err := cg.stmt(sub); err != nil {
				return err
			}
		}
		// Fallthrough goes to the next group's *body* (skipping its drop).
		if gi+1 < len(st.Groups) {
			cg.jumpTo(isa.Jmp, bodyLbl[gi+1])
		}
	}
	cg.breakLbl = cg.breakLbl[:len(cg.breakLbl)-1]
	cg.bind(end)
	return nil
}

// pushTSAddr pushes the shadow-timestamp slot address for an annotated
// lvalue (a global scalar or an element of a global array) and returns the
// annotation's duration.
func (cg *codegen) pushTSAddr(lv Expr) (durMs int64, err error) {
	switch e := lv.(type) {
	case *VarRef:
		gi := cg.prog.Globals[cg.globalInfo[e.Sym.Global]]
		cg.emitReloc(isa.PushI, int32(gi.TSOffset), RelocGlobal)
		return gi.ExpiresAfterMs, nil
	case *Index:
		base := e.Base.(*VarRef)
		gi := cg.prog.Globals[cg.globalInfo[base.Sym.Global]]
		if err := cg.expr(e.Idx, true); err != nil {
			return 0, err
		}
		cg.emit(isa.PushI, 4)
		cg.emit(isa.Mul, 0)
		cg.emitReloc(isa.PushI, int32(gi.TSOffset), RelocGlobal)
		cg.emit(isa.Add, 0)
		return gi.ExpiresAfterMs, nil
	}
	return 0, errf(lv.Pos(), "not a time-annotated lvalue")
}

func (cg *codegen) expiresStmt(st *ExpiresStmt) error {
	cg.emit(isa.CpDis, 0)
	cg.emit(isa.Chkpt, 0)
	dur, err := cg.pushTSAddr(st.LV)
	if err != nil {
		return err
	}
	cg.emit(isa.PushI, int32(dur))
	if st.Catch == nil {
		skip := cg.newLabel()
		cg.jumpTo(isa.ExpBegin, skip)
		if err := cg.stmt(st.Body); err != nil {
			return err
		}
		cg.bind(skip)
	} else {
		catch := cg.newLabel()
		end := cg.newLabel()
		cg.jumpTo(isa.ExpCatch, catch)
		if err := cg.stmt(st.Body); err != nil {
			return err
		}
		cg.emit(isa.ExpEnd, 0)
		cg.jumpTo(isa.Jmp, end)
		cg.bind(catch)
		cg.emit(isa.ExpEnd, 0)
		if err := cg.stmt(st.Catch); err != nil {
			return err
		}
		cg.bind(end)
	}
	cg.emit(isa.Chkpt, 0)
	cg.emit(isa.CpEn, 0)
	return nil
}

func (cg *codegen) timelyStmt(st *TimelyStmt) error {
	cg.emit(isa.CpDis, 0)
	cg.emit(isa.Chkpt, 0)
	if err := cg.expr(st.Deadline, true); err != nil {
		return err
	}
	elseLbl := cg.newLabel()
	cg.jumpTo(isa.Timely, elseLbl)
	if err := cg.stmt(st.Body); err != nil {
		return err
	}
	if st.Else == nil {
		cg.bind(elseLbl)
	} else {
		end := cg.newLabel()
		cg.jumpTo(isa.Jmp, end)
		cg.bind(elseLbl)
		if err := cg.stmt(st.Else); err != nil {
			return err
		}
		cg.bind(end)
	}
	cg.emit(isa.Chkpt, 0)
	cg.emit(isa.CpEn, 0)
	return nil
}

// ---- Expressions ----

func (cg *codegen) expr(e Expr, need bool) error {
	switch x := e.(type) {
	case *AssignExpr:
		return cg.assign(x, need)
	case *IncDec:
		return cg.incDec(x, need)
	case *Call:
		return cg.call(x, need)
	case *Cond:
		elseLbl := cg.newLabel()
		end := cg.newLabel()
		if err := cg.expr(x.C, true); err != nil {
			return err
		}
		cg.jumpTo(isa.Jz, elseLbl)
		if err := cg.expr(x.T, need); err != nil {
			return err
		}
		cg.jumpTo(isa.Jmp, end)
		cg.bind(elseLbl)
		if err := cg.expr(x.F, need); err != nil {
			return err
		}
		cg.bind(end)
		return nil
	}
	// Value-producing forms: evaluate, then drop if unused.
	if err := cg.exprValue(e); err != nil {
		return err
	}
	if !need {
		cg.emit(isa.Drop, 0)
	}
	return nil
}

func (cg *codegen) exprValue(e Expr) error {
	switch x := e.(type) {
	case *NumLit:
		cg.emit(isa.PushI, int32(x.Val))
		return nil
	case *VarRef:
		cg.loadSym(x.Sym)
		return nil
	case *Unary:
		switch x.Op {
		case Minus, Tilde, Bang:
			if err := cg.expr(x.X, true); err != nil {
				return err
			}
			op := map[Kind]isa.Op{Minus: isa.Neg, Tilde: isa.Not, Bang: isa.LNot}[x.Op]
			cg.emit(op, 0)
			return nil
		case Star:
			if err := cg.expr(x.X, true); err != nil {
				return err
			}
			cg.loadIndirect(x.Type())
			return nil
		case Amp:
			return cg.addr(x.X)
		}
		return errf(x.Pos(), "unhandled unary %s", x.Op)
	case *Binary:
		return cg.binary(x)
	case *Index:
		if err := cg.addr(x); err != nil {
			return err
		}
		cg.loadIndirect(x.Type())
		return nil
	}
	return errf(e.Pos(), "unhandled expression %T", e)
}

func (cg *codegen) loadIndirect(t *Type) {
	if t.Size() == 1 {
		cg.emit(isa.LoadIB, 0)
	} else if t.Kind == TArray {
		// Address of a nested aggregate is its value; nothing to load.
	} else {
		cg.emit(isa.LoadI, 0)
	}
}

func (cg *codegen) storeIndirect(t *Type) {
	if t.Size() == 1 {
		cg.emit(isa.StoreIB, 0)
	} else {
		cg.emit(isa.StoreI, 0)
	}
}

func (cg *codegen) binary(x *Binary) error {
	switch x.Op {
	case AndAnd, OrOr:
		// Short-circuit evaluation producing 0/1.
		falseLbl := cg.newLabel()
		end := cg.newLabel()
		if x.Op == AndAnd {
			if err := cg.expr(x.L, true); err != nil {
				return err
			}
			cg.jumpTo(isa.Jz, falseLbl)
			if err := cg.expr(x.R, true); err != nil {
				return err
			}
			cg.jumpTo(isa.Jz, falseLbl)
			cg.emit(isa.PushI, 1)
			cg.jumpTo(isa.Jmp, end)
			cg.bind(falseLbl)
			cg.emit(isa.PushI, 0)
			cg.bind(end)
			return nil
		}
		trueLbl := falseLbl
		if err := cg.expr(x.L, true); err != nil {
			return err
		}
		cg.jumpTo(isa.Jnz, trueLbl)
		if err := cg.expr(x.R, true); err != nil {
			return err
		}
		cg.jumpTo(isa.Jnz, trueLbl)
		cg.emit(isa.PushI, 0)
		cg.jumpTo(isa.Jmp, end)
		cg.bind(trueLbl)
		cg.emit(isa.PushI, 1)
		cg.bind(end)
		return nil
	}
	lt, rt := x.L.Type().Decay(), x.R.Type().Decay()
	if err := cg.expr(x.L, true); err != nil {
		return err
	}
	if x.Op == Plus && rt.Kind == TPtr && lt.IsInteger() {
		cg.scale(rt.Elem.Size())
	}
	if err := cg.expr(x.R, true); err != nil {
		return err
	}
	if (x.Op == Plus || x.Op == Minus) && lt.Kind == TPtr && rt.IsInteger() {
		cg.scale(lt.Elem.Size())
	}
	unsigned := lt.IsUnsigned() || rt.IsUnsigned()
	var op isa.Op
	switch x.Op {
	case Plus:
		op = isa.Add
	case Minus:
		op = isa.Sub
	case Star:
		op = isa.Mul
	case Slash:
		op = isa.Div
	case Percent:
		op = isa.Mod
	case Amp:
		op = isa.And
	case Pipe:
		op = isa.Or
	case Caret:
		op = isa.Xor
	case Shl:
		op = isa.Shl
	case Shr:
		op = isa.Shr
	case EqEq:
		op = isa.CmpEq
	case NotEq:
		op = isa.CmpNe
	case Lt:
		op = isa.CmpLt
		if unsigned {
			op = isa.CmpLtU
		}
	case Le:
		op = isa.CmpLe
		if unsigned {
			op = isa.CmpLeU
		}
	case Gt:
		op = isa.CmpGt
		if unsigned {
			op = isa.CmpGtU
		}
	case Ge:
		op = isa.CmpGe
		if unsigned {
			op = isa.CmpGeU
		}
	default:
		return errf(x.Pos(), "unhandled binary operator %s", x.Op)
	}
	cg.emit(op, 0)
	// Pointer difference yields an element count.
	if x.Op == Minus && lt.Kind == TPtr && rt.Kind == TPtr && lt.Elem.Size() > 1 {
		cg.emit(isa.PushI, int32(lt.Elem.Size()))
		cg.emit(isa.Div, 0)
	}
	return nil
}

// scale multiplies the value on top of the stack by an element size.
func (cg *codegen) scale(size int) {
	if size > 1 {
		cg.emit(isa.PushI, int32(size))
		cg.emit(isa.Mul, 0)
	}
}

// addr pushes the address of an lvalue.
func (cg *codegen) addr(e Expr) error {
	switch x := e.(type) {
	case *VarRef:
		cg.pushSymAddr(x.Sym)
		return nil
	case *Index:
		if err := cg.expr(x.Base, true); err != nil {
			return err
		}
		if err := cg.expr(x.Idx, true); err != nil {
			return err
		}
		cg.scale(x.Type().Size())
		cg.emit(isa.Add, 0)
		return nil
	case *Unary:
		if x.Op == Star {
			return cg.expr(x.X, true)
		}
	}
	return errf(e.Pos(), "expression is not an lvalue")
}

// ---- Symbol access ----

func (cg *codegen) globalOffset(sym *Symbol) int32 {
	return int32(cg.prog.Globals[cg.globalInfo[sym.Global]].Offset)
}

func (cg *codegen) pushSymAddr(sym *Symbol) {
	switch {
	case sym.Kind == SymGlobal:
		cg.emitReloc(isa.PushI, cg.globalOffset(sym), RelocGlobal)
	case cg.opts.StaticLocals:
		cg.emitReloc(isa.PushI, int32(cg.staticFrame[sym]), RelocGlobal)
	default:
		cg.emit(isa.AddrL, sym.FPOff)
	}
}

func (cg *codegen) loadSym(sym *Symbol) {
	if sym.Type.Kind == TArray {
		cg.pushSymAddr(sym)
		return
	}
	switch {
	case sym.Kind == SymGlobal:
		if sym.Type.Size() == 1 {
			cg.emitReloc(isa.LoadGB, cg.globalOffset(sym), RelocGlobal)
		} else {
			cg.emitReloc(isa.LoadG, cg.globalOffset(sym), RelocGlobal)
		}
	case cg.opts.StaticLocals:
		off := int32(cg.staticFrame[sym])
		if sym.Type.Size() == 1 {
			cg.emitReloc(isa.LoadGB, off, RelocGlobal)
		} else {
			cg.emitReloc(isa.LoadG, off, RelocGlobal)
		}
	default:
		cg.emit(isa.LoadL, sym.FPOff)
	}
}

// storeSym stores the value on top of the stack into a symbol.
func (cg *codegen) storeSym(sym *Symbol) {
	switch {
	case sym.Kind == SymGlobal:
		if sym.Type.Size() == 1 {
			cg.emitReloc(isa.StoreGB, cg.globalOffset(sym), RelocGlobal)
		} else {
			cg.emitReloc(isa.StoreG, cg.globalOffset(sym), RelocGlobal)
		}
	case cg.opts.StaticLocals:
		off := int32(cg.staticFrame[sym])
		if sym.Type.Size() == 1 {
			cg.emitReloc(isa.StoreGB, off, RelocGlobal)
		} else {
			cg.emitReloc(isa.StoreG, off, RelocGlobal)
		}
	default:
		if sym.Type.Size() == 1 {
			cg.emit(isa.PushI, 255)
			cg.emit(isa.And, 0)
		}
		cg.emit(isa.StoreL, sym.FPOff)
	}
}

// ---- Assignment ----

// compoundOp maps compound-assignment tokens to their ALU opcode.
var compoundOp = map[Kind]isa.Op{
	PlusAssign:  isa.Add,
	MinusAssign: isa.Sub,
	StarAssign:  isa.Mul,
	AmpAssign:   isa.And,
	PipeAssign:  isa.Or,
	CaretAssign: isa.Xor,
	ShlAssign:   isa.Shl,
	ShrAssign:   isa.Shr,
}

func (cg *codegen) assign(x *AssignExpr, need bool) error {
	cg.curPos = x.Pos()
	if x.Op == AtAssign {
		if need {
			return errf(x.Pos(), "@= cannot be used as a value")
		}
		return cg.atAssign(x)
	}
	lt := x.L.Type()
	if v, ok := x.L.(*VarRef); ok {
		if op, compound := compoundOp[x.Op]; compound {
			cg.loadSym(v.Sym)
			if err := cg.expr(x.R, true); err != nil {
				return err
			}
			if (x.Op == PlusAssign || x.Op == MinusAssign) && lt.Decay().Kind == TPtr {
				cg.scale(lt.Decay().Elem.Size())
			}
			cg.emit(op, 0)
		} else {
			if err := cg.expr(x.R, true); err != nil {
				return err
			}
		}
		if need {
			cg.emit(isa.Dup, 0)
		}
		cg.storeSym(v.Sym)
		return nil
	}
	// Indirect target (array element or pointer dereference).
	if err := cg.addr(x.L); err != nil {
		return err
	}
	switch x.Op {
	case Assign:
		if need {
			cg.emit(isa.Dup, 0)
		}
		if err := cg.expr(x.R, true); err != nil {
			return err
		}
		cg.storeIndirect(lt)
		if need {
			cg.loadIndirect(lt)
		}
		return nil
	case PlusAssign, MinusAssign, StarAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
		if need {
			return errf(x.Pos(), "compound assignment to a memory target cannot be used as a value")
		}
		cg.emit(isa.Dup, 0)
		cg.loadIndirect(lt)
		if err := cg.expr(x.R, true); err != nil {
			return err
		}
		if (x.Op == PlusAssign || x.Op == MinusAssign) && lt.Decay().Kind == TPtr {
			cg.scale(lt.Decay().Elem.Size())
		}
		cg.emit(compoundOp[x.Op], 0)
		cg.storeIndirect(lt)
		return nil
	}
	return errf(x.Pos(), "unhandled assignment %s", x.Op)
}

// atAssign lowers the TICS atomic data+timestamp assignment: the value
// store and the shadow-timestamp update form one atomic block bounded by a
// checkpoint, with automatic checkpoints disabled inside (paper §3.2.2).
func (cg *codegen) atAssign(x *AssignExpr) error {
	cg.emit(isa.CpDis, 0)
	switch lv := x.L.(type) {
	case *VarRef:
		if err := cg.expr(x.R, true); err != nil {
			return err
		}
		cg.storeSym(lv.Sym)
		if _, err := cg.pushTSAddr(lv); err != nil {
			return err
		}
		cg.emit(isa.SetTS, 0)
	case *Index:
		base := lv.Base.(*VarRef)
		gi := cg.prog.Globals[cg.globalInfo[base.Sym.Global]]
		if err := cg.expr(lv.Idx, true); err != nil {
			return err
		}
		cg.emit(isa.Dup, 0)
		cg.scale(gi.ElemSize)
		cg.emitReloc(isa.PushI, int32(gi.Offset), RelocGlobal)
		cg.emit(isa.Add, 0)
		if err := cg.expr(x.R, true); err != nil {
			return err
		}
		cg.storeIndirect(lv.Type())
		// Index still on the stack: compute the timestamp slot address.
		cg.emit(isa.PushI, 4)
		cg.emit(isa.Mul, 0)
		cg.emitReloc(isa.PushI, int32(gi.TSOffset), RelocGlobal)
		cg.emit(isa.Add, 0)
		cg.emit(isa.SetTS, 0)
	default:
		return errf(x.Pos(), "@= target must be an annotated global or element")
	}
	cg.emit(isa.Chkpt, 0)
	cg.emit(isa.CpEn, 0)
	return nil
}

func (cg *codegen) incDec(x *IncDec, need bool) error {
	v, ok := x.X.(*VarRef)
	if !ok {
		return errf(x.Pos(), "++/-- is only supported on named variables")
	}
	t := x.X.Type()
	step := int32(1)
	if t.Decay().Kind == TPtr {
		step = int32(t.Decay().Elem.Size())
	}
	cg.loadSym(v.Sym)
	if need && !x.Prefix {
		cg.emit(isa.Dup, 0)
		cg.emit(isa.PushI, step)
		if x.Op == PlusPlus {
			cg.emit(isa.Add, 0)
		} else {
			cg.emit(isa.Sub, 0)
		}
		cg.storeSym(v.Sym)
		return nil
	}
	cg.emit(isa.PushI, step)
	if x.Op == PlusPlus {
		cg.emit(isa.Add, 0)
	} else {
		cg.emit(isa.Sub, 0)
	}
	if need {
		cg.emit(isa.Dup, 0)
	}
	cg.storeSym(v.Sym)
	return nil
}

// ---- Calls ----

func (cg *codegen) call(x *Call, need bool) error {
	cg.curPos = x.Pos()
	if x.Builtin != NotBuiltin {
		return cg.builtin(x, need)
	}
	fn := x.Fn
	if cg.opts.StaticLocals {
		// Chinchilla-style: arguments go directly into the callee's static
		// parameter slots.
		for i, arg := range x.Args {
			if err := cg.expr(arg, true); err != nil {
				return err
			}
			sym := fn.Params[i].Sym
			off := int32(cg.staticFrame[sym])
			if sym.Type.Size() == 1 {
				cg.emitReloc(isa.StoreGB, off, RelocGlobal)
			} else {
				cg.emitReloc(isa.StoreG, off, RelocGlobal)
			}
		}
		cg.emitReloc(isa.Call, int32(fn.Index), RelocFuncEntry)
	} else {
		// Push arguments right-to-left so parameter j lands at FP+8+4j.
		for i := len(x.Args) - 1; i >= 0; i-- {
			if err := cg.expr(x.Args[i], true); err != nil {
				return err
			}
		}
		cg.emitReloc(isa.Call, int32(fn.Index), RelocFuncEntry)
		if len(x.Args) > 0 {
			cg.emit(isa.AddSP, int32(4*len(x.Args)))
		}
	}
	if need {
		if fn.Ret.Kind == TVoid {
			return errf(x.Pos(), "void value of %s used", fn.Name)
		}
		cg.emit(isa.GetRV, 0)
	}
	return nil
}

func (cg *codegen) builtin(x *Call, need bool) error {
	constArg := func(i int) int32 { return int32(x.Args[i].(*NumLit).Val) }
	switch x.Builtin {
	case BSense:
		cg.emit(isa.Sense, constArg(0))
		if !need {
			cg.emit(isa.Drop, 0)
		}
		return nil
	case BNow:
		cg.emit(isa.Now, 0)
		if !need {
			cg.emit(isa.Drop, 0)
		}
		return nil
	case BSend:
		if err := cg.expr(x.Args[0], true); err != nil {
			return err
		}
		cg.emit(isa.Send, 0)
	case BOut:
		if err := cg.expr(x.Args[1], true); err != nil {
			return err
		}
		cg.emit(isa.Out, constArg(0))
	case BMark:
		id := constArg(0)
		if int(id)+1 > cg.prog.MarkCount {
			cg.prog.MarkCount = int(id) + 1
		}
		cg.emit(isa.Mark, id)
	case BCheckpoint:
		cg.emit(isa.Chkpt, 0)
	case BTransitionTo:
		cg.emit(isa.TransTo, constArg(0))
	default:
		return errf(x.Pos(), "unhandled builtin %s", x.Name)
	}
	if need {
		return errf(x.Pos(), "void value of %s used", x.Name)
	}
	return nil
}
