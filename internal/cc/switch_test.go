package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/link"
	"repro/internal/vm"
)

// runBoth compiles at O0 and O2 (and, when the program allows it, in
// static-locals mode) and checks all variants agree on out channel 0.
func runBoth(t *testing.T, src string, want []int32) {
	t.Helper()
	var ref []int32
	for _, opt := range []int{0, 2} {
		got := run(t, src, opt)[0]
		if want != nil {
			if len(got) != len(want) {
				t.Fatalf("O%d: got %v want %v", opt, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("O%d: out[%d]=%d want %d (%v)", opt, i, got[i], want[i], got)
				}
			}
		}
		if ref == nil {
			ref = got
		}
	}
	// Static-locals lowering must agree too (pointer/recursion-free srcs).
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2, StaticLocals: true})
	if err != nil {
		return // recursion or similar: fine, skip
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || !res.Completed {
		t.Fatalf("static: %v %+v", err, res)
	}
	got := res.OutLog[0]
	if len(got) != len(ref) {
		t.Fatalf("static build diverged: %v vs %v", got, ref)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("static build diverged at %d: %v vs %v", i, got, ref)
		}
	}
}

func TestSwitchBasics(t *testing.T) {
	runBoth(t, `
int classify(int x) {
    switch (x) {
    case 0:
        return 100;
    case 1:
    case 2:
        return 200;
    default:
        return 900;
    }
    return -1;
}
int main() {
    int i;
    for (i = 0; i < 5; i++) { out(0, classify(i)); }
    return 0;
}`, []int32{100, 200, 200, 900, 900})
}

func TestSwitchFallthrough(t *testing.T) {
	runBoth(t, `
int main() {
    int x;
    for (x = 0; x < 4; x++) {
        int acc = 0;
        switch (x) {
        case 0:
            acc += 1;
        case 1:
            acc += 10;
            break;
        case 2:
            acc += 100;
        default:
            acc += 1000;
        }
        out(0, acc);
    }
    return 0;
}`, []int32{11, 10, 1100, 1000})
}

func TestSwitchDefaultInMiddle(t *testing.T) {
	runBoth(t, `
int main() {
    int x;
    for (x = 0; x < 3; x++) {
        switch (x) {
        case 2:
            out(0, 22);
            break;
        default:
            out(0, 99);
            break;
        case 0:
            out(0, 7);
            break;
        }
    }
    return 0;
}`, []int32{7, 99, 22})
}

func TestSwitchBreakInsideLoopInteraction(t *testing.T) {
	runBoth(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 6; i++) {
        switch (i & 1) {
        case 0:
            s += 1;
            break; // leaves the switch, not the loop
        case 1:
            s += 10;
        }
        s += 100;
    }
    out(0, s);
    return 0;
}`, []int32{633})
}

func TestSwitchErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"dup case", `int main() { switch (1) { case 1: break; case 1: break; } return 0; }`, "duplicate case"},
		{"dup default", `int main() { switch (1) { default: break; default: break; } return 0; }`, "duplicate default"},
		{"stray stmt", `int main() { switch (1) { out(0, 1); } return 0; }`, "outside a case label"},
		{"continue in switch", `int main() { switch (1) { case 1: continue; } return 0; }`, "continue outside"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := cc.Compile(c.src, cc.Options{OptLevel: 2})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v does not mention %q", err, c.want)
			}
		})
	}
}

func TestDoWhile(t *testing.T) {
	runBoth(t, `
int main() {
    int i = 0;
    int s = 0;
    do {
        s += i;
        i++;
    } while (i < 5);
    out(0, s);
    // Executes at least once even when the condition is false.
    do { s += 1000; } while (0);
    out(0, s);
    return 0;
}`, []int32{10, 1010})
}

func TestDoWhileBreakContinue(t *testing.T) {
	runBoth(t, `
int main() {
    int i = 0;
    int s = 0;
    do {
        i++;
        if (i == 3) { continue; }
        if (i == 6) { break; }
        s += i;
    } while (i < 100);
    out(0, s);
    out(1, i);
    return 0;
}`, nil)
	got := run(t, `
int main() {
    int i = 0;
    int s = 0;
    do {
        i++;
        if (i == 3) { continue; }
        if (i == 6) { break; }
        s += i;
    } while (i < 100);
    out(0, s);
    out(1, i);
    return 0;
}`, 2)
	if got[0][0] != 1+2+4+5 || got[1][0] != 6 {
		t.Fatalf("do-while control flow: %v", got)
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	runBoth(t, `
int a[4];
int main() {
    int x = 6;
    x *= 7;   out(0, x);  // 42
    x &= 56;  out(0, x);  // 40
    x |= 5;   out(0, x);  // 45
    x ^= 15;  out(0, x);  // 34
    x <<= 2;  out(0, x);  // 136
    x >>= 3;  out(0, x);  // 17
    a[1] = 3;
    a[1] *= 5;  out(0, a[1]); // 15
    a[1] ^= 6;  out(0, a[1]); // 9
    a[1] <<= 1; out(0, a[1]); // 18
    return 0;
}`, []int32{42, 40, 45, 34, 136, 17, 15, 9, 18})
}
