package cc

import (
	"fmt"

	"repro/internal/isa"
)

// RelocKind classifies a relocation the linker must apply.
type RelocKind int

const (
	// RelocGlobal: the immediate is an offset into the globals space; the
	// linker adds the globals base address.
	RelocGlobal RelocKind = iota
	// RelocFuncEntry: the immediate is a function index; the linker
	// replaces it with the function's absolute entry address.
	RelocFuncEntry
	// RelocBranch: the immediate is a function-relative byte offset; the
	// linker adds the function's absolute start address.
	RelocBranch
)

// Reloc marks one instruction immediate for link-time fixup.
type Reloc struct {
	Instr int // index into Func.Code
	Kind  RelocKind
}

// Func is a compiled function.
type Func struct {
	Name          string
	Index         int
	NArgs         int
	StackArgWords int // argument words passed on the stack (0 in static-locals mode)
	LocalBytes    int // frame bytes for locals (0 in static-locals mode)
	MaxEvalWords  int // worst-case operand stack depth in words
	Recursive     bool
	Code          []isa.Instr
	// Poss is the source position of each instruction in Code (parallel
	// slice, statement granularity). Hand-assembled functions may leave it
	// nil; consumers must treat a nil or short slice as "position unknown".
	Poss   []Pos
	Relocs []Reloc
	// StaticBase/StaticBytes describe the function's promoted frame in the
	// globals space (static-locals mode only).
	StaticBase  uint32
	StaticBytes int
}

// FrameBytes returns the working-stack space the function needs beyond its
// copied arguments: saved FP + locals + worst-case operand stack.
func (f *Func) FrameBytes() int { return 4 + f.LocalBytes + 4*f.MaxEvalWords }

// EntryCopyBytes returns the bytes moved into a fresh segment on a stack
// grow: the return PC plus the on-stack arguments.
func (f *Func) EntryCopyBytes() int { return 4 + 4*f.StackArgWords }

// SegmentNeedBytes is the total working-stack segment space the function
// requires; the minimum legal segment size is the maximum over all
// functions (paper §3.1.1: "maximum stack frame dictates the minimum block
// size").
func (f *Func) SegmentNeedBytes() int { return f.EntryCopyBytes() + f.FrameBytes() }

// GlobalInfo describes one variable in the globals space.
type GlobalInfo struct {
	Name           string
	Offset         uint32 // offset within the globals space
	Size           int
	Init           []byte // nil for zero-initialized
	ExpiresAfterMs int64  // -1 when not annotated
	TSOffset       uint32 // shadow-timestamp slot offset (valid if ExpiresAfterMs >= 0)
	TSCount        int    // number of slots (array length, or 1)
	ElemSize       int    // element size for arrays, else Size
}

// Program is the output of the compiler: relocatable code plus the globals
// space image, ready for the linker.
type Program struct {
	Funcs      []*Func
	FuncByName map[string]*Func
	Globals    []GlobalInfo
	// DataBytes is the initialized prefix of the globals space (.data);
	// BSSBytes is the zero-initialized remainder including shadow
	// timestamp slots (.bss).
	DataBytes uint32
	BSSBytes  uint32
	DataImage []byte // initial contents of the .data prefix
	MainIndex int
	MarkCount int // number of mark counters the program uses
	// Options the program was compiled with.
	OptLevel     int
	StaticLocals bool
	HasRecursion bool
	UsesPointers bool
}

// GlobalsBytes is the total size of the globals space.
func (p *Program) GlobalsBytes() uint32 { return p.DataBytes + p.BSSBytes }

// MinSegmentBytes returns the smallest legal stack segment size for the
// program (plus one word for the entry stub's call to main).
func (p *Program) MinSegmentBytes() int {
	min := 8
	for _, f := range p.Funcs {
		if n := f.SegmentNeedBytes(); n > min {
			min = n
		}
	}
	return min
}

// Global looks up a global by name.
func (p *Program) Global(name string) (GlobalInfo, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g, true
		}
	}
	return GlobalInfo{}, false
}

// GlobalAt maps an offset in the globals space to the variable (or its
// shadow-timestamp slot array) that contains it. The second result is
// false for offsets outside every variable (mark counters, padding).
func (p *Program) GlobalAt(off uint32) (GlobalInfo, bool) {
	for _, g := range p.Globals {
		if off >= g.Offset && off < g.Offset+uint32(g.Size) {
			return g, true
		}
	}
	return GlobalInfo{}, false
}

// TextBytes returns the total encoded code size including the entry stub.
func (p *Program) TextBytes() int {
	n := EntryStubSize
	for _, f := range p.Funcs {
		for _, in := range f.Code {
			n += in.Size()
		}
	}
	return n
}

// EntryStubSize is the encoded size of the boot stub the linker emits
// before the first function (call main; halt).
const EntryStubSize = 5 + 1

func (p *Program) String() string {
	return fmt.Sprintf("program{funcs=%d globals=%d text=%dB data=%dB bss=%dB}",
		len(p.Funcs), len(p.Globals), p.TextBytes(), p.DataBytes, p.BSSBytes)
}

// Options configures compilation.
type Options struct {
	// OptLevel 0 disables optimization; 2 enables constant folding and
	// peephole optimization (the paper's O0/O2 axis in Figure 9).
	OptLevel int
	// StaticLocals promotes every local and parameter to a static
	// allocation in the globals space, Chinchilla-style. Rejects recursive
	// programs.
	StaticLocals bool
}

// Compile parses, analyzes and compiles TICS-C source.
func Compile(src string, opts Options) (*Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	unit, err := Analyze(file)
	if err != nil {
		return nil, err
	}
	if opts.OptLevel >= 2 {
		foldFile(file)
	}
	return generate(unit, opts)
}
