package cc

// parser is a recursive-descent parser over a pre-lexed token slice.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses a TICS-C translation unit.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

func (p *parser) cur() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwInt, KwUint, KwChar, KwVoid:
		return true
	}
	return false
}

// baseType parses a base type keyword.
func (p *parser) baseType() (*Type, error) {
	switch p.next().Kind {
	case KwInt:
		return IntType(), nil
	case KwUint:
		return UintType(), nil
	case KwChar:
		return CharType(), nil
	case KwVoid:
		return VoidType(), nil
	}
	return nil, errf(p.toks[p.pos-1].Pos, "expected a type")
}

// stars parses leading '*' pointer declarators.
func (p *parser) stars(t *Type) *Type {
	for p.accept(Star) {
		t = PtrTo(t)
	}
	return t
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		expires := int64(-1)
		if p.at(AtExpiresAfter) {
			pos := p.next().Pos
			if _, err := p.expect(Assign); err != nil {
				return nil, err
			}
			n, err := p.expect(Number)
			if err != nil {
				return nil, err
			}
			if n.Val < 0 {
				return nil, errf(pos, "@expires_after duration must be non-negative")
			}
			expires = n.Val
		}
		if !p.isTypeStart() {
			return nil, errf(p.cur().Pos, "expected a declaration, found %s", p.cur())
		}
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		t := p.stars(base)
		name, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			if expires >= 0 {
				return nil, errf(name.Pos, "@expires_after applies to variables, not functions")
			}
			fn, err := p.funcRest(t, name)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		// Global variable declaration(s).
		for {
			g, err := p.globalRest(t, name, expires)
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
			if !p.accept(Comma) {
				break
			}
			t2 := p.stars(base)
			name, err = p.expect(Ident)
			if err != nil {
				return nil, err
			}
			t = t2
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// globalRest parses the remainder of one global declarator (array suffix
// and constant initializer).
func (p *parser) globalRest(t *Type, name Token, expires int64) (*GlobalDecl, error) {
	if p.accept(LBrack) {
		n, err := p.expect(Number)
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, errf(n.Pos, "array length must be positive")
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
		t = ArrayOf(t, int(n.Val))
	}
	g := &GlobalDecl{P: name.Pos, Name: name.Text, Type: t, ExpiresAfterMs: expires}
	if p.accept(Assign) {
		if p.accept(LBrace) {
			for {
				v, err := p.constValue()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
				if !p.accept(Comma) {
					break
				}
				if p.at(RBrace) { // trailing comma
					break
				}
			}
			if _, err := p.expect(RBrace); err != nil {
				return nil, err
			}
			if t.Kind != TArray {
				return nil, errf(name.Pos, "brace initializer on non-array %s", name.Text)
			}
			if len(g.Init) > t.Len {
				return nil, errf(name.Pos, "too many initializers for %s (%d > %d)", name.Text, len(g.Init), t.Len)
			}
		} else {
			v, err := p.constValue()
			if err != nil {
				return nil, err
			}
			g.Init = []int64{v}
			if t.Kind == TArray {
				return nil, errf(name.Pos, "array %s needs a brace initializer", name.Text)
			}
		}
	}
	return g, nil
}

// constValue parses a (possibly negated) integer constant.
func (p *parser) constValue() (int64, error) {
	neg := false
	for p.accept(Minus) {
		neg = !neg
	}
	n, err := p.expect(Number)
	if err != nil {
		return 0, err
	}
	if neg {
		return -n.Val, nil
	}
	return n.Val, nil
}

func (p *parser) funcRest(ret *Type, name Token) (*FuncDecl, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{P: name.Pos, Name: name.Text, Ret: ret}
	if p.accept(KwVoid) && p.at(RParen) {
		// f(void)
	} else if !p.at(RParen) {
		// We may have consumed 'void' as a parameter base type start; back up.
		if p.toks[p.pos-1].Kind == KwVoid {
			p.pos--
		}
		for {
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			t := p.stars(base)
			pn, err := p.expect(Ident)
			if err != nil {
				return nil, err
			}
			if p.accept(LBrack) { // `int a[]` parameter decays to pointer
				if _, err := p.expect(RBrack); err != nil {
					return nil, err
				}
				t = PtrTo(t)
			}
			if t.Kind == TVoid {
				return nil, errf(pn.Pos, "parameter %s has void type", pn.Text)
			}
			fn.Params = append(fn.Params, Param{Name: pn.Text, Type: t})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{P: lb.Pos}}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.block()
	case Semi:
		p.next()
		return &Block{stmtBase: stmtBase{P: t.Pos}}, nil
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(KwElse) {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{stmtBase: stmtBase{P: t.Pos}, Cond: cond, Then: then, Else: els}, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{stmtBase: stmtBase{P: t.Pos}, Cond: cond, Body: body}, nil
	case KwFor:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		f := &For{stmtBase: stmtBase{P: t.Pos}}
		var err error
		if !p.at(Semi) {
			f.Init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err = p.expect(Semi); err != nil {
			return nil, err
		}
		if !p.at(Semi) {
			f.Cond, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err = p.expect(Semi); err != nil {
			return nil, err
		}
		if !p.at(RParen) {
			f.Post, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err = p.expect(RParen); err != nil {
			return nil, err
		}
		f.Body, err = p.stmt()
		if err != nil {
			return nil, err
		}
		return f, nil
	case KwReturn:
		p.next()
		r := &Return{stmtBase: stmtBase{P: t.Pos}}
		if !p.at(Semi) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return r, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &Break{stmtBase{P: t.Pos}}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &Continue{stmtBase{P: t.Pos}}, nil
	case KwDo:
		p.next()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &DoWhile{stmtBase: stmtBase{P: t.Pos}, Body: body, Cond: cond}, nil
	case KwSwitch:
		return p.switchStmt()
	case AtExpires:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		lv, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &ExpiresStmt{stmtBase: stmtBase{P: t.Pos}, LV: lv, Body: body}
		if p.accept(KwCatch) {
			st.Catch, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	case AtTimely:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		dl, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &TimelyStmt{stmtBase: stmtBase{P: t.Pos}, Deadline: dl, Body: body}
		if p.accept(KwElse) {
			st.Else, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	if p.isTypeStart() {
		return p.localDecl()
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase: stmtBase{P: t.Pos}, X: x}, nil
}

func (p *parser) localDecl() (Stmt, error) {
	pos := p.cur().Pos
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{P: pos}}
	for {
		t := p.stars(base)
		name, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		if p.accept(LBrack) {
			n, err := p.expect(Number)
			if err != nil {
				return nil, err
			}
			if n.Val <= 0 {
				return nil, errf(n.Pos, "array length must be positive")
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			t = ArrayOf(t, int(n.Val))
		}
		if t.Kind == TVoid {
			return nil, errf(name.Pos, "variable %s has void type", name.Text)
		}
		d := &LocalDecl{stmtBase: stmtBase{P: name.Pos}, Name: name.Text, Type: t}
		if p.accept(Assign) {
			d.Init, err = p.assignExpr()
			if err != nil {
				return nil, err
			}
			if t.Kind == TArray {
				return nil, errf(name.Pos, "local array %s cannot have an initializer", name.Text)
			}
		}
		b.Stmts = append(b.Stmts, d)
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if len(b.Stmts) == 1 {
		return b.Stmts[0], nil
	}
	return b, nil
}

// switchStmt parses switch (expr) { case N: ... default: ... } with C
// fallthrough semantics.
func (p *parser) switchStmt() (Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sw := &Switch{stmtBase: stmtBase{P: t.Pos}, Cond: cond}
	sawDefault := false
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, errf(t.Pos, "unterminated switch")
		}
		var g CaseGroup
		// One group = a run of adjacent labels followed by statements.
		for {
			if p.accept(KwCase) {
				v, err := p.constValue()
				if err != nil {
					return nil, err
				}
				g.Vals = append(g.Vals, v)
			} else if p.at(KwDefault) {
				p.next()
				if sawDefault {
					return nil, errf(p.cur().Pos, "duplicate default label")
				}
				sawDefault = true
				g.IsDefault = true
			} else {
				break
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
		}
		if len(g.Vals) == 0 && !g.IsDefault {
			return nil, errf(p.cur().Pos, "statement outside a case label in switch")
		}
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBrace) {
			if p.at(EOF) {
				return nil, errf(t.Pos, "unterminated switch")
			}
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			g.Stmts = append(g.Stmts, st)
		}
		sw.Groups = append(sw.Groups, g)
	}
	p.next() // }
	return sw, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	l, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, AmpAssign,
		PipeAssign, CaretAssign, ShlAssign, ShrAssign, AtAssign:
		op := p.next().Kind
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{exprBase: exprBase{P: l.Pos()}, Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) condExpr() (Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(Question) {
		return c, nil
	}
	t, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	f, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{exprBase: exprBase{P: c.Pos()}, C: c, T: t, F: f}, nil
}

// binary operator precedence, lowest first.
var precedence = map[Kind]int{
	OrOr: 1, AndAnd: 2,
	Pipe: 3, Caret: 4, Amp: 5,
	EqEq: 6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *parser) binExpr(minPrec int) (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := precedence[op]
		if !ok || prec <= minPrec {
			return l, nil
		}
		p.next()
		r, err := p.binExpr(prec)
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{P: l.Pos()}, Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Tilde, Bang, Star, Amp:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: t.Kind, X: x}, nil
	case PlusPlus, MinusMinus:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &IncDec{exprBase: exprBase{P: t.Pos}, Op: t.Kind, X: x, Prefix: true}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBrack:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{P: x.Pos()}, Base: x, Idx: idx}
		case PlusPlus, MinusMinus:
			op := p.next().Kind
			x = &IncDec{exprBase: exprBase{P: x.Pos()}, Op: op, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Number:
		p.next()
		return &NumLit{exprBase: exprBase{P: t.Pos}, Val: t.Val}, nil
	case Ident:
		p.next()
		if p.at(LParen) {
			p.next()
			call := &Call{exprBase: exprBase{P: t.Pos}, Name: t.Text}
			if !p.at(RParen) {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &VarRef{exprBase: exprBase{P: t.Pos}, Name: t.Text}, nil
	case LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t)
}
