package cc_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/vm"
)

// run compiles src, links it with a plain spec, executes it on the VM
// under continuous power and returns the out-channel log.
func run(t *testing.T, src string, opt int) map[int32][]int32 {
	t.Helper()
	prog, err := cc.Compile(src, cc.Options{OptLevel: opt})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: 4096})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Completed {
		t.Fatalf("did not complete: %+v", res)
	}
	return res.OutLog
}

func TestLexerBasics(t *testing.T) {
	toks, err := cc.Tokenize(`int x = 0x1F; // comment
/* block */ char c = 'a'; x += 200ms + 5s;`)
	if err != nil {
		t.Fatal(err)
	}
	var vals []int64
	for _, tok := range toks {
		if tok.Kind == cc.Number {
			vals = append(vals, tok.Val)
		}
	}
	want := []int64{0x1F, 'a', 200, 5000}
	if len(vals) != len(want) {
		t.Fatalf("numbers: got %v want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("number %d: got %d want %d", i, vals[i], want[i])
		}
	}
}

func TestLexerDefines(t *testing.T) {
	out := run(t, `
#define N 7
#define NEG -3
int main() { out(0, N + NEG); return 0; }
`, 2)
	if out[0][0] != 4 {
		t.Fatalf("defines: got %d", out[0][0])
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", `int foo() { return 1; }`, "no main"},
		{"undefined var", `int main() { return x; }`, "undefined variable"},
		{"undefined func", `int main() { return f(); }`, "undefined function"},
		{"arity", `int f(int a) { return a; } int main() { return f(); }`, "takes 1 arguments"},
		{"dup global", `int x; int x; int main() { return 0; }`, "duplicate global"},
		{"dup param", `int f(int a, int a) { return a; } int main() { return 0; }`, "duplicate parameter"},
		{"void value", `void f() { } int main() { return f(); }`, "void"},
		{"break outside", `int main() { break; return 0; }`, "break outside"},
		{"bad deref", `int main() { int x; return *x; }`, "cannot dereference"},
		{"bad addr", `int main() { return &5; }`, "address"},
		{"expires non-annotated", `int g; int main() { @expires(g) { } return 0; }`, "@expires_after"},
		{"atassign non-annotated", `int g; int main() { g @= 1; return 0; }`, "@expires_after"},
		{"unterminated comment", "int main() { /* oops", "unterminated"},
		{"void variable", `int main() { void v; return 0; }`, "void type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := cc.Compile(c.src, cc.Options{OptLevel: 2})
			if err == nil {
				t.Fatalf("compiled without error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestRecursionDetection(t *testing.T) {
	src := `
int even(int n);
` // forward decls unsupported; use direct recursion instead
	_ = src
	prog, err := cc.Compile(`
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main() { return fact(5); }
`, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !prog.HasRecursion {
		t.Fatal("recursion not detected")
	}
	if _, err := cc.Compile(`
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main() { return fact(5); }
`, cc.Options{OptLevel: 2, StaticLocals: true}); err == nil {
		t.Fatal("static-locals mode accepted recursion")
	}
}

func TestPointerFlag(t *testing.T) {
	prog, err := cc.Compile(`int main() { int x; int *p; p = &x; *p = 3; return x; }`, cc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !prog.UsesPointers {
		t.Fatal("pointer use not detected")
	}
	prog, err = cc.Compile(`int main() { return 0; }`, cc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.UsesPointers {
		t.Fatal("false positive pointer detection")
	}
}

func TestLanguageSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []int32
	}{
		{"arith precedence", `int main() { out(0, 2 + 3 * 4 - 10 / 2); return 0; }`, []int32{9}},
		{"shift and mask", `int main() { out(0, (1 << 10) | 15 & 3); return 0; }`, []int32{1027}},
		{"ternary", `int main() { int x = 5; out(0, x > 3 ? 10 : 20); return 0; }`, []int32{10}},
		{"short circuit", `
int g;
int bump() { g++; return 0; }
int main() { int r = bump() && bump(); out(0, g); out(1, r); return 0; }`, nil},
		{"while break continue", `
int main() {
    int i; int s = 0;
    for (i = 0; i < 100; i++) {
        if (i == 7) { continue; }
        if (i == 10) { break; }
        s += i;
    }
    out(0, s);
    return 0;
}`, []int32{38}},
		{"char truncation", `
char c;
int main() { c = 300; out(0, c); int d = 300; d = d & 255; out(1, d); return 0; }`, nil},
		{"unsigned compare", `
uint u;
int main() { u = 0 - 1; out(0, u > 100); out(1, -1 > 100); return 0; }`, nil},
		{"pointer arith", `
int a[4];
int main() {
    int *p = a;
    *(p + 2) = 9;
    out(0, a[2]);
    p++;
    *p = 5;
    out(1, a[1]);
    out(2, p - a);
    return 0;
}`, []int32{9, 5, 1}},
		{"nested calls", `
int add(int a, int b) { return a + b; }
int main() { out(0, add(add(1, 2), add(3, 4))); return 0; }`, []int32{10}},
		{"globals init", `
int xs[4] = {10, 20, 30};
int y = -5;
char cs[3] = {65, 66};
int main() { out(0, xs[0] + xs[1] + xs[2] + xs[3]); out(1, y); out(2, cs[0] + cs[1] + cs[2]); return 0; }`,
			[]int32{60, -5, 131}},
		{"do not elide compound", `
int a[3];
int main() { a[1] += 5; a[1] -= 2; out(0, a[1]); return 0; }`, []int32{3}},
		{"modulo negative", `int main() { out(0, -7 % 3); out(1, 7 % -3); return 0; }`, []int32{-1, 1}},
		{"postfix prefix", `
int main() { int i = 5; out(0, i++); out(1, ++i); out(2, i--); out(3, --i); out(4, i); return 0; }`,
			[]int32{5, 7, 7, 5, 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, opt := range []int{0, 2} {
				out := run(t, c.src, opt)
				if c.want != nil {
					got := out[0]
					var all []int32
					for ch := int32(0); ch < 8; ch++ {
						all = append(all, out[ch]...)
					}
					_ = got
					for i, w := range c.want {
						if all[i] != w {
							t.Fatalf("O%d: out[%d] = %d, want %d (all %v)", opt, i, all[i], w, all)
						}
					}
				}
			}
		})
	}
	// Targeted checks for the nil-want cases.
	out := run(t, `
int g;
int bump() { g++; return 0; }
int main() { int r = bump() && bump(); out(0, g); out(1, r); return 0; }`, 2)
	if out[0][0] != 1 || out[1][0] != 0 {
		t.Fatalf("short circuit: %v", out)
	}
	out = run(t, `
char c;
int main() { c = 300; out(0, c); return 0; }`, 2)
	if out[0][0] != 44 {
		t.Fatalf("char truncation: %v", out)
	}
	out = run(t, `
uint u;
int main() { u = 0 - 1; out(0, u > 100); out(1, -1 > 100); return 0; }`, 2)
	if out[0][0] != 1 || out[1][0] != 0 {
		t.Fatalf("unsigned compare: %v", out)
	}
}

// exprGen builds random integer expressions together with a Go reference
// evaluation, avoiding division by values that could be zero.
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) gen(depth int) (string, int32) {
	if depth == 0 || g.rng.Intn(3) == 0 {
		v := int32(g.rng.Intn(2001) - 1000)
		if v < 0 {
			return fmt.Sprintf("(0 - %d)", -v), v
		}
		return fmt.Sprintf("%d", v), v
	}
	ls, lv := g.gen(depth - 1)
	rs, rv := g.gen(depth - 1)
	switch g.rng.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", ls, rs), lv / rv
	case 4:
		if rv == 0 {
			return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
		}
		return fmt.Sprintf("(%s %% %s)", ls, rs), lv % rv
	case 5:
		return fmt.Sprintf("(%s & %s)", ls, rs), lv & rv
	case 6:
		return fmt.Sprintf("(%s | %s)", ls, rs), lv | rv
	case 7:
		return fmt.Sprintf("(%s ^ %s)", ls, rs), lv ^ rv
	default:
		sh := uint32(g.rng.Intn(8))
		return fmt.Sprintf("(%s << %d)", ls, sh), lv << (sh & 31)
	}
}

// TestExpressionProperty compiles random constant expressions at O0 and O2
// and checks both against a Go reference evaluation. At O2 the whole
// expression folds to a constant, so this simultaneously validates the
// evaluator, the code generator and the optimizer against each other.
func TestExpressionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := &exprGen{rng: rng}
	for i := 0; i < 120; i++ {
		expr, want := g.gen(4)
		src := fmt.Sprintf("int main() { out(0, %s); return 0; }", expr)
		for _, opt := range []int{0, 2} {
			out := run(t, src, opt)
			if got := out[0][0]; got != want {
				t.Fatalf("iter %d O%d: %s = %d, want %d", i, opt, expr, got, want)
			}
		}
	}
}

// TestStaticLocalsEquivalence checks that the Chinchilla-style promoted
// build computes the same results as the stack build on a pointer-free,
// recursion-free program.
func TestStaticLocalsEquivalence(t *testing.T) {
	src := `
int acc[8];
int combine(int a, int b) { int t = a * 2; int u = b + 3; return t ^ u; }
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 8; i++) {
        acc[i] = combine(i, s);
        s += acc[i];
    }
    out(0, s);
    return 0;
}`
	want := run(t, src, 2)[0][0]
	prog, err := cc.Compile(src, cc.Options{OptLevel: 2, StaticLocals: true})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(vm.Config{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil || !res.Completed {
		t.Fatalf("static build: %v %+v", err, res)
	}
	if got := res.OutLog[0][0]; got != want {
		t.Fatalf("static locals diverge: %d vs %d", got, want)
	}
}

// TestO2Shrinks ensures the optimizer actually reduces code size.
func TestO2Shrinks(t *testing.T) {
	src := `
int main() {
    int x = 2 + 3 * 4;
    int y = x + 0;
    out(0, y * 1);
    return 0;
}`
	p0, err := cc.Compile(src, cc.Options{OptLevel: 0})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cc.Compile(src, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p2.TextBytes() >= p0.TextBytes() {
		t.Fatalf("O2 (%d B) not smaller than O0 (%d B)", p2.TextBytes(), p0.TextBytes())
	}
}

// TestMinSegmentBytes sanity-checks the frame accounting that bounds the
// TICS segment size.
func TestMinSegmentBytes(t *testing.T) {
	prog, err := cc.Compile(`
int big(int a, int b, int c) {
    int buf[16];
    buf[0] = a + b + c;
    return buf[0];
}
int main() { return big(1, 2, 3); }
`, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncByName["big"]
	if f.LocalBytes < 64 {
		t.Fatalf("big's locals = %d B, want >= 64 (the array)", f.LocalBytes)
	}
	if prog.MinSegmentBytes() < f.SegmentNeedBytes() {
		t.Fatalf("MinSegmentBytes %d < big's need %d", prog.MinSegmentBytes(), f.SegmentNeedBytes())
	}
}

// TestDisassemble exercises the ISA decoder over a full compiled program.
func TestDisassemble(t *testing.T) {
	prog, err := cc.Compile(`int main() { out(0, 1); return 0; }`, cc.Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Link(prog, link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := img.Disassemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"_start", "main", "out", "halt"} {
		if !strings.Contains(asm, want) {
			t.Fatalf("disassembly lacks %q:\n%s", want, asm)
		}
	}
	if _, _, err := isa.DecodeAll(img.Text); err != nil {
		t.Fatal(err)
	}
}
