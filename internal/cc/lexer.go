package cc

import "strconv"

var keywords = map[string]Kind{
	"int": KwInt, "uint": KwUint, "unsigned": KwUint, "char": KwChar, "void": KwVoid,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue, "catch": KwCatch,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault, "do": KwDo,
}

// lexer tokenizes TICS-C source. It also implements the one preprocessor
// feature legacy embedded code leans on constantly: `#define NAME <integer>`
// object-like macros with integer (optionally time-suffixed) values.
type lexer struct {
	src     string
	off     int
	line    int
	col     int
	defines map[string]int64
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1, defines: map[string]int64{}}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
func isHexit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case isSpace(c):
			lx.advance()
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		case c == '#':
			if err := lx.directive(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
	return nil
}

// directive handles `#define NAME value`.
func (lx *lexer) directive() error {
	start := lx.pos()
	lx.advance() // '#'
	word := lx.ident()
	if word != "define" {
		return errf(start, "unsupported preprocessor directive #%s (only #define NAME <integer> is supported)", word)
	}
	for lx.peekByte() == ' ' || lx.peekByte() == '\t' {
		lx.advance()
	}
	name := lx.ident()
	if name == "" {
		return errf(start, "#define needs a name")
	}
	for lx.peekByte() == ' ' || lx.peekByte() == '\t' {
		lx.advance()
	}
	neg := false
	if lx.peekByte() == '-' {
		neg = true
		lx.advance()
	}
	if !isDigit(lx.peekByte()) {
		return errf(lx.pos(), "#define %s: value must be an integer literal", name)
	}
	val, err := lx.number()
	if err != nil {
		return err
	}
	if neg {
		val = -val
	}
	lx.defines[name] = val
	return nil
}

func (lx *lexer) ident() string {
	start := lx.off
	for lx.off < len(lx.src) && isAlnum(lx.peekByte()) {
		lx.advance()
	}
	return lx.src[start:lx.off]
}

// number lexes an integer literal, applying the ms/s time suffixes.
func (lx *lexer) number() (int64, error) {
	pos := lx.pos()
	start := lx.off
	if lx.peekByte() == '0' && (lx.peekByteAt(1) == 'x' || lx.peekByteAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for isHexit(lx.peekByte()) {
			lx.advance()
		}
		v, err := strconv.ParseInt(lx.src[start+2:lx.off], 16, 64)
		if err != nil {
			return 0, errf(pos, "bad hex literal %q", lx.src[start:lx.off])
		}
		return v, nil
	}
	for isDigit(lx.peekByte()) {
		lx.advance()
	}
	v, err := strconv.ParseInt(lx.src[start:lx.off], 10, 64)
	if err != nil {
		return 0, errf(pos, "bad integer literal %q", lx.src[start:lx.off])
	}
	// Time suffixes: 200ms, 5s.
	if lx.peekByte() == 'm' && lx.peekByteAt(1) == 's' && !isAlnum(lx.peekByteAt(2)) {
		lx.advance()
		lx.advance()
		return v, nil // already milliseconds
	}
	if lx.peekByte() == 's' && !isAlnum(lx.peekByteAt(1)) {
		lx.advance()
		return v * 1000, nil
	}
	return v, nil
}

// Next returns the next token.
func (lx *lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case isDigit(c):
		v, err := lx.number()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: Number, Val: v, Pos: pos}, nil
	case isAlpha(c):
		word := lx.ident()
		if kw, ok := keywords[word]; ok {
			return Token{Kind: kw, Pos: pos}, nil
		}
		if v, ok := lx.defines[word]; ok {
			return Token{Kind: Number, Val: v, Pos: pos, Text: word}, nil
		}
		return Token{Kind: Ident, Text: word, Pos: pos}, nil
	case c == '\'':
		lx.advance()
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		ch := lx.advance()
		if ch == '\\' {
			esc := lx.advance()
			switch esc {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '0':
				ch = 0
			case '\\':
				ch = '\\'
			case '\'':
				ch = '\''
			default:
				return Token{}, errf(pos, "unsupported escape '\\%c'", esc)
			}
		}
		if lx.peekByte() != '\'' {
			return Token{}, errf(pos, "unterminated character literal")
		}
		lx.advance()
		return Token{Kind: Number, Val: int64(ch), Pos: pos}, nil
	case c == '@':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return Token{Kind: AtAssign, Pos: pos}, nil
		}
		word := lx.ident()
		switch word {
		case "expires_after":
			return Token{Kind: AtExpiresAfter, Pos: pos}, nil
		case "expires":
			return Token{Kind: AtExpires, Pos: pos}, nil
		case "timely":
			return Token{Kind: AtTimely, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unknown annotation @%s", word)
	}
	lx.advance()
	two := func(next byte, k2, k1 Kind) (Token, error) {
		if lx.peekByte() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}, nil
		}
		return Token{Kind: k1, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBrack, Pos: pos}, nil
	case ']':
		return Token{Kind: RBrack, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case '?':
		return Token{Kind: Question, Pos: pos}, nil
	case ':':
		return Token{Kind: Colon, Pos: pos}, nil
	case '~':
		return Token{Kind: Tilde, Pos: pos}, nil
	case '^':
		return two('=', CaretAssign, Caret)
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '*':
		return two('=', StarAssign, Star)
	case '=':
		return two('=', EqEq, Assign)
	case '!':
		return two('=', NotEq, Bang)
	case '+':
		if lx.peekByte() == '+' {
			lx.advance()
			return Token{Kind: PlusPlus, Pos: pos}, nil
		}
		return two('=', PlusAssign, Plus)
	case '-':
		if lx.peekByte() == '-' {
			lx.advance()
			return Token{Kind: MinusMinus, Pos: pos}, nil
		}
		return two('=', MinusAssign, Minus)
	case '&':
		if lx.peekByte() == '&' {
			lx.advance()
			return Token{Kind: AndAnd, Pos: pos}, nil
		}
		return two('=', AmpAssign, Amp)
	case '|':
		if lx.peekByte() == '|' {
			lx.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return two('=', PipeAssign, Pipe)
	case '<':
		if lx.peekByte() == '<' {
			lx.advance()
			return two('=', ShlAssign, Shl)
		}
		return two('=', Le, Lt)
	case '>':
		if lx.peekByte() == '>' {
			lx.advance()
			return two('=', ShrAssign, Shr)
		}
		return two('=', Ge, Gt)
	}
	return Token{}, errf(pos, "unexpected character %q", string(rune(c)))
}

// lexAll tokenizes the whole source (used by the parser, which wants
// lookahead over a slice).
func lexAll(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

// Tokenize exposes the lexer for tests and tooling.
func Tokenize(src string) ([]Token, error) { return lexAll(src) }
