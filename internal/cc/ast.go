package cc

import (
	"fmt"
	"strings"
)

// TypeKind classifies a TICS-C type.
type TypeKind int

const (
	TVoid TypeKind = iota
	TInt           // 32-bit signed
	TUint          // 32-bit unsigned
	TChar          // 8-bit unsigned
	TPtr
	TArray
)

// Type is a TICS-C type. Types are interned by value via constructors.
type Type struct {
	Kind TypeKind
	Elem *Type // pointee / element type
	Len  int   // array length
}

var (
	typeVoid = &Type{Kind: TVoid}
	typeInt  = &Type{Kind: TInt}
	typeUint = &Type{Kind: TUint}
	typeChar = &Type{Kind: TChar}
)

// VoidType, IntType, UintType and CharType return the basic types.
func VoidType() *Type { return typeVoid }
func IntType() *Type  { return typeInt }
func UintType() *Type { return typeUint }
func CharType() *Type { return typeChar }

// PtrTo returns a pointer type.
func PtrTo(elem *Type) *Type { return &Type{Kind: TPtr, Elem: elem} }

// ArrayOf returns an array type.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: TArray, Elem: elem, Len: n} }

// Size returns the storage size of the type in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TVoid:
		return 0
	case TChar:
		return 1
	case TInt, TUint, TPtr:
		return 4
	case TArray:
		return t.Elem.Size() * t.Len
	}
	panic(fmt.Sprintf("cc: size of unknown type kind %d", t.Kind))
}

// IsScalar reports whether the type fits a machine word.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TInt, TUint, TChar, TPtr:
		return true
	}
	return false
}

// IsInteger reports whether the type is an integer type.
func (t *Type) IsInteger() bool {
	return t.Kind == TInt || t.Kind == TUint || t.Kind == TChar
}

// IsUnsigned reports whether comparisons on the type are unsigned.
func (t *Type) IsUnsigned() bool {
	return t.Kind == TUint || t.Kind == TChar || t.Kind == TPtr
}

// Decay returns the pointer type an array decays to, or the type itself.
func (t *Type) Decay() *Type {
	if t.Kind == TArray {
		return PtrTo(t.Elem)
	}
	return t
}

func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TUint:
		return "uint"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// Same reports structural type equality.
func (t *Type) Same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.Same(o.Elem)
	case TArray:
		return t.Len == o.Len && t.Elem.Same(o.Elem)
	}
	return true
}

// ---- Expressions ----

// Expr is a TICS-C expression node. Type() returns the type assigned by
// semantic analysis (nil before Analyze runs).
type Expr interface {
	Pos() Pos
	Type() *Type
	setType(*Type)
	exprNode()
	String() string
}

type exprBase struct {
	P Pos
	T *Type
}

func (b *exprBase) Pos() Pos        { return b.P }
func (b *exprBase) Type() *Type     { return b.T }
func (b *exprBase) setType(t *Type) { b.T = t }
func (*exprBase) exprNode()         {}

// NumLit is an integer literal.
type NumLit struct {
	exprBase
	Val int64
}

func (n *NumLit) String() string { return fmt.Sprintf("%d", n.Val) }

// VarRef refers to a local, parameter or global by name.
type VarRef struct {
	exprBase
	Name string
	// Resolved by sema:
	Sym *Symbol
}

func (v *VarRef) String() string { return v.Name }

// Unary is -x, ~x, !x, *x, &x.
type Unary struct {
	exprBase
	Op Kind // Minus, Tilde, Bang, Star, Amp
	X  Expr
}

func (u *Unary) String() string { return fmt.Sprintf("(%s%s)", u.Op, u.X) }

// Binary is a binary operation (arithmetic, comparison, logic).
type Binary struct {
	exprBase
	Op   Kind
	L, R Expr
}

func (b *Binary) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Index is a[i].
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

func (ix *Index) String() string { return fmt.Sprintf("%s[%s]", ix.Base, ix.Idx) }

// Call is f(args...). Builtins are resolved by sema.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Resolved by sema:
	Fn      *FuncDecl
	Builtin Builtin
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// Assign is lhs = rhs, lhs += rhs, lhs -= rhs, or the TICS atomic lhs @= rhs.
type AssignExpr struct {
	exprBase
	Op   Kind // Assign, PlusAssign, MinusAssign, AtAssign
	L, R Expr
}

func (a *AssignExpr) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// IncDec is x++ / x-- / ++x / --x.
type IncDec struct {
	exprBase
	Op     Kind // PlusPlus or MinusMinus
	X      Expr
	Prefix bool
}

func (i *IncDec) String() string {
	if i.Prefix {
		return fmt.Sprintf("(%s%s)", i.Op, i.X)
	}
	return fmt.Sprintf("(%s%s)", i.X, i.Op)
}

// Cond is c ? a : b.
type Cond struct {
	exprBase
	C, T, F Expr
}

func (c *Cond) String() string { return fmt.Sprintf("(%s ? %s : %s)", c.C, c.T, c.F) }

// ---- Statements ----

// Stmt is a TICS-C statement node.
type Stmt interface {
	Pos() Pos
	stmtNode()
}

type stmtBase struct{ P Pos }

func (b stmtBase) Pos() Pos { return b.P }
func (stmtBase) stmtNode()  {}

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// LocalDecl declares a local variable, optionally initialized.
type LocalDecl struct {
	stmtBase
	Name string
	Type *Type
	Init Expr // nil if none
	// Resolved by sema:
	Sym *Symbol
}

// If is if/else.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // nil if none
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// For is a C for loop; any of Init/Cond/Post may be nil.
type For struct {
	stmtBase
	Init Expr
	Cond Expr
	Post Expr
	Body Stmt
}

// CaseGroup is one arm of a switch: its constant labels (empty for
// default) and the statements up to the next label. C semantics:
// execution falls through into the next group unless it breaks.
type CaseGroup struct {
	Vals      []int64
	IsDefault bool
	Stmts     []Stmt
}

// Switch is a C switch with fallthrough.
type Switch struct {
	stmtBase
	Cond   Expr
	Groups []CaseGroup
	// TempOff is the FP offset of the compiler temporary holding the
	// switch value (assigned by sema).
	TempOff int32
}

// DoWhile is do { body } while (cond);
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// Return is a return statement; X is nil for void returns.
type Return struct {
	stmtBase
	X Expr
}

// Break and Continue are loop control.
type Break struct{ stmtBase }
type Continue struct{ stmtBase }

// ExpiresStmt is @expires(lv) { body } [catch { handler }].
type ExpiresStmt struct {
	stmtBase
	LV    Expr // the time-annotated lvalue being consumed
	Body  *Block
	Catch *Block // nil for the if-statement-only form
}

// TimelyStmt is @timely(deadline) { body } [else { alt }]. The deadline
// expression evaluates to an absolute time in milliseconds.
type TimelyStmt struct {
	stmtBase
	Deadline Expr
	Body     *Block
	Else     *Block
}

// ---- Declarations ----

// GlobalDecl declares a global variable.
type GlobalDecl struct {
	P              Pos
	Name           string
	Type           *Type
	Init           []int64 // constant initializer values (scalar: one entry)
	ExpiresAfterMs int64   // -1 when not time-annotated
	// Resolved by sema:
	Sym *Symbol
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	Sym  *Symbol
}

// FuncDecl declares a function.
type FuncDecl struct {
	P      Pos
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block
	// Filled by sema:
	Index      int  // function table index
	LocalBytes int  // frame bytes for locals
	Recursive  bool // participates in a call-graph cycle
	Calls      map[string]bool
}

// File is a parsed translation unit.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Builtin identifies a compiler builtin function.
type Builtin int

const (
	NotBuiltin    Builtin = iota
	BSense                // int sense(int sensor)
	BSend                 // void send(int v)
	BOut                  // void out(int channel, int v)
	BMark                 // void mark(int id)
	BNow                  // int now(void)
	BCheckpoint           // void checkpoint(void)
	BTransitionTo         // void transition_to(int task)
)

var builtins = map[string]Builtin{
	"sense": BSense, "send": BSend, "out": BOut, "mark": BMark,
	"now": BNow, "checkpoint": BCheckpoint, "transition_to": BTransitionTo,
}
