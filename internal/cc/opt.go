package cc

import "repro/internal/isa"

// ---- AST constant folding (O2) ----

// foldFile folds constant subexpressions in every function body. It runs
// after semantic analysis so folded nodes inherit the checked types.
func foldFile(f *File) {
	for _, fn := range f.Funcs {
		foldStmt(fn.Body)
	}
}

func foldStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		for _, sub := range st.Stmts {
			foldStmt(sub)
		}
	case *ExprStmt:
		st.X = foldExpr(st.X)
	case *LocalDecl:
		if st.Init != nil {
			st.Init = foldExpr(st.Init)
		}
	case *If:
		st.Cond = foldExpr(st.Cond)
		foldStmt(st.Then)
		if st.Else != nil {
			foldStmt(st.Else)
		}
	case *While:
		st.Cond = foldExpr(st.Cond)
		foldStmt(st.Body)
	case *For:
		if st.Init != nil {
			st.Init = foldExpr(st.Init)
		}
		if st.Cond != nil {
			st.Cond = foldExpr(st.Cond)
		}
		if st.Post != nil {
			st.Post = foldExpr(st.Post)
		}
		foldStmt(st.Body)
	case *DoWhile:
		foldStmt(st.Body)
		st.Cond = foldExpr(st.Cond)
	case *Switch:
		st.Cond = foldExpr(st.Cond)
		for gi := range st.Groups {
			for _, sub := range st.Groups[gi].Stmts {
				foldStmt(sub)
			}
		}
	case *Return:
		if st.X != nil {
			st.X = foldExpr(st.X)
		}
	case *ExpiresStmt:
		foldStmt(st.Body)
		if st.Catch != nil {
			foldStmt(st.Catch)
		}
	case *TimelyStmt:
		st.Deadline = foldExpr(st.Deadline)
		foldStmt(st.Body)
		if st.Else != nil {
			foldStmt(st.Else)
		}
	}
}

func constOf(e Expr) (int64, bool) {
	n, ok := e.(*NumLit)
	if !ok {
		return 0, false
	}
	return n.Val, true
}

func lit(pos Pos, t *Type, v int64) *NumLit {
	n := &NumLit{exprBase: exprBase{P: pos}, Val: int64(int32(v))}
	n.setType(t)
	return n
}

func foldExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Unary:
		x.X = foldExpr(x.X)
		if v, ok := constOf(x.X); ok {
			switch x.Op {
			case Minus:
				return lit(x.Pos(), x.Type(), -v)
			case Tilde:
				return lit(x.Pos(), x.Type(), ^v)
			case Bang:
				if v == 0 {
					return lit(x.Pos(), x.Type(), 1)
				}
				return lit(x.Pos(), x.Type(), 0)
			}
		}
		return x
	case *Binary:
		x.L = foldExpr(x.L)
		x.R = foldExpr(x.R)
		lv, lok := constOf(x.L)
		rv, rok := constOf(x.R)
		if !lok || !rok {
			// Algebraic identities with one constant operand.
			if rok {
				switch {
				case (x.Op == Plus || x.Op == Minus || x.Op == Shl || x.Op == Shr || x.Op == Pipe || x.Op == Caret) && rv == 0:
					return x.L
				case (x.Op == Star || x.Op == Slash) && rv == 1:
					return x.L
				}
			}
			if lok {
				switch {
				case x.Op == Plus && lv == 0:
					return x.R
				case x.Op == Star && lv == 1:
					return x.R
				}
			}
			return x
		}
		// Pointer arithmetic never has two constant operands that should
		// fold with scaling; the types here are integers.
		unsigned := x.Type() != nil && x.Type().IsUnsigned()
		l32, r32 := int32(lv), int32(rv)
		ul, ur := uint32(lv), uint32(rv)
		var out int64
		switch x.Op {
		case Plus:
			out = int64(l32 + r32)
		case Minus:
			out = int64(l32 - r32)
		case Star:
			out = int64(l32 * r32)
		case Slash:
			if r32 == 0 {
				return x
			}
			if unsigned {
				out = int64(ul / ur)
			} else {
				out = int64(l32 / r32)
			}
		case Percent:
			if r32 == 0 {
				return x
			}
			if unsigned {
				out = int64(ul % ur)
			} else {
				out = int64(l32 % r32)
			}
		case Amp:
			out = int64(l32 & r32)
		case Pipe:
			out = int64(l32 | r32)
		case Caret:
			out = int64(l32 ^ r32)
		case Shl:
			out = int64(l32 << (ur & 31))
		case Shr:
			out = int64(ul >> (ur & 31))
		case EqEq:
			out = b2i(l32 == r32)
		case NotEq:
			out = b2i(l32 != r32)
		case Lt:
			out = cmpFold(unsigned, ul, ur, l32, r32, "lt")
		case Le:
			out = cmpFold(unsigned, ul, ur, l32, r32, "le")
		case Gt:
			out = cmpFold(unsigned, ul, ur, l32, r32, "gt")
		case Ge:
			out = cmpFold(unsigned, ul, ur, l32, r32, "ge")
		case AndAnd:
			out = b2i(l32 != 0 && r32 != 0)
		case OrOr:
			out = b2i(l32 != 0 || r32 != 0)
		default:
			return x
		}
		return lit(x.Pos(), x.Type(), out)
	case *Index:
		x.Idx = foldExpr(x.Idx)
		return x
	case *Call:
		for i := range x.Args {
			x.Args[i] = foldExpr(x.Args[i])
		}
		return x
	case *AssignExpr:
		x.R = foldExpr(x.R)
		if ix, ok := x.L.(*Index); ok {
			ix.Idx = foldExpr(ix.Idx)
		}
		return x
	case *Cond:
		x.C = foldExpr(x.C)
		x.T = foldExpr(x.T)
		x.F = foldExpr(x.F)
		if v, ok := constOf(x.C); ok {
			if v != 0 {
				return x.T
			}
			return x.F
		}
		return x
	}
	return e
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpFold(unsigned bool, ul, ur uint32, l, r int32, op string) int64 {
	var b bool
	if unsigned {
		switch op {
		case "lt":
			b = ul < ur
		case "le":
			b = ul <= ur
		case "gt":
			b = ul > ur
		case "ge":
			b = ul >= ur
		}
	} else {
		switch op {
		case "lt":
			b = l < r
		case "le":
			b = l <= r
		case "gt":
			b = l > r
		case "ge":
			b = l >= r
		}
	}
	return b2i(b)
}

// ---- Bytecode peephole (O2) ----

// peephole simplifies the emitted instruction stream in place. It is
// careful never to merge across a label binding or touch a relocated
// immediate (relocations and labels reference instruction indices).
func (cg *codegen) peephole() {
	relocated := map[int]bool{}
	for _, r := range cg.relocs {
		relocated[r.Instr] = true
	}
	for pass := 0; pass < 4; pass++ {
		keep := make([]bool, len(cg.out))
		for i := range keep {
			keep[i] = true
		}
		changed := false
		for i := 0; i+1 < len(cg.out); i++ {
			if !keep[i] {
				continue
			}
			a, b := cg.out[i], cg.out[i+1]
			if relocated[i] || relocated[i+1] || cg.boundAt[i+1] {
				continue
			}
			// pushi 0; add|sub  and  pushi 1; mul|div → drop both.
			if a.Op == isa.PushI &&
				((a.Imm == 0 && (b.Op == isa.Add || b.Op == isa.Sub)) ||
					(a.Imm == 1 && (b.Op == isa.Mul || b.Op == isa.Div))) {
				keep[i], keep[i+1] = false, false
				changed = true
				continue
			}
			// lnot; jz → jnz  and  lnot; jnz → jz.
			if a.Op == isa.LNot && (b.Op == isa.Jz || b.Op == isa.Jnz) {
				keep[i] = false
				if b.Op == isa.Jz {
					cg.out[i+1].Op = isa.Jnz
				} else {
					cg.out[i+1].Op = isa.Jz
				}
				changed = true
				continue
			}
			// pushi a; pushi b; binop → pushi folded.
			if i+2 < len(cg.out) && a.Op == isa.PushI && b.Op == isa.PushI &&
				!relocated[i+2] && !cg.boundAt[i+2] {
				if v, ok := foldBin(cg.out[i+2].Op, a.Imm, b.Imm); ok {
					cg.out[i] = isa.Instr{Op: isa.PushI, Imm: v}
					keep[i+1], keep[i+2] = false, false
					changed = true
					continue
				}
			}
		}
		// jmp to the immediately following instruction → drop.
		for i, in := range cg.out {
			if !keep[i] || relocated[i] {
				continue
			}
			if in.Op == isa.Jmp && cg.labels[in.Imm] == i+1 {
				keep[i] = false
				changed = true
			}
		}
		// Unreachable code: instructions after an unconditional transfer
		// with no label bound before them can never execute. Relocated
		// instructions are dropped too — their relocations die with them
		// in compact().
		unreachable := false
		for i, in := range cg.out {
			if cg.boundAt[i] {
				unreachable = false
			}
			if unreachable && keep[i] {
				keep[i] = false
				changed = true
				continue
			}
			if keep[i] && (in.Op == isa.Jmp || in.Op == isa.Leave || in.Op == isa.Halt) {
				unreachable = true
			}
		}
		if !changed {
			return
		}
		cg.compact(keep, relocated)
	}
}

// foldBin folds a binary ALU op over constants.
func foldBin(op isa.Op, a, b int32) (int32, bool) {
	switch op {
	case isa.Add:
		return a + b, true
	case isa.Sub:
		return a - b, true
	case isa.Mul:
		return a * b, true
	case isa.And:
		return a & b, true
	case isa.Or:
		return a | b, true
	case isa.Xor:
		return a ^ b, true
	case isa.Shl:
		return a << (uint32(b) & 31), true
	case isa.Shr:
		return int32(uint32(a) >> (uint32(b) & 31)), true
	case isa.Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.Mod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
	return 0, false
}

// compact removes dropped instructions and remaps labels, reloc indices and
// the bound-instruction set.
func (cg *codegen) compact(keep []bool, relocated map[int]bool) {
	newIdx := make([]int, len(cg.out)+1)
	n := 0
	for i := range cg.out {
		newIdx[i] = n
		if keep[i] {
			n++
		}
	}
	newIdx[len(cg.out)] = n
	out := make([]isa.Instr, 0, n)
	poss := make([]Pos, 0, n)
	for i, in := range cg.out {
		if keep[i] {
			out = append(out, in)
			poss = append(poss, cg.poss[i])
		}
	}
	cg.out = out
	cg.poss = poss
	for id, pos := range cg.labels {
		if pos >= 0 {
			cg.labels[id] = newIdx[pos]
		}
	}
	newBound := map[int]bool{}
	for pos := range cg.boundAt {
		newBound[newIdx[pos]] = true
	}
	cg.boundAt = newBound
	newRelocs := cg.relocs[:0]
	newRelocated := map[int]bool{}
	for _, r := range cg.relocs {
		if keep[r.Instr] {
			r.Instr = newIdx[r.Instr]
			newRelocs = append(newRelocs, r)
			newRelocated[r.Instr] = true
		}
	}
	cg.relocs = newRelocs
	for k := range relocated {
		delete(relocated, k)
	}
	for k := range newRelocated {
		relocated[k] = true
	}
}
