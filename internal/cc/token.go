// Package cc implements the TICS-C compiler: a from-scratch front end for
// the C subset the paper's benchmarks need — pointers, arrays, recursion,
// globals, char/int/uint — extended with the TICS time annotations
// (@expires_after, @=, @expires/catch, @timely/else). It compiles to the
// stack-machine bytecode in internal/isa.
package cc

import "fmt"

// Kind is a lexical token kind.
type Kind int

const (
	EOF Kind = iota
	Ident
	Number // integer literal (decimal, hex, char), possibly time-suffixed
	// Keywords.
	KwInt
	KwUint
	KwChar
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwCatch
	KwSwitch
	KwCase
	KwDefault
	KwDo
	// TICS annotations.
	AtExpiresAfter // @expires_after
	AtExpires      // @expires
	AtTimely       // @timely
	AtAssign       // @=
	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	PlusPlus
	MinusMinus
	Question
	Colon
	PlusAssign  // +=
	MinusAssign // -=
	StarAssign  // *=
	AmpAssign   // &=
	PipeAssign  // |=
	CaretAssign // ^=
	ShlAssign   // <<=
	ShrAssign   // >>=
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Number: "number",
	KwInt: "int", KwUint: "uint", KwChar: "char", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue", KwCatch: "catch",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default", KwDo: "do",
	AtExpiresAfter: "@expires_after", AtExpires: "@expires", AtTimely: "@timely", AtAssign: "@=",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBrack: "[", RBrack: "]",
	Comma: ",", Semi: ";", Assign: "=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	PlusPlus: "++", MinusMinus: "--", Question: "?", Colon: ":",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=", AmpAssign: "&=",
	PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier spelling
	Val  int64  // numeric value (milliseconds for time-suffixed literals)
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case Number:
		return fmt.Sprintf("%d", t.Val)
	default:
		return t.Kind.String()
	}
}

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
