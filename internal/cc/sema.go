package cc

import "fmt"

// SymKind classifies a resolved symbol.
type SymKind int

const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
)

// Symbol is a resolved variable.
type Symbol struct {
	Name string
	Kind SymKind
	Type *Type
	// Globals: index into Unit.Globals (the code generator assigns the
	// address space offset).
	GlobalIndex int
	Global      *GlobalDecl
	// Locals and parameters: FP-relative byte offset of the slot (for
	// arrays, of the lowest address).
	FPOff int32
}

// Unit is a semantically analyzed translation unit.
type Unit struct {
	File    *File
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	Main    *FuncDecl
	// HasRecursion reports whether any function participates in a
	// call-graph cycle (Chinchilla-style static promotion rejects these).
	HasRecursion bool
	// UsesPointers reports whether the program declares pointer variables
	// or takes addresses (task-based models reject these, Table 5).
	UsesPointers bool
}

func usesPtr(t *Type) bool {
	for ; t != nil; t = t.Elem {
		if t.Kind == TPtr {
			return true
		}
	}
	return false
}

type scope struct {
	parent *scope
	syms   map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

type analyzer struct {
	unit    *Unit
	globals map[string]*Symbol
	funcs   map[string]*FuncDecl
	fn      *FuncDecl
	scope   *scope
	frame   int32 // running local frame size in bytes
	loops   int   // continue targets
	breaks  int   // break targets (loops and switches)
}

// Analyze resolves names, checks types, lays out stack frames and detects
// recursion for a parsed file.
func Analyze(f *File) (*Unit, error) {
	a := &analyzer{
		unit:    &Unit{File: f, Globals: f.Globals, Funcs: f.Funcs},
		globals: map[string]*Symbol{},
		funcs:   map[string]*FuncDecl{},
	}
	for i, g := range f.Globals {
		if g.Type.Kind == TVoid {
			return nil, errf(g.P, "global %s has void type", g.Name)
		}
		if _, dup := a.globals[g.Name]; dup {
			return nil, errf(g.P, "duplicate global %s", g.Name)
		}
		if g.ExpiresAfterMs >= 0 && !g.Type.Decay().IsScalar() && g.Type.Kind != TArray {
			return nil, errf(g.P, "@expires_after on unsupported type %s", g.Type)
		}
		if usesPtr(g.Type) {
			a.unit.UsesPointers = true
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, GlobalIndex: i, Global: g}
		g.Sym = sym
		a.globals[g.Name] = sym
	}
	for i, fn := range f.Funcs {
		if _, dup := a.funcs[fn.Name]; dup {
			return nil, errf(fn.P, "duplicate function %s", fn.Name)
		}
		if _, isB := builtins[fn.Name]; isB {
			return nil, errf(fn.P, "function %s shadows a builtin", fn.Name)
		}
		fn.Index = i
		fn.Calls = map[string]bool{}
		a.funcs[fn.Name] = fn
	}
	for _, fn := range f.Funcs {
		if err := a.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	main, ok := a.funcs["main"]
	if !ok {
		return nil, fmt.Errorf("cc: program has no main function")
	}
	if len(main.Params) != 0 {
		return nil, errf(main.P, "main must take no parameters")
	}
	a.unit.Main = main
	a.markRecursion()
	return a.unit, nil
}

// markRecursion finds call-graph cycles and marks every function on one.
func (a *analyzer) markRecursion() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	onStack := []string{}
	var visit func(name string)
	visit = func(name string) {
		color[name] = gray
		onStack = append(onStack, name)
		fn := a.funcs[name]
		for callee := range fn.Calls {
			cf, ok := a.funcs[callee]
			if !ok {
				continue
			}
			switch color[callee] {
			case white:
				visit(callee)
			case gray:
				// Found a cycle: mark everything from callee to top of stack.
				mark := false
				for _, n := range onStack {
					if n == callee {
						mark = true
					}
					if mark {
						a.funcs[n].Recursive = true
						a.unit.HasRecursion = true
					}
				}
				_ = cf
			}
		}
		onStack = onStack[:len(onStack)-1]
		color[name] = black
	}
	for name := range a.funcs {
		if color[name] == white {
			visit(name)
		}
	}
}

func (a *analyzer) checkFunc(fn *FuncDecl) error {
	a.fn = fn
	a.frame = 0
	a.loops = 0
	a.breaks = 0
	a.scope = &scope{syms: map[string]*Symbol{}}
	for i := range fn.Params {
		p := &fn.Params[i]
		if usesPtr(p.Type) {
			a.unit.UsesPointers = true
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type, FPOff: int32(8 + 4*i)}
		p.Sym = sym
		if _, dup := a.scope.syms[p.Name]; dup {
			return errf(fn.P, "duplicate parameter %s in %s", p.Name, fn.Name)
		}
		a.scope.syms[p.Name] = sym
	}
	if err := a.checkBlock(fn.Body); err != nil {
		return err
	}
	fn.LocalBytes = int(a.frame)
	return nil
}

func (a *analyzer) push() { a.scope = &scope{parent: a.scope, syms: map[string]*Symbol{}} }
func (a *analyzer) pop()  { a.scope = a.scope.parent }

func (a *analyzer) checkBlock(b *Block) error {
	a.push()
	defer a.pop()
	for _, s := range b.Stmts {
		if err := a.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (a *analyzer) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return a.checkBlock(st)
	case *ExprStmt:
		_, err := a.checkExpr(st.X)
		return err
	case *LocalDecl:
		if st.Init != nil {
			it, err := a.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if err := a.assignable(st.Pos(), st.Type, it, st.Init); err != nil {
				return err
			}
		}
		if usesPtr(st.Type) {
			a.unit.UsesPointers = true
		}
		size := int32((st.Type.Size() + 3) &^ 3)
		a.frame += size
		sym := &Symbol{Name: st.Name, Kind: SymLocal, Type: st.Type, FPOff: -a.frame}
		st.Sym = sym
		if _, dup := a.scope.syms[st.Name]; dup {
			return errf(st.Pos(), "duplicate variable %s", st.Name)
		}
		a.scope.syms[st.Name] = sym
		return nil
	case *If:
		if err := a.checkCond(st.Cond); err != nil {
			return err
		}
		if err := a.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkStmt(st.Else)
		}
		return nil
	case *While:
		if err := a.checkCond(st.Cond); err != nil {
			return err
		}
		a.loops++
		a.breaks++
		defer func() { a.loops--; a.breaks-- }()
		return a.checkStmt(st.Body)
	case *DoWhile:
		a.loops++
		a.breaks++
		err := a.checkStmt(st.Body)
		a.loops--
		a.breaks--
		if err != nil {
			return err
		}
		return a.checkCond(st.Cond)
	case *Switch:
		t, err := a.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if !t.IsInteger() {
			return errf(st.Pos(), "switch needs an integer expression, got %s", t)
		}
		// The code generator spills the switch value into a hidden slot.
		a.frame += 4
		st.TempOff = -a.frame
		seen := map[int64]bool{}
		for _, g := range st.Groups {
			for _, v := range g.Vals {
				if seen[v] {
					return errf(st.Pos(), "duplicate case %d", v)
				}
				seen[v] = true
			}
		}
		a.breaks++
		defer func() { a.breaks-- }()
		for gi := range st.Groups {
			a.push()
			for _, sub := range st.Groups[gi].Stmts {
				if err := a.checkStmt(sub); err != nil {
					a.pop()
					return err
				}
			}
			a.pop()
		}
		return nil
	case *For:
		if st.Init != nil {
			if _, err := a.checkExpr(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := a.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := a.checkExpr(st.Post); err != nil {
				return err
			}
		}
		a.loops++
		a.breaks++
		defer func() { a.loops--; a.breaks-- }()
		return a.checkStmt(st.Body)
	case *Return:
		if st.X == nil {
			if a.fn.Ret.Kind != TVoid {
				return errf(st.Pos(), "%s must return a %s value", a.fn.Name, a.fn.Ret)
			}
			return nil
		}
		if a.fn.Ret.Kind == TVoid {
			return errf(st.Pos(), "void function %s returns a value", a.fn.Name)
		}
		t, err := a.checkExpr(st.X)
		if err != nil {
			return err
		}
		return a.assignable(st.Pos(), a.fn.Ret, t, st.X)
	case *Break:
		if a.breaks == 0 {
			return errf(st.Pos(), "break outside a loop or switch")
		}
		return nil
	case *Continue:
		if a.loops == 0 {
			return errf(st.Pos(), "continue outside a loop")
		}
		return nil
	case *ExpiresStmt:
		if _, err := a.checkExpr(st.LV); err != nil {
			return err
		}
		if _, err := a.annotatedSlot(st.LV); err != nil {
			return err
		}
		if err := a.checkBlock(st.Body); err != nil {
			return err
		}
		if st.Catch != nil {
			return a.checkBlock(st.Catch)
		}
		return nil
	case *TimelyStmt:
		t, err := a.checkExpr(st.Deadline)
		if err != nil {
			return err
		}
		if !t.IsInteger() {
			return errf(st.Pos(), "@timely deadline must be an integer time, got %s", t)
		}
		if err := a.checkBlock(st.Body); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkBlock(st.Else)
		}
		return nil
	}
	return fmt.Errorf("cc: unhandled statement %T", s)
}

// annotatedSlot checks that lv names a @expires_after-annotated global (or
// an element of one) and returns its declaration.
func (a *analyzer) annotatedSlot(lv Expr) (*GlobalDecl, error) {
	switch e := lv.(type) {
	case *VarRef:
		if e.Sym == nil || e.Sym.Kind != SymGlobal {
			return nil, errf(lv.Pos(), "time annotations apply to globals; %s is not one", e.Name)
		}
		g := e.Sym.Global
		if g.ExpiresAfterMs < 0 {
			return nil, errf(lv.Pos(), "%s has no @expires_after annotation", e.Name)
		}
		return g, nil
	case *Index:
		base, ok := e.Base.(*VarRef)
		if !ok || base.Sym == nil || base.Sym.Kind != SymGlobal || base.Sym.Type.Kind != TArray {
			return nil, errf(lv.Pos(), "time-annotated element access must index a global array directly")
		}
		g := base.Sym.Global
		if g.ExpiresAfterMs < 0 {
			return nil, errf(lv.Pos(), "%s has no @expires_after annotation", base.Name)
		}
		return g, nil
	}
	return nil, errf(lv.Pos(), "not a time-annotatable lvalue")
}

func (a *analyzer) checkCond(e Expr) error {
	t, err := a.checkExpr(e)
	if err != nil {
		return err
	}
	if !t.Decay().IsScalar() {
		return errf(e.Pos(), "condition must be scalar, got %s", t)
	}
	return nil
}

// isLValue reports whether e designates a storage location.
func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *VarRef:
		return true
	case *Index:
		return true
	case *Unary:
		return x.Op == Star
	}
	return false
}

func (a *analyzer) assignable(pos Pos, dst *Type, src *Type, srcExpr Expr) error {
	dst = dst.Decay()
	src = src.Decay()
	if dst.IsInteger() && src.IsInteger() {
		return nil
	}
	if dst.Kind == TPtr {
		if src.Kind == TPtr && (dst.Elem.Same(src.Elem) || dst.Elem.Kind == TVoid || src.Elem.Kind == TVoid) {
			return nil
		}
		if n, ok := srcExpr.(*NumLit); ok && n.Val == 0 {
			return nil // null pointer constant
		}
	}
	if dst.IsInteger() && src.Kind == TPtr {
		return nil // pointer-to-int, used by hash functions over addresses
	}
	return errf(pos, "cannot assign %s to %s", src, dst)
}

func (a *analyzer) checkExpr(e Expr) (*Type, error) {
	t, err := a.typeOf(e)
	if err != nil {
		return nil, err
	}
	e.setType(t)
	return t, nil
}

func (a *analyzer) typeOf(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *NumLit:
		return IntType(), nil
	case *VarRef:
		sym := a.scope.lookup(x.Name)
		if sym == nil {
			sym = a.globals[x.Name]
		}
		if sym == nil {
			return nil, errf(x.Pos(), "undefined variable %s", x.Name)
		}
		x.Sym = sym
		return sym.Type, nil
	case *Unary:
		xt, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case Minus, Tilde:
			if !xt.IsInteger() {
				return nil, errf(x.Pos(), "operator %s needs an integer, got %s", x.Op, xt)
			}
			return promote(xt), nil
		case Bang:
			if !xt.Decay().IsScalar() {
				return nil, errf(x.Pos(), "operator ! needs a scalar, got %s", xt)
			}
			return IntType(), nil
		case Star:
			dt := xt.Decay()
			if dt.Kind != TPtr {
				return nil, errf(x.Pos(), "cannot dereference %s", xt)
			}
			if dt.Elem.Kind == TVoid {
				return nil, errf(x.Pos(), "cannot dereference void*")
			}
			return dt.Elem, nil
		case Amp:
			if !isLValue(x.X) {
				return nil, errf(x.Pos(), "cannot take the address of this expression")
			}
			a.unit.UsesPointers = true
			return PtrTo(xt), nil
		}
		return nil, errf(x.Pos(), "unhandled unary %s", x.Op)
	case *Binary:
		lt, err := a.checkExpr(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := a.checkExpr(x.R)
		if err != nil {
			return nil, err
		}
		ld, rd := lt.Decay(), rt.Decay()
		switch x.Op {
		case AndAnd, OrOr:
			if !ld.IsScalar() || !rd.IsScalar() {
				return nil, errf(x.Pos(), "logical operands must be scalar")
			}
			return IntType(), nil
		case EqEq, NotEq, Lt, Le, Gt, Ge:
			if !ld.IsScalar() || !rd.IsScalar() {
				return nil, errf(x.Pos(), "comparison operands must be scalar")
			}
			return IntType(), nil
		case Plus:
			if ld.Kind == TPtr && rd.IsInteger() {
				return ld, nil
			}
			if rd.Kind == TPtr && ld.IsInteger() {
				return rd, nil
			}
		case Minus:
			if ld.Kind == TPtr && rd.IsInteger() {
				return ld, nil
			}
			if ld.Kind == TPtr && rd.Kind == TPtr {
				return IntType(), nil
			}
		}
		if !ld.IsInteger() || !rd.IsInteger() {
			return nil, errf(x.Pos(), "operator %s needs integer operands, got %s and %s", x.Op, lt, rt)
		}
		if promote(ld).Kind == TUint || promote(rd).Kind == TUint {
			return UintType(), nil
		}
		return IntType(), nil
	case *Index:
		bt, err := a.checkExpr(x.Base)
		if err != nil {
			return nil, err
		}
		it, err := a.checkExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		bd := bt.Decay()
		if bd.Kind != TPtr {
			return nil, errf(x.Pos(), "cannot index %s", bt)
		}
		if !it.IsInteger() {
			return nil, errf(x.Pos(), "array index must be an integer, got %s", it)
		}
		return bd.Elem, nil
	case *Call:
		return a.checkCall(x)
	case *AssignExpr:
		if !isLValue(x.L) {
			return nil, errf(x.Pos(), "assignment target is not an lvalue")
		}
		lt, err := a.checkExpr(x.L)
		if err != nil {
			return nil, err
		}
		rt, err := a.checkExpr(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == AtAssign {
			if _, err := a.annotatedSlot(x.L); err != nil {
				return nil, err
			}
		}
		switch x.Op {
		case PlusAssign, MinusAssign:
			if !lt.IsInteger() && lt.Decay().Kind != TPtr {
				return nil, errf(x.Pos(), "%s needs an arithmetic target", x.Op)
			}
			if !rt.IsInteger() {
				return nil, errf(x.Pos(), "%s needs an integer operand", x.Op)
			}
			return lt, nil
		case StarAssign, AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign:
			if !lt.IsInteger() || !rt.IsInteger() {
				return nil, errf(x.Pos(), "%s needs integer operands", x.Op)
			}
			return lt, nil
		}
		if err := a.assignable(x.Pos(), lt, rt, x.R); err != nil {
			return nil, err
		}
		return lt, nil
	case *IncDec:
		if !isLValue(x.X) {
			return nil, errf(x.Pos(), "%s target is not an lvalue", x.Op)
		}
		xt, err := a.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !xt.IsInteger() && xt.Decay().Kind != TPtr {
			return nil, errf(x.Pos(), "%s needs an arithmetic target, got %s", x.Op, xt)
		}
		return xt, nil
	case *Cond:
		if err := a.checkCond(x.C); err != nil {
			return nil, err
		}
		tt, err := a.checkExpr(x.T)
		if err != nil {
			return nil, err
		}
		ft, err := a.checkExpr(x.F)
		if err != nil {
			return nil, err
		}
		td, fd := tt.Decay(), ft.Decay()
		if td.IsInteger() && fd.IsInteger() {
			if td.Kind == TUint || fd.Kind == TUint {
				return UintType(), nil
			}
			return IntType(), nil
		}
		if td.Same(fd) {
			return td, nil
		}
		return nil, errf(x.Pos(), "mismatched ?: arms: %s vs %s", tt, ft)
	}
	return nil, errf(e.Pos(), "unhandled expression %T", e)
}

// promote widens char to int for arithmetic.
func promote(t *Type) *Type {
	if t.Kind == TChar {
		return IntType()
	}
	return t
}

func (a *analyzer) checkCall(c *Call) (*Type, error) {
	if b, ok := builtins[c.Name]; ok {
		c.Builtin = b
		a.fn.Calls[c.Name] = false // builtins don't create graph edges; keep map allocated
		delete(a.fn.Calls, c.Name)
		return a.checkBuiltin(c, b)
	}
	fn, ok := a.funcs[c.Name]
	if !ok {
		return nil, errf(c.Pos(), "undefined function %s", c.Name)
	}
	c.Fn = fn
	a.fn.Calls[c.Name] = true
	if len(c.Args) != len(fn.Params) {
		return nil, errf(c.Pos(), "%s takes %d arguments, got %d", c.Name, len(fn.Params), len(c.Args))
	}
	for i, arg := range c.Args {
		at, err := a.checkExpr(arg)
		if err != nil {
			return nil, err
		}
		if err := a.assignable(arg.Pos(), fn.Params[i].Type, at, arg); err != nil {
			return nil, err
		}
	}
	return fn.Ret, nil
}

func (a *analyzer) checkBuiltin(c *Call, b Builtin) (*Type, error) {
	arity := map[Builtin]int{
		BSense: 1, BSend: 1, BOut: 2, BMark: 1, BNow: 0, BCheckpoint: 0, BTransitionTo: 1,
	}
	want := arity[b]
	if len(c.Args) != want {
		return nil, errf(c.Pos(), "builtin %s takes %d arguments, got %d", c.Name, want, len(c.Args))
	}
	for _, arg := range c.Args {
		at, err := a.checkExpr(arg)
		if err != nil {
			return nil, err
		}
		if !at.Decay().IsScalar() {
			return nil, errf(arg.Pos(), "builtin %s argument must be scalar, got %s", c.Name, at)
		}
	}
	// Constant-argument requirements: sensor ids, channels, mark ids and
	// task ids become instruction immediates.
	needConst := func(i int) error {
		if _, ok := c.Args[i].(*NumLit); !ok {
			return errf(c.Args[i].Pos(), "builtin %s argument %d must be an integer constant", c.Name, i+1)
		}
		return nil
	}
	switch b {
	case BSense, BMark, BTransitionTo:
		if err := needConst(0); err != nil {
			return nil, err
		}
	case BOut:
		if err := needConst(0); err != nil {
			return nil, err
		}
	}
	switch b {
	case BSense, BNow:
		return IntType(), nil
	default:
		return VoidType(), nil
	}
}
