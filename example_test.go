package tics_test

import (
	"fmt"

	tics "repro"
	"repro/internal/power"
)

// Example runs a recursive, pointer-using legacy program to completion
// across hundreds of injected power failures and shows that the committed
// result matches continuous execution.
func Example() {
	const src = `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    out(0, fib(12));
    return 0;
}
`
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          &power.FailEvery{Cycles: 5000, OffMs: 10},
		AutoCpPeriodMs: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := m.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed=%v fib(12)=%d failures>0=%v\n",
		res.Completed, res.OutLog[0][0], res.Failures > 0)
	// Output: completed=true fib(12)=144 failures>0=true
}

// ExampleBuild shows the porting-effort contrast: the same pointer-using
// source builds unmodified for TICS but is rejected by a task-based model.
func ExampleBuild() {
	const src = `
int a = 1;
int b = 2;
void swap(int *x, int *y) { int t = *x; *x = *y; *y = t; }
int main() { swap(&a, &b); out(0, a); return 0; }
`
	if _, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS}); err == nil {
		fmt.Println("tics: builds unmodified")
	}
	_, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTAlpaca, Tasks: []string{"main"}})
	fmt.Println("alpaca:", err)
	// Output:
	// tics: builds unmodified
	// alpaca: taskrt: alpaca: task-based models cannot support pointers (static data-flow channels)
}
