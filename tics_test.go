package tics_test

import (
	"strings"
	"testing"

	tics "repro"
	"repro/internal/apps"
)

func TestRuntimesList(t *testing.T) {
	kinds := tics.Runtimes()
	if len(kinds) != 8 {
		t.Fatalf("%d runtimes", len(kinds))
	}
	seen := map[tics.RuntimeKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate runtime %s", k)
		}
		seen[k] = true
	}
	if !seen[tics.RTTICS] || !seen[tics.RTPlain] {
		t.Fatalf("missing core kinds: %v", kinds)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := tics.Build("int main() { return 0; }", tics.BuildOptions{Runtime: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown runtime") {
		t.Fatalf("unknown runtime: %v", err)
	}
	if _, err := tics.Build("not a program", tics.BuildOptions{}); err == nil {
		t.Fatal("garbage source accepted")
	}
	// Task runtimes without a task list.
	if _, err := tics.Build("int main() { return 0; }", tics.BuildOptions{Runtime: tics.RTAlpaca}); err == nil {
		// Build defers to NewMachine for some task validation; either must fail.
		img, _ := tics.Build("int main() { return 0; }", tics.BuildOptions{Runtime: tics.RTAlpaca})
		if _, err2 := tics.NewMachine(img, tics.RunOptions{}); err2 == nil {
			t.Fatal("task runtime without tasks accepted")
		}
	}
	// Segment below the program minimum.
	src := apps.BC().Source
	if _, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS, SegmentBytes: 8}); err == nil {
		img, _ := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS, SegmentBytes: 8})
		if _, err2 := tics.NewMachine(img, tics.RunOptions{}); err2 == nil {
			t.Fatal("undersized segment accepted")
		}
	}
	// Bad undo block size.
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS, UndoBlockBytes: 7})
	if err == nil {
		if _, err2 := tics.NewMachine(img, tics.RunOptions{}); err2 == nil {
			t.Fatal("non-power-of-two undo block accepted")
		}
	}
}

func TestWithO0(t *testing.T) {
	base := tics.BuildOptions{Runtime: tics.RTTICS}
	o0 := base.WithO0()
	imgBase, err := tics.Build(apps.CF().Source, base)
	if err != nil {
		t.Fatal(err)
	}
	imgO0, err := tics.Build(apps.CF().Source, o0)
	if err != nil {
		t.Fatal(err)
	}
	if imgO0.Sect.Text <= imgBase.Sect.Text {
		t.Fatalf("O0 text (%d) should exceed O2 text (%d)", imgO0.Sect.Text, imgBase.Sect.Text)
	}
}

func TestCompileFacade(t *testing.T) {
	prog, err := tics.Compile(apps.Swap().Source, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.UsesPointers {
		t.Fatal("swap should use pointers")
	}
	if prog.MinSegmentBytes() <= 0 {
		t.Fatal("segment floor")
	}
}

func TestAppRegistry(t *testing.T) {
	names := []string{"ar", "bc", "cf", "ghm", "ghm-tinyos", "swap", "bubble", "timekeeping"}
	for _, n := range names {
		app, ok := apps.ByName(n)
		if !ok {
			t.Fatalf("missing app %s", n)
		}
		if app.Source == "" {
			t.Fatalf("%s has no source", n)
		}
		if _, err := tics.Compile(app.Source, 2); err != nil {
			t.Fatalf("%s does not compile: %v", n, err)
		}
	}
	if _, ok := apps.ByName("nope"); ok {
		t.Fatal("unknown app found")
	}
	if len(apps.All()) != 5 {
		t.Fatalf("benchmark registry: %d", len(apps.All()))
	}
	// The no-recursion BC variant must genuinely differ and drop recursion.
	norec := apps.BCNoRecursion()
	if norec.Source == apps.BC().Source {
		t.Fatal("bc-norec equals bc")
	}
	prog, err := tics.Compile(norec.Source, 2)
	if err != nil {
		t.Fatal(err)
	}
	if prog.HasRecursion {
		t.Fatal("bc-norec still recursive")
	}
}
