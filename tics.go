// Package tics is the public API of the TICS reproduction: a
// time-sensitive intermittent computing system for legacy code (Kortbeek
// et al., ASPLOS 2020), rebuilt as a full simulation stack in Go.
//
// The pipeline is Compile (TICS-C source → relocatable program) → Build
// (instrument + link for a runtime → firmware image + runtime factory) →
// NewMachine (attach power source, persistent clock, sensors) → Run.
//
//	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
//	m, err := tics.NewMachine(img, tics.RunOptions{Power: &power.DutyCycle{Rate: 0.5, OnMs: 100}})
//	res, err := m.Run()
//
// Everything below delegates to the internal packages; see DESIGN.md for
// the system inventory.
package tics

import (
	"fmt"
	"sync"

	"repro/internal/baseline/chinchilla"
	"repro/internal/baseline/mementos"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sensors"
	"repro/internal/taskrt"
	"repro/internal/timekeeper"
	"repro/internal/vm"
)

// RuntimeKind selects the intermittency-protection strategy.
type RuntimeKind string

const (
	// RTPlain is an unprotected conventional runtime: the correctness
	// oracle under continuous power, and the restart-from-main failure
	// mode under intermittent power.
	RTPlain RuntimeKind = "plain"
	// RTTICS is the paper's system.
	RTTICS RuntimeKind = "tics"
	// RTTICSTask is the paper's ST configuration: TICS with extra
	// checkpoints at logical task boundaries (mark sites).
	RTTICSTask RuntimeKind = "tics-st"
	// RTMementos is the naive full-state checkpointing baseline.
	RTMementos RuntimeKind = "mementos"
	// RTChinchilla is the static-promotion checkpointing baseline.
	RTChinchilla RuntimeKind = "chinchilla"
	// RTAlpaca, RTInK and RTMayFly are the task-based baselines; builds
	// need a task Config (BuildOptions.Tasks/Edges).
	RTAlpaca RuntimeKind = "alpaca"
	RTInK    RuntimeKind = "ink"
	RTMayFly RuntimeKind = "mayfly"
)

// Runtimes lists every supported runtime kind.
func Runtimes() []RuntimeKind {
	return []RuntimeKind{RTPlain, RTTICS, RTTICSTask, RTMementos, RTChinchilla, RTAlpaca, RTInK, RTMayFly}
}

// BuildOptions configures compilation, instrumentation and linking.
type BuildOptions struct {
	Runtime RuntimeKind
	// OptLevel is 0 or 2 (default 2).
	OptLevel    int
	optLevelSet bool

	// TICS knobs.
	SegmentBytes int // working-stack segment size (0 = program minimum)
	StackBytes   int // segment array size (default 2048)
	UndoCapBytes int // undo log capacity (default 2048)
	// UndoBlockBytes selects undo-log granularity (0/4 = per word, the
	// paper's design; larger powers of two log whole blocks once per
	// epoch). DifferentialCheckpoints captures only the used part of the
	// working segment. Both are ablation extensions — see core.Config.
	UndoBlockBytes          int
	DifferentialCheckpoints bool

	// Mementos knobs.
	VoltageThresholdCycles int64
	VersionGlobals         *bool // default true; false demonstrates WAR violations

	// Task decomposition (alpaca / ink / mayfly).
	Tasks     []string
	StartTask int
	Edges     []taskrt.Edge
}

// WithO0 returns a copy of the options at optimization level 0.
func (b BuildOptions) WithO0() BuildOptions {
	b.OptLevel = 0
	b.optLevelSet = true
	return b
}

func (b BuildOptions) optLevel() int {
	if b.OptLevel == 0 && !b.optLevelSet {
		return 2
	}
	return b.OptLevel
}

// Image bundles a linked firmware image with a factory for its runtime
// (runtimes are stateful, so every machine gets a fresh instance).
//
// The image lazily caches a vm.Prepared — one decoded program plus one
// immutable post-link memory snapshot — that every machine built from it
// shares; devices fork the snapshot copy-on-write instead of each loading
// a private 64 KB copy. Images are therefore not copyable; pass *Image.
type Image struct {
	*link.Image
	Kind       RuntimeKind
	newRuntime func() (vm.Runtime, error)

	prepOnce sync.Once
	prep     *vm.Prepared
	prepErr  error
}

// prepared returns the image's shared vm.Prepared, building it on first
// use. Caching on the image (not in a global map keyed by image) keeps
// long-running servers that build fresh images per round leak-free.
func (img *Image) prepared() (*vm.Prepared, error) {
	img.prepOnce.Do(func() {
		img.prep, img.prepErr = vm.Prepare(img.Image)
	})
	return img.prep, img.prepErr
}

// Compile parses, checks and compiles TICS-C source without committing to
// a runtime (useful for inspection and tests).
func Compile(src string, optLevel int) (*cc.Program, error) {
	return cc.Compile(src, cc.Options{OptLevel: optLevel})
}

// Build compiles, instruments and links src for the chosen runtime.
func Build(src string, opts BuildOptions) (*Image, error) {
	if opts.Runtime == "" {
		opts.Runtime = RTTICS
	}
	ccOpts := cc.Options{OptLevel: opts.optLevel(), StaticLocals: opts.Runtime == RTChinchilla}
	prog, err := cc.Compile(src, ccOpts)
	if err != nil {
		return nil, err
	}

	var pass instrument.Pass
	var spec link.RuntimeSpec
	switch opts.Runtime {
	case RTPlain:
		spec = link.RuntimeSpec{Name: "plain", RuntimeBytes: 16, StackBytes: maxInt(opts.StackBytes, 2048)}
	case RTTICS, RTTICSTask:
		pass = instrument.ForTICS()
		if opts.Runtime == RTTICSTask {
			pass = instrument.ForTICSTaskBoundary()
		}
		spec = core.Spec(ticsConfig(opts), prog.MinSegmentBytes())
	case RTMementos:
		pass = instrument.ForMementos()
		stack := maxInt(opts.StackBytes, 2048)
		// Globals size is known pre-link: data + bss + mark counters.
		globals := int(prog.GlobalsBytes()) + 4*prog.MarkCount
		spec = mementos.Spec(mementosConfig(opts), globals, stack)
	case RTChinchilla:
		pass = instrument.ForChinchilla()
		spec = chinchilla.Spec(chinchilla.Config{StackBytes: opts.StackBytes}, prog)
	case RTAlpaca, RTInK, RTMayFly:
		if err := taskrt.Validate(taskConfig(opts), prog.HasRecursion, prog.UsesPointers); err != nil {
			return nil, err
		}
		pass = instrument.ForTask()
		spec = taskrt.Spec(taskConfig(opts))
	default:
		return nil, fmt.Errorf("tics: unknown runtime %q", opts.Runtime)
	}
	if opts.Runtime != RTPlain {
		if _, err := instrument.Apply(prog, pass); err != nil {
			return nil, err
		}
	}
	img, err := link.Link(prog, spec)
	if err != nil {
		return nil, err
	}

	out := &Image{Image: img, Kind: opts.Runtime}
	switch opts.Runtime {
	case RTPlain:
		out.newRuntime = func() (vm.Runtime, error) { return vm.NewPlain(), nil }
	case RTTICS, RTTICSTask:
		cfg := ticsConfig(opts)
		out.newRuntime = func() (vm.Runtime, error) { return core.New(img, cfg) }
	case RTMementos:
		cfg := mementosConfig(opts)
		out.newRuntime = func() (vm.Runtime, error) { return mementos.New(img, cfg) }
	case RTChinchilla:
		cfg := chinchilla.Config{StackBytes: opts.StackBytes}
		out.newRuntime = func() (vm.Runtime, error) { return chinchilla.New(img, cfg) }
	case RTAlpaca, RTInK, RTMayFly:
		cfg := taskConfig(opts)
		out.newRuntime = func() (vm.Runtime, error) { return taskrt.New(img, cfg) }
	}
	return out, nil
}

func ticsConfig(opts BuildOptions) core.Config {
	return core.Config{
		SegmentBytes:            opts.SegmentBytes,
		StackBytes:              opts.StackBytes,
		UndoCapBytes:            opts.UndoCapBytes,
		UndoBlockBytes:          opts.UndoBlockBytes,
		DifferentialCheckpoints: opts.DifferentialCheckpoints,
	}
}

func mementosConfig(opts BuildOptions) mementos.Config {
	cfg := mementos.DefaultConfig()
	cfg.VoltageThresholdCycles = opts.VoltageThresholdCycles
	if opts.VersionGlobals != nil {
		cfg.VersionGlobals = *opts.VersionGlobals
	}
	return cfg
}

func taskConfig(opts BuildOptions) taskrt.Config {
	kind := taskrt.Alpaca
	switch opts.Runtime {
	case RTInK:
		kind = taskrt.InK
	case RTMayFly:
		kind = taskrt.MayFly
	}
	return taskrt.Config{
		Kind:      kind,
		Tasks:     opts.Tasks,
		StartTask: opts.StartTask,
		Edges:     opts.Edges,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunOptions configures a machine.
type RunOptions struct {
	Power          power.Source
	Clock          timekeeper.Keeper
	Sensors        vm.SensorBank
	AutoCpPeriodMs float64
	MaxCycles      int64
	MaxFailures    int
	MaxWallMs      float64
	// InterruptPeriodMs fires a periodic timer interrupt into the function
	// named ISRName (default "isr_timer"); zero disables.
	InterruptPeriodMs float64
	ISRName           string
	// VirtualizeSends buffers radio sends in the runtime's commit
	// machinery so each committed send transmits exactly once (see
	// vm.Config.VirtualizeSends). Off by default: the raw radio
	// duplicates replayed sends, as real hardware does.
	VirtualizeSends bool
	// Recorder attaches a flight recorder: structured event trace,
	// cycle-attributed profile, and metrics. Nil disables all recording
	// (the zero-cost default).
	Recorder *obs.Recorder
}

// machineConfig maps RunOptions onto a vm.Config sharing the image's
// prepared program; NewMachine and ResetMachine must build machines
// identically, so they both go through here.
func machineConfig(prep *vm.Prepared, rt vm.Runtime, opts RunOptions) vm.Config {
	if opts.Sensors == nil {
		opts.Sensors = sensors.NewBank(1)
	}
	return vm.Config{
		Prepared:          prep,
		Power:             opts.Power,
		Clock:             opts.Clock,
		Runtime:           rt,
		Sensors:           opts.Sensors,
		AutoCpPeriodMs:    opts.AutoCpPeriodMs,
		MaxCycles:         opts.MaxCycles,
		MaxFailures:       opts.MaxFailures,
		MaxWallMs:         opts.MaxWallMs,
		InterruptPeriodMs: opts.InterruptPeriodMs,
		ISRName:           opts.ISRName,
		VirtualizeSends:   opts.VirtualizeSends,
		Recorder:          opts.Recorder,
	}
}

// NewMachine instantiates a fresh device (copy-on-write fork of the
// image's post-link memory, fresh runtime state) for the image.
func NewMachine(img *Image, opts RunOptions) (*vm.Machine, error) {
	rt, err := img.newRuntime()
	if err != nil {
		return nil, err
	}
	prep, err := img.prepared()
	if err != nil {
		return nil, err
	}
	return vm.New(machineConfig(prep, rt, opts))
}

// ResetMachine rebinds a machine previously built by NewMachine(img, ...)
// to run as a brand-new device of the same image: memory returns to the
// post-link snapshot, all counters and logs clear, and a fresh runtime
// instance is installed. Device pools use it to reuse machines across
// waves; the result is indistinguishable from NewMachine.
func ResetMachine(m *vm.Machine, img *Image, opts RunOptions) error {
	rt, err := img.newRuntime()
	if err != nil {
		return err
	}
	prep, err := img.prepared()
	if err != nil {
		return err
	}
	return m.Reset(machineConfig(prep, rt, opts))
}

// Run is the one-shot helper: build, boot, run.
func Run(src string, b BuildOptions, r RunOptions) (vm.Result, error) {
	img, err := Build(src, b)
	if err != nil {
		return vm.Result{}, err
	}
	m, err := NewMachine(img, r)
	if err != nil {
		return vm.Result{}, err
	}
	return m.Run()
}
