// Acceptance tests for the trace auditor: TICS must audit clean on every
// benchmark under every power model, and genuinely broken recovery
// (Mementos without versioned globals, an undo-log entry dropped by fault
// injection) must be flagged with the offending address.
package tics_test

import (
	"fmt"
	"testing"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sensors"
)

func TestAuditCleanOnTICSAppsAcrossPowerModels(t *testing.T) {
	powers := []struct {
		name string
		mk   func() power.Source
	}{
		{"continuous", func() power.Source { return power.Continuous{} }},
		{"fail-every", func() power.Source { return &power.FailEvery{Cycles: 9973, OffMs: 7} }},
		{"duty-cycle", func() power.Source { return &power.DutyCycle{Rate: 0.48, OnMs: 40} }},
		{"harvester", func() power.Source { return power.NewHarvester(40_000, 800, 0.5, 11) }},
	}
	for _, app := range []apps.App{apps.BC(), apps.CF(), apps.AR()} {
		for _, pw := range powers {
			t.Run(fmt.Sprintf("%s/%s", app.Name, pw.name), func(t *testing.T) {
				img, err := tics.Build(app.Source, tics.BuildOptions{Runtime: tics.RTTICS})
				if err != nil {
					t.Fatal(err)
				}
				m, err := tics.NewMachine(img, tics.RunOptions{
					Power:          pw.mk(),
					Sensors:        sensors.NewBank(1),
					AutoCpPeriodMs: 2,
					Recorder:       obs.NewRecorder(obs.Options{}),
				})
				if err != nil {
					t.Fatal(err)
				}
				a, err := audit.Attach(m, audit.Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.Run()
				if err != nil || !res.Completed {
					t.Fatalf("run: %v %+v", err, res)
				}
				if err := a.Err(); err != nil {
					t.Fatalf("TICS audit on %s/%s:\n%v", app.Name, pw.name, err)
				}
			})
		}
	}
}

// Mementos with unversioned globals (the paper's Table 1 configuration of
// the checkpoint-only baselines) genuinely violates rollback exactness:
// globals written after the last checkpoint survive the reboot. The
// auditor must catch it and name a corrupted address with the event that
// wrote it.
func TestAuditFlagsMementosUnversionedGlobals(t *testing.T) {
	noVersioning := false
	img, err := tics.Build(apps.BC().Source, tics.BuildOptions{
		Runtime:        tics.RTMementos,
		VersionGlobals: &noVersioning,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          &power.FailEvery{Cycles: 9973, OffMs: 7},
		Sensors:        sensors.NewBank(1),
		AutoCpPeriodMs: 2,
		Recorder:       obs.NewRecorder(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := audit.Attach(m, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Total() == 0 {
		t.Fatal("auditor passed Mementos without versioned globals")
	}
	var found bool
	base, end := a.Region()
	for _, v := range a.Violations() {
		if v.Check == audit.CheckRollback {
			found = true
			if v.Addr < base || v.Addr >= end {
				t.Fatalf("violation address %#x outside data region [%#x,%#x)", v.Addr, base, end)
			}
			if v.WriterSeq < 0 {
				t.Fatalf("rollback violation lacks causing-write attribution: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("no rollback-exactness violation among %d: %v", a.Total(), a.Violations())
	}

	// Control: with versioned globals (the default) the same configuration
	// audits clean — the violations above are real, not auditor noise.
	img2, err := tics.Build(apps.BC().Source, tics.BuildOptions{Runtime: tics.RTMementos})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tics.NewMachine(img2, tics.RunOptions{
		Power:          &power.FailEvery{Cycles: 9973, OffMs: 7},
		Sensors:        sensors.NewBank(1),
		AutoCpPeriodMs: 2,
		Recorder:       obs.NewRecorder(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := audit.Attach(m2, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := m2.Run(); err != nil || !res.Completed {
		t.Fatalf("run: %v %+v", err, res)
	}
	if err := a2.Err(); err != nil {
		t.Fatalf("versioned Mementos flagged (auditor false positive): %v", err)
	}
}

// Fault injection: drop a single undo-log append inside TICS and the
// auditor must report the uncovered store with its address and event
// index (ISSUE acceptance criterion).
func TestAuditDetectsInjectedUndoSkip(t *testing.T) {
	img, err := tics.Build(apps.BC().Source, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          &power.FailEvery{Cycles: 9973, OffMs: 7},
		Sensors:        sensors.NewBank(1),
		AutoCpPeriodMs: 2,
		Recorder:       obs.NewRecorder(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, ok := m.Runtime().(*core.TICS)
	if !ok {
		t.Fatalf("runtime is %T, want *core.TICS", m.Runtime())
	}
	rt.InjectUndoSkip(5)
	a, err := audit.Attach(m, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Total() == 0 {
		t.Fatal("auditor missed the dropped undo-log append")
	}
	v := a.Violations()[0]
	if v.Check != audit.CheckUndoLog {
		t.Fatalf("first violation is %s, want %s: %+v", v.Check, audit.CheckUndoLog, v)
	}
	base, end := a.Region()
	if v.Addr < base || v.Addr >= end {
		t.Fatalf("offending address %#x outside data region [%#x,%#x)", v.Addr, base, end)
	}
	if v.EventSeq < 0 {
		t.Fatalf("violation lacks an event index: %+v", v)
	}
}

// The task runtimes (write-ahead redo/undo logs of their own) and
// Chinchilla also audit clean: their commit points genuinely restore
// exact state, and the auditor understands their event vocabulary.
func TestAuditCleanOnBaselineRuntimes(t *testing.T) {
	app := apps.BC()
	cases := []struct {
		name string
		opts tics.BuildOptions
		src  string
	}{
		{"chinchilla", tics.BuildOptions{Runtime: tics.RTChinchilla}, apps.BCNoRecursion().Source},
		{"mementos", tics.BuildOptions{Runtime: tics.RTMementos}, app.Source},
		// Alpaca tasks need a window long enough to reach a transition,
		// else the run Sisyphus-loops (that is a progress property, not a
		// state-consistency one — the auditor checks the latter).
		{"alpaca", tics.BuildOptions{Runtime: tics.RTAlpaca, Tasks: app.Tasks, Edges: app.Edges}, app.TaskSource},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img, err := tics.Build(tc.src, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			failEvery := int64(9973)
			if tc.name == "alpaca" {
				failEvery = 40_000
			}
			m, err := tics.NewMachine(img, tics.RunOptions{
				Power:          &power.FailEvery{Cycles: failEvery, OffMs: 7},
				Sensors:        sensors.NewBank(1),
				AutoCpPeriodMs: 2,
				Recorder:       obs.NewRecorder(obs.Options{}),
			})
			if err != nil {
				t.Fatal(err)
			}
			a, err := audit.Attach(m, audit.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil || !res.Completed {
				t.Fatalf("run: %v %+v", err, res)
			}
			if err := a.Err(); err != nil {
				t.Fatalf("%s audit: %v", tc.name, err)
			}
		})
	}
}
