// BenchmarkGateIngest prices the ticsgate durable-ingest path: frames
// per second through the fsync-on-batch WAL, WAL bytes per frame, and
// how long a cold Open (recovery replay) of the produced log takes. The
// results ride in BENCH_fleet.json under "gate" (merge-by-key, same
// ledger as the fleet sweep) so `ticsbench -compare` and the validator
// gate gateway-service regressions alongside fleet throughput.
package tics_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fleet"
	"repro/internal/gate"
)

// gateBatchSizes mirror realistic wave sizes: a trickle, a typical
// wave, and a large fleet's wave.
var gateBatchSizes = []int{1, 64, 512}

// gateFrames builds one batch of synthetic channel arrivals.
func gateFrames(n int, batch uint64) []gate.Frame {
	frames := make([]gate.Frame, n)
	for i := range frames {
		seq := int64(batch)*int64(n) + int64(i)
		frames[i] = gate.FrameFromArrival(fleet.Arrival{
			Dev: i % 97, Seq: seq, Value: int32(seq),
			SentMs: float64(seq), ArriveMs: float64(seq) + 7.5,
		}, 500)
	}
	return frames
}

func BenchmarkGateIngest(b *testing.B) {
	results := map[string]*bench.GateEntry{}
	for _, size := range gateBatchSizes {
		b.Run(bench.GateKey(size), func(b *testing.B) {
			dir := b.TempDir()
			st, err := gate.Open(dir, gate.Options{CompactLimit: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				applied, err := st.Ingest("bench", uint64(i+1), gateFrames(size, uint64(i)))
				if err != nil || !applied {
					b.Fatalf("batch %d: applied=%v err=%v", i+1, applied, err)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			frames := int64(b.N) * int64(size)
			walBytes := st.WALBytes()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}

			// Recovery cost: a cold open replays everything just written.
			st2, err := gate.Open(dir, gate.Options{CompactLimit: -1})
			if err != nil {
				b.Fatal(err)
			}
			rec := st2.Recovery()
			if rec.Batches != b.N || rec.ReplayedFrames != int(frames) {
				b.Fatalf("recovery replayed %d batches / %d frames, want %d / %d",
					rec.Batches, rec.ReplayedFrames, b.N, frames)
			}
			st2.Close()

			e := &bench.GateEntry{
				BatchFrames:   size,
				Batches:       b.N,
				FramesPerSec:  float64(frames) / elapsed,
				WALBytesFrame: float64(walBytes) / float64(frames),
				RecoveryMs:    rec.DurationMs,
			}
			b.ReportMetric(e.FramesPerSec, "frames/s")
			b.ReportMetric(e.WALBytesFrame, "walB/frame")
			b.ReportMetric(e.RecoveryMs, "recovery-ms")
			results[bench.GateKey(size)] = e
		})
	}
	if len(results) != len(gateBatchSizes) {
		return // sub-benchmark filter excluded some sizes; don't write a partial table
	}
	err := bench.Update("BENCH_fleet.json", func(f *bench.File) error {
		for key, e := range results {
			f.SetGate(key, e)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
