// Quickstart: compile a tiny time-annotated legacy program and run it on
// harvested intermittent power under TICS. The program keeps a running
// checksum in non-volatile memory, samples a sensor with an atomic
// data+timestamp assignment, and only acts on fresh readings — yet reads
// like plain C.
package main

import (
	"fmt"
	"log"

	tics "repro"
	"repro/internal/power"
	"repro/internal/sensors"
)

const src = `
// A legacy-style sensing loop with one TICS annotation.
#define ROUNDS 20

@expires_after=300 int reading;
int checksum;

int main() {
    int i;
    for (i = 0; i < ROUNDS; i++) {
        reading @= sense(4);              // atomic value + timestamp
        @expires(reading) {
            checksum = checksum * 31 + reading;
            mark(0);                      // fresh reading consumed
        } catch {
            mark(1);                      // stale reading discarded
        }
    }
    out(0, checksum);
    return 0;
}
`

func main() {
	img, err := tics.Build(src, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: .text %d B, .data %d B, min segment %d B\n",
		img.Sect.Text, img.Sect.Data, img.MinSegmentBytes())

	// A small capacitor: ~17 ms powered bursts, recharge times that
	// straddle the 300 ms freshness window.
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          power.NewHarvester(20_000, 55, 0.7, 7),
		Sensors:        sensors.NewBank(7),
		AutoCpPeriodMs: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed=%v after %d power failures (%.0f ms on, %.0f ms off)\n",
		res.Completed, res.Failures, res.OnMs, res.OffMs)
	fmt.Printf("checkpoints: %d %v\n", res.TotalCheckpoints, res.Checkpoints)
	fmt.Printf("fresh readings consumed: %d, stale discarded: %d\n",
		res.MarkCounts[0], res.MarkCounts[1])
	fmt.Printf("final checksum: %d\n", res.OutLog[0][0])

	// The same image on continuous power gives the consistency oracle for
	// the protected state machine: the run above committed exactly as many
	// rounds, despite dozens of reboots.
	oracle, err := tics.Run(src, tics.BuildOptions{Runtime: tics.RTPlain}, tics.RunOptions{
		Sensors: sensors.NewBank(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous-power oracle consumed %d fresh readings (all fresh, no discards)\n",
		oracle.MarkCounts[0])
}
