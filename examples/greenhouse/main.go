// Greenhouse: the Table 1 story as a demo. The unmodified greenhouse
// monitoring program — in both its plain-C and TinyOS-event forms — runs
// for a fixed wall-clock budget at several intermittency rates, with and
// without TICS, and we check whether its four routines executed in lock
// step (the paper's consistency criterion).
package main

import (
	"fmt"
	"log"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/sensors"
)

func main() {
	variants := []struct {
		label   string
		app     apps.App
		runtime tics.RuntimeKind
	}{
		{"plain C        ", apps.GHMPlain(), tics.RTPlain},
		{"plain C + TICS ", apps.GHMPlain(), tics.RTTICS},
		{"TinyOS         ", apps.GHMTinyOS(), tics.RTPlain},
		{"TinyOS + TICS  ", apps.GHMTinyOS(), tics.RTTICS},
	}
	fmt.Println("GHM routine executions over a 20 s budget (moisture/temp/compute/send):")
	for _, rate := range []float64{0.04, 0.48, 1.00} {
		fmt.Printf("\nintermittency rate %.0f%%\n", rate*100)
		for _, v := range variants {
			img, err := tics.Build(v.app.Source, tics.BuildOptions{Runtime: v.runtime})
			if err != nil {
				log.Fatal(err)
			}
			var src tics.RunOptions
			src = tics.RunOptions{
				Power:          powerFor(rate),
				Sensors:        sensors.NewBank(11),
				AutoCpPeriodMs: 10,
				MaxWallMs:      20_000,
			}
			m, err := tics.NewMachine(img, src)
			if err != nil {
				log.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				log.Fatal(err)
			}
			verdict := "consistent"
			if spread(res.MarkCounts) > 1 {
				verdict = "INCONSISTENT"
			}
			fmt.Printf("  %s %6d %6d %6d %6d   %s\n", v.label,
				res.MarkCounts[0], res.MarkCounts[1], res.MarkCounts[2], res.MarkCounts[3], verdict)
		}
	}
}

func powerFor(rate float64) power.Source {
	if rate >= 1 {
		return power.Continuous{}
	}
	pattern := []float64{12, 35, 8, 50, 20, 6, 28, 90}
	var ws []power.Window
	for _, on := range pattern {
		ws = append(ws, power.Window{OnMs: on, OffMs: on * (1 - rate) / rate})
	}
	return &power.Trace{Windows: ws, Loop: true}
}

func spread(xs []int64) int64 {
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}
