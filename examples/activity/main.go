// Activity: the Figure 8 story as a demo. The time-annotated activity
// recognition application runs on RF-harvested power; the timeline shows
// sampled accelerometer windows, fresh windows classified, stale windows
// discarded by @expires/catch after long outages, and @timely alerts that
// only fire within their 200 ms deadline.
package main

import (
	"fmt"
	"log"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/sensors"
)

func main() {
	app := apps.AR()
	img, err := tics.Build(app.Source, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		log.Fatal(err)
	}
	m, err := tics.NewMachine(img, tics.RunOptions{
		Power:          power.NewHarvester(40_000, 450, 0.8, 8),
		Sensors:        sensors.NewBank(8),
		AutoCpPeriodMs: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("AR execution trace (device wall-clock, TICS on harvested power):")
	m.OnMark = func(id int32, deviceMs int64) {
		switch id {
		case 0:
			fmt.Printf("%8d ms  window sampled\n", deviceMs)
		case 3:
			fmt.Printf("%8d ms    fresh -> featurize + classify\n", deviceMs)
		case 4:
			fmt.Printf("%8d ms    EXPIRED -> discarded\n", deviceMs)
		}
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	alerts := 0
	for _, s := range res.SendLog {
		if s.Value >= 1000 && s.Value < 2000 {
			alerts++
		}
	}
	fmt.Printf("\n%d rounds: %d fresh, %d discarded, %d timely alerts; %d power failures, %d checkpoints\n",
		res.MarkCounts[3]+res.MarkCounts[4], res.MarkCounts[3], res.MarkCounts[4],
		alerts, res.Failures, res.TotalCheckpoints)
}
