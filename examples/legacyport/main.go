// Legacyport: the porting-effort story. One legacy program — the cuckoo
// filter, with pointers-free array code and a cross-task eviction loop —
// is taken to intermittent power four ways:
//
//   - unmodified under TICS (zero porting effort),
//   - unmodified under the naive full-state checkpointer (works, but the
//     checkpoints are enormous),
//   - unmodified under Chinchilla (compiles here; the recursive bitcount
//     benchmark would not),
//   - hand-decomposed into five tasks for Alpaca (the rewrite the paper's
//     Figure 2 laments) — and the same decomposition rejected by MayFly
//     because the eviction loop makes the task graph cyclic.
//
// All successful builds are run under identical intermittent power and
// must commit identical results.
package main

import (
	"fmt"
	"log"
	"reflect"

	tics "repro"
	"repro/internal/apps"
	"repro/internal/power"
)

func main() {
	app := apps.CF()
	oracle, err := tics.Run(app.Source, tics.BuildOptions{Runtime: tics.RTPlain}, tics.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle (continuous power): inserted=%d found=%d false-positives=%d\n\n",
		oracle.OutLog[0][0], oracle.OutLog[1][0], oracle.OutLog[2][0])

	type variant struct {
		label string
		src   string
		opts  tics.BuildOptions
	}
	variants := []variant{
		{"TICS (legacy source, unmodified)", app.Source, tics.BuildOptions{Runtime: tics.RTTICS}},
		{"naive checkpointer (unmodified)", app.Source, tics.BuildOptions{Runtime: tics.RTMementos}},
		{"Chinchilla (unmodified)", app.Source, tics.BuildOptions{Runtime: tics.RTChinchilla}},
		{"Alpaca (hand task decomposition)", app.TaskSource,
			tics.BuildOptions{Runtime: tics.RTAlpaca, Tasks: app.Tasks, Edges: app.Edges}},
	}
	for _, v := range variants {
		img, err := tics.Build(v.src, v.opts)
		if err != nil {
			fmt.Printf("%-36s build failed: %v\n", v.label, err)
			continue
		}
		m, err := tics.NewMachine(img, tics.RunOptions{
			Power:          &power.FailEvery{Cycles: 15_000, OffMs: 25},
			AutoCpPeriodMs: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		match := "results match the oracle"
		if !reflect.DeepEqual(res.OutLog, oracle.OutLog) {
			match = "RESULTS DIVERGE"
		}
		fmt.Printf("%-36s %4d failures, %5d checkpoints, %7d cycles — %s\n",
			v.label, res.Failures, res.TotalCheckpoints, res.Cycles, match)
	}

	// MayFly: the decomposition's eviction loop is a graph cycle.
	_, err = tics.Build(app.TaskSource,
		tics.BuildOptions{Runtime: tics.RTMayFly, Tasks: app.Tasks, Edges: app.Edges})
	fmt.Printf("%-36s %v\n", "MayFly (same decomposition)", err)
}
