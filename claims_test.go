package tics_test

import (
	"testing"

	tics "repro"
	"repro/internal/power"
)

// starvationSrc carries a few kilobytes of non-volatile state, so a
// full-state checkpoint costs more energy than a short power window
// delivers.
const starvationSrc = `
int big0[256];
int big1[256];
int big2[256];
int sum;

int main() {
    int i;
    for (i = 0; i < 256; i++) {
        big0[i] = i;
        big1[i] = i * 2;
        big2[i] = i ^ 85;
    }
    for (i = 0; i < 256; i++) {
        sum += big0[i] + big1[i] + big2[i];
    }
    out(0, sum);
    return 0;
}
`

// TestStarvationClaim pins the paper's headline systems claim (§1): naive
// checkpointing systems starve when the checkpointed state outgrows the
// energy reservoir — "the checkpointed state grows with the size of the
// main memory and unfortunately leads to a system starvation" — while
// TICS's bounded working-segment checkpoints keep fitting and the same
// program completes in the same windows.
func TestStarvationClaim(t *testing.T) {
	const windowCycles = 9_000 // too little energy for a ~3 KB state copy

	naive, err := tics.Build(starvationSrc, tics.BuildOptions{Runtime: tics.RTMementos})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tics.NewMachine(naive, tics.RunOptions{
		Power:       &power.FailEvery{Cycles: windowCycles, OffMs: 10},
		MaxCycles:   200_000_000,
		MaxFailures: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || !res.Starved {
		t.Fatalf("naive checkpointing should starve here, got %+v", res)
	}

	ticsImg, err := tics.Build(starvationSrc, tics.BuildOptions{Runtime: tics.RTTICS})
	if err != nil {
		t.Fatal(err)
	}
	m, err = tics.NewMachine(ticsImg, tics.RunOptions{
		Power:          &power.FailEvery{Cycles: windowCycles, OffMs: 10},
		AutoCpPeriodMs: 2,
		MaxCycles:      500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("TICS starved in the same windows: %+v", res)
	}
	// And the committed result is correct.
	oracle, err := tics.Run(starvationSrc, tics.BuildOptions{Runtime: tics.RTPlain}, tics.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutLog[0][0] != oracle.OutLog[0][0] {
		t.Fatalf("TICS result wrong: %d != %d", res.OutLog[0][0], oracle.OutLog[0][0])
	}
	if res.Failures < 10 {
		t.Fatalf("the TICS run barely saw intermittency: %d failures", res.Failures)
	}
}
